(** Flow-sensitive must-lockset dataflow over a {!Cfg}.

    Computes, for every CFG node, the set of locks a thread {e definitely}
    holds when control reaches it, together with a held depth for
    re-entrancy reasoning. Joins ([if] merges, loop heads) take the
    pointwise-minimum meet, so a lock counts as held only when it is held
    on every path; loop bodies are iterated to a fixpoint with depths
    capped ({e widened}) at a constant, which keeps the lattice finite
    without ever over-claiming heldness. The result under-approximates the
    dynamic lockset on every execution — the direction soundness needs. *)

type t

val analyze : ?dead:(Cfg.site -> bool) -> Cfg.t -> t
(** [dead] marks statically-dead sites from the {!Values} pass. Dead
    nodes are never processed, so an infeasible branch no longer weakens
    the must-meet at the join after it — this is how must-equal guard
    facts materialize: when the value analysis proves the arm skipping
    an acquire can never run, the lock counts as definitely held
    afterwards. Sound because a dead node contributes no dynamic path.
    Defaults to nothing dead. *)

val locks_held : t -> int -> int list
(** Lock ids definitely held just before the node executes, ascending. *)

val depth_before : t -> int -> Velodrome_trace.Ids.Lock.t -> int
(** Definite re-entrancy depth of one lock before the node; 0 when the
    lock may be unheld. *)
