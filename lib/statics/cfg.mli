(** Per-thread control-flow graphs over the observable effects of a
    {!Velodrome_sim.Ast.program}.

    Each AST statement that can produce a trace operation becomes one CFG
    node carrying its {e effect} — the lock, shared-variable or
    transaction-boundary operation it performs — plus a {!site}
    identifying the statement's position in the AST. Silent statements
    (register moves, [work], [yield]) become [Silent] nodes so every
    program point has a dataflow fact; [if] produces a diamond, [while] a
    back edge through a head node that doubles as the loop exit.

    Sites are stable structural coordinates: the path of the [j]-th
    statement of a block at path π is π·[j]; an [if]'s branches open the
    sub-contexts π·[j]·[0] and π·[j]·[1]. The {!Reduce} walker recomputes
    the same coordinates, which is how mover classes computed here are
    looked up from the AST side. *)

open Velodrome_trace.Ids

type site = { thread : int; path : int list }

val site_compare : site -> site -> int
val pp_site : Format.formatter -> site -> unit
val site_to_string : site -> string

type eff =
  | Acquire of Lock.t
  | Release of Lock.t
  | Read of Var.t
  | Write of Var.t
  | Enter of Label.t  (** transaction begin *)
  | Exit of Label.t  (** transaction end *)
  | Silent

type node = { id : int; site : site; eff : eff }

type t

val of_program : Velodrome_sim.Ast.program -> t

val node_count : t -> int
val node : t -> int -> node
val succs : t -> int -> int list
val preds : t -> int -> int list

val entries : t -> int array
(** One entry node per thread, in thread order. *)

val iter_nodes : (node -> unit) -> t -> unit
val pp_eff : Velodrome_trace.Names.t -> Format.formatter -> eff -> unit
