(** Strict cross-thread edges of the static transactional conflict graph.

    Velodrome's dynamic happens-before graph acquires a cross-thread edge
    in exactly three situations: a read sees another thread's last write
    (w→r), a write follows reads or the last write of the variable
    (r→w, w→w), or an acquire follows another thread's last release of
    the same lock (rel→acq). This module over-approximates all of them
    from the CFG:

    - {b Variable conflicts}: two reachable access sites of the same
      shared variable — {e volatiles included}, because the engine draws
      the same edges through them — on distinct threads with at least one
      write and {e disjoint} must-locksets. Conflict direction is not
      statically provable, so both orientations are emitted. Pairs whose
      must-locksets intersect are deliberately {e omitted}: the lock
      serializes the two critical sections, so every dynamic edge between
      them runs parallel to a release→acquire path that the lock edges
      below already cover (arriving at the acquire site, from which
      program order reaches the access).

    - {b Lock order}: release site → acquire site of the same lock across
      threads. These are the provably-oriented edges — a dynamic lock
      edge always points from a release to a later acquire.

    {!Txgraph} adds the same-thread (program-order, cross-instance) and
    intra-transaction (passage) edges on top of these. *)

open Velodrome_trace
open Velodrome_trace.Ids

type kind = Var_conflict of Var.t | Lock_order of Lock.t

type edge = { src : int; dst : int; kind : kind }
(** [src]/[dst] are {!Cfg} node ids of reachable effectful sites. *)

val edges : Cfg.t -> Lockset.t -> Mhp.t -> edge list
(** Every strict cross-thread edge, deterministic order. *)

val kind_string : Names.t -> kind -> string
