open Velodrome_trace.Ids

module IntMap = Map.Make (Int)

(* A must-lockset fact: lock id -> held depth (>= 1). Absent means "not
   definitely held". Depths are capped so the lattice stays finite even on
   programs that acquire inside a loop without releasing; capping only
   lowers the recorded depth, so every "held" claim under-approximates the
   truth and stays sound. *)
type fact = int IntMap.t

let depth_cap = 64

let meet a b =
  IntMap.merge
    (fun _ da db ->
      match (da, db) with Some da, Some db -> Some (min da db) | _ -> None)
    a b

let equal = IntMap.equal Int.equal

let transfer (eff : Cfg.eff) (f : fact) =
  match eff with
  | Cfg.Acquire m ->
    let k = Lock.to_int m in
    let d = Option.value ~default:0 (IntMap.find_opt k f) in
    IntMap.add k (min depth_cap (d + 1)) f
  | Cfg.Release m ->
    let k = Lock.to_int m in
    (match IntMap.find_opt k f with
    | None | Some 1 -> IntMap.remove k f
    | Some d -> IntMap.add k (d - 1) f)
  | Cfg.Read _ | Cfg.Write _ | Cfg.Enter _ | Cfg.Exit _ | Cfg.Silent -> f

type t = { before : fact option array }

(* Forward must-analysis by worklist. Facts start optimistically
   undefined (= top); a node's input is the meet of its {e computed}
   predecessors, iterated until the fixpoint, which for a meet
   semilattice of bounded depth terminates and yields the greatest
   solution below every path fact. *)
let analyze ?(dead = fun (_ : Cfg.site) -> false) (cfg : Cfg.t) =
  let n = Cfg.node_count cfg in
  let before = Array.make n None in
  let after = Array.make n None in
  let queue = Queue.create () in
  Array.iter
    (fun e ->
      before.(e) <- Some IntMap.empty;
      Queue.add e queue)
    (Cfg.entries cfg);
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    if dead (Cfg.node cfg id).Cfg.site then ()
    else begin
    (* Entry nodes have no predecessors; their input is the initial empty
       fact seeded above. *)
    let input =
      match
        List.filter_map (fun p -> after.(p)) (Cfg.preds cfg id)
      with
      | [] -> Option.value ~default:IntMap.empty before.(id)
      | f :: fs -> List.fold_left meet f fs
    in
    let changed =
      match before.(id) with
      | Some old when equal old input -> false
      | _ ->
        before.(id) <- Some input;
        true
    in
    let out = transfer (Cfg.node cfg id).Cfg.eff input in
    let out_changed =
      match after.(id) with
      | Some old when equal old out -> false
      | _ ->
        after.(id) <- Some out;
        true
    in
    if changed || out_changed then
      List.iter (fun s -> Queue.add s queue) (Cfg.succs cfg id)
    end
  done;
  { before }

let held_before t id =
  match t.before.(id) with
  | None -> IntMap.empty  (* unreachable node: nothing definitely held *)
  | Some f -> f

let locks_held t id =
  IntMap.fold (fun k _ acc -> k :: acc) (held_before t id) [] |> List.rev

let depth_before t id m =
  Option.value ~default:0 (IntMap.find_opt (Lock.to_int m) (held_before t id))
