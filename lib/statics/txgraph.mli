(** The static transactional conflict graph and its cycle search.

    Velodrome's Theorem 1 makes a trace non-serializable exactly when the
    transactional happens-before graph acquires a non-trivial cycle, and
    the engine blames the {e current} thread's open blocks when the
    cycle-closing in-edge lands on one of their operations. This module
    over-approximates every such dynamic cycle from the CFG alone, giving
    a second static proof rule: an atomic occurrence no static cycle can
    close into is serializable on {b every} execution, even when Lipton
    reduction fails on it.

    {2 The graph}

    Nodes are the reachable effectful sites (lock and shared-variable
    operations). Each belongs to a {e region}: the outermost atomic
    occurrence containing it, or a singleton unary region — each unary
    operation is its own Velodrome transaction. Edges over-approximate
    the dynamic edge sorts:

    - {e strict} cross-thread edges from {!Conflict} (variable conflicts
      both ways, release→acquire lock order);
    - {e program order} between ops of different regions of one thread
      (CFG reachability, so loops yield both directions);
    - {e cross-instance} edges, both ways, between all ops of a region
      whose exit can reach its entry — its instances are distinct
      transactions in unknown relative order;
    - {e passage} edges inside one instance of an atomic region: arrive
      at [a], depart at [x], present when the two ops can co-occur in an
      instance (reachability {e restricted to the occurrence's subtree},
      which excludes both mutually-exclusive [if] branches and
      cross-instance paths through the enclosing loop). A passage is
      {e slack} when [x] can precede [a] — the transaction has already
      published an out-edge when the in-edge arrives, which is the only
      way a cycle closes into it.

    {2 The decision}

    For each slack passage [(a, x)] of an atomic region [R], the search
    asks whether the graph realizes the rest of the cycle: a path from
    [x] back to [a] through some op of another thread. Three facts about
    the dynamic closing edge sharpen it soundly: the closing in-edge and
    the departure out-edge are cross-thread strict edges (program-order
    edges appear only at transaction begin, too late to participate), so
    first and last hops must be strict; and when [R] is single-instance
    (no CFG path from exit back to entry) the minimal cycle visits it
    once, so the path may not traverse [R]'s other ops nor its passage
    edges. An occurrence is flagged when some accepted slack edge
    {e arrives} inside it — mirroring blame, which requires the closing
    op syntactically inside every blamed block — and each flag carries a
    concrete {!witness} cycle. *)

open Velodrome_trace
open Velodrome_trace.Ids

type edge_kind =
  | Strict of Conflict.kind
  | Program_order
  | Cross_instance
  | Passage of { slack : bool }

type hop = { node : Cfg.node; via : edge_kind }
(** One step of a witness path: the node stepped onto and the edge sort
    that reached it. *)

type witness = {
  label : Label.t;
  occurrence : Cfg.site;  (** the outermost occurrence the cycle closes into *)
  arrival : Cfg.node;  (** op receiving the cycle-closing in-edge *)
  departure : Cfg.node;  (** op whose earlier out-edge the cycle left by *)
  pivot : Cfg.node;  (** a path op on another thread *)
  path : hop list;  (** hops from [departure] to [arrival], in order *)
}

type stats = {
  ops : int;
  regions : int;
  conflict_edges : int;
  lock_edges : int;
  po_edges : int;
  cross_instance_edges : int;
  passage_edges : int;
  slack_edges : int;
  accepted_slack_edges : int;
}

type t

val build :
  Names.t -> Cfg.t -> Lockset.t -> Mhp.t -> Reduce.occurrence list -> t

val exhausted : t -> bool
(** The op count or slack-decision budget overflowed and the search was
    abandoned; no [cycle_free] claim is made for any occurrence. *)

val cycle_free : t -> Cfg.site -> bool
(** No accepted slack edge arrives at an op inside the occurrence at this
    site (nested occurrences query their own subtree). Always [false]
    when {!exhausted}. *)

val witness_for : t -> Cfg.site -> witness option
(** The witness for the least accepted arrival inside the occurrence's
    subtree, if any. *)

val witnesses_for : t -> Cfg.site -> witness list
(** Every accepted witness whose arrival lands inside the occurrence's
    subtree, in ascending arrival order — the raw material for the
    predictive planner, which tries each cycle in turn. *)

val stats : t -> stats

val op_string : t -> Cfg.node -> string
(** ["t2:w(x)"]-style rendering of an effectful node. *)

val op_site_string : t -> Cfg.node -> string
(** {!op_string} with the structural source position appended:
    ["t2:w(x)@1.0"]. *)

val explain : t -> witness -> string
(** One-line human cycle summary; every op carries its source position. *)

val witness_json : t -> witness -> Velodrome_util.Json.t

val witness_dot : t -> witness -> string
(** The witness cycle at transaction granularity — one dot node per
    region visited, the closing edge dashed, the blamed region
    emphasized — mirroring the dynamic error-graph rendering. *)

val to_dot : t -> string
(** The full op-level graph; passage edges dashed. *)
