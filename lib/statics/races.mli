(** Whole-program pairwise static race detection.

    Lockset-based race reasoning is pairwise by nature: two access sites
    race only if they {e conflict} (same non-volatile variable, at least
    one write), may happen in parallel ({!Mhp}), and share no lock. For
    every such ordered pair of sites this module intersects the per-site
    {e must}-locksets from {!Lockset}; an empty intersection yields a
    {!pair} carrying both {!Cfg.site}s, their access kinds, the locks
    each definitely holds, the atomic blocks each endangers, and a
    human-readable witness explanation.

    Soundness: must-locksets under-approximate the locks actually held
    and {!Mhp} over-approximates concurrency, so the reported pairs
    over-approximate the true races — a site in {b no} pair is race-free on
    every execution. Two conflicting accesses that share a must-held lock
    are ordered by that lock's release/acquire happens-before edges, so a
    pair-free access can never be part of an Eraser or happens-before
    race, which is exactly Atomizer's condition for treating the access
    as a both-mover ({!Movers} consumes the relation that way). *)

open Velodrome_trace
open Velodrome_trace.Ids

type access = {
  node : int;
  site : Cfg.site;
  write : bool;
  locks : int list;  (** must-lockset at the site, ascending lock ids *)
  atomics : Label.t list;  (** enclosing atomic blocks, innermost first *)
}

type pair = { var : Var.t; a : access; b : access }
(** Canonically oriented: [Cfg.site_compare a.site b.site <= 0]. *)

val pair_compare : pair -> pair -> int

type t

val analyze :
  ?dead:(Cfg.site -> bool) -> Names.t -> Cfg.t -> Lockset.t -> Mhp.t -> t
(** [dead] marks statically-dead sites from the {!Values} pass; accesses
    at dead sites are skipped (a values-aware {!Mhp} already excludes
    them from reachability — the explicit check keeps the pass sound
    with any [Mhp.t]). Defaults to nothing dead. *)

val pairs : t -> pair list
(** All pairs, sorted by (variable, first site, second site). *)

val pair_count : t -> int

val access_sites : t -> int
(** Reachable non-volatile shared access sites examined. *)

val witness : t -> Cfg.site -> pair option
(** A pair the site participates in, if any. *)

val racy_site : t -> Cfg.site -> bool
val racy_var : t -> Var.t -> bool
val racy_var_count : t -> int
val racy_vars : t -> Var.t list

val other_end : pair -> Cfg.site -> access
(** The endpoint of the pair that is not at the given site. *)

val explain : Names.t -> pair -> string
val pp_pair : Names.t -> Format.formatter -> pair -> unit
