(** May-happen-in-parallel facts over a {!Cfg}.

    Threads in the mini language all start at program entry and the
    scheduler may preempt between any two operations, so two {e distinct}
    thread indices — including two copies of one replicated [thread n]
    body — can always run concurrently; the relation refines that only in
    the sound directions: a thread whose body performs no reachable
    observable effect cannot participate in a race, unreachable sites are
    excluded, and a site never runs in parallel with a site of its own
    thread.

    Atomic blocks are {e checked}, never {e enforced} (the simulator, like
    the JVM the paper instruments, freely interleaves them), so they
    cannot shrink the relation. Their structure refines the {e reporting}
    side instead: [enclosing_atomics] recovers, per site, the chain of
    atomic blocks a racing access endangers, which {!Races} attaches to
    every race-pair witness. *)

open Velodrome_trace.Ids

type t

val analyze : ?dead:(Cfg.site -> bool) -> Cfg.t -> t
(** [dead] marks statically-dead sites from the {!Values} pass; the
    reachability traversal never enters them, so every dead site is
    unreachable here and drops out of races, conflict edges and the
    transactional graph downstream. Defaults to nothing dead. *)

val thread_count : t -> int

val effectful : t -> int -> bool
(** The thread has at least one reachable shared-variable or lock
    operation. *)

val threads : t -> int -> int -> bool
(** Thread-level MHP: distinct indices, both effectful. *)

val reachable : t -> int -> bool
(** The node is reachable from its thread's entry. *)

val concurrent : t -> Cfg.node -> Cfg.node -> bool
(** Site-level MHP: the nodes belong to distinct threads and both are
    reachable. Over-approximates "may execute simultaneously" on every
    schedule. *)

val enclosing_atomics : t -> int -> Label.t list
(** Atomic blocks containing the node, innermost first. *)

val innermost_atomic : t -> int -> Label.t option
