open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_sim
module IntSet = Set.Make (Int)

type proof = Lipton | Cycle_free

type verdict =
  | Proved_atomic of proof
  | May_violate of Txgraph.witness
  | Unknown of Reduce.reason list

type block = {
  label : Label.t;
  name : string;
  sites : Cfg.site list;
  verdict : verdict;
  lipton_reasons : Reduce.reason list;
}

type t = {
  names : Names.t;
  cfg : Cfg.t;
  locksets : Lockset.t;
  mhp : Mhp.t;
  races : Races.t;
  movers : Movers.t;
  graph : Txgraph.t;
  vals : Values.t option;
  blocks : block list;
  proved_ids : IntSet.t;  (** either proof rule *)
  lipton_ids : IntSet.t;
}

let analyze ?(rule = Movers.Pairwise) ?(values = true) (p : Ast.program) =
  let names = p.Ast.names in
  let cfg = Cfg.of_program p in
  let vals = if values then Some (Values.analyze p) else None in
  let dead =
    match vals with
    | Some v -> fun site -> Values.dead_site v site
    | None -> fun _ -> false
  in
  let locksets = Lockset.analyze ~dead cfg in
  let mhp = Mhp.analyze ~dead cfg in
  let races = Races.analyze ~dead names cfg locksets mhp in
  let movers = Movers.analyze ~rule ~dead names cfg locksets races in
  let occs = Reduce.occurrences ~dead names movers p in
  let graph = Txgraph.build names cfg locksets mhp occs in
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (o : Reduce.occurrence) ->
      let k = Label.to_int o.Reduce.label in
      let sites, reasons =
        Option.value ~default:([], []) (Hashtbl.find_opt by_label k)
      in
      Hashtbl.replace by_label k
        (o.Reduce.site :: sites, o.Reduce.reasons @ reasons))
    occs;
  let blocks =
    Hashtbl.fold
      (fun k (sites, reasons) acc ->
        let label = Label.of_int k in
        let sites = List.sort Cfg.site_compare sites in
        let lipton_reasons =
          List.sort_uniq Reduce.reason_compare reasons
        in
        let verdict =
          if lipton_reasons = [] then Proved_atomic Lipton
          else if Txgraph.exhausted graph then Unknown lipton_reasons
          else if List.for_all (Txgraph.cycle_free graph) sites then
            Proved_atomic Cycle_free
          else
            match List.find_map (Txgraph.witness_for graph) sites with
            | Some w -> May_violate w
            | None -> Unknown lipton_reasons
        in
        { label; name = Names.label_name names label; sites; verdict;
          lipton_reasons }
        :: acc)
      by_label []
    |> List.sort (fun a b -> Label.compare a.label b.label)
  in
  let ids pred =
    List.fold_left
      (fun acc b ->
        if pred b.verdict then IntSet.add (Label.to_int b.label) acc else acc)
      IntSet.empty blocks
  in
  let proved_ids =
    ids (function Proved_atomic _ -> true | _ -> false)
  in
  let lipton_ids =
    ids (function Proved_atomic Lipton -> true | _ -> false)
  in
  { names; cfg; locksets; mhp; races; movers; graph; vals; blocks;
    proved_ids; lipton_ids }

let blocks t = t.blocks
let values t = t.vals

let dead_site_count t =
  match t.vals with Some v -> Values.dead_site_count v | None -> 0

let dead_branch_count t =
  match t.vals with Some v -> Values.dead_branch_count v | None -> 0
let cfg t = t.cfg
let locksets t = t.locksets
let mhp t = t.mhp
let races t = t.races
let race_pairs t = Races.pairs t.races
let race_pair_count t = Races.pair_count t.races
let names t = t.names
let movers t = t.movers
let txgraph t = t.graph
let proved t l = IntSet.mem (Label.to_int l) t.proved_ids
let proved_count t = IntSet.cardinal t.proved_ids
let proved_lipton_count t = IntSet.cardinal t.lipton_ids
let proved_cycle_free_count t = proved_count t - proved_lipton_count t

let count_verdict t pred = List.length (List.filter (fun b -> pred b.verdict) t.blocks)

let may_violate_count t =
  count_verdict t (function May_violate _ -> true | _ -> false)

let unknown_count t =
  count_verdict t (function Unknown _ -> true | _ -> false)

let block_count t = List.length t.blocks
let suppressible_var t x = Movers.suppressible t.movers x

let filter_predicates ?(lipton_only = false) t =
  let ids = if lipton_only then t.lipton_ids else t.proved_ids in
  let proved_id l = IntSet.mem l ids in
  let suppress_var x = Movers.suppressible t.movers (Var.of_int x) in
  (proved_id, suppress_var)

(* --- rendering ----------------------------------------------------------- *)

let verdict_string = function
  | Proved_atomic _ -> "proved-atomic"
  | May_violate _ -> "may-violate"
  | Unknown _ -> "unknown"

let proof_string = function Lipton -> "lipton" | Cycle_free -> "cycle-free"

(* The dead-branch lint: one line per arm the value analysis proved a
   thread can never take. Informational only — exit-code semantics are
   driven by verdicts, never by lint lines. *)
let pp_dead_branches ppf t =
  match t.vals with
  | None -> ()
  | Some v ->
    List.iter
      (fun (d : Values.dead_branch) ->
        Format.fprintf ppf "DEAD BRANCH %s.%s: thread %d %s@."
          (Cfg.site_to_string d.Values.d_site)
          (Values.arm_string d.Values.d_arm)
          d.Values.d_site.Cfg.thread
          (Values.arm_message d.Values.d_arm))
      (Values.dead_branches v)

let pp_human ?(pos = fun _ -> None) ppf t =
  List.iter
    (fun b ->
      let where =
        match pos b.label with
        | Some (line, col) -> Printf.sprintf " (%d:%d)" line col
        | None -> ""
      in
      let occs =
        Printf.sprintf "%d occurrence%s" (List.length b.sites)
          (if List.length b.sites = 1 then "" else "s")
      in
      match b.verdict with
      | Proved_atomic proof ->
        Format.fprintf ppf "%-24s%s proved atomic by %s (%s)@." b.name where
          (proof_string proof) occs
      | May_violate w ->
        Format.fprintf ppf "%-24s%s MAY VIOLATE (%s)@." b.name where occs;
        Format.fprintf ppf "    %s@." (Txgraph.explain t.graph w)
      | Unknown reasons ->
        Format.fprintf ppf "%-24s%s UNKNOWN (%s)@." b.name where occs;
        List.iter
          (fun (r : Reduce.reason) ->
            Format.fprintf ppf "    %a: %s@." Cfg.pp_site r.Reduce.site
              r.Reduce.detail)
          reasons)
    t.blocks;
  pp_dead_branches ppf t;
  Format.fprintf ppf
    "%d/%d blocks proved atomic (%d lipton, %d cycle-free), %d may-violate@."
    (proved_count t) (block_count t) (proved_lipton_count t)
    (proved_cycle_free_count t) (may_violate_count t)

let summary_json t =
  let open Velodrome_util.Json in
  Obj
    [
      ("blocks", Int (block_count t));
      ("proved", Int (proved_count t));
      ("proved_lipton", Int (proved_lipton_count t));
      ("proved_cycle_free", Int (proved_cycle_free_count t));
      ("may_violate", Int (may_violate_count t));
      ("unknown", Int (unknown_count t));
      ("race_pairs", Int (race_pair_count t));
      ("racy_vars", Int (Races.racy_var_count t.races));
      ("dead_sites", Int (dead_site_count t));
      ("dead_branches", Int (dead_branch_count t));
    ]

let to_json ?(pos = fun _ -> None) ?file t =
  let open Velodrome_util.Json in
  let block_json b =
    let position =
      match pos b.label with
      | Some (line, col) -> Obj [ ("line", Int line); ("col", Int col) ]
      | None -> Null
    in
    let reasons =
      List.map
        (fun (r : Reduce.reason) ->
          Obj
            [
              ("site", String (Cfg.site_to_string r.Reduce.site));
              ("detail", String r.Reduce.detail);
            ])
        b.lipton_reasons
    in
    let proof =
      match b.verdict with
      | Proved_atomic p -> String (proof_string p)
      | May_violate _ | Unknown _ -> Null
    in
    let witness =
      match b.verdict with
      | May_violate w -> Txgraph.witness_json t.graph w
      | Proved_atomic _ | Unknown _ -> Null
    in
    Obj
      [
        ("label", String b.name);
        ("verdict", String (verdict_string b.verdict));
        ("proof", proof);
        ("position", position);
        ( "occurrences",
          List (List.map (fun s -> String (Cfg.site_to_string s)) b.sites) );
        ("reasons", List reasons);
        ("witness", witness);
      ]
  in
  Obj
    (List.concat
       [
         (match file with Some f -> [ ("file", String f) ] | None -> []);
         [
           ("blocks", List (List.map block_json t.blocks));
           ("summary", summary_json t);
         ];
       ])

(* --- conflict-graph report ----------------------------------------------- *)

let pp_graph_human ppf t =
  let s = Txgraph.stats t.graph in
  Format.fprintf ppf
    "conflict graph: %d ops in %d regions; %d conflict, %d lock, %d \
     program-order, %d cross-instance edges; %d passage (%d slack, %d \
     accepted)@."
    s.Txgraph.ops s.Txgraph.regions s.Txgraph.conflict_edges
    s.Txgraph.lock_edges s.Txgraph.po_edges s.Txgraph.cross_instance_edges
    s.Txgraph.passage_edges s.Txgraph.slack_edges
    s.Txgraph.accepted_slack_edges;
  if Txgraph.exhausted t.graph then
    Format.fprintf ppf "graph search exhausted its budget@.";
  List.iter
    (fun b ->
      match b.verdict with
      | May_violate w ->
        Format.fprintf ppf "%-24s %s@." b.name (Txgraph.explain t.graph w)
      | Proved_atomic _ | Unknown _ -> ())
    t.blocks

let graph_json t =
  let open Velodrome_util.Json in
  let s = Txgraph.stats t.graph in
  Obj
    [
      ( "stats",
        Obj
          [
            ("ops", Int s.Txgraph.ops);
            ("regions", Int s.Txgraph.regions);
            ("conflict_edges", Int s.Txgraph.conflict_edges);
            ("lock_edges", Int s.Txgraph.lock_edges);
            ("po_edges", Int s.Txgraph.po_edges);
            ("cross_instance_edges", Int s.Txgraph.cross_instance_edges);
            ("passage_edges", Int s.Txgraph.passage_edges);
            ("slack_edges", Int s.Txgraph.slack_edges);
            ("accepted_slack_edges", Int s.Txgraph.accepted_slack_edges);
          ] );
      ("exhausted", Bool (Txgraph.exhausted t.graph));
      ( "witnesses",
        List
          (List.filter_map
             (fun b ->
               match b.verdict with
               | May_violate w -> Some (Txgraph.witness_json t.graph w)
               | Proved_atomic _ | Unknown _ -> None)
             t.blocks) );
    ]

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' -> c
      | _ -> '_')
    s

(* Whole-program CFG annotated with value facts: every node carries its
   site, effect and (when one exists) the fact interval; dead nodes are
   grayed out. *)
let values_dot t v =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "digraph cfg_values {\n";
  Buffer.add_string buf "  node [shape=box, fontsize=10];\n";
  Cfg.iter_nodes
    (fun n ->
      let site = n.Cfg.site in
      let fact =
        match Values.fact_at v site with
        | Some f ->
          Printf.sprintf "\\n%s %s"
            (Values.target_string t.names f.Values.target)
            (Values.itv_to_string f.Values.itv)
        | None -> ""
      in
      let style =
        if Values.dead_site v site then
          ", style=dashed, color=gray, fontcolor=gray"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\\n%s%s\"%s];\n" n.Cfg.id
           (Cfg.site_to_string site)
           (Format.asprintf "%a" (Cfg.pp_eff t.names) n.Cfg.eff)
           fact style))
    t.cfg;
  for id = 0 to Cfg.node_count t.cfg - 1 do
    List.iter
      (fun s ->
        Buffer.add_string buf (Printf.sprintf "  n%d -> n%d;\n" id s))
      (Cfg.succs t.cfg id)
  done;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let graph_dots t =
  ("txgraph", Txgraph.to_dot t.graph)
  :: List.filter_map
       (fun b ->
         match b.verdict with
         | May_violate w ->
           Some ("cycle_" ^ slug b.name, Txgraph.witness_dot t.graph w)
         | Proved_atomic _ | Unknown _ -> None)
       t.blocks
  @ (match t.vals with
    | Some v -> [ ("cfg_values", values_dot t v) ]
    | None -> [])

(* --- value-analysis report ----------------------------------------------- *)

let pp_values_human ppf t =
  match t.vals with
  | None -> Format.fprintf ppf "value analysis disabled@."
  | Some v ->
    List.iter
      (fun (f : Values.fact) ->
        Format.fprintf ppf "  %s: %s %s@."
          (Cfg.site_to_string f.Values.f_site)
          (Values.target_string t.names f.Values.target)
          (Values.itv_to_string f.Values.itv))
      (Values.facts v);
    List.iter
      (fun (d : Values.dead_branch) ->
        Format.fprintf ppf "  dead %s arm of %s@."
          (Values.arm_string d.Values.d_arm)
          (Cfg.site_to_string d.Values.d_site))
      (Values.dead_branches v);
    Format.fprintf ppf
      "value analysis: %d facts, %d dead sites, %d dead branches@."
      (Values.fact_count v)
      (Values.dead_site_count v)
      (Values.dead_branch_count v)

let values_json t =
  let open Velodrome_util.Json in
  match t.vals with
  | None -> Null
  | Some v ->
    let fact_json (f : Values.fact) =
      Obj
        [
          ("site", String (Cfg.site_to_string f.Values.f_site));
          ("target", String (Values.target_string t.names f.Values.target));
          ("interval", String (Values.itv_to_string f.Values.itv));
        ]
    in
    let branch_json (d : Values.dead_branch) =
      Obj
        [
          ("site", String (Cfg.site_to_string d.Values.d_site));
          ("arm", String (Values.arm_string d.Values.d_arm));
          ("thread", Int d.Values.d_site.Cfg.thread);
        ]
    in
    Obj
      [
        ("facts", List (List.map fact_json (Values.facts v)));
        ( "dead_branches",
          List (List.map branch_json (Values.dead_branches v)) );
        ( "summary",
          Obj
            [
              ("facts", Int (Values.fact_count v));
              ("dead_sites", Int (Values.dead_site_count v));
              ("dead_branches", Int (Values.dead_branch_count v));
            ] );
      ]

(* --- race report --------------------------------------------------------- *)

(* A race-pair access has no label of its own; the innermost enclosing
   atomic block is the closest stable anchor a source position can hang
   off. *)
let access_position pos (acc : Races.access) =
  match acc.Races.atomics with [] -> None | l :: _ -> pos l

let pp_races_human ?(pos = fun _ -> None) ppf t =
  let pair_no = ref 0 in
  List.iter
    (fun (p : Races.pair) ->
      incr pair_no;
      let endpoint (acc : Races.access) =
        let where =
          match access_position pos acc with
          | Some (line, col) -> Printf.sprintf " (%d:%d)" line col
          | None -> ""
        in
        Format.fprintf ppf "    %s at %s%s@."
          (if acc.Races.write then "write" else "read")
          (Cfg.site_to_string acc.Races.site)
          where
      in
      Format.fprintf ppf "race #%d on %s: %s@." !pair_no
        (Names.var_name t.names p.Races.var)
        (Races.explain t.names p);
      endpoint p.Races.a;
      endpoint p.Races.b)
    (race_pairs t);
  Format.fprintf ppf "%d race pair%s on %d variable%s (%d access sites)@."
    (race_pair_count t)
    (if race_pair_count t = 1 then "" else "s")
    (Races.racy_var_count t.races)
    (if Races.racy_var_count t.races = 1 then "" else "s")
    (Races.access_sites t.races)

let races_to_json ?(pos = fun _ -> None) ?file t =
  let open Velodrome_util.Json in
  let access_json (acc : Races.access) =
    let position =
      match access_position pos acc with
      | Some (line, col) -> Obj [ ("line", Int line); ("col", Int col) ]
      | None -> Null
    in
    Obj
      [
        ("site", String (Cfg.site_to_string acc.Races.site));
        ("access", String (if acc.Races.write then "write" else "read"));
        ( "locks",
          List
            (List.map
               (fun l ->
                 String (Names.lock_name t.names (Lock.of_int l)))
               acc.Races.locks) );
        ( "atomic",
          match acc.Races.atomics with
          | [] -> Null
          | l :: _ -> String (Names.label_name t.names l) );
        ("position", position);
      ]
  in
  let pair_json (p : Races.pair) =
    Obj
      [
        ("var", String (Names.var_name t.names p.Races.var));
        ("a", access_json p.Races.a);
        ("b", access_json p.Races.b);
        ("explanation", String (Races.explain t.names p));
      ]
  in
  Obj
    (List.concat
       [
         (match file with Some f -> [ ("file", String f) ] | None -> []);
         [
           ("pairs", List (List.map pair_json (race_pairs t)));
           ( "summary",
             Obj
               [
                 ("pairs", Int (race_pair_count t));
                 ("racy_vars", Int (Races.racy_var_count t.races));
                 ("access_sites", Int (Races.access_sites t.races));
                 ("blocks", Int (block_count t));
                 ("proved", Int (proved_count t));
               ] );
         ];
       ])
