open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_sim
module IntSet = Set.Make (Int)

type block = {
  label : Label.t;
  name : string;
  sites : Cfg.site list;
  verdict : Reduce.verdict;
}

type t = {
  names : Names.t;
  cfg : Cfg.t;
  locksets : Lockset.t;
  mhp : Mhp.t;
  races : Races.t;
  movers : Movers.t;
  blocks : block list;
  proved_ids : IntSet.t;
}

let analyze ?(rule = Movers.Pairwise) (p : Ast.program) =
  let names = p.Ast.names in
  let cfg = Cfg.of_program p in
  let locksets = Lockset.analyze cfg in
  let mhp = Mhp.analyze cfg in
  let races = Races.analyze names cfg locksets mhp in
  let movers = Movers.analyze ~rule names cfg locksets races in
  let occs = Reduce.occurrences names movers p in
  let by_label = Hashtbl.create 16 in
  List.iter
    (fun (o : Reduce.occurrence) ->
      let k = Label.to_int o.Reduce.label in
      let sites, reasons =
        Option.value ~default:([], []) (Hashtbl.find_opt by_label k)
      in
      Hashtbl.replace by_label k
        (o.Reduce.site :: sites, o.Reduce.reasons @ reasons))
    occs;
  let blocks =
    Hashtbl.fold
      (fun k (sites, reasons) acc ->
        let label = Label.of_int k in
        let reasons =
          List.sort_uniq Reduce.reason_compare reasons
        in
        let verdict =
          match reasons with
          | [] -> Reduce.Proved_atomic
          | rs -> Reduce.Unknown rs
        in
        {
          label;
          name = Names.label_name names label;
          sites = List.sort Cfg.site_compare sites;
          verdict;
        }
        :: acc)
      by_label []
    |> List.sort (fun a b -> Label.compare a.label b.label)
  in
  let proved_ids =
    List.fold_left
      (fun acc b ->
        match b.verdict with
        | Reduce.Proved_atomic -> IntSet.add (Label.to_int b.label) acc
        | Reduce.Unknown _ -> acc)
      IntSet.empty blocks
  in
  { names; cfg; locksets; mhp; races; movers; blocks; proved_ids }

let blocks t = t.blocks
let cfg t = t.cfg
let locksets t = t.locksets
let mhp t = t.mhp
let races t = t.races
let race_pairs t = Races.pairs t.races
let race_pair_count t = Races.pair_count t.races
let names t = t.names
let movers t = t.movers
let proved t l = IntSet.mem (Label.to_int l) t.proved_ids
let proved_count t = IntSet.cardinal t.proved_ids
let block_count t = List.length t.blocks
let suppressible_var t x = Movers.suppressible t.movers x

let filter_predicates t =
  let proved_id l = IntSet.mem l t.proved_ids in
  let suppress_var x = Movers.suppressible t.movers (Var.of_int x) in
  (proved_id, suppress_var)

(* --- rendering ----------------------------------------------------------- *)

let verdict_string = function
  | Reduce.Proved_atomic -> "proved-atomic"
  | Reduce.Unknown _ -> "unknown"

let pp_human ?(pos = fun _ -> None) ppf t =
  List.iter
    (fun b ->
      let where =
        match pos b.label with
        | Some (line, col) -> Printf.sprintf " (%d:%d)" line col
        | None -> ""
      in
      (match b.verdict with
      | Reduce.Proved_atomic ->
        Format.fprintf ppf "%-24s%s proved atomic (%d occurrence%s)@." b.name
          where (List.length b.sites)
          (if List.length b.sites = 1 then "" else "s")
      | Reduce.Unknown reasons ->
        Format.fprintf ppf "%-24s%s UNKNOWN (%d occurrence%s)@." b.name where
          (List.length b.sites)
          (if List.length b.sites = 1 then "" else "s");
        List.iter
          (fun (r : Reduce.reason) ->
            Format.fprintf ppf "    %a: %s@." Cfg.pp_site r.Reduce.site
              r.Reduce.detail)
          reasons))
    t.blocks;
  Format.fprintf ppf "%d/%d blocks proved atomic@." (proved_count t)
    (block_count t)

let to_json ?(pos = fun _ -> None) ?file t =
  let open Velodrome_util.Json in
  let block_json b =
    let position =
      match pos b.label with
      | Some (line, col) -> Obj [ ("line", Int line); ("col", Int col) ]
      | None -> Null
    in
    let reasons =
      match b.verdict with
      | Reduce.Proved_atomic -> []
      | Reduce.Unknown rs ->
        List.map
          (fun (r : Reduce.reason) ->
            Obj
              [
                ("site", String (Cfg.site_to_string r.Reduce.site));
                ("detail", String r.Reduce.detail);
              ])
          rs
    in
    Obj
      [
        ("label", String b.name);
        ("verdict", String (verdict_string b.verdict));
        ("position", position);
        ( "occurrences",
          List (List.map (fun s -> String (Cfg.site_to_string s)) b.sites) );
        ("reasons", List reasons);
      ]
  in
  Obj
    (List.concat
       [
         (match file with Some f -> [ ("file", String f) ] | None -> []);
         [
           ("blocks", List (List.map block_json t.blocks));
           ( "summary",
             Obj
               [
                 ("blocks", Int (block_count t));
                 ("proved", Int (proved_count t));
                 ("unknown", Int (block_count t - proved_count t));
                 ("race_pairs", Int (race_pair_count t));
                 ("racy_vars", Int (Races.racy_var_count t.races));
               ] );
         ];
       ])

(* --- race report --------------------------------------------------------- *)

(* A race-pair access has no label of its own; the innermost enclosing
   atomic block is the closest stable anchor a source position can hang
   off. *)
let access_position pos (acc : Races.access) =
  match acc.Races.atomics with [] -> None | l :: _ -> pos l

let pp_races_human ?(pos = fun _ -> None) ppf t =
  let pair_no = ref 0 in
  List.iter
    (fun (p : Races.pair) ->
      incr pair_no;
      let endpoint (acc : Races.access) =
        let where =
          match access_position pos acc with
          | Some (line, col) -> Printf.sprintf " (%d:%d)" line col
          | None -> ""
        in
        Format.fprintf ppf "    %s at %s%s@."
          (if acc.Races.write then "write" else "read")
          (Cfg.site_to_string acc.Races.site)
          where
      in
      Format.fprintf ppf "race #%d on %s: %s@." !pair_no
        (Names.var_name t.names p.Races.var)
        (Races.explain t.names p);
      endpoint p.Races.a;
      endpoint p.Races.b)
    (race_pairs t);
  Format.fprintf ppf "%d race pair%s on %d variable%s (%d access sites)@."
    (race_pair_count t)
    (if race_pair_count t = 1 then "" else "s")
    (Races.racy_var_count t.races)
    (if Races.racy_var_count t.races = 1 then "" else "s")
    (Races.access_sites t.races)

let races_to_json ?(pos = fun _ -> None) ?file t =
  let open Velodrome_util.Json in
  let access_json (acc : Races.access) =
    let position =
      match access_position pos acc with
      | Some (line, col) -> Obj [ ("line", Int line); ("col", Int col) ]
      | None -> Null
    in
    Obj
      [
        ("site", String (Cfg.site_to_string acc.Races.site));
        ("access", String (if acc.Races.write then "write" else "read"));
        ( "locks",
          List
            (List.map
               (fun l ->
                 String (Names.lock_name t.names (Lock.of_int l)))
               acc.Races.locks) );
        ( "atomic",
          match acc.Races.atomics with
          | [] -> Null
          | l :: _ -> String (Names.label_name t.names l) );
        ("position", position);
      ]
  in
  let pair_json (p : Races.pair) =
    Obj
      [
        ("var", String (Names.var_name t.names p.Races.var));
        ("a", access_json p.Races.a);
        ("b", access_json p.Races.b);
        ("explanation", String (Races.explain t.names p));
      ]
  in
  Obj
    (List.concat
       [
         (match file with Some f -> [ ("file", String f) ] | None -> []);
         [
           ("pairs", List (List.map pair_json (race_pairs t)));
           ( "summary",
             Obj
               [
                 ("pairs", Int (race_pair_count t));
                 ("racy_vars", Int (Races.racy_var_count t.races));
                 ("access_sites", Int (Races.access_sites t.races));
                 ("blocks", Int (block_count t));
                 ("proved", Int (proved_count t));
               ] );
         ];
       ])
