open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_sim
module IntMap = Map.Make (Int)

(* --- interval domain ----------------------------------------------------- *)

type bound = Neg_inf | Fin of int | Pos_inf

type itv = Bot | Itv of bound * bound

(* The simulator evaluates expressions over wrapping native ints. Keeping
   every tracked magnitude far below [max_int] means no arithmetic on
   in-range operands can wrap (|a|,|b| <= 2^30 bounds sums by 2^31 and
   products by 2^60), so interval endpoints computed here are exact;
   anything that could leave the range is washed to [top] instead of
   risking a claim a wrapped concrete value would escape. *)
let limit = 1 lsl 30

let top = Itv (Neg_inf, Pos_inf)
let bot = Bot

let bcmp a b =
  match (a, b) with
  | Neg_inf, Neg_inf | Pos_inf, Pos_inf -> 0
  | Neg_inf, _ -> -1
  | _, Neg_inf -> 1
  | Pos_inf, _ -> 1
  | _, Pos_inf -> -1
  | Fin x, Fin y -> Int.compare x y

let wash_lo = function Fin l when l < -limit -> Neg_inf | b -> b
let wash_hi = function Fin h when h > limit -> Pos_inf | b -> b

let interval lo hi =
  if lo > hi then Bot else Itv (wash_lo (Fin lo), wash_hi (Fin hi))

let const n = interval n n

let mem v = function
  | Bot -> false
  | Itv (lo, hi) ->
    (match lo with Neg_inf -> true | Fin l -> l <= v | Pos_inf -> false)
    && (match hi with Pos_inf -> true | Fin h -> v <= h | Neg_inf -> false)

let is_singleton = function
  | Itv (Fin l, Fin h) when l = h -> Some l
  | _ -> None

let leq a b =
  match (a, b) with
  | Bot, _ -> true
  | _, Bot -> false
  | Itv (la, ha), Itv (lb, hb) -> bcmp lb la <= 0 && bcmp ha hb <= 0

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Itv (la, ha), Itv (lb, hb) ->
    Itv
      ( (if bcmp la lb <= 0 then la else lb),
        if bcmp ha hb >= 0 then ha else hb )

let meet a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb) ->
    let lo = if bcmp la lb >= 0 then la else lb in
    let hi = if bcmp ha hb <= 0 then ha else hb in
    if bcmp lo hi > 0 then Bot else Itv (lo, hi)

let widen old next =
  match (old, next) with
  | Bot, x | x, Bot -> x
  | Itv (lo, ho), Itv (ln, hn) ->
    Itv
      ( (if bcmp ln lo < 0 then Neg_inf else lo),
        if bcmp hn ho > 0 then Pos_inf else ho )

(* Arithmetic lifts. Finite endpoints must be within [limit] for the
   endpoint computation to be exact (in-range operands cannot wrap
   natively); infinite endpoints are not value claims and propagate
   through addition/subtraction structurally. In a normalized interval
   the lower bound is never [Pos_inf] and the upper never [Neg_inf]. *)
let fin_ok = function Fin n -> n >= -limit && n <= limit | _ -> true

let lift2 f a b =
  match (a, b) with
  | Bot, _ | _, Bot -> Bot
  | Itv (la, ha), Itv (lb, hb)
    when fin_ok la && fin_ok ha && fin_ok lb && fin_ok hb ->
    f (la, ha) (lb, hb)
  | _, _ -> top

let clamp lo hi = Itv (wash_lo (Fin lo), wash_hi (Fin hi))

(* Lower-endpoint / upper-endpoint sums: an infinite operand dominates. *)
let blo_add a b =
  match (a, b) with
  | Neg_inf, _ | _, Neg_inf -> Neg_inf
  | Fin x, Fin y -> wash_lo (Fin (x + y))
  | _ -> Neg_inf (* unreachable on normalized bounds *)

let bhi_add a b =
  match (a, b) with
  | Pos_inf, _ | _, Pos_inf -> Pos_inf
  | Fin x, Fin y -> wash_hi (Fin (x + y))
  | _ -> Pos_inf (* unreachable on normalized bounds *)

let bneg = function Neg_inf -> Pos_inf | Pos_inf -> Neg_inf | Fin n -> Fin (-n)

let add = lift2 (fun (la, ha) (lb, hb) -> Itv (blo_add la lb, bhi_add ha hb))

let sub =
  lift2 (fun (la, ha) (lb, hb) ->
      Itv (blo_add la (bneg hb), bhi_add ha (bneg lb)))

(* Multiplication, division and modulo keep the all-finite requirement:
   infinite operands fall back to [top] (sound, and loops — the one place
   infinities arise — only ever feed addition). *)
let fin4 f (la, ha) (lb, hb) =
  match (la, ha, lb, hb) with
  | Fin la, Fin ha, Fin lb, Fin hb -> f la ha lb hb
  | _ -> top

let mul =
  lift2
    (fin4 (fun la ha lb hb ->
         let p1 = la * lb and p2 = la * hb and p3 = ha * lb and p4 = ha * hb in
         clamp (min (min p1 p2) (min p3 p4)) (max (max p1 p2) (max p3 p4))))

(* [Ast.eval] defines x/0 = 0 and x mod 0 = 0. OCaml division truncates
   toward zero, which is monotone in the dividend for a fixed non-zero
   divisor, so a singleton divisor yields exact endpoint quotients; any
   wider divisor falls back to the magnitude bound |a/d| <= |a| (with 0
   included, covering a zero divisor). *)
let div =
  lift2
    (fin4 (fun la ha lb hb ->
         if lb = hb then
           if lb = 0 then const 0
           else
             let q1 = la / lb and q2 = ha / lb in
             clamp (min q1 q2) (max q1 q2)
         else
           let m = max (abs la) (abs ha) in
           clamp (-m) m))

let mod_ =
  lift2
    (fin4 (fun la ha lb hb ->
         if lb = 0 && hb = 0 then const 0
         else
           (* |a mod d| <= min(|a|, |d|-1) for d <> 0, result 0 for d = 0,
              and the sign follows the dividend. *)
           let k = max (abs lb) (abs hb) in
           let j = min (max 0 (k - 1)) (max (abs la) (abs ha)) in
           if la >= 0 then clamp 0 j
           else if ha <= 0 then clamp (-j) 0
           else clamp (-j) j))

let bound_to_string = function
  | Neg_inf -> "-inf"
  | Pos_inf -> "+inf"
  | Fin n -> string_of_int n

let itv_to_string = function
  | Bot -> "bot"
  | Itv (Neg_inf, Pos_inf) -> "top"
  | Itv (Fin l, Fin h) when l = h -> Printf.sprintf "=%d" l
  | Itv (lo, hi) ->
    Printf.sprintf "[%s..%s]" (bound_to_string lo) (bound_to_string hi)

(* --- register environments ----------------------------------------------- *)

(* The interpreter allocates 256 registers per thread, all zero except
   the preloaded tid register; reads beyond the file yield 0 and writes
   are dropped. The abstract environment mirrors that exactly: an absent
   binding means "definitely 0". *)
let reg_limit = 256

let env_get env r =
  if r < 0 || r >= reg_limit then const 0
  else Option.value ~default:(const 0) (IntMap.find_opt r env)

let env_set env r v = if r >= 0 && r < reg_limit then IntMap.add r v env else env

let env_join a b =
  IntMap.merge
    (fun _ va vb ->
      Some
        (join
           (Option.value ~default:(const 0) va)
           (Option.value ~default:(const 0) vb)))
    a b

let env_widen old next =
  IntMap.merge
    (fun _ vo vn ->
      Some
        (widen
           (Option.value ~default:(const 0) vo)
           (Option.value ~default:(const 0) vn)))
    old next

let env_leq a b =
  IntMap.for_all (fun k va -> leq va (env_get b k)) a
  && IntMap.for_all (fun k vb -> leq (env_get a k) vb) b

let join_opt a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some ea, Some eb -> Some (env_join ea eb)

(* --- expression and condition evaluation --------------------------------- *)

let rec eval env = function
  | Ast.Int n -> const n
  | Ast.Reg r -> env_get env r
  | Ast.Add (a, b) -> add (eval env a) (eval env b)
  | Ast.Sub (a, b) -> sub (eval env a) (eval env b)
  | Ast.Mul (a, b) -> mul (eval env a) (eval env b)
  | Ast.Div (a, b) -> div (eval env a) (eval env b)
  | Ast.Mod (a, b) -> mod_ (eval env a) (eval env b)

let negate = function
  | Ast.Eq -> Ast.Ne
  | Ast.Ne -> Ast.Eq
  | Ast.Lt -> Ast.Ge
  | Ast.Le -> Ast.Gt
  | Ast.Gt -> Ast.Le
  | Ast.Ge -> Ast.Lt

let swap = function
  | Ast.Eq -> Ast.Eq
  | Ast.Ne -> Ast.Ne
  | Ast.Lt -> Ast.Gt
  | Ast.Le -> Ast.Ge
  | Ast.Gt -> Ast.Lt
  | Ast.Ge -> Ast.Le

(* Can [a cmp b] hold for some a in [ia], b in [ib]? Over-approximate. *)
let sat ia cmp ib =
  match (ia, ib) with
  | Bot, _ | _, Bot -> false
  | Itv (la, ha), Itv (lb, hb) -> (
    match cmp with
    | Ast.Eq -> meet ia ib <> Bot
    | Ast.Ne -> (
      match (is_singleton ia, is_singleton ib) with
      | Some x, Some y -> x <> y
      | _ -> true)
    | Ast.Lt -> bcmp la hb < 0
    | Ast.Le -> bcmp la hb <= 0
    | Ast.Gt -> bcmp ha lb > 0
    | Ast.Ge -> bcmp ha lb >= 0)

let bpred = function Fin n -> Fin (n - 1) | b -> b
let bsucc = function Fin n -> Fin (n + 1) | b -> b

(* The interval containing every a with exists b in [ib]. a cmp b. *)
let lhs_constraint cmp ib =
  match ib with
  | Bot -> Bot
  | Itv (lb, hb) -> (
    match cmp with
    | Ast.Eq -> ib
    | Ast.Ne -> top (* singleton shaving is done at the meet site *)
    | Ast.Lt -> Itv (Neg_inf, bpred hb)
    | Ast.Le -> Itv (Neg_inf, hb)
    | Ast.Gt -> Itv (bsucc lb, Pos_inf)
    | Ast.Ge -> Itv (lb, Pos_inf))

(* Shave an endpoint equal to a known-excluded constant. *)
let shave_ne ia k =
  match ia with
  | Itv (Fin l, Fin h) when l = k && h = k -> Bot
  | Itv (Fin l, hi) when l = k -> Itv (Fin (l + 1), hi)
  | Itv (lo, Fin h) when h = k -> Itv (lo, Fin (h - 1))
  | _ -> ia

let refine_reg env r cmp other_itv =
  if r < 0 || r >= reg_limit then Some env
  else
    let cur = env_get env r in
    let refined =
      match cmp with
      | Ast.Ne -> (
        match is_singleton other_itv with
        | Some k -> shave_ne cur k
        | None -> cur)
      | _ -> meet cur (lhs_constraint cmp other_itv)
    in
    if refined = Bot then None else Some (env_set env r refined)

(* Refine [env] under the assumption that [cond] evaluates to [sense];
   [None] when the assumption is unsatisfiable (the arm is dead). *)
let refine env (cond : Ast.cond) sense =
  let cmp = if sense then cond.Ast.cmp else negate cond.Ast.cmp in
  let ia = eval env cond.Ast.lhs and ib = eval env cond.Ast.rhs in
  if not (sat ia cmp ib) then None
  else
    let env =
      match cond.Ast.lhs with
      | Ast.Reg r -> refine_reg env r cmp ib
      | _ -> Some env
    in
    match env with
    | None -> None
    | Some env -> (
      match cond.Ast.rhs with
      | Ast.Reg r -> refine_reg env r (swap cmp) ia
      | _ -> Some env)

(* --- analysis results ---------------------------------------------------- *)

type target = Reg_target of Ast.reg | Var_target of Var.t

type fact = { f_site : Cfg.site; target : target; itv : itv }

type arm = Then_arm | Else_arm | Loop_body | Loop_exit

type dead_branch = { d_site : Cfg.site; d_arm : arm }

type t = {
  facts_tbl : (int * int list, fact) Hashtbl.t;
  sorted_facts : fact list;
  dead : (int * int list, unit) Hashtbl.t;
  branches : dead_branch list;
  var_inv : itv array;
}

(* --- the walker ---------------------------------------------------------- *)

type ctx = {
  vinv : itv array;  (** current shared-variable invariants *)
  writes : itv array;  (** live write values accumulated this walk *)
  facts : (int * int list, fact) Hashtbl.t;
  seen : (int * int list, unit) Hashtbl.t;
  live : (int * int list, unit) Hashtbl.t;
  mutable dead_arms : dead_branch list;
}

let record_write ctx x v =
  let k = Var.to_int x in
  if k >= 0 && k < Array.length ctx.writes then
    ctx.writes.(k) <- join ctx.writes.(k) v

let vinv_get ctx x =
  let k = Var.to_int x in
  if k >= 0 && k < Array.length ctx.vinv then ctx.vinv.(k) else top

let add_fact ctx key f =
  match Hashtbl.find_opt ctx.facts key with
  | None -> Hashtbl.replace ctx.facts key f
  | Some old ->
    Hashtbl.replace ctx.facts key { f with itv = join old.itv f.itv }

let add_dead_arm ctx site arm =
  ctx.dead_arms <- { d_site = site; d_arm = arm } :: ctx.dead_arms

(* Widening delay: small counted loops (the generator's bound is 3)
   stabilize exactly before bounds start getting washed to infinity. *)
let widen_from = 4

(* Walk a statement list; [env = None] means the point is unreachable —
   the recursion continues to mark descendant sites as seen (so they
   count as dead), never recording facts. Statement [j] of a block at
   [path] sits at [path @ [j]]; if-arms open [path @ [arm]]; while and
   atomic bodies reuse the statement's own path — the same coordinates
   as [Cfg.of_program] and the interpreter. *)
let rec walk_stmts ctx ~record thread path env stmts =
  List.fold_left
    (fun (env, j) stmt ->
      (walk_stmt ctx ~record thread (path @ [ j ]) env stmt, j + 1))
    (env, 0) stmts
  |> fst

and walk_stmt ctx ~record thread path env stmt =
  let key = (thread, path) in
  let site = { Cfg.thread; path } in
  if record then begin
    Hashtbl.replace ctx.seen key ();
    if env <> None then Hashtbl.replace ctx.live key ()
  end;
  match stmt with
  | Ast.Read (r, x) -> (
    match env with
    | None -> None
    | Some e ->
      let v = vinv_get ctx x in
      if record then add_fact ctx key { f_site = site; target = Var_target x; itv = v };
      Some (env_set e r v))
  | Ast.Write (x, ex) -> (
    match env with
    | None -> None
    | Some e ->
      let v = eval e ex in
      record_write ctx x v;
      if record then add_fact ctx key { f_site = site; target = Var_target x; itv = v };
      env)
  | Ast.Local (r, ex) -> (
    match env with
    | None -> None
    | Some e ->
      let v = eval e ex in
      if record then add_fact ctx key { f_site = site; target = Reg_target r; itv = v };
      Some (env_set e r v))
  | Ast.Acquire _ | Ast.Release _ | Ast.Work _ | Ast.Yield -> env
  | Ast.Atomic (_, body) -> walk_stmts ctx ~record thread path env body
  | Ast.If (c, then_b, else_b) ->
    let env_then = Option.bind env (fun e -> refine e c true) in
    let env_else = Option.bind env (fun e -> refine e c false) in
    if record && env <> None then begin
      if env_then = None then add_dead_arm ctx site Then_arm;
      if env_else = None then add_dead_arm ctx site Else_arm
    end;
    let out_t = walk_stmts ctx ~record thread (path @ [ 0 ]) env_then then_b in
    let out_e = walk_stmts ctx ~record thread (path @ [ 1 ]) env_else else_b in
    join_opt out_t out_e
  | Ast.While (c, body) -> (
    match env with
    | None ->
      ignore (walk_stmts ctx ~record thread path None body);
      None
    | Some e ->
      (* Head fixpoint: the head environment covers loop entry and every
         back edge; widen after [widen_from] rounds so it terminates. *)
      let rec fix n head =
        let inb = refine head c true in
        let after =
          walk_stmts ctx ~record:false thread path inb body
        in
        let head' =
          match after with None -> head | Some a -> env_join head a
        in
        if env_leq head' head then head
        else fix (n + 1) (if n >= widen_from then env_widen head head' else head')
      in
      let head = fix 0 e in
      let env_body = refine head c true in
      let env_exit = refine head c false in
      if record then begin
        if env_body = None then add_dead_arm ctx site Loop_body;
        if env_exit = None then add_dead_arm ctx site Loop_exit;
        (* One recording pass over the body under the stabilized head. *)
        ignore (walk_stmts ctx ~record thread path env_body body)
      end;
      env_exit)

let init_env thread =
  IntMap.add Ast.tid_reg (const thread) IntMap.empty

let walk ctx ~record (p : Ast.program) =
  Array.iteri
    (fun thread body ->
      ignore (walk_stmts ctx ~record thread [] (Some (init_env thread)) body))
    p.Ast.threads

let fact_compare a b = Cfg.site_compare a.f_site b.f_site

let branch_compare a b =
  match Cfg.site_compare a.d_site b.d_site with
  | 0 -> Stdlib.compare a.d_arm b.d_arm
  | c -> c

let analyze (p : Ast.program) =
  let nvars = max 1 p.Ast.var_count in
  let base = Array.make nvars (const 0) in
  List.iter
    (fun (x, v) ->
      let k = Var.to_int x in
      if k >= 0 && k < nvars then base.(k) <- const v)
    p.Ast.init;
  let ctx =
    {
      vinv = Array.copy base;
      writes = Array.make nvars Bot;
      facts = Hashtbl.create 256;
      seen = Hashtbl.create 256;
      live = Hashtbl.create 256;
      dead_arms = [];
    }
  in
  (* Outer fixpoint on the shared-variable invariants: re-walk every
     thread, fold the live writes back in, widen once the round count
     passes the delay. Transfer functions and condition satisfiability
     are monotone in the invariants, so the live-site set only grows and
     the final walk's facts cover every earlier round's. *)
  let rec rounds n =
    Array.fill ctx.writes 0 nvars Bot;
    walk ctx ~record:false p;
    let changed = ref false in
    Array.iteri
      (fun i w ->
        let next = join base.(i) w in
        if not (leq next ctx.vinv.(i)) then begin
          changed := true;
          ctx.vinv.(i) <-
            (if n >= 2 then widen ctx.vinv.(i) next
             else join ctx.vinv.(i) next)
        end)
      ctx.writes;
    if !changed then rounds (n + 1)
  in
  rounds 0;
  walk ctx ~record:true p;
  let dead = Hashtbl.create 64 in
  Hashtbl.iter
    (fun key () ->
      if not (Hashtbl.mem ctx.live key) then Hashtbl.replace dead key ())
    ctx.seen;
  let sorted_facts =
    Hashtbl.fold (fun _ f acc -> f :: acc) ctx.facts []
    |> List.sort fact_compare
  in
  {
    facts_tbl = ctx.facts;
    sorted_facts;
    dead;
    branches = List.sort_uniq branch_compare ctx.dead_arms;
    var_inv = ctx.vinv;
  }

let dead_site t (s : Cfg.site) =
  Hashtbl.mem t.dead (s.Cfg.thread, s.Cfg.path)

let fact_at t (s : Cfg.site) =
  Hashtbl.find_opt t.facts_tbl (s.Cfg.thread, s.Cfg.path)

let facts t = t.sorted_facts
let dead_branches t = t.branches

let var_interval t x =
  let k = Var.to_int x in
  if k >= 0 && k < Array.length t.var_inv then t.var_inv.(k) else top

let dead_site_count t = Hashtbl.length t.dead
let dead_branch_count t = List.length t.branches
let fact_count t = List.length t.sorted_facts

let arm_string = function
  | Then_arm -> "then"
  | Else_arm -> "else"
  | Loop_body -> "body"
  | Loop_exit -> "exit"

let arm_message = function
  | Then_arm | Else_arm -> "never takes this arm"
  | Loop_body -> "never enters the loop"
  | Loop_exit -> "never leaves the loop"

let target_string names = function
  | Reg_target r -> Printf.sprintf "r%d" r
  | Var_target x -> Names.var_name names x
