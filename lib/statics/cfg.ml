open Velodrome_trace.Ids
open Velodrome_sim

type site = { thread : int; path : int list }

let site_compare a b =
  match Int.compare a.thread b.thread with
  | 0 -> Stdlib.compare a.path b.path
  | c -> c

let pp_site ppf s =
  Format.fprintf ppf "t%d:%s" s.thread
    (String.concat "." (List.map string_of_int s.path))

let site_to_string s = Format.asprintf "%a" pp_site s

type eff =
  | Acquire of Lock.t
  | Release of Lock.t
  | Read of Var.t
  | Write of Var.t
  | Enter of Label.t
  | Exit of Label.t
  | Silent

type node = { id : int; site : site; eff : eff }

type t = {
  nodes : node array;
  succs : int list array;
  preds : int list array;
  entries : int array;
}

(* --- construction -------------------------------------------------------- *)

type builder = {
  mutable bnodes : node list;  (** reverse order *)
  mutable bedges : (int * int) list;
  mutable count : int;
}

let add_node b site eff =
  let id = b.count in
  b.count <- id + 1;
  b.bnodes <- { id; site; eff } :: b.bnodes;
  id

let add_edge b src dst = b.bedges <- (src, dst) :: b.bedges

(* Lower a statement list; [frontier] is the set of nodes whose control
   falls through into the next statement. Returns the new frontier. *)
let rec lower b thread path frontier stmts =
  List.fold_left
    (fun (frontier, j) stmt ->
      (lower_stmt b thread (path @ [ j ]) frontier stmt, j + 1))
    (frontier, 0) stmts
  |> fst

and lower_stmt b thread path frontier stmt =
  let site = { thread; path } in
  let seq eff =
    let n = add_node b site eff in
    List.iter (fun p -> add_edge b p n) frontier;
    [ n ]
  in
  match stmt with
  | Ast.Read (_, x) -> seq (Read x)
  | Ast.Write (x, _) -> seq (Write x)
  | Ast.Acquire m -> seq (Acquire m)
  | Ast.Release m -> seq (Release m)
  | Ast.Local _ | Ast.Work _ | Ast.Yield -> seq Silent
  | Ast.Atomic (l, body) ->
    let enter = seq (Enter l) in
    let after = lower b thread path enter body in
    let exit_ = add_node b site (Exit l) in
    List.iter (fun p -> add_edge b p exit_) after;
    [ exit_ ]
  | Ast.If (_, then_b, else_b) ->
    let branch = seq Silent in
    let t_end = lower b thread (path @ [ 0 ]) branch then_b in
    let e_end = lower b thread (path @ [ 1 ]) branch else_b in
    t_end @ e_end
  | Ast.While (_, body) ->
    (* [head] is both the loop's join point and its exit: control reaches
       it before every iteration and on the way out. *)
    let head = seq Silent in
    let body_end = lower b thread path head body in
    List.iter (fun p -> add_edge b p (List.hd head)) body_end;
    head

let of_program (p : Ast.program) =
  let b = { bnodes = []; bedges = []; count = 0 } in
  let entries =
    Array.mapi
      (fun thread body ->
        let entry = add_node b { thread; path = [] } Silent in
        ignore (lower b thread [] [ entry ] body);
        entry)
      p.Ast.threads
  in
  let nodes = Array.make b.count { id = 0; site = { thread = 0; path = [] }; eff = Silent } in
  List.iter (fun n -> nodes.(n.id) <- n) b.bnodes;
  let succs = Array.make b.count [] in
  let preds = Array.make b.count [] in
  List.iter
    (fun (src, dst) ->
      succs.(src) <- dst :: succs.(src);
      preds.(dst) <- src :: preds.(dst))
    b.bedges;
  { nodes; succs; preds; entries }

let node_count t = Array.length t.nodes
let node t id = t.nodes.(id)
let succs t id = t.succs.(id)
let preds t id = t.preds.(id)
let entries t = t.entries

let iter_nodes f t = Array.iter f t.nodes

let pp_eff names ppf = function
  | Acquire m ->
    Format.fprintf ppf "acq(%s)" (Velodrome_trace.Names.lock_name names m)
  | Release m ->
    Format.fprintf ppf "rel(%s)" (Velodrome_trace.Names.lock_name names m)
  | Read x ->
    Format.fprintf ppf "rd(%s)" (Velodrome_trace.Names.var_name names x)
  | Write x ->
    Format.fprintf ppf "wr(%s)" (Velodrome_trace.Names.var_name names x)
  | Enter l ->
    Format.fprintf ppf "enter(%s)" (Velodrome_trace.Names.label_name names l)
  | Exit l ->
    Format.fprintf ppf "exit(%s)" (Velodrome_trace.Names.label_name names l)
  | Silent -> Format.pp_print_string ppf "silent"
