open Velodrome_trace
open Velodrome_trace.Ids

type access = {
  node : int;
  site : Cfg.site;
  write : bool;
  locks : int list;  (** must-lockset at the site, ascending lock ids *)
  atomics : Label.t list;  (** enclosing atomic blocks, innermost first *)
}

type pair = { var : Var.t; a : access; b : access }

let pair_compare p q =
  match Var.compare p.var q.var with
  | 0 -> (
    match Cfg.site_compare p.a.site q.a.site with
    | 0 -> Cfg.site_compare p.b.site q.b.site
    | c -> c)
  | c -> c

type t = {
  pairs : pair list;  (** sorted by [pair_compare], [a.site <= b.site] *)
  by_site : (int * int list, pair) Hashtbl.t;  (** first witness per site *)
  by_var : (int, int) Hashtbl.t;  (** racy var id -> pair count *)
  access_sites : int;  (** non-volatile shared access sites examined *)
}

(* Ascending int lists share no element. *)
let rec disjoint xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> true
  | x :: xs', y :: ys' ->
    if x = y then false
    else if x < y then disjoint xs' ys
    else disjoint xs ys'

let analyze ?(dead = fun (_ : Cfg.site) -> false) names (cfg : Cfg.t)
    locksets mhp =
  let by_var_sites : (int, access list ref) Hashtbl.t = Hashtbl.create 64 in
  let access_sites = ref 0 in
  Cfg.iter_nodes
    (fun n ->
      let record x ~write =
        if
          (not (Names.is_volatile names x))
          && Mhp.reachable mhp n.Cfg.id
          && not (dead n.Cfg.site)
        then begin
          incr access_sites;
          let acc =
            {
              node = n.Cfg.id;
              site = n.Cfg.site;
              write;
              locks = Lockset.locks_held locksets n.Cfg.id;
              atomics = Mhp.enclosing_atomics mhp n.Cfg.id;
            }
          in
          let k = Var.to_int x in
          match Hashtbl.find_opt by_var_sites k with
          | Some l -> l := acc :: !l
          | None -> Hashtbl.replace by_var_sites k (ref [ acc ])
        end
      in
      match n.Cfg.eff with
      | Cfg.Read x -> record x ~write:false
      | Cfg.Write x -> record x ~write:true
      | _ -> ())
    cfg;
  let by_site = Hashtbl.create 64 in
  let by_var = Hashtbl.create 16 in
  let pairs = ref [] in
  Hashtbl.iter
    (fun var_id sites ->
      let sites = Array.of_list !sites in
      let n = Array.length sites in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a = sites.(i) and b = sites.(j) in
          if
            (a.write || b.write)
            && a.site.Cfg.thread <> b.site.Cfg.thread
            && disjoint a.locks b.locks
          then begin
            (* Canonical orientation, so reports are stable. *)
            let a, b =
              if Cfg.site_compare a.site b.site <= 0 then (a, b) else (b, a)
            in
            let p = { var = Var.of_int var_id; a; b } in
            pairs := p :: !pairs;
            Hashtbl.replace by_var var_id
              (1
              + Option.value ~default:0 (Hashtbl.find_opt by_var var_id));
            let remember acc =
              let key = (acc.site.Cfg.thread, acc.site.Cfg.path) in
              if not (Hashtbl.mem by_site key) then
                Hashtbl.replace by_site key p
            in
            remember a;
            remember b
          end
        done
      done)
    by_var_sites;
  {
    pairs = List.sort pair_compare !pairs;
    by_site;
    by_var;
    access_sites = !access_sites;
  }

let pairs t = t.pairs
let pair_count t = List.length t.pairs
let access_sites t = t.access_sites

let witness t (site : Cfg.site) =
  Hashtbl.find_opt t.by_site (site.Cfg.thread, site.Cfg.path)

let racy_site t site = Option.is_some (witness t site)
let racy_var t x = Hashtbl.mem t.by_var (Var.to_int x)
let racy_var_count t = Hashtbl.length t.by_var

let racy_vars t =
  Hashtbl.fold (fun k _ acc -> k :: acc) t.by_var []
  |> List.sort_uniq Int.compare |> List.map Var.of_int

let other_end p (site : Cfg.site) =
  if Cfg.site_compare p.a.site site = 0 then p.b else p.a

let locks_string names locks =
  match locks with
  | [] -> "no locks"
  | ls ->
    Printf.sprintf "{%s}"
      (String.concat ","
         (List.map (fun l -> Names.lock_name names (Lock.of_int l)) ls))

let access_string names acc =
  Printf.sprintf "%s at %s holding %s"
    (if acc.write then "write" else "read")
    (Cfg.site_to_string acc.site)
    (locks_string names acc.locks)

let explain names p =
  let blocks =
    match
      List.sort_uniq Label.compare (p.a.atomics @ p.b.atomics)
    with
    | [] -> ""
    | ls ->
      Printf.sprintf " (endangers %s)"
        (String.concat ", " (List.map (Names.label_name names) ls))
  in
  Printf.sprintf "%s and %s share no lock%s" (access_string names p.a)
    (access_string names p.b)
    blocks

let pp_pair names ppf p =
  Format.fprintf ppf "%s: %s" (Names.var_name names p.var) (explain names p)
