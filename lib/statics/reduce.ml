open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_sim

type reason = { site : Cfg.site; detail : string }

let reason_compare a b =
  match Cfg.site_compare a.site b.site with
  | 0 -> String.compare a.detail b.detail
  | c -> c

type verdict = Proved_atomic | Unknown of reason list

type occurrence = { label : Label.t; site : Cfg.site; reasons : reason list }

(* The Lipton phase automaton. A block is reducible when every execution
   of it spells R* N? L* over mover classes (B free anywhere): [pre] is
   "still in the R* prefix, commit point not passed", [post] is "past the
   commit point, only L* may follow". A release enters the L* suffix; a
   non-mover is the commit point. We track the set of reachable phases so
   branches and loops stay a finite join. *)
type phases = { pre : bool; post : bool }

let join a b = { pre = a.pre || b.pre; post = a.post || b.post }
let phases_equal a b = a.pre = b.pre && a.post = b.post

type ctx = {
  names : Names.t;
  movers : Movers.t;
  dead : Cfg.site -> bool;
  mutable errors : reason list;
  seen : (int * int list * string, unit) Hashtbl.t;
}

let error ctx (site : Cfg.site) detail =
  let key = (site.Cfg.thread, site.Cfg.path, detail) in
  if not (Hashtbl.mem ctx.seen key) then begin
    Hashtbl.replace ctx.seen key ();
    ctx.errors <- { site; detail } :: ctx.errors
  end

let describe_op names = function
  | Ast.Read (_, x) -> Printf.sprintf "read of %s" (Names.var_name names x)
  | Ast.Write (x, _) -> Printf.sprintf "write of %s" (Names.var_name names x)
  | Ast.Acquire m -> Printf.sprintf "acquire of %s" (Names.lock_name names m)
  | Ast.Release m -> Printf.sprintf "release of %s" (Names.lock_name names m)
  | _ -> "operation"

let step ctx site stmt klass phases =
  match klass with
  | Movers.Both _ -> phases
  | Movers.Right ->
    if phases.post then
      error ctx site
        (Printf.sprintf
           "%s is a right-mover after the commit point (a second \
            synchronization window opens)"
           (describe_op ctx.names stmt));
    phases
  | Movers.Left -> { pre = false; post = phases.pre || phases.post }
  | Movers.Non why ->
    if phases.post then
      error ctx site
        (Printf.sprintf "%s is a second non-mover (%s) after the commit point"
           (describe_op ctx.names stmt)
           (Format.asprintf "%a" Movers.pp_why_non why));
    { pre = false; post = true }

let klass_at ctx site =
  (* Every effectful site was lowered into the CFG; a miss would mean the
     two walks disagree on coordinates, so fail conservatively. *)
  Option.value ~default:(Movers.Non Movers.Unguarded)
    (Movers.at_site ctx.movers site)

let rec walk_stmts ctx thread path phases stmts =
  List.fold_left
    (fun (phases, j) stmt ->
      (walk_stmt ctx thread (path @ [ j ]) phases stmt, j + 1))
    (phases, 0) stmts
  |> fst

and walk_stmt ctx thread path phases stmt =
  let site = { Cfg.thread; path } in
  match stmt with
  | Ast.Read _ | Ast.Write _ | Ast.Acquire _ | Ast.Release _ ->
    (* A statically-dead operation executes on no path through the
       block, so it cannot break the R* N? L* spelling. *)
    if ctx.dead site then phases
    else step ctx site stmt (klass_at ctx site) phases
  | Ast.Local _ | Ast.Work _ | Ast.Yield -> phases
  | Ast.Atomic (_, body) ->
    (* Nested begin/end events are both-movers; the inner block's own
       verdict is computed separately by the occurrence scan. *)
    walk_stmts ctx thread path phases body
  | Ast.If (_, then_b, else_b) ->
    let a = walk_stmts ctx thread (path @ [ 0 ]) phases then_b in
    let b = walk_stmts ctx thread (path @ [ 1 ]) phases else_b in
    join a b
  | Ast.While (_, body) ->
    (* Zero or more iterations: iterate the body from the growing set of
       head phases until it stabilizes (at most two rounds over the
       two-point lattice). *)
    let rec fix acc =
      let after = walk_stmts ctx thread path acc body in
      let next = join acc after in
      if phases_equal next acc then acc else fix next
    in
    fix phases

let check_block ctx thread path body =
  ctx.errors <- [];
  Hashtbl.reset ctx.seen;
  ignore (walk_stmts ctx thread path { pre = true; post = false } body);
  List.sort reason_compare ctx.errors

(* Enumerate every atomic block occurrence, innermost included. Dead
   occurrences (the whole [atomic] sits on a statically-dead site) are
   dropped: they produce no dynamic transaction to check. *)
let occurrences ?(dead = fun (_ : Cfg.site) -> false) names movers
    (p : Ast.program) =
  let ctx = { names; movers; dead; errors = []; seen = Hashtbl.create 16 } in
  let acc = ref [] in
  let rec scan thread path stmts =
    List.iteri
      (fun j stmt ->
        let path' = path @ [ j ] in
        match stmt with
        | Ast.Atomic (l, body) ->
          if not (dead { Cfg.thread; path = path' }) then begin
            let reasons = check_block ctx thread path' body in
            acc :=
              { label = l; site = { Cfg.thread; path = path' }; reasons }
              :: !acc
          end;
          scan thread path' body
        | Ast.If (_, a, b) ->
          scan thread (path' @ [ 0 ]) a;
          scan thread (path' @ [ 1 ]) b
        | Ast.While (_, body) -> scan thread path' body
        | _ -> ())
      stmts
  in
  Array.iteri (fun thread body -> scan thread [] body) p.Ast.threads;
  List.rev !acc
