(** Lipton reduction check over atomic blocks.

    A block is {e reducible} — provably atomic on every execution — when
    each path through it spells [R* N? L*] over the {!Movers} classes:
    right-movers (acquires) first, at most one non-mover as the commit
    point, left-movers (releases) last, both-movers anywhere. The checker
    walks the block's AST tracking the {e set} of reachable automaton
    phases, joining over [if] branches and iterating loop bodies to a
    fixpoint, so the verdict covers every unrolling.

    Each automaton failure becomes a {!reason} carrying the offending
    statement's {!Cfg.site} and a message naming the operation and why it
    could not move. *)

open Velodrome_trace
open Velodrome_trace.Ids

type reason = { site : Cfg.site; detail : string }

val reason_compare : reason -> reason -> int

type verdict = Proved_atomic | Unknown of reason list

type occurrence = {
  label : Label.t;
  site : Cfg.site;  (** where this [atomic] statement sits *)
  reasons : reason list;  (** empty iff this occurrence is reducible *)
}

val occurrences :
  ?dead:(Cfg.site -> bool) ->
  Names.t ->
  Movers.t ->
  Velodrome_sim.Ast.program ->
  occurrence list
(** Every atomic block occurrence in program order, nested ones included,
    each with its reduction-failure reasons (sorted, deduplicated).
    [dead] marks statically-dead sites from the {!Values} pass:
    occurrences at dead sites are dropped entirely (they spawn no
    dynamic transaction) and dead operations inside live blocks do not
    participate in the phase automaton. Defaults to nothing dead. *)
