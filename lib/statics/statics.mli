(** The static atomicity pre-pass: CFG → must-locksets → movers → Lipton
    reduction, packaged behind one [analyze] call.

    A block whose verdict is [Proved_atomic] matches [R* N? L*] over
    sound, whole-program mover classes on {b every} execution, so by
    Lipton's reduction theorem each of its dynamic transactions is
    serializable — Velodrome (sound and complete per the paper's
    Theorem 1) can never blame it. The differential test suite and the
    [velodrome analyze --gate] CI step check exactly that against the
    dynamic back-ends.

    [filter_predicates] feeds the runtime side:
    {!Velodrome_analysis.Filters.static_atomic} uses the proved-label and
    suppressible-variable predicates to elide instrumentation inside
    proved blocks. *)

open Velodrome_trace.Ids

type block = {
  label : Label.t;
  name : string;
  sites : Cfg.site list;  (** every occurrence, in site order *)
  verdict : Reduce.verdict;  (** joined over all occurrences *)
}

type t

val analyze : ?rule:Movers.rule -> Velodrome_sim.Ast.program -> t
(** [rule] defaults to {!Movers.Pairwise}; pass {!Movers.Global_guard} to
    reproduce the legacy whole-variable common-lock classification for
    precision-delta comparisons. *)

val blocks : t -> block list
val cfg : t -> Cfg.t
val locksets : t -> Lockset.t
val mhp : t -> Mhp.t
val races : t -> Races.t
val race_pairs : t -> Races.pair list
val race_pair_count : t -> int
val names : t -> Velodrome_trace.Names.t
val movers : t -> Movers.t

val proved : t -> Label.t -> bool
val proved_count : t -> int
val block_count : t -> int
val suppressible_var : t -> Var.t -> bool

val filter_predicates : t -> (int -> bool) * (int -> bool)
(** [(proved_label_id, suppressible_var_id)] predicates over raw ids, in
    the form {!Velodrome_analysis.Filters.static_atomic} consumes. *)

val verdict_string : Reduce.verdict -> string

val pp_human :
  ?pos:(Label.t -> (int * int) option) -> Format.formatter -> t -> unit

val to_json :
  ?pos:(Label.t -> (int * int) option) ->
  ?file:string ->
  t ->
  Velodrome_util.Json.t
(** Stable JSON verdict document; [pos] supplies source positions for
    labels parsed from a [.vel] file. *)

val pp_races_human :
  ?pos:(Label.t -> (int * int) option) -> Format.formatter -> t -> unit
(** Human race-pair report: one entry per pair with both endpoints, their
    held locks, and the atomic blocks each pair endangers. *)

val races_to_json :
  ?pos:(Label.t -> (int * int) option) ->
  ?file:string ->
  t ->
  Velodrome_util.Json.t
(** Stable race-pair document ([pairs] array + [summary]); source
    positions anchor to each access's innermost enclosing atomic block
    when available. *)
