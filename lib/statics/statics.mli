(** The static atomicity pre-pass: CFG → must-locksets → races → movers →
    Lipton reduction → transactional conflict graph, packaged behind one
    [analyze] call.

    Two independent proof rules feed a three-way verdict per block:

    - {b Lipton}: every path spells [R* N? L*] over sound mover classes
      ({!Reduce}), so each dynamic transaction reduces to a serial one.
    - {b Cycle_free}: no cycle of the static transactional conflict
      graph ({!Txgraph}) can close into any occurrence of the block.
      Since the graph over-approximates every dynamic happens-before
      edge and Velodrome blames a block only when a cycle closes at an
      op inside it (Theorem 1), such a block is serializable on every
      execution — this proves read-shared and one-way publish patterns
      Lipton rejects.

    A block proved by neither rule is [May_violate] with a concrete
    static cycle witness, the ranked triage for the dynamic checker;
    [Unknown] survives only for the graph's budget valve.

    [filter_predicates] feeds the runtime side:
    {!Velodrome_analysis.Filters.static_atomic} uses the proved-label and
    suppressible-variable predicates to elide instrumentation inside
    proved blocks — cycle-free blocks suppress exactly like Lipton ones,
    since the argument only needs the block serializable and the elided
    accesses race-free. *)

open Velodrome_trace.Ids

type proof = Lipton | Cycle_free

type verdict =
  | Proved_atomic of proof
  | May_violate of Txgraph.witness
  | Unknown of Reduce.reason list
      (** graph search exhausted its budget; Lipton reasons retained *)

type block = {
  label : Label.t;
  name : string;
  sites : Cfg.site list;  (** every occurrence, in site order *)
  verdict : verdict;  (** joined over all occurrences *)
  lipton_reasons : Reduce.reason list;
      (** why Lipton reduction failed; empty iff proved by Lipton *)
}

type t

val analyze : ?rule:Movers.rule -> ?values:bool -> Velodrome_sim.Ast.program -> t
(** [rule] defaults to {!Movers.Pairwise}; pass {!Movers.Global_guard} to
    reproduce the legacy whole-variable common-lock classification for
    precision-delta comparisons. [values] (default [true]) runs the
    tid-specialized {!Values} abstract interpretation first and threads
    its dead-site set through every downstream pass — locksets stop
    merging over infeasible arms, may-happen-in-parallel and race
    detection skip dead accesses, movers reclassify sites whose racy
    partner died, and the conflict graph drops edges incident to dead
    sites. Pass [false] for the unsharpened legacy pipeline. *)

val blocks : t -> block list

val values : t -> Values.t option
(** The value-analysis results, [None] when [analyze ~values:false]. *)

val dead_site_count : t -> int
(** 0 when value analysis is off. *)

val dead_branch_count : t -> int
(** 0 when value analysis is off. *)

val cfg : t -> Cfg.t
val locksets : t -> Lockset.t
val mhp : t -> Mhp.t
val races : t -> Races.t
val race_pairs : t -> Races.pair list
val race_pair_count : t -> int
val names : t -> Velodrome_trace.Names.t
val movers : t -> Movers.t
val txgraph : t -> Txgraph.t

val proved : t -> Label.t -> bool
(** Proved by either rule. *)

val proved_count : t -> int
val proved_lipton_count : t -> int
val proved_cycle_free_count : t -> int
val may_violate_count : t -> int
val unknown_count : t -> int
val block_count : t -> int
val suppressible_var : t -> Var.t -> bool

val filter_predicates : ?lipton_only:bool -> t -> (int -> bool) * (int -> bool)
(** [(proved_label_id, suppressible_var_id)] predicates over raw ids, in
    the form {!Velodrome_analysis.Filters.static_atomic} consumes.
    [lipton_only] restricts the proved set to Lipton-proved blocks, for
    measuring what the cycle-freedom rule adds. *)

val verdict_string : verdict -> string
(** ["proved-atomic"], ["may-violate"] or ["unknown"]. *)

val pp_human :
  ?pos:(Label.t -> (int * int) option) -> Format.formatter -> t -> unit

val to_json :
  ?pos:(Label.t -> (int * int) option) ->
  ?file:string ->
  t ->
  Velodrome_util.Json.t
(** Stable JSON verdict document; [pos] supplies source positions for
    labels parsed from a [.vel] file. *)

val pp_graph_human : Format.formatter -> t -> unit
(** Human conflict-graph report: size, edge-sort breakdown, and one
    witness cycle per [May_violate] block. *)

val graph_json : t -> Velodrome_util.Json.t
(** The [--graph] section: stats plus per-block witnesses. *)

val graph_dots : t -> (string * string) list
(** [(slug, dot)] pairs to export: the full op graph as ["txgraph"] plus
    one witness cycle per [May_violate] block, slugged by block name.
    With value analysis on, also ["cfg_values"] — the whole-program CFG
    with per-node interval annotations and dead nodes grayed out. *)

val pp_values_human : Format.formatter -> t -> unit
(** Human value-analysis report: one line per fact
    ([<site>: <target> <interval>]), dead-branch list, summary counts. *)

val values_json : t -> Velodrome_util.Json.t
(** The [--values] section: facts, dead branches and summary counts;
    [Null] when value analysis is off. *)

val pp_races_human :
  ?pos:(Label.t -> (int * int) option) -> Format.formatter -> t -> unit
(** Human race-pair report: one entry per pair with both endpoints, their
    held locks, and the atomic blocks each pair endangers. *)

val races_to_json :
  ?pos:(Label.t -> (int * int) option) ->
  ?file:string ->
  t ->
  Velodrome_util.Json.t
(** Stable race-pair document ([pairs] array + [summary]); source
    positions anchor to each access's innermost enclosing atomic block
    when available. *)
