(** Lipton mover classification of every observable operation site.

    Lock operations classify as before: an acquire is a {e right}-mover,
    a release a {e left}-mover, re-entrant ones (definite depth from the
    {!Lockset} dataflow) both-movers. Shared accesses now follow
    Atomizer's race-freedom condition {e per site}, driven by the
    pairwise {!Races} relation:

    - under the default {!Pairwise} rule a non-volatile access is a
      {e both}-mover iff it appears in {b no} static race pair. This
      strictly subsumes the legacy thread-local / read-only /
      globally-guarded conditions (each implies pair-freedom) and newly
      proves sites like the guarded reads of a variable whose only
      unsynchronized accesses are reads in some other thread, or
      single-writer variables protected by per-reader-pair distinct
      locks. The [why_both] witness keeps the most specific legacy
      explanation and falls back to [Race_free] for the new class; a
      racy access carries the opposing site as its [Racy] witness.
    - the legacy {!Global_guard} rule (a variable is a both-mover only
      when thread-local, read-only, or guarded by one common lock at
      every access program-wide) is kept for precision-delta
      measurement and comparison benches.

    Race pairs over-approximate true races ({!Races}), so both-mover
    claims hold on every execution — what {!Reduce}'s [Proved_atomic]
    verdicts and the [static_atomic] event filter rely on. *)

open Velodrome_trace
open Velodrome_trace.Ids

module IntSet : Set.S with type elt = int

type rule = Pairwise | Global_guard

type why_both =
  | Guarded of Lock.t  (** witness guard (the smallest-id common lock) *)
  | Thread_local
  | Read_only
  | Race_free
      (** in no race pair: every conflicting access shares some lock,
          though no single lock covers all sites *)
  | Reentrant

type why_non =
  | Volatile_access
  | Unguarded  (** legacy rule only, and the conservative default *)
  | Racy of Cfg.site  (** the opposing end of a witnessing race pair *)

type klass = Both of why_both | Right | Left | Non of why_non

type var_facts = {
  threads : IntSet.t;
  written : bool;
  guards : IntSet.t option;
}

type t

val analyze :
  ?rule:rule ->
  ?dead:(Cfg.site -> bool) ->
  Names.t ->
  Cfg.t ->
  Lockset.t ->
  Races.t ->
  t
(** [rule] defaults to {!Pairwise}. [dead] marks statically-dead sites
    from the {!Values} pass: dead accesses neither pollute the per-var
    thread/write facts nor receive a class, so a variable whose only
    cross-thread accesses are dead reclassifies as thread-local and a
    site whose racy partner died becomes a both-mover. Defaults to
    nothing dead. *)

val at_site : t -> Cfg.site -> klass option
(** [None] for sites with no observable effect (silent statements). *)

val var_facts : t -> Var.t -> var_facts

val suppressible : t -> Var.t -> bool
(** True when accesses to the variable may be elided inside proved blocks
    without changing any back-end's warnings elsewhere: the variable is
    thread-local, consistently guarded, or (pairwise rule) written but
    free of race pairs — every conflicting pair then shares a lock whose
    kept acquire/release events subsume the elided ordering edges.
    Read-only is excluded — see the implementation note. *)

val pp_klass : Names.t -> Format.formatter -> klass -> unit
val pp_why_both : Names.t -> Format.formatter -> why_both -> unit
val pp_why_non : Format.formatter -> why_non -> unit
