(** Lipton mover classification of every observable operation site.

    Combines whole-program variable facts (accessing threads, ever
    written, intersection of must-locksets over all access sites) with the
    per-site lockset results:

    - a lock acquire is a {e right}-mover, a release a {e left}-mover;
      re-entrant ones (definite depth from the dataflow) are both-movers;
    - a shared access is a {e both}-mover when its variable is
      thread-local, read-only, or consistently guarded — some lock is
      definitely held at {b every} access site program-wide;
    - anything else is a {e non}-mover, volatile accesses included.

    All three both-mover conditions are global, so they hold on every
    execution, which is what {!Reduce}'s [Proved_atomic] verdicts and the
    [static_atomic] event filter rely on. *)

open Velodrome_trace
open Velodrome_trace.Ids

module IntSet : Set.S with type elt = int

type why_both =
  | Guarded of Lock.t  (** witness guard (the smallest-id common lock) *)
  | Thread_local
  | Read_only
  | Reentrant

type why_non = Volatile_access | Unguarded

type klass = Both of why_both | Right | Left | Non of why_non

type var_facts = {
  threads : IntSet.t;
  written : bool;
  guards : IntSet.t option;
}

type t

val analyze : Names.t -> Cfg.t -> Lockset.t -> t

val at_site : t -> Cfg.site -> klass option
(** [None] for sites with no observable effect (silent statements). *)

val var_facts : t -> Var.t -> var_facts

val suppressible : t -> Var.t -> bool
(** True when accesses to the variable may be elided inside proved blocks
    without changing any back-end's warnings elsewhere: the variable is
    thread-local or consistently guarded (read-only is excluded — see the
    implementation note). *)

val pp_klass : Names.t -> Format.formatter -> klass -> unit
val pp_why_both : Names.t -> Format.formatter -> why_both -> unit
val pp_why_non : Format.formatter -> why_non -> unit
