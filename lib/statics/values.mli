(** Tid-specialized constant/interval value analysis over the program AST.

    Each thread body is abstractly interpreted with a constant+interval
    domain on registers, with {!Velodrome_sim.Ast.tid_reg} pinned to the
    thread's own id — so replicated bodies that dispatch on the thread id
    ([if r0 == k then writer-role else reader-role]) are analyzed once per
    replica with the dispatch register known exactly. Branch conditions
    refine the register environment on each arm; an arm whose refined
    environment is empty is {e statically dead}, and every statement
    inside it is a {e dead site} no dynamic event can originate from.

    Shared variables contribute through a global invariant: for every
    variable, the join of its initial value with every live write's
    abstract right-hand side, iterated (with widening) until live sites
    and invariants stabilize. A [read r x] therefore binds [r] to the
    variable's invariant interval.

    Soundness: every abstract operation over-approximates
    {!Velodrome_sim.Ast.eval} — including division and modulo by zero
    evaluating to 0 — and any arithmetic whose inputs could exceed a
    magnitude limit returns [top], so native-int wraparound can never
    escape an interval. Consequently a dead site is never executed on any
    schedule, and every dynamically observed value at a fact site lies
    within its static interval; the [analyze --gate] obligations check
    both claims empirically.

    Facts are keyed by {!Cfg.site}; the walker recomputes the same
    structural coordinates as {!Cfg.of_program}, {!Reduce} and the
    interpreter. *)

open Velodrome_trace
open Velodrome_trace.Ids

(** {1 Interval domain} *)

type bound = Neg_inf | Fin of int | Pos_inf

type itv = Bot | Itv of bound * bound
(** Non-[Bot] intervals are normalized: finite bounds have magnitude at
    most {!limit} and the lower bound does not exceed the upper. *)

val limit : int
(** Magnitude guard: any arithmetic whose inputs or results could exceed
    this returns {!top}, keeping every non-top claim exact despite the
    simulator's wrapping native-int arithmetic. *)

val top : itv
val bot : itv

val const : int -> itv
(** Singleton; {!top} when the constant's magnitude exceeds {!limit}. *)

val interval : int -> int -> itv
(** [interval lo hi]; [Bot] when [lo > hi], bounds washed to infinity
    beyond {!limit}. *)

val mem : int -> itv -> bool
val is_singleton : itv -> int option
val leq : itv -> itv -> bool
val join : itv -> itv -> itv
val meet : itv -> itv -> itv

val widen : itv -> itv -> itv
(** [widen old next]: keep each stable bound of [old], wash a growing one
    to infinity. Guarantees termination of loop and global fixpoints. *)

val add : itv -> itv -> itv
val sub : itv -> itv -> itv
val mul : itv -> itv -> itv

val div : itv -> itv -> itv
(** Mirrors {!Velodrome_sim.Ast.eval}: division by zero evaluates to 0. *)

val mod_ : itv -> itv -> itv
(** Mirrors {!Velodrome_sim.Ast.eval}: modulo by zero evaluates to 0;
    otherwise the result has the dividend's sign. *)

val itv_to_string : itv -> string
(** ["bot"], ["top"], ["=k"] for singletons, ["[lo..hi]"] otherwise. *)

(** {1 Analysis results} *)

type target = Reg_target of Velodrome_sim.Ast.reg | Var_target of Var.t

type fact = { f_site : Cfg.site; target : target; itv : itv }
(** The abstract value observable at the site, joined over every visit:
    the value read ([Read]), written ([Write]) or assigned ([Local]). *)

type arm = Then_arm | Else_arm | Loop_body | Loop_exit

type dead_branch = { d_site : Cfg.site; d_arm : arm }
(** The [d_site] thread never takes this arm of the [if]/[while] at
    [d_site]: [Loop_body] means the loop never runs an iteration,
    [Loop_exit] that it never terminates. *)

type t

val analyze : Velodrome_sim.Ast.program -> t

val dead_site : t -> Cfg.site -> bool
(** The site exists in the program but no execution of its thread can
    reach it. Sites unknown to the walker (e.g. thread entries) are
    never dead. *)

val fact_at : t -> Cfg.site -> fact option

val facts : t -> fact list
(** All value facts in site order. *)

val dead_branches : t -> dead_branch list
(** In site order. *)

val var_interval : t -> Var.t -> itv
(** The variable's global invariant: initial value joined with every
    live write. *)

val dead_site_count : t -> int
val dead_branch_count : t -> int
val fact_count : t -> int

val arm_string : arm -> string
(** ["then"], ["else"], ["body"] or ["exit"]. *)

val arm_message : arm -> string
(** The lint phrasing: ["never takes this arm"] for if-arms,
    ["never enters the loop"] / ["never leaves the loop"] for loops. *)

val target_string : Names.t -> target -> string
(** ["r3"] for registers, the variable's name otherwise. *)
