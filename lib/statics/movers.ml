open Velodrome_trace
open Velodrome_trace.Ids

module IntSet = Set.Make (Int)
module IntMap = Map.Make (Int)

type rule = Pairwise | Global_guard

type why_both =
  | Guarded of Lock.t
  | Thread_local
  | Read_only
  | Race_free
  | Reentrant

type why_non = Volatile_access | Unguarded | Racy of Cfg.site

type klass =
  | Both of why_both
  | Right  (** lock acquire *)
  | Left  (** lock release *)
  | Non of why_non

type var_facts = {
  threads : IntSet.t;
  written : bool;
  guards : IntSet.t option;
      (** locks held at every access so far; [None] before the first *)
}

type t = {
  rule : rule;
  names : Names.t;
  races : Races.t;
  vars : var_facts IntMap.t;
  by_site : (int * int list, klass) Hashtbl.t;
}

let empty_facts = { threads = IntSet.empty; written = false; guards = None }

let var_facts t x =
  Option.value ~default:empty_facts (IntMap.find_opt (Var.to_int x) t.vars)

(* Pass 1: global per-variable facts — which threads access it, whether it
   is ever written, and the intersection of must-locksets over all access
   sites. Under the pairwise rule these only pick the most specific
   both-mover witness; under the legacy global rule they ARE the
   classification. *)
let collect_vars ~dead cfg locksets =
  let vars = ref IntMap.empty in
  Cfg.iter_nodes
    (fun n ->
      if dead n.Cfg.site then ()
      else
      let access x ~is_write =
        let k = Var.to_int x in
        let f = Option.value ~default:empty_facts (IntMap.find_opt k !vars) in
        let held = IntSet.of_list (Lockset.locks_held locksets n.Cfg.id) in
        let guards =
          match f.guards with
          | None -> Some held
          | Some g -> Some (IntSet.inter g held)
        in
        vars :=
          IntMap.add k
            {
              threads = IntSet.add n.Cfg.site.Cfg.thread f.threads;
              written = f.written || is_write;
              guards;
            }
            !vars
      in
      match n.Cfg.eff with
      | Cfg.Read x -> access x ~is_write:false
      | Cfg.Write x -> access x ~is_write:true
      | _ -> ())
    cfg;
  !vars

let global_guard (f : var_facts) =
  match f.guards with
  | Some g when not (IntSet.is_empty g) -> Some (Lock.of_int (IntSet.min_elt g))
  | _ -> None

(* The most specific both-mover witness for a race-free access, so the
   legacy explanations survive where they still apply and only the newly
   provable class reads "race-free". *)
let why_race_free (f : var_facts) =
  if IntSet.cardinal f.threads <= 1 then Thread_local
  else if not f.written then Read_only
  else match global_guard f with Some g -> Guarded g | None -> Race_free

let classify_access rule names races vars (n : Cfg.node) x =
  let f =
    Option.value ~default:empty_facts (IntMap.find_opt (Var.to_int x) vars)
  in
  if Names.is_volatile names x then Non Volatile_access
  else
    match rule with
    | Pairwise -> (
      (* Atomizer's rule verbatim: an access is a both-mover exactly when
         it is race-free, i.e. it appears in no static race pair. *)
      match Races.witness races n.Cfg.site with
      | Some p -> Non (Racy (Races.other_end p n.Cfg.site).Races.site)
      | None -> Both (why_race_free f))
    | Global_guard ->
      if IntSet.cardinal f.threads <= 1 then Both Thread_local
      else if not f.written then Both Read_only
      else (
        match global_guard f with
        | Some g -> Both (Guarded g)
        | None -> Non Unguarded)

let analyze ?(rule = Pairwise) ?(dead = fun (_ : Cfg.site) -> false) names
    cfg locksets races =
  let vars = collect_vars ~dead cfg locksets in
  let by_site = Hashtbl.create 256 in
  Cfg.iter_nodes
    (fun n ->
      if dead n.Cfg.site then ()
      else
      let site = (n.Cfg.site.Cfg.thread, n.Cfg.site.Cfg.path) in
      let record k = Hashtbl.replace by_site site k in
      match n.Cfg.eff with
      | Cfg.Read x | Cfg.Write x ->
        record (classify_access rule names races vars n x)
      | Cfg.Acquire m ->
        record
          (if Lockset.depth_before locksets n.Cfg.id m >= 1 then
             Both Reentrant
           else Right)
      | Cfg.Release m ->
        record
          (if Lockset.depth_before locksets n.Cfg.id m >= 2 then
             Both Reentrant
           else Left)
      | Cfg.Enter _ | Cfg.Exit _ | Cfg.Silent -> ())
    cfg;
  { rule; names; races; vars; by_site }

let at_site t (site : Cfg.site) =
  Hashtbl.find_opt t.by_site (site.Cfg.thread, site.Cfg.path)

(* A variable whose accesses can be elided inside statically proved
   blocks without changing any back-end's verdict elsewhere: every access
   is either confined to one thread (no cross-thread conflict edges at
   all), performed under a program-wide common guard, or — pairwise rule
   only — free of race pairs altogether, in which case every conflicting
   access pair shares some lock whose acquire/release events (which the
   filter keeps) already order the accesses against each other exactly as
   the elided communication edges would. Read-only variables are proof
   material but deliberately NOT suppressible: lockset back-ends
   (Eraser's state machine, the Atomizer's embedded oracle) do observe
   lock-free reads of them, and eliding those would perturb verdicts on
   unrelated blocks. *)
let suppressible t x =
  match IntMap.find_opt (Var.to_int x) t.vars with
  | None -> false
  | Some f ->
    IntSet.cardinal f.threads <= 1
    || Option.is_some (global_guard f)
    || t.rule = Pairwise && f.written
       && (not (Names.is_volatile t.names x))
       && not (Races.racy_var t.races x)

let pp_why_both names ppf = function
  | Guarded m ->
    Format.fprintf ppf "guarded by %s at every access"
      (Names.lock_name names m)
  | Thread_local -> Format.pp_print_string ppf "thread-local"
  | Read_only -> Format.pp_print_string ppf "read-only"
  | Race_free ->
    Format.pp_print_string ppf "race-free (every conflicting pair shares a lock)"
  | Reentrant -> Format.pp_print_string ppf "re-entrant"

let pp_why_non ppf = function
  | Volatile_access -> Format.pp_print_string ppf "volatile"
  | Unguarded -> Format.pp_print_string ppf "no common guard"
  | Racy other ->
    Format.fprintf ppf "races with %s" (Cfg.site_to_string other)

let pp_klass names ppf = function
  | Both w -> Format.fprintf ppf "both-mover (%a)" (pp_why_both names) w
  | Right -> Format.pp_print_string ppf "right-mover"
  | Left -> Format.pp_print_string ppf "left-mover"
  | Non w -> Format.fprintf ppf "non-mover (%a)" pp_why_non w
