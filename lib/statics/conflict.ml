open Velodrome_trace
open Velodrome_trace.Ids

type kind = Var_conflict of Var.t | Lock_order of Lock.t

type edge = { src : int; dst : int; kind : kind }

(* Ascending int lists share no element. *)
let rec disjoint xs ys =
  match (xs, ys) with
  | [], _ | _, [] -> true
  | x :: xs', y :: ys' ->
    if x = y then false
    else if x < y then disjoint xs' ys
    else disjoint xs ys'

let edges (cfg : Cfg.t) locksets mhp =
  let by_var : (int, (Cfg.node * bool * int list) list ref) Hashtbl.t =
    Hashtbl.create 64
  in
  let releases : (int, Cfg.node list ref) Hashtbl.t = Hashtbl.create 16 in
  let acquires : (int, Cfg.node list ref) Hashtbl.t = Hashtbl.create 16 in
  let push tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some l -> l := v :: !l
    | None -> Hashtbl.replace tbl k (ref [ v ])
  in
  Cfg.iter_nodes
    (fun n ->
      if Mhp.reachable mhp n.Cfg.id then
        match n.Cfg.eff with
        | Cfg.Read x ->
          push by_var (Var.to_int x)
            (n, false, Lockset.locks_held locksets n.Cfg.id)
        | Cfg.Write x ->
          push by_var (Var.to_int x)
            (n, true, Lockset.locks_held locksets n.Cfg.id)
        | Cfg.Acquire m -> push acquires (Lock.to_int m) n
        | Cfg.Release m -> push releases (Lock.to_int m) n
        | Cfg.Enter _ | Cfg.Exit _ | Cfg.Silent -> ())
    cfg;
  let out = ref [] in
  Hashtbl.iter
    (fun var_id accs ->
      let var = Var.of_int var_id in
      let accs = Array.of_list !accs in
      let n = Array.length accs in
      for i = 0 to n - 1 do
        for j = i + 1 to n - 1 do
          let a, aw, al = accs.(i) and b, bw, bl = accs.(j) in
          if
            (aw || bw)
            && Mhp.concurrent mhp a b
            && disjoint al bl
          then begin
            out :=
              { src = a.Cfg.id; dst = b.Cfg.id; kind = Var_conflict var }
              :: { src = b.Cfg.id; dst = a.Cfg.id; kind = Var_conflict var }
              :: !out
          end
        done
      done)
    by_var;
  Hashtbl.iter
    (fun lock_id rels ->
      let lock = Lock.of_int lock_id in
      let acqs =
        match Hashtbl.find_opt acquires lock_id with
        | Some l -> !l
        | None -> []
      in
      List.iter
        (fun (r : Cfg.node) ->
          List.iter
            (fun (a : Cfg.node) ->
              if r.Cfg.site.Cfg.thread <> a.Cfg.site.Cfg.thread then
                out :=
                  { src = r.Cfg.id; dst = a.Cfg.id; kind = Lock_order lock }
                  :: !out)
            acqs)
        !rels)
    releases;
  List.sort
    (fun a b ->
      match compare a.src b.src with
      | 0 -> compare a.dst b.dst
      | c -> c)
    !out

let kind_string names = function
  | Var_conflict x -> Printf.sprintf "conflict %s" (Names.var_name names x)
  | Lock_order m -> Printf.sprintf "lock %s" (Names.lock_name names m)
