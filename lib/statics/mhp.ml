open Velodrome_trace.Ids

type t = {
  thread_count : int;
  effectful : bool array;  (** per thread: any reachable observable effect *)
  reach : bool array;  (** per node id *)
  atomics : Label.t list array;
      (** per node id: enclosing atomic labels, innermost first *)
}

(* One forward pass from the entries computes reachability and the
   enclosing-atomic-block chain together. The chain transfer pushes at
   [Enter] and pops at [Exit]; the CFG is lowered from a structured AST,
   so every join (if-merge, loop head) receives the same chain from all
   predecessors and the first-visit value is the fixpoint. *)
let analyze ?(dead = fun (_ : Cfg.site) -> false) (cfg : Cfg.t) =
  let n = Cfg.node_count cfg in
  let entries = Cfg.entries cfg in
  let thread_count = Array.length entries in
  let reach = Array.make n false in
  let atomics = Array.make n [] in
  let queue = Queue.create () in
  let alive id = not (dead (Cfg.node cfg id).Cfg.site) in
  Array.iter
    (fun e ->
      if alive e && not reach.(e) then begin
        reach.(e) <- true;
        Queue.add e queue
      end)
    entries;
  while not (Queue.is_empty queue) do
    let id = Queue.pop queue in
    let out =
      match (Cfg.node cfg id).Cfg.eff with
      | Cfg.Enter l -> l :: atomics.(id)
      | Cfg.Exit _ -> ( match atomics.(id) with _ :: tl -> tl | [] -> [])
      | _ -> atomics.(id)
    in
    List.iter
      (fun s ->
        if alive s && not reach.(s) then begin
          reach.(s) <- true;
          atomics.(s) <- out;
          Queue.add s queue
        end)
      (Cfg.succs cfg id)
  done;
  let effectful = Array.make (max thread_count 1) false in
  Cfg.iter_nodes
    (fun nd ->
      match nd.Cfg.eff with
      | Cfg.Read _ | Cfg.Write _ | Cfg.Acquire _ | Cfg.Release _ ->
        if reach.(nd.Cfg.id) then effectful.(nd.Cfg.site.Cfg.thread) <- true
      | Cfg.Enter _ | Cfg.Exit _ | Cfg.Silent -> ())
    cfg;
  { thread_count; effectful; reach; atomics }

let thread_count t = t.thread_count
let effectful t i = i >= 0 && i < Array.length t.effectful && t.effectful.(i)

let threads t i j = i <> j && effectful t i && effectful t j

let reachable t id = id >= 0 && id < Array.length t.reach && t.reach.(id)

let concurrent t (a : Cfg.node) (b : Cfg.node) =
  a.Cfg.site.Cfg.thread <> b.Cfg.site.Cfg.thread
  && reachable t a.Cfg.id
  && reachable t b.Cfg.id

let enclosing_atomics t id =
  if id >= 0 && id < Array.length t.atomics then t.atomics.(id) else []

let innermost_atomic t id =
  match enclosing_atomics t id with l :: _ -> Some l | [] -> None
