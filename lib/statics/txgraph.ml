open Velodrome_trace
open Velodrome_trace.Ids

type edge_kind =
  | Strict of Conflict.kind
  | Program_order
  | Cross_instance
  | Passage of { slack : bool }

type hop = { node : Cfg.node; via : edge_kind }

type witness = {
  label : Label.t;
  occurrence : Cfg.site;
  arrival : Cfg.node;
  departure : Cfg.node;
  pivot : Cfg.node;
  path : hop list;
}

type stats = {
  ops : int;
  regions : int;
  conflict_edges : int;
  lock_edges : int;
  po_edges : int;
  cross_instance_edges : int;
  passage_edges : int;
  slack_edges : int;
  accepted_slack_edges : int;
}

type region = {
  occ : (Cfg.site * Label.t) option;  (* None = singleton unary region *)
  rops : int list;
  multi : bool;
}

type t = {
  names : Names.t;
  cfg : Cfg.t;
  region_of : int array;
  regions : region array;
  adj : (int * edge_kind) list array;
  accepted : (int * witness) list;  (* arrival node id, ascending *)
  exhausted : bool;
  stats : stats;
}

(* Generous safety valves: the search is abandoned (and every occurrence
   conservatively unproven) rather than ever running unbounded. *)
let max_ops = 5_000
let max_decisions = 20_000

exception Budget

let rec is_prefix p q =
  match (p, q) with
  | [], _ -> true
  | _, [] -> false
  | a :: p', b :: q' -> a = b && is_prefix p' q'

let is_op = function
  | Cfg.Acquire _ | Cfg.Release _ | Cfg.Read _ | Cfg.Write _ -> true
  | Cfg.Enter _ | Cfg.Exit _ | Cfg.Silent -> false

let build names cfg locksets mhp occs =
  let n = Cfg.node_count cfg in
  let ops = ref [] in
  Cfg.iter_nodes
    (fun nd ->
      if is_op nd.Cfg.eff && Mhp.reachable mhp nd.Cfg.id then
        ops := nd.Cfg.id :: !ops)
    cfg;
  let ops = List.rev !ops in
  let op_count = List.length ops in
  let exhausted = ref (op_count > max_ops) in
  (* >=1-edge reachability from [start] through nodes satisfying [inside] *)
  let cfg_reach_plus ~inside start =
    let seen = Array.make n false in
    let q = Queue.create () in
    let push v =
      if inside v && not seen.(v) then begin
        seen.(v) <- true;
        Queue.add v q
      end
    in
    List.iter push (Cfg.succs cfg start);
    while not (Queue.is_empty q) do
      List.iter push (Cfg.succs cfg (Queue.pop q))
    done;
    seen
  in
  let everywhere _ = true in
  (* Regions: one per outermost atomic occurrence, a singleton for every
     unary op. Occurrence membership is by site-path prefix, which is
     exact because an atomic's body nodes extend its own path. *)
  let outermost =
    List.filter
      (fun (o : Reduce.occurrence) ->
        not
          (List.exists
             (fun (o' : Reduce.occurrence) ->
               o'.Reduce.site.Cfg.thread = o.Reduce.site.Cfg.thread
               && o'.Reduce.site.Cfg.path <> o.Reduce.site.Cfg.path
               && is_prefix o'.Reduce.site.Cfg.path o.Reduce.site.Cfg.path)
             occs))
      occs
  in
  let region_of = Array.make n (-1) in
  let rev_regions = ref [] in
  let region_count = ref 0 in
  let add_region r =
    rev_regions := r :: !rev_regions;
    incr region_count;
    !region_count - 1
  in
  let inside_occ (site : Cfg.site) v =
    let nd = Cfg.node cfg v in
    nd.Cfg.site.Cfg.thread = site.Cfg.thread
    && is_prefix site.Cfg.path nd.Cfg.site.Cfg.path
  in
  List.iter
    (fun (o : Reduce.occurrence) ->
      let site = o.Reduce.site in
      let rops = List.filter (inside_occ site) ops in
      (* An occurrence whose exit reaches its entry executes as several
         distinct transactions in unknown relative order. *)
      let enter = ref (-1) and exit_ = ref (-1) in
      Cfg.iter_nodes
        (fun nd ->
          if Cfg.site_compare nd.Cfg.site site = 0 then
            match nd.Cfg.eff with
            | Cfg.Enter l when Label.equal l o.Reduce.label ->
              enter := nd.Cfg.id
            | Cfg.Exit l when Label.equal l o.Reduce.label ->
              exit_ := nd.Cfg.id
            | _ -> ())
        cfg;
      let multi =
        !enter >= 0 && !exit_ >= 0
        && (cfg_reach_plus ~inside:everywhere !exit_).(!enter)
      in
      let rid = add_region { occ = Some (site, o.Reduce.label); rops; multi } in
      List.iter (fun v -> region_of.(v) <- rid) rops)
    outermost;
  List.iter
    (fun v ->
      if region_of.(v) = -1 then
        region_of.(v) <- add_region { occ = None; rops = [ v ]; multi = false })
    ops;
  let regions = Array.of_list (List.rev !rev_regions) in
  let adj = Array.make n [] in
  let radj = Array.make n [] in
  let conflict_edges = ref 0
  and lock_edges = ref 0
  and po_edges = ref 0
  and cross_instance_edges = ref 0
  and passage_edges = ref 0
  and slack_edges = ref 0 in
  let add_edge u v k =
    adj.(u) <- (v, k) :: adj.(u);
    radj.(v) <- (u, k) :: radj.(v)
  in
  let region_slack = Array.make (Array.length regions) [] in
  if not !exhausted then begin
    List.iter
      (fun (e : Conflict.edge) ->
        if region_of.(e.Conflict.src) >= 0 && region_of.(e.Conflict.dst) >= 0
        then begin
          (match e.Conflict.kind with
          | Conflict.Var_conflict _ -> incr conflict_edges
          | Conflict.Lock_order _ -> incr lock_edges);
          add_edge e.Conflict.src e.Conflict.dst (Strict e.Conflict.kind)
        end)
      (Conflict.edges cfg locksets mhp);
    (* Program order between different regions of one thread; CFG edges
       never cross threads, so the closure stays within the thread. *)
    List.iter
      (fun u ->
        let reach = cfg_reach_plus ~inside:everywhere u in
        List.iter
          (fun v ->
            if v <> u && reach.(v) && region_of.(v) <> region_of.(u) then begin
              incr po_edges;
              add_edge u v Program_order
            end)
          ops)
      ops;
    Array.iteri
      (fun rid r ->
        if r.multi then
          List.iter
            (fun u ->
              List.iter
                (fun v ->
                  if u <> v then begin
                    incr cross_instance_edges;
                    add_edge u v Cross_instance
                  end)
                r.rops)
            r.rops;
        match r.occ with
        | None -> ()
        | Some (site, _) ->
          let rp =
            List.map
              (fun u -> (u, cfg_reach_plus ~inside:(inside_occ site) u))
              r.rops
          in
          let reaches u v = (List.assoc u rp).(v) in
          (* Passage a->x: arrive at [a], depart at [x]; slack when [x]
             can precede [a] within one instance. The self pair a = x is
             slack exactly on an intra-region cycle. *)
          let slack_pairs = ref [] in
          List.iter
            (fun a ->
              List.iter
                (fun x ->
                  if a = x then begin
                    if reaches a a then slack_pairs := (a, x) :: !slack_pairs
                  end
                  else begin
                    let fwd = reaches a x and bwd = reaches x a in
                    if fwd || bwd then begin
                      incr passage_edges;
                      if bwd then begin
                        incr slack_edges;
                        slack_pairs := (a, x) :: !slack_pairs
                      end;
                      add_edge a x (Passage { slack = bwd })
                    end
                  end)
                r.rops)
            r.rops;
          region_slack.(rid) <- List.rev !slack_pairs)
      regions
  end;
  (* Decide each slack passage (a, x): can the graph realize the rest of
     the cycle — a path from x back to a through another thread? The
     closing in-edge and the departure out-edge are cross-thread strict
     edges dynamically, so first and last hops must be strict; a
     single-instance region is visited once, so the path avoids its other
     ops and its passage edges. *)
  let accepted_at = Array.make n false in
  let accepted = ref [] in
  let decisions = ref 0 in
  let accepted_count = ref 0 in
  let decide rid ~single (site, label) a x =
    let allowed v = (not single) || region_of.(v) <> rid || v = a || v = x in
    let edge_ok src k =
      match k with
      | Passage _ when single && region_of.(src) = rid -> false
      | _ -> true
    in
    let parent = Array.make n (-1, Program_order) in
    let fseen = Array.make n false in
    let order = ref [] in
    let q = Queue.create () in
    fseen.(x) <- true;
    List.iter
      (fun (v, k) ->
        match k with
        | Strict _ when allowed v && not fseen.(v) ->
          fseen.(v) <- true;
          parent.(v) <- (x, k);
          order := v :: !order;
          if v <> a then Queue.add v q
        | _ -> ())
      adj.(x);
    while not (Queue.is_empty q) do
      let u = Queue.pop q in
      List.iter
        (fun (v, k) ->
          if edge_ok u k && allowed v && not fseen.(v) then begin
            fseen.(v) <- true;
            parent.(v) <- (u, k);
            order := v :: !order;
            if v <> a then Queue.add v q
          end)
        adj.(u)
    done;
    let nxt = Array.make n (-1, Program_order) in
    let rseen = Array.make n false in
    rseen.(a) <- true;
    let q = Queue.create () in
    List.iter
      (fun (u, k) ->
        match k with
        | Strict _ when allowed u && not rseen.(u) ->
          rseen.(u) <- true;
          nxt.(u) <- (a, k);
          if u <> x then Queue.add u q
        | _ -> ())
      radj.(a);
    while not (Queue.is_empty q) do
      let v = Queue.pop q in
      List.iter
        (fun (u, k) ->
          if edge_ok u k && allowed u && not rseen.(u) then begin
            rseen.(u) <- true;
            nxt.(u) <- (v, k);
            if u <> x then Queue.add u q
          end)
        radj.(v)
    done;
    let athread = (Cfg.node cfg a).Cfg.site.Cfg.thread in
    match
      List.find_opt
        (fun v ->
          rseen.(v) && (Cfg.node cfg v).Cfg.site.Cfg.thread <> athread)
        (List.rev !order)
    with
    | None -> None
    | Some y ->
      let rec back v acc =
        if v = x then acc
        else
          let p, k = parent.(v) in
          back p ({ node = Cfg.node cfg v; via = k } :: acc)
      in
      let rec forth v acc =
        if v = a then List.rev acc
        else
          let w, k = nxt.(v) in
          forth w ({ node = Cfg.node cfg w; via = k } :: acc)
      in
      Some
        {
          label;
          occurrence = site;
          arrival = Cfg.node cfg a;
          departure = Cfg.node cfg x;
          pivot = Cfg.node cfg y;
          path = back y [] @ forth y [];
        }
  in
  if not !exhausted then begin
    try
      Array.iteri
        (fun rid r ->
          match r.occ with
          | None -> ()
          | Some occ ->
            List.iter
              (fun (a, x) ->
                if not accepted_at.(a) then begin
                  incr decisions;
                  if !decisions > max_decisions then raise Budget;
                  match decide rid ~single:(not r.multi) occ a x with
                  | Some w ->
                    accepted_at.(a) <- true;
                    incr accepted_count;
                    accepted := (a, w) :: !accepted
                  | None -> ()
                end)
              region_slack.(rid))
        regions
    with Budget -> exhausted := true
  end;
  let accepted =
    List.sort (fun (a, _) (b, _) -> compare a b) !accepted
  in
  {
    names;
    cfg;
    region_of;
    regions;
    adj;
    accepted;
    exhausted = !exhausted;
    stats =
      {
        ops = op_count;
        regions = Array.length regions;
        conflict_edges = !conflict_edges;
        lock_edges = !lock_edges;
        po_edges = !po_edges;
        cross_instance_edges = !cross_instance_edges;
        passage_edges = !passage_edges;
        slack_edges = !slack_edges;
        accepted_slack_edges = !accepted_count;
      };
  }

let exhausted t = t.exhausted
let stats t = t.stats

let subtree_witnesses t (site : Cfg.site) =
  List.filter
    (fun (a, _) ->
      let nd = Cfg.node t.cfg a in
      nd.Cfg.site.Cfg.thread = site.Cfg.thread
      && is_prefix site.Cfg.path nd.Cfg.site.Cfg.path)
    t.accepted

let cycle_free t site = (not t.exhausted) && subtree_witnesses t site = []

let witness_for t site =
  match subtree_witnesses t site with [] -> None | (_, w) :: _ -> Some w

let witnesses_for t site = List.map snd (subtree_witnesses t site)

(* --- rendering ----------------------------------------------------------- *)

let op_string t (nd : Cfg.node) =
  let op =
    match nd.Cfg.eff with
    | Cfg.Acquire m -> "acq(" ^ Names.lock_name t.names m ^ ")"
    | Cfg.Release m -> "rel(" ^ Names.lock_name t.names m ^ ")"
    | Cfg.Read x -> "r(" ^ Names.var_name t.names x ^ ")"
    | Cfg.Write x -> "w(" ^ Names.var_name t.names x ^ ")"
    | Cfg.Enter l | Cfg.Exit l -> Names.label_name t.names l
    | Cfg.Silent -> "silent"
  in
  Printf.sprintf "t%d:%s" nd.Cfg.site.Cfg.thread op

(* Op rendering with its structural source position appended, so cycle
   edges are actionable: "t0:w(balance)@1.0" is thread 0's write at
   statement path 1.0. *)
let op_site_string t (nd : Cfg.node) =
  Printf.sprintf "%s@%s" (op_string t nd)
    (String.concat "." (List.map string_of_int nd.Cfg.site.Cfg.path))

let edge_kind_string t = function
  | Strict k -> Conflict.kind_string t.names k
  | Program_order -> "program-order"
  | Cross_instance -> "cross-instance"
  | Passage { slack } -> if slack then "slack passage" else "passage"

let explain t w =
  let chain = Buffer.create 64 in
  Buffer.add_string chain (op_site_string t w.departure);
  List.iter
    (fun h ->
      Buffer.add_string chain
        (Printf.sprintf " -[%s]-> %s" (edge_kind_string t h.via)
           (op_site_string t h.node)))
    w.path;
  Printf.sprintf "cycle re-enters %s at %s after its out-edge at %s: %s"
    (Names.label_name t.names w.label)
    (op_site_string t w.arrival)
    (op_site_string t w.departure)
    (Buffer.contents chain)

let node_json t (nd : Cfg.node) =
  let open Velodrome_util.Json in
  Obj
    [
      ("site", String (Cfg.site_to_string nd.Cfg.site));
      ("op", String (op_string t nd));
    ]

let witness_json t w =
  let open Velodrome_util.Json in
  Obj
    [
      ("label", String (Names.label_name t.names w.label));
      ("occurrence", String (Cfg.site_to_string w.occurrence));
      ("arrival", node_json t w.arrival);
      ("departure", node_json t w.departure);
      ("pivot", node_json t w.pivot);
      ( "path",
        List
          (List.map
             (fun h ->
               Obj
                 [
                   ("via", String (edge_kind_string t h.via));
                   ("node", node_json t h.node);
                 ])
             w.path) );
    ]

let region_dot_label t rid =
  let r = t.regions.(rid) in
  match r.occ with
  | Some (site, l) ->
    Printf.sprintf "%s %s"
      (Names.label_name t.names l)
      (Cfg.site_to_string site)
  | None -> (
    match r.rops with
    | [ op ] ->
      Printf.sprintf "unary %s" (op_site_string t (Cfg.node t.cfg op))
    | _ -> "unary")

let witness_dot t w =
  let open Velodrome_util.Dot in
  let home = t.region_of.(w.departure.Cfg.id) in
  (* Collapse the op path to the sequence of regions it visits; each
     region is one dot node, like a transaction in the dynamic error
     graph. *)
  let seq, _ =
    List.fold_left
      (fun (seq, cur) h ->
        let rid = t.region_of.(h.node.Cfg.id) in
        if rid = cur then (seq, cur) else ((rid, h.via, h.node) :: seq, rid))
      ([], home) w.path
  in
  let seq = List.rev seq in
  let rids =
    List.sort_uniq compare (home :: List.map (fun (rid, _, _) -> rid) seq)
  in
  let nodes =
    List.map
      (fun rid ->
        {
          id = "r" ^ string_of_int rid;
          label = region_dot_label t rid;
          emphasized = rid = home;
        })
      rids
  in
  let edges, _ =
    List.fold_left
      (fun (edges, prev) (rid, via, nd) ->
        ( {
            src = "r" ^ string_of_int prev;
            dst = "r" ^ string_of_int rid;
            (* Each edge carries the site it lands on, so the rendered
               cycle names a concrete source position per hop. *)
            edge_label =
              Printf.sprintf "%s at %s" (edge_kind_string t via)
                (Cfg.site_to_string nd.Cfg.site);
            dashed = rid = home;
          }
          :: edges,
          rid ))
      ([], home) seq
  in
  render ~name:"static_cycle" nodes (List.rev edges)

let to_dot t =
  let open Velodrome_util.Dot in
  let arrivals = List.map fst t.accepted in
  let nodes = ref [] in
  Cfg.iter_nodes
    (fun nd ->
      if t.region_of.(nd.Cfg.id) >= 0 then
        nodes :=
          {
            id = "n" ^ string_of_int nd.Cfg.id;
            label =
              Printf.sprintf "%s\n%s" (op_string t nd)
                (Cfg.site_to_string nd.Cfg.site);
            emphasized = List.mem nd.Cfg.id arrivals;
          }
          :: !nodes)
    t.cfg;
  let edges = ref [] in
  Array.iteri
    (fun u out ->
      List.iter
        (fun (v, k) ->
          let short =
            match k with
            | Strict ck -> Conflict.kind_string t.names ck
            | Program_order -> "po"
            | Cross_instance -> "xinst"
            | Passage { slack } -> if slack then "slack" else ""
          in
          edges :=
            {
              src = "n" ^ string_of_int u;
              dst = "n" ^ string_of_int v;
              edge_label = short;
              dashed = (match k with Passage _ -> true | _ -> false);
            }
            :: !edges)
        out)
    t.adj;
  render ~name:"txgraph" (List.rev !nodes) (List.rev !edges)
