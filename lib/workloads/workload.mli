(** Benchmark workloads.

    Fifteen programs mirroring the synchronization skeletons of the
    paper's benchmark suite (Section 6), plus [handoff], a synthetic
    single-writer publication pattern that pins the precision the
    pairwise static race detector adds over the whole-variable
    common-lock rule. Each declares its {e methods}
    (atomic-block labels) together with ground truth: whether the method
    is genuinely atomic (so any warning against it is a false alarm) or
    has a real atomicity violation. The evaluation harness uses this to
    classify warnings mechanically, where the authors classified by hand.

    The [size] knob scales thread counts and iteration counts; [Medium]
    is what the tables use. *)

type size = Small | Medium | Large

type ground_truth = {
  label : string;
  atomic : bool;
      (** true: serializable under every schedule — warnings are false
          alarms. false: a real atomicity violation exists. *)
  rare : bool;
      (** true when the violation manifests only under few schedules —
          the methods Velodrome tends to miss without adversarial
          scheduling *)
}

type t = {
  name : string;
  description : string;
  build : size -> Velodrome_sim.Ast.program;
  methods : ground_truth list;
}

val all : t list
(** In the paper's Table 1 order. *)

val find : string -> t option

val non_atomic_count : t -> int
(** Methods with a real violation. *)
