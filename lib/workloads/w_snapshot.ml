(* snapshot — read-shared aggregation and one-way publish, the shapes the
   cycle-freedom rule exists for. Sensor threads each publish one reading
   with a single unary write to their own cell; one aggregator takes an
   atomic snapshot reading every cell once; per-cell spot checkers read a
   single cell; a publisher writes a payload then raises a flag, and one
   gate reader checks flag-then-payload atomically. Every multi-read
   block races (so Lipton reduction rejects it — two racy reads are two
   non-movers), yet each is serializable on every execution: with one
   dedicated single-write writer per cell and a single reader block over
   those cells, no transactional happens-before cycle can close into the
   block. The static conflict graph proves exactly that, which is this
   workload's reason to exist: Snapshot.collect and Snapshot.checkReady
   are provable by cycle-freedom and by nothing else in the pipeline.

   The shape is tight: give the aggregator a second occurrence over the
   same cells, or the cells a second reader block, and the pattern
   becomes the torn-snapshot violation (reader A sees old/new, reader B
   new/old — unserializable). The sibling readers here are kept on
   disjoint variables for that reason. *)

open Velodrome_sim
open Builder

let name = "snapshot"

let description =
  "read-shared snapshot aggregation with one-way publish; serializable \
   but irreducible"

let methods =
  [
    ("Snapshot.collect", true, false);
    ("Snapshot.checkReady", true, false);
    ("Snapshot.spot", true, false);
  ]

let build size =
  let b = create () in
  let cells_n = Sizes.scale size (2, 4, 8) in
  let cells =
    Array.init cells_n (fun k -> var b (Printf.sprintf "cell%d" k))
  in
  (* Read-only calibration data: shared by every reader, written by
     nobody, so it contributes reads without conflict edges. *)
  let calib = var ~init:7 b "calib" in
  let pub_data = var b "pubData" in
  let pub_flag = var b "pubFlag" in
  (* Sensors: one dedicated writer per cell, a single unary write. *)
  Array.iteri
    (fun k cell -> thread b [ work (2 + k); write cell (i (100 + k)) ])
    cells;
  (* Aggregator: one atomic snapshot over every cell, each read once. *)
  thread b
    (let regs = Array.map (fun _ -> fresh_reg b) cells in
     let c = fresh_reg b in
     [
       work 1;
       atomic
         (label b "Snapshot.collect")
         (read c calib
         :: Array.to_list
              (Array.mapi (fun k reg -> read reg cells.(k)) regs));
     ]);
  (* Spot checkers: a single racy read each — Lipton handles these. *)
  Array.iteri
    (fun k cell ->
      thread b
        (let v = fresh_reg b in
         let c = fresh_reg b in
         [
           work (3 + k);
           atomic (label b "Snapshot.spot") [ read c calib; read v cell ];
         ]))
    cells;
  (* One-way publish: payload then flag, consumed by a single gate
     reader checking flag-then-payload. *)
  thread b [ write pub_data (i 41); write pub_flag (i 1) ];
  thread b
    (let f = fresh_reg b in
     let d = fresh_reg b in
     [
       work 2;
       atomic
         (label b "Snapshot.checkReady")
         [ read f pub_flag; read d pub_data ];
     ]);
  program b
