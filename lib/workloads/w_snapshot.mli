(** Read-shared snapshot aggregation and one-way publish: every
    multi-read block is racy (Lipton-irreducible) yet serializable on all
    executions — the shapes only the static cycle-freedom rule proves. *)

val name : string
val description : string
val methods : (string * bool * bool) list
val build : Sizes.size -> Velodrome_sim.Ast.program
