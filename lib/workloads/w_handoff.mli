(** See the header comment in [w_handoff.ml] for what this benchmark
    models. *)

val name : string
val description : string

val methods : (string * bool * bool) list
(** (label, truly atomic, violation is schedule-rare) ground truth. *)

val build : Sizes.size -> Velodrome_sim.Ast.program
