type size = Sizes.size = Small | Medium | Large

type ground_truth = { label : string; atomic : bool; rare : bool }

type t = {
  name : string;
  description : string;
  build : size -> Velodrome_sim.Ast.program;
  methods : ground_truth list;
}

let lift name description build methods =
  {
    name;
    description;
    build;
    methods =
      List.map (fun (label, atomic, rare) -> { label; atomic; rare }) methods;
  }

let all =
  [
    lift W_elevator.name W_elevator.description W_elevator.build
      W_elevator.methods;
    lift W_hedc.name W_hedc.description W_hedc.build W_hedc.methods;
    lift W_tsp.name W_tsp.description W_tsp.build W_tsp.methods;
    lift W_sor.name W_sor.description W_sor.build W_sor.methods;
    lift W_jbb.name W_jbb.description W_jbb.build W_jbb.methods;
    lift W_mtrt.name W_mtrt.description W_mtrt.build W_mtrt.methods;
    lift W_moldyn.name W_moldyn.description W_moldyn.build W_moldyn.methods;
    lift W_montecarlo.name W_montecarlo.description W_montecarlo.build
      W_montecarlo.methods;
    lift W_raytracer.name W_raytracer.description W_raytracer.build
      W_raytracer.methods;
    lift W_colt.name W_colt.description W_colt.build W_colt.methods;
    lift W_philo.name W_philo.description W_philo.build W_philo.methods;
    lift W_raja.name W_raja.description W_raja.build W_raja.methods;
    lift W_multiset.name W_multiset.description W_multiset.build
      W_multiset.methods;
    lift W_webl.name W_webl.description W_webl.build W_webl.methods;
    lift W_jigsaw.name W_jigsaw.description W_jigsaw.build W_jigsaw.methods;
    lift W_handoff.name W_handoff.description W_handoff.build
      W_handoff.methods;
    lift W_snapshot.name W_snapshot.description W_snapshot.build
      W_snapshot.methods;
    lift W_dispatch.name W_dispatch.description W_dispatch.build
      W_dispatch.methods;
  ]

let find name = List.find_opt (fun w -> w.name = name) all

let non_atomic_count w =
  List.length (List.filter (fun g -> not g.atomic) w.methods)
