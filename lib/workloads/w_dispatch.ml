(* dispatch — tid-switched writer/reader roles over a shared accumulator,
   the shape the tid-specialized value analysis exists for. Every thread
   runs the SAME body: an if-chain on the thread-id register picks the
   role. Thread 0 atomically bumps the accumulator, computes a payload in
   a small counted loop, then publishes each reader's cell pair with two
   unary writes in reverse order (cellB before cellA); thread k+1
   atomically snapshots its own pair cellA-then-cellB.

   Without value analysis every replica statically carries every arm: the
   accumulator self-races across replicas (Dispatch.update is
   Lipton-irreducible and its regions form conflict cycles) and the
   duplicated scan regions close a torn-snapshot cycle into
   Dispatch.scan — both blocks report May_violate. With the thread-id
   register pinned per replica all foreign arms are statically dead:
   the accumulator becomes thread-local (update proves by Lipton) and
   each scan's only remaining partner is the single writer, whose
   reversed write order leaves no transactional happens-before cycle
   back into the scan (cycle-free).

   Both blocks really are atomic on every schedule: a torn snapshot
   would need read cellB before write cellB yet write cellA before read
   cellA, impossible given writer order cellB-then-cellA against reader
   order cellA-then-cellB — so the dynamic soundness gate stays green. *)

open Velodrome_sim
open Builder

let name = "dispatch"

let description =
  "tid-switched writer/reader roles over a shared accumulator; provable \
   only with tid-specialized value analysis"

let methods = [ ("Dispatch.update", true, false); ("Dispatch.scan", true, false) ]

let build size =
  let b = create () in
  let readers = Sizes.scale size (2, 3, 5) in
  let acc = var b "acc" in
  let cella = Array.init readers (fun k -> var b (Printf.sprintf "cellA%d" k)) in
  let cellb = Array.init readers (fun k -> var b (Printf.sprintf "cellB%d" k)) in
  let update = label b "Dispatch.update" in
  let scan = label b "Dispatch.scan" in
  let rt = fresh_reg b in
  let rp = fresh_reg b in
  let ra = fresh_reg b in
  let rb = fresh_reg b in
  let writer_role =
    [ atomic update [ read rt acc; write acc (r rt +: i 1) ] ]
    (* Payload computed by a bounded counted loop: the value analysis
       must prove the loop both enters and terminates, and pin rp to
       exactly 3 at exit. *)
    @ [ local rp (i 0); while_ (r rp <: i 3) [ local rp (r rp +: i 1) ] ]
    @ List.concat
        (List.init readers (fun k ->
             [
               write cellb.(k) (r rp +: i (100 + k));
               write cella.(k) (r rp +: i (100 + k));
             ]))
  in
  let reader_role k =
    [ atomic scan [ read ra cella.(k); read rb cellb.(k) ] ]
  in
  let rec arms k =
    if k > readers then []
    else
      [
        if_
          (r Ast.tid_reg ==: i k)
          (if k = 0 then writer_role else reader_role (k - 1))
          (arms (k + 1));
      ]
  in
  let body = arms 0 in
  threads b (1 + readers) (fun _ -> body);
  program b
