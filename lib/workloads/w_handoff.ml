(* handoff — single-writer publication guarded by per-reader pair locks.
   The writer updates the payload while holding every pair lock, then
   raises a ready flag under the handshake lock; each reader re-checks the
   flag under the handshake lock and only then reads the payload under its
   own pair lock. Every conflicting payload access pair shares exactly one
   pair lock, yet no single lock guards every site, so the pairwise static
   race detector proves both methods where the whole-variable common-lock
   rule cannot prove either — this workload exists to pin that precision
   delta. The flag handshake orders every payload write before any read on
   every schedule, so the dynamic race detectors stay quiet too. *)

open Velodrome_sim
open Builder

let name = "handoff"

let description =
  "single-writer publication guarded by per-reader pair locks"

let methods =
  [ ("Handoff.publish", true, false); ("Handoff.consume", true, false) ]

let build size =
  let b = create () in
  let readers = Sizes.scale size (2, 3, 4) in
  let rounds = Sizes.scale size (2, 8, 24) in
  let payload = var b "payload" in
  let flag = var b "ready" in
  let handshake = lock b "handshake" in
  let pair =
    Array.init readers (fun k -> lock b (Printf.sprintf "pair%d" k))
  in
  let nested body = Array.fold_right (fun m acc -> sync m acc) pair body in
  threads b (readers + 1) (fun t ->
      if t = 0 then begin
        let k = fresh_reg b in
        let v = fresh_reg b in
        [
          local k (i 0);
          while_ (r k <: i rounds)
            [
              work 5;
              atomic (label b "Handoff.publish")
                (nested [ read v payload; write payload (r v +: i 1) ]);
              local k (r k +: i 1);
            ];
        ]
        (* The flag is raised once, after the last payload write, so
           every reader access is ordered after every write. *)
        @ sync handshake [ write flag (i 1) ]
      end
      else begin
        let k = fresh_reg b in
        let rf = fresh_reg b in
        let v1 = fresh_reg b in
        let v2 = fresh_reg b in
        [
          local k (i 0);
          while_ (r k <: i rounds)
            (work 3
            :: (sync handshake [ read rf flag ]
               @ [
                   if_
                     (r rf ==: i 1)
                     [
                       atomic (label b "Handoff.consume")
                         (sync
                            pair.(t - 1)
                            [ read v1 payload; read v2 payload ]);
                     ]
                     [];
                   local k (r k +: i 1);
                 ]));
        ]
      end);
  program b
