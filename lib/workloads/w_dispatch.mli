(** Tid-switched writer/reader roles over a shared accumulator: every
    thread runs the same body dispatching on the thread-id register, so
    both blocks report [May_violate] without value analysis and prove
    atomic (Lipton for the update, cycle-freedom for the scan) with it. *)

val name : string
val description : string
val methods : (string * bool * bool) list
val build : Sizes.size -> Velodrome_sim.Ast.program
