open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis
open Velodrome_util

type config = { merge : bool; record_graphs : bool }

let default_config = { merge = true; record_graphs = true }

(* The open-block stack lives in a pair of parallel int arrays (label,
   begin timestamp; index 0 = outermost) so Begin/End never cons. *)
type thread_state = {
  mutable cur : Pool.node option;
  mutable stk_labels : int array;
  mutable stk_ts : int array;
  mutable depth : int;
  mutable l : Step.t;
}

(* Per-variable last-read steps, keyed by thread id in a small pair of
   parallel arrays (thread counts are tiny; linear search beats hashing
   and never allocates on lookup). *)
type var_state = {
  mutable w : Step.t;
  mutable read_tids : int array;
  mutable read_steps : Step.t array;
  mutable nreads : int;
}

(* Structural dedup key, built only once a cycle has been detected. *)
type report_key = Blamed of int | Unblamed of (int * int) list

type t = {
  names : Names.t;
  config : config;
  pool : Pool.t;
  threads : thread_state Vec.t;  (** dense, indexed by interned tid *)
  locks : Step.t Vec.t;  (** dense, indexed by interned lock id *)
  vars : var_state Vec.t;  (** dense, indexed by interned var id *)
  mutable warnings_rev : Warning.t list;
  reported : (report_key, unit) Hashtbl.t;
  mutable cycles : int;
  mutable blamed : int;
  mutable first_error : int option;
  mutable pending : Pool.cycle list;
      (** cycles detected while processing the current event; one event may
          reject several edges (e.g. a write conflicting with both the
          recorded reads and the recorded write), and blame should prefer
          an increasing cycle among them *)
  mutable mbuf : Step.t array;  (** merge scratch: live predecessor steps *)
  mutable mlen : int;
}

let analysis_name config =
  if config.merge then "velodrome" else "velodrome-nomerge"

let create ?(config = default_config) names =
  {
    names;
    config;
    pool = Pool.create ();
    threads = Vec.create ();
    locks = Vec.create ();
    vars = Vec.create ();
    warnings_rev = [];
    reported = Hashtbl.create 16;
    cycles = 0;
    blamed = 0;
    first_error = None;
    pending = [];
    mbuf = Array.make 8 Step.bottom;
    mlen = 0;
  }

let fresh_thread () =
  {
    cur = None;
    stk_labels = Array.make 8 (-1);
    stk_ts = Array.make 8 0;
    depth = 0;
    l = Step.bottom;
  }

let thread t tid =
  let k = Tid.to_int tid in
  while Vec.length t.threads <= k do
    Vec.push t.threads (fresh_thread ())
  done;
  Vec.unsafe_get t.threads k

let fresh_var () =
  { w = Step.bottom; read_tids = [||]; read_steps = [||]; nreads = 0 }

let var_state t x =
  let k = Var.to_int x in
  while Vec.length t.vars <= k do
    Vec.push t.vars (fresh_var ())
  done;
  Vec.unsafe_get t.vars k

let lock_step t m =
  let k = Lock.to_int m in
  if k < Vec.length t.locks then Vec.unsafe_get t.locks k else Step.bottom

let set_lock_step t m s =
  let k = Lock.to_int m in
  while Vec.length t.locks <= k do
    Vec.push t.locks Step.bottom
  done;
  Vec.set t.locks k s

(* Record tid's last read of the variable; replaces in place, growing the
   arrays only the first time a thread touches the variable. *)
let set_read vs tid s =
  let rec find i =
    if i >= vs.nreads then -1
    else if Array.unsafe_get vs.read_tids i = tid then i
    else find (i + 1)
  in
  let i = find 0 in
  if i >= 0 then Array.unsafe_set vs.read_steps i s
  else begin
    if vs.nreads = Array.length vs.read_tids then begin
      let cap = max 4 (2 * vs.nreads) in
      let nt = Array.make cap (-1) in
      let ns = Array.make cap Step.bottom in
      Array.blit vs.read_tids 0 nt 0 vs.nreads;
      Array.blit vs.read_steps 0 ns 0 vs.nreads;
      vs.read_tids <- nt;
      vs.read_steps <- ns
    end;
    vs.read_tids.(vs.nreads) <- tid;
    vs.read_steps.(vs.nreads) <- s;
    vs.nreads <- vs.nreads + 1
  end

let stack_push st label ts =
  let cap = Array.length st.stk_labels in
  if st.depth = cap then begin
    let nl = Array.make (2 * cap) (-1) in
    let nt = Array.make (2 * cap) 0 in
    Array.blit st.stk_labels 0 nl 0 cap;
    Array.blit st.stk_ts 0 nt 0 cap;
    st.stk_labels <- nl;
    st.stk_ts <- nt
  end;
  Array.unsafe_set st.stk_labels st.depth label;
  Array.unsafe_set st.stk_ts st.depth ts;
  st.depth <- st.depth + 1

(* The open-block stack as the (label, begin ts) list the blame logic
   wants: innermost first. Cold path only. *)
let stack_innermost_first st =
  let rec go i acc =
    if i >= st.depth then acc
    else go (i + 1) ((st.stk_labels.(i), st.stk_ts.(i)) :: acc)
  in
  go 0 []

(* --- Error reporting --------------------------------------------------- *)

let cycle_nodes (c : Pool.cycle) =
  match c.Pool.path with
  | [] -> []
  | (first, _, _) :: _ ->
    first :: List.map (fun (_, _, dst) -> dst) c.Pool.path

let graph_of_cycle (c : Pool.cycle) ~closing_op ~blamed_slot =
  let nodes =
    List.map
      (fun n ->
        {
          Error_graph.id = Pool.slot n;
          tid = Pool.diag_tid n;
          label = Pool.diag_label n;
          blamed = Some (Pool.slot n) = blamed_slot;
        })
      (cycle_nodes c)
  in
  let edges =
    List.map
      (fun (src, (e : Pool.edge), dst) ->
        {
          Error_graph.src = Pool.slot src;
          dst = Pool.slot dst;
          op = e.Pool.diag_op;
          closing = false;
        })
      c.Pool.path
  in
  let closing =
    match (List.rev c.Pool.path, c.Pool.path) with
    | (_, _, last) :: _, (first, _, _) :: _ ->
      [
        {
          Error_graph.src = Pool.slot last;
          dst = Pool.slot first;
          op = Some closing_op;
          closing = true;
        };
      ]
    | _ -> []
  in
  { Error_graph.nodes; edges = edges @ closing }

(* A cycle [v -> n1 -> ... -> u -> v] is increasing when every node other
   than v enters on a timestamp no later than it leaves on (Section 4.3).
   [path] runs v ⇒* u; the closing edge u -> v carries
   [closing_tail_ts]/[closing_head_ts]. *)
let is_increasing (c : Pool.cycle) =
  let rec go = function
    | [] -> true
    | [ (_, (e : Pool.edge), _u) ] ->
      (* u's incoming edge is [e]; its outgoing edge is the closing one. *)
      e.Pool.head_ts <= c.Pool.closing_tail_ts
    | (_, (e1 : Pool.edge), _) :: (((_, e2, _) :: _) as rest) ->
      e1.Pool.head_ts <= (e2 : Pool.edge).Pool.tail_ts && go rest
  in
  go c.Pool.path

let emit t w key =
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.replace t.reported key ();
    t.warnings_rev <- w :: t.warnings_rev
  end

(* Queue a detected cycle; the warning is built once per event by
   [flush_pending], which prefers an increasing cycle when the event
   produced several. *)
let report_cycle t _st _e (c : Pool.cycle) = t.pending <- c :: t.pending

let emit_cycle_warning t st (e : Event.t) (c : Pool.cycle) =
  let increasing = is_increasing c in
  (* Root operation: the timestamp at which the current transaction's
     outgoing edge on the cycle leaves it. *)
  let root_ts =
    match c.Pool.path with
    | (_, edge, _) :: _ -> edge.Pool.tail_ts
    | [] -> c.Pool.closing_tail_ts
  in
  let stack = stack_innermost_first st in
  let refuted =
    if increasing then
      List.filter (fun (_, begin_ts) -> begin_ts <= root_ts) stack
    else []
  in
  (* A pseudo-block (label -1) wraps a unary transaction in no-merge mode;
     unary transactions are trivially self-serializable and never blamed. *)
  let refuted = List.filter (fun (l, _) -> l >= 0) refuted in
  let blamed = refuted <> [] in
  if blamed then t.blamed <- t.blamed + 1;
  (* The outermost refuted block is the method we report (inner refuted
     blocks are mentioned; deeper, non-refuted blocks stay silent). *)
  let outermost = List.rev refuted in
  let primary_label =
    match outermost with
    | (l, _) :: _ when l >= 0 -> Some (Label.of_int l)
    | _ -> (
      (* Unblamed: attribute the report to the current outermost block so
         the user can find it, but mark it unblamed. *)
      match List.rev stack with
      | (l, _) :: _ when l >= 0 -> Some (Label.of_int l)
      | _ -> None)
  in
  let key =
    match (blamed, primary_label) with
    | true, Some l -> Blamed (Label.to_int l)
    | _ ->
      (* Distinct unblamed cycles are distinguished by their node
         signature so repeats do not pile up. *)
      Unblamed
        (List.map
           (fun n -> (Pool.diag_tid n, Pool.diag_label n))
           (cycle_nodes c))
  in
  if Hashtbl.mem t.reported key then ()
  else begin
  let blamed_slot =
    match (blamed, st.cur) with
    | true, Some n -> Some (Pool.slot n)
    | _ -> None
  in
  let graph = graph_of_cycle c ~closing_op:e.Event.op ~blamed_slot in
  let dot =
    if t.config.record_graphs then
      let name =
        match primary_label with
        | Some l -> Names.label_name t.names l
        | None -> "cycle"
      in
      Some (Error_graph.to_dot t.names ~name graph)
    else None
  in
  let message =
    let summary = Format.asprintf "%a" (Error_graph.pp_summary t.names) graph in
    let verdict =
      if blamed then
        Printf.sprintf "not self-serializable (refuted blocks: %s)"
          (String.concat ", "
             (List.map
                (fun (l, _) ->
                  if l >= 0 then Names.label_name t.names (Label.of_int l)
                  else "(unary)")
                outermost))
      else "non-serializable trace (no single transaction blamed)"
    in
    Printf.sprintf "%s; cycle: %s" verdict summary
  in
  let warning =
    Warning.make
      ~analysis:(analysis_name t.config)
      ~kind:Warning.Atomicity_violation ~tid:(Op.tid e.Event.op)
      ?label:primary_label ?dot ~blamed
      ~refuted:(List.map (fun (l, _) -> Label.of_int l) outermost)
      ~index:e.Event.index message
  in
  emit t warning key
  end

let flush_pending t st (e : Event.t) =
  match t.pending with
  | [] -> ()
  | cycles ->
    t.pending <- [];
    t.cycles <- t.cycles + 1;
    if t.first_error = None then t.first_error <- Some e.Event.index;
    let cycles = List.rev cycles in
    let chosen =
      match List.find_opt is_increasing cycles with
      | Some c -> c
      | None -> List.hd cycles
    in
    emit_cycle_warning t st e chosen

(* --- Edges -------------------------------------------------------------- *)

(* Add an edge from a recorded step to the current transaction's new step;
   report a cycle if one would form. Stale and ⊥ steps contribute
   nothing. *)
let edge_from t st ~src ~dst ~dst_ts (e : Event.t) =
  if Pool.step_live t.pool src then
    match
      Pool.add_edge_op t.pool
        ~src:(Pool.node_of_step t.pool src)
        ~src_ts:(Step.ts_unchecked src) ~dst ~dst_ts ~op:e.Event.op
        ~index:e.Event.index
    with
    | `Ok | `Self -> ()
    | `Cycle c -> report_cycle t st e c

(* --- Merge (Figure 4) --------------------------------------------------- *)

(* The merge arguments accumulate in [t.mbuf] (already filtered to live
   steps), so no per-event list is built. *)
let merge_reset t = t.mlen <- 0

let merge_add t s =
  if Pool.step_live t.pool s then begin
    if t.mlen = Array.length t.mbuf then begin
      let nb = Array.make (2 * t.mlen) Step.bottom in
      Array.blit t.mbuf 0 nb 0 t.mlen;
      t.mbuf <- nb
    end;
    Array.unsafe_set t.mbuf t.mlen s;
    t.mlen <- t.mlen + 1
  end

let rec happens_after_all t nj i =
  i >= t.mlen
  || (Pool.happens_before_or_eq t.pool
        (Pool.node_of_step t.pool (Array.unsafe_get t.mbuf i))
        nj
     && happens_after_all t nj (i + 1))

(* A representative must already happen-after every argument AND be
   finished: an active transaction can still perform conflicting
   operations, and absorbing the unary op into it would turn the
   resulting cycle edges into self-edges. *)
let rec find_rep t j =
  if j >= t.mlen then -1
  else
    let nj = Pool.node_of_step t.pool (Array.unsafe_get t.mbuf j) in
    if (not (Pool.is_active nj)) && happens_after_all t nj 0 then j
    else find_rep t (j + 1)

let merge_finish t (e : Event.t) =
  if t.mlen = 0 then Step.bottom
  else begin
    let rep = find_rep t 0 in
    if rep >= 0 then t.mbuf.(rep)
    else begin
      let n =
        Pool.alloc t.pool
          ~tid:(Tid.to_int (Op.tid e.Event.op))
          ~label:(-1) ~event:e.Event.index
      in
      let ts = Pool.fresh_ts n in
      for i = 0 to t.mlen - 1 do
        let s = Array.unsafe_get t.mbuf i in
        match
          Pool.add_edge_op t.pool
            ~src:(Pool.node_of_step t.pool s)
            ~src_ts:(Step.ts_unchecked s) ~dst:n ~dst_ts:ts ~op:e.Event.op
            ~index:e.Event.index
        with
        | `Ok | `Self -> ()
        | `Cycle _ ->
          (* Impossible: [n] is fresh and has no outgoing edges. *)
          assert false
      done;
      Pool.sweep t.pool n;
      Pool.step_of n ~ts
    end
  end

(* [L(t)+1] for a thread outside any transaction: mint the next timestamp
   in whatever node its last step belongs to; ⊥ stays ⊥. *)
let l_plus_one t st =
  if Pool.step_live t.pool st.l then begin
    let n = Pool.node_of_step t.pool st.l in
    Pool.step_of n ~ts:(Pool.fresh_ts n)
  end
  else Step.bottom

(* --- Inside-transaction step -------------------------------------------- *)

let inside_step st n =
  let ts = Pool.fresh_ts n in
  st.l <- Pool.step_of n ~ts;
  ts

(* --- Naive outside handling (Figure 2's [INS OUTSIDE]) ------------------ *)

(* Wrap the operation in a fresh unary transaction: begin, op, end. Used
   when [config.merge] is off; Table 1's "Without Merge" columns. *)
let outside_naive t st (e : Event.t) body =
  let n =
    Pool.alloc t.pool
      ~tid:(Tid.to_int (Op.tid e.Event.op))
      ~label:(-1) ~event:e.Event.index
  in
  Pool.set_active t.pool n true;
  let ts0 = Pool.fresh_ts n in
  edge_from t st ~src:st.l ~dst:n ~dst_ts:ts0 e;
  st.l <- Pool.step_of n ~ts:ts0;
  st.cur <- Some n;
  st.depth <- 0;
  stack_push st (-1) ts0;
  body n;
  let ts = Pool.fresh_ts n in
  st.l <- Pool.step_of n ~ts;
  st.cur <- None;
  st.depth <- 0;
  Pool.set_active t.pool n false

(* --- Event dispatch ------------------------------------------------------ *)

let do_acquire t st n (e : Event.t) m =
  let ts = inside_step st n in
  edge_from t st ~src:(lock_step t m) ~dst:n ~dst_ts:ts e

let do_release t st n m =
  ignore (inside_step st n);
  set_lock_step t m st.l

let do_read t st n (e : Event.t) x =
  let vs = var_state t x in
  let ts = inside_step st n in
  edge_from t st ~src:vs.w ~dst:n ~dst_ts:ts e;
  set_read vs (Tid.to_int (Op.tid e.Event.op)) st.l

let do_write t st n (e : Event.t) x =
  let vs = var_state t x in
  let ts = inside_step st n in
  for i = 0 to vs.nreads - 1 do
    edge_from t st ~src:(Array.unsafe_get vs.read_steps i) ~dst:n ~dst_ts:ts e
  done;
  edge_from t st ~src:vs.w ~dst:n ~dst_ts:ts e;
  vs.w <- st.l

let dispatch t st (e : Event.t) =
  let op = e.Event.op in
  match op with
  | Op.Begin (tid, l) -> (
    match st.cur with
    | None ->
      (* [INS2 ENTER] *)
      let n =
        Pool.alloc t.pool ~tid:(Tid.to_int tid) ~label:(Label.to_int l)
          ~event:e.Event.index
      in
      Pool.set_active t.pool n true;
      let ts = Pool.fresh_ts n in
      edge_from t st ~src:st.l ~dst:n ~dst_ts:ts e;
      st.cur <- Some n;
      st.depth <- 0;
      stack_push st (Label.to_int l) ts;
      st.l <- Pool.step_of n ~ts
    | Some n ->
      (* [INS2 RE-ENTER]: same node; the L(t) edge is a self-edge. *)
      let ts = inside_step st n in
      stack_push st (Label.to_int l) ts)
  | Op.End _ -> (
    match st.cur with
    | Some n when st.depth > 0 ->
      ignore (inside_step st n);
      st.depth <- st.depth - 1;
      if st.depth = 0 then begin
        st.cur <- None;
        Pool.set_active t.pool n false
      end
    | _ ->
      (* Ill-formed stream ([End] without [Begin]); ignore, matching the
         well-formedness contract of {!Velodrome_trace.Trace.check}. *)
      ())
  | Op.Acquire (_, m) -> (
    match st.cur with
    | Some n -> do_acquire t st n e m
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE ACQUIRE] *)
        merge_reset t;
        merge_add t st.l;
        merge_add t (lock_step t m);
        st.l <- merge_finish t e
      end
      else outside_naive t st e (fun n -> do_acquire t st n e m))
  | Op.Release (_, m) -> (
    match st.cur with
    | Some n -> do_release t st n m
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE RELEASE] *)
        let s = l_plus_one t st in
        st.l <- s;
        set_lock_step t m s
      end
      else outside_naive t st e (fun n -> do_release t st n m))
  | Op.Read (tid, x) -> (
    match st.cur with
    | Some n -> do_read t st n e x
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE READ] *)
        let vs = var_state t x in
        merge_reset t;
        merge_add t st.l;
        merge_add t vs.w;
        let s = merge_finish t e in
        st.l <- s;
        set_read vs (Tid.to_int tid) s
      end
      else outside_naive t st e (fun n -> do_read t st n e x))
  | Op.Write (_, x) -> (
    match st.cur with
    | Some n -> do_write t st n e x
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE WRITE] *)
        let vs = var_state t x in
        merge_reset t;
        merge_add t st.l;
        merge_add t vs.w;
        for i = 0 to vs.nreads - 1 do
          merge_add t (Array.unsafe_get vs.read_steps i)
        done;
        let s = merge_finish t e in
        st.l <- s;
        vs.w <- s
      end
      else outside_naive t st e (fun n -> do_write t st n e x))

let on_event t (e : Event.t) =
  let st = thread t (Op.tid e.Event.op) in
  dispatch t st e;
  match t.pending with [] -> () | _ -> flush_pending t st e

let finish _ = ()

let warnings t = List.rev t.warnings_rev
let has_error t = t.cycles > 0
let cycles_found t = t.cycles
let blamed_count t = t.blamed
let first_error_index t = t.first_error
let nodes_allocated t = Pool.allocated t.pool
let nodes_max_alive t = Pool.max_alive t.pool
let nodes_live t = Pool.live_count t.pool
let debug_pool t = t.pool

let backend ?(config = default_config) () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = analysis_name config
    let create names = create ~config names
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
