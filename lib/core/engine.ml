open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

type config = { merge : bool; record_graphs : bool }

let default_config = { merge = true; record_graphs = true }

type thread_state = {
  mutable cur : Pool.node option;
  mutable stack : (int * int) list;  (** (label, begin ts), innermost first *)
  mutable l : Step.t;
}

type var_state = {
  mutable w : Step.t;
  reads : (int, Step.t) Hashtbl.t;  (** tid -> last read step *)
}

type t = {
  names : Names.t;
  config : config;
  pool : Pool.t;
  threads : (int, thread_state) Hashtbl.t;
  locks : (int, Step.t) Hashtbl.t;
  vars : (int, var_state) Hashtbl.t;
  mutable warnings_rev : Warning.t list;
  reported : (string, unit) Hashtbl.t;  (** dedup keys of emitted warnings *)
  mutable cycles : int;
  mutable blamed : int;
  mutable first_error : int option;
  mutable pending : Pool.cycle list;
      (** cycles detected while processing the current event; one event may
          reject several edges (e.g. a write conflicting with both the
          recorded reads and the recorded write), and blame should prefer
          an increasing cycle among them *)
}

let analysis_name config =
  if config.merge then "velodrome" else "velodrome-nomerge"

let create ?(config = default_config) names =
  {
    names;
    config;
    pool = Pool.create ();
    threads = Hashtbl.create 8;
    locks = Hashtbl.create 16;
    vars = Hashtbl.create 64;
    warnings_rev = [];
    reported = Hashtbl.create 16;
    cycles = 0;
    blamed = 0;
    first_error = None;
    pending = [];
  }

let thread t tid =
  let key = Tid.to_int tid in
  match Hashtbl.find_opt t.threads key with
  | Some st -> st
  | None ->
    let st = { cur = None; stack = []; l = Step.bottom } in
    Hashtbl.replace t.threads key st;
    st

let var_state t x =
  let key = Var.to_int x in
  match Hashtbl.find_opt t.vars key with
  | Some vs -> vs
  | None ->
    let vs = { w = Step.bottom; reads = Hashtbl.create 4 } in
    Hashtbl.replace t.vars key vs;
    vs

let lock_step t m =
  Option.value ~default:Step.bottom
    (Hashtbl.find_opt t.locks (Lock.to_int m))

(* Resolve a recorded (weak) step to its node, unless ⊥ or stale. *)
let deref t s =
  match Pool.resolve t.pool s with
  | Some n -> Some (n, Step.ts s)
  | None -> None

(* --- Error reporting --------------------------------------------------- *)

let cycle_nodes (c : Pool.cycle) =
  match c.Pool.path with
  | [] -> []
  | (first, _, _) :: _ ->
    first :: List.map (fun (_, _, dst) -> dst) c.Pool.path

let graph_of_cycle (c : Pool.cycle) ~closing_op ~blamed_slot =
  let nodes =
    List.map
      (fun n ->
        {
          Error_graph.id = Pool.slot n;
          tid = Pool.diag_tid n;
          label = Pool.diag_label n;
          blamed = Some (Pool.slot n) = blamed_slot;
        })
      (cycle_nodes c)
  in
  let edges =
    List.map
      (fun (src, (e : Pool.edge), dst) ->
        {
          Error_graph.src = Pool.slot src;
          dst = Pool.slot dst;
          op = e.Pool.diag_op;
          closing = false;
        })
      c.Pool.path
  in
  let closing =
    match (List.rev c.Pool.path, c.Pool.path) with
    | (_, _, last) :: _, (first, _, _) :: _ ->
      [
        {
          Error_graph.src = Pool.slot last;
          dst = Pool.slot first;
          op = Some closing_op;
          closing = true;
        };
      ]
    | _ -> []
  in
  { Error_graph.nodes; edges = edges @ closing }

(* A cycle [v -> n1 -> ... -> u -> v] is increasing when every node other
   than v enters on a timestamp no later than it leaves on (Section 4.3).
   [path] runs v ⇒* u; the closing edge u -> v carries
   [closing_tail_ts]/[closing_head_ts]. *)
let is_increasing (c : Pool.cycle) =
  let rec go = function
    | [] -> true
    | [ (_, (e : Pool.edge), _u) ] ->
      (* u's incoming edge is [e]; its outgoing edge is the closing one. *)
      e.Pool.head_ts <= c.Pool.closing_tail_ts
    | (_, (e1 : Pool.edge), _) :: (((_, e2, _) :: _) as rest) ->
      e1.Pool.head_ts <= (e2 : Pool.edge).Pool.tail_ts && go rest
  in
  go c.Pool.path

let emit t w key =
  if not (Hashtbl.mem t.reported key) then begin
    Hashtbl.replace t.reported key ();
    t.warnings_rev <- w :: t.warnings_rev
  end

(* Queue a detected cycle; the warning is built once per event by
   [flush_pending], which prefers an increasing cycle when the event
   produced several. *)
let report_cycle t _st _e (c : Pool.cycle) = t.pending <- c :: t.pending

let emit_cycle_warning t st (e : Event.t) (c : Pool.cycle) =
  let increasing = is_increasing c in
  (* Root operation: the timestamp at which the current transaction's
     outgoing edge on the cycle leaves it. *)
  let root_ts =
    match c.Pool.path with
    | (_, edge, _) :: _ -> edge.Pool.tail_ts
    | [] -> c.Pool.closing_tail_ts
  in
  let refuted =
    if increasing then
      List.filter (fun (_, begin_ts) -> begin_ts <= root_ts) st.stack
    else []
  in
  (* A pseudo-block (label -1) wraps a unary transaction in no-merge mode;
     unary transactions are trivially self-serializable and never blamed. *)
  let refuted = List.filter (fun (l, _) -> l >= 0) refuted in
  let blamed = refuted <> [] in
  if blamed then t.blamed <- t.blamed + 1;
  (* The outermost refuted block is the method we report (inner refuted
     blocks are mentioned; deeper, non-refuted blocks stay silent). *)
  let outermost = List.rev refuted in
  let primary_label =
    match outermost with
    | (l, _) :: _ when l >= 0 -> Some (Label.of_int l)
    | _ -> (
      (* Unblamed: attribute the report to the current outermost block so
         the user can find it, but mark it unblamed. *)
      match List.rev st.stack with
      | (l, _) :: _ when l >= 0 -> Some (Label.of_int l)
      | _ -> None)
  in
  let key =
    match (blamed, primary_label) with
    | true, Some l -> Printf.sprintf "blamed:%d" (Label.to_int l)
    | _ ->
      (* Distinct unblamed cycles are distinguished by their node
         signature so repeats do not pile up. *)
      String.concat ";"
        (List.map
           (fun n ->
             Printf.sprintf "%d:%d" (Pool.diag_tid n) (Pool.diag_label n))
           (cycle_nodes c))
  in
  if Hashtbl.mem t.reported key then ()
  else begin
  let blamed_slot =
    match (blamed, st.cur) with
    | true, Some n -> Some (Pool.slot n)
    | _ -> None
  in
  let graph = graph_of_cycle c ~closing_op:e.Event.op ~blamed_slot in
  let dot =
    if t.config.record_graphs then
      let name =
        match primary_label with
        | Some l -> Names.label_name t.names l
        | None -> "cycle"
      in
      Some (Error_graph.to_dot t.names ~name graph)
    else None
  in
  let message =
    let summary = Format.asprintf "%a" (Error_graph.pp_summary t.names) graph in
    let verdict =
      if blamed then
        Printf.sprintf "not self-serializable (refuted blocks: %s)"
          (String.concat ", "
             (List.map
                (fun (l, _) ->
                  if l >= 0 then Names.label_name t.names (Label.of_int l)
                  else "(unary)")
                outermost))
      else "non-serializable trace (no single transaction blamed)"
    in
    Printf.sprintf "%s; cycle: %s" verdict summary
  in
  let warning =
    Warning.make
      ~analysis:(analysis_name t.config)
      ~kind:Warning.Atomicity_violation ~tid:(Op.tid e.Event.op)
      ?label:primary_label ?dot ~blamed
      ~refuted:(List.map (fun (l, _) -> Label.of_int l) outermost)
      ~index:e.Event.index message
  in
  emit t warning key
  end

let flush_pending t st (e : Event.t) =
  match t.pending with
  | [] -> ()
  | cycles ->
    t.pending <- [];
    t.cycles <- t.cycles + 1;
    if t.first_error = None then t.first_error <- Some e.Event.index;
    let cycles = List.rev cycles in
    let chosen =
      match List.find_opt is_increasing cycles with
      | Some c -> c
      | None -> List.hd cycles
    in
    emit_cycle_warning t st e chosen

(* --- Edges -------------------------------------------------------------- *)

(* Add an edge from a recorded step to the current transaction's new step;
   report a cycle if one would form. *)
let edge_from t st ~src:step ~dst ~dst_ts (e : Event.t) =
  match deref t step with
  | None -> ()
  | Some (src, src_ts) -> (
    match
      Pool.add_edge t.pool ~src ~src_ts ~dst ~dst_ts
        ~diag:(e.Event.op, e.Event.index) ()
    with
    | `Ok | `Self -> ()
    | `Cycle c -> report_cycle t st e c)

(* --- Merge (Figure 4) --------------------------------------------------- *)

let merge t (e : Event.t) steps =
  let resolved = List.filter_map (deref t) steps in
  match resolved with
  | [] -> Step.bottom
  | _ -> (
    (* A representative must already happen-after every argument AND be
       finished: an active transaction can still perform conflicting
       operations, and absorbing the unary op into it would turn the
       resulting cycle edges into self-edges. *)
    let is_rep (nj, _) =
      (not (Pool.is_active nj))
      && List.for_all (fun (ni, _) -> Pool.happens_before_or_eq t.pool ni nj)
           resolved
    in
    match List.find_opt is_rep resolved with
    | Some (nj, tsj) -> Pool.step_of nj ~ts:tsj
    | None ->
      let n =
        Pool.alloc t.pool
          ~tid:(Tid.to_int (Op.tid e.Event.op))
          ~label:(-1) ~event:e.Event.index
      in
      let ts = Pool.fresh_ts n in
      List.iter
        (fun (ni, tsi) ->
          match
            Pool.add_edge t.pool ~src:ni ~src_ts:tsi ~dst:n ~dst_ts:ts
              ~diag:(e.Event.op, e.Event.index) ()
          with
          | `Ok | `Self -> ()
          | `Cycle _ ->
            (* Impossible: [n] is fresh and has no outgoing edges. *)
            assert false)
        resolved;
      Pool.sweep t.pool n;
      Pool.step_of n ~ts)

(* [L(t)+1] for a thread outside any transaction: mint the next timestamp
   in whatever node its last step belongs to; ⊥ stays ⊥. *)
let l_plus_one t st =
  match deref t st.l with
  | None -> Step.bottom
  | Some (n, _) -> Pool.step_of n ~ts:(Pool.fresh_ts n)

(* --- Inside-transaction step -------------------------------------------- *)

let inside_step st n =
  let ts = Pool.fresh_ts n in
  st.l <- Pool.step_of n ~ts;
  ts

(* --- Naive outside handling (Figure 2's [INS OUTSIDE]) ------------------ *)

(* Wrap the operation in a fresh unary transaction: begin, op, end. Used
   when [config.merge] is off; Table 1's "Without Merge" columns. *)
let outside_naive t st (e : Event.t) body =
  let n =
    Pool.alloc t.pool
      ~tid:(Tid.to_int (Op.tid e.Event.op))
      ~label:(-1) ~event:e.Event.index
  in
  Pool.set_active t.pool n true;
  let ts0 = Pool.fresh_ts n in
  edge_from t st ~src:st.l ~dst:n ~dst_ts:ts0 e;
  st.l <- Pool.step_of n ~ts:ts0;
  st.cur <- Some n;
  st.stack <- [ (-1, ts0) ];
  body n;
  let ts = Pool.fresh_ts n in
  st.l <- Pool.step_of n ~ts;
  st.cur <- None;
  st.stack <- [];
  Pool.set_active t.pool n false

(* --- Event dispatch ------------------------------------------------------ *)

let do_acquire t st n (e : Event.t) m =
  let ts = inside_step st n in
  edge_from t st ~src:(lock_step t m) ~dst:n ~dst_ts:ts e

let do_release t st n m =
  ignore (inside_step st n);
  Hashtbl.replace t.locks (Lock.to_int m) st.l

let do_read t st n (e : Event.t) x =
  let vs = var_state t x in
  let ts = inside_step st n in
  edge_from t st ~src:vs.w ~dst:n ~dst_ts:ts e;
  Hashtbl.replace vs.reads (Tid.to_int (Op.tid e.Event.op)) st.l

let do_write t st n (e : Event.t) x =
  let vs = var_state t x in
  let ts = inside_step st n in
  Hashtbl.iter (fun _tid r -> edge_from t st ~src:r ~dst:n ~dst_ts:ts e)
    vs.reads;
  edge_from t st ~src:vs.w ~dst:n ~dst_ts:ts e;
  vs.w <- st.l

let dispatch t (e : Event.t) =
  let op = e.Event.op in
  let tid = Op.tid op in
  let st = thread t tid in
  match op with
  | Op.Begin (_, l) -> (
    match st.cur with
    | None ->
      (* [INS2 ENTER] *)
      let n =
        Pool.alloc t.pool ~tid:(Tid.to_int tid) ~label:(Label.to_int l)
          ~event:e.Event.index
      in
      Pool.set_active t.pool n true;
      let ts = Pool.fresh_ts n in
      edge_from t st ~src:st.l ~dst:n ~dst_ts:ts e;
      st.cur <- Some n;
      st.stack <- [ (Label.to_int l, ts) ];
      st.l <- Pool.step_of n ~ts
    | Some n ->
      (* [INS2 RE-ENTER]: same node; the L(t) edge is a self-edge. *)
      let ts = inside_step st n in
      st.stack <- (Label.to_int l, ts) :: st.stack)
  | Op.End _ -> (
    match (st.cur, st.stack) with
    | Some n, _ :: rest ->
      ignore (inside_step st n);
      st.stack <- rest;
      if rest = [] then begin
        st.cur <- None;
        Pool.set_active t.pool n false
      end
    | _ ->
      (* Ill-formed stream ([End] without [Begin]); ignore, matching the
         well-formedness contract of {!Velodrome_trace.Trace.check}. *)
      ())
  | Op.Acquire (_, m) -> (
    match st.cur with
    | Some n -> do_acquire t st n e m
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE ACQUIRE] *)
        let s = merge t e [ st.l; lock_step t m ] in
        st.l <- s
      end
      else outside_naive t st e (fun n -> do_acquire t st n e m))
  | Op.Release (_, m) -> (
    match st.cur with
    | Some n -> do_release t st n m
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE RELEASE] *)
        let s = l_plus_one t st in
        st.l <- s;
        Hashtbl.replace t.locks (Lock.to_int m) s
      end
      else outside_naive t st e (fun n -> do_release t st n m))
  | Op.Read (_, x) -> (
    match st.cur with
    | Some n -> do_read t st n e x
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE READ] *)
        let vs = var_state t x in
        let s = merge t e [ st.l; vs.w ] in
        st.l <- s;
        Hashtbl.replace vs.reads (Tid.to_int tid) s
      end
      else outside_naive t st e (fun n -> do_read t st n e x))
  | Op.Write (_, x) -> (
    match st.cur with
    | Some n -> do_write t st n e x
    | None ->
      if t.config.merge then begin
        (* [INS2 OUTSIDE WRITE] *)
        let vs = var_state t x in
        let reads = Hashtbl.fold (fun _ r acc -> r :: acc) vs.reads [] in
        let s = merge t e (st.l :: vs.w :: reads) in
        st.l <- s;
        vs.w <- s
      end
      else outside_naive t st e (fun n -> do_write t st n e x))

let on_event t (e : Event.t) =
  dispatch t e;
  flush_pending t (thread t (Op.tid e.Event.op)) e

let finish _ = ()

let warnings t = List.rev t.warnings_rev
let has_error t = t.cycles > 0
let cycles_found t = t.cycles
let blamed_count t = t.blamed
let first_error_index t = t.first_error
let nodes_allocated t = Pool.allocated t.pool
let nodes_max_alive t = Pool.max_alive t.pool
let nodes_live t = Pool.live_count t.pool

let backend ?(config = default_config) () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = analysis_name config
    let create names = create ~config names
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
