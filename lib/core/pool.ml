open Velodrome_trace
open Velodrome_util

type node = {
  slot : int;
  mutable next_ts : int;
  mutable collected_upto : int;
  mutable live : bool;
  mutable active : bool;
  mutable refcount : int;
  out : edge Vec.t;  (** out-edges; the destination slot lives in the edge *)
  ancestors : Bitset.t;  (** live slots with a path here *)
  descendants : Bitset.t;
      (** live slots this node has a path to — the mirror of [ancestors],
          so collecting a node clears its ancestor bit-column by visiting
          exactly the nodes that carry it *)
  mutable d_tid : int;
  mutable d_label : int;
  mutable d_event : int;
}

and edge = {
  dst_slot : int;
  mutable tail_ts : int;
  mutable head_ts : int;
  mutable diag_op : Op.t option;
  mutable diag_index : int;
}

type cycle = {
  path : (node * edge * node) list;
  closing_tail_ts : int;
  closing_head_ts : int;
}

type t = {
  slots : node Vec.t;  (** every slot record ever created; index = slot *)
  free : int Vec.t;  (** recycled slots; a [Vec] so push/pop never cons *)
  mutable live_count : int;
  counter : Stats.counter;
  mutable clear_work : int;
      (** cumulative nodes visited while clearing ancestor bit-columns in
          [collect]; instrumentation for the free-cost regression test *)
  visited : Bitset.t;  (** scratch for [find_path] *)
}

let create () =
  {
    slots = Vec.create ();
    free = Vec.create ();
    live_count = 0;
    counter = Stats.counter ();
    clear_work = 0;
    visited = Bitset.create ();
  }

let slot n = n.slot
let is_live n = n.live
let is_active n = n.active
let diag_tid n = n.d_tid
let diag_label n = n.d_label
let diag_event n = n.d_event

let alloc t ~tid ~label ~event =
  let n =
    let nfree = Vec.length t.free in
    if nfree > 0 then begin
      let s = Vec.unsafe_get t.free (nfree - 1) in
      Vec.drop_last t.free;
      let n = Vec.unsafe_get t.slots s in
      n.live <- true;
      n.active <- false;
      n.refcount <- 0;
      n
    end
    else begin
      let s = Vec.length t.slots in
      if s >= Step.max_slots then
        failwith "Pool.alloc: live node count exceeds slot space";
      let n =
        {
          slot = s;
          next_ts = 1;
          collected_upto = 0;
          live = true;
          active = false;
          refcount = 0;
          out = Vec.create ();
          ancestors = Bitset.create ~capacity:64 ();
          descendants = Bitset.create ~capacity:64 ();
          d_tid = -1;
          d_label = -1;
          d_event = -1;
        }
      in
      Vec.push t.slots n;
      n
    end
  in
  n.d_tid <- tid;
  n.d_label <- label;
  n.d_event <- event;
  t.live_count <- t.live_count + 1;
  Stats.incr t.counter;
  n

let fresh_ts n =
  let ts = n.next_ts in
  n.next_ts <- ts + 1;
  ts

let step_of n ~ts = Step.make_unchecked ~slot:n.slot ~ts

let step_live t s =
  (not (Step.is_bottom s))
  &&
  let sl = Step.slot_unchecked s in
  sl < Vec.length t.slots
  &&
  let n = Vec.unsafe_get t.slots sl in
  n.live && Step.ts_unchecked s > n.collected_upto

let node_of_step t s = Vec.unsafe_get t.slots (Step.slot_unchecked s)

let resolve t s = if step_live t s then Some (node_of_step t s) else None

(* Clear bit [slot] from the ancestor set of every node named by the bit
   pattern [x] (bit i of the pattern = slot [base + i]). Tail-recursive so
   the hot path allocates nothing. *)
let rec clear_column t ~slot x base =
  if x <> 0 then begin
    if x land 1 <> 0 then begin
      t.clear_work <- t.clear_work + 1;
      Bitset.clear_bit (Vec.unsafe_get t.slots base).ancestors slot
    end;
    if x land 0xff = 0 then clear_column t ~slot (x lsr 8) (base + 8)
    else clear_column t ~slot (x lsr 1) (base + 1)
  end

let rec collect t n =
  n.live <- false;
  n.collected_upto <- n.next_ts - 1;
  t.live_count <- t.live_count - 1;
  Stats.decr t.counter;
  (* Keep the ancestor-set invariant: sets only mention live slots. A node
     with no incoming edges has an empty ancestor set, and every node it
     reaches is exactly its descendant set — so the sweep visits only
     nodes that actually carry this slot's bit, never the whole live
     set. *)
  let dwords = Bitset.words n.descendants in
  for w = 0 to Array.length dwords - 1 do
    clear_column t ~slot:n.slot dwords.(w) (w * Bitset.bits_per_word)
  done;
  Bitset.reset n.descendants;
  Bitset.reset n.ancestors;
  Vec.push t.free n.slot;
  (* This node can never again be the target of an edge, so its outgoing
     edges cannot participate in any future cycle; drop them, releasing
     references and possibly cascading. *)
  for i = 0 to Vec.length n.out - 1 do
    let e = Vec.unsafe_get n.out i in
    let dst = Vec.unsafe_get t.slots e.dst_slot in
    if dst.live then begin
      dst.refcount <- dst.refcount - 1;
      maybe_collect t dst
    end
  done;
  Vec.clear n.out

and maybe_collect t n =
  if n.live && (not n.active) && n.refcount = 0 then collect t n

let set_active t n b =
  n.active <- b;
  if not b then maybe_collect t n

let sweep = maybe_collect

let happens_before_or_eq _t a b =
  a.slot = b.slot || Bitset.mem b.ancestors a.slot

let find_path t ~src:from_node ~dst:to_node =
  (* DFS over live out-edges from [from_node] to [to_node]. *)
  Bitset.reset t.visited;
  let rec go n =
    if Bitset.mem t.visited n.slot then None
    else begin
      Bitset.set t.visited n.slot;
      let result = ref None in
      (try
         for i = 0 to Vec.length n.out - 1 do
           let e = Vec.unsafe_get n.out i in
           let dst = Vec.unsafe_get t.slots e.dst_slot in
           if dst.live then
             if dst.slot = to_node.slot then begin
               result := Some [ (n, e, dst) ];
               raise Exit
             end
             else begin
               match go dst with
               | Some rest ->
                 result := Some ((n, e, dst) :: rest);
                 raise Exit
               | None -> ()
             end
         done
       with Exit -> ());
      !result
    end
  in
  go from_node

(* Set bit [m_slot] in the descendant set of every node named by the bit
   pattern [x]: the fresh ancestors [m] just gained. *)
let rec mirror_descendants t ~m_slot x base =
  if x <> 0 then begin
    if x land 1 <> 0 then
      Bitset.set (Vec.unsafe_get t.slots base).descendants m_slot;
    if x land 0xff = 0 then mirror_descendants t ~m_slot (x lsr 8) (base + 8)
    else mirror_descendants t ~m_slot (x lsr 1) (base + 1)
  end

(* [dst <- dst ∪ src] word-wise, mirroring every newly added ancestor bit
   into that ancestor's descendant set; returns whether [dst] changed.
   Hand-rolled rather than [Bitset.union_into_on_new] to keep the event
   fast path free of closure allocation. *)
let union_ancestors t ~src ~(m : node) =
  let sw = Bitset.words src in
  (* Size from the highest non-zero word, never from raw capacity: sizing
     one set from another's capacity lets capacities ratchet under
     repeated unions (each growth may double), and the word loop would
     then scan ever-larger tails of zeros. *)
  let top = Bitset.top_word src in
  if top >= 0 then
    Bitset.ensure_bits m.ancestors (((top + 1) * Bitset.bits_per_word) - 1);
  let dw = Bitset.words m.ancestors in
  let changed = ref false in
  for w = 0 to top do
    let s = sw.(w) in
    if s <> 0 then begin
      let d = dw.(w) in
      let fresh = s land lnot d in
      if fresh <> 0 then begin
        changed := true;
        dw.(w) <- d lor s;
        mirror_descendants t ~m_slot:m.slot fresh (w * Bitset.bits_per_word)
      end
    end
  done;
  !changed

(* Close the ancestor sets under a new edge src -> dst: push
   {src} ∪ ancestors(src) into dst and, transitively, into everything dst
   reaches, stopping as soon as a set stops changing. *)
let rec push_closure t (src : node) (m : node) =
  let changed =
    if Bitset.add m.ancestors src.slot then begin
      Bitset.set src.descendants m.slot;
      true
    end
    else false
  in
  let changed = union_ancestors t ~src:src.ancestors ~m || changed in
  if changed then
    for i = 0 to Vec.length m.out - 1 do
      let d = Vec.unsafe_get t.slots (Vec.unsafe_get m.out i).dst_slot in
      if d.live then push_closure t src d
    done

let find_out_index (n : node) dst_slot =
  let len = Vec.length n.out in
  let rec go i =
    if i >= len then -1
    else if (Vec.unsafe_get n.out i).dst_slot = dst_slot then i
    else go (i + 1)
  in
  go 0

let add_edge_diag t ~src ~src_ts ~dst ~dst_ts ~diag_op ~diag_index =
  if src.slot = dst.slot then `Self
  else if Bitset.mem src.ancestors dst.slot then begin
    (* [dst ⇒* src] already holds; the new edge would close a cycle. *)
    match find_path t ~src:dst ~dst:src with
    | Some path ->
      `Cycle { path; closing_tail_ts = src_ts; closing_head_ts = dst_ts }
    | None ->
      (* The ancestor invariant guarantees a live path exists. *)
      assert false
  end
  else begin
    let i = find_out_index src dst.slot in
    if i >= 0 then begin
      (* ⊕ keeps one edge per node pair: replace the timestamps. *)
      let e = Vec.unsafe_get src.out i in
      e.tail_ts <- src_ts;
      e.head_ts <- dst_ts;
      match diag_op with
      | Some _ ->
        e.diag_op <- diag_op;
        e.diag_index <- diag_index
      | None -> ()
    end
    else begin
      Vec.push src.out
        {
          dst_slot = dst.slot;
          tail_ts = src_ts;
          head_ts = dst_ts;
          diag_op;
          diag_index;
        };
      dst.refcount <- dst.refcount + 1
    end;
    push_closure t src dst;
    `Ok
  end

let add_edge t ~src ~src_ts ~dst ~dst_ts ?diag () =
  let diag_op = Option.map fst diag in
  let diag_index = match diag with Some (_, i) -> i | None -> -1 in
  add_edge_diag t ~src ~src_ts ~dst ~dst_ts ~diag_op ~diag_index

let add_edge_op t ~src ~src_ts ~dst ~dst_ts ~op ~index =
  add_edge_diag t ~src ~src_ts ~dst ~dst_ts ~diag_op:(Some op)
    ~diag_index:index

let live_count t = t.live_count
let allocated t = Stats.total_increments t.counter
let max_alive t = Stats.high_water t.counter
let clear_work t = t.clear_work

let check_no_live t =
  let k = live_count t in
  if k = 0 then Ok () else Error k

(* --- Introspection for tests ---------------------------------------------- *)

let live_slots t =
  let acc = ref [] in
  Vec.iter (fun n -> if n.live then acc := n.slot :: !acc) t.slots;
  List.rev !acc

let node_of_slot t s =
  if s < Vec.length t.slots then begin
    let n = Vec.get t.slots s in
    if n.live then Some n else None
  end
  else None

let out_slots n = List.map (fun (e : edge) -> e.dst_slot) (Vec.to_list n.out)

let ancestor_slots n = Bitset.to_list n.ancestors
let descendant_slots n = Bitset.to_list n.descendants
