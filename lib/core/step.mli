(** Packed steps.

    A step is a pair of a transaction node and a timestamp within that
    node ([Step = Node × Nat], Figure 4). The prototype section of the
    paper describes the representation reproduced here: each step is a
    single machine integer whose top bits identify a node {e slot} and
    whose lower bits are the timestamp. Slots are recycled when nodes are
    garbage collected; timestamps within a slot never restart, so a stale
    step — one minted before its slot was last collected — is recognized by
    comparing its timestamp against the slot's collection watermark (see
    {!Pool.resolve}).

    OCaml ints give us 62 usable bits: 15 for the slot (32768 concurrent
    live nodes, far beyond the "few dozen" the paper observes) and 47 for
    timestamps. [bottom] represents ⊥. *)

type t = private int

val bottom : t
val is_bottom : t -> bool

val make : slot:int -> ts:int -> t
(** Raises [Invalid_argument] when out of range. *)

val slot : t -> int
(** Raises [Invalid_argument] on [bottom]. *)

val ts : t -> int
(** Raises [Invalid_argument] on [bottom]. *)

val slot_unchecked : t -> int
val ts_unchecked : t -> int
(** Bit extraction with no bottom check, for the engine hot path; the
    caller must have established the step is not ⊥. *)

val make_unchecked : slot:int -> ts:int -> t
(** {!make} without the range checks, for the pool's per-event step
    minting; the pool guarantees [slot < max_slots] at allocation and
    timestamps are far below [max_ts] for any physical trace. *)

val max_slots : int
val max_ts : int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
