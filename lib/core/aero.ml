open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

(* A transaction is an epoch (tid, ord) plus the clock of everything it
   happens-after. The clock is mutable and shared by reference from the
   last-writer / last-reader / last-releaser tables, so a reader always
   joins the source transaction's *current* ancestor set.

   The invariant that makes the O(1) membership test below equivalent to
   Basic's graph reachability: every clock the checker can still read
   (an active transaction, or one referenced from a table) is *exactly*
   its transaction's transitive ancestor-epoch set. Keeping it exact
   when a transaction gains an ancestor after others have already
   observed it is the broadcast in [edge] — see the comment there. *)
type txn = {
  tid : int;
  ord : int;  (** this thread's transaction ordinal, from 1 *)
  label : int;  (** label id, -1 for unary transactions *)
  clock : Vclock.t;
  mutable shared : bool;
      (** whether this transaction's epoch may appear in another clock:
          set the first time it is the source of a join. Epochs spread
          only through joins whose source clock carries them, so an
          unshared transaction has no observers and gaining an ancestor
          needs no broadcast — the common case for program-order edges
          and for transactions nobody reads from. *)
}

type t = {
  names : Names.t;
  mutable txns : int;
  cur : (int, txn) Hashtbl.t;  (** tid -> active transaction *)
  depth : (int, int) Hashtbl.t;  (** tid -> open block nesting *)
  last : (int, txn) Hashtbl.t;  (** tid -> last finished transaction *)
  ords : (int, int) Hashtbl.t;  (** tid -> transactions begun so far *)
  rel : (int, txn) Hashtbl.t;  (** lock -> last releasing transaction *)
  rd : (int, (int, txn) Hashtbl.t) Hashtbl.t;
      (** var -> tid -> last reader *)
  wr : (int, txn) Hashtbl.t;  (** var -> last writer *)
  mutable cycles : int;
  mutable first_error : int option;
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;  (** label ids already reported *)
}

let create names =
  {
    names;
    txns = 0;
    cur = Hashtbl.create 8;
    depth = Hashtbl.create 8;
    last = Hashtbl.create 8;
    ords = Hashtbl.create 8;
    rel = Hashtbl.create 8;
    rd = Hashtbl.create 64;
    wr = Hashtbl.create 64;
    cycles = 0;
    first_error = None;
    warnings_rev = [];
    reported = Hashtbl.create 8;
  }

let report t (e : Event.t) (dst : txn) =
  t.cycles <- t.cycles + 1;
  if t.first_error = None then t.first_error <- Some e.Event.index;
  if not (Hashtbl.mem t.reported dst.label) then begin
    Hashtbl.replace t.reported dst.label ();
    let label = if dst.label >= 0 then Some (Label.of_int dst.label) else None in
    let message =
      Printf.sprintf "happens-before cycle involving transaction of %s"
        (match label with
        | Some l -> Names.label_name t.names l
        | None -> "a unary transaction")
    in
    t.warnings_rev <-
      Warning.make ~analysis:"aero" ~kind:Warning.Atomicity_violation
        ~tid:(Op.tid e.Event.op) ?label ~index:e.Event.index message
      :: t.warnings_rev
  end

(* Join [c] into every live clock that already carries [dst]'s epoch.

   When [dst] (always the acting thread's current transaction) gains new
   ancestors, every transaction that transitively observed [dst] must
   gain them too. Walking a dependency graph forward is quadratic on
   dense traces; instead, exploit the invariant itself: a transaction
   depends on [dst] iff its clock holds [dst]'s epoch, so its
   *transitive* observers are found directly by one membership test per
   live clock — no graph, no recursion. One level suffices because every
   observer of an observer already carries [dst]'s epoch (it was either
   joined from a clock that had it, or covered by the broadcast that
   installed it). Clocks of dead transactions (finished and dropped from
   every table) go stale, but nothing can read them again: tables are
   only ever overwritten with the acting thread's current transaction. *)
let broadcast t (dst : txn) c =
  let touch (u : txn) =
    if
      u != dst
      && Vclock.get u.clock dst.tid >= dst.ord
      && not (Vclock.leq c u.clock)
    then Vclock.join u.clock c
  in
  Hashtbl.iter (fun _ u -> touch u) t.cur;
  Hashtbl.iter (fun _ u -> touch u) t.last;
  Hashtbl.iter (fun _ u -> touch u) t.rel;
  Hashtbl.iter
    (fun _ readers -> Hashtbl.iter (fun _ u -> touch u) readers)
    t.rd;
  Hashtbl.iter (fun _ u -> touch u) t.wr

(* The happens-before edge [src -> dst], i.e. Basic's [add_edge]. A
   cycle closes exactly when [dst] is already an ancestor of [src] —
   with exact clocks, a single component test. On violation the join is
   dropped, keeping clocks cycle-free (Basic drops the same edge, so the
   two stay in lockstep after a violation too). The broadcast cannot
   silently close a cycle: if [src]'s ancestors included any descendant
   of [dst], transitivity would put [dst] itself among them and the
   membership test would have fired first. *)
let edge t (e : Event.t) (src : txn) (dst : txn) =
  if src != dst then begin
    if Vclock.get src.clock dst.tid >= dst.ord then report t e dst
    else if not (Vclock.leq src.clock dst.clock) then begin
      src.shared <- true;
      Vclock.join dst.clock src.clock;
      if dst.shared then broadcast t dst src.clock
    end
  end

let tid_of e = Tid.to_int (Op.tid e.Event.op)

let enter t (e : Event.t) label =
  let ti = tid_of e in
  let ord = Option.value ~default:0 (Hashtbl.find_opt t.ords ti) + 1 in
  Hashtbl.replace t.ords ti ord;
  t.txns <- t.txns + 1;
  let clock = Vclock.create () in
  Vclock.set clock ti ord;
  let tx = { tid = ti; ord; label; clock; shared = false } in
  (match Hashtbl.find_opt t.last ti with
  | Some prev -> edge t e prev tx
  | None -> ());
  Hashtbl.replace t.cur ti tx;
  tx

let exit t (e : Event.t) =
  let ti = tid_of e in
  match Hashtbl.find_opt t.cur ti with
  | Some tx ->
    Hashtbl.remove t.cur ti;
    Hashtbl.replace t.last ti tx
  | None -> ()

let do_acquire t (e : Event.t) tx m =
  match Hashtbl.find_opt t.rel (Lock.to_int m) with
  | Some last -> edge t e last tx
  | None -> ()

let do_release t tx m = Hashtbl.replace t.rel (Lock.to_int m) tx

let do_read t (e : Event.t) tx x =
  let xi = Var.to_int x in
  (match Hashtbl.find_opt t.wr xi with
  | Some last -> edge t e last tx
  | None -> ());
  let readers =
    match Hashtbl.find_opt t.rd xi with
    | Some readers -> readers
    | None ->
      let readers = Hashtbl.create 8 in
      Hashtbl.replace t.rd xi readers;
      readers
  in
  Hashtbl.replace readers tx.tid tx

let do_write t (e : Event.t) tx x =
  let xi = Var.to_int x in
  (match Hashtbl.find_opt t.rd xi with
  | Some readers -> Hashtbl.iter (fun _ reader -> edge t e reader tx) readers
  | None -> ());
  (match Hashtbl.find_opt t.wr xi with
  | Some last -> edge t e last tx
  | None -> ());
  Hashtbl.replace t.wr xi tx

let on_event t (e : Event.t) =
  let ti = tid_of e in
  let dep = Option.value ~default:0 (Hashtbl.find_opt t.depth ti) in
  match e.Event.op with
  | Op.Begin (_, l) ->
    Hashtbl.replace t.depth ti (dep + 1);
    if dep = 0 then ignore (enter t e (Label.to_int l))
  | Op.End _ ->
    if dep > 0 then begin
      Hashtbl.replace t.depth ti (dep - 1);
      if dep = 1 then exit t e
    end
  | Op.Acquire (_, m) -> (
    match Hashtbl.find_opt t.cur ti with
    | Some tx -> do_acquire t e tx m
    | None ->
      (* [INS OUTSIDE]: fresh unary transaction around the operation. *)
      let tx = enter t e (-1) in
      do_acquire t e tx m;
      exit t e)
  | Op.Release (_, m) -> (
    match Hashtbl.find_opt t.cur ti with
    | Some tx -> do_release t tx m
    | None ->
      let tx = enter t e (-1) in
      do_release t tx m;
      exit t e)
  | Op.Read (_, x) -> (
    match Hashtbl.find_opt t.cur ti with
    | Some tx -> do_read t e tx x
    | None ->
      let tx = enter t e (-1) in
      do_read t e tx x;
      exit t e)
  | Op.Write (_, x) -> (
    match Hashtbl.find_opt t.cur ti with
    | Some tx -> do_write t e tx x
    | None ->
      let tx = enter t e (-1) in
      do_write t e tx x;
      exit t e)

let finish _ = ()
let warnings t = List.rev t.warnings_rev
let has_error t = t.cycles > 0
let cycles_found t = t.cycles
let first_error_index t = t.first_error
let transactions t = t.txns

let backend () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = "aero"
    let create = create
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
