(** AeroDrome: vector-clock atomicity checking (arXiv 2001.04961).

    Same sound-and-complete check as {!Engine} and {!Basic} — a warning
    exactly when the transactional happens-before graph acquires a
    cycle — but with no graph at all. Each transaction carries a vector
    clock of the transaction ordinals it happens-after; conflicting
    operations join clocks instead of adding edges, and a cycle
    manifests as a transaction observing its own ordinal come back
    through a joined clock ([c(t) ≥ n_t]). The offending join is
    dropped, mirroring {!Basic} dropping the cycle-closing edge, so the
    two engines agree on the verdict, the first violating event index
    and the warning set — the differential harness in
    [test/test_backends.ml] holds all three engines to that.

    Because a transaction's happens-before ancestors can still grow
    after other transactions have observed its clock (a predecessor
    arriving at a transaction that already has successors), clocks are
    shared by reference and every edge records a forward dependency;
    late-arriving ancestors are pushed along recorded dependencies with
    a subsumption cutoff, keeping every clock equal to the
    transaction's exact current ancestor set. *)

type t

val create : Velodrome_trace.Names.t -> t
val on_event : t -> Velodrome_trace.Event.t -> unit
val finish : t -> unit
val warnings : t -> Velodrome_analysis.Warning.t list
val has_error : t -> bool

val cycles_found : t -> int
(** Dropped joins — one per happens-before edge that would have closed a
    cycle, matching {!Basic.cycles_found}. *)

val first_error_index : t -> int option
val transactions : t -> int

val backend : unit -> (module Velodrome_analysis.Backend.S)
(** Registry name ["aero"]. *)
