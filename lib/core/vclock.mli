(** Growable integer vector clocks for the AeroDrome engine.

    A clock maps dense thread ids to transaction ordinals: [c(t) = k]
    means the clock has observed thread [t] up to its [k]-th
    transaction. Storage grows on demand past the initial capacity;
    absent entries read as 0, matching the ⊥-initialized clocks of the
    literature.

    The clocks form a join-semilattice under the pointwise order:
    {!join} is commutative, associative and idempotent, {!incr} is
    strictly monotone, and {!compare} agrees with the pointwise order
    ({!leq} both ways). These laws are property-tested in
    [test/test_backends.ml]. *)

type t

val create : ?capacity:int -> unit -> t
(** Fresh all-zero clock. [capacity] pre-sizes the backing array; the
    clock still grows past it on demand. *)

val get : t -> int -> int
val set : t -> int -> int -> unit

val incr : t -> int -> unit
(** [incr c t] bumps component [t] by one. *)

val join : t -> t -> unit
(** [join dst src] updates [dst] in place to the pointwise maximum. *)

val copy : t -> t
val equal : t -> t -> bool

val leq : t -> t -> bool
(** Pointwise ≤ — the happens-before order on clocks. *)

(** The four possible relations of two clocks under the pointwise
    partial order. *)
type order = Equal | Less | Greater | Incomparable

val compare : t -> t -> order
(** One-pass classification; agrees with {!leq} in both directions. *)

val pp : Format.formatter -> t -> unit
