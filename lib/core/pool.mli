(** Transaction nodes and the happens-before graph (Sections 4.1–4.2, 5).

    The pool owns every node of the transactional happens-before graph and
    implements the three mechanisms the paper's prototype relies on:

    - {b Acyclicity via ancestor sets.} Each live node carries the set of
      live nodes with a path to it. Attempting to add an edge whose
      reversal is already implied is reported as a cycle {e without adding
      the edge}, so the graph stays acyclic at all times.
    - {b Reference-counting garbage collection.} Incoming edges to a node
      are only ever added by the thread executing that transaction, so a
      finished node with no incoming edges can never lie on a cycle and is
      collected immediately, cascading along its outgoing edges.
    - {b Slot recycling with stale-step detection.} Collected slots are
      reused; timestamps within a slot never restart, and each slot
      remembers the last timestamp in use when it was collected, so a step
      minted for an earlier incarnation resolves to ⊥ ({!resolve}).

    {b Representation.} Ancestor sets are {!Velodrome_util.Bitset}s
    indexed by slot, so membership is a word test and transitive-closure
    updates are word-parallel ORs. Each node also keeps the mirror
    descendant set; collecting a node clears its slot's bit-column by
    visiting exactly the nodes that carry it, never the whole live set.

    Edges carry the timestamps of the operations at their tail and head —
    the raw material for blame assignment — plus optional diagnostic
    operations for error graphs. At most one edge is kept per ordered node
    pair; re-adding replaces the timestamps (the paper's [⊕] on steps). *)

open Velodrome_trace

type t
type node

type edge = {
  dst_slot : int;  (** slot of the edge's destination node *)
  mutable tail_ts : int;
  mutable head_ts : int;
  mutable diag_op : Op.t option;  (** operation that induced the edge *)
  mutable diag_index : int;  (** event index of that operation *)
}

type cycle = {
  path : (node * edge * node) list;
      (** consecutive live edges forming the path [dst ⇒* src] *)
  closing_tail_ts : int;
  closing_head_ts : int;  (** the rejected edge [src -> dst] *)
}

val create : unit -> t

val alloc : t -> tid:int -> label:int -> event:int -> node
(** A fresh (or recycled) live, inactive node with no edges. [label] is
    [-1] for unary/merged transactions; [tid]/[event] are diagnostic. *)

val set_active : t -> node -> bool -> unit
(** Mark the node as some thread's current transaction. Deactivating may
    collect the node immediately. *)

val sweep : t -> node -> unit
(** Collect the node now if it is inactive with no incoming edges. Engines
    call this after building a node that may have received no edges (e.g.
    a unary transaction whose predecessors were all ⊥). *)

val fresh_ts : node -> int
(** Next timestamp in this node; strictly increasing for the lifetime of
    the slot. *)

val step_of : node -> ts:int -> Step.t

val resolve : t -> Step.t -> node option
(** [None] for ⊥ and for stale steps (slot collected since the step was
    minted, even if since recycled). *)

val step_live : t -> Step.t -> bool
(** Whether {!resolve} would return a node — without allocating the
    option. The engine fast path pairs this with {!node_of_step}. *)

val node_of_step : t -> Step.t -> node
(** The node a step belongs to. Only meaningful after {!step_live}
    returned [true] with no pool mutation in between. *)

val slot : node -> int

val is_live : node -> bool

val is_active : node -> bool
(** Whether the node is currently some thread's open transaction. Merge
    must never pick an active node as representative: the unary operation
    would be absorbed into a transaction that can still perform
    conflicting operations, turning future cycle edges into self-edges
    and losing completeness. *)

val diag_tid : node -> int
val diag_label : node -> int
val diag_event : node -> int

val happens_before_or_eq : t -> node -> node -> bool
(** Non-strict: equal nodes, or a path exists. Used by [merge]. *)

val add_edge :
  t ->
  src:node ->
  src_ts:int ->
  dst:node ->
  dst_ts:int ->
  ?diag:Op.t * int ->
  unit ->
  [ `Ok | `Self | `Cycle of cycle ]
(** Add [src -> dst]. [`Self] when the nodes coincide (filtered, like the
    paper's ⊕). [`Cycle] when the edge would close a cycle; the edge is
    not added and the offending path is returned. *)

val add_edge_op :
  t ->
  src:node ->
  src_ts:int ->
  dst:node ->
  dst_ts:int ->
  op:Op.t ->
  index:int ->
  [ `Ok | `Self | `Cycle of cycle ]
(** {!add_edge} with mandatory diagnostics and no optional-argument
    boxing; the engine's per-event call. *)

val live_count : t -> int
val allocated : t -> int
val max_alive : t -> int

val clear_work : t -> int
(** Cumulative count of nodes visited while clearing ancestor bit-columns
    during collection. Freeing a node must cost O(its descendants), not
    O(live nodes); the regression test pins this down. *)

val check_no_live : t -> (unit, int) result
(** [Ok ()] if every node has been collected; [Error k] with the number of
    survivors otherwise. Used by tests: after a trace whose transactions
    all finish cycle-free, the GC must have emptied the graph. *)

(** {2 Introspection for tests}

    Structural views of the live graph, for differential checks of the
    bitset-ancestor representation against reference graph algorithms. *)

val live_slots : t -> int list
(** Slots of live nodes, ascending. *)

val node_of_slot : t -> int -> node option
(** The live node at a slot, if any. *)

val out_slots : node -> int list
(** Destination slots of the node's out-edges, in insertion order. *)

val ancestor_slots : node -> int list
(** The ancestor set as a sorted slot list. *)

val descendant_slots : node -> int list
(** The descendant set as a sorted slot list. *)
