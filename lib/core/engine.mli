(** The Velodrome analysis — optimized semantics with blame assignment
    (Figure 4).

    The engine consumes the event stream and maintains the instrumentation
    state [(C, L, U, R, W, H)] over packed {!Step}s:

    - [C]: per thread, the stack of open atomic blocks [(label, begin
      timestamp)] plus the current transaction node — only the outermost
      [Begin] allocates a node;
    - [L]: per thread, the step of its last operation;
    - [U]: per lock, the step of the last release;
    - [R]: per variable and thread, the step of the last read;
    - [W]: per variable, the step of the last write;
    - [H]: the happens-before graph, owned by {!Pool}.

    An error is reported exactly when an edge would close a cycle — i.e.
    exactly when the observed prefix stops being conflict-serializable
    (Theorem 1). The offending edge is {e not} added, so the graph stays
    acyclic and reference counting keeps collecting garbage nodes; the
    analysis continues and can report further violations.

    {b Blame.} Edges carry head/tail timestamps. A detected cycle is
    {e increasing} when every node other than the current one has its
    incoming timestamp ≤ its outgoing timestamp; then the current
    transaction provably interleaves with conflicting operations and is
    not self-serializable, and every atomic block on the current stack
    containing both the root and target operations is refuted
    (Section 4.3). The warning carries the outermost refuted label.

    {b Merge.} With [config.merge] on (the default), operations outside
    any atomic block go through the [merge] function of Figure 4, which
    avoids allocating nodes for unary transactions whenever a
    representative predecessor exists. With it off, each such operation is
    wrapped in a fresh unary transaction — the naive [INS OUTSIDE] rule of
    Figure 2 — which is what the "Without Merge" columns of Table 1
    measure. Verdicts are identical either way; only allocation counts and
    speed differ. *)

open Velodrome_trace
open Velodrome_analysis

type config = {
  merge : bool;  (** Figure 4 outside rules (default) vs naive wrapping *)
  record_graphs : bool;  (** attach dot error graphs to warnings *)
}

val default_config : config

type t

val create : ?config:config -> Names.t -> t
val on_event : t -> Event.t -> unit
val finish : t -> unit

val warnings : t -> Warning.t list
(** Deduplicated: one warning per blamed label, and one per distinct
    unblamed cycle signature. *)

val has_error : t -> bool
(** Whether any cycle was detected — true iff the consumed trace is not
    conflict-serializable. *)

val cycles_found : t -> int
(** Total cycles detected, including ones deduplicated away. *)

val first_error_index : t -> int option
(** Event index of the first detected cycle. A correct engine detects the
    violation at exactly the event that makes the prefix non-serializable,
    so this is directly comparable across engine variants. *)

val blamed_count : t -> int
(** Cycles for which blame was pinned on a specific transaction. *)

val nodes_allocated : t -> int
val nodes_max_alive : t -> int
val nodes_live : t -> int

val debug_pool : t -> Pool.t
(** The engine's happens-before graph, for differential tests that check
    the pool's bitset ancestor sets against reference graph reachability.
    Not part of the analysis API. *)

val backend : ?config:config -> unit -> (module Backend.S)
(** Package as a RoadRunner-style back-end named ["velodrome"] (or
    ["velodrome-nomerge"]). *)
