type t = { mutable data : int array }

let create ?(capacity = 0) () = { data = Array.make capacity 0 }

let ensure t n =
  let cap = Array.length t.data in
  if n >= cap then begin
    let ncap = max (n + 1) (max 4 (2 * cap)) in
    let data = Array.make ncap 0 in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end

let get t i = if i < Array.length t.data then t.data.(i) else 0

let set t i v =
  ensure t i;
  t.data.(i) <- v

let incr t i = set t i (get t i + 1)

(* Join up to [src]'s logical width (its last nonzero entry), not its
   physical capacity: [ensure]'s doubling overshoots, so sizing [dst] to
   [src]'s capacity lets two clocks of mismatched capacity ratchet each
   other's arrays up exponentially across repeated joins. *)
let join dst src =
  let top = ref (Array.length src.data - 1) in
  while !top >= 0 && src.data.(!top) = 0 do
    decr top
  done;
  ensure dst !top;
  for i = 0 to !top do
    if src.data.(i) > dst.data.(i) then dst.data.(i) <- src.data.(i)
  done

let copy t = { data = Array.copy t.data }

let width a b = max (Array.length a.data) (Array.length b.data)

let leq a b =
  let rec go i = i < 0 || (get a i <= get b i && go (i - 1)) in
  go (width a b - 1)

let equal a b =
  let rec go i = i < 0 || (get a i = get b i && go (i - 1)) in
  go (width a b - 1)

type order = Equal | Less | Greater | Incomparable

let compare a b =
  let n = width a b in
  let rec go i le ge =
    if (not le) && not ge then Incomparable
    else if i >= n then
      match (le, ge) with
      | true, true -> Equal
      | true, false -> Less
      | false, true -> Greater
      | false, false -> Incomparable
    else
      let x = get a i and y = get b i in
      go (i + 1) (le && x <= y) (ge && x >= y)
  in
  go 0 true true

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.data)))
