type t = int

let ts_bits = 47
let max_slots = 1 lsl 15
let max_ts = 1 lsl ts_bits

let bottom = -1
let is_bottom s = s < 0

let make ~slot ~ts =
  if slot < 0 || slot >= max_slots then invalid_arg "Step.make: slot range";
  if ts < 0 || ts >= max_ts then invalid_arg "Step.make: ts range";
  (slot lsl ts_bits) lor ts

let slot s =
  if is_bottom s then invalid_arg "Step.slot: bottom";
  s lsr ts_bits

let ts s =
  if is_bottom s then invalid_arg "Step.ts: bottom";
  s land (max_ts - 1)

let slot_unchecked s = s lsr ts_bits
let ts_unchecked s = s land (max_ts - 1)
let make_unchecked ~slot ~ts = (slot lsl ts_bits) lor ts

let equal = Int.equal

let pp ppf s =
  if is_bottom s then Format.fprintf ppf "⊥"
  else Format.fprintf ppf "(%d,%d)" (slot s) (ts s)
