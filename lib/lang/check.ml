open Velodrome_sim
open Velodrome_trace.Ids

type error = { thread : int; path : int list; message : string }

let pp_path ppf = function
  | [] -> Format.pp_print_string ppf "end of thread"
  | path ->
    Format.fprintf ppf "stmt %s"
      (String.concat "." (List.map string_of_int path))

let pp_error ppf e =
  Format.fprintf ppf "thread %d, %a: %s" e.thread pp_path e.path e.message

module LockMap = Map.Make (Int)

(* The lock effect of a statement list: the multiset of acquire/release
   depth changes, or an error message. Depths may not go negative at any
   point. Every violation is accumulated — with the statement path that
   triggered it — rather than stopping at the first, so front-ends can
   show a complete diagnostic list. Paths use the same coordinates as the
   statics CFG: the j-th statement of a block at path π is π·j, and an
   [if]'s branches open sub-contexts π·j·0 / π·j·1. *)
let rec effect held errs thread path j = function
  | [] -> held
  | s :: rest ->
    let here = path @ [ j ] in
    let held =
      match s with
      | Ast.Acquire m ->
        let k = Lock.to_int m in
        LockMap.update k
          (fun d -> Some (Option.value ~default:0 d + 1))
          held
      | Ast.Release m ->
        let k = Lock.to_int m in
        let d = Option.value ~default:0 (LockMap.find_opt k held) in
        if d <= 0 then begin
          errs :=
            {
              thread;
              path = here;
              message =
                Printf.sprintf "release of lock %d without matching acquire" k;
            }
            :: !errs;
          held
        end
        else if d = 1 then LockMap.remove k held
        else LockMap.add k (d - 1) held
      | Ast.Atomic (_, body) -> effect held errs thread here 0 body
      | Ast.If (_, a, b) ->
        let ha = effect held errs thread (here @ [ 0 ]) 0 a in
        let hb = effect held errs thread (here @ [ 1 ]) 0 b in
        if not (LockMap.equal Int.equal ha hb) then
          errs :=
            {
              thread;
              path = here;
              message = "if branches have different lock effects";
            }
            :: !errs;
        ha
      | Ast.While (_, body) ->
        let hb = effect held errs thread here 0 body in
        if not (LockMap.equal Int.equal hb held) then
          errs :=
            { thread; path = here; message = "loop body is not lock-neutral" }
            :: !errs;
        held
      | Ast.Read _ | Ast.Write _ | Ast.Local _ | Ast.Work _ | Ast.Yield ->
        held
    in
    effect held errs thread path (j + 1) rest

let check_program (p : Ast.program) =
  let errs = ref [] in
  Array.iteri
    (fun i body ->
      let final = effect LockMap.empty errs i [] 0 body in
      if not (LockMap.is_empty final) then
        errs :=
          {
            thread = i;
            path = [];
            message = "thread finishes while holding locks";
          }
          :: !errs)
    p.Ast.threads;
  match List.rev !errs with [] -> Ok () | es -> Error es
