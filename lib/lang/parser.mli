(** Recursive-descent parser for [.vel] programs.

    Produces a {!Velodrome_sim.Ast.program}. Shared variables may appear
    directly in expressions and conditions for convenience; the parser
    desugars each occurrence into an explicit [Read] into a fresh
    register placed before the statement, and loop conditions re-read
    their variables on every iteration (so a spin loop on a volatile is
    written simply as [while (b != 1) { yield; }]).

    Identifiers: names declared with [var]/[volatile] are shared
    variables, names declared with [lock] are locks, anything else is a
    thread-local register (created on first use; registers named [_rK]
    map to register index [K], which is what the printer emits). The
    keyword [tid] is the thread-id register.

    Grammar sketch:
    {v
    program  := decl* thread+
    decl     := ("var" | "volatile") ident ("=" int)? ";" | "lock" ident ";"
    thread   := "thread" int? "{" stmt* "}"
    stmt     := ident "=" expr ";" | ident "<-" ident ";"
              | "acquire" ident ";" | "release" ident ";"
              | "sync" ident block | "atomic" string block
              | "if" "(" cond ")" block ("else" block)?
              | "while" "(" cond ")" block
              | "work" int ";" | "yield" ";" | "skip" ";"
    v} *)

exception Parse_error of string * int * int
(** message, line, column *)

val parse : string -> Velodrome_sim.Ast.program
(** Raises {!Parse_error} or {!Lexer.Lex_error}. *)

val parse_file : string -> Velodrome_sim.Ast.program

val parse_info :
  string ->
  Velodrome_sim.Ast.program
  * (Velodrome_trace.Ids.Label.t * (int * int)) list
(** Like {!parse}, additionally returning the source position
    [(line, column)] of the label string of the first [atomic "l"]
    occurrence for each distinct label, in source order. [velodrome
    analyze] uses this to anchor per-block verdicts to the input file. *)

val parse_file_info :
  string ->
  Velodrome_sim.Ast.program
  * (Velodrome_trace.Ids.Label.t * (int * int)) list

val pp_error : Format.formatter -> string * int * int -> unit
