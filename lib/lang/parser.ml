open Velodrome_sim
open Lexer

exception Parse_error of string * int * int

let pp_error ppf (msg, line, col) =
  Format.fprintf ppf "parse error at %d:%d: %s" line col msg

type pstate = {
  mutable toks : spanned list;
  builder : Builder.t;
  (* Per-thread register environment: name -> index. *)
  mutable regs : (string, int) Hashtbl.t;
  mutable next_reg : int;
  (* Source position of the first [atomic "label"] occurrence per label. *)
  mutable label_pos : (Velodrome_trace.Ids.Label.t * (int * int)) list;
}

let current p =
  match p.toks with [] -> assert false | t :: _ -> t

let fail p msg =
  let t = current p in
  raise (Parse_error (msg, t.line, t.col))

let advance p = match p.toks with [] -> () | _ :: rest -> p.toks <- rest

let eat p tok =
  let t = current p in
  if t.tok = tok then advance p
  else
    fail p
      (Format.asprintf "expected '%a' but found '%a'" pp_token tok pp_token
         t.tok)

let eat_ident p =
  match (current p).tok with
  | IDENT s ->
    advance p;
    s
  | t -> fail p (Format.asprintf "expected identifier, found '%a'" pp_token t)

let eat_int p =
  match (current p).tok with
  | INT n ->
    advance p;
    n
  | t -> fail p (Format.asprintf "expected integer, found '%a'" pp_token t)

let eat_string p =
  match (current p).tok with
  | STRING s ->
    advance p;
    s
  | t -> fail p (Format.asprintf "expected string, found '%a'" pp_token t)

(* Identifier classification. *)

type id_kind = Shared of Velodrome_trace.Ids.Var.t | Register of int

let reg_of_name p name =
  match Hashtbl.find_opt p.regs name with
  | Some r -> r
  | None ->
    (* [_rK] identifiers denote register K directly (printer output). *)
    let r =
      if String.length name > 2 && String.sub name 0 2 = "_r" then
        match int_of_string_opt (String.sub name 2 (String.length name - 2)) with
        | Some k ->
          if k >= p.next_reg then p.next_reg <- k + 1;
          k
        | None ->
          let r = p.next_reg in
          p.next_reg <- r + 1;
          r
      else begin
        let r = p.next_reg in
        p.next_reg <- r + 1;
        r
      end
    in
    Hashtbl.replace p.regs name r;
    r

let classify p name =
  match
    Velodrome_util.Symtab.find
      (Builder.names p.builder).Velodrome_trace.Names.vars name
  with
  | Some _ -> Shared (Builder.var p.builder name)
  | None -> Register (reg_of_name p name)

let fresh_temp p =
  let r = p.next_reg in
  p.next_reg <- r + 1;
  r

(* Expressions. Shared-variable occurrences are replaced by fresh
   registers; the reads loading them are accumulated in [prelude] (in
   reverse). *)

let rec parse_expr p prelude =
  let lhs = parse_term p prelude in
  parse_expr_rest p prelude lhs

and parse_expr_rest p prelude lhs =
  match (current p).tok with
  | PLUS ->
    advance p;
    let rhs = parse_term p prelude in
    parse_expr_rest p prelude (Ast.Add (lhs, rhs))
  | MINUS ->
    advance p;
    let rhs = parse_term p prelude in
    parse_expr_rest p prelude (Ast.Sub (lhs, rhs))
  | _ -> lhs

and parse_term p prelude =
  let lhs = parse_factor p prelude in
  parse_term_rest p prelude lhs

and parse_term_rest p prelude lhs =
  match (current p).tok with
  | STAR ->
    advance p;
    let rhs = parse_factor p prelude in
    parse_term_rest p prelude (Ast.Mul (lhs, rhs))
  | SLASH ->
    advance p;
    let rhs = parse_factor p prelude in
    parse_term_rest p prelude (Ast.Div (lhs, rhs))
  | PERCENT ->
    advance p;
    let rhs = parse_factor p prelude in
    parse_term_rest p prelude (Ast.Mod (lhs, rhs))
  | _ -> lhs

and parse_factor p prelude =
  match (current p).tok with
  | INT n ->
    advance p;
    Ast.Int n
  | MINUS ->
    advance p;
    let e = parse_factor p prelude in
    Ast.Sub (Ast.Int 0, e)
  | KW "tid" ->
    advance p;
    Ast.Reg Ast.tid_reg
  | LPAREN ->
    advance p;
    let e = parse_expr p prelude in
    eat p RPAREN;
    e
  | IDENT name -> (
    advance p;
    match classify p name with
    | Register r -> Ast.Reg r
    | Shared x ->
      let tmp = fresh_temp p in
      prelude := Ast.Read (tmp, x) :: !prelude;
      Ast.Reg tmp)
  | t -> fail p (Format.asprintf "expected expression, found '%a'" pp_token t)

let parse_cmp p =
  match (current p).tok with
  | EQEQ ->
    advance p;
    Ast.Eq
  | NEQ ->
    advance p;
    Ast.Ne
  | LT ->
    advance p;
    Ast.Lt
  | LE ->
    advance p;
    Ast.Le
  | GT ->
    advance p;
    Ast.Gt
  | GE ->
    advance p;
    Ast.Ge
  | t -> fail p (Format.asprintf "expected comparison, found '%a'" pp_token t)

let parse_cond p prelude =
  let lhs = parse_expr p prelude in
  let cmp = parse_cmp p in
  let rhs = parse_expr p prelude in
  { Ast.lhs; cmp; rhs }

(* Statements. *)

let rec parse_block p =
  eat p LBRACE;
  let rec go acc =
    if (current p).tok = RBRACE then begin
      advance p;
      List.rev acc
    end
    else begin
      let stmts = parse_stmt p in
      go (List.rev_append stmts acc)
    end
  in
  go []

(* Each source statement may expand to several AST statements (the
   desugared reads come first). *)
and parse_stmt p =
  match (current p).tok with
  | KW "acquire" ->
    advance p;
    let m = Builder.lock p.builder (eat_ident p) in
    eat p SEMI;
    [ Ast.Acquire m ]
  | KW "release" ->
    advance p;
    let m = Builder.lock p.builder (eat_ident p) in
    eat p SEMI;
    [ Ast.Release m ]
  | KW "sync" ->
    advance p;
    let m = Builder.lock p.builder (eat_ident p) in
    let body = parse_block p in
    (Ast.Acquire m :: body) @ [ Ast.Release m ]
  | KW "atomic" ->
    advance p;
    let pos = ((current p).line, (current p).col) in
    let l = Builder.label p.builder (eat_string p) in
    if not (List.mem_assoc l p.label_pos) then
      p.label_pos <- (l, pos) :: p.label_pos;
    let body = parse_block p in
    [ Ast.Atomic (l, body) ]
  | KW "if" ->
    advance p;
    eat p LPAREN;
    let prelude = ref [] in
    let c = parse_cond p prelude in
    eat p RPAREN;
    let then_b = parse_block p in
    let else_b =
      if (current p).tok = KW "else" then begin
        advance p;
        parse_block p
      end
      else []
    in
    List.rev !prelude @ [ Ast.If (c, then_b, else_b) ]
  | KW "while" ->
    advance p;
    eat p LPAREN;
    let prelude = ref [] in
    let c = parse_cond p prelude in
    eat p RPAREN;
    let body = parse_block p in
    let reads = List.rev !prelude in
    (* Re-evaluate the condition's shared reads at the end of every
       iteration so spin loops observe other threads' writes. *)
    reads @ [ Ast.While (c, body @ reads) ]
  | KW "work" ->
    advance p;
    let n = eat_int p in
    eat p SEMI;
    [ Ast.Work n ]
  | KW "yield" ->
    advance p;
    eat p SEMI;
    [ Ast.Yield ]
  | KW "skip" ->
    advance p;
    eat p SEMI;
    []
  | IDENT name -> (
    advance p;
    match (current p).tok with
    | LARROW ->
      (* Explicit read: reg <- sharedvar *)
      advance p;
      let src = eat_ident p in
      eat p SEMI;
      let x =
        match classify p src with
        | Shared x -> x
        | Register _ -> fail p (Printf.sprintf "'%s' is not a shared variable" src)
      in
      let r =
        match classify p name with
        | Register r -> r
        | Shared _ ->
          fail p (Printf.sprintf "'%s' is shared; use '=' to write it" name)
      in
      [ Ast.Read (r, x) ]
    | EQ -> (
      advance p;
      let prelude = ref [] in
      let e = parse_expr p prelude in
      eat p SEMI;
      let pre = List.rev !prelude in
      match classify p name with
      | Shared x -> pre @ [ Ast.Write (x, e) ]
      | Register r -> pre @ [ Ast.Local (r, e) ])
    | t ->
      fail p (Format.asprintf "expected '=' or '<-', found '%a'" pp_token t))
  | t -> fail p (Format.asprintf "expected statement, found '%a'" pp_token t)

let parse_decl p =
  match (current p).tok with
  | KW "var" | KW "volatile" ->
    let volatile = (current p).tok = KW "volatile" in
    advance p;
    let name = eat_ident p in
    let init =
      if (current p).tok = EQ then begin
        advance p;
        let neg = (current p).tok = MINUS in
        if neg then advance p;
        let n = eat_int p in
        Some (if neg then -n else n)
      end
      else None
    in
    eat p SEMI;
    if volatile then ignore (Builder.volatile ?init p.builder name)
    else ignore (Builder.var ?init p.builder name);
    true
  | KW "lock" ->
    advance p;
    ignore (Builder.lock p.builder (eat_ident p));
    eat p SEMI;
    true
  | _ -> false

let parse_thread p =
  match (current p).tok with
  | KW "thread" ->
    advance p;
    let count =
      match (current p).tok with
      | INT n ->
        advance p;
        n
      | _ -> 1
    in
    if count < 1 then fail p "thread replication count must be positive";
    p.regs <- Hashtbl.create 16;
    p.next_reg <- Ast.tid_reg + 1;
    let body = parse_block p in
    for _ = 1 to count do
      Builder.thread p.builder body
    done;
    true
  | _ -> false

let parse_info src =
  let p =
    {
      toks = tokenize src;
      builder = Builder.create ();
      regs = Hashtbl.create 16;
      next_reg = Ast.tid_reg + 1;
      label_pos = [];
    }
  in
  while parse_decl p do
    ()
  done;
  let threads = ref 0 in
  while parse_thread p do
    incr threads
  done;
  if (current p).tok <> EOF then fail p "trailing input after last thread";
  if !threads = 0 then fail p "a program needs at least one thread";
  (Builder.program p.builder, List.rev p.label_pos)

let parse src = fst (parse_info src)

let parse_file_info path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> parse_info (really_input_string ic (in_channel_length ic)))

let parse_file path = fst (parse_file_info path)
