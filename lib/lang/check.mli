(** Static well-formedness checks on programs.

    The interpreter raises at runtime on broken lock discipline; this
    module rejects a large class of such programs before they run, in the
    spirit of a front-end semantic analysis:

    - a thread must hold a lock (lexically) to release it;
    - both branches of an [if] must have the same lock effect;
    - a loop body must be lock-neutral;
    - a thread must not finish holding locks;
    - atomic blocks are checked recursively.

    The analysis is per-thread and purely syntactic (re-entrancy is
    counted), so it is sound for the structured [acquire]/[release] usage
    the workloads employ but deliberately rejects cross-branch trickery.

    Every violation in the program is reported, each with the statement
    path of the offending construct (the coordinates
    {!Velodrome_statics.Cfg} also uses), so [velodrome analyze] and
    [velodrome check] can print a complete diagnostic list in one run. *)

type error = {
  thread : int;
  path : int list;
      (** statement coordinates, outermost block first; [[]] for
          whole-thread errors (e.g. finishing while holding locks) *)
  message : string;
}

val check_program : Velodrome_sim.Ast.program -> (unit, error list) result

val pp_error : Format.formatter -> error -> unit
(** Renders as [thread N, stmt 2.0.1: message]. *)
