(** Textual trace serialization.

    RoadRunner-style tooling routinely records event streams and replays
    them through analyses offline; this module gives traces a stable,
    line-oriented, human-editable format:

    {v
    # comments and blank lines are ignored
    t0 begin Set.add
    t0 rd elems
    t1 wr elems
    t0 wr elems
    t0 end
    t2 acq vector
    t2 rel vector
    v}

    Thread ids are [tN]; variables, locks and labels are free-form names
    interned into the {!Names.t} produced alongside the trace. Writing
    then reading a trace reproduces it exactly (up to the interning of
    names, which is deterministic in first-use order). *)

exception Syntax_error of int * string
(** line number (1-based) and message *)

val to_string : Names.t -> Trace.t -> string

val write : Names.t -> Trace.t -> out_channel -> unit

val of_string : string -> Names.t * Trace.t
(** Raises {!Syntax_error} on malformed input. *)

val parse_line : Names.t -> lineno:int -> string -> Op.t option
(** One line of the textual format: [None] for blank lines and comments,
    the parsed operation otherwise (names interned into the given
    environment). Raises {!Syntax_error} with [lineno] on malformed
    input. CR characters are treated as whitespace, so CRLF files
    parse. *)

val fold_channel :
  Names.t -> in_channel -> init:'a -> f:('a -> Op.t -> 'a) -> 'a
(** Streaming parse: reads the channel line by line, interning names into
    the given environment and folding over operations without ever
    holding the whole trace (or file) in memory. Raises {!Syntax_error}
    with accurate 1-based line numbers. *)

val read_file : string -> Names.t * Trace.t
val write_file : Names.t -> Trace.t -> string -> unit
