(** Growable bitsets over non-negative ints.

    The happens-before pool keeps one ancestor set and one descendant set
    per graph node, keyed by slot index; membership tests and
    transitive-closure updates are the hottest operations in the checker.
    This representation makes membership a word test and set union a
    word-parallel OR over an int array.

    Sets grow on demand ({!set}/{!add}/{!union_into}); reads past the
    allocated words are simply [false]. All indices must be
    non-negative. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] is a size hint in bits. *)

val bits_per_word : int
(** Bits stored per backing word ([Sys.int_size]). *)

val mem : t -> int -> bool

val set : t -> int -> unit

val add : t -> int -> bool
(** Like {!set}, returning [true] iff the bit was not already set. *)

val clear_bit : t -> int -> unit
(** No-op when the bit is out of range or already clear. *)

val reset : t -> unit
(** Clear every bit; capacity is retained. *)

val is_empty : t -> bool
val cardinal : t -> int

val iter : (int -> unit) -> t -> unit
(** Set bits in increasing order. *)

val to_list : t -> int list
(** Set bits in increasing order. *)

val union_into : src:t -> dst:t -> bool
(** [dst <- dst ∪ src]; returns [true] iff [dst] changed. *)

val union_into_on_new : src:t -> dst:t -> (int -> unit) -> bool
(** {!union_into} that additionally calls the callback on every bit that
    was in [src] but not previously in [dst]. *)

val words : t -> int array
(** The backing words, exposed so the pool's fused union-plus-mirror loop
    can run without per-call closures. Read-only unless you can prove the
    write preserves this module's invariants; the array is replaced
    whenever the set grows, so never cache it across a {!set}, {!add} or
    {!union_into}. *)

val ensure_bits : t -> int -> unit
(** Grow the backing array (if needed) so the given bit index is
    addressable; used together with {!words}. *)

val top_word : t -> int
(** Index of the highest non-zero backing word, or [-1] when the set is
    empty. External word loops must iterate (and size their destination)
    up to here rather than to [Array.length (words t)]: capacities may
    exceed the highest set bit, and sizing one set from another's raw
    capacity lets capacities ratchet under repeated unions. *)
