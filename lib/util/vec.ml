type 'a t = { mutable data : 'a array; mutable len : int }

(* The array is allocated lazily on first push because there is no dummy
   element of type 'a to fill it with; [capacity] is advisory only. *)
let create ?capacity:_ () = { data = [||]; len = 0 }

let length t = t.len
let is_empty t = t.len = 0

let push t x =
  let cap = Array.length t.data in
  if t.len = cap then begin
    let ncap = if cap = 0 then 16 else 2 * cap in
    let data = Array.make ncap x in
    Array.blit t.data 0 data 0 t.len;
    t.data <- data
  end;
  t.data.(t.len) <- x;
  t.len <- t.len + 1

let get t i =
  if i < 0 || i >= t.len then invalid_arg "Vec.get: index out of bounds";
  t.data.(i)

let set t i x =
  if i < 0 || i >= t.len then invalid_arg "Vec.set: index out of bounds";
  t.data.(i) <- x

let unsafe_get t i = Array.unsafe_get t.data i
let unsafe_set t i x = Array.unsafe_set t.data i x

let last t = if t.len = 0 then None else Some t.data.(t.len - 1)

let pop t =
  if t.len = 0 then None
  else begin
    t.len <- t.len - 1;
    Some t.data.(t.len)
  end

let drop_last t = if t.len > 0 then t.len <- t.len - 1

let clear t = t.len <- 0

let iter f t =
  for i = 0 to t.len - 1 do
    f t.data.(i)
  done

let iteri f t =
  for i = 0 to t.len - 1 do
    f i t.data.(i)
  done

let fold_left f init t =
  let acc = ref init in
  for i = 0 to t.len - 1 do
    acc := f !acc t.data.(i)
  done;
  !acc

let exists p t =
  let rec go i = i < t.len && (p t.data.(i) || go (i + 1)) in
  go 0

let to_array t = Array.sub t.data 0 t.len
let to_list t = Array.to_list (to_array t)

let of_array arr =
  let t = create () in
  Array.iter (push t) arr;
  t

let of_list l = of_array (Array.of_list l)
