(** Growable arrays.

    Traces and event buffers grow one element at a time to sizes in the
    millions; [Vec] provides amortized O(1) push with direct indexed
    access, which the [Buffer]/list idioms do not. *)

type 'a t

val create : ?capacity:int -> unit -> 'a t
val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val get : 'a t -> int -> 'a
(** Raises [Invalid_argument] when out of bounds. *)

val set : 'a t -> int -> 'a -> unit

val unsafe_get : 'a t -> int -> 'a
(** No bounds check at all (not even the runtime's): undefined behaviour
    out of range. Only for hot loops whose index is already known to be
    below {!length}. *)

val unsafe_set : 'a t -> int -> 'a -> unit
(** See {!unsafe_get}. The index must also be below the current length,
    not merely the capacity, or {!push} will later overwrite it. *)

val last : 'a t -> 'a option

val pop : 'a t -> 'a option
(** Removes and returns the last element. *)

val drop_last : 'a t -> unit
(** Remove the last element without returning it (no option allocation);
    no-op when empty. *)

val clear : 'a t -> unit
(** Logical reset; capacity is retained. Elements are not overwritten, so
    values remain reachable until overwritten — do not rely on [clear] for
    resource release. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold_left : ('b -> 'a -> 'b) -> 'b -> 'a t -> 'b
val exists : ('a -> bool) -> 'a t -> bool
val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : 'a list -> 'a t
val of_array : 'a array -> 'a t
