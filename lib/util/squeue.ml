(* Bounded MPMC queue: an array ring with one sequence number per slot
   (Vyukov's design). Tickets are claimed from the [head]/[tail]
   counters by CAS; a slot's sequence number both hands out slots in
   FIFO order and publishes the payload (the plain [slots] write is
   ordered by the seq_cst store to [seq], so a consumer that observes
   the advanced sequence also observes the payload).

   Slot life cycle, for ticket [t] landing on slot [i = t land mask]:

     seq = t        free, awaiting the producer with ticket t
     seq = t + 1    full, awaiting the consumer with ticket t
     seq = t + capacity   free again, awaiting ticket t + capacity

   Blocking [push]/[pop] spin briefly and then park on a mutex/condition
   pair. The waiter counts are atomics read by the fast paths, so an
   uncontended push or pop never touches the lock; the counts are only
   incremented under the lock, which (with the re-check before waiting)
   closes the lost-wakeup races.

   [close] requires the caller to have completed every push first
   (happens-before); consumers then drain the ring and get [None]. *)

exception Closed

type 'a t = {
  mask : int;
  seq : int Atomic.t array;
  slots : 'a option ref array;
  head : int Atomic.t;  (* next consumer ticket *)
  tail : int Atomic.t;  (* next producer ticket *)
  closed : bool Atomic.t;
  lock : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  empty_waiters : int Atomic.t;
  full_waiters : int Atomic.t;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Squeue.create: capacity < 1";
  (* Minimum 2: with a single slot the ring's free/full sequence states
     coincide and the fast path degenerates to pure contention. *)
  let rec pow2 k = if k >= capacity then k else pow2 (k * 2) in
  let cap = pow2 2 in
  {
    mask = cap - 1;
    seq = Array.init cap (fun i -> Atomic.make i);
    slots = Array.init cap (fun _ -> ref None);
    head = Atomic.make 0;
    tail = Atomic.make 0;
    closed = Atomic.make false;
    lock = Mutex.create ();
    not_empty = Condition.create ();
    not_full = Condition.create ();
    empty_waiters = Atomic.make 0;
    full_waiters = Atomic.make 0;
  }

let capacity q = q.mask + 1

let length q =
  let n = Atomic.get q.tail - Atomic.get q.head in
  if n < 0 then 0 else if n > q.mask + 1 then q.mask + 1 else n

let is_closed q = Atomic.get q.closed

(* --- non-blocking core ------------------------------------------------------ *)

let rec push_core q x =
  let tail = Atomic.get q.tail in
  let i = tail land q.mask in
  let s = Atomic.get q.seq.(i) in
  if s = tail then
    if Atomic.compare_and_set q.tail tail (tail + 1) then begin
      q.slots.(i) := Some x;
      Atomic.set q.seq.(i) (tail + 1);
      true
    end
    else push_core q x (* lost the ticket race; retry *)
  else if s < tail then false (* slot still holds ticket t - capacity: full *)
  else push_core q x (* stale tail; retry *)

let rec pop_core q =
  let head = Atomic.get q.head in
  let i = head land q.mask in
  let s = Atomic.get q.seq.(i) in
  if s = head + 1 then
    if Atomic.compare_and_set q.head head (head + 1) then begin
      let slot = q.slots.(i) in
      let x = !slot in
      slot := None;
      Atomic.set q.seq.(i) (head + q.mask + 1);
      match x with
      | Some _ -> x
      | None -> assert false (* publication order guarantees the payload *)
    end
    else pop_core q
  else if s <= head then None (* no committed element at head: empty *)
  else pop_core q

(* --- wakeups ---------------------------------------------------------------- *)

(* Only producers/consumers that might have a parked peer take the lock;
   the waiter counts are bumped under the lock and re-checked before
   waiting, so a signal can never slip between check and sleep. *)
let signal q waiters cond =
  if Atomic.get waiters > 0 then begin
    Mutex.lock q.lock;
    Condition.broadcast cond;
    Mutex.unlock q.lock
  end

let try_push q x =
  if Atomic.get q.closed then raise Closed;
  if push_core q x then begin
    signal q q.empty_waiters q.not_empty;
    true
  end
  else false

let try_pop q =
  match pop_core q with
  | Some _ as r ->
    signal q q.full_waiters q.not_full;
    r
  | None -> None

(* --- blocking paths --------------------------------------------------------- *)

let spin_budget = 64

let push q x =
  let rec park () =
    Mutex.lock q.lock;
    Atomic.incr q.full_waiters;
    let rec wait () =
      if Atomic.get q.closed then begin
        Atomic.decr q.full_waiters;
        Mutex.unlock q.lock;
        raise Closed
      end
      else if push_core q x then begin
        Atomic.decr q.full_waiters;
        Mutex.unlock q.lock
      end
      else begin
        Condition.wait q.not_full q.lock;
        wait ()
      end
    in
    wait ()
  and attempt spins =
    if Atomic.get q.closed then raise Closed;
    if push_core q x then ()
    else if spins > 0 then begin
      Domain.cpu_relax ();
      attempt (spins - 1)
    end
    else park ()
  in
  attempt spin_budget;
  signal q q.empty_waiters q.not_empty

let pop q =
  let rec park () =
    Mutex.lock q.lock;
    Atomic.incr q.empty_waiters;
    let rec wait () =
      match pop_core q with
      | Some _ as r ->
        Atomic.decr q.empty_waiters;
        Mutex.unlock q.lock;
        signal q q.full_waiters q.not_full;
        r
      | None ->
        if Atomic.get q.closed then begin
          Atomic.decr q.empty_waiters;
          Mutex.unlock q.lock;
          None
        end
        else begin
          Condition.wait q.not_empty q.lock;
          wait ()
        end
    in
    wait ()
  and attempt spins =
    match pop_core q with
    | Some _ as r ->
      signal q q.full_waiters q.not_full;
      r
    | None ->
      if Atomic.get q.closed then
        match pop_core q with (* drain: pushes happen-before close *)
        | Some _ as r ->
          signal q q.full_waiters q.not_full;
          r
        | None -> None
      else if spins > 0 then begin
        Domain.cpu_relax ();
        attempt (spins - 1)
      end
      else park ()
  in
  attempt spin_budget

let close q =
  Atomic.set q.closed true;
  Mutex.lock q.lock;
  Condition.broadcast q.not_empty;
  Condition.broadcast q.not_full;
  Mutex.unlock q.lock
