(* Bounded MPMC queue: an array ring with one sequence number per slot
   (Vyukov's design). Tickets are claimed from the [head]/[tail]
   counters by CAS; a slot's sequence number both hands out slots in
   FIFO order and publishes the payload (the plain [slots] write is
   ordered by the seq_cst store to [seq], so a consumer that observes
   the advanced sequence also observes the payload).

   Slot life cycle, for ticket [t] landing on slot [i = t land mask]:

     seq = t        free, awaiting the producer with ticket t
     seq = t + 1    full, awaiting the consumer with ticket t
     seq = t + capacity   free again, awaiting ticket t + capacity

   Blocking [push]/[pop] spin briefly and then park on a mutex/condition
   pair. The waiter counts are atomics read by the fast paths, so an
   uncontended push or pop never touches the lock; the counts are only
   incremented under the lock, which (with the re-check before waiting)
   closes the lost-wakeup races.

   [close] requires the caller to have completed every push first
   (happens-before); consumers then drain the ring and get [None].

   The whole implementation is a functor over the synchronization
   primitives it uses ([PRIMS]): production instantiates the Stdlib
   modules below ([Stdlib_prims], re-exported as this module's toplevel
   API), while the model-checking tests instantiate the traced shim from
   [lib/modelcheck], whose operations are scheduling points of an
   exhaustive DPOR explorer. [Plain] covers the non-atomic slot cells:
   they are ordinary [ref]s in production, but the explorer must still
   see their accesses as events or it could never catch a broken
   publication order. [MUTATION] re-introduces two historical, subtle
   bugs for the explorer's mutation gate — proof the checker has teeth —
   and is all-[false] ([Healthy]) in the production instantiation. *)

exception Closed

module type PRIMS = sig
  module Atomic : sig
    type 'a t

    val make : 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
    val compare_and_set : 'a t -> 'a -> 'a -> bool
    val incr : int t -> unit
    val decr : int t -> unit
  end

  module Plain : sig
    type 'a t

    val make : 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  module Mutex : sig
    type t

    val create : unit -> t
    val lock : t -> unit
    val unlock : t -> unit
  end

  module Condition : sig
    type t

    val create : unit -> t
    val wait : t -> Mutex.t -> unit
    val broadcast : t -> unit
  end

  val cpu_relax : unit -> unit
  val spin_budget : int
end

module type MUTATION = sig
  val publish_before_ticket_cas : bool
  val skip_park_recheck : bool
end

module Healthy = struct
  let publish_before_ticket_cas = false
  let skip_park_recheck = false
end

module type S = sig
  type 'a t

  val create : capacity:int -> 'a t
  val capacity : 'a t -> int
  val length : 'a t -> int
  val try_push : 'a t -> 'a -> bool
  val try_pop : 'a t -> 'a option
  val push : 'a t -> 'a -> unit
  val pop : 'a t -> 'a option
  val close : 'a t -> unit
  val is_closed : 'a t -> bool
end

module Make_mutant (B : MUTATION) (P : PRIMS) = struct
  module Atomic = P.Atomic
  module Mutex = P.Mutex
  module Condition = P.Condition

  type 'a t = {
    mask : int;
    seq : int Atomic.t array;
    slots : 'a option P.Plain.t array;
    head : int Atomic.t;  (* next consumer ticket *)
    tail : int Atomic.t;  (* next producer ticket *)
    closed : bool Atomic.t;
    lock : Mutex.t;
    not_empty : Condition.t;
    not_full : Condition.t;
    empty_waiters : int Atomic.t;
    full_waiters : int Atomic.t;
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Squeue.create: capacity < 1";
    (* Minimum 2: with a single slot the ring's free/full sequence states
       coincide and the fast path degenerates to pure contention. *)
    let rec pow2 k = if k >= capacity then k else pow2 (k * 2) in
    let cap = pow2 2 in
    {
      mask = cap - 1;
      seq = Array.init cap (fun i -> Atomic.make i);
      slots = Array.init cap (fun _ -> P.Plain.make None);
      head = Atomic.make 0;
      tail = Atomic.make 0;
      closed = Atomic.make false;
      lock = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      empty_waiters = Atomic.make 0;
      full_waiters = Atomic.make 0;
    }

  let capacity q = q.mask + 1

  let length q =
    let n = Atomic.get q.tail - Atomic.get q.head in
    if n < 0 then 0 else if n > q.mask + 1 then q.mask + 1 else n

  let is_closed q = Atomic.get q.closed

  (* --- non-blocking core ---------------------------------------------------- *)

  let rec push_core q x =
    let tail = Atomic.get q.tail in
    let i = tail land q.mask in
    let s = Atomic.get q.seq.(i) in
    if s = tail then
      if B.publish_before_ticket_cas then begin
        (* Seeded bug (mutation gate): write the payload and publish the
           slot before the ticket CAS has established ownership. Two
           producers that both saw [seq = tail] race on the same slot:
           both write, one wins the ticket, and the winner's element may
           have been overwritten by the loser — conservation fails. *)
        P.Plain.set q.slots.(i) (Some x);
        Atomic.set q.seq.(i) (tail + 1);
        if Atomic.compare_and_set q.tail tail (tail + 1) then true
        else push_core q x
      end
      else if Atomic.compare_and_set q.tail tail (tail + 1) then begin
        P.Plain.set q.slots.(i) (Some x);
        Atomic.set q.seq.(i) (tail + 1);
        true
      end
      else push_core q x (* lost the ticket race; retry *)
    else if s < tail then false (* slot still holds ticket t - capacity: full *)
    else push_core q x (* stale tail; retry *)

  let rec pop_core q =
    let head = Atomic.get q.head in
    let i = head land q.mask in
    let s = Atomic.get q.seq.(i) in
    if s = head + 1 then
      if Atomic.compare_and_set q.head head (head + 1) then begin
        let slot = q.slots.(i) in
        let x = P.Plain.get slot in
        P.Plain.set slot None;
        Atomic.set q.seq.(i) (head + q.mask + 1);
        match x with
        | Some _ -> x
        | None -> assert false (* publication order guarantees the payload *)
      end
      else pop_core q
    else if s <= head then None (* no committed element at head: empty *)
    else pop_core q

  (* --- wakeups -------------------------------------------------------------- *)

  (* Only producers/consumers that might have a parked peer take the lock;
     the waiter counts are bumped under the lock and re-checked before
     waiting, so a signal can never slip between check and sleep. *)
  let signal q waiters cond =
    if Atomic.get waiters > 0 then begin
      Mutex.lock q.lock;
      Condition.broadcast cond;
      Mutex.unlock q.lock
    end

  let try_push q x =
    if Atomic.get q.closed then raise Closed;
    if push_core q x then begin
      signal q q.empty_waiters q.not_empty;
      true
    end
    else false

  let try_pop q =
    match pop_core q with
    | Some _ as r ->
      signal q q.full_waiters q.not_full;
      r
    | None -> None

  (* --- blocking paths ------------------------------------------------------- *)

  let push q x =
    let rec park () =
      Mutex.lock q.lock;
      Atomic.incr q.full_waiters;
      let rec wait first =
        if Atomic.get q.closed then begin
          Atomic.decr q.full_waiters;
          Mutex.unlock q.lock;
          raise Closed
        end
        else if
          (* Seeded bug (mutation gate): skip the re-check between
             registering as a waiter and sleeping. A peer that signalled
             before the waiter count was incremented is then never
             re-observed — the classic lost wakeup. *)
          (not (first && B.skip_park_recheck)) && push_core q x
        then begin
          Atomic.decr q.full_waiters;
          Mutex.unlock q.lock
        end
        else begin
          Condition.wait q.not_full q.lock;
          wait false
        end
      in
      wait true
    and attempt spins =
      if Atomic.get q.closed then raise Closed;
      if push_core q x then ()
      else if spins > 0 then begin
        P.cpu_relax ();
        attempt (spins - 1)
      end
      else park ()
    in
    attempt P.spin_budget;
    signal q q.empty_waiters q.not_empty

  let pop q =
    let rec park () =
      Mutex.lock q.lock;
      Atomic.incr q.empty_waiters;
      let rec wait () =
        match pop_core q with
        | Some _ as r ->
          Atomic.decr q.empty_waiters;
          Mutex.unlock q.lock;
          signal q q.full_waiters q.not_full;
          r
        | None ->
          if Atomic.get q.closed then begin
            Atomic.decr q.empty_waiters;
            Mutex.unlock q.lock;
            None
          end
          else begin
            Condition.wait q.not_empty q.lock;
            wait ()
          end
      in
      wait ()
    and attempt spins =
      match pop_core q with
      | Some _ as r ->
        signal q q.full_waiters q.not_full;
        r
      | None ->
        if Atomic.get q.closed then
          match pop_core q with (* drain: pushes happen-before close *)
          | Some _ as r ->
            signal q q.full_waiters q.not_full;
            r
          | None -> None
        else if spins > 0 then begin
          P.cpu_relax ();
          attempt (spins - 1)
        end
        else park ()
    in
    attempt P.spin_budget

  let close q =
    Atomic.set q.closed true;
    Mutex.lock q.lock;
    Condition.broadcast q.not_empty;
    Condition.broadcast q.not_full;
    Mutex.unlock q.lock
end

module Make (P : PRIMS) = Make_mutant (Healthy) (P)

module Stdlib_prims = struct
  module Atomic = Stdlib.Atomic

  module Plain = struct
    type 'a t = 'a ref

    let make v = ref v
    let get r = !r
    let set r v = r := v
  end

  module Mutex = Stdlib.Mutex
  module Condition = Stdlib.Condition

  let cpu_relax = Domain.cpu_relax
  let spin_budget = 64
end

include Make (Stdlib_prims)
