(* The one monotonic clock for the whole tree. Every timing path
   (harness studies, the serve pool, the bench suites) must agree on a
   clock that (a) measures wall time, not CPU time summed over domains —
   Sys.time inflates as soon as a domain pool or the GC's own domains
   run — and (b) never steps backwards under NTP, which rules out
   Unix.gettimeofday. bechamel's monotonic clock (CLOCK_MONOTONIC in
   raw nanoseconds) satisfies both; this module is the single funnel so
   no caller links bechamel directly. *)

let now_ns : unit -> int64 = Monotonic_clock.now
let now_s () = Int64.to_float (now_ns ()) /. 1e9

let span_s t0 t1 = Int64.to_float (Int64.sub t1 t0) /. 1e9
