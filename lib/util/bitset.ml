type t = { mutable words : int array }

let bits_per_word = Sys.int_size

let create ?(capacity = 0) () =
  { words = Array.make (max 1 ((capacity + bits_per_word - 1) / bits_per_word)) 0 }

let ensure t w =
  let n = Array.length t.words in
  if w >= n then begin
    let n' = max (w + 1) (2 * n) in
    let words = Array.make n' 0 in
    Array.blit t.words 0 words 0 n;
    t.words <- words
  end

let ensure_bits t i = ensure t (i / bits_per_word)

let mem t i =
  let w = i / bits_per_word in
  w < Array.length t.words
  && t.words.(w) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  let w = i / bits_per_word in
  ensure t w;
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let add t i =
  let w = i / bits_per_word in
  ensure t w;
  let old = t.words.(w) in
  let now = old lor (1 lsl (i mod bits_per_word)) in
  t.words.(w) <- now;
  now <> old

let clear_bit t i =
  let w = i / bits_per_word in
  if w < Array.length t.words then
    t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let reset t = Array.fill t.words 0 (Array.length t.words) 0

let is_empty t =
  let rec go i = i >= Array.length t.words || (t.words.(i) = 0 && go (i + 1)) in
  go 0

let cardinal t =
  let c = ref 0 in
  for w = 0 to Array.length t.words - 1 do
    let x = ref t.words.(w) in
    while !x <> 0 do
      incr c;
      x := !x land (!x - 1)
    done
  done;
  !c

let iter f t =
  let words = t.words in
  for w = 0 to Array.length words - 1 do
    let x = ref words.(w) in
    let i = ref (w * bits_per_word) in
    while !x <> 0 do
      if !x land 1 <> 0 then f !i;
      if !x land 0xff = 0 then begin
        x := !x lsr 8;
        i := !i + 8
      end
      else begin
        x := !x lsr 1;
        i := !i + 1
      end
    done
  done

let to_list t =
  let acc = ref [] in
  iter (fun i -> acc := i :: !acc) t;
  List.rev !acc

(* Index of the highest non-zero word, or -1 for the empty set. Unions
   iterate only up to here: growing the destination to the source's raw
   capacity would let capacities ratchet (each [ensure] may double), and
   word loops would then scan ever-larger tails of zeros. *)
let top_word t =
  let rec go i = if i < 0 then -1 else if t.words.(i) <> 0 then i else go (i - 1) in
  go (Array.length t.words - 1)

let union_into ~src ~dst =
  let sn = top_word src + 1 in
  if sn > 0 then ensure dst (sn - 1);
  let dw = dst.words in
  let changed = ref false in
  for w = 0 to sn - 1 do
    let s = src.words.(w) in
    if s <> 0 then begin
      let d = dw.(w) in
      if s land lnot d <> 0 then begin
        changed := true;
        dw.(w) <- d lor s
      end
    end
  done;
  !changed

let union_into_on_new ~src ~dst f =
  let sn = top_word src + 1 in
  if sn > 0 then ensure dst (sn - 1);
  let dw = dst.words in
  let changed = ref false in
  for w = 0 to sn - 1 do
    let s = src.words.(w) in
    if s <> 0 then begin
      let d = dw.(w) in
      let fresh = s land lnot d in
      if fresh <> 0 then begin
        changed := true;
        dw.(w) <- d lor s;
        let x = ref fresh in
        let i = ref (w * bits_per_word) in
        while !x <> 0 do
          if !x land 1 <> 0 then f !i;
          if !x land 0xff = 0 then begin
            x := !x lsr 8;
            i := !i + 8
          end
          else begin
            x := !x lsr 1;
            i := !i + 1
          end
        done
      end
    end
  done;
  !changed

let words t = t.words
