(** A bounded multi-producer multi-consumer queue on OCaml 5 atomics.

    The core is the classic array-ring design with one sequence number
    per slot (Dmitry Vyukov's bounded MPMC queue, the same shape the
    Saturn library uses for its lock-free internals): producers and
    consumers claim tickets from two atomic counters and publish through
    the slot's sequence number, so the uncontended fast path is one CAS
    plus two atomic operations and no lock is ever taken.

    On top of the non-blocking core, {!push} and {!pop} add blocking
    with real parking: after a short bounded spin they wait on a
    mutex/condition pair, so a full queue exerts backpressure on
    producers (the serve pipeline's memory bound) and idle consumers
    sleep instead of burning a core — essential when domains outnumber
    cores.

    A queue can be {!close}d: consumers drain the remaining elements and
    then receive [None], which is how the serve domain pool shuts its
    workers down.

    The implementation is a functor, {!Make}, over the synchronization
    primitives it uses ({!PRIMS}): atomics, the plain (non-atomic) slot
    cells, the mutex/condition parking pair, [cpu_relax] and the spin
    budget. The toplevel API of this module is [Make (Stdlib_prims)] —
    bare [Stdlib.Atomic]/[ref]/[Mutex]/[Condition], the production
    instantiation with no indirection beyond the functor call. The
    model-checking tests instantiate the same functor with the traced
    shim from [lib/modelcheck], making every primitive operation a
    scheduling point of an exhaustive DPOR explorer; see
    [test/mc_scenarios.ml] and DESIGN "Model-checked concurrency".

    Determinism notes for testing: with a single domain, {!try_push} and
    {!try_pop} are ordinary deterministic functions (the model tests
    replay them against a reference FIFO); all concurrency lives in the
    multi-domain stress tests and the model-checked scenarios. *)

exception Closed

(** The queue API, shared by every instantiation. *)
module type S = sig
  type 'a t

  val create : capacity:int -> 'a t
  (** [create ~capacity] makes an empty queue holding at most [capacity]
      elements (rounded up to a power of two, minimum 2). Raises
      [Invalid_argument] when [capacity < 1]. *)

  val capacity : 'a t -> int
  (** The actual (rounded) capacity. *)

  val length : 'a t -> int
  (** A snapshot of the number of elements currently queued. Exact when
      no other domain is mid-operation; otherwise a transient
      approximation in [0, capacity]. *)

  val try_push : 'a t -> 'a -> bool
  (** Non-blocking push: [false] when the queue is full. Raises [Closed]
      when the queue has been closed. *)

  val try_pop : 'a t -> 'a option
  (** Non-blocking pop: [None] when the queue is empty (closed or
      not). *)

  val push : 'a t -> 'a -> unit
  (** Blocking push: waits (bounded spin, then sleeps) while the queue
      is full. Raises [Closed] when the queue has been closed. *)

  val pop : 'a t -> 'a option
  (** Blocking pop: waits while the queue is empty, returns [Some x] for
      the next element, or [None] once the queue is closed {e and}
      drained. *)

  val close : 'a t -> unit
  (** Closes the queue: subsequent pushes raise [Closed]; queued
      elements remain poppable; blocked consumers wake up and return
      [None] once the queue is empty. Idempotent. *)

  val is_closed : 'a t -> bool
end

(** The synchronization primitives the queue is built from. Production
    code uses {!Stdlib_prims}; the model checker supplies traced
    equivalents whose every operation is a scheduling point. *)
module type PRIMS = sig
  module Atomic : sig
    type 'a t

    val make : 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
    val compare_and_set : 'a t -> 'a -> 'a -> bool
    val incr : int t -> unit
    val decr : int t -> unit
  end

  module Plain : sig
    type 'a t

    val make : 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end
  (** Non-atomic cells (the payload slots). Plain [ref]s in production;
      the model checker must still trace their accesses, or a broken
      publication order could never be caught. *)

  module Mutex : sig
    type t

    val create : unit -> t
    val lock : t -> unit
    val unlock : t -> unit
  end

  module Condition : sig
    type t

    val create : unit -> t
    val wait : t -> Mutex.t -> unit
    val broadcast : t -> unit
  end

  val cpu_relax : unit -> unit

  val spin_budget : int
  (** Fast-path spins before parking. 64 in production; the model
      checker uses 1 so every blocking path stays within an
      exhaustively explorable depth. *)
end

(** Seeded-bug switches for the model checker's mutation gate: each
    [true] re-introduces a known-subtle concurrency bug, and the test
    suite asserts the explorer prints a counterexample schedule for it.
    Production code is {!Make}, which is [Make_mutant] over
    {!Healthy}. *)
module type MUTATION = sig
  val publish_before_ticket_cas : bool
  (** Write the payload and publish the slot sequence {e before} the
      ticket CAS establishes ownership: racing producers overwrite each
      other's elements (conservation violation). *)

  val skip_park_recheck : bool
  (** Skip the retry between registering as a waiter and sleeping on the
      condition: a signal sent just before registration is never
      re-observed (lost wakeup — deadlock). *)
end

module Healthy : MUTATION

module Make_mutant (_ : MUTATION) (P : PRIMS) : S
module Make (P : PRIMS) : S

(** The production primitives: [Stdlib.Atomic], bare [ref]s,
    [Stdlib.Mutex]/[Condition], [Domain.cpu_relax], spin budget 64. *)
module Stdlib_prims : sig
  module Atomic = Stdlib.Atomic

  module Plain : sig
    type 'a t = 'a ref

    val make : 'a -> 'a t
    val get : 'a t -> 'a
    val set : 'a t -> 'a -> unit
  end

  module Mutex = Stdlib.Mutex
  module Condition = Stdlib.Condition

  val cpu_relax : unit -> unit
  val spin_budget : int
end

include S
(** The toplevel queue: [Make (Stdlib_prims)]. *)
