(** A bounded multi-producer multi-consumer queue on OCaml 5 atomics.

    The core is the classic array-ring design with one sequence number
    per slot (Dmitry Vyukov's bounded MPMC queue, the same shape the
    Saturn library uses for its lock-free internals): producers and
    consumers claim tickets from two atomic counters and publish through
    the slot's sequence number, so the uncontended fast path is one CAS
    plus two atomic operations and no lock is ever taken.

    On top of the non-blocking core, {!push} and {!pop} add blocking
    with real parking: after a short bounded spin they wait on a
    mutex/condition pair, so a full queue exerts backpressure on
    producers (the serve pipeline's memory bound) and idle consumers
    sleep instead of burning a core — essential when domains outnumber
    cores.

    A queue can be {!close}d: consumers drain the remaining elements and
    then receive [None], which is how the serve domain pool shuts its
    workers down.

    Determinism notes for testing: with a single domain, {!try_push} and
    {!try_pop} are ordinary deterministic functions (the model tests
    replay them against a reference FIFO); all concurrency lives in the
    multi-domain stress tests. *)

type 'a t

val create : capacity:int -> 'a t
(** [create ~capacity] makes an empty queue holding at most [capacity]
    elements (rounded up to a power of two, minimum 2). Raises
    [Invalid_argument] when [capacity < 1]. *)

val capacity : 'a t -> int
(** The actual (rounded) capacity. *)

val length : 'a t -> int
(** A snapshot of the number of elements currently queued. Exact when no
    other domain is mid-operation; otherwise a transient approximation
    in [0, capacity]. *)

val try_push : 'a t -> 'a -> bool
(** Non-blocking push: [false] when the queue is full. Raises [Closed]
    when the queue has been closed. *)

val try_pop : 'a t -> 'a option
(** Non-blocking pop: [None] when the queue is empty (closed or not). *)

val push : 'a t -> 'a -> unit
(** Blocking push: waits (bounded spin, then sleeps) while the queue is
    full. Raises [Closed] when the queue has been closed. *)

val pop : 'a t -> 'a option
(** Blocking pop: waits while the queue is empty, returns [Some x] for
    the next element, or [None] once the queue is closed {e and}
    drained. *)

val close : 'a t -> unit
(** Closes the queue: subsequent pushes raise [Closed]; queued elements
    remain poppable; blocked consumers wake up and return [None] once
    the queue is empty. Idempotent. *)

val is_closed : 'a t -> bool

exception Closed
