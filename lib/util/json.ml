type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print with enough digits to round-trip but without the noise of
   %h; integral floats print as integers for stable cram output. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "false")
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.pp_print_string ppf (float_repr f)
  | String s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
    Format.fprintf ppf "[@[<v 1>@,%a@]@,]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         pp)
      xs
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
    Format.fprintf ppf "{@[<v 1>@,%a@]@,}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         (fun ppf (k, v) -> Format.fprintf ppf "\"%s\": %a" (escape k) pp v))
      fields

let to_string v = Format.asprintf "%a" pp v

let to_channel oc v =
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "%a@." pp v

(* --- Parsing ------------------------------------------------------------ *)

exception Parse_error of string

(* Recursive-descent parser over the same subset the printer emits, plus
   standard JSON escapes and exponent notation. Numbers without [.], [e]
   or [E] parse as [Int]; everything else as [Float]. *)
let of_string s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !pos)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> fail (Printf.sprintf "expected '%c'" c)
  in
  let literal word v =
    if !pos + String.length word <= n && String.sub s !pos (String.length word) = word
    then begin
      pos := !pos + String.length word;
      v
    end
    else fail (Printf.sprintf "expected '%s'" word)
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string"
      else
        match s.[!pos] with
        | '"' -> advance ()
        | '\\' ->
          advance ();
          (if !pos >= n then fail "unterminated escape"
           else
             match s.[!pos] with
             | '"' -> Buffer.add_char buf '"'; advance ()
             | '\\' -> Buffer.add_char buf '\\'; advance ()
             | '/' -> Buffer.add_char buf '/'; advance ()
             | 'b' -> Buffer.add_char buf '\b'; advance ()
             | 'f' -> Buffer.add_char buf '\012'; advance ()
             | 'n' -> Buffer.add_char buf '\n'; advance ()
             | 'r' -> Buffer.add_char buf '\r'; advance ()
             | 't' -> Buffer.add_char buf '\t'; advance ()
             | 'u' ->
               advance ();
               if !pos + 4 > n then fail "truncated \\u escape";
               let code =
                 try int_of_string ("0x" ^ String.sub s !pos 4)
                 with _ -> fail "bad \\u escape"
               in
               pos := !pos + 4;
               (* Keep it simple: decode BMP code points as UTF-8. *)
               if code < 0x80 then Buffer.add_char buf (Char.chr code)
               else if code < 0x800 then begin
                 Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
               else begin
                 Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
                 Buffer.add_char buf
                   (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
                 Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
               end
             | c -> fail (Printf.sprintf "bad escape '\\%c'" c));
          go ()
        | c -> Buffer.add_char buf c; advance (); go ()
    in
    go ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !pos in
    let is_float = ref false in
    if peek () = Some '-' then advance ();
    let digits () =
      let saw = ref false in
      while
        !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false
      do
        saw := true;
        advance ()
      done;
      !saw
    in
    if not (digits ()) then fail "expected digits";
    if peek () = Some '.' then begin
      is_float := true;
      advance ();
      if not (digits ()) then fail "expected digits after '.'"
    end;
    (match peek () with
    | Some ('e' | 'E') ->
      is_float := true;
      advance ();
      (match peek () with Some ('+' | '-') -> advance () | _ -> ());
      if not (digits ()) then fail "expected digits in exponent"
    | _ -> ());
    let text = String.sub s start (!pos - start) in
    if !is_float then Float (float_of_string text)
    else
      match int_of_string_opt text with
      | Some i -> Int i
      | None -> Float (float_of_string text)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); fields ((k, v) :: acc)
          | Some '}' -> advance (); Obj (List.rev ((k, v) :: acc))
          | _ -> fail "expected ',' or '}'"
        in
        fields []
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        List []
      end
      else begin
        let rec elems acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' -> advance (); elems (v :: acc)
          | Some ']' -> advance (); List (List.rev (v :: acc))
          | _ -> fail "expected ',' or ']'"
        in
        elems []
      end
    | Some '"' -> String (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !pos <> n then fail "trailing garbage";
    v
  with
  | v -> Ok v
  | exception Parse_error msg -> Error msg
