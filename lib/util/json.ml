type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* Floats print with enough digits to round-trip but without the noise of
   %h; integral floats print as integers for stable cram output. *)
let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.6g" f

let rec pp ppf = function
  | Null -> Format.pp_print_string ppf "null"
  | Bool b -> Format.pp_print_string ppf (if b then "true" else "false")
  | Int n -> Format.pp_print_int ppf n
  | Float f -> Format.pp_print_string ppf (float_repr f)
  | String s -> Format.fprintf ppf "\"%s\"" (escape s)
  | List [] -> Format.pp_print_string ppf "[]"
  | List xs ->
    Format.fprintf ppf "[@[<v 1>@,%a@]@,]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         pp)
      xs
  | Obj [] -> Format.pp_print_string ppf "{}"
  | Obj fields ->
    Format.fprintf ppf "{@[<v 1>@,%a@]@,}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@,")
         (fun ppf (k, v) -> Format.fprintf ppf "\"%s\": %a" (escape k) pp v))
      fields

let to_string v = Format.asprintf "%a" pp v

let to_channel oc v =
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "%a@." pp v
