(** A minimal JSON document builder and printer.

    The repository deliberately has no JSON dependency; this is the small
    write-only subset the CLI ([velodrome analyze --format json]) and the
    benchmark emitters need. Output is deterministic — object fields print
    in the order given, arrays one element per line — so cram tests can
    pin it verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Prints the document followed by a newline. *)
