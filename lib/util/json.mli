(** A minimal JSON document builder, printer and parser.

    The repository deliberately has no JSON dependency; this is the small
    subset the CLI ([velodrome analyze --format json]), the benchmark
    emitters and the benchmark schema validator need. Output is
    deterministic — object fields print in the order given, arrays one
    element per line — so cram tests can pin it verbatim. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val to_channel : out_channel -> t -> unit
(** Prints the document followed by a newline. *)

val of_string : string -> (t, string) result
(** Parse one JSON document (objects, arrays, strings with standard
    escapes, numbers with optional fraction/exponent, booleans, null).
    Numbers without a fraction or exponent that fit in [int] parse as
    {!Int}, everything else as {!Float}. [Error] carries a message with
    the byte offset of the failure. *)
