(** Monotonic wall-clock time, shared by the harness, the serve pool and
    the bench suites.

    [Sys.time] counts CPU time summed over every running domain (a
    4-domain pool "takes" 4x the wall time) and [Unix.gettimeofday] can
    step backwards under NTP; both are banned from timing paths. This
    module is the single place that touches the underlying clock. *)

val now_ns : unit -> int64
(** Raw monotonic nanoseconds (CLOCK_MONOTONIC). Only differences are
    meaningful. *)

val now_s : unit -> float
(** [now_ns] scaled to seconds. *)

val span_s : int64 -> int64 -> float
(** [span_s t0 t1] is the elapsed seconds from [t0] to [t1], both taken
    from {!now_ns}. *)
