(** The adversarial-scheduling studies of Sections 5–6.

    {b Coverage} (S2): run the workloads whose defects hide in narrow
    windows (raytracer, colt, jigsaw) with and without scheduler
    adjustment and compare how many of their rare non-atomic methods
    Velodrome confirms.

    {b Injection} (S3): corrupt elevator and colt by removing one
    contended synchronized method's locks at a time
    ({!Velodrome_inject.Inject}); a single Velodrome run per mutant per
    seed either finds the inserted defect or not. The paper reports the
    success rate rising from ≈30 % to ≈70 % with scheduler adjustment. *)

type coverage_row = {
  workload : string;
  rare_total : int;
  found_plain : int;
  found_adversarial : int;
}

val coverage :
  ?size:Velodrome_workloads.Workload.size ->
  ?seeds:int list ->
  unit ->
  coverage_row list

val print_coverage : Format.formatter -> coverage_row list -> unit

type injection_row = {
  workload : string;
  mutants : int;
  runs : int;  (** mutants × seeds, per mode *)
  detected_plain : int;
  detected_adversarial : int;
}

val injection :
  ?size:Velodrome_workloads.Workload.size ->
  ?seeds:int list ->
  unit ->
  injection_row list

val print_injection : Format.formatter -> injection_row list -> unit

(** {b Single core} (S4): the paper notes that the number of warnings was
    "fairly uniform" when the experiments were repeated using only a
    single core, despite Velodrome's schedule sensitivity. The
    deterministic round-robin scheduler plays the single-core role: the
    Table 2 totals under it should be close to the multi-core (random
    scheduler) totals. *)

type single_core_row = {
  mode : string;
  found : int;
  false_alarms : int;
  s4_missed : int;
}

val single_core :
  ?size:Velodrome_workloads.Workload.size ->
  ?seeds:int list ->
  unit ->
  single_core_row list

val print_single_core : Format.formatter -> single_core_row list -> unit

(** {b Agreement} (A1): replay every workload's recorded traces through
    the three sound-and-complete engines — the optimized graph engine,
    the Figure 2 reference and the AeroDrome vector-clock checker — and
    report whether they agreed on the verdict and on the first violating
    event across every seed, with and without adversarial scheduling.
    Two independent algorithms agreeing on every trace is the strongest
    dynamic correctness evidence the harness can produce. *)

type agreement_row = {
  workload : string;
  traces : int;  (** recorded schedules replayed *)
  violating : int;  (** traces on which all three engines found a cycle *)
  agreements : int;  (** traces with full three-way agreement *)
}

val agreement :
  ?size:Velodrome_workloads.Workload.size ->
  ?seeds:int list ->
  unit ->
  agreement_row list

val print_agreement : Format.formatter -> agreement_row list -> unit
