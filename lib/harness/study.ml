open Velodrome_analysis
open Velodrome_workloads

type coverage_row = {
  workload : string;
  rare_total : int;
  found_plain : int;
  found_adversarial : int;
}

module SSet = Set.Make (String)

let velodrome_found ~adversarial ~seeds (w : Workload.t) size =
  List.fold_left
    (fun acc seed ->
      let program = w.Workload.build size in
      let names = program.Velodrome_sim.Ast.names in
      let res =
        Common.run_once ~seed ~adversarial program (fun n ->
            [
              Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
              Backend.make (Velodrome_core.Engine.backend ()) n;
            ])
      in
      List.fold_left
        (fun acc (warning : Warning.t) ->
          if warning.Warning.analysis = "velodrome" && warning.Warning.blamed
          then begin
            match Common.label_of_warning names warning with
            | Some l -> SSet.add l acc
            | None -> acc
          end
          else acc)
        acc res.Velodrome_sim.Run.warnings)
    SSet.empty seeds

let coverage ?(size = Workload.Medium) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  [ "raytracer"; "colt"; "jigsaw" ]
  |> List.filter_map Workload.find
  |> List.map (fun w ->
         let rare =
           List.filter
             (fun g -> (not g.Workload.atomic) && g.Workload.rare)
             w.Workload.methods
           |> List.map (fun g -> g.Workload.label)
           |> SSet.of_list
         in
         let plain = velodrome_found ~adversarial:false ~seeds w size in
         let adv = velodrome_found ~adversarial:true ~seeds w size in
         {
           workload = w.Workload.name;
           rare_total = SSet.cardinal rare;
           found_plain = SSet.cardinal (SSet.inter rare plain);
           found_adversarial = SSet.cardinal (SSet.inter rare adv);
         })

let print_coverage ppf rows =
  Format.fprintf ppf "%-11s | %10s | %11s | %16s@." "Program" "Rare bugs"
    "Found plain" "Found adversarial";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-11s | %10d | %11d | %16d@." r.workload
        r.rare_total r.found_plain r.found_adversarial)
    rows

type injection_row = {
  workload : string;
  mutants : int;
  runs : int;
  detected_plain : int;
  detected_adversarial : int;
}

let detect ~adversarial ~seed (m : Velodrome_inject.Inject.mutant) =
  let names = m.Velodrome_inject.Inject.program.Velodrome_sim.Ast.names in
  let res =
    Common.run_once ~seed ~adversarial m.Velodrome_inject.Inject.program
      (fun n ->
        [
          Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
          Backend.make (Velodrome_core.Engine.backend ()) n;
        ])
  in
  List.exists
    (fun (warning : Warning.t) ->
      warning.Warning.analysis = "velodrome"
      && warning.Warning.blamed
      && Common.label_of_warning names warning
         = Some m.Velodrome_inject.Inject.method_label)
    res.Velodrome_sim.Run.warnings

let injection ?(size = Workload.Medium) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  [ "elevator"; "colt" ]
  |> List.filter_map Workload.find
  |> List.map (fun w ->
         let ms = Velodrome_inject.Inject.mutants w size in
         let count adversarial =
           List.fold_left
             (fun acc m ->
               List.fold_left
                 (fun acc seed ->
                   if detect ~adversarial ~seed m then acc + 1 else acc)
                 acc seeds)
             0 ms
         in
         {
           workload = w.Workload.name;
           mutants = List.length ms;
           runs = List.length ms * List.length seeds;
           detected_plain = count false;
           detected_adversarial = count true;
         })

type single_core_row = {
  mode : string;
  found : int;
  false_alarms : int;
  s4_missed : int;
}

let single_core ?(size = Workload.Medium) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  let total ~quantum mode =
    let t = Table2.totals (Table2.run ~size ~seeds ~quantum ()) in
    {
      mode;
      found = t.Table2.velodrome_real;
      false_alarms = t.Table2.velodrome_fa;
      s4_missed = t.Table2.missed;
    }
  in
  [
    total ~quantum:1 "multi-core (quantum 1)";
    total ~quantum:25 "single core (quantum 25)";
  ]

let print_single_core ppf rows =
  Format.fprintf ppf "%-26s | %9s | %12s | %7s@." "Scheduler" "Vel:real"
    "Vel:FA" "Missed";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-26s | %9d | %12d | %7d@." r.mode r.found
        r.false_alarms r.s4_missed)
    rows

let print_injection ppf rows =
  Format.fprintf ppf "%-11s | %7s | %5s | %14s | %20s@." "Program" "Mutants"
    "Runs" "Detected plain" "Detected adversarial";
  List.iter
    (fun r ->
      let pct x =
        if r.runs = 0 then 0.0 else 100.0 *. float_of_int x /. float_of_int r.runs
      in
      Format.fprintf ppf "%-11s | %7d | %5d | %8d (%2.0f%%) | %12d (%3.0f%%)@."
        r.workload r.mutants r.runs r.detected_plain (pct r.detected_plain)
        r.detected_adversarial
        (pct r.detected_adversarial))
    rows

type agreement_row = {
  workload : string;
  traces : int;
  violating : int;
  agreements : int;
}

(* Replay one recorded trace through the engine trio; true when the
   verdict, the first violating event and (for Aero vs Basic) the
   warning sets all agree. *)
let trio_agrees names trace =
  let module E = Velodrome_core.Engine in
  let module B = Velodrome_core.Basic in
  let module A = Velodrome_core.Aero in
  let e = E.create names and b = B.create names and a = A.create names in
  List.iter
    (fun ev ->
      E.on_event e ev;
      B.on_event b ev;
      A.on_event a ev)
    (Velodrome_trace.Event.of_ops (Velodrome_trace.Trace.to_list trace));
  E.finish e;
  B.finish b;
  A.finish a;
  let proj (w : Warning.t) =
    ( w.Warning.kind, w.Warning.tid, w.Warning.label, w.Warning.index,
      w.Warning.message )
  in
  let agree =
    E.has_error e = B.has_error b
    && B.has_error b = A.has_error a
    && E.first_error_index e = B.first_error_index b
    && B.first_error_index b = A.first_error_index a
    && List.sort compare (List.map proj (A.warnings a))
       = List.sort compare (List.map proj (B.warnings b))
  in
  (agree, A.has_error a && agree)

let agreement ?(size = Workload.Medium) ?(seeds = [ 1; 2; 3; 4; 5 ]) () =
  List.map
    (fun (w : Workload.t) ->
      let program = w.Workload.build size in
      let names = program.Velodrome_sim.Ast.names in
      let traces = ref 0 and violating = ref 0 and agreements = ref 0 in
      List.iter
        (fun adversarial ->
          List.iter
            (fun seed ->
              let res =
                Common.run_once ~seed ~adversarial ~record_trace:true program
                  (fun _ -> [])
              in
              match res.Velodrome_sim.Run.trace with
              | None -> ()
              | Some tr ->
                incr traces;
                let agree, violates = trio_agrees names tr in
                if agree then incr agreements;
                if violates then incr violating)
            seeds)
        [ false; true ];
      {
        workload = w.Workload.name;
        traces = !traces;
        violating = !violating;
        agreements = !agreements;
      })
    Workload.all

let print_agreement ppf rows =
  Format.fprintf ppf "%-11s | %6s | %9s | %5s@." "Program" "Traces"
    "Violating" "Agree";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-11s | %6d | %9d | %5s@." r.workload r.traces
        r.violating
        (if r.agreements = r.traces then "all"
         else Printf.sprintf "%d/%d" r.agreements r.traces))
    rows
