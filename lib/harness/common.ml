open Velodrome_trace
open Velodrome_analysis
open Velodrome_workloads
open Velodrome_sim

(* Wall-clock seconds on the shared monotonic clock (Mclock): Sys.time
   would count CPU time summed over every running domain, which inflates
   timings as soon as a serve pool (or the GC's own domains) is active,
   and Unix.gettimeofday can step backwards under NTP. *)
let now () = Velodrome_util.Mclock.now_s ()

let time f =
  let t0 = now () in
  let r = f () in
  (now () -. t0, r)

let time_median n f =
  let samples = Array.init (max 1 n) (fun _ -> fst (time f)) in
  Velodrome_util.Stats.median samples

let time_stable ?(min_total = 0.05) n f =
  let t0 = now () in
  let count = ref 0 in
  while !count < n || now () -. t0 < min_total do
    f ();
    incr count
  done;
  (now () -. t0) /. float_of_int !count

let ground_truth (w : Workload.t) =
  let tbl = Hashtbl.create 32 in
  List.iter (fun g -> Hashtbl.replace tbl g.Workload.label g) w.Workload.methods;
  tbl

let non_atomic_label_ids (w : Workload.t) names =
  let tbl = Hashtbl.create 32 in
  List.iter
    (fun g ->
      if not g.Workload.atomic then
        match Velodrome_util.Symtab.find names.Names.labels g.Workload.label with
        | Some id -> Hashtbl.replace tbl id ()
        | None -> ())
    w.Workload.methods;
  tbl

let label_of_warning names (w : Warning.t) =
  Option.map (Names.label_name names) w.Warning.label

(* The paper suspends offending threads for 100 ms — thousands of events
   on its testbed. An adaptive pause — released early by any conflicting
   write, capped at 2000 scheduling decisions — plays the same role here:
   long enough for a staggered thread to progress into the window. *)
let run_once ?(seed = 42) ?(round_robin = false) ?(quantum = 1)
    ?(adversarial = false) ?(pause_slots = 2000) ?(record_trace = false)
    program mk_backends =
  let config =
    {
      Run.default_config with
      policy = (if round_robin then Run.Round_robin else Run.Random seed);
      quantum;
      adversarial;
      pause_slots;
      record_trace;
    }
  in
  Run.run ~config program (mk_backends program.Ast.names)
