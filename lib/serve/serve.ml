open Velodrome_analysis
module Squeue = Velodrome_util.Squeue

(* Raw monotonic nanoseconds (shared Mclock funnel); serve measures
   queue wait and wall time, both of which must survive NTP steps and
   multi-domain CPU-time accounting (Sys.time counts every domain's
   cycles). *)
let now_ns () = Velodrome_util.Mclock.now_ns ()

type warning_view = { human : string; json : Velodrome_util.Json.t }

type outcome =
  | Checked of { events : int; warnings : warning_view list }
  | Failed of {
      events : int;
      warnings : warning_view list;
      message : string;
    }

type result = {
  index : int;
  path : string;
  outcome : outcome;
  wait_ns : int64;
  check_ns : int64;
}

type stats = {
  streams : int;
  failed : int;
  events : int;
  warnings : int;
  elapsed_ns : int64;
  queue_wait_ns : int64;
  max_resident : int;
  jobs : int;
  queue_capacity : int;
}

type job = { j_index : int; j_path : string; j_enqueued : int64 }

let default_jobs () = Domain.recommended_domain_count ()

(* --- per-stream checking (worker side) -------------------------------------- *)

let render names warnings =
  List.map
    (fun w ->
      {
        human = Format.asprintf "%a" (Warning.pp names) w;
        json = Warning.to_json names w;
      })
    (Warning.dedup_by_label warnings)

let error_line path = function
  | Velodrome_trace.Trace_codec.Corrupt msg ->
    Printf.sprintf "%s: corrupt binary trace: %s" path msg
  | Velodrome_trace.Trace_io.Syntax_error (line, msg) ->
    Printf.sprintf "%s:%d: %s" path line msg
  | Sys_error msg -> msg
  | e -> Printf.sprintf "%s: %s" path (Printexc.to_string e)

(* One stream, one fresh engine, one fresh name table — all private to
   the calling domain. Only rendered strings and Json leave. *)
let check_stream ~backends path =
  match
    Velodrome_stream.Source.with_file path (fun src ->
        let names = src.Velodrome_stream.Source.names in
        let bs = backends names in
        match Velodrome_stream.Driver.run bs src with
        | events, warnings ->
          Checked { events; warnings = render names warnings }
        | exception Velodrome_stream.Driver.Interrupted { events; error } ->
          Failed
            {
              events;
              warnings = render names (List.concat_map Backend.warnings bs);
              message = error_line path error;
            })
  with
  | outcome -> outcome
  (* Header-level damage surfaces before iteration starts. *)
  | exception ((Velodrome_trace.Trace_codec.Corrupt _ | Sys_error _) as e) ->
    Failed { events = 0; warnings = []; message = error_line path e }

(* --- the pool ---------------------------------------------------------------- *)

let run ?jobs ?queue_capacity ~backends ~on_result paths =
  let n = List.length paths in
  let jobs =
    let j = match jobs with Some j -> j | None -> default_jobs () in
    max 1 (min j (max n 1))
  in
  let queue_capacity =
    match queue_capacity with Some c -> max 1 c | None -> 2 * jobs
  in
  let paths = Array.of_list paths in
  let q : job Squeue.t = Squeue.create ~capacity:queue_capacity in
  let queue_capacity = Squeue.capacity q in
  (* Submission may run at most [window] streams ahead of the ordered
     merge: the queue-bounded memory claim, counting queued jobs,
     per-worker streams in flight and buffered out-of-order results. *)
  let window = queue_capacity + jobs in
  let results : result option Atomic.t array =
    Array.init n (fun _ -> Atomic.make None)
  in
  (* Main parks here when it can neither submit nor merge; workers
     broadcast after taking a job (queue space) and after posting a
     result (merge progress). The head-of-line result is re-checked
     under the lock, so a post cannot slip between check and sleep. *)
  let lock = Mutex.create () in
  let progress = Condition.create () in
  let notify () =
    Mutex.lock lock;
    Condition.broadcast progress;
    Mutex.unlock lock
  in
  let worker () =
    let rec loop () =
      match Squeue.pop q with
      | None -> ()
      | Some job ->
        notify ();
        (* queue space freed *)
        let t0 = now_ns () in
        let outcome = check_stream ~backends job.j_path in
        let t1 = now_ns () in
        Atomic.set
          results.(job.j_index)
          (Some
             {
               index = job.j_index;
               path = job.j_path;
               outcome;
               wait_ns = Int64.sub t0 job.j_enqueued;
               check_ns = Int64.sub t1 t0;
             });
        notify ();
        loop ()
    in
    loop ()
  in
  let t_start = now_ns () in
  let domains = Array.init jobs (fun _ -> Domain.spawn worker) in
  let next_submit = ref 0 in
  let next_emit = ref 0 in
  let max_resident = ref 0 in
  let failed = ref 0 in
  let events = ref 0 in
  let warnings = ref 0 in
  let queue_wait = ref 0L in
  Fun.protect
    ~finally:(fun () ->
      Squeue.close q;
      Array.iter Domain.join domains)
    (fun () ->
      while !next_emit < n do
        let progressed = ref false in
        (* Merge every ready head-of-line result, in submission order. *)
        let rec emit () =
          if !next_emit < n then
            match Atomic.get results.(!next_emit) with
            | Some r ->
              Atomic.set results.(!next_emit) None;
              incr next_emit;
              progressed := true;
              (match r.outcome with
              | Checked { events = e; warnings = ws } ->
                events := !events + e;
                warnings := !warnings + List.length ws
              | Failed { events = e; warnings = ws; _ } ->
                incr failed;
                events := !events + e;
                warnings := !warnings + List.length ws);
              queue_wait := Int64.add !queue_wait r.wait_ns;
              on_result r;
              emit ()
            | None -> ()
        in
        emit ();
        if
          !next_submit < n
          && !next_submit - !next_emit < window
          && Squeue.try_push q
               {
                 j_index = !next_submit;
                 j_path = paths.(!next_submit);
                 j_enqueued = now_ns ();
               }
        then begin
          incr next_submit;
          progressed := true;
          let resident = !next_submit - !next_emit in
          if resident > !max_resident then max_resident := resident
        end;
        if (not !progressed) && !next_emit < n then begin
          Mutex.lock lock;
          if Atomic.get results.(!next_emit) = None then
            Condition.wait progress lock;
          Mutex.unlock lock
        end
      done;
      Squeue.close q);
  {
    streams = n;
    failed = !failed;
    events = !events;
    warnings = !warnings;
    elapsed_ns = Int64.sub (now_ns ()) t_start;
    queue_wait_ns = !queue_wait;
    max_resident = !max_resident;
    jobs;
    queue_capacity;
  }

(* --- CLI target expansion ---------------------------------------------------- *)

let trace_entry name =
  Filename.check_suffix name ".velb" || Filename.check_suffix name ".trace"

let expand_targets targets =
  let rec go acc = function
    | [] -> Ok (List.concat (List.rev acc))
    | t :: rest -> (
      match Sys.is_directory t with
      | true ->
        let entries =
          Sys.readdir t |> Array.to_list |> List.filter trace_entry
          |> List.sort compare
          |> List.map (Filename.concat t)
        in
        if entries = [] then
          Error (Printf.sprintf "%s: no .velb or .trace files in directory" t)
        else go (entries :: acc) rest
      | false -> go ([ t ] :: acc) rest
      | exception Sys_error _ ->
        Error (Printf.sprintf "%s: no such file or directory" t))
  in
  go [] targets
