(** The multicore checking service: a domain pool over concurrent trace
    streams.

    One checker instance, many client streams — the "millions of users"
    architecture. Complete [.velb] (or textual) trace files are the unit
    of work, exactly the {!Velodrome_stream.Source}/{!Velodrome_stream.Driver}
    pipeline of the streaming CLI; the pool fans them out to [jobs]
    worker domains through a bounded {!Velodrome_util.Squeue} and merges
    the per-stream results back {e deterministically}.

    Design invariants, each pinned by a test:

    - {b Isolation.} Every stream is checked by a fresh engine instance
      over a fresh name environment, inside one worker domain. No
      analysis state is shared between domains; the only cross-domain
      values are the job descriptions and the finished, fully rendered
      results.
    - {b Determinism.} [on_result] is called on the calling domain, in
      submission order, regardless of completion order or [jobs] — so
      the output of [serve --jobs 8] is byte-identical to [--jobs 1] and
      to a sequential [check-trace] sweep over the same files.
    - {b Backpressure.} The job queue is bounded, and submission never
      runs more than [queue capacity + jobs] streams ahead of the
      ordered merge, so resident state (queued jobs, per-worker engine
      state, buffered results) stays bounded no matter how many streams
      are served. {!stats.max_resident} reports the observed high-water
      mark; the bench validator enforces the bound. *)

type warning_view = {
  human : string;  (** the line check-trace prints, sans indentation *)
  json : Velodrome_util.Json.t;  (** the object check-trace emits *)
}
(** A warning rendered inside the worker domain (name resolution needs
    the stream-local name environment, which never crosses domains). *)

type outcome =
  | Checked of { events : int; warnings : warning_view list }
      (** the stream replayed to the end *)
  | Failed of {
      events : int;  (** events replayed before the failure *)
      warnings : warning_view list;  (** warnings over the valid prefix *)
      message : string;  (** the error line check-trace prints *)
    }
      (** the stream was corrupt, truncated or unreadable — exit-2
          semantics, with the partial result preserved *)

type result = {
  index : int;  (** submission index, 0-based *)
  path : string;
  outcome : outcome;
  wait_ns : int64;  (** time spent queued before a worker picked it up *)
  check_ns : int64;  (** worker time to open, replay and render *)
}

type stats = {
  streams : int;
  failed : int;  (** streams with a [Failed] outcome *)
  events : int;  (** events replayed, summed over streams *)
  warnings : int;  (** warnings reported, summed over streams *)
  elapsed_ns : int64;  (** wall time of the whole run, monotonic clock *)
  queue_wait_ns : int64;  (** sum of per-stream [wait_ns] *)
  max_resident : int;
      (** high-water mark of streams submitted but not yet merged;
          bounded by [queue_capacity + jobs] by construction *)
  jobs : int;  (** worker domains actually used *)
  queue_capacity : int;  (** actual (rounded) job-queue capacity *)
}

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val run :
  ?jobs:int ->
  ?queue_capacity:int ->
  backends:(Velodrome_trace.Names.t -> Velodrome_analysis.Backend.packed list) ->
  on_result:(result -> unit) ->
  string list ->
  stats
(** [run ~backends ~on_result paths] checks every file in [paths] and
    calls [on_result] for each, on the calling domain, in list order.
    [backends] is called once per stream, inside the worker domain, with
    that stream's name environment. [jobs] defaults to
    {!default_jobs}[ ()] clamped to the number of streams;
    [queue_capacity] defaults to [2 * jobs]. Exceptions from
    [on_result] shut the pool down cleanly before propagating. *)

val expand_targets : string list -> (string list, string) Stdlib.result
(** CLI argument helper: each target is a trace file or a directory,
    scanned (sorted, non-recursive) for [*.velb] and [*.trace] entries.
    [Error] names the first unusable target or empty directory. *)
