(* The systematic explorer: a stateless DFS over thread interleavings
   with dynamic partial-order reduction and sleep sets.

   One *scenario* is an init function that builds shared state out of
   [Shim] primitives and returns a list of process bodies plus a final
   invariant check. One *run* executes the scenario under a cooperative
   scheduler: each process is an effect fiber whose pending operation
   (tag, accesses, enabledness guard, executable closure) is visible to
   the scheduler before it runs, so the explorer can

   - enumerate interleavings by choosing which enabled process steps
     next (stateless: every schedule re-runs the scenario from scratch,
     which the deterministic [Shim.reset] id allocator makes exactly
     reproducible);

   - prune with DPOR: when a transition is appended to the trace, the
     last earlier transition dependent on it (classic Flanagan-Godefroid
     race detection, conservatively treating all pairs as co-enabled)
     gets a backtracking point — the chosen process if it was enabled
     there, every enabled process otherwise (the persistent-set
     fallback);

   - prune with sleep sets: a transition already explored from a state
     sleeps in the sibling subtrees until some dependent transition
     wakes it; a state whose every enabled transition sleeps is
     redundant and the run is abandoned;

   - detect violations: a process exception, a failed final check, a
     deadlock (live processes, none enabled — which is also how lost
     wakeups surface), or a depth budget overrun (livelock).

   On violation the failing schedule is minimized — adjacent steps of
   different processes are swapped whenever that reduces context
   switches and the violation still reproduces — and returned as a
   numbered schedule that [replay] re-executes deterministically. *)

type step = { pid : int; tag : string }

type kind =
  | Deadlock of string
  | Check_failed of string
  | Uncaught of string
  | Livelock of string

type stats = { schedules : int; aborted : int; steps : int }

type outcome =
  | Verified of stats
  | Violation of { stats : stats; kind : kind; trace : step list }
  | Budget_exhausted of stats

type scenario = {
  name : string;
  init : unit -> (unit -> unit) list * (unit -> unit);
}

exception Check of string

let require ok msg = if not ok then raise (Check msg)

(* --- processes as effect fibers -------------------------------------------- *)

type pending = {
  tag : string;
  accesses : Shim.access list;
  enabled : unit -> bool;
  run : unit -> unit;
}

type proc = { pid : int; mutable pending : pending option (* None = done *) }

exception Raised of int * exn

let rec mk_handler (p : proc) : (unit, unit) Effect.Shallow.handler =
  let open Effect.Shallow in
  {
    retc = (fun () -> p.pending <- None);
    exnc =
      (fun e ->
        p.pending <- None;
        raise (Raised (p.pid, e)));
    effc =
      (fun (type c) (eff : c Effect.t) ->
        match eff with
        | Shim.Op { tag; accesses; enabled; execute } ->
          Some
            (fun (k : (c, unit) continuation) ->
              p.pending <-
                Some
                  {
                    tag;
                    accesses;
                    enabled;
                    run =
                      (fun () ->
                        continue_with k (execute ()) (mk_handler p));
                  })
        | _ -> None);
  }

let start_proc pid body =
  let p = { pid; pending = None } in
  p.pending <-
    Some
      {
        tag = "start";
        accesses = [];
        enabled = (fun () -> true);
        run =
          (fun () ->
            Effect.Shallow.continue_with (Effect.Shallow.fiber body) ()
              (mk_handler p));
      };
  p

(* Init and final-check code runs outside the scheduler: its operations
   execute immediately, in program order. *)
let sequential (type a) (f : unit -> a) : a =
  let open Effect.Deep in
  match_with f ()
    {
      retc = Fun.id;
      exnc = raise;
      effc =
        (fun (type c) (eff : c Effect.t) ->
          match eff with
          | Shim.Op o ->
            Some (fun (k : (c, _) continuation) -> continue k (o.execute ()))
          | _ -> None);
    }

(* --- the DPOR search tree --------------------------------------------------- *)

let dependent a b =
  List.exists
    (fun (x : Shim.access) ->
      List.exists
        (fun (y : Shim.access) -> x.obj = y.obj && (x.write || y.write))
        b)
    a

(* One node per prefix state of the current trace. [chosen] is the pid
   taken from this state in the current run; [explored] the choices
   whose subtrees are complete; [sleep] the sleep set on entry. Nodes
   for the unchanged prefix persist across runs, accumulating backtrack
   points. *)
type node = {
  mutable chosen : int;
  mutable tag : string;
  mutable accesses : Shim.access list;
  enabled : int list;
  mutable backtrack : int list;
  mutable explored : (int * Shim.access list) list;
  sleep : (int * Shim.access list) list;
}

type tree = { mutable nodes : node array; mutable len : int }

let push_node t n =
  if t.len = Array.length t.nodes then begin
    let bigger = Array.make (max 16 (2 * t.len)) n in
    Array.blit t.nodes 0 bigger 0 t.len;
    t.nodes <- bigger
  end;
  t.nodes.(t.len) <- n;
  t.len <- t.len + 1

(* --- one run ----------------------------------------------------------------- *)

type run_end =
  | Completed  (* all processes finished, final check passed *)
  | Redundant  (* every enabled transition was asleep: pruned *)
  | Violated of kind

(* Execute the scenario once. The first [tree.len] steps follow the
   tree's [chosen] prefix (refreshing tag/accesses for a node whose
   choice was just switched by the backtracking loop); past the prefix,
   extension prefers the previous pid (fewer preemptions, shorter
   counterexamples), appending fresh nodes. [total_steps] accumulates
   across runs for the stats. *)
let run_once scenario tree ~mode ~max_steps ~total_steps =
  Shim.reset ();
  let bodies, final_check = sequential scenario.init in
  let procs = Array.of_list (List.mapi start_proc bodies) in
  let enabled_pids () =
    Array.to_list procs
    |> List.filter_map (fun p ->
           match p.pending with
           | Some pd when pd.enabled () -> Some p.pid
           | _ -> None)
  in
  let live_pids () =
    Array.to_list procs
    |> List.filter_map (fun p ->
           if p.pending = None then None else Some p.pid)
  in
  let blocked_report () =
    live_pids ()
    |> List.map (fun pid ->
           Printf.sprintf "P%d blocked at %s" pid
             (Option.get procs.(pid).pending).tag)
    |> String.concat "; "
  in
  let depth = ref 0 in
  let finish = ref None in
  while !finish = None do
    match live_pids () with
    | [] ->
      finish :=
        Some
          (match sequential final_check with
          | () -> Completed
          | exception Check msg -> Violated (Check_failed msg)
          | exception e -> Violated (Uncaught (Printexc.to_string e)))
    | _ :: _ -> (
      match enabled_pids () with
      | [] -> finish := Some (Violated (Deadlock (blocked_report ())))
      | enabled ->
        if !depth >= max_steps then
          finish :=
            Some
              (Violated
                 (Livelock
                    (Printf.sprintf
                       "depth budget (%d steps) exceeded — possible livelock"
                       max_steps)))
        else begin
          let d = !depth in
          let decided =
            if d < tree.len then begin
              (* Prefix replay: the choice is fixed; refresh its label
                 (the pid may have been switched since the node's
                 creation). *)
              let n = tree.nodes.(d) in
              let c = n.chosen in
              let pd = Option.get procs.(c).pending in
              n.tag <- pd.tag;
              n.accesses <- pd.accesses;
              Some (n, c)
            end
            else begin
              let sleep =
                if d = 0 then []
                else
                  let prev = tree.nodes.(d - 1) in
                  List.filter
                    (fun (q, acc) ->
                      q <> prev.chosen && not (dependent acc prev.accesses))
                    (prev.sleep @ prev.explored)
              in
              let asleep q = List.mem_assoc q sleep in
              let awake = List.filter (fun q -> not (asleep q)) enabled in
              match awake with
              | [] ->
                finish := Some Redundant;
                None
              | _ ->
                let c =
                  let prev_pid =
                    if d = 0 then -1 else tree.nodes.(d - 1).chosen
                  in
                  if List.mem prev_pid awake then prev_pid
                  else List.hd awake
                in
                let pd = Option.get procs.(c).pending in
                let n =
                  {
                    chosen = c;
                    tag = pd.tag;
                    accesses = pd.accesses;
                    enabled;
                    backtrack = (match mode with `Full -> enabled | `Dpor -> []);
                    explored = [];
                    sleep;
                  }
                in
                push_node tree n;
                Some (n, c)
            end
          in
          match decided with
          | None -> ()
          | Some (n, c) ->
            (* DPOR race detection: give every earlier transition
               dependent on this one a backtracking point. Scanning all
               dependent predecessors (not only the deepest, as in
               happens-before-based DPOR) over-approximates the racing
               set, which keeps the search complete in the presence of
               blocking transitions: a disabled operation (a contended
               lock) never executes and so never reports its own races,
               and the one-step-at-a-time propagation of the deepest-only
               rule can be cut short by sleep-set pruning before it
               reaches the true race. Sleep sets absorb the redundancy
               the over-approximation introduces. *)
            (match mode with
            | `Full -> ()
            | `Dpor ->
              for j = d - 1 downto 0 do
                let m = tree.nodes.(j) in
                if m.chosen <> c && dependent m.accesses n.accesses then begin
                  let want = if List.mem c m.enabled then [ c ] else m.enabled in
                  List.iter
                    (fun q ->
                      if not (List.mem q m.backtrack) then
                        m.backtrack <- q :: m.backtrack)
                    want
                end
              done);
            (match (Option.get procs.(c).pending).run () with
            | () -> ()
            | exception Raised (pid, Check msg) ->
              finish :=
                Some
                  (Violated
                     (Check_failed (Printf.sprintf "P%d: %s" pid msg)))
            | exception Raised (pid, e) ->
              finish :=
                Some
                  (Violated
                     (Uncaught
                        (Printf.sprintf "P%d raised %s" pid
                           (Printexc.to_string e)))));
            incr depth;
            incr total_steps
        end)
  done;
  (Option.get !finish, !depth)

(* --- exploration driver ------------------------------------------------------ *)

let trace_of_tree tree depth =
  List.init (min depth tree.len) (fun i ->
      { pid = tree.nodes.(i).chosen; tag = tree.nodes.(i).tag })

(* Pop fully explored suffixes; pick the deepest state that still has an
   unexplored, awake backtracking point; switch its choice. *)
let rec backtrack_step tree =
  if tree.len = 0 then false
  else begin
    let n = tree.nodes.(tree.len - 1) in
    n.explored <- (n.chosen, n.accesses) :: n.explored;
    let spent q = List.mem_assoc q n.explored || List.mem_assoc q n.sleep in
    match List.filter (fun q -> not (spent q)) n.backtrack with
    | [] ->
      tree.len <- tree.len - 1;
      backtrack_step tree
    | c :: _ ->
      n.chosen <- c;
      (* tag/accesses refreshed during the next run's prefix replay *)
      true
  end

let explore ?(mode = `Dpor) ?(max_steps = 5_000) ?(max_schedules = 1_000_000)
    scenario =
  let tree = { nodes = [||]; len = 0 } in
  let schedules = ref 0 in
  let aborted = ref 0 in
  let total_steps = ref 0 in
  let result = ref None in
  while !result = None do
    if !schedules >= max_schedules then
      result :=
        Some
          (Budget_exhausted
             {
               schedules = !schedules;
               aborted = !aborted;
               steps = !total_steps;
             })
    else begin
      let ending, depth = run_once scenario tree ~mode ~max_steps ~total_steps in
      incr schedules;
      (match ending with
      | Completed -> ()
      | Redundant -> incr aborted
      | Violated kind ->
        result :=
          Some
            (Violation
               {
                 stats =
                   {
                     schedules = !schedules;
                     aborted = !aborted;
                     steps = !total_steps;
                   };
                 kind;
                 trace = trace_of_tree tree depth;
               }));
      if !result = None && not (backtrack_step tree) then
        result :=
          Some
            (Verified
               {
                 schedules = !schedules;
                 aborted = !aborted;
                 steps = !total_steps;
               })
    end
  done;
  Option.get !result

(* --- deterministic replay ---------------------------------------------------- *)

(* Follow [plan] exactly; past its end, extend with the same
   prefer-previous policy the explorer uses. Returns the outcome of that
   single schedule ([Verified] = ran to completion, checks passed);
   [max_steps] bounds the extension so that replaying a livelocking plan
   reports [Livelock] instead of diverging. Raises [Invalid_argument] if
   the plan names a process that is not enabled at that point — a plan
   produced by [explore] or [minimize] always replays. *)
let replay ?(max_steps = 5_000) scenario (plan : int list) =
  Shim.reset ();
  let bodies, final_check = sequential scenario.init in
  let procs = Array.of_list (List.mapi start_proc bodies) in
  let trace = ref [] in
  let steps = ref 0 in
  let stats () = { schedules = 1; aborted = 0; steps = !steps } in
  let enabled p =
    match p.pending with Some pd -> pd.enabled () | None -> false
  in
  let violation kind =
    Violation { stats = stats (); kind; trace = List.rev !trace }
  in
  let rec go plan last =
    if Array.for_all (fun p -> p.pending = None) procs then
      match sequential final_check with
      | () -> Verified (stats ())
      | exception Check msg -> violation (Check_failed msg)
      | exception e -> violation (Uncaught (Printexc.to_string e))
    else if !steps >= max_steps then
      violation
        (Livelock
           (Printf.sprintf
              "depth budget (%d steps) exceeded — possible livelock" max_steps))
    else begin
      let all_enabled =
        Array.to_list procs |> List.filter (fun p -> enabled p)
        |> List.map (fun p -> p.pid)
      in
      match (plan, all_enabled) with
      | [], [] ->
        let blocked =
          Array.to_list procs
          |> List.filter_map (fun p ->
                 Option.map
                   (fun (pd : pending) ->
                     Printf.sprintf "P%d blocked at %s" p.pid pd.tag)
                   p.pending)
          |> String.concat "; "
        in
        violation (Deadlock blocked)
      | c :: _, _ when not (enabled procs.(c)) ->
        invalid_arg
          (Printf.sprintf "Explore.replay: P%d not enabled at step %d" c !steps)
      | c :: rest, _ -> step c rest
      | [], e :: _ ->
        let c = if List.mem last all_enabled then last else e in
        step c plan
    end
  and step c rest =
    let pd = Option.get procs.(c).pending in
    trace := { pid = c; tag = pd.tag } :: !trace;
    incr steps;
    match pd.run () with
    | () -> go rest c
    | exception Raised (pid, Check msg) ->
      violation (Check_failed (Printf.sprintf "P%d: %s" pid msg))
    | exception Raised (pid, e) ->
      violation
        (Uncaught (Printf.sprintf "P%d raised %s" pid (Printexc.to_string e)))
  in
  go plan (-1)

(* --- counterexample minimization --------------------------------------------- *)

let same_kind a b =
  match (a, b) with
  | Deadlock _, Deadlock _
  | Check_failed _, Check_failed _
  | Uncaught _, Uncaught _
  | Livelock _, Livelock _ ->
    true
  | _ -> false

let switches plan =
  let rec go n = function
    | a :: (b :: _ as rest) -> go (if a = b then n else n + 1) rest
    | _ -> n
  in
  go 0 plan

(* Greedy context-switch reduction: try swapping adjacent steps of
   different processes; keep a swap when the plan still replays to the
   same violation kind with fewer switches. The result is locally
   minimal in preemptions — short enough to read, deterministic to
   replay. *)
let minimize ?max_steps scenario kind (plan : int list) =
  let reproduces p =
    match replay ?max_steps scenario p with
    | Violation v -> if same_kind v.kind kind then Some p else None
    | _ -> None
    | exception Invalid_argument _ -> None
  in
  let swap i plan =
    List.mapi
      (fun j x ->
        if j = i then List.nth plan (i + 1)
        else if j = i + 1 then List.nth plan i
        else x)
      plan
  in
  let plan = ref plan in
  let improved = ref true in
  while !improved do
    improved := false;
    let n = List.length !plan in
    for i = 0 to n - 2 do
      let cand = swap i !plan in
      if switches cand < switches !plan then
        match reproduces cand with
        | Some p ->
          plan := p;
          improved := true
        | None -> ()
    done
  done;
  !plan

(* --- reporting ---------------------------------------------------------------- *)

let pp_kind ppf = function
  | Deadlock msg -> Format.fprintf ppf "deadlock: %s" msg
  | Check_failed msg -> Format.fprintf ppf "invariant failed: %s" msg
  | Uncaught msg -> Format.fprintf ppf "uncaught exception: %s" msg
  | Livelock msg -> Format.fprintf ppf "%s" msg

(* A livelocking schedule ends in a repeating cycle as long as the depth
   budget; print the cycle once and say how often it repeats, rather
   than thousands of identical lines. *)
let tail_cycle (trace : step list) =
  let arr = Array.of_list trace in
  let n = Array.length arr in
  let eq i j = arr.(i).pid = arr.(j).pid && arr.(i).tag = arr.(j).tag in
  let found = ref None in
  let p = ref 1 in
  while !found = None && !p <= 16 && 3 * !p <= n do
    let i = ref (n - !p - 1) in
    while !i >= 0 && eq !i (!i + !p) do
      decr i
    done;
    (* First index of the repeating tail, aligned to a whole cycle. *)
    let start = !i + 1 + ((n - (!i + 1)) mod !p) in
    if (n - start) / !p >= 3 && n - start >= 20 then found := Some (!p, start);
    incr p
  done;
  !found

let pp_step ppf i { pid; tag } = Format.fprintf ppf "  %3d  P%d  %s@." i pid tag

let pp_trace ppf trace =
  match tail_cycle trace with
  | None -> List.iteri (fun i s -> pp_step ppf i s) trace
  | Some (p, start) ->
    let n = List.length trace in
    List.iteri (fun i s -> if i < start + p then pp_step ppf i s) trace;
    Format.fprintf ppf
      "  ...  (steps %d-%d repeat the previous %d-step cycle, %d iterations \
       in all)@."
      (start + p) (n - 1) p
      ((n - start) / p)

let pp_outcome ppf = function
  | Verified { schedules; aborted; steps } ->
    Format.fprintf ppf
      "verified: %d interleavings (%d pruned as redundant), %d transitions"
      schedules aborted steps
  | Budget_exhausted { schedules; _ } ->
    Format.fprintf ppf "budget exhausted after %d interleavings" schedules
  | Violation { stats; kind; trace } ->
    Format.fprintf ppf "violation after %d interleavings: %a@.schedule:@.%a"
      stats.schedules pp_kind kind pp_trace trace

(* The full pipeline for a failing scenario: explore, minimize the
   counterexample, and return the minimized violation (with the trace
   re-labelled by a final replay). *)
let explore_minimized ?mode ?max_steps ?max_schedules scenario =
  match explore ?mode ?max_steps ?max_schedules scenario with
  | Violation { stats; kind; trace } -> (
    let plan = List.map (fun (s : step) -> s.pid) trace in
    let plan =
      match kind with
      | Livelock _ -> plan (* budget overruns don't shrink *)
      | _ -> minimize ?max_steps scenario kind plan
    in
    match replay ?max_steps scenario plan with
    | Violation v -> Violation { stats; kind = v.kind; trace = v.trace }
    | other -> other (* unreachable: minimize only keeps reproducing plans *))
  | other -> other
