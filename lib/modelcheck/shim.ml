(* Traced synchronization primitives (the DSCheck idea, rebuilt in-tree
   and dependency-free). Every operation — atomic access, plain-cell
   access, mutex, condition, [cpu_relax] — performs one effect carrying:

   - a printable tag (for counterexample schedules),
   - the objects it touches and whether it writes them (the DPOR
     dependency relation),
   - an enabledness guard (blocking is modelled as a transition that is
     disabled until some other transition's side effect flips the
     guard: a held mutex, an unbumped condition generation),
   - the operation itself, run only when the explorer schedules it.

   The explorer ([Explore]) catches the effect, parks the continuation
   and decides when — and in which interleavings — the operation
   executes. Code under test is therefore written once against this API
   (structurally identical to the [Stdlib] modules, so a functor like
   [Squeue.Make] accepts either) and gains exhaustive schedule coverage
   without a single source change.

   Everything here assumes the single-domain cooperative world of the
   explorer: backing state is plain mutable fields, made safe because
   operations only ever run one at a time, between scheduling points.
   The explored semantics is sequential consistency; see DESIGN
   "Model-checked concurrency" for why that is the right model for the
   queue's publication protocol. *)

type access = { obj : int; write : bool }

type _ Effect.t +=
  | Op : {
      tag : string;
      accesses : access list;
      enabled : unit -> bool;
      execute : unit -> 'r;
    }
      -> 'r Effect.t

(* Object ids are allocation-ordered within one run; [reset] is called by
   the explorer before every run so ids (and thus tags and schedules)
   are stable across replays. *)
let next_id = ref 0
let reset () = next_id := 0

let fresh_id () =
  let i = !next_id in
  incr next_id;
  i

let always = fun () -> true

let op ?(enabled = always) ~tag ~accesses execute =
  Effect.perform (Op { tag; accesses; enabled; execute })

let rd obj = { obj; write = false }
let wr obj = { obj; write = true }

module Atomic = struct
  type 'a t = { id : int; mutable v : 'a }

  let make v = { id = fresh_id (); v }

  let get a =
    op ~tag:(Printf.sprintf "get a%d" a.id) ~accesses:[ rd a.id ] (fun () ->
        a.v)

  let set a v =
    op ~tag:(Printf.sprintf "set a%d" a.id) ~accesses:[ wr a.id ] (fun () ->
        a.v <- v)

  (* Physical equality, like [Stdlib.Atomic.compare_and_set]. *)
  let compare_and_set a old nv =
    op ~tag:(Printf.sprintf "cas a%d" a.id) ~accesses:[ wr a.id ] (fun () ->
        if a.v == old then begin
          a.v <- nv;
          true
        end
        else false)

  let incr a =
    op ~tag:(Printf.sprintf "incr a%d" a.id) ~accesses:[ wr a.id ] (fun () ->
        a.v <- a.v + 1)

  let decr a =
    op ~tag:(Printf.sprintf "decr a%d" a.id) ~accesses:[ wr a.id ] (fun () ->
        a.v <- a.v - 1)
end

module Plain = struct
  type 'a t = { id : int; mutable v : 'a }

  let make v = { id = fresh_id (); v }

  let get c =
    op ~tag:(Printf.sprintf "read p%d" c.id) ~accesses:[ rd c.id ] (fun () ->
        c.v)

  let set c v =
    op ~tag:(Printf.sprintf "write p%d" c.id) ~accesses:[ wr c.id ] (fun () ->
        c.v <- v)
end

module Mutex = struct
  type t = { id : int; mutable held : bool }

  let create () = { id = fresh_id (); held = false }

  (* Acquisition is one guarded transition: disabled while held, so a
     blocked locker simply cannot be scheduled until the unlock runs. *)
  let lock m =
    op
      ~tag:(Printf.sprintf "lock m%d" m.id)
      ~accesses:[ wr m.id ]
      ~enabled:(fun () -> not m.held)
      (fun () -> m.held <- true)

  let unlock m =
    op
      ~tag:(Printf.sprintf "unlock m%d" m.id)
      ~accesses:[ wr m.id ]
      (fun () -> m.held <- false)
end

module Condition = struct
  (* A condition is a broadcast generation counter: waiters atomically
     release the mutex and remember the generation, park until a
     broadcast bumps it, then reacquire. This models Stdlib.Condition
     precisely for broadcast-only users (Squeue never uses [signal]) and
     keeps lost wakeups observable: a broadcast that happens before the
     release step does not bump the waiter's remembered generation, so
     the waiter sleeps forever and the explorer reports the deadlock. *)
  type t = { id : int; mutable gen : int }

  let create () = { id = fresh_id (); gen = 0 }

  let wait (c : t) (m : Mutex.t) =
    let g =
      op
        ~tag:(Printf.sprintf "wait-release c%d/m%d" c.id m.id)
        ~accesses:[ wr m.id; rd c.id ]
        (fun () ->
          m.held <- false;
          c.gen)
    in
    op
      ~tag:(Printf.sprintf "wait-wake c%d" c.id)
      ~accesses:[ rd c.id ]
      ~enabled:(fun () -> c.gen > g)
      (fun () -> ());
    op
      ~tag:(Printf.sprintf "wait-relock m%d" m.id)
      ~accesses:[ wr m.id ]
      ~enabled:(fun () -> not m.held)
      (fun () -> m.held <- true)

  let broadcast c =
    op
      ~tag:(Printf.sprintf "broadcast c%d" c.id)
      ~accesses:[ wr c.id ]
      (fun () -> c.gen <- c.gen + 1)
end

(* A pure scheduling point: independent of everything, so DPOR never
   branches on it — it only adds the depth a spin loop deserves. *)
let cpu_relax () = op ~tag:"cpu_relax" ~accesses:[] (fun () -> ())

(* Spin budget for code functorized over a [spin_budget] knob: one spin
   keeps every spin-then-park path reachable at explorable depth. *)
let spin_budget = 1
