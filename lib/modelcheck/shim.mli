(** Traced synchronization primitives for the in-tree model checker.

    Structurally compatible with [Stdlib.Atomic] / [ref] /
    [Stdlib.Mutex] / [Stdlib.Condition], so code functorized over its
    primitives (e.g. [Velodrome_util.Squeue.Make]) runs unchanged under
    the {!Explore} scheduler. Every operation performs the {!Op} effect;
    outside an explorer run that effect is unhandled, so this module is
    only usable from inside {!Explore.explore} / {!Explore.replay}
    scenarios (including their init and final-check phases, which
    execute ops directly). *)

type access = { obj : int; write : bool }
(** One object touched by an operation. Two operations are dependent
    (DPOR sense) iff they touch a common object and at least one
    writes it. *)

type _ Effect.t +=
  | Op : {
      tag : string;  (** printable, for counterexample schedules *)
      accesses : access list;
      enabled : unit -> bool;
          (** guard: blocking = disabled until another transition's
              side effect flips this *)
      execute : unit -> 'r;  (** run only when scheduled *)
    }
      -> 'r Effect.t

val reset : unit -> unit
(** Reset the object-id allocator; called by the explorer before each
    run so ids and schedules are stable across replays. *)

val op :
  ?enabled:(unit -> bool) ->
  tag:string ->
  accesses:access list ->
  (unit -> 'r) ->
  'r
(** Perform one traced operation. Building block for the modules below
    and for scenario-specific helpers. *)

val rd : int -> access
val wr : int -> access

module Atomic : sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
  val compare_and_set : 'a t -> 'a -> 'a -> bool
  val incr : int t -> unit
  val decr : int t -> unit
end

module Plain : sig
  type 'a t

  val make : 'a -> 'a t
  val get : 'a t -> 'a
  val set : 'a t -> 'a -> unit
end

module Mutex : sig
  type t

  val create : unit -> t
  val lock : t -> unit
  val unlock : t -> unit
end

module Condition : sig
  type t

  val create : unit -> t

  val wait : t -> Mutex.t -> unit
  (** Three transitions: atomically release the mutex and record the
      broadcast generation; park until a broadcast bumps it; reacquire.
      Exact for broadcast-only users. *)

  val broadcast : t -> unit
end

val cpu_relax : unit -> unit
(** A pure scheduling point, independent of every other operation. *)

val spin_budget : int
(** 1 — keeps spin-then-park paths reachable at explorable depth. *)
