(** The systematic concurrency explorer: exhaustive interleaving
    enumeration of a small scenario written against {!Shim}, with
    dynamic partial-order reduction (sleep sets + persistent-set
    fallback), deadlock/livelock detection, and minimized, replayable
    counterexample schedules. Dependency-free; runs in one domain. *)

type step = { pid : int; tag : string }

type kind =
  | Deadlock of string
      (** live processes, none enabled (includes lost wakeups) *)
  | Check_failed of string  (** a {!require} in the scenario failed *)
  | Uncaught of string  (** a process or the final check raised *)
  | Livelock of string  (** per-run depth budget exceeded *)

type stats = {
  schedules : int;  (** runs executed, including pruned ones *)
  aborted : int;  (** runs pruned as redundant by sleep sets *)
  steps : int;  (** transitions executed across all runs *)
}

type outcome =
  | Verified of stats  (** every inequivalent interleaving explored *)
  | Violation of { stats : stats; kind : kind; trace : step list }
  | Budget_exhausted of stats  (** [max_schedules] hit: NOT verified *)

type scenario = {
  name : string;
  init : unit -> (unit -> unit) list * (unit -> unit);
      (** Build shared state from {!Shim} primitives; return the process
          bodies and a final invariant check, both of which may use
          {!Shim} operations and {!require}. Must be deterministic: the
          explorer re-runs it for every schedule and for replays. *)
}

exception Check of string

val require : bool -> string -> unit
(** [require ok msg] raises [Check msg] when [ok] is false; reported as
    [Check_failed] with the schedule that led there. *)

val explore :
  ?mode:[ `Dpor | `Full ] ->
  ?max_steps:int ->
  ?max_schedules:int ->
  scenario ->
  outcome
(** Explore every inequivalent interleaving. [`Dpor]` (default) prunes
    with dynamic partial-order reduction + sleep sets; [`Full]` explores
    with sleep sets only (every enabled transition is a backtracking
    point) — slower, useful as a cross-check of the reduction.
    [max_steps] (default 5000) bounds one run's depth (overruns are
    reported as [Livelock]); [max_schedules] (default 1_000_000) bounds
    the run count ([Budget_exhausted] — treat as a failure in CI). *)

val explore_minimized :
  ?mode:[ `Dpor | `Full ] ->
  ?max_steps:int ->
  ?max_schedules:int ->
  scenario ->
  outcome
(** {!explore}, then greedily minimize any counterexample's context
    switches while it still reproduces, returning the violation with the
    minimized schedule. *)

val replay : ?max_steps:int -> scenario -> int list -> outcome
(** [replay scenario plan] deterministically re-executes one schedule
    (the [pid] sequence of a violation trace); past the plan's end it
    extends with the explorer's default policy. [Verified] means the
    schedule ran to completion and the final check passed; [max_steps]
    (default 5000) turns a diverging extension into [Livelock]. Raises
    [Invalid_argument] if the plan is not runnable. *)

val minimize : ?max_steps:int -> scenario -> kind -> int list -> int list
(** Greedy context-switch reduction of a failing plan; every kept
    transformation replays to the same violation kind. *)

val switches : int list -> int
(** Number of context switches in a plan (adjacent unequal pids). *)

val pp_outcome : Format.formatter -> outcome -> unit
(** Render an outcome; violations include the numbered schedule, with a
    repeating livelock tail printed once with its iteration count. *)
