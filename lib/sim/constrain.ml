open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_util

type waypoint = { wthread : int; wpath : int list }

type plan = waypoint list

type reason =
  | Lock_window of Lock.t
  | Order_contradiction of waypoint
  | Unreached of waypoint
  | Step_budget

let path_string p = String.concat "." (List.map string_of_int p)

let waypoint_string w = Printf.sprintf "t%d@%s" w.wthread (path_string w.wpath)

let reason_to_string = function
  | Lock_window m ->
    Printf.sprintf "lock %d held across the witness window" (Lock.to_int m)
  | Order_contradiction w ->
    Printf.sprintf "plan contradicts program order at %s" (waypoint_string w)
  | Unreached w ->
    Printf.sprintf "thread finished before reaching %s" (waypoint_string w)
  | Step_budget -> "step budget exhausted"

type outcome =
  | Scheduled of { trace : Trace.t; forced : int }
  | Infeasible of { at : int; reason : reason }

(* Round-robin pick: first runnable thread at or after the cursor (same
   policy as [Run.run] with quantum 1), restricted to [eligible]. *)
let pick_rr interp n cursor eligible =
  let candidates = ref [] in
  for i = n - 1 downto 0 do
    if Interp.status interp i = Interp.Runnable && eligible i then
      candidates := i :: !candidates
  done;
  match !candidates with
  | [] -> None
  | cs ->
    let chosen =
      match List.find_opt (fun c -> c >= !cursor) cs with
      | Some c -> c
      | None -> List.hd cs
    in
    cursor := (chosen + 1) mod max n 1;
    Some chosen

let replay ?(max_steps = 200_000) program plan =
  let interp = Interp.create program in
  let n = Interp.thread_count interp in
  let wps = Array.of_list plan in
  let total = Array.length wps in
  let k = ref 0 in
  let ops = Vec.create () in
  let forced = ref 0 in
  let cursor = ref 0 in
  let steps = ref 0 in
  let result = ref None in
  (* Thread [i] still owes a waypoint strictly after the current one; such
     threads are frozen until their waypoint comes up. *)
  let owes_later i =
    let rec go j = j < total && (wps.(j).wthread = i || go (j + 1)) in
    go (!k + 1)
  in
  let later_waypoint_of i p =
    let rec go j =
      if j >= total then None
      else if wps.(j).wthread = i && wps.(j).wpath = p then Some wps.(j)
      else go (j + 1)
    in
    go (!k + 1)
  in
  let record op =
    if !k < total then incr forced;
    Vec.push ops op
  in
  (* One free step of an eligible thread; true when a thread was stepped
     (even if it only spun or blocked — the point is someone was able to
     take a turn at all). *)
  let step_free eligible =
    match pick_rr interp n cursor eligible with
    | None -> false
    | Some i ->
      (match Interp.peek interp i with
      | `Finished | `Working -> ()
      | `Op _ -> (
        match Interp.commit interp i with
        | `Blocked -> ()
        | `Emitted op -> record op));
      true
  in
  while !result = None && !steps < max_steps do
    incr steps;
    if !k >= total then begin
      (* Plan satisfied: run everyone to completion, round-robin. *)
      if not (step_free (fun _ -> true)) then
        (* All finished, or the program itself deadlocked; either way the
           forced prefix is complete, so report the trace we have. *)
        result :=
          Some (Scheduled { trace = Trace.of_array (Vec.to_array ops); forced = !forced })
    end
    else begin
      let wp = wps.(!k) in
      let tw = wp.wthread in
      let infeasible reason = result := Some (Infeasible { at = !k; reason }) in
      if tw < 0 || tw >= n then infeasible (Unreached wp)
      else
        let unconstrained i = i <> tw && not (owes_later i) in
        match Interp.status interp tw with
        | Interp.Finished -> infeasible (Unreached wp)
        | Interp.Blocked m ->
          let owner_frozen =
            match Interp.lock_owner interp m with
            | Some o -> o <> tw && owes_later o
            | None -> false
          in
          if owner_frozen then infeasible (Lock_window m)
          else if not (step_free unconstrained) then
            (* Nobody unconstrained can run and the waypoint thread is
               blocked: the window is closed by mutual exclusion. *)
            infeasible (Lock_window m)
        | Interp.Runnable -> (
          match Interp.peek interp tw with
          | `Finished -> ()
          | `Working ->
            (* The waypoint thread yielded (spin loop / compute): let the
               unconstrained threads make progress toward unblocking it. *)
            ignore (step_free unconstrained)
          | `Op _ -> (
            match Interp.pending_path interp tw with
            | Some p when p = wp.wpath -> (
              match Interp.commit interp tw with
              | `Blocked -> ()
              | `Emitted op ->
                record op;
                incr k)
            | Some p -> (
              match later_waypoint_of tw p with
              | Some w -> infeasible (Order_contradiction w)
              | None -> (
                (* Intermediate operation on the way to the waypoint. *)
                match Interp.commit interp tw with
                | `Blocked -> ()
                | `Emitted op -> record op))
            | None -> infeasible (Unreached wp)))
    end
  done;
  match !result with
  | Some r -> r
  | None ->
    if !k >= total then
      Scheduled { trace = Trace.of_array (Vec.to_array ops); forced = !forced }
    else Infeasible { at = !k; reason = Step_budget }

let observe ?(max_steps = 200_000) program =
  let interp = Interp.create program in
  let n = Interp.thread_count interp in
  let out = Vec.create () in
  let cursor = ref 0 in
  let steps = ref 0 in
  let live = ref true in
  while !live && !steps < max_steps do
    incr steps;
    match pick_rr interp n cursor (fun _ -> true) with
    | None -> live := false
    | Some i -> (
      match Interp.peek interp i with
      | `Finished | `Working -> ()
      | `Op _ -> (
        let path =
          Option.value ~default:[] (Interp.pending_path interp i)
        in
        match Interp.commit interp i with
        | `Blocked -> ()
        | `Emitted op -> Vec.push out (op, path)))
  done;
  Vec.to_array out
