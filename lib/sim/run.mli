(** Scheduling and execution.

    Drives an {!Interp.t} under a scheduling policy, dispatching each
    emitted event to the attached analysis back-ends — the moral
    equivalent of RoadRunner running an instrumented program on the JVM.

    The {b adversarial} mode implements Section 5's scheduler guidance:
    before committing an operation, the runner asks every back-end for a
    pause hint (the Atomizer flags racy accesses inside atomic blocks);
    on a hint the thread is suspended for [pause_slots] scheduling
    decisions — the analogue of the paper's 100 ms delay — so that other
    threads may interpose a conflicting operation and turn a potential
    violation into a real, Velodrome-checkable one. A thread is given one
    un-pausable commit after each pause so hints cannot livelock it. *)

open Velodrome_trace
open Velodrome_analysis

type policy =
  | Round_robin
  | Random of int  (** seed *)

type pause_on =
  | Pause_all  (** pause on any hinted operation *)
  | Pause_writes_only
      (** the paper's §5 alternative: "pausing writes but not reads" *)

type config = {
  policy : policy;
  quantum : int;
      (** events a chosen thread runs before the next scheduling
          decision. 1 models free interleaving (a multiprocessor); larger
          values model coarse single-core time slices. *)
  adversarial : bool;
  pause_slots : int;  (** suspension length, in scheduling decisions *)
  pause_on : pause_on;
  never_pause : int list;
      (** thread ids exempt from pausing — §5's "allowing some threads to
          never pause" *)
  max_steps : int;  (** bound on scheduling iterations *)
  record_trace : bool;
  emit_reentrant : bool;
  observe : (Interp.obs -> unit) option;
      (** per-instruction execution hook ({!Interp.obs}), used by the
          value-analysis soundness gate; [None] costs nothing *)
}

val default_config : config
(** Round-robin, non-adversarial, 20 pause slots, 1_000_000 steps, no
    trace recording. *)

type result = {
  events : int;  (** operations emitted *)
  trace : Trace.t option;
  deadlocked : bool;
  pauses : int;  (** adversarial suspensions triggered *)
  warnings : Warning.t list;
      (** back-end warnings, plus a [Deadlock] warning if one occurred *)
  final : Interp.t;  (** inspect final memory *)
}

val run : ?config:config -> Ast.program -> Backend.packed list -> result
