(** Random structured programs for differential testing.

    Unlike {!Velodrome_trace.Gen}, which emits flat event traces, this
    generator produces whole {!Ast.program}s — loops, branches, nested
    sync and atomic blocks — so the static pre-pass
    ([Velodrome_statics]) and the dynamic engines can be compared on the
    same source. Programs are well-formed by construction (balanced lock
    discipline, bounded loops) and deliberately mix provably-atomic
    blocks (consistently guarded or thread-local state) with racy ones,
    so both verdicts of the reduction check occur with useful frequency.

    Programs with at least three threads usually also carry a
    single-writer/many-reader publication family: one variable written by
    thread 0 under {e every} per-reader pair lock and read by each other
    thread under its own distinct pair lock, with a lock-guarded flag
    handshake ordering all writes before any read. The variable is
    race-free pairwise (each conflicting pair shares a lock) but has no
    global guard, exercising exactly the precision the pairwise race
    detector adds over the whole-variable common-lock rule. *)

type config = {
  max_threads : int;  (** threads drawn from [2 .. max_threads] *)
  vars : int;  (** shared variables (half guarded, half free) *)
  locks : int;
  top_items : int;  (** top-level items per thread *)
}

val default : config

type info = {
  families : string list;
      (** which structured families the program carries — any of
          ["publication"], ["snapshot"], ["latent"] and ["dispatch"], or
          ["core"] when only the random mix was emitted. Gate failures
          report this so a failing generated program can be triaged by
          shape. The ["latent"] family carries violations (deferred
          publish, write skew) that are serializable under plain
          round-robin and under any single bounded scheduler pause, but
          violable under a targeted interleaving — seed material for the
          prediction study. The ["dispatch"] family replicates one body
          that switches writer/reader roles on the thread-id register:
          provable only by the tid-specialized value analysis, which
          kills every replica's foreign arms. *)
}

val generate : ?config:config -> Velodrome_util.Rng.t -> Ast.program
(** Deterministic in the generator state: equal seeds give equal
    programs. *)

val generate_info : ?config:config -> Velodrome_util.Rng.t -> Ast.program * info
(** [generate] plus the family breakdown of the emitted program. *)
