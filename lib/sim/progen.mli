(** Random structured programs for differential testing.

    Unlike {!Velodrome_trace.Gen}, which emits flat event traces, this
    generator produces whole {!Ast.program}s — loops, branches, nested
    sync and atomic blocks — so the static pre-pass
    ([Velodrome_statics]) and the dynamic engines can be compared on the
    same source. Programs are well-formed by construction (balanced lock
    discipline, bounded loops) and deliberately mix provably-atomic
    blocks (consistently guarded or thread-local state) with racy ones,
    so both verdicts of the reduction check occur with useful frequency. *)

type config = {
  max_threads : int;  (** threads drawn from [2 .. max_threads] *)
  vars : int;  (** shared variables (half guarded, half free) *)
  locks : int;
  top_items : int;  (** top-level items per thread *)
}

val default : config

val generate : ?config:config -> Velodrome_util.Rng.t -> Ast.program
(** Deterministic in the generator state: equal seeds give equal
    programs. *)
