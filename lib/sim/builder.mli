(** Embedded-DSL construction of {!Ast.program}s.

    Workloads and examples build programs in OCaml through this module;
    the textual front-end ({!Velodrome_lang}) produces the same AST from
    [.vel] source. A builder owns the program's {!Velodrome_trace.Names.t}
    and hands out interned variables, locks and labels by name. *)

open Velodrome_trace
open Velodrome_trace.Ids

type t

val create : unit -> t
val names : t -> Names.t

val var : ?init:int -> t -> string -> Var.t
(** Declare (or look up) a shared variable. [init] sets the initial value
    on first declaration. *)

val volatile : ?init:int -> t -> string -> Var.t
val lock : t -> string -> Lock.t
val label : t -> string -> Label.t

val fresh_reg : t -> Ast.reg
(** Registers are per-thread; the builder only hands out indices, so
    using the same index in two threads refers to two distinct
    registers. Indices from [fresh_reg] start after {!Ast.tid_reg}. *)

val thread : t -> Ast.stmt list -> unit
(** Append a thread with the given body. *)

val threads : t -> int -> (int -> Ast.stmt list) -> unit
(** [threads b n body] appends [n] threads; [body i] builds the body of
    the [i]-th (they may also branch on {!Ast.tid_reg} at runtime). *)

val thread_count : t -> int
(** Threads appended so far — the id the next appended thread will get. *)

val program : t -> Ast.program

(** Statement and expression shorthands. *)

val ( +: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( -: ) : Ast.expr -> Ast.expr -> Ast.expr
val ( *: ) : Ast.expr -> Ast.expr -> Ast.expr
val i : int -> Ast.expr
val r : Ast.reg -> Ast.expr
val ( ==: ) : Ast.expr -> Ast.expr -> Ast.cond
val ( <>: ) : Ast.expr -> Ast.expr -> Ast.cond
val ( <: ) : Ast.expr -> Ast.expr -> Ast.cond
val ( >=: ) : Ast.expr -> Ast.expr -> Ast.cond

val read : Ast.reg -> Var.t -> Ast.stmt
val write : Var.t -> Ast.expr -> Ast.stmt
val local : Ast.reg -> Ast.expr -> Ast.stmt
val acquire : Lock.t -> Ast.stmt
val release : Lock.t -> Ast.stmt

val sync : Lock.t -> Ast.stmt list -> Ast.stmt list
(** Java's [synchronized]: acquire, body, release — spliced inline. *)

val atomic : Label.t -> Ast.stmt list -> Ast.stmt
val if_ : Ast.cond -> Ast.stmt list -> Ast.stmt list -> Ast.stmt
val while_ : Ast.cond -> Ast.stmt list -> Ast.stmt
val work : int -> Ast.stmt
val yield : Ast.stmt

val spin_until : t -> Var.t -> Ast.expr -> Ast.stmt list
(** Busy-wait until the (volatile) variable equals the expression,
    re-reading it every iteration. *)

val incr_var : t -> Var.t -> Ast.stmt list
(** Unsynchronized read-modify-write: [x := x + 1] via a fresh register. *)
