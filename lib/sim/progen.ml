open Velodrome_trace.Ids
module Rng = Velodrome_util.Rng

type config = {
  max_threads : int;
  vars : int;
  locks : int;
  top_items : int;
}

let default = { max_threads = 4; vars = 6; locks = 3; top_items = 4 }

(* Shared generator state. Variable discipline is fixed up front and the
   generator never violates it, so every program is well-formed by
   construction (Check.check_program accepts it) while still covering the
   whole mover spectrum:

   - [guarded] variables carry a designated guard lock and are only ever
     accessed inside [sync] of that lock — consistently guarded, hence
     both-movers;
   - [free] variables are accessed bare or under a randomly chosen lock —
     racy, hence (usually) non-movers and a source of genuine dynamic
     atomicity violations for the soundness gate to chew on;
   - one private variable per thread is touched only by its owner —
     thread-local, hence a both-mover. *)
type ctx = {
  b : Builder.t;
  rng : Rng.t;
  locks : Lock.t array;
  guarded : (Var.t * Lock.t) array;
  free : Var.t array;
  mutable labels : int;
}

(* Single-writer/many-reader publication: thread 0 writes [pub] holding
   every per-reader pair lock, then raises [flag] under the handshake
   lock; reader [t] re-checks the flag under the handshake lock and only
   then reads [pub] under its own pair lock [pair.(t-1)]. Every
   conflicting access pair thus shares one pair lock — statically
   race-free under the pairwise rule — yet no single lock covers all
   sites, so the legacy global-guard rule cannot prove the enclosing
   atomic blocks. The flag handshake orders every write before any read
   on every schedule, which keeps the dynamic race detectors (Eraser,
   happens-before) quiet too. *)
type publish = {
  pub : Var.t;
  flag : Var.t;
  handshake : Lock.t;
  pair : Lock.t array;  (** pair.(t-1) guards writer vs. reader [t] *)
}

let fresh_label ctx =
  ctx.labels <- ctx.labels + 1;
  Builder.label ctx.b (Printf.sprintf "gen.b%d" ctx.labels)

let access ctx v =
  let reg = Builder.fresh_reg ctx.b in
  if Rng.bool ctx.rng then Builder.read reg v
  else Builder.write v (Builder.i (Rng.int ctx.rng 64))

let guarded_access ctx =
  let v, m = Rng.choose ctx.rng ctx.guarded in
  Builder.sync m [ access ctx v ]

let free_access ctx = [ access ctx (Rng.choose ctx.rng ctx.free) ]

(* Random statements; [depth] bounds the nesting of if/while/atomic. *)
let rec random_stmts ctx ~depth n =
  List.concat (List.init n (fun _ -> random_item ctx ~depth))

and random_item ctx ~depth =
  match Rng.int ctx.rng (if depth <= 0 then 4 else 7) with
  | 0 -> guarded_access ctx
  | 1 -> free_access ctx
  | 2 -> [ Builder.work (1 + Rng.int ctx.rng 3) ]
  | 3 -> [ Builder.yield ]
  | 4 ->
    let reg = Builder.fresh_reg ctx.b in
    let v = Rng.choose ctx.rng ctx.free in
    [
      Builder.read reg v;
      Builder.if_
        Builder.(r reg <: i 32)
        (random_stmts ctx ~depth:(depth - 1) (1 + Rng.int ctx.rng 2))
        (random_stmts ctx ~depth:(depth - 1) (Rng.int ctx.rng 2));
    ]
  | 5 ->
    let k = Builder.fresh_reg ctx.b in
    let n = 1 + Rng.int ctx.rng 3 in
    [
      Builder.local k (Builder.i 0);
      Builder.while_
        Builder.(r k <: i n)
        (random_stmts ctx ~depth:(depth - 1) (1 + Rng.int ctx.rng 2)
        @ [ Builder.local k Builder.(r k +: i 1) ]);
    ]
  | _ -> [ atomic_block ctx ~depth:(depth - 1) ]

and atomic_block ctx ~depth =
  let label = fresh_label ctx in
  let body =
    if Rng.bool ctx.rng then begin
      (* A proof candidate: one sync over one lock, containing only that
         lock's guarded variables and silent work. *)
      let m_idx = Rng.int ctx.rng (Array.length ctx.locks) in
      let m = ctx.locks.(m_idx) in
      let mine =
        Array.of_list
          (List.filter_map
             (fun (v, g) -> if Lock.equal g m then Some v else None)
             (Array.to_list ctx.guarded))
      in
      let inner =
        List.init
          (1 + Rng.int ctx.rng 3)
          (fun _ ->
            if Array.length mine > 0 && Rng.int ctx.rng 4 > 0 then
              access ctx (Rng.choose ctx.rng mine)
            else Builder.work 1)
      in
      Builder.sync m inner
    end
    else random_stmts ctx ~depth (1 + Rng.int ctx.rng 3)
  in
  Builder.atomic label body

type info = { families : string list }

let generate_info ?(config = default) rng =
  let b = Builder.create () in
  let nthreads = 2 + Rng.int rng (max 1 (config.max_threads - 1)) in
  let locks =
    Array.init (max 1 config.locks) (fun i ->
        Builder.lock b (Printf.sprintf "m%d" i))
  in
  let vars =
    Array.init (max 2 config.vars) (fun i ->
        Builder.var ~init:i b (Printf.sprintf "x%d" i))
  in
  let guarded = ref [] and free = ref [] in
  Array.iteri
    (fun i v ->
      if i mod 2 = 0 then
        guarded := (v, locks.(i mod Array.length locks)) :: !guarded
      else free := v :: !free)
    vars;
  if Rng.bool rng then
    (* One lock-free volatile in the mix: a non-mover for the statics,
       ignored by the race detectors. *)
    free := Builder.volatile b "vol" :: !free;
  let ctx =
    {
      b;
      rng;
      locks;
      guarded = Array.of_list !guarded;
      free = Array.of_list !free;
      labels = 0;
    }
  in
  let publish =
    if nthreads >= 3 && Rng.int rng 3 > 0 then
      Some
        {
          pub = Builder.var b "pub";
          flag = Builder.var b "pubflag";
          handshake = Builder.lock b "h";
          pair =
            Array.init (nthreads - 1) (fun i ->
                Builder.lock b (Printf.sprintf "g%d" (i + 1)));
        }
    else None
  in
  let publish_items t =
    match publish with
    | None -> []
    | Some pb ->
      if t = 0 then
        let writes =
          [
            Builder.write pb.pub (Builder.i (Rng.int ctx.rng 64));
            Builder.write pb.pub (Builder.i (Rng.int ctx.rng 64));
          ]
        in
        let nested =
          Array.fold_right (fun m body -> Builder.sync m body) pb.pair writes
        in
        Builder.atomic (Builder.label ctx.b "gen.pub.publish") nested
        :: Builder.sync pb.handshake
             [ Builder.write pb.flag (Builder.i 1) ]
      else begin
        let rf = Builder.fresh_reg ctx.b in
        let r1 = Builder.fresh_reg ctx.b in
        let r2 = Builder.fresh_reg ctx.b in
        Builder.sync pb.handshake [ Builder.read rf pb.flag ]
        @ [
            Builder.if_
              Builder.(r rf ==: i 1)
              [
                Builder.atomic
                  (Builder.label ctx.b (Printf.sprintf "gen.pub.read%d" t))
                  (Builder.sync
                     pb.pair.(t - 1)
                     [ Builder.read r1 pb.pub; Builder.read r2 pb.pub ]);
              ]
              [];
          ]
      end
  in
  Builder.threads b nthreads (fun t ->
      let private_var = Builder.var ctx.b (Printf.sprintf "p%d" t) in
      let items =
        List.concat
          (List.init config.top_items (fun _ ->
               match Rng.int ctx.rng 3 with
               | 0 -> [ atomic_block ctx ~depth:2 ]
               | 1 -> random_stmts ctx ~depth:1 (1 + Rng.int ctx.rng 2)
               | _ ->
                 [
                   Builder.atomic (fresh_label ctx)
                     [ access ctx private_var; access ctx private_var ];
                 ]))
      in
      (* Every thread carries at least one atomic block so each program
         exercises the reduction check. *)
      publish_items t @ (atomic_block ctx ~depth:2 :: items));
  (* Read-shared snapshot + one-way publish: a few fresh cells, each
     written once by its own dedicated writer thread; one collector
     thread reading every cell in a single atomic block; and a data/flag
     pair written in order by one thread and checked flag-then-data by
     one gate reader. Both multi-read blocks race (Lipton rejects them —
     two racy reads are two non-movers) yet are serializable on every
     execution, so only the conflict-graph cycle-freedom rule proves
     them. The shape is deliberately rigid: the cells live outside the
     guarded/free pools and the extra threads carry nothing random, so
     no generated item can add a second reader block over the same cells
     or a single writer covering two of them — the two perturbations
     that make the pattern genuinely violable. *)
  let snapshot = Rng.int rng 3 > 0 in
  if snapshot then begin
    let ncells = 2 + Rng.int rng 2 in
    let cells =
      Array.init ncells (fun i -> Builder.var b (Printf.sprintf "snap%d" i))
    in
    Array.iteri
      (fun i c ->
        Builder.thread b
          [
            Builder.work (1 + (i mod 3));
            Builder.write c (Builder.i (Rng.int rng 64));
          ])
      cells;
    Builder.thread b
      (let regs = Array.map (fun _ -> Builder.fresh_reg b) cells in
       [
         Builder.work 2;
         Builder.atomic
           (Builder.label b "gen.snap.collect")
           (Array.to_list
              (Array.mapi (fun i reg -> Builder.read reg cells.(i)) regs));
       ]);
    let data = Builder.var b "snapdata" in
    let flag = Builder.var b "snapflag" in
    Builder.thread b
      [
        Builder.write data (Builder.i (Rng.int rng 64));
        Builder.write flag (Builder.i 1);
      ];
    Builder.thread b
      (let f = Builder.fresh_reg b in
       let d = Builder.fresh_reg b in
       [
         Builder.work 1;
         Builder.atomic
           (Builder.label b "gen.snap.check")
           [ Builder.read f flag; Builder.read d data ];
       ])
  end;
  (* Latent violations: shapes serializable under plain round-robin (and
     under any single bounded scheduler pause), yet genuinely violable
     under a targeted interleaving — the prediction pass's raison
     d'être. Rigid like the snapshot family: dedicated fresh variables,
     no random items, so the latency argument survives generation.

     - Deferred publish ("scan"): a writer updates [latb] then [lata]
       with a long silent gap between the two writes; a reader snapshots
       both in one atomic block. Round-robin orders the first read after
       the first write (the writer thread comes first), killing the
       cycle's read→write edge; the silent gap outlasts any bounded
       adversarial pause window. The violation needs read latb ≺ write
       latb and write lata ≺ read lata — exactly the static witness
       schedule.

     - Write skew: two symmetric read-both/write-one atomics; the second
       thread starts after a yield stagger longer than the first block,
       so round-robin runs them serially. Violable when either block
       fully interleaves the other's read/write window. *)
  let latent = Rng.int rng 3 > 0 in
  if latent then begin
    let lata = Builder.var b "lata" in
    let latb = Builder.var b "latb" in
    Builder.thread b
      [
        Builder.write latb (Builder.i (Rng.int rng 64));
        Builder.work 40_000;
        Builder.write lata (Builder.i (Rng.int rng 64));
      ];
    Builder.thread b
      (let r1 = Builder.fresh_reg b in
       let r2 = Builder.fresh_reg b in
       [
         Builder.atomic
           (Builder.label b "gen.lat.scan")
           [ Builder.read r1 latb; Builder.read r2 lata ];
       ]);
    let skewu = Builder.var b "skewu" in
    let skewv = Builder.var b "skewv" in
    Builder.thread b
      (let r1 = Builder.fresh_reg b in
       let r2 = Builder.fresh_reg b in
       [
         Builder.atomic
           (Builder.label b "gen.lat.skew1")
           [
             Builder.read r1 skewu;
             Builder.read r2 skewv;
             Builder.write skewu Builder.(r r2 +: i 1);
           ];
       ]);
    Builder.thread b
      (let r1 = Builder.fresh_reg b in
       let r2 = Builder.fresh_reg b in
       List.init 5 (fun _ -> Builder.yield)
       @ [
           Builder.atomic
             (Builder.label b "gen.lat.skew2")
             [
               Builder.read r1 skewu;
               Builder.read r2 skewv;
               Builder.write skewv Builder.(r r1 +: i 1);
             ];
         ])
  end;
  (* Tid-dispatch: [1 + nreaders] replicas of one identical body that
     switches roles on the thread-id register. The writer replica
     atomically bumps a shared accumulator and then publishes each
     reader's cell pair with two unary writes in REVERSE order (cellB
     before cellA); reader [k] atomically snapshots its pair cellA-then-
     cellB. Without tid specialization every replica statically carries
     every arm, so the accumulator self-races across replicas and the
     duplicated scan regions close a torn-snapshot cycle — May_violate.
     With r0 pinned per replica all foreign arms die: the accumulator
     becomes thread-local (update proves by Lipton) and each scan's only
     remaining partner is the single writer, whose reversed write order
     leaves no cycle back into the scan (cycle-free). Dynamically a torn
     snapshot would need read cellB ≺ write cellB yet write cellA ≺ read
     cellA, impossible given the program orders — serializable on every
     schedule, so the soundness gate stays green. *)
  let dispatch = Rng.int rng 3 > 0 in
  if dispatch then begin
    let base = Builder.thread_count b in
    let nreaders = 1 + Rng.int rng 2 in
    let acc = Builder.var b "dacc" in
    let cella =
      Array.init nreaders (fun k -> Builder.var b (Printf.sprintf "dca%d" k))
    in
    let cellb =
      Array.init nreaders (fun k -> Builder.var b (Printf.sprintf "dcb%d" k))
    in
    let update = Builder.label b "gen.disp.update" in
    let scan = Builder.label b "gen.disp.scan" in
    let rt = Builder.fresh_reg b in
    let ra = Builder.fresh_reg b in
    let rb = Builder.fresh_reg b in
    let payload = Array.init nreaders (fun _ -> 1 + Rng.int rng 63) in
    let writer_role =
      Builder.atomic update
        [ Builder.read rt acc; Builder.write acc Builder.(r rt +: i 1) ]
      :: List.concat
           (List.init nreaders (fun k ->
                [
                  Builder.write cellb.(k) (Builder.i payload.(k));
                  Builder.write cella.(k) (Builder.i payload.(k));
                ]))
    in
    let reader_role k =
      [
        Builder.atomic scan
          [ Builder.read ra cella.(k); Builder.read rb cellb.(k) ];
      ]
    in
    let rec arms k =
      if k > nreaders then []
      else
        [
          Builder.if_
            Builder.(r Ast.tid_reg ==: i (base + k))
            (if k = 0 then writer_role else reader_role (k - 1))
            (arms (k + 1));
        ]
    in
    let body = arms 0 in
    Builder.threads b (1 + nreaders) (fun _ -> body)
  end;
  let families =
    (if publish <> None then [ "publication" ] else [])
    @ (if snapshot then [ "snapshot" ] else [])
    @ (if latent then [ "latent" ] else [])
    @ if dispatch then [ "dispatch" ] else []
  in
  let families = if families = [] then [ "core" ] else families in
  (Builder.program b, { families })

let generate ?config rng = fst (generate_info ?config rng)
