(** Thread-level interpreter.

    The interpreter advances each thread through its statement list,
    executing silent work (register ops, control flow, re-entrant lock
    nesting) eagerly and stopping at instructions that would emit an
    observable operation. The scheduler drives it in two phases:

    + {!peek} runs silent steps and reports the operation the thread is
      about to perform — this is where the adversarial scheduler consults
      {!Velodrome_analysis.Backend.pause_hint} before letting it happen;
    + {!commit} performs that operation, updating shared memory and lock
      state; committing an [Acquire] of a held lock blocks the thread
      instead (it re-runs when the lock is released).

    Re-entrant acquires and releases are silent, mirroring RoadRunner's
    filtering; set [emit_reentrant] to observe them (for filter tests). *)

open Velodrome_trace

type t

type status =
  | Runnable
  | Blocked of Ids.Lock.t
  | Finished

exception Runtime_error of string
(** Raised on impossible transitions, e.g. releasing an unheld lock. *)

type obs = { o_thread : int; o_path : int list; o_value : int option }
(** One executed instruction: the thread, the structural path of the
    statement (the {!pending_path} coordinate system, i.e. [Cfg.site]),
    and the concrete value when the instruction produces one — the value
    assigned by a [Local], read from memory by a [Read], or stored by a
    [Write]; [None] for control flow, lock operations and atomic
    boundaries. The dynamic soundness gate replays programs under this
    hook to check that no instruction executes at a statically-dead site
    and every observed value lies within its static interval. *)

val create : ?emit_reentrant:bool -> ?observe:(obs -> unit) -> Ast.program -> t
(** [observe] fires once per executed instruction, at execution time:
    silent steps as {!peek} consumes them, observable operations when
    {!commit} performs them (a blocked acquire observes nothing until it
    succeeds). Defaults to ignoring observations. *)


val thread_count : t -> int
val status : t -> int -> status

val peek : t -> int -> [ `Op of Op.t | `Working | `Finished ]
(** Advance silent steps (bounded) and report the pending operation.
    [`Working] means the silent budget was consumed (compute-bound);
    calling again continues. Idempotent once it reports [`Op]. *)

val commit : t -> int -> [ `Emitted of Op.t | `Blocked ]
(** Perform the pending operation of {!peek}. Must be called only after
    [peek] returned [`Op]. *)

val lock_owner : t -> Ids.Lock.t -> int option
(** Thread currently holding the lock, if any. *)

val pending_path : t -> int -> int list option
(** Structural path of thread [i]'s head instruction, in the coordinate
    system of the static CFG ([Cfg.site.path]): the j-th top-level
    statement is [[j]], atomic bodies extend the atomic's path, [If]
    branches append 0/1, [While] bodies reuse the loop's path, and the
    atomic-end marker carries the atomic's own path. Meaningful after
    {!peek} returned [`Op] (the head is then the pending observable op,
    including for [Blocked] threads, whose [Acquire] stays at the head);
    [None] once the thread has an empty program counter. *)

val read_var : t -> Ids.Var.t -> int
(** Current shared-memory value (for tests and examples). *)

val all_finished : t -> bool

val runnable_exists : t -> bool
(** Some thread is [Runnable] (possibly compute-bound). *)
