open Velodrome_trace
open Velodrome_analysis
open Velodrome_util

type policy = Round_robin | Random of int

type pause_on = Pause_all | Pause_writes_only

type config = {
  policy : policy;
  quantum : int;
  adversarial : bool;
  pause_slots : int;
  pause_on : pause_on;
  never_pause : int list;
  max_steps : int;
  record_trace : bool;
  emit_reentrant : bool;
  observe : (Interp.obs -> unit) option;
}

let default_config =
  {
    policy = Round_robin;
    quantum = 1;
    adversarial = false;
    pause_slots = 20;
    pause_on = Pause_all;
    never_pause = [];
    max_steps = 1_000_000;
    record_trace = false;
    emit_reentrant = false;
    observe = None;
  }

type result = {
  events : int;
  trace : Trace.t option;
  deadlocked : bool;
  pauses : int;
  warnings : Warning.t list;
  final : Interp.t;
}

let run ?(config = default_config) program backends =
  let interp =
    Interp.create ~emit_reentrant:config.emit_reentrant
      ?observe:config.observe program
  in
  let n = Interp.thread_count interp in
  let rng =
    match config.policy with
    | Random seed -> Some (Rng.create seed)
    | Round_robin -> None
  in
  let pause = Array.make (max n 1) 0 in
  let immune = Array.make (max n 1) false in
  let pause_sites :
      (int * [ `Var of int | `Lock of int ], unit) Hashtbl.t =
    Hashtbl.create 64
  in
  (* The variable each paused thread is holding a window open on; a
     conflicting write from another thread ends the pause immediately —
     the witness it was waiting for has arrived. *)
  let pause_var = Array.make (max n 1) (-1) in
  let cursor = ref 0 in
  let index = ref 0 in
  let steps = ref 0 in
  let pauses = ref 0 in
  let deadlocked = ref false in
  let ops = if config.record_trace then Some (Vec.create ()) else None in
  let runnable () =
    let acc = ref [] in
    for i = n - 1 downto 0 do
      if Interp.status interp i = Interp.Runnable then acc := i :: !acc
    done;
    !acc
  in
  (* Quantum bookkeeping: the thread chosen last keeps running until its
     slice is spent or it stops being the best candidate. *)
  let current = ref (-1) in
  let slice = ref 0 in
  let pick_fresh pool =
    match rng with
    | Some g -> List.nth pool (Rng.int g (List.length pool))
    | None ->
      (* Round-robin: first pool thread at or after the cursor. *)
      let k = List.length pool in
      let rec find j =
        if j >= k then List.hd pool
        else begin
          let cand = List.nth pool j in
          if cand >= !cursor then cand else find (j + 1)
        end
      in
      let chosen = find 0 in
      cursor := (chosen + 1) mod max n 1;
      chosen
  in
  let pick candidates =
    let unpaused = List.filter (fun i -> pause.(i) = 0) candidates in
    let pool = if unpaused = [] then candidates else unpaused in
    if !slice > 0 && List.mem !current pool then begin
      slice := !slice - 1;
      !current
    end
    else begin
      let chosen = pick_fresh pool in
      current := chosen;
      slice := max 0 (config.quantum - 1);
      chosen
    end
  in
  let finished = ref false in
  while (not !finished) && !steps < config.max_steps do
    incr steps;
    Array.iteri (fun i p -> if p > 0 then pause.(i) <- p - 1) pause;
    match runnable () with
    | [] ->
      if Interp.all_finished interp then finished := true
      else begin
        deadlocked := true;
        finished := true
      end
    | candidates -> (
      let i = pick candidates in
      match Interp.peek interp i with
      | `Finished -> ()
      | `Working ->
        (* The thread yielded (or is compute-bound past its budget): a
           real single-core scheduler would switch here, so end the
           slice. *)
        slice := 0
      | `Op op ->
        let ev = Event.make ~index:!index op in
        (* Each (thread, variable-or-lock) site is paused at most once per
           run: pausing the same hot site over and over would keep every
           thread suspended at once, while the point of the pause is that
           the others keep running full speed into the suspended thread's
           window. The paper's 100 ms delay plays the same role in real
           time. *)
        let site =
          match op with
          | Op.Read (_, x) | Op.Write (_, x) ->
            Some (i, `Var (Velodrome_trace.Ids.Var.to_int x))
          | Op.Acquire (_, m) | Op.Release (_, m) ->
            Some (i, `Lock (Velodrome_trace.Ids.Lock.to_int m))
          | Op.Begin _ | Op.End _ -> None
        in
        let fresh_site =
          match site with
          | Some s -> not (Hashtbl.mem pause_sites s)
          | None -> false
        in
        let policy_allows =
          (match config.pause_on with
          | Pause_all -> true
          | Pause_writes_only -> (
            match op with Op.Write _ -> true | _ -> false))
          && not (List.mem i config.never_pause)
        in
        let want_pause =
          config.adversarial && policy_allows && pause.(i) = 0
          && (not immune.(i)) && fresh_site
          && List.length candidates > 1
          && List.exists (fun b -> Backend.pause_hint b ev) backends
        in
        if want_pause then
          Option.iter (fun s -> Hashtbl.replace pause_sites s ()) site;
        if want_pause then begin
          pause.(i) <- config.pause_slots;
          pause_var.(i) <-
            (match site with Some (_, `Var x) -> x | _ -> -1);
          immune.(i) <- true;
          incr pauses
        end
        else begin
          match Interp.commit interp i with
          | `Blocked -> ()
          | `Emitted op ->
            immune.(i) <- false;
            pause_var.(i) <- -1;
            pause.(i) <- 0;
            (match op with
            | Op.Write (_, x) ->
              let xv = Velodrome_trace.Ids.Var.to_int x in
              Array.iteri
                (fun j v -> if j <> i && v = xv then pause.(j) <- 0)
                pause_var
            | _ -> ());
            let ev = Event.make ~index:!index op in
            incr index;
            List.iter (fun b -> Backend.on_event b ev) backends;
            Option.iter (fun v -> Vec.push v op) ops
        end)
  done;
  List.iter Backend.finish backends;
  let warnings = List.concat_map Backend.warnings backends in
  let warnings =
    if !deadlocked then
      Warning.make ~analysis:"scheduler" ~kind:Warning.Deadlock ~index:!index
        "all unfinished threads are blocked"
      :: warnings
    else warnings
  in
  {
    events = !index;
    trace = Option.map (fun v -> Trace.of_array (Vec.to_array v)) ops;
    deadlocked = !deadlocked;
    pauses = !pauses;
    warnings;
    final = interp;
  }
