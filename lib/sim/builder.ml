open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_util

type t = {
  names : Names.t;
  mutable init : (Var.t * int) list;
  bodies : Ast.stmt list Vec.t;
  mutable next_reg : int;
}

let create () =
  {
    names = Names.create ();
    init = [];
    bodies = Vec.create ();
    next_reg = Ast.tid_reg + 1;
  }

let names t = t.names

let var ?init t name =
  let known = Symtab.find t.names.Names.vars name <> None in
  let x = Names.var t.names name in
  (match init with
  | Some v when not known -> t.init <- (x, v) :: t.init
  | _ -> ());
  x

let volatile ?init t name =
  let x = var ?init t name in
  Names.set_volatile t.names x;
  x

let lock t name = Names.lock t.names name
let label t name = Names.label t.names name

let fresh_reg t =
  let r = t.next_reg in
  t.next_reg <- r + 1;
  r

let thread t body = Vec.push t.bodies body
let thread_count t = Vec.length t.bodies

let threads t n body =
  for k = 0 to n - 1 do
    thread t (body k)
  done

let program t =
  {
    Ast.names = t.names;
    var_count = Symtab.size t.names.Names.vars;
    init = List.rev t.init;
    threads = Vec.to_array t.bodies;
  }

let ( +: ) a b = Ast.Add (a, b)
let ( -: ) a b = Ast.Sub (a, b)
let ( *: ) a b = Ast.Mul (a, b)
let i n = Ast.Int n
let r k = Ast.Reg k
let ( ==: ) lhs rhs = { Ast.lhs; cmp = Ast.Eq; rhs }
let ( <>: ) lhs rhs = { Ast.lhs; cmp = Ast.Ne; rhs }
let ( <: ) lhs rhs = { Ast.lhs; cmp = Ast.Lt; rhs }
let ( >=: ) lhs rhs = { Ast.lhs; cmp = Ast.Ge; rhs }
let read reg x = Ast.Read (reg, x)
let write x e = Ast.Write (x, e)
let local reg e = Ast.Local (reg, e)
let acquire m = Ast.Acquire m
let release m = Ast.Release m
let sync m body = (Ast.Acquire m :: body) @ [ Ast.Release m ]
let atomic l body = Ast.Atomic (l, body)
let if_ c a b = Ast.If (c, a, b)
let while_ c body = Ast.While (c, body)
let work n = Ast.Work n
let yield = Ast.Yield

let spin_until t x e =
  let tmp = fresh_reg t in
  [
    read tmp x;
    while_ (r tmp <>: e) [ yield; read tmp x ];
  ]

let incr_var t x =
  let tmp = fresh_reg t in
  [ read tmp x; write x (r tmp +: i 1) ]
