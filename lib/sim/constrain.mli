(** Constraint scheduler: deterministic replay under a waypoint plan.

    A {e plan} is an ordered list of waypoints — (thread, structural
    path) pairs in the coordinate system of {!Interp.pending_path} and
    the static CFG. Replaying a plan forces the program through exactly
    that global order of events: every thread that still owes a future
    waypoint is frozen, the current waypoint's thread runs forward
    through its program order (committing intermediate operations as it
    goes), and unconstrained threads fill the gaps round-robin so spin
    loops and flag publishers keep making progress.

    The scheduler is total: it either satisfies the whole plan and runs
    the program to completion ({!Scheduled}), or proves the plan cannot
    be realised under program semantics and says why ({!Infeasible}).
    Every path is bounded by [max_steps], so an adversarial plan can
    never livelock the scheduler. *)

open Velodrome_trace

type waypoint = { wthread : int; wpath : int list }

type plan = waypoint list

type reason =
  | Lock_window of Ids.Lock.t
      (** The current waypoint's thread is blocked on a lock held by a
          frozen (still-constrained) thread — the witness window is
          closed by mutual exclusion. *)
  | Order_contradiction of waypoint
      (** The running thread reached a {e later} waypoint of the plan
          before its current one: the plan contradicts program order. *)
  | Unreached of waypoint
      (** The waypoint's thread finished (or the program deadlocked)
          without ever presenting the waypoint's site. *)
  | Step_budget  (** [max_steps] exhausted before the plan completed. *)

val reason_to_string : reason -> string

type outcome =
  | Scheduled of {
      trace : Trace.t;  (** the full forced execution, begin to end *)
      forced : int;  (** events committed while waypoints remained *)
    }
  | Infeasible of {
      at : int;  (** index of the first unsatisfiable waypoint *)
      reason : reason;
    }

val replay : ?max_steps:int -> Ast.program -> plan -> outcome
(** Replay [program] under [plan]. [max_steps] bounds total scheduler
    iterations (default 200_000). Deterministic: same program and plan
    always produce the same outcome. *)

val observe : ?max_steps:int -> Ast.program -> (Op.t * int list) array
(** One plain round-robin execution (quantum 1, no pausing), returning
    every emitted operation tagged with the structural path of the
    statement that produced it — the dynamic side of the CFG
    site↔event mapping that the witness planner resolves against. *)
