open Velodrome_trace
open Velodrome_trace.Ids

(* Each instruction carries the structural path of its statement, matching
   [Cfg.site]: the j-th top-level statement is [j]; an atomic body statement
   extends the atomic's own path; [If] branches extend with 0/1; [While]
   bodies reuse the loop's path. [End_atomic] carries the atomic's path,
   mirroring the [Cfg] exit node which sits at the atomic's own site. *)
type instr = S of int list * Ast.stmt | End_atomic of int list

type status = Runnable | Blocked of Lock.t | Finished

type obs = { o_thread : int; o_path : int list; o_value : int option }

exception Runtime_error of string

type thread = {
  id : int;
  regs : int array;
  mutable pc : instr list;
  mutable st : status;
  mutable work_left : int;
  held : (int, int) Hashtbl.t;  (** lock -> re-entrancy depth *)
}

type t = {
  emit_reentrant : bool;
  observe : obs -> unit;
  memory : int array;
  owner : (int, int) Hashtbl.t;  (** lock -> owning thread *)
  threads : thread array;
}

let silent_budget = 1024
let no_obs (_ : obs) = ()

let create ?(emit_reentrant = false) ?(observe = no_obs) (p : Ast.program) =
  let memory = Array.make (max 1 p.Ast.var_count) 0 in
  List.iter (fun (x, v) -> memory.(Var.to_int x) <- v) p.Ast.init;
  let threads =
    Array.mapi
      (fun id body ->
        let regs = Array.make 256 0 in
        regs.(Ast.tid_reg) <- id;
        {
          id;
          regs;
          pc = List.mapi (fun j s -> S ([ j ], s)) body;
          st = Runnable;
          work_left = 0;
          held = Hashtbl.create 4;
        })
      p.Ast.threads
  in
  { emit_reentrant; observe; memory; owner = Hashtbl.create 8; threads }

let thread_count t = Array.length t.threads
let status t i = t.threads.(i).st

let set_reg th r v = if r < Array.length th.regs then th.regs.(r) <- v

let held_depth th m =
  Option.value ~default:0 (Hashtbl.find_opt th.held (Lock.to_int m))

(* Fire the observation callback for an executed instruction: the site it
   ran at, plus the concrete value when one exists (register assignment,
   memory read, memory write). Fires at execution time — silent steps in
   [advance], observable ones when [commit] actually performs them — so a
   blocked acquire observes nothing until it finally succeeds. *)
let note t (th : thread) path v =
  t.observe { o_thread = th.id; o_path = path; o_value = v }

(* Run silent instructions; stop at an event-producing head. *)
let rec advance t th budget =
  if budget <= 0 then `Working
  else if th.work_left > 0 then begin
    let spend = min th.work_left budget in
    th.work_left <- th.work_left - spend;
    advance t th (budget - spend)
  end
  else begin
    match th.pc with
    | [] ->
      th.st <- Finished;
      `Finished
    | End_atomic _ :: _ -> `Op (Op.End (Tid.of_int th.id))
    | S (path, s) :: rest -> (
      match s with
      | Ast.Read (_, x) -> `Op (Op.Read (Tid.of_int th.id, x))
      | Ast.Write (x, _) -> `Op (Op.Write (Tid.of_int th.id, x))
      | Ast.Acquire m ->
        if held_depth th m > 0 && not t.emit_reentrant then begin
          (* Re-entrant acquire: silent, as RoadRunner filters it. *)
          Hashtbl.replace th.held (Lock.to_int m) (held_depth th m + 1);
          note t th path None;
          th.pc <- rest;
          advance t th (budget - 1)
        end
        else `Op (Op.Acquire (Tid.of_int th.id, m))
      | Ast.Release m ->
        let d = held_depth th m in
        if d = 0 then
          raise
            (Runtime_error
               (Printf.sprintf "thread %d releases unheld lock %d" th.id
                  (Lock.to_int m)))
        else if d > 1 && not t.emit_reentrant then begin
          Hashtbl.replace th.held (Lock.to_int m) (d - 1);
          note t th path None;
          th.pc <- rest;
          advance t th (budget - 1)
        end
        else `Op (Op.Release (Tid.of_int th.id, m))
      | Ast.Atomic (l, _) -> `Op (Op.Begin (Tid.of_int th.id, l))
      | Ast.Local (r, e) ->
        let v = Ast.eval th.regs e in
        set_reg th r v;
        note t th path (Some v);
        th.pc <- rest;
        advance t th (budget - 1)
      | Ast.If (c, a, b) ->
        let taken = Ast.eval_cond th.regs c in
        let branch = if taken then a else b in
        let arm = if taken then 0 else 1 in
        note t th path None;
        th.pc <-
          List.mapi (fun j s -> S (path @ [ arm; j ], s)) branch @ rest;
        advance t th (budget - 1)
      | Ast.While (c, body) ->
        note t th path None;
        if Ast.eval_cond th.regs c then
          th.pc <- List.mapi (fun j s -> S (path @ [ j ], s)) body @ th.pc
        else th.pc <- rest;
        advance t th (budget - 1)
      | Ast.Work n ->
        note t th path None;
        th.work_left <- max 0 n;
        th.pc <- rest;
        advance t th (budget - 1)
      | Ast.Yield ->
        note t th path None;
        th.pc <- rest;
        `Working)
  end

let peek t i =
  let th = t.threads.(i) in
  match th.st with
  | Finished -> `Finished
  | Blocked m -> `Op (Op.Acquire (Tid.of_int th.id, m))
  | Runnable -> advance t th silent_budget

let commit t i =
  let th = t.threads.(i) in
  let emit op rest =
    th.pc <- rest;
    `Emitted op
  in
  match th.pc with
  | [] -> raise (Runtime_error "commit on finished thread")
  | End_atomic path :: rest ->
    note t th path None;
    emit (Op.End (Tid.of_int th.id)) rest
  | S (path, s) :: rest -> (
    match s with
    | Ast.Read (r, x) ->
      let v = t.memory.(Var.to_int x) in
      set_reg th r v;
      note t th path (Some v);
      emit (Op.Read (Tid.of_int th.id, x)) rest
    | Ast.Write (x, e) ->
      let v = Ast.eval th.regs e in
      t.memory.(Var.to_int x) <- v;
      note t th path (Some v);
      emit (Op.Write (Tid.of_int th.id, x)) rest
    | Ast.Acquire m -> (
      let key = Lock.to_int m in
      match Hashtbl.find_opt t.owner key with
      | Some o when o <> th.id ->
        th.st <- Blocked m;
        `Blocked
      | Some _ ->
        (* Re-entrant acquire reached commit only in emit_reentrant mode. *)
        th.st <- Runnable;
        Hashtbl.replace th.held key (held_depth th m + 1);
        note t th path None;
        emit (Op.Acquire (Tid.of_int th.id, m)) rest
      | None ->
        th.st <- Runnable;
        Hashtbl.replace t.owner key th.id;
        Hashtbl.replace th.held key (held_depth th m + 1);
        note t th path None;
        emit (Op.Acquire (Tid.of_int th.id, m)) rest)
    | Ast.Release m ->
      let key = Lock.to_int m in
      let d = held_depth th m in
      if d <= 1 then begin
        Hashtbl.remove th.held key;
        Hashtbl.remove t.owner key;
        (* Wake every thread blocked on this lock. *)
        Array.iter
          (fun other ->
            match other.st with
            | Blocked m' when Lock.equal m' m -> other.st <- Runnable
            | _ -> ())
          t.threads
      end
      else Hashtbl.replace th.held key (d - 1);
      note t th path None;
      emit (Op.Release (Tid.of_int th.id, m)) rest
    | Ast.Atomic (l, body) ->
      note t th path None;
      th.pc <-
        List.mapi (fun j s -> S (path @ [ j ], s)) body
        @ (End_atomic path :: rest);
      `Emitted (Op.Begin (Tid.of_int th.id, l))
    | Ast.Local _ | Ast.If _ | Ast.While _ | Ast.Work _ | Ast.Yield ->
      raise (Runtime_error "commit on silent instruction"))

let lock_owner t m = Hashtbl.find_opt t.owner (Lock.to_int m)

let pending_path t i =
  match t.threads.(i).pc with
  | [] -> None
  | End_atomic p :: _ | S (p, _) :: _ -> Some p

let read_var t x = t.memory.(Var.to_int x)

let all_finished t =
  Array.for_all (fun th -> th.st = Finished) t.threads

let runnable_exists t =
  Array.exists (fun th -> th.st = Runnable) t.threads
