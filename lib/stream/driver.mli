(** The streaming replay driver.

    Feeds every event of a {!Source.t} to a set of analysis back-ends,
    exactly as {!Velodrome_analysis.Backend.run_events} does for
    in-memory traces — same event order, same per-event back-end order,
    same final [finish]/[warnings] sequence — so verdicts are identical
    by construction; the differential property tests pin this down.

    Memory stays bounded by the analyses' own state: the driver holds
    one event at a time and never buffers the stream.

    An optional [progress] callback observes engine statistics every
    [every] events and once more after the final event, for long-running
    ingestion jobs (events consumed, OCaml GC pressure, and — when the
    caller supplies a probe — live happens-before nodes, the paper's
    reference-counting GC metric). *)

open Velodrome_analysis

type stats = {
  events : int;  (** events consumed so far *)
  warnings : int;  (** warnings raised so far, across back-ends *)
  live_nodes : int option;
      (** live happens-before graph nodes, from the [live_nodes] probe *)
  allocated_words : float;  (** total words allocated by the program *)
  minor_collections : int;  (** OCaml minor GC cycles so far *)
  major_collections : int;  (** OCaml major GC cycles so far *)
}

val default_interval : int
(** Events between progress reports (100_000). *)

exception Interrupted of { events : int; error : exn }
(** Raised when the source's iteration fails mid-stream (a truncated
    [.velb], a malformed text line): [events] counts the events already
    replayed — the back-ends have been [finish]ed and their warnings for
    the valid prefix are intact — and [error] is the original exception
    ({!Velodrome_trace.Trace_codec.Corrupt} or
    {!Velodrome_trace.Trace_io.Syntax_error}). A final progress tick is
    emitted before the raise, so [--stats] observers see the partial
    totals. *)

val run :
  ?progress:(stats -> unit) ->
  ?every:int ->
  ?live_nodes:(unit -> int) ->
  Backend.packed list ->
  Source.t ->
  int * Warning.t list
(** [run backends source] replays the source through the back-ends and
    returns the event count with the concatenated warnings (in back-end
    order, like {!Velodrome_analysis.Backend.run_events}). *)
