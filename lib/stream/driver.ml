open Velodrome_analysis

type stats = {
  events : int;
  warnings : int;
  live_nodes : int option;
  allocated_words : float;
  minor_collections : int;
  major_collections : int;
}

let default_interval = 100_000

exception Interrupted of { events : int; error : exn }

let run ?progress ?(every = default_interval) ?live_nodes backends
    (src : Source.t) =
  let count = ref 0 in
  let tick report =
    let g = Gc.quick_stat () in
    report
      {
        events = !count;
        warnings =
          List.fold_left
            (fun acc b -> acc + List.length (Backend.warnings b))
            0 backends;
        live_nodes = Option.map (fun probe -> probe ()) live_nodes;
        (* quick_stat counters are only flushed at minor collections;
           Gc.minor_words reads the precise allocation pointer. *)
        allocated_words =
          Gc.minor_words () +. (g.Gc.major_words -. g.Gc.promoted_words);
        minor_collections = g.Gc.minor_collections;
        major_collections = g.Gc.major_collections;
      }
  in
  let every = max 1 every in
  (* Dense array + counted loop: [List.iter] with an inline closure would
     allocate a closure capturing [e] on every event. *)
  let bs = Array.of_list backends in
  let nb = Array.length bs in
  let on_event =
    match progress with
    | None ->
      fun e ->
        for i = 0 to nb - 1 do
          Backend.on_event bs.(i) e
        done;
        incr count
    | Some report ->
      fun e ->
        for i = 0 to nb - 1 do
          Backend.on_event bs.(i) e
        done;
        incr count;
        if !count mod every = 0 then tick report
  in
  (try src.Source.iter on_event
   with error ->
     (* A truncated or damaged stream still yields a partial result: the
        events consumed and warnings raised so far are valid — the trace
        prefix really happened — so finish the back-ends, emit one last
        progress tick, and hand the caller everything alongside the
        original error. *)
     List.iter Backend.finish backends;
     Option.iter tick progress;
     raise (Interrupted { events = !count; error }));
  List.iter Backend.finish backends;
  Option.iter tick progress;
  (!count, List.concat_map Backend.warnings backends)
