(** Structured analysis warnings.

    Every back-end reports through this type so the evaluation harness can
    count, classify (real vs false alarm, via workload ground truth) and
    deduplicate warnings uniformly, the way the paper counts "distinct
    warnings" per method. *)

open Velodrome_trace
open Velodrome_trace.Ids

type kind =
  | Atomicity_violation
      (** a non-serializable trace was observed (Velodrome) *)
  | Reduction_failure
      (** the block does not match the right-movers/left-movers pattern
          (Atomizer); may be a false alarm *)
  | Race  (** unsynchronized conflicting accesses (Eraser, HB detector) *)
  | Deadlock  (** all runnable threads blocked (simulator) *)

type t = {
  analysis : string;  (** back-end name *)
  kind : kind;
  tid : Tid.t option;  (** thread the warning concerns *)
  label : Label.t option;
      (** blamed atomic block / method; [None] when blame could not be
          assigned to a particular block *)
  var : Var.t option;  (** variable involved, for race reports *)
  message : string;
  dot : string option;  (** rendered error graph, when available *)
  index : int;  (** event index at which the warning fired *)
  blamed : bool;
      (** true when blame analysis pinned a specific non-self-serializable
          transaction (Velodrome's >80 % statistic) *)
  refuted : Label.t list;
      (** every block refuted by the blame analysis, outermost first
          ([label] is its head); empty for unblamed warnings. The static
          pre-pass soundness gate checks no statically proved label ever
          appears here. *)
}

val make :
  analysis:string ->
  kind:kind ->
  ?tid:Tid.t ->
  ?label:Label.t ->
  ?var:Var.t ->
  ?dot:string ->
  ?blamed:bool ->
  ?refuted:Label.t list ->
  index:int ->
  string ->
  t

val pp : Names.t -> Format.formatter -> t -> unit

val to_json : Names.t -> t -> Velodrome_util.Json.t
(** The JSON object the CLI reports for a warning (check-trace and
    serve); resolves ids through [names], omits absent label/var, keeps
    the pinned field order. *)

val dedup_by_label : t list -> t list
(** Keep the first warning for each (analysis, kind, label) triple —
    the paper's "distinct warnings per method" counting. Warnings without
    a label are deduplicated by (analysis, kind, var, tid). *)

val kind_to_string : kind -> string
