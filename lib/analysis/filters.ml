open Velodrome_trace
open Velodrome_trace.Ids

let reentrant_locks inner =
  Backend.filter ~suffix:"+reentrant"
    (fun () ->
      let depth : (int * int, int) Hashtbl.t = Hashtbl.create 16 in
      let get k = Option.value ~default:0 (Hashtbl.find_opt depth k) in
      let classify e =
        match e.Event.op with
        | Op.Acquire (t, m) ->
          let k = (Tid.to_int t, Lock.to_int m) in
          `Acq (k, get k)
        | Op.Release (t, m) ->
          let k = (Tid.to_int t, Lock.to_int m) in
          `Rel (k, get k)
        | _ -> `Other
      in
      let would_forward e =
        match classify e with
        | `Acq (_, d) -> d = 0
        | `Rel (_, d) -> d <= 1
        | `Other -> true
      in
      let observe e =
        match classify e with
        | `Acq (k, d) ->
          Hashtbl.replace depth k (d + 1);
          d = 0
        | `Rel (k, d) ->
          Hashtbl.replace depth k (max 0 (d - 1));
          d <= 1
        | `Other -> true
      in
      { Backend.would_forward; observe })
    inner

type region = { mutable nest : int; mutable active : bool }

let static_atomic ~proved ~suppress_var inner =
  Backend.filter ~suffix:"+static"
    (fun () ->
      let regions : (int, region) Hashtbl.t = Hashtbl.create 8 in
      let region t =
        match Hashtbl.find_opt regions t with
        | Some r -> r
        | None ->
          let r = { nest = 0; active = false } in
          Hashtbl.replace regions t r;
          r
      in
      let suppressed_access e =
        match e.Event.op with
        | Op.Read (t, x) | Op.Write (t, x) ->
          (region (Tid.to_int t)).active && suppress_var (Var.to_int x)
        | _ -> false
      in
      let would_forward e = not (suppressed_access e) in
      let observe e =
        (match e.Event.op with
        | Op.Begin (t, l) ->
          let r = region (Tid.to_int t) in
          r.nest <- r.nest + 1;
          if r.nest = 1 && proved (Label.to_int l) then r.active <- true
        | Op.End t ->
          let r = region (Tid.to_int t) in
          if r.nest <= 1 then r.active <- false;
          r.nest <- max 0 (r.nest - 1)
        | _ -> ());
        would_forward e
      in
      { Backend.would_forward; observe })
    inner

type ownership = Owned of int | Shared

let thread_local inner =
  Backend.filter ~suffix:"+threadlocal"
    (fun () ->
      let state : (int, ownership) Hashtbl.t = Hashtbl.create 64 in
      let accessor e =
        match e.Event.op with
        | Op.Read (t, x) | Op.Write (t, x) ->
          Some (Tid.to_int t, Var.to_int x)
        | _ -> None
      in
      let would_forward e =
        match accessor e with
        | None -> true
        | Some (t, x) -> (
          match Hashtbl.find_opt state x with
          | None -> false
          | Some (Owned u) -> u <> t
          | Some Shared -> true)
      in
      let observe e =
        match accessor e with
        | None -> true
        | Some (t, x) -> (
          match Hashtbl.find_opt state x with
          | None ->
            Hashtbl.replace state x (Owned t);
            false
          | Some (Owned u) when u = t -> false
          | Some (Owned _) ->
            Hashtbl.replace state x Shared;
            true
          | Some Shared -> true)
      in
      { Backend.would_forward; observe })
    inner
