(** Event-stream filters (Section 5).

    RoadRunner pre-processes the event stream before back-ends see it:

    - re-entrant (and hence redundant) lock acquires and releases are
      removed, so back-ends see only the outermost acquire/release of each
      lock by each thread;
    - operations on data that has so far been touched by a single thread
      can be filtered out. This dramatically improves performance but is
      {e slightly unsound} (the paper cites Eraser for the same
      observation): the accesses performed while the variable was still
      thread-local are lost, so an analysis cannot see conflicts involving
      them once the variable becomes shared. *)

val static_atomic :
  proved:(int -> bool) ->
  suppress_var:(int -> bool) ->
  Backend.packed ->
  Backend.packed
(** Statically-guided instrumentation pruning. [proved] answers label ids
    the static pre-pass proved atomic ({!Velodrome_statics} upstream —
    passed as plain predicates to keep this library free of a sim
    dependency); [suppress_var] answers variable ids whose accesses are
    safe to elide (thread-local or consistently lock-guarded).

    While a thread is inside an {e outermost} proved block, its reads and
    writes of suppressible variables are dropped; lock operations and
    begin/end markers are always forwarded, so every cross-thread ordering
    a dropped access could induce is still visible to the back-end through
    the guard's acquire/release edges. Suppression deliberately does not
    start at proved blocks nested inside unproved ones: warnings there are
    attributed to the unproved outermost label, which the soundness
    differential compares exactly. *)

val reentrant_locks : Backend.packed -> Backend.packed
(** Forward only outermost acquires/releases; nested pairs are dropped.
    Release events that would unbalance the count are forwarded untouched
    (they indicate an ill-formed stream, which back-ends may report). *)

val thread_local : Backend.packed -> Backend.packed
(** Drop accesses to variables still owned by a single thread. A variable
    becomes shared — permanently — the first time a second thread touches
    it; that first foreign access and everything after it is forwarded. *)
