open Velodrome_trace
open Velodrome_trace.Ids

type kind = Atomicity_violation | Reduction_failure | Race | Deadlock

type t = {
  analysis : string;
  kind : kind;
  tid : Tid.t option;
  label : Label.t option;
  var : Var.t option;
  message : string;
  dot : string option;
  index : int;
  blamed : bool;
  refuted : Label.t list;
}

let make ~analysis ~kind ?tid ?label ?var ?dot ?(blamed = false)
    ?(refuted = []) ~index message =
  { analysis; kind; tid; label; var; message; dot; index; blamed; refuted }

let kind_to_string = function
  | Atomicity_violation -> "atomicity-violation"
  | Reduction_failure -> "reduction-failure"
  | Race -> "race"
  | Deadlock -> "deadlock"

let pp names ppf w =
  let label =
    match w.label with
    | Some l -> Printf.sprintf " [%s]" (Names.label_name names l)
    | None -> ""
  in
  let var =
    match w.var with
    | Some x -> Printf.sprintf " on %s" (Names.var_name names x)
    | None -> ""
  in
  Format.fprintf ppf "%s: %s%s%s at #%d: %s" w.analysis
    (kind_to_string w.kind) label var w.index w.message

(* The JSON projection the CLI prints for check-trace and serve; field
   order is part of the pinned output. *)
let to_json names w =
  let open Velodrome_util.Json in
  let opt name to_s = function
    | None -> []
    | Some v -> [ (name, String (to_s v)) ]
  in
  Obj
    ([
       ("analysis", String w.analysis);
       ("kind", String (kind_to_string w.kind));
     ]
    @ opt "label" (Names.label_name names) w.label
    @ opt "var" (Names.var_name names) w.var
    @ [ ("index", Int w.index); ("blamed", Bool w.blamed) ]
    @ (match w.refuted with
      | [] -> []
      | ls ->
        [
          ( "refuted",
            List (List.map (fun l -> String (Names.label_name names l)) ls)
          );
        ])
    @ [ ("message", String w.message) ])

let dedup_by_label ws =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun w ->
      let key =
        match w.label with
        | Some l -> (w.analysis, w.kind, `Label (Label.to_int l))
        | None ->
          ( w.analysis,
            w.kind,
            `Anon
              ( Option.map Var.to_int w.var,
                Option.map Tid.to_int w.tid ) )
      in
      if Hashtbl.mem seen key then false
      else begin
        Hashtbl.replace seen key ();
        true
      end)
    ws
