(** Witness-guided predictive atomicity checking.

    Velodrome flames only the violations the observed schedule happens
    to exhibit. This pass turns each static [May_violate] witness cycle
    into concrete forced schedules ({!Plan}), replays them
    deterministically ({!Velodrome_sim.Constrain}), and re-checks every
    forced trace with the full engine trio ([engine]/[basic]/[aero]).
    A prediction is emitted {e only} when all three engines agree the
    forced trace is non-serializable {e and} each one's warning names
    the predicted block — certification-by-replay. Static evidence
    alone never produces a report, so predictions are sound by
    construction; the static pass merely steers which of the
    exponentially many schedules are worth replaying.

    The pass also performs one plain round-robin {e observation} run,
    which (a) grounds the site↔event mapping — witnesses whose every
    waypoint site produced a dynamic event candidate are tried first —
    and (b) records which blocks the un-steered schedule already
    flames, so "prediction found strictly more" claims are measured
    against the same run. *)

open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_statics

type prediction = {
  label : Label.t;
  name : string;  (** block name, for rendering *)
  witness : Txgraph.witness;
  plan : Plan.t;  (** the variant that certified *)
  trace : Trace.t;  (** the forced execution, certified non-serializable *)
  first_error_index : int;  (** engine's first violating event index *)
  resolved : bool;
      (** every waypoint site had an event candidate in the observation *)
}

type attempt_result =
  | Infeasible of int * Velodrome_sim.Constrain.reason
      (** waypoint index and why the scheduler gave up *)
  | Uncertified
      (** the plan replayed to completion but the trio did not flame the
          predicted block — the static witness over-approximated *)

type attempt = { plan : Plan.t; result : attempt_result }

type block_outcome =
  | Predicted of prediction
  | Unpredicted of attempt list
      (** [May_violate] but no plan certified; attempts in trial order *)
  | Not_attempted  (** proved, unknown, or without a usable witness *)

type block_report = { block : Statics.block; outcome : block_outcome }

type t

val run :
  ?only:string ->
  ?max_witnesses:int ->
  ?max_steps:int ->
  Velodrome_sim.Ast.program ->
  Statics.t ->
  t
(** Run the full pass: observe, plan, replay, certify. Deterministic.
    [only] restricts planning and replay to the block of that name
    (every other block reports [Not_attempted]); [max_witnesses]
    (default 8) caps the witnesses tried per block; [max_steps]
    (default 200_000) bounds each constrained replay. *)

val statics : t -> Statics.t
val reports : t -> block_report list
val predictions : t -> prediction list
(** Certified predictions only, in block order. *)

val observed_events : t -> int
val observed_blamed : t -> Label.t list
(** Blocks the round-robin observation itself flamed (deduplicated). *)

val unpredicted_count : t -> int

val certify : Names.t -> Label.t -> Trace.t -> int option
(** Engine-trio certification: [Some first_error_index] when engine,
    basic and aero all report the trace non-serializable and each emits
    a warning naming the label. Exposed so the CLI gate can re-certify
    emitted predictions independently. *)

val replay_and_certify :
  ?max_steps:int ->
  Velodrome_sim.Ast.program ->
  Label.t ->
  Velodrome_sim.Constrain.plan ->
  (int, string) result
(** Re-run one waypoint schedule and certify it against [label]:
    [Ok first_error_index] or a human reason ([Infeasible ...] /
    uncertified). The gate replays every emitted prediction through
    this; the `--schedule` replay line goes through it too. *)

type verdict = Static of Statics.verdict | Predicted_violation of prediction
(** The upgraded lattice: a [May_violate] block whose witness schedule
    certified becomes [Predicted_violation]. *)

val verdicts : t -> (Statics.block * verdict) list
val verdict_string : verdict -> string
(** {!Statics.verdict_string}, plus ["predicted-violation"]. *)

val to_json : ?file:string -> ?replay_with:string -> t -> Velodrome_util.Json.t
val pp_human : ?replay_with:string -> Format.formatter -> t -> unit
(** [replay_with] is the CLI spec naming the program (a target, or
    ["--gen-seed N"]); when given, every prediction carries a one-command
    replay line [velodrome predict SPEC --block B --schedule "..."]. *)
