open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_statics
open Velodrome_sim
module Engine = Velodrome_core.Engine
module Basic = Velodrome_core.Basic
module Aero = Velodrome_core.Aero
module Warning = Velodrome_analysis.Warning
module Json = Velodrome_util.Json

type prediction = {
  label : Label.t;
  name : string;
  witness : Txgraph.witness;
  plan : Plan.t;
  trace : Trace.t;
  first_error_index : int;
  resolved : bool;
}

type attempt_result =
  | Infeasible of int * Constrain.reason
  | Uncertified

type attempt = { plan : Plan.t; result : attempt_result }

type block_outcome =
  | Predicted of prediction
  | Unpredicted of attempt list
  | Not_attempted

type block_report = { block : Statics.block; outcome : block_outcome }

type t = {
  statics : Statics.t;
  observed_events : int;
  observed_blamed : Label.t list;
  reports : block_report list;
}

let statics t = t.statics
let reports t = t.reports
let observed_events t = t.observed_events
let observed_blamed t = t.observed_blamed

let predictions t =
  List.filter_map
    (fun r -> match r.outcome with Predicted p -> Some p | _ -> None)
    t.reports

let unpredicted_count t =
  List.length
    (List.filter
       (fun r -> match r.outcome with Unpredicted _ -> true | _ -> false)
       t.reports)

(* --- certification -------------------------------------------------------- *)

let certify names label trace =
  let eng = Engine.create names in
  let bas = Basic.create names in
  let aer = Aero.create names in
  Trace.iteri
    (fun i op ->
      let ev = Event.make ~index:i op in
      Engine.on_event eng ev;
      Basic.on_event bas ev;
      Aero.on_event aer ev)
    trace;
  Engine.finish eng;
  Basic.finish bas;
  Aero.finish aer;
  let hits ws =
    List.exists
      (fun (w : Warning.t) ->
        (match w.Warning.label with
        | Some l -> Label.equal l label
        | None -> false)
        || List.exists (Label.equal label) w.Warning.refuted)
      ws
  in
  if
    Engine.has_error eng && Basic.has_error bas && Aero.has_error aer
    && hits (Engine.warnings eng)
    && hits (Basic.warnings bas)
    && hits (Aero.warnings aer)
  then
    match Engine.first_error_index eng with
    | Some i -> Some i
    | None -> Some 0
  else None

let replay_and_certify ?(max_steps = 200_000) program label plan =
  match Constrain.replay ~max_steps program plan with
  | Constrain.Infeasible { at; reason } ->
    Error
      (Printf.sprintf "infeasible at waypoint %d: %s" at
         (Constrain.reason_to_string reason))
  | Constrain.Scheduled { trace; _ } -> (
    match certify program.Ast.names label trace with
    | Some idx -> Ok idx
    | None -> Error "replayed but the engine trio did not flame the block")

(* Labels the engine blamed on a trace: warning heads plus refuted lists. *)
let blamed_labels names trace =
  let eng = Engine.create names in
  Trace.iteri
    (fun i op -> Engine.on_event eng (Event.make ~index:i op))
    trace;
  Engine.finish eng;
  List.sort_uniq Label.compare
    (List.concat_map
       (fun (w : Warning.t) ->
         (match w.Warning.label with Some l -> [ l ] | None -> [])
         @ w.Warning.refuted)
       (Engine.warnings eng))

(* --- the pass ------------------------------------------------------------- *)

let run ?only ?(max_witnesses = 8) ?(max_steps = 200_000) program st =
  let names = Statics.names st in
  let tx = Statics.txgraph st in
  let observed = Constrain.observe ~max_steps program in
  let obs_trace = Trace.of_array (Array.map fst observed) in
  let observed_blamed = blamed_labels names obs_trace in
  let has_candidate (w : Constrain.waypoint) =
    Array.exists
      (fun (op, path) ->
        Tid.to_int (Op.tid op) = w.Constrain.wthread
        && path = w.Constrain.wpath)
      observed
  in
  let witness_resolved (w : Txgraph.witness) =
    List.for_all
      (fun (p : Plan.t) -> List.for_all has_candidate p.Plan.waypoints)
      (Plan.of_witness w)
  in
  let attempt_block (block : Statics.block) =
    match block.Statics.verdict with
    | _ when only <> None && only <> Some block.Statics.name ->
      { block; outcome = Not_attempted }
    | Statics.May_violate _ ->
      let wits =
        List.concat_map (Txgraph.witnesses_for tx) block.Statics.sites
      in
      (* Dedup cycles shared by several sites of the block. *)
      let seen = Hashtbl.create 8 in
      let wits =
        List.filter
          (fun (w : Txgraph.witness) ->
            let key = (w.Txgraph.arrival.Cfg.id, w.Txgraph.departure.Cfg.id) in
            if Hashtbl.mem seen key then false
            else begin
              Hashtbl.add seen key ();
              true
            end)
          wits
      in
      let wits = List.map (fun w -> (w, witness_resolved w)) wits in
      (* Witnesses whose every site produced a dynamic event candidate in
         the observation replay first; the sort is stable, so arrival
         order breaks ties. *)
      let wits =
        List.stable_sort
          (fun (_, r1) (_, r2) -> Bool.compare r2 r1)
          wits
      in
      let wits = List.filteri (fun i _ -> i < max_witnesses) wits in
      if wits = [] then { block; outcome = Not_attempted }
      else begin
        let attempts = ref [] in
        let found = ref None in
        List.iter
          (fun (w, resolved) ->
            List.iter
              (fun (plan : Plan.t) ->
                if Option.is_none !found then begin
                  match
                    Constrain.replay ~max_steps program plan.Plan.waypoints
                  with
                  | Constrain.Infeasible { at; reason } ->
                    attempts :=
                      { plan; result = Infeasible (at, reason) } :: !attempts
                  | Constrain.Scheduled { trace; _ } -> (
                    match certify names block.Statics.label trace with
                    | Some idx ->
                      found :=
                        Some
                          {
                            label = block.Statics.label;
                            name = block.Statics.name;
                            witness = w;
                            plan;
                            trace;
                            first_error_index = idx;
                            resolved;
                          }
                    | None ->
                      attempts :=
                        { plan; result = Uncertified } :: !attempts)
                end)
              (Plan.of_witness w))
          wits;
        match !found with
        | Some p -> { block; outcome = Predicted p }
        | None -> { block; outcome = Unpredicted (List.rev !attempts) }
      end
    | Statics.Proved_atomic _ | Statics.Unknown _ ->
      { block; outcome = Not_attempted }
  in
  {
    statics = st;
    observed_events = Array.length observed;
    observed_blamed;
    reports = List.map attempt_block (Statics.blocks st);
  }

(* --- the upgraded lattice ------------------------------------------------- *)

type verdict = Static of Statics.verdict | Predicted_violation of prediction

let verdicts t =
  List.map
    (fun r ->
      match r.outcome with
      | Predicted p -> (r.block, Predicted_violation p)
      | _ -> (r.block, Static r.block.Statics.verdict))
    t.reports

let verdict_string = function
  | Static v -> Statics.verdict_string v
  | Predicted_violation _ -> "predicted-violation"

(* --- rendering ------------------------------------------------------------ *)

let attempt_string (a : attempt) =
  Printf.sprintf "%s: %s"
    (Plan.kind_string a.plan.Plan.kind)
    (match a.result with
    | Infeasible (at, reason) ->
      Printf.sprintf "infeasible at waypoint %d (%s)" at
        (Constrain.reason_to_string reason)
    | Uncertified -> "uncertified")

(* The one-command reproduction for a prediction; [spec] is how the CLI
   names the program (target, or "--gen-seed N"). *)
let replay_line spec (p : prediction) =
  Printf.sprintf "velodrome predict %s --block %s --schedule \"%s\"" spec
    p.name
    (Plan.to_string p.plan)

let to_json ?file ?replay_with t =
  let names = Statics.names t.statics in
  let tx = Statics.txgraph t.statics in
  let preds = predictions t in
  let unpredicted =
    List.filter_map
      (fun r ->
        match r.outcome with
        | Unpredicted attempts -> Some (r.block, attempts)
        | _ -> None)
      t.reports
  in
  let may_violate =
    List.length
      (List.filter
         (fun (r : block_report) ->
           match r.block.Statics.verdict with
           | Statics.May_violate _ -> true
           | _ -> false)
         t.reports)
  in
  let open Json in
  Obj
    ((match file with Some f -> [ ("file", String f) ] | None -> [])
    @ [
        ( "observation",
          Obj
            [
              ("events", Int t.observed_events);
              ( "blamed",
                List
                  (List.map
                     (fun l -> String (Names.label_name names l))
                     t.observed_blamed) );
            ] );
        ( "predictions",
          List
            (List.map
               (fun p ->
                 Obj
                   ([
                      ("block", String (Names.label_name names p.label));
                      ("plan", String (Plan.kind_string p.plan.Plan.kind));
                      ("schedule", String (Plan.to_string p.plan));
                      ("resolved", Bool p.resolved);
                      ("first_error_index", Int p.first_error_index);
                      ("trace_events", Int (Trace.length p.trace));
                    ]
                   @ (match replay_with with
                     | Some spec -> [ ("replay", String (replay_line spec p)) ]
                     | None -> [])
                   @ [ ("witness", Txgraph.witness_json tx p.witness) ]))
               preds) );
        ( "verdicts",
          List
            (List.map
               (fun ((b : Statics.block), v) ->
                 Obj
                   [
                     ("block", String b.Statics.name);
                     ("verdict", String (verdict_string v));
                   ])
               (verdicts t)) );
        ( "unpredicted",
          List
            (List.map
               (fun ((b : Statics.block), attempts) ->
                 Obj
                   [
                     ("block", String b.Statics.name);
                     ( "attempts",
                       List
                         (List.map
                            (fun a -> String (attempt_string a))
                            attempts) );
                   ])
               unpredicted) );
        ( "summary",
          Obj
            [
              ("blocks", Int (List.length t.reports));
              ("may_violate", Int may_violate);
              ("predicted", Int (List.length preds));
              ("certified", Int (List.length preds));
              ("uncertified", Int 0);
              ("unpredicted", Int (List.length unpredicted));
              ("observed_blamed", Int (List.length t.observed_blamed));
            ] );
      ])

let pp_human ?replay_with ppf t =
  let names = Statics.names t.statics in
  let tx = Statics.txgraph t.statics in
  let preds = predictions t in
  Format.fprintf ppf
    "prediction: %d certified prediction%s, %d may-violate block%s \
     unpredicted (observation: %d events, %d block%s blamed)@."
    (List.length preds)
    (if List.length preds = 1 then "" else "s")
    (unpredicted_count t)
    (if unpredicted_count t = 1 then "" else "s")
    t.observed_events
    (List.length t.observed_blamed)
    (if List.length t.observed_blamed = 1 then "" else "s");
  List.iter
    (fun r ->
      match r.outcome with
      | Predicted p ->
        Format.fprintf ppf
          "  %s: predicted violation (%s plan, certified at event %d)@."
          p.name
          (Plan.kind_string p.plan.Plan.kind)
          p.first_error_index;
        Format.fprintf ppf "    schedule: %s@." (Plan.to_string p.plan);
        (match replay_with with
        | Some spec ->
          Format.fprintf ppf "    replay: %s@." (replay_line spec p)
        | None -> ());
        Format.fprintf ppf "    cycle: %s@." (Txgraph.explain tx p.witness)
      | Unpredicted attempts ->
        Format.fprintf ppf "  %s: unpredicted (%s)@." r.block.Statics.name
          (String.concat "; " (List.map attempt_string attempts))
      | Not_attempted -> ())
    t.reports;
  List.iter
    (fun l ->
      Format.fprintf ppf "  observed: %s already blamed by round-robin@."
        (Names.label_name names l))
    t.observed_blamed
