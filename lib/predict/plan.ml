open Velodrome_statics
open Velodrome_sim

type kind = Full | Minimal

type t = {
  kind : kind;
  waypoints : Constrain.plan;
}

let waypoint_of_node (nd : Cfg.node) =
  {
    Constrain.wthread = nd.Cfg.site.Cfg.thread;
    wpath = nd.Cfg.site.Cfg.path;
  }

let rec dedup_adjacent = function
  | a :: b :: rest when a = b -> dedup_adjacent (b :: rest)
  | a :: rest -> a :: dedup_adjacent rest
  | [] -> []

let of_witness (w : Txgraph.witness) =
  let full =
    waypoint_of_node w.Txgraph.departure
    :: List.map
         (fun (h : Txgraph.hop) -> waypoint_of_node h.Txgraph.node)
         w.Txgraph.path
  in
  let minimal =
    dedup_adjacent
      [
        waypoint_of_node w.Txgraph.departure;
        waypoint_of_node w.Txgraph.pivot;
        waypoint_of_node w.Txgraph.arrival;
      ]
  in
  let plans = [ { kind = Full; waypoints = full } ] in
  if minimal = full then plans
  else plans @ [ { kind = Minimal; waypoints = minimal } ]

let to_string t =
  String.concat " -> "
    (List.map
       (fun (w : Constrain.waypoint) ->
         Printf.sprintf "t%d@%s" w.Constrain.wthread
           (String.concat "." (List.map string_of_int w.Constrain.wpath)))
       t.waypoints)

let kind_string = function Full -> "full" | Minimal -> "minimal"

let parse_waypoint s =
  let s = String.trim s in
  match String.index_opt s '@' with
  | None -> Error (Printf.sprintf "waypoint %S: expected tN@PATH" s)
  | Some i ->
    let thread = String.sub s 0 i in
    let path = String.sub s (i + 1) (String.length s - i - 1) in
    if String.length thread < 2 || thread.[0] <> 't' then
      Error (Printf.sprintf "waypoint %S: expected tN@PATH" s)
    else begin
      match
        int_of_string_opt (String.sub thread 1 (String.length thread - 1))
      with
      | None -> Error (Printf.sprintf "waypoint %S: bad thread" s)
      | Some wthread -> (
        let segs = if path = "" then [] else String.split_on_char '.' path in
        match
          List.fold_right
            (fun seg acc ->
              match (acc, int_of_string_opt seg) with
              | Some acc, Some n -> Some (n :: acc)
              | _ -> None)
            segs (Some [])
        with
        | None -> Error (Printf.sprintf "waypoint %S: bad path" s)
        | Some wpath -> Ok { Constrain.wthread; wpath })
    end

let parse_schedule s =
  (* Accept both the rendered "a -> b -> c" form and a bare "a,b,c". *)
  let s = String.map (fun c -> if c = '>' then ',' else c) s in
  let s = String.concat "" (String.split_on_char '-' s) in
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty schedule"
  else
    List.fold_right
      (fun part acc ->
        match (acc, parse_waypoint part) with
        | Ok acc, Ok w -> Ok (w :: acc)
        | (Error _ as e), _ -> e
        | _, (Error _ as e) -> e)
      parts (Ok [])
