(** Witness planner: lower a static cycle into scheduling constraints.

    A {!Velodrome_statics.Txgraph.witness} is a cycle — depart the
    flagged block at one op, pass through conflicting ops of other
    threads, re-enter at another op. Realising the cycle dynamically
    means forcing exactly that global order of events, so the planner
    lowers the witness's node sequence into a {!Velodrome_sim.Constrain}
    waypoint plan, translating each static site to its dynamic
    coordinate (thread, structural statement path).

    Two variants are produced per witness:

    - {e Full}: the complete edge sequence, departure through arrival.
      Exact when every hop respects the program order of its thread.
    - {e Minimal}: departure, pivot, arrival only. A witness path may
      visit one foreign thread's ops {e against} that thread's program
      order (static conflict edges are direction-agnostic, and passage
      hops run backwards through a region); the full plan is then
      infeasible by construction, while the three-point plan constrains
      only the ops the cycle actually needs ordered and lets the foreign
      thread run its own program order in between.

    Soundness does not depend on the planner: whatever order a plan
    forces, the prediction is reported only after the replayed trace is
    re-checked by the engine trio (certification-by-replay). The planner
    only decides {e which} schedules are worth trying. *)

open Velodrome_statics

type kind = Full | Minimal

type t = {
  kind : kind;
  waypoints : Velodrome_sim.Constrain.plan;
}

val of_witness : Txgraph.witness -> t list
(** The plan variants to try, strongest first ([Full] then [Minimal]);
    variants with identical waypoint lists are emitted once. *)

val to_string : t -> string
(** Compact schedule rendering, e.g. ["t0@1.0 -> t2@0 -> t0@1.1"] —
    the replay line's [--schedule] payload. *)

val kind_string : kind -> string
(** ["full"] or ["minimal"]. *)

val parse_schedule :
  string -> (Velodrome_sim.Constrain.plan, string) result
(** Inverse of {!to_string} (arrow or comma separated): parses the
    [--schedule] payload of a replay line back into a waypoint plan. *)
