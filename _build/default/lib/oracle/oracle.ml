open Velodrome_trace
open Velodrome_util

let conflict_graph trace =
  let seg = Txn.segment trace in
  let g = Digraph.create (Array.length seg.Txn.txns) in
  let n = Trace.length trace in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = Trace.get trace i and b = Trace.get trace j in
      if
        seg.Txn.owner.(i) <> seg.Txn.owner.(j)
        && Op.conflicts a b
      then Digraph.add_edge g seg.Txn.owner.(i) seg.Txn.owner.(j)
    done
  done;
  (seg, g)

let serializable trace =
  let _, g = conflict_graph trace in
  not (Digraph.has_cycle g)

let witness_cycle trace =
  let seg, g = conflict_graph trace in
  Option.map (List.map (fun id -> seg.Txn.txns.(id))) (Digraph.find_cycle g)

(* --- Swap-based exploration ------------------------------------------- *)

(* States are permutations of the original operation indices, encoded as
   strings of bytes for the visited set (traces are capped well below 256
   operations). *)

let key perm =
  String.init (Array.length perm) (fun i -> Char.chr perm.(i))

let explore ?(max_ops = 10) trace ~accept =
  let n = Trace.length trace in
  if n > max_ops || n > 255 then None
  else begin
    let ops = Trace.ops trace in
    let start = Array.init n Fun.id in
    let visited = Hashtbl.create 1024 in
    let queue = Queue.create () in
    Hashtbl.replace visited (key start) ();
    Queue.add start queue;
    let found = ref false in
    while (not !found) && not (Queue.is_empty queue) do
      let perm = Queue.pop queue in
      if accept perm then found := true
      else
        for i = 0 to n - 2 do
          if not (Op.conflicts ops.(perm.(i)) ops.(perm.(i + 1))) then begin
            let next = Array.copy perm in
            next.(i) <- perm.(i + 1);
            next.(i + 1) <- perm.(i);
            let k = key next in
            if not (Hashtbl.mem visited k) then begin
              Hashtbl.replace visited k ();
              Queue.add next queue
            end
          end
        done
    done;
    Some !found
  end

let serializable_by_swaps ?max_ops trace =
  let seg = Txn.segment trace in
  (* Equivalence preserves per-thread order, and transaction membership is
     determined by per-thread structure alone, so the original
     segmentation's owner map remains valid under any reachable
     permutation. A permuted trace is serial iff no transaction is revisited
     after another one has intervened. *)
  let accept perm =
    let seen_complete = Hashtbl.create 8 in
    let current = ref (-1) in
    let ok = ref true in
    Array.iter
      (fun idx ->
        let owner = seg.Txn.owner.(idx) in
        if owner <> !current then begin
          if Hashtbl.mem seen_complete owner then ok := false;
          if !current >= 0 then Hashtbl.replace seen_complete !current ();
          current := owner
        end)
      perm;
    !ok
  in
  explore ?max_ops trace ~accept

let self_serializable_by_swaps ?max_ops trace ~txn =
  let seg = Txn.segment trace in
  if txn < 0 || txn >= Array.length seg.Txn.txns then
    invalid_arg "Oracle.self_serializable_by_swaps: bad transaction id";
  let size = Array.length seg.Txn.txns.(txn).Txn.ops in
  let accept perm =
    (* The target transaction is contiguous iff the positions of its ops
       form an interval. *)
    let first = ref max_int and last = ref (-1) in
    Array.iteri
      (fun pos idx ->
        if seg.Txn.owner.(idx) = txn then begin
          if pos < !first then first := pos;
          if pos > !last then last := pos
        end)
      perm;
    !last - !first + 1 = size
  in
  explore ?max_ops trace ~accept
