open Velodrome_trace
open Velodrome_trace.Ids

(* The reads-from relation of an operation list: for the k-th read in
   per-op order, the identity of the write it observes. Operations are
   identified by a caller-supplied key so the relation can be compared
   across reorderings of the same operations. *)
let reads_from keyed_ops =
  let last_write : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let rf = Hashtbl.create 16 in
  List.iter
    (fun (key, op) ->
      match op with
      | Op.Read (_, x) ->
        let writer =
          Option.value ~default:(-1)
            (Hashtbl.find_opt last_write (Var.to_int x))
        in
        Hashtbl.replace rf key writer
      | Op.Write (_, x) -> Hashtbl.replace last_write (Var.to_int x) key
      | _ -> ())
    keyed_ops;
  (rf, last_write)

let view_equivalent_keyed ops1 ops2 =
  let rf1, fin1 = reads_from ops1 in
  let rf2, fin2 = reads_from ops2 in
  let same_tbl a b =
    Hashtbl.length a = Hashtbl.length b
    && Hashtbl.fold
         (fun k v acc -> acc && Hashtbl.find_opt b k = Some v)
         a true
  in
  same_tbl rf1 rf2 && same_tbl fin1 fin2

let view_equivalent t1 t2 =
  (* Key each op by (thread, per-thread occurrence index): stable across
     the reorderings equivalence allows (per-thread order is preserved). *)
  let keyed tr =
    let counts = Hashtbl.create 8 in
    List.map
      (fun op ->
        let ti = Tid.to_int (Op.tid op) in
        let k = Option.value ~default:0 (Hashtbl.find_opt counts ti) in
        Hashtbl.replace counts ti (k + 1);
        ((ti * 1_000_000) + k, op))
      (Trace.to_list tr)
  in
  view_equivalent_keyed (keyed t1) (keyed t2)

let rec permutations = function
  | [] -> [ [] ]
  | l ->
    List.concat_map
      (fun x ->
        List.map (fun p -> x :: p) (permutations (List.filter (( != ) x) l)))
      l

let view_serializable ?(max_txns = 7) trace =
  let seg = Txn.segment trace in
  let txns = Array.to_list seg.Txn.txns in
  if List.length txns > max_txns then None
  else begin
    let keyed =
      List.mapi (fun i op -> (i, op)) (Trace.to_list trace)
    in
    let serial_of order =
      List.concat_map
        (fun (tx : Txn.t) ->
          List.map
            (fun i -> (i, Trace.get trace i))
            (Array.to_list tx.Txn.ops))
        order
    in
    Some
      (List.exists
         (fun order -> view_equivalent_keyed keyed (serial_of order))
         (permutations txns))
  end
