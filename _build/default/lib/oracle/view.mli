(** View-serializability (Bernstein, Hadzilacos, Goodman — the other
    classical serializability notion, which Wang and Stoller's
    view-atomicity work targets; cited in the paper's Section 7).

    A trace is view-serializable iff some serial arrangement of its
    transactions is {e view-equivalent} to it: every read reads the same
    write (or the same initial value), and the final write to each
    variable is the same. Conflict-serializability implies
    view-serializability; the converse fails in the presence of blind
    writes — the property tests exercise both directions.

    Deciding view-serializability is NP-complete; this implementation
    enumerates transaction permutations and is intended for small traces
    (tests, minimized witnesses). *)

val view_serializable :
  ?max_txns:int -> Velodrome_trace.Trace.t -> bool option
(** [None] when the trace has more than [max_txns] (default 7)
    transactions. *)

val view_equivalent :
  Velodrome_trace.Trace.t -> Velodrome_trace.Trace.t -> bool
(** Same operation multiset is assumed (the second trace is a permutation
    of the first, expressed as traces over the same ops); equivalence of
    the reads-from relation and final writes. Exposed for tests. *)
