(** Offline serializability oracle.

    Ground truth for the online engines. Two independent decision
    procedures are provided:

    - {!serializable} builds the transactional conflict graph exactly as in
      the paper's definition (Section 3): an edge [A -> B] whenever some
      operation of [A] precedes and conflicts with some operation of [B].
      The trace is serializable iff this graph is acyclic (Bernstein,
      Hadzilacos, Goodman — the result Theorem 1 leans on). Quadratic in
      trace length; intended for tests and moderate traces.

    - {!serializable_by_swaps} explores every trace reachable by swapping
      adjacent {e non-conflicting} operations — the literal definition of
      trace equivalence in Section 2 — and reports whether any reachable
      trace is serial. Exponential; refuses traces longer than the given
      bound. This checks the conflict-graph characterization itself rather
      than assuming it.

    {!self_serializable_by_swaps} supports validating blame assignment: a
    blamed transaction must not be self-serializable (Section 4.3). *)

open Velodrome_trace
open Velodrome_util

val conflict_graph : Trace.t -> Txn.segmentation * Digraph.t
(** Node [i] of the graph is transaction [i] of the segmentation. *)

val serializable : Trace.t -> bool

val witness_cycle : Trace.t -> Txn.t list option
(** Some cycle of transactions ([A -> B -> ... -> A], last edge implicit)
    when the trace is not serializable. *)

val serializable_by_swaps : ?max_ops:int -> Trace.t -> bool option
(** [None] when the trace exceeds [max_ops] (default 10). *)

val self_serializable_by_swaps :
  ?max_ops:int -> Trace.t -> txn:int -> bool option
(** Whether some equivalent trace executes transaction [txn] (an id from
    {!Txn.segment}) contiguously. [None] when too large. *)
