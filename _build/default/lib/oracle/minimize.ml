open Velodrome_trace

let interesting ops =
  let tr = Trace.of_ops ops in
  Trace.is_well_formed tr && not (Oracle.serializable tr)

let remove_chunk ops ~start ~len =
  List.filteri (fun i _ -> i < start || i >= start + len) ops

(* Greedy shrinking: repeatedly try to delete chunks, halving the chunk
   size when no deletion applies, until single-op deletions all fail. *)
let ddmin trace =
  if Oracle.serializable trace then
    invalid_arg "Minimize.ddmin: trace is serializable";
  let ops = ref (Trace.to_list trace) in
  let chunk = ref (max 1 (List.length !ops / 2)) in
  let continue_ = ref true in
  while !continue_ do
    let n = List.length !ops in
    let removed_any = ref false in
    let start = ref 0 in
    while !start < List.length !ops do
      let candidate = remove_chunk !ops ~start:!start ~len:!chunk in
      if List.length candidate < List.length !ops && interesting candidate
      then begin
        ops := candidate;
        removed_any := true
        (* keep [start]: the next chunk now sits at the same offset *)
      end
      else start := !start + !chunk
    done;
    ignore n;
    if not !removed_any then begin
      if !chunk = 1 then continue_ := false else chunk := max 1 (!chunk / 2)
    end
  done;
  Trace.of_ops !ops

let is_minimal trace =
  let ops = Trace.to_list trace in
  interesting ops
  && List.for_all
       (fun i -> not (interesting (remove_chunk ops ~start:i ~len:1)))
       (List.init (List.length ops) Fun.id)
