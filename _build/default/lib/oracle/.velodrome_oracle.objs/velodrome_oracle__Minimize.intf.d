lib/oracle/minimize.mli: Velodrome_trace
