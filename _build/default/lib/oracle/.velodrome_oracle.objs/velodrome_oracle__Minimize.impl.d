lib/oracle/minimize.ml: Fun List Oracle Trace Velodrome_trace
