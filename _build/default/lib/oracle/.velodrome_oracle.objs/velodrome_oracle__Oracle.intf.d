lib/oracle/oracle.mli: Digraph Trace Txn Velodrome_trace Velodrome_util
