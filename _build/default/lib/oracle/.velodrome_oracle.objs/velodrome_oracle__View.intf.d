lib/oracle/view.mli: Velodrome_trace
