lib/oracle/oracle.ml: Array Char Digraph Fun Hashtbl List Op Option Queue String Trace Txn Velodrome_trace Velodrome_util
