lib/oracle/view.ml: Array Hashtbl List Op Option Tid Trace Txn Var Velodrome_trace
