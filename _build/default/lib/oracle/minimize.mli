(** Violation minimization.

    Velodrome's soundness argument for uninstrumented code (Section 6)
    rests on a projection property: if a {e subsequence} of the real
    trace is non-serializable, so is the whole trace. The same property
    makes delta debugging valid on violating traces: any well-formed
    non-serializable subsequence of a witness is itself a witness, and a
    1-minimal one is far easier to read than ten thousand events.

    [ddmin] runs the classic delta-debugging loop over operation
    subsequences, keeping only candidates that are still well-formed
    ({!Velodrome_trace.Trace.check}) and still non-serializable
    ({!Oracle.serializable}). *)

val ddmin : Velodrome_trace.Trace.t -> Velodrome_trace.Trace.t
(** Raises [Invalid_argument] if the input trace is serializable (there
    is no violation to minimize). The result is 1-minimal: removing any
    single remaining operation yields a trace that is ill-formed or
    serializable. *)

val is_minimal : Velodrome_trace.Trace.t -> bool
(** Check 1-minimality (used by tests). *)
