lib/inject/inject.ml: Array Ast Hashtbl Label List Lock Velodrome_sim Velodrome_trace Velodrome_util Velodrome_workloads Workload
