lib/inject/inject.mli: Ast Velodrome_sim Velodrome_trace Velodrome_workloads Workload
