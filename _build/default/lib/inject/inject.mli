(** Synchronization-defect injection (Section 6's study).

    The paper corrupts elevator and colt by "systematically removing each
    synchronized statement that induced contention between threads, one
    at a time", then measures how often a single Velodrome run finds the
    inserted defect — about 30 % without scheduler adjustment, about 70 %
    with it.

    A mutation here removes every [Acquire]/[Release] inside one atomic
    method (identified by label), in every thread. Only {e contended}
    methods are mutated: the method's lock must be used by at least two
    threads, otherwise no cross-thread violation can result. The bodies
    that remain are adjacent read/write pairs, so the resulting defects
    have narrow windows — the regime where adversarial scheduling pays
    off. *)

open Velodrome_sim
open Velodrome_workloads

type mutant = {
  workload : string;
  method_label : string;  (** the method whose locks were removed *)
  program : Ast.program;
}

val mutants : Workload.t -> Workload.size -> mutant list
(** One mutant per contended synchronized method of the workload. *)

val strip_sync_in_label :
  Ast.program -> Velodrome_trace.Ids.Label.t -> Ast.program
(** The underlying AST transformation (exposed for tests): remove all
    acquire/release statements lexically inside atomic blocks with the
    given label. *)
