open Velodrome_sim
open Velodrome_trace.Ids
open Velodrome_workloads

type mutant = {
  workload : string;
  method_label : string;
  program : Ast.program;
}

(* Remove all acquire/release statements inside blocks labelled [target];
   other statements are rewritten recursively. *)
let strip_sync_in_label (p : Ast.program) target =
  let rec strip_stmts inside stmts =
    List.filter_map (strip_stmt inside) stmts
  and strip_stmt inside s =
    match s with
    | Ast.Acquire _ | Ast.Release _ when inside -> None
    | Ast.Atomic (l, body) ->
      let inside' = inside || Label.equal l target in
      Some (Ast.Atomic (l, strip_stmts inside' body))
    | Ast.If (c, a, b) ->
      Some (Ast.If (c, strip_stmts inside a, strip_stmts inside b))
    | Ast.While (c, body) -> Some (Ast.While (c, strip_stmts inside body))
    | s -> Some s
  in
  { p with Ast.threads = Array.map (strip_stmts false) p.Ast.threads }

(* A method is a candidate when some atomic block with its label contains
   an acquire, and the locks it takes are also taken by another thread
   (contention). *)
let analyse (p : Ast.program) =
  (* label id -> (set of locks acquired inside), and lock -> set of
     threads using it. *)
  let label_locks : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let lock_threads : (int, (int, unit) Hashtbl.t) Hashtbl.t =
    Hashtbl.create 16
  in
  let note_lock thread m =
    let tbl =
      match Hashtbl.find_opt lock_threads m with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace lock_threads m t;
        t
    in
    Hashtbl.replace tbl thread ()
  in
  let note_label l m =
    let tbl =
      match Hashtbl.find_opt label_locks l with
      | Some t -> t
      | None ->
        let t = Hashtbl.create 4 in
        Hashtbl.replace label_locks l t;
        t
    in
    Hashtbl.replace tbl m ()
  in
  let rec walk thread labels = function
    | [] -> ()
    | s :: rest ->
      (match s with
      | Ast.Acquire m ->
        let mi = Lock.to_int m in
        note_lock thread mi;
        List.iter (fun l -> note_label l mi) labels
      | Ast.Atomic (l, body) -> walk thread (Label.to_int l :: labels) body
      | Ast.If (_, a, b) ->
        walk thread labels a;
        walk thread labels b
      | Ast.While (_, body) -> walk thread labels body
      | _ -> ());
      walk thread labels rest
  in
  Array.iteri (fun t body -> walk t [] body) p.Ast.threads;
  (label_locks, lock_threads)

let mutants (w : Workload.t) size =
  let p = w.Workload.build size in
  let label_locks, lock_threads = analyse p in
  let contended l =
    match Hashtbl.find_opt label_locks l with
    | None -> false
    | Some locks ->
      Hashtbl.fold
        (fun m () acc ->
          acc
          ||
          match Hashtbl.find_opt lock_threads m with
          | Some users -> Hashtbl.length users >= 2
          | None -> false)
        locks false
  in
  (* Only mutate methods that are atomic in the original program: removing
     locks from an already-broken method is not an injected defect. *)
  List.filter_map
    (fun g ->
      if not g.Workload.atomic then None
      else begin
        match
          Velodrome_util.Symtab.find
            p.Ast.names.Velodrome_trace.Names.labels g.Workload.label
        with
        | None -> None
        | Some lid when not (contended lid) -> None
        | Some lid ->
          Some
            {
              workload = w.Workload.name;
              method_label = g.Workload.label;
              program = strip_sync_in_label p (Label.of_int lid);
            }
      end)
    w.Workload.methods
