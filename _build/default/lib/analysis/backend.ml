open Velodrome_trace

module type S = sig
  type t

  val name : string
  val create : Names.t -> t
  val on_event : t -> Event.t -> unit
  val pause_hint : t -> Event.t -> bool
  val finish : t -> unit
  val warnings : t -> Warning.t list
end

type packed =
  | Packed : { impl : (module S with type t = 'a); state : 'a } -> packed

let make (module B : S) names =
  Packed { impl = (module B); state = B.create names }

let name (Packed { impl = (module B); _ }) = B.name
let on_event (Packed { impl = (module B); state }) e = B.on_event state e
let pause_hint (Packed { impl = (module B); state }) e = B.pause_hint state e
let finish (Packed { impl = (module B); state }) = B.finish state
let warnings (Packed { impl = (module B); state }) = B.warnings state

type filter = {
  would_forward : Event.t -> bool;
  observe : Event.t -> bool;
}

let filter ~suffix mk inner =
  let inner_name = name inner in
  let module M = struct
    type t = { f : filter; inner : packed }

    let name = inner_name ^ suffix
    let create (_ : Names.t) = { f = mk (); inner }
    let on_event t e = if t.f.observe e then on_event t.inner e
    let pause_hint t e = t.f.would_forward e && pause_hint t.inner e
    let finish t = finish t.inner
    let warnings t = warnings t.inner
  end in
  (* The wrapped state captures [inner]; the [Names.t] argument is not
     needed to build it, so any value works here. *)
  Packed { impl = (module M); state = M.create (Names.create ()) }

let run_events backends events =
  List.iter (fun e -> List.iter (fun b -> on_event b e) backends) events;
  List.iter finish backends;
  List.concat_map warnings backends

let run_trace backends trace =
  run_events backends (Event.of_ops (Trace.to_list trace))
