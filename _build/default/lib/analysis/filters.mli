(** Event-stream filters (Section 5).

    RoadRunner pre-processes the event stream before back-ends see it:

    - re-entrant (and hence redundant) lock acquires and releases are
      removed, so back-ends see only the outermost acquire/release of each
      lock by each thread;
    - operations on data that has so far been touched by a single thread
      can be filtered out. This dramatically improves performance but is
      {e slightly unsound} (the paper cites Eraser for the same
      observation): the accesses performed while the variable was still
      thread-local are lost, so an analysis cannot see conflicts involving
      them once the variable becomes shared. *)

val reentrant_locks : Backend.packed -> Backend.packed
(** Forward only outermost acquires/releases; nested pairs are dropped.
    Release events that would unbalance the count are forwarded untouched
    (they indicate an ill-formed stream, which back-ends may report). *)

val thread_local : Backend.packed -> Backend.packed
(** Drop accesses to variables still owned by a single thread. A variable
    becomes shared — permanently — the first time a second thread touches
    it; that first foreign access and everything after it is forwarded. *)
