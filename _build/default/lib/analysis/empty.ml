open Velodrome_trace

type t = { mutable count : int }

let name = "empty"
let create (_ : Names.t) = { count = 0 }
let on_event t (_ : Event.t) = t.count <- t.count + 1
let pause_hint _ _ = false
let finish _ = ()
let warnings _ = []
let events_seen t = t.count
