(** Back-end interface — the RoadRunner analysis contract.

    A back-end is an online analysis: it is created against a name
    environment, consumes one {!Velodrome_trace.Event.t} at a time, and
    accumulates warnings. [pause_hint] is the adversarial-scheduling hook
    (Section 5): the scheduler shows the back-end the event a thread is
    {e about} to perform; a [true] answer asks the scheduler to suspend
    that thread for a while in the hope that a conflicting operation from
    another thread lands first. Only the Atomizer answers non-trivially. *)

open Velodrome_trace

module type S = sig
  type t

  val name : string
  val create : Names.t -> t

  val on_event : t -> Event.t -> unit
  (** Called after the operation has executed. *)

  val pause_hint : t -> Event.t -> bool
  (** Called before the operation executes; must not update state. *)

  val finish : t -> unit
  (** End of the trace; flush any pending reports. *)

  val warnings : t -> Warning.t list
  (** In reporting order. Stable across calls. *)
end

type packed
(** A back-end bundled with its state. *)

val make : (module S) -> Names.t -> packed
val name : packed -> string
val on_event : packed -> Event.t -> unit
val pause_hint : packed -> Event.t -> bool
val finish : packed -> unit
val warnings : packed -> Warning.t list

type filter = {
  would_forward : Event.t -> bool;
      (** pure preview, used for [pause_hint] routing *)
  observe : Event.t -> bool;
      (** update filter state; [true] means forward to the inner back-end *)
}

val filter : suffix:string -> (unit -> filter) -> packed -> packed
(** [filter ~suffix mk inner] wraps [inner] with a fresh stateful event
    filter; the wrapped back-end is named [name inner ^ suffix]. Used for
    RoadRunner's re-entrant-lock and thread-local filtering. *)

val run_events : packed list -> Event.t list -> Warning.t list
(** Feed the events to every back-end, then [finish] each and concatenate
    their warnings in back-end order. *)

val run_trace : packed list -> Trace.t -> Warning.t list
(** {!run_events} on the numbered events of a bare trace. *)
