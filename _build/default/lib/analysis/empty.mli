(** The Empty back-end of Table 1.

    Does no analysis work; it only counts events. Attaching it to the
    simulator measures pure instrumentation/dispatch overhead, which is the
    baseline the paper's "Empty" slowdown column isolates. *)

include Backend.S

val events_seen : t -> int
