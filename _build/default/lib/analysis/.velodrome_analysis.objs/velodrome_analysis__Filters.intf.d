lib/analysis/filters.mli: Backend
