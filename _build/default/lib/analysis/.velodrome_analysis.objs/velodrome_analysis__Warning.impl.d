lib/analysis/warning.ml: Format Hashtbl Label List Names Option Printf Tid Var Velodrome_trace
