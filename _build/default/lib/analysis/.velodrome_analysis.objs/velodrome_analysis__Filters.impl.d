lib/analysis/filters.ml: Backend Event Hashtbl Lock Op Option Tid Var Velodrome_trace
