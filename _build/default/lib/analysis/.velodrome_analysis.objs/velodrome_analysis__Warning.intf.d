lib/analysis/warning.mli: Format Label Names Tid Var Velodrome_trace
