lib/analysis/backend.ml: Event List Names Trace Velodrome_trace Warning
