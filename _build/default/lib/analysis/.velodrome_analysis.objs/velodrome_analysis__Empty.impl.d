lib/analysis/empty.ml: Event Names Velodrome_trace
