lib/analysis/empty.mli: Backend
