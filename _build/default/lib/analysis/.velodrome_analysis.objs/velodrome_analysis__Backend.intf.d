lib/analysis/backend.mli: Event Names Trace Velodrome_trace Warning
