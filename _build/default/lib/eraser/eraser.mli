(** The Eraser LockSet race detector (Savage et al., TOCS 1997).

    One of the two baseline analyses of Table 1 and the race oracle the
    Atomizer builds on. Each shared variable moves through the classic
    state machine:

    {v Virgin -> Exclusive(t) -> Shared -> Shared-Modified v}

    and carries a {e candidate lockset} — the locks held on every access
    since the variable became shared. A warning is reported the first time
    the candidate lockset of a Shared-Modified variable becomes empty.
    Volatile variables are exempt (their synchronization is intentional),
    which is also why Eraser cannot understand volatile hand-off idioms —
    the imprecision the paper's Section 2 example exploits.

    Eraser is neither sound nor complete for a given trace: it generalizes
    beyond the observed interleaving (reporting potential races that did
    not occur) and its lockset abstraction cannot represent non-lock
    synchronization. *)

open Velodrome_trace
open Velodrome_analysis

type t

val create : Names.t -> t
val on_event : t -> Event.t -> unit
val finish : t -> unit
val warnings : t -> Warning.t list

val lockset_is_empty : t -> Ids.Var.t -> bool
(** Whether the candidate lockset of a shared variable is currently empty
    — the "racy access" classification the Atomizer consumes. Virgin and
    Exclusive variables are not racy; volatiles are never racy. *)

val held : t -> Ids.Tid.t -> Ids.Lock.t list
(** Locks currently held by a thread (ascending ids). *)

val name : string

val backend : unit -> (module Backend.S)
