open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

module IntSet = Set.Make (Int)

type var_state =
  | Virgin
  | Exclusive of int  (** owning thread *)
  | Shared of IntSet.t  (** candidate lockset; reads only so far *)
  | Shared_modified of IntSet.t

type t = {
  names : Names.t;
  vars : (int, var_state) Hashtbl.t;
  held : (int, IntSet.t) Hashtbl.t;  (** tid -> locks held *)
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;  (** vars already warned about *)
}

let name = "eraser"

let create names =
  {
    names;
    vars = Hashtbl.create 64;
    held = Hashtbl.create 8;
    warnings_rev = [];
    reported = Hashtbl.create 8;
  }

let held_set t tid =
  Option.value ~default:IntSet.empty (Hashtbl.find_opt t.held tid)

let var_state t x =
  Option.value ~default:Virgin (Hashtbl.find_opt t.vars x)

let report t (e : Event.t) x =
  if not (Hashtbl.mem t.reported x) then begin
    Hashtbl.replace t.reported x ();
    let var = Var.of_int x in
    let message =
      Printf.sprintf "candidate lockset for %s is empty"
        (Names.var_name t.names var)
    in
    t.warnings_rev <-
      Warning.make ~analysis:name ~kind:Warning.Race ~tid:(Op.tid e.Event.op)
        ~var ~index:e.Event.index message
      :: t.warnings_rev
  end

let access t (e : Event.t) ~is_write tid x =
  if not (Names.is_volatile t.names (Var.of_int x)) then begin
    let locks = held_set t tid in
    let next =
      match var_state t x with
      | Virgin -> Exclusive tid
      | Exclusive owner when owner = tid -> Exclusive tid
      | Exclusive _ ->
        if is_write then Shared_modified locks else Shared locks
      | Shared ls ->
        let ls = IntSet.inter ls locks in
        if is_write then Shared_modified ls else Shared ls
      | Shared_modified ls -> Shared_modified (IntSet.inter ls locks)
    in
    Hashtbl.replace t.vars x next;
    match next with
    | Shared_modified ls when IntSet.is_empty ls -> report t e x
    | _ -> ()
  end

let on_event t (e : Event.t) =
  match e.Event.op with
  | Op.Read (u, x) -> access t e ~is_write:false (Tid.to_int u) (Var.to_int x)
  | Op.Write (u, x) -> access t e ~is_write:true (Tid.to_int u) (Var.to_int x)
  | Op.Acquire (u, m) ->
    let ti = Tid.to_int u in
    Hashtbl.replace t.held ti (IntSet.add (Lock.to_int m) (held_set t ti))
  | Op.Release (u, m) ->
    let ti = Tid.to_int u in
    Hashtbl.replace t.held ti (IntSet.remove (Lock.to_int m) (held_set t ti))
  | Op.Begin _ | Op.End _ -> ()

let finish _ = ()
let warnings t = List.rev t.warnings_rev

let lockset_is_empty t x =
  (not (Names.is_volatile t.names x))
  &&
  match var_state t (Var.to_int x) with
  | Virgin | Exclusive _ -> false
  | Shared ls | Shared_modified ls -> IntSet.is_empty ls

let held t u =
  IntSet.elements (held_set t (Tid.to_int u)) |> List.map Lock.of_int

let backend () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = name
    let create = create
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
