lib/eraser/eraser.ml: Backend Event Hashtbl Int List Lock Names Op Option Printf Set Tid Var Velodrome_analysis Velodrome_trace Warning
