lib/eraser/eraser.mli: Backend Event Ids Names Velodrome_analysis Velodrome_trace Warning
