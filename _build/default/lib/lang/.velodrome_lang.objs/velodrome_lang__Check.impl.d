lib/lang/check.ml: Array Ast Format Int List Lock Map Option Printf Velodrome_sim Velodrome_trace
