lib/lang/check.mli: Format Velodrome_sim
