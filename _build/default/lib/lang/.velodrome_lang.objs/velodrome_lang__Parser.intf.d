lib/lang/parser.mli: Format Velodrome_sim
