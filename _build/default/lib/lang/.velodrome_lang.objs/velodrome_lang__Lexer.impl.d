lib/lang/lexer.ml: Buffer Format List Printf String
