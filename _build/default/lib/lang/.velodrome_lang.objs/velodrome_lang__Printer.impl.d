lib/lang/printer.ml: Array Ast Format Ids List Names Symtab Velodrome_sim Velodrome_trace Velodrome_util
