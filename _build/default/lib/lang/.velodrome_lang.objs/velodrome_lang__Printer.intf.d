lib/lang/printer.mli: Format Velodrome_sim
