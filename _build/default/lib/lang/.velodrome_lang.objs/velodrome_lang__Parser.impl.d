lib/lang/parser.ml: Ast Builder Format Fun Hashtbl Lexer List Printf String Velodrome_sim Velodrome_trace Velodrome_util
