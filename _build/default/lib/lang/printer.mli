(** Pretty-printer for programs, emitting the core [.vel] form.

    Reads print as [_rK <- x;], register assignments as [_rK = e;];
    conditions and expressions range over registers only (the parser's
    desugared form), so [parse (print p)] succeeds for every program and
    [print (parse (print p)) = print p] — the round-trip property the
    language tests check. *)

val program : Format.formatter -> Velodrome_sim.Ast.program -> unit
val to_string : Velodrome_sim.Ast.program -> string
