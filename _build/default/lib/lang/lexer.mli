(** Lexer for the [.vel] program format.

    Hand-written; tokens carry line/column positions for error reporting.
    [//] comments run to end of line, [/* */] comments nest. *)

type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW of string  (** keywords: var volatile lock thread atomic sync
                      acquire release if else while work yield skip tid *)
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | EQ
  | LARROW  (** [<-] *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : token; line : int; col : int }

exception Lex_error of string * int * int
(** message, line, column *)

val tokenize : string -> spanned list
(** Raises {!Lex_error} on malformed input. The result ends with [EOF]. *)

val pp_token : Format.formatter -> token -> unit
