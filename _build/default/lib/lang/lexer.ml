type token =
  | INT of int
  | IDENT of string
  | STRING of string
  | KW of string
  | LBRACE
  | RBRACE
  | LPAREN
  | RPAREN
  | SEMI
  | EQ
  | LARROW
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQEQ
  | NEQ
  | LT
  | LE
  | GT
  | GE
  | EOF

type spanned = { tok : token; line : int; col : int }

exception Lex_error of string * int * int

let keywords =
  [
    "var"; "volatile"; "lock"; "thread"; "atomic"; "sync"; "acquire";
    "release"; "if"; "else"; "while"; "work"; "yield"; "skip"; "tid";
  ]

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'

let is_ident_char c =
  is_ident_start c || (c >= '0' && c <= '9') || c = '.' || c = '\''

let is_digit c = c >= '0' && c <= '9'

let pp_token ppf = function
  | INT n -> Format.fprintf ppf "%d" n
  | IDENT s -> Format.fprintf ppf "%s" s
  | STRING s -> Format.fprintf ppf "%S" s
  | KW s -> Format.fprintf ppf "%s" s
  | LBRACE -> Format.fprintf ppf "{"
  | RBRACE -> Format.fprintf ppf "}"
  | LPAREN -> Format.fprintf ppf "("
  | RPAREN -> Format.fprintf ppf ")"
  | SEMI -> Format.fprintf ppf ";"
  | EQ -> Format.fprintf ppf "="
  | LARROW -> Format.fprintf ppf "<-"
  | PLUS -> Format.fprintf ppf "+"
  | MINUS -> Format.fprintf ppf "-"
  | STAR -> Format.fprintf ppf "*"
  | SLASH -> Format.fprintf ppf "/"
  | PERCENT -> Format.fprintf ppf "%%"
  | EQEQ -> Format.fprintf ppf "=="
  | NEQ -> Format.fprintf ppf "!="
  | LT -> Format.fprintf ppf "<"
  | LE -> Format.fprintf ppf "<="
  | GT -> Format.fprintf ppf ">"
  | GE -> Format.fprintf ppf ">="
  | EOF -> Format.fprintf ppf "<eof>"

type state = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let peek2 st =
  if st.pos + 1 < String.length st.src then Some st.src.[st.pos + 1] else None

let advance st =
  (match peek st with
  | Some '\n' ->
    st.line <- st.line + 1;
    st.col <- 1
  | Some _ -> st.col <- st.col + 1
  | None -> ());
  st.pos <- st.pos + 1

let error st msg = raise (Lex_error (msg, st.line, st.col))

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\r' | '\n') ->
    advance st;
    skip_ws st
  | Some '/' when peek2 st = Some '/' ->
    while peek st <> None && peek st <> Some '\n' do
      advance st
    done;
    skip_ws st
  | Some '/' when peek2 st = Some '*' ->
    advance st;
    advance st;
    let depth = ref 1 in
    while !depth > 0 do
      match (peek st, peek2 st) with
      | None, _ -> error st "unterminated comment"
      | Some '*', Some '/' ->
        advance st;
        advance st;
        decr depth
      | Some '/', Some '*' ->
        advance st;
        advance st;
        incr depth
      | _ -> advance st
    done;
    skip_ws st
  | _ -> ()

let lex_ident st =
  let start = st.pos in
  while (match peek st with Some c -> is_ident_char c | None -> false) do
    advance st
  done;
  String.sub st.src start (st.pos - start)

let lex_int st =
  let start = st.pos in
  while (match peek st with Some c -> is_digit c | None -> false) do
    advance st
  done;
  int_of_string (String.sub st.src start (st.pos - start))

let lex_string st =
  advance st;
  (* opening quote *)
  let buf = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> error st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' -> (
      advance st;
      match peek st with
      | Some 'n' ->
        Buffer.add_char buf '\n';
        advance st;
        go ()
      | Some c ->
        Buffer.add_char buf c;
        advance st;
        go ()
      | None -> error st "unterminated escape")
    | Some c ->
      Buffer.add_char buf c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents buf

let next_token st =
  skip_ws st;
  let line = st.line and col = st.col in
  let mk tok = { tok; line; col } in
  match peek st with
  | None -> mk EOF
  | Some c when is_digit c -> mk (INT (lex_int st))
  | Some c when is_ident_start c ->
    let id = lex_ident st in
    if List.mem id keywords then mk (KW id) else mk (IDENT id)
  | Some '"' -> mk (STRING (lex_string st))
  | Some '{' ->
    advance st;
    mk LBRACE
  | Some '}' ->
    advance st;
    mk RBRACE
  | Some '(' ->
    advance st;
    mk LPAREN
  | Some ')' ->
    advance st;
    mk RPAREN
  | Some ';' ->
    advance st;
    mk SEMI
  | Some '+' ->
    advance st;
    mk PLUS
  | Some '-' ->
    advance st;
    mk MINUS
  | Some '*' ->
    advance st;
    mk STAR
  | Some '/' ->
    advance st;
    mk SLASH
  | Some '%' ->
    advance st;
    mk PERCENT
  | Some '=' ->
    advance st;
    if peek st = Some '=' then begin
      advance st;
      mk EQEQ
    end
    else mk EQ
  | Some '!' ->
    advance st;
    if peek st = Some '=' then begin
      advance st;
      mk NEQ
    end
    else error st "expected '=' after '!'"
  | Some '<' ->
    advance st;
    (match peek st with
    | Some '-' ->
      advance st;
      mk LARROW
    | Some '=' ->
      advance st;
      mk LE
    | _ -> mk LT)
  | Some '>' ->
    advance st;
    if peek st = Some '=' then begin
      advance st;
      mk GE
    end
    else mk GT
  | Some c -> error st (Printf.sprintf "unexpected character %C" c)

let tokenize src =
  let st = { src; pos = 0; line = 1; col = 1 } in
  let rec go acc =
    let t = next_token st in
    if t.tok = EOF then List.rev (t :: acc) else go (t :: acc)
  in
  go []
