open Velodrome_sim
open Velodrome_trace.Ids

type error = { thread : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "thread %d: %s" e.thread e.message

module LockMap = Map.Make (Int)

(* The lock effect of a statement list: the multiset of acquire/release
   depth changes, or an error message. Depths may not go negative at any
   point. *)
let rec effect held errs thread = function
  | [] -> held
  | s :: rest ->
    let held =
      match s with
      | Ast.Acquire m ->
        let k = Lock.to_int m in
        LockMap.update k
          (fun d -> Some (Option.value ~default:0 d + 1))
          held
      | Ast.Release m ->
        let k = Lock.to_int m in
        let d = Option.value ~default:0 (LockMap.find_opt k held) in
        if d <= 0 then begin
          errs :=
            {
              thread;
              message =
                Printf.sprintf "release of lock %d without matching acquire" k;
            }
            :: !errs;
          held
        end
        else if d = 1 then LockMap.remove k held
        else LockMap.add k (d - 1) held
      | Ast.Atomic (_, body) -> effect held errs thread body
      | Ast.If (_, a, b) ->
        let ha = effect held errs thread a in
        let hb = effect held errs thread b in
        if not (LockMap.equal Int.equal ha hb) then
          errs :=
            {
              thread;
              message = "if branches have different lock effects";
            }
            :: !errs;
        ha
      | Ast.While (_, body) ->
        let hb = effect held errs thread body in
        if not (LockMap.equal Int.equal hb held) then
          errs :=
            { thread; message = "loop body is not lock-neutral" } :: !errs;
        held
      | Ast.Read _ | Ast.Write _ | Ast.Local _ | Ast.Work _ | Ast.Yield ->
        held
    in
    effect held errs thread rest

let check_program (p : Ast.program) =
  let errs = ref [] in
  Array.iteri
    (fun i body ->
      let final = effect LockMap.empty errs i body in
      if not (LockMap.is_empty final) then
        errs :=
          { thread = i; message = "thread finishes while holding locks" }
          :: !errs)
    p.Ast.threads;
  match List.rev !errs with [] -> Ok () | es -> Error es
