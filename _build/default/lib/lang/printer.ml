open Velodrome_sim
open Velodrome_trace
open Velodrome_util

let reg ppf r =
  if r = Ast.tid_reg then Format.fprintf ppf "tid"
  else Format.fprintf ppf "_r%d" r

let rec expr ppf = function
  | Ast.Int n ->
    if n < 0 then Format.fprintf ppf "(0 - %d)" (-n)
    else Format.fprintf ppf "%d" n
  | Ast.Reg r -> reg ppf r
  | Ast.Add (a, b) -> Format.fprintf ppf "(%a + %a)" expr a expr b
  | Ast.Sub (a, b) -> Format.fprintf ppf "(%a - %a)" expr a expr b
  | Ast.Mul (a, b) -> Format.fprintf ppf "(%a * %a)" expr a expr b
  | Ast.Div (a, b) -> Format.fprintf ppf "(%a / %a)" expr a expr b
  | Ast.Mod (a, b) -> Format.fprintf ppf "(%a %% %a)" expr a expr b

let cmp_str = function
  | Ast.Eq -> "=="
  | Ast.Ne -> "!="
  | Ast.Lt -> "<"
  | Ast.Le -> "<="
  | Ast.Gt -> ">"
  | Ast.Ge -> ">="

let cond ppf { Ast.lhs; cmp; rhs } =
  Format.fprintf ppf "%a %s %a" expr lhs (cmp_str cmp) expr rhs

let rec stmt names ppf = function
  | Ast.Read (r0, x) ->
    Format.fprintf ppf "%a <- %s;" reg r0 (Names.var_name names x)
  | Ast.Write (x, e) ->
    Format.fprintf ppf "%s = %a;" (Names.var_name names x) expr e
  | Ast.Local (r0, e) -> Format.fprintf ppf "%a = %a;" reg r0 expr e
  | Ast.Acquire m ->
    Format.fprintf ppf "acquire %s;" (Names.lock_name names m)
  | Ast.Release m ->
    Format.fprintf ppf "release %s;" (Names.lock_name names m)
  | Ast.Atomic (l, body) ->
    Format.fprintf ppf "@[<v 2>atomic %S {%a@]@,}"
      (Names.label_name names l) (items names) body
  | Ast.If (c, a, []) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,}" cond c (items names) a
  | Ast.If (c, a, b) ->
    Format.fprintf ppf "@[<v 2>if (%a) {%a@]@,@[<v 2>} else {%a@]@,}" cond c
      (items names) a (items names) b
  | Ast.While (c, body) ->
    Format.fprintf ppf "@[<v 2>while (%a) {%a@]@,}" cond c (items names) body
  | Ast.Work n -> Format.fprintf ppf "work %d;" n
  | Ast.Yield -> Format.fprintf ppf "yield;"

and items names ppf body =
  List.iter (fun s -> Format.fprintf ppf "@,%a" (stmt names) s) body

let program ppf (p : Ast.program) =
  let names = p.Ast.names in
  Format.fprintf ppf "@[<v>";
  let inits = p.Ast.init in
  Symtab.iter names.Names.vars (fun id name ->
      let x = Ids.Var.of_int id in
      let kw = if Names.is_volatile names x then "volatile" else "var" in
      match List.assoc_opt x inits with
      | Some v when v <> 0 -> Format.fprintf ppf "%s %s = %d;@," kw name v
      | _ -> Format.fprintf ppf "%s %s;@," kw name);
  Symtab.iter names.Names.locks (fun _ name ->
      Format.fprintf ppf "lock %s;@," name);
  Array.iter
    (fun body ->
      Format.fprintf ppf "@,@[<v 2>thread {%a@]@,}@," (items names) body)
    p.Ast.threads;
  Format.fprintf ppf "@]"

let to_string p = Format.asprintf "%a" program p
