open Velodrome_trace.Ids

type reg = int

let tid_reg = 0

type expr =
  | Int of int
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr
  | Mod of expr * expr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond = { lhs : expr; cmp : cmp; rhs : expr }

type stmt =
  | Read of reg * Var.t
  | Write of Var.t * expr
  | Local of reg * expr
  | Acquire of Lock.t
  | Release of Lock.t
  | Atomic of Label.t * stmt list
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Work of int
  | Yield

type program = {
  names : Velodrome_trace.Names.t;
  var_count : int;
  init : (Var.t * int) list;
  threads : stmt list array;
}

let rec eval regs = function
  | Int n -> n
  | Reg r -> if r < Array.length regs then regs.(r) else 0
  | Add (a, b) -> eval regs a + eval regs b
  | Sub (a, b) -> eval regs a - eval regs b
  | Mul (a, b) -> eval regs a * eval regs b
  | Div (a, b) ->
    let d = eval regs b in
    if d = 0 then 0 else eval regs a / d
  | Mod (a, b) ->
    let d = eval regs b in
    if d = 0 then 0 else eval regs a mod d

let eval_cond regs { lhs; cmp; rhs } =
  let a = eval regs lhs and b = eval regs rhs in
  match cmp with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let stmt_count p =
  let rec count acc = function
    | [] -> acc
    | (Atomic (_, body)) :: rest -> count (count (acc + 1) body) rest
    | (If (_, a, b)) :: rest -> count (count (count (acc + 1) a) b) rest
    | (While (_, body)) :: rest -> count (count (acc + 1) body) rest
    | _ :: rest -> count (acc + 1) rest
  in
  Array.fold_left (fun acc body -> count acc body) 0 p.threads
