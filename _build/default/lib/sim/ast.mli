(** The mini concurrent language.

    This is the RoadRunner substitute: instead of instrumenting JVM
    bytecode we interpret a small imperative language whose observable
    actions are exactly the operations of the paper's Figure 1. Threads
    share variables (optionally volatile) and locks; everything else —
    registers, arithmetic, control flow — is thread-local and silent.

    Shared-variable access is deliberately explicit ({!Read} moves a
    shared variable into a register; expressions range over registers
    only), so every event the analyses see corresponds to one AST node
    and spin loops re-read their variable on every iteration, exactly as
    the paper's volatile hand-off example requires. *)

open Velodrome_trace.Ids

type reg = int
(** Thread-local register index. The register [tid_reg] is preloaded with
    the thread's id so replicated thread bodies can differentiate. *)

val tid_reg : reg
(** Register 0 holds the thread id at start. *)

type expr =
  | Int of int
  | Reg of reg
  | Add of expr * expr
  | Sub of expr * expr
  | Mul of expr * expr
  | Div of expr * expr  (** division by zero evaluates to 0 *)
  | Mod of expr * expr  (** modulo by zero evaluates to 0 *)

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type cond = { lhs : expr; cmp : cmp; rhs : expr }

type stmt =
  | Read of reg * Var.t  (** [r <- x]: emits [rd(t,x)] *)
  | Write of Var.t * expr  (** [x := e]: emits [wr(t,x)] *)
  | Local of reg * expr  (** [r := e]: silent *)
  | Acquire of Lock.t
  | Release of Lock.t
  | Atomic of Label.t * stmt list  (** [begin_l ... end] *)
  | If of cond * stmt list * stmt list
  | While of cond * stmt list
  | Work of int  (** [n] units of silent compute *)
  | Yield  (** silent scheduling point *)

type program = {
  names : Velodrome_trace.Names.t;
  var_count : int;
  init : (Var.t * int) list;  (** initial values; unlisted vars start at 0 *)
  threads : stmt list array;
}

val eval : int array -> expr -> int
(** Evaluate an expression over a register file. *)

val eval_cond : int array -> cond -> bool

val stmt_count : program -> int
(** Total AST statements, a rough program-size measure (the "lines"
    column of Table 1). *)
