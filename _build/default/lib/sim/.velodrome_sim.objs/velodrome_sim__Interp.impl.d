lib/sim/interp.ml: Array Ast Hashtbl List Lock Op Option Printf Tid Var Velodrome_trace
