lib/sim/interp.mli: Ast Ids Op Velodrome_trace
