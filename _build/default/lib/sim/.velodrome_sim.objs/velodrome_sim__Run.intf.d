lib/sim/run.mli: Ast Backend Interp Trace Velodrome_analysis Velodrome_trace Warning
