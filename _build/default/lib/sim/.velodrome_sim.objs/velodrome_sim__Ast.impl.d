lib/sim/ast.ml: Array Label Lock Var Velodrome_trace
