lib/sim/run.ml: Array Backend Event Hashtbl Interp List Op Option Rng Trace Vec Velodrome_analysis Velodrome_trace Velodrome_util Warning
