lib/sim/builder.ml: Ast List Names Symtab Var Vec Velodrome_trace Velodrome_util
