lib/sim/builder.mli: Ast Label Lock Names Var Velodrome_trace
