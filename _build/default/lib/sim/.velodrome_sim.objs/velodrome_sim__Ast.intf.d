lib/sim/ast.mli: Label Lock Var Velodrome_trace
