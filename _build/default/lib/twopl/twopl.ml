open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

type config = { strict : bool }

let default_config = { strict = false }

type thread_state = {
  mutable blocks : int list;  (** open block labels, innermost first *)
  mutable shrinking : bool;  (** a release has happened in this block *)
  mutable held : int;  (** locks currently held (count) *)
  mutable violated : bool;
}

type t = {
  names : Names.t;
  config : config;
  threads : (int, thread_state) Hashtbl.t;
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;
}

let name = "2pl"

let create ?(config = default_config) names =
  {
    names;
    config;
    threads = Hashtbl.create 8;
    warnings_rev = [];
    reported = Hashtbl.create 8;
  }

let thread t ti =
  match Hashtbl.find_opt t.threads ti with
  | Some st -> st
  | None ->
    let st = { blocks = []; shrinking = false; held = 0; violated = false } in
    Hashtbl.replace t.threads ti st;
    st

let report t st (e : Event.t) reason =
  if not st.violated then begin
    st.violated <- true;
    let label =
      match List.rev st.blocks with
      | l :: _ -> Some (Label.of_int l)
      | [] -> None
    in
    let key = match label with Some l -> Label.to_int l | None -> -1 in
    if not (Hashtbl.mem t.reported key) then begin
      Hashtbl.replace t.reported key ();
      t.warnings_rev <-
        Warning.make ~analysis:name ~kind:Warning.Reduction_failure
          ~tid:(Op.tid e.Event.op) ?label ~index:e.Event.index
          (Printf.sprintf "two-phase locking violated: %s" reason)
        :: t.warnings_rev
    end
  end

let in_atomic st = st.blocks <> []

let on_event t (e : Event.t) =
  let ti = Tid.to_int (Op.tid e.Event.op) in
  let st = thread t ti in
  match e.Event.op with
  | Op.Begin (_, l) ->
    if st.blocks = [] then begin
      st.shrinking <- false;
      st.violated <- false
    end;
    st.blocks <- Label.to_int l :: st.blocks
  | Op.End _ -> (
    match st.blocks with
    | _ :: rest ->
      st.blocks <- rest;
      if rest = [] then begin
        st.shrinking <- false;
        st.violated <- false
      end
    | [] -> ())
  | Op.Acquire _ ->
    if in_atomic st && st.shrinking then
      report t st e "lock acquired after a release (shrinking phase)";
    st.held <- st.held + 1
  | Op.Release _ ->
    if in_atomic st then st.shrinking <- true;
    st.held <- max 0 (st.held - 1)
  | Op.Read (_, x) | Op.Write (_, x) ->
    if
      t.config.strict && in_atomic st && st.held = 0
      && not (Names.is_volatile t.names x)
    then report t st e "shared access while holding no lock"

let finish _ = ()
let warnings t = List.rev t.warnings_rev

let backend ?(config = default_config) () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = name
    let create names = create ~config names
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
