(** Two-phase-locking discipline checking.

    The related-work baseline of Section 7: Xu, Bodík and Hill's
    serializability violation detector enforces (a variant of) strict
    two-phase locking — a {e sufficient but not necessary} condition for
    serializability, so its violations "do not necessarily imply that the
    observed trace is not serializable". This module implements that
    style of checker over the paper's event alphabet, giving the
    evaluation a third precision point between the Atomizer and
    Velodrome:

    - {b Two-phase rule}: within an atomic block, every lock acquire must
      precede every lock release (a growing phase then a shrinking
      phase). An acquire after any release is reported.
    - {b Strict variant} ([strict = true]): additionally, every shared
      variable access inside an atomic block must happen while at least
      one lock is held — the analogue of strict 2PL's "hold locks to
      commit" requirement for this lock model.

    Like the Atomizer and unlike Velodrome, this checker generalizes over
    schedules: it reports the discipline violation whether or not the
    observed interleaving actually exhibits non-serializable behaviour —
    all the precision caveats of Section 7 apply and are demonstrated in
    the test suite (the volatile hand-off program is flagged despite
    being serializable). *)

open Velodrome_trace
open Velodrome_analysis

type config = { strict : bool }

val default_config : config
(** Two-phase rule only ([strict = false]). *)

type t

val create : ?config:config -> Names.t -> t
val on_event : t -> Event.t -> unit
val finish : t -> unit
val warnings : t -> Warning.t list
val name : string
val backend : ?config:config -> unit -> (module Backend.S)
