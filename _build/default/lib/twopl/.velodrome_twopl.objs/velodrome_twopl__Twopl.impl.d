lib/twopl/twopl.ml: Backend Event Hashtbl Label List Names Op Printf Tid Velodrome_analysis Velodrome_trace Warning
