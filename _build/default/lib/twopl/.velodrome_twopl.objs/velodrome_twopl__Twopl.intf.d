lib/twopl/twopl.mli: Backend Event Names Velodrome_analysis Velodrome_trace Warning
