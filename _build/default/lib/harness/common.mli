(** Shared plumbing for the evaluation harness. *)

open Velodrome_trace
open Velodrome_analysis
open Velodrome_workloads

val time : (unit -> 'a) -> float * 'a
(** CPU seconds consumed by the call, and its result. *)

val time_median : int -> (unit -> unit) -> float
(** Median CPU time over [n] repetitions. *)

val time_stable : ?min_total:float -> int -> (unit -> unit) -> float
(** Mean CPU time per call, repeating at least [n] times and until
    [min_total] seconds (default 0.05) have accumulated, so that timer
    granularity does not dominate sub-millisecond workloads. *)

val ground_truth : Workload.t -> (string, Workload.ground_truth) Hashtbl.t
(** Ground truth indexed by method label. *)

val non_atomic_label_ids : Workload.t -> Names.t -> (int, unit) Hashtbl.t
(** Ids (in this program's name table) of methods with real violations. *)

val label_of_warning : Names.t -> Warning.t -> string option

val run_once :
  ?seed:int ->
  ?round_robin:bool ->
  ?quantum:int ->
  ?adversarial:bool ->
  ?pause_slots:int ->
  ?record_trace:bool ->
  Velodrome_sim.Ast.program ->
  (Names.t -> Backend.packed list) ->
  Velodrome_sim.Run.result
(** Run under the seeded random scheduler (or, with [round_robin], the
    deterministic single-core-style scheduler) with the given back-ends
    (created against the program's name table). *)
