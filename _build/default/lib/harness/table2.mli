(** Table 2: warnings under the all-methods-atomic assumption.

    Each workload runs several times (the paper uses five runs); distinct
    warnings are unioned per method across runs and classified against
    the workload's ground truth:

    - Atomizer warnings on non-atomic methods are real; on atomic methods
      they are false alarms.
    - Velodrome warnings with blame are attributed to the blamed method;
      by the blame theorem they can only land on methods that are not
      self-serializable in the observed trace, so the false-alarm column
      must be zero.
    - Missed = non-atomic methods the Atomizer reported but Velodrome
      never caught in any run (the observed traces happened to be
      serializable for them).

    The blame statistic (>80 % in the paper) is the fraction of
    Velodrome's warnings that carried blame. *)

type row = {
  workload : string;
  atomizer_real : int;
  atomizer_fa : int;
  velodrome_real : int;
  velodrome_fa : int;
  missed : int;
  velodrome_warnings : int;  (** total distinct warnings, incl. unblamed *)
  velodrome_blamed : int;
}

val run :
  ?size:Velodrome_workloads.Workload.size ->
  ?seeds:int list ->
  ?adversarial:bool ->
  ?round_robin:bool ->
  ?quantum:int ->
  unit ->
  row list

val row_for :
  ?size:Velodrome_workloads.Workload.size ->
  ?seeds:int list ->
  ?adversarial:bool ->
  Velodrome_workloads.Workload.t ->
  row
(** One workload's row (used by tests and ad-hoc experiments). *)

val totals : row list -> row

val print : Format.formatter -> row list -> unit
