open Velodrome_analysis
open Velodrome_workloads

type row = {
  workload : string;
  atomizer_real : int;
  atomizer_fa : int;
  velodrome_real : int;
  velodrome_fa : int;
  missed : int;
  velodrome_warnings : int;
  velodrome_blamed : int;
}

module SSet = Set.Make (String)

let run_row ?(seeds = [ 1; 2; 3; 4; 5 ]) ?(adversarial = false)
    ?(round_robin = false) ?(quantum = 1) size (w : Workload.t) =
  let truth = Common.ground_truth w in
  let atomizer_labels = ref SSet.empty in
  let velodrome_labels = ref SSet.empty in
  let v_total = ref 0 in
  let v_blamed = ref 0 in
  List.iter
    (fun seed ->
      let program = w.Workload.build size in
      let names = program.Velodrome_sim.Ast.names in
      let res =
        Common.run_once ~seed ~round_robin ~quantum ~adversarial program
          (fun n ->
            [
              Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
              Backend.make (Velodrome_core.Engine.backend ()) n;
            ])
      in
      List.iter
        (fun (warning : Warning.t) ->
          match (warning.Warning.analysis, Common.label_of_warning names warning) with
          | "atomizer", Some l -> atomizer_labels := SSet.add l !atomizer_labels
          | "velodrome", l ->
            incr v_total;
            if warning.Warning.blamed then begin
              incr v_blamed;
              match l with
              | Some l -> velodrome_labels := SSet.add l !velodrome_labels
              | None -> ()
            end
          | _ -> ())
        res.Velodrome_sim.Run.warnings)
    seeds;
  let classify set =
    SSet.fold
      (fun l (real, fa) ->
        match Hashtbl.find_opt truth l with
        | Some g when not g.Workload.atomic -> (real + 1, fa)
        | Some _ -> (real, fa + 1)
        | None -> (real, fa + 1))
      set (0, 0)
  in
  let a_real, a_fa = classify !atomizer_labels in
  let v_real, v_fa = classify !velodrome_labels in
  (* Missed relative to what the Atomizer found, as in the paper. *)
  let missed =
    SSet.cardinal
      (SSet.filter
         (fun l ->
           (match Hashtbl.find_opt truth l with
           | Some g -> not g.Workload.atomic
           | None -> false)
           && not (SSet.mem l !velodrome_labels))
         !atomizer_labels)
  in
  {
    workload = w.Workload.name;
    atomizer_real = a_real;
    atomizer_fa = a_fa;
    velodrome_real = v_real;
    velodrome_fa = v_fa;
    missed;
    velodrome_warnings = !v_total;
    velodrome_blamed = !v_blamed;
  }

let run ?(size = Workload.Medium) ?(seeds = [ 1; 2; 3; 4; 5 ])
    ?(adversarial = false) ?(round_robin = false) ?(quantum = 1) () =
  List.map (run_row ~seeds ~adversarial ~round_robin ~quantum size)
    Workload.all

let row_for ?(size = Workload.Medium) ?(seeds = [ 1; 2; 3; 4; 5 ])
    ?(adversarial = false) w =
  run_row ~seeds ~adversarial size w

let totals rows =
  List.fold_left
    (fun acc r ->
      {
        acc with
        atomizer_real = acc.atomizer_real + r.atomizer_real;
        atomizer_fa = acc.atomizer_fa + r.atomizer_fa;
        velodrome_real = acc.velodrome_real + r.velodrome_real;
        velodrome_fa = acc.velodrome_fa + r.velodrome_fa;
        missed = acc.missed + r.missed;
        velodrome_warnings = acc.velodrome_warnings + r.velodrome_warnings;
        velodrome_blamed = acc.velodrome_blamed + r.velodrome_blamed;
      })
    {
      workload = "Total";
      atomizer_real = 0;
      atomizer_fa = 0;
      velodrome_real = 0;
      velodrome_fa = 0;
      missed = 0;
      velodrome_warnings = 0;
      velodrome_blamed = 0;
    }
    rows

let print ppf rows =
  Format.fprintf ppf "%-11s | %9s %9s | %9s %9s %7s | %8s@." "Program"
    "Atz:real" "Atz:FA" "Vel:real" "Vel:FA" "Missed" "Blamed%";
  let line r =
    let pct =
      if r.velodrome_warnings = 0 then 100.0
      else
        100.0 *. float_of_int r.velodrome_blamed
        /. float_of_int r.velodrome_warnings
    in
    Format.fprintf ppf "%-11s | %9d %9d | %9d %9d %7d | %7.0f%%@." r.workload
      r.atomizer_real r.atomizer_fa r.velodrome_real r.velodrome_fa r.missed
      pct
  in
  List.iter line rows;
  line (totals rows)
