(** Method exclusion.

    Table 1's runs "configured the Atomizer and Velodrome to only check
    the remaining methods" — the known non-atomic ones are excluded, as a
    user would after triaging. RoadRunner does this by not instrumenting
    those methods' begin/end; the equivalent here is a filter that drops
    [Begin]/[End] events of excluded labels (their bodies then run as
    unary transactions). Nested occurrences are handled with a per-thread
    stack. *)

open Velodrome_trace
open Velodrome_analysis

val methods :
  excluded:(Ids.Label.t -> bool) -> Backend.packed -> Backend.packed

val filter_ops : excluded:(Ids.Label.t -> bool) -> Op.t list -> Op.t list
(** The same transformation as a pure function on operation lists, used
    when replaying recorded traces into engines for node statistics. *)
