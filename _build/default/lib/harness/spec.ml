type rule = { atomic : bool; pattern : string }
type t = rule list  (** in file order; later rules win *)

let default = []

let matches pattern name =
  let plen = String.length pattern in
  if plen > 0 && pattern.[plen - 1] = '*' then begin
    let prefix = String.sub pattern 0 (plen - 1) in
    String.length name >= String.length prefix
    && String.sub name 0 (String.length prefix) = prefix
  end
  else pattern = name

let is_checked rules name =
  (* Later rules win; unmatched methods are checked. *)
  List.fold_left
    (fun acc r -> if matches r.pattern name then r.atomic else acc)
    true rules

let parse src =
  let lines = String.split_on_char '\n' src in
  let rules = ref [] in
  let error = ref None in
  List.iteri
    (fun i line ->
      let lineno = i + 1 in
      let line =
        match String.index_opt line '#' with
        | Some k -> String.sub line 0 k
        | None -> line
      in
      let words =
        String.split_on_char ' ' line
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun w -> w <> "")
      in
      match words with
      | [] -> ()
      | [ "atomic"; pattern ] ->
        rules := { atomic = true; pattern } :: !rules
      | [ "notatomic"; pattern ] ->
        rules := { atomic = false; pattern } :: !rules
      | _ ->
        if !error = None then
          error :=
            Some
              (Printf.sprintf
                 "line %d: expected 'atomic PATTERN' or 'notatomic PATTERN'"
                 lineno))
    lines;
  match !error with
  | Some e -> Error e
  | None -> Ok (List.rev !rules)

let of_file path =
  match open_in_bin path with
  | exception Sys_error e -> Error e
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> parse (really_input_string ic (in_channel_length ic)))

let excluded rules names l =
  not (is_checked rules (Velodrome_trace.Names.label_name names l))
