lib/harness/exclude.ml: Backend Event Hashtbl List Op Tid Velodrome_analysis Velodrome_trace
