lib/harness/spec.mli: Velodrome_trace
