lib/harness/common.mli: Backend Hashtbl Names Velodrome_analysis Velodrome_sim Velodrome_trace Velodrome_workloads Warning Workload
