lib/harness/table2.mli: Format Velodrome_workloads
