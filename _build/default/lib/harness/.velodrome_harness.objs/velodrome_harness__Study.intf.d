lib/harness/study.mli: Format Velodrome_workloads
