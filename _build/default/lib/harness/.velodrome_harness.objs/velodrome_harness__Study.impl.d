lib/harness/study.ml: Backend Common Format List Set String Table2 Velodrome_analysis Velodrome_atomizer Velodrome_core Velodrome_inject Velodrome_sim Velodrome_workloads Warning Workload
