lib/harness/table1.mli: Format Velodrome_workloads
