lib/harness/table2.ml: Backend Common Format Hashtbl List Set String Velodrome_analysis Velodrome_atomizer Velodrome_core Velodrome_sim Velodrome_workloads Warning Workload
