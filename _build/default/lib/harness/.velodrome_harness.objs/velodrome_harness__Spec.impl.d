lib/harness/spec.ml: Fun List Printf String Velodrome_trace
