lib/harness/common.ml: Array Ast Hashtbl List Names Option Run Sys Velodrome_analysis Velodrome_sim Velodrome_trace Velodrome_util Velodrome_workloads Warning Workload
