lib/harness/exclude.mli: Backend Ids Op Velodrome_analysis Velodrome_trace
