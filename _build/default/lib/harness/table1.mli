(** Table 1: program sizes, running times, analysis slowdowns, and
    happens-before node statistics.

    As in the paper, the known non-atomic methods are excluded from
    checking (the tools are measured in the regime where most methods
    satisfy their specification, which stresses Velodrome with many small
    transactions). The base time is the simulator with no analysis
    attached; each slowdown is the ratio of the instrumented run to it.
    Node statistics replay the same recorded trace through the optimized
    engine with merging disabled ("Without Merge", Figure 2's
    [INS OUTSIDE]) and enabled ("With Merge", Figure 4). *)

type row = {
  workload : string;
  stmts : int;  (** program size (AST statements) *)
  events : int;  (** operations in the observed trace *)
  base_ms : float;
  slow_empty : float;
  slow_eraser : float;
  slow_atomizer : float;
  slow_velodrome : float;
  alloc_nomerge : int;
  alive_nomerge : int;
  alloc_merge : int;
  alive_merge : int;
}

val run :
  ?size:Velodrome_workloads.Workload.size ->
  ?seed:int ->
  ?repeats:int ->
  unit ->
  row list

val print : Format.formatter -> row list -> unit
