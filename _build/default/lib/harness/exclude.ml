open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

let filter_ops ~excluded ops =
  let stacks : (int, bool list ref) Hashtbl.t = Hashtbl.create 8 in
  let stack t =
    let k = Tid.to_int t in
    match Hashtbl.find_opt stacks k with
    | Some s -> s
    | None ->
      let s = ref [] in
      Hashtbl.replace stacks k s;
      s
  in
  List.filter
    (fun op ->
      match op with
      | Op.Begin (t, l) ->
        let drop = excluded l in
        let s = stack t in
        s := drop :: !s;
        not drop
      | Op.End t -> (
        let s = stack t in
        match !s with
        | dropped :: rest ->
          s := rest;
          not dropped
        | [] -> true)
      | _ -> true)
    ops

let methods ~excluded inner =
  Backend.filter ~suffix:"+exclude"
    (fun () ->
      (* Per-thread stack of booleans: true = this open block was
         dropped, so its matching End must be dropped too. *)
      let stacks : (int, bool list ref) Hashtbl.t = Hashtbl.create 8 in
      let stack t =
        let k = Tid.to_int t in
        match Hashtbl.find_opt stacks k with
        | Some s -> s
        | None ->
          let s = ref [] in
          Hashtbl.replace stacks k s;
          s
      in
      let would_forward e =
        match e.Event.op with
        | Op.Begin (_, l) -> not (excluded l)
        | Op.End t -> ( match !(stack t) with dropped :: _ -> not dropped | [] -> true)
        | _ -> true
      in
      let observe e =
        match e.Event.op with
        | Op.Begin (t, l) ->
          let drop = excluded l in
          let s = stack t in
          s := drop :: !s;
          not drop
        | Op.End t -> (
          let s = stack t in
          match !s with
          | dropped :: rest ->
            s := rest;
            not dropped
          | [] -> true)
        | _ -> true
      in
      { Backend.would_forward; observe })
    inner
