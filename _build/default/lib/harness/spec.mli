(** Atomicity specifications.

    The Velodrome prototype "takes as input a compiled Java program and a
    specification of which methods in that program should be atomic"
    (Section 5); RoadRunner configures this through command-line options.
    This module gives the reproduction the same input: a small spec
    language selecting which atomic-block labels are checked. Blocks that
    are not checked have their [Begin]/[End] filtered from the stream
    (their bodies run as unary transactions), exactly how Table 1's runs
    exclude the known non-atomic methods.

    Format — one rule per line, [#] comments, later rules win:

    {v
    atomic *              # check everything (the default)
    notatomic Thread.run* # ...except the run methods
    notatomic Set.add
    atomic Set.addAll     # but do keep this one
    v}

    Patterns are exact names or prefix globs with a trailing [*]. *)

type t

val default : t
(** Check every method. *)

val parse : string -> (t, string) result
val of_file : string -> (t, string) result

val is_checked : t -> string -> bool
(** Whether a method label should be checked for atomicity. *)

val excluded :
  t -> Velodrome_trace.Names.t -> Velodrome_trace.Ids.Label.t -> bool
(** The exclusion predicate for {!Exclude.methods}. *)
