open Velodrome_trace
open Velodrome_analysis
open Velodrome_workloads
open Velodrome_sim

type row = {
  workload : string;
  stmts : int;
  events : int;
  base_ms : float;
  slow_empty : float;
  slow_eraser : float;
  slow_atomizer : float;
  slow_velodrome : float;
  alloc_nomerge : int;
  alive_nomerge : int;
  alloc_merge : int;
  alive_merge : int;
}

let replay_engine ~merge ops names =
  let eng =
    Velodrome_core.Engine.create
      ~config:{ Velodrome_core.Engine.merge; record_graphs = false }
      names
  in
  List.iteri
    (fun index op ->
      Velodrome_core.Engine.on_event eng (Event.make ~index op))
    ops;
  Velodrome_core.Engine.finish eng;
  eng

let run_row ?(seed = 42) ?(repeats = 3) size (w : Workload.t) =
  let program = w.Workload.build size in
  let names = program.Ast.names in
  let truth = Common.ground_truth w in
  let excluded l =
    match Hashtbl.find_opt truth (Names.label_name names l) with
    | Some g -> not g.Workload.atomic
    | None -> false
  in
  let timed mk_backends =
    Common.time_stable repeats (fun () ->
        ignore (Common.run_once ~seed program mk_backends))
  in
  let base = timed (fun _ -> []) in
  let slow t = Velodrome_util.Stats.ratio t base in
  let t_empty = timed (fun n -> [ Backend.make (module Empty) n ]) in
  let t_eraser =
    timed (fun n ->
        [ Backend.make (Velodrome_eraser.Eraser.backend ()) n ])
  in
  let t_atomizer =
    timed (fun n ->
        [
          Exclude.methods ~excluded
            (Backend.make (Velodrome_atomizer.Atomizer.backend ()) n);
        ])
  in
  let t_velodrome =
    timed (fun n ->
        [
          Exclude.methods ~excluded
            (Backend.make (Velodrome_core.Engine.backend ()) n);
        ])
  in
  (* Node statistics: replay one recorded trace offline. *)
  let res = Common.run_once ~seed ~record_trace:true program (fun _ -> []) in
  let ops =
    Exclude.filter_ops ~excluded
      (Trace.to_list (Option.get res.Run.trace))
  in
  let nomerge = replay_engine ~merge:false ops names in
  let merged = replay_engine ~merge:true ops names in
  {
    workload = w.Workload.name;
    stmts = Ast.stmt_count program;
    events = res.Run.events;
    base_ms = base *. 1000.0;
    slow_empty = slow t_empty;
    slow_eraser = slow t_eraser;
    slow_atomizer = slow t_atomizer;
    slow_velodrome = slow t_velodrome;
    alloc_nomerge = Velodrome_core.Engine.nodes_allocated nomerge;
    alive_nomerge = Velodrome_core.Engine.nodes_max_alive nomerge;
    alloc_merge = Velodrome_core.Engine.nodes_allocated merged;
    alive_merge = Velodrome_core.Engine.nodes_max_alive merged;
  }

let run ?(size = Workload.Medium) ?(seed = 42) ?(repeats = 3) () =
  List.map (run_row ~seed ~repeats size) Workload.all

let print ppf rows =
  Format.fprintf ppf
    "%-11s %6s %8s %9s | %6s %7s %9s %10s | %9s %6s %9s %6s@."
    "Program" "Stmts" "Events" "Base(ms)" "Empty" "Eraser" "Atomizer"
    "Velodrome" "Alloc(nm)" "Max(nm)" "Alloc(m)" "Max(m)";
  List.iter
    (fun r ->
      Format.fprintf ppf
        "%-11s %6d %8d %9.1f | %6.1f %7.1f %9.1f %10.1f | %9d %6d %9d %6d@."
        r.workload r.stmts r.events r.base_ms r.slow_empty r.slow_eraser
        r.slow_atomizer r.slow_velodrome r.alloc_nomerge r.alive_nomerge
        r.alloc_merge r.alive_merge)
    rows
