open Ids

type t = Op.t array

let of_ops ops = Array.of_list ops
let of_array a = Array.copy a
let ops t = t
let to_list = Array.to_list
let length = Array.length
let get t i = t.(i)
let append t op = Array.append t [| op |]
let iteri = Array.iteri

let threads t =
  let module S = Set.Make (Int) in
  let s =
    Array.fold_left (fun acc op -> S.add (Tid.to_int (Op.tid op)) acc) S.empty t
  in
  List.map Tid.of_int (S.elements s)

let pp ppf t =
  Format.fprintf ppf "@[<v>";
  Array.iteri (fun i op -> Format.fprintf ppf "%3d: %a@," i Op.pp op) t;
  Format.fprintf ppf "@]"

type violation =
  | Acquire_held of int * Lock.t
  | Release_unheld of int * Lock.t
  | End_without_begin of int * Tid.t

let pp_violation ppf = function
  | Acquire_held (i, m) ->
    Format.fprintf ppf "op %d acquires %a while it is held" i Lock.pp m
  | Release_unheld (i, m) ->
    Format.fprintf ppf "op %d releases %a without holding it" i Lock.pp m
  | End_without_begin (i, t) ->
    Format.fprintf ppf "op %d: thread %a ends a block it never began" i Tid.pp
      t

let check t =
  let holder : (int, Tid.t) Hashtbl.t = Hashtbl.create 8 in
  let depth : (int, int) Hashtbl.t = Hashtbl.create 8 in
  let get_depth tid = Option.value ~default:0 (Hashtbl.find_opt depth tid) in
  let exception Bad of violation in
  try
    Array.iteri
      (fun i op ->
        match op with
        | Op.Acquire (u, m) -> (
          let key = Lock.to_int m in
          match Hashtbl.find_opt holder key with
          | Some _ -> raise (Bad (Acquire_held (i, m)))
          | None -> Hashtbl.replace holder key u)
        | Op.Release (u, m) -> (
          let key = Lock.to_int m in
          match Hashtbl.find_opt holder key with
          | Some h when Tid.equal h u -> Hashtbl.remove holder key
          | _ -> raise (Bad (Release_unheld (i, m))))
        | Op.Begin (u, _) ->
          Hashtbl.replace depth (Tid.to_int u) (get_depth (Tid.to_int u) + 1)
        | Op.End u ->
          let d = get_depth (Tid.to_int u) in
          if d = 0 then raise (Bad (End_without_begin (i, u)))
          else Hashtbl.replace depth (Tid.to_int u) (d - 1)
        | Op.Read _ | Op.Write _ -> ())
      t;
    Ok ()
  with Bad v -> Error v

let is_well_formed t = Result.is_ok (check t)
