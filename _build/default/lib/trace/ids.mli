(** Dense integer identifiers for threads, variables, locks and atomic-block
    labels (the domains [Tid], [Var], [Lock], [Label] of the paper's
    Figure 1).

    Each identifier kind is a distinct nominal type so that a lock cannot be
    passed where a variable is expected, yet each is represented as a dense
    non-negative integer so per-identifier analysis state can live in
    arrays. Human-readable names are kept separately in a {!Names.t}. *)

module type ID = sig
  type t

  val of_int : int -> t
  (** Raises [Invalid_argument] on negative input. *)

  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int

  val pp : Format.formatter -> t -> unit
  (** Prints with the kind's one-letter prefix, e.g. [t0], [x3], [m1]. *)
end

module Tid : ID
module Var : ID
module Lock : ID
module Label : ID
