(** Name environments.

    Operations carry only dense integer identifiers ({!Ids}); this module
    holds the mapping back to source-level names for error reporting. A
    [Names.t] is built once per program/workload and threaded to the
    reporting layer only — the hot analysis paths never touch it. *)

open Velodrome_util

type t = {
  vars : Symtab.t;
  locks : Symtab.t;
  labels : Symtab.t;
  sites : Symtab.t;  (** source locations for diagnostics *)
  volatiles : (int, unit) Hashtbl.t;  (** var ids declared volatile *)
}

val create : unit -> t

val var : t -> string -> Ids.Var.t
(** Interns (allocating on first use). *)

val lock : t -> string -> Ids.Lock.t
val label : t -> string -> Ids.Label.t

val site : t -> string -> int
(** Interns a source-location string, returning its id. *)

val var_name : t -> Ids.Var.t -> string
val lock_name : t -> Ids.Lock.t -> string
val label_name : t -> Ids.Label.t -> string

val site_name : t -> int -> string
(** ["?"] for the unknown site [-1]. *)

val no_site : int
(** The id used when an event has no source location. *)

val set_volatile : t -> Ids.Var.t -> unit
(** Declare a variable volatile. Race detectors exempt volatiles from
    reporting; the Atomizer still treats volatile accesses as non-movers.
    Velodrome needs no such annotation — conflict order covers volatile
    synchronization automatically. *)

val is_volatile : t -> Ids.Var.t -> bool
