(** Compact binary trace serialization (the [.velb] format).

    The textual {!Trace_io} format is convenient to read and edit but
    expensive to replay: every event costs a line split plus a hashtable
    intern, and the whole file must sit in memory. This module is the
    machine format for the same data — a versioned, self-describing
    container built for streaming replay:

    {v
    "VELB"  version            magic + format version (varint)
    dicts   vars locks labels sites
                               interned-name dictionaries, id order
    volatiles                  ascending delta-encoded var ids
    count                      number of events (varint)
    events                     one tag byte + varint deltas per event
    "VEND"                     end marker (truncation detection)
    v}

    Every integer is an LEB128 varint; signed deltas are zigzag-encoded.
    Each event carries its opcode in the low three bits of the tag byte;
    bit 3 says "same thread as the previous event", otherwise a thread-id
    delta follows. Operand ids (variable, lock, label) are delta-encoded
    against the previous operand of the same kind, so the hot case — a
    thread hammering one variable — costs two bytes per event and decodes
    with no hashing at all.

    Encoding then decoding reproduces the trace {e and} the name
    environment exactly: all four dictionaries are written in full (even
    names no event mentions) together with the volatile set.

    Readers never trust the input: a wrong magic, an unknown version, a
    reserved tag bit, an out-of-range id, a missing end marker or bytes
    past it all raise {!Corrupt} with the file offset. *)

exception Corrupt of string
(** Malformed or truncated binary input; the message includes the byte
    offset where decoding stopped. *)

val magic : string
(** ["VELB"] — the first four bytes of every binary trace. *)

val version : int
(** The format version this build writes and accepts. *)

val to_channel : Names.t -> Trace.t -> out_channel -> unit
val of_channel : in_channel -> Names.t * Trace.t

val write_file : Names.t -> Trace.t -> string -> unit
val read_file : string -> Names.t * Trace.t

val is_binary_file : string -> bool
(** Whether the file starts with {!magic}. False for unreadable or short
    files; used to auto-detect the format of trace inputs. *)

(** {1 Streaming decode}

    A {!reader} decodes the header eagerly — so the name environment is
    available up front for constructing analysis back-ends — and then
    yields events one at a time without ever materializing the trace. *)

type reader

val reader_of_channel : in_channel -> reader
(** Decodes the header (magic, version, dictionaries, event count).
    Raises {!Corrupt} on malformed input. *)

val reader_names : reader -> Names.t
val reader_length : reader -> int

val fold_events : reader -> init:'a -> f:('a -> Event.t -> 'a) -> 'a
(** Decodes all events in order, threading the accumulator. Event
    indices count from 0. After the last event the end marker is
    verified and trailing bytes are rejected; raises {!Corrupt} if the
    stream is truncated or damaged. Single-shot: a reader cannot be
    folded twice. *)

val iter_events : reader -> (Event.t -> unit) -> unit
