open Ids

type t =
  | Read of Tid.t * Var.t
  | Write of Tid.t * Var.t
  | Acquire of Tid.t * Lock.t
  | Release of Tid.t * Lock.t
  | Begin of Tid.t * Label.t
  | End of Tid.t

let tid = function
  | Read (t, _)
  | Write (t, _)
  | Acquire (t, _)
  | Release (t, _)
  | Begin (t, _)
  | End t -> t

let var_of = function Read (_, x) | Write (_, x) -> Some x | _ -> None
let lock_of = function Acquire (_, m) | Release (_, m) -> Some m | _ -> None
let is_write = function Write _ -> true | _ -> false
let is_access = function Read _ | Write _ -> true | _ -> false

let conflicts a b =
  Tid.equal (tid a) (tid b)
  || (match (var_of a, var_of b) with
     | Some x, Some y -> Var.equal x y && (is_write a || is_write b)
     | _ -> false)
  || (match (lock_of a, lock_of b) with
     | Some m, Some n -> Lock.equal m n
     | _ -> false)

let equal (a : t) (b : t) = a = b
let compare (a : t) (b : t) = Stdlib.compare a b

let pp ppf = function
  | Read (t, x) -> Format.fprintf ppf "%a:rd(%a)" Tid.pp t Var.pp x
  | Write (t, x) -> Format.fprintf ppf "%a:wr(%a)" Tid.pp t Var.pp x
  | Acquire (t, m) -> Format.fprintf ppf "%a:acq(%a)" Tid.pp t Lock.pp m
  | Release (t, m) -> Format.fprintf ppf "%a:rel(%a)" Tid.pp t Lock.pp m
  | Begin (t, l) -> Format.fprintf ppf "%a:begin(%a)" Tid.pp t Label.pp l
  | End t -> Format.fprintf ppf "%a:end" Tid.pp t

let pp_named names ppf = function
  | Read (t, x) ->
    Format.fprintf ppf "%a:rd(%s)" Tid.pp t (Names.var_name names x)
  | Write (t, x) ->
    Format.fprintf ppf "%a:wr(%s)" Tid.pp t (Names.var_name names x)
  | Acquire (t, m) ->
    Format.fprintf ppf "%a:acq(%s)" Tid.pp t (Names.lock_name names m)
  | Release (t, m) ->
    Format.fprintf ppf "%a:rel(%s)" Tid.pp t (Names.lock_name names m)
  | Begin (t, l) ->
    Format.fprintf ppf "%a:begin(%s)" Tid.pp t (Names.label_name names l)
  | End t -> Format.fprintf ppf "%a:end" Tid.pp t

let to_string op = Format.asprintf "%a" pp op
