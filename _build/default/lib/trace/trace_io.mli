(** Textual trace serialization.

    RoadRunner-style tooling routinely records event streams and replays
    them through analyses offline; this module gives traces a stable,
    line-oriented, human-editable format:

    {v
    # comments and blank lines are ignored
    t0 begin Set.add
    t0 rd elems
    t1 wr elems
    t0 wr elems
    t0 end
    t2 acq vector
    t2 rel vector
    v}

    Thread ids are [tN]; variables, locks and labels are free-form names
    interned into the {!Names.t} produced alongside the trace. Writing
    then reading a trace reproduces it exactly (up to the interning of
    names, which is deterministic in first-use order). *)

exception Syntax_error of int * string
(** line number (1-based) and message *)

val to_string : Names.t -> Trace.t -> string

val write : Names.t -> Trace.t -> out_channel -> unit

val of_string : string -> Names.t * Trace.t
(** Raises {!Syntax_error} on malformed input. *)

val read_file : string -> Names.t * Trace.t
val write_file : Names.t -> Trace.t -> string -> unit
