open Ids
open Velodrome_util

type config = {
  threads : int;
  vars : int;
  locks : int;
  labels : int;
  steps : int;
  w_read : int;
  w_write : int;
  w_acquire : int;
  w_release : int;
  w_begin : int;
  w_end : int;
  max_depth : int;
  close_trailing : bool;
}

let default =
  {
    threads = 3;
    vars = 4;
    locks = 2;
    labels = 3;
    steps = 40;
    w_read = 5;
    w_write = 5;
    w_acquire = 3;
    w_release = 3;
    w_begin = 3;
    w_end = 3;
    max_depth = 2;
    close_trailing = true;
  }

let small =
  {
    default with
    threads = 2;
    vars = 2;
    locks = 1;
    steps = 8;
    max_depth = 1;
  }

type thread_state = { mutable depth : int; mutable held : int list }

let run rng cfg =
  if cfg.threads <= 0 then invalid_arg "Gen.run: need at least one thread";
  let ops = Vec.create () in
  let states = Array.init cfg.threads (fun _ -> { depth = 0; held = [] }) in
  let lock_free = Array.make (max cfg.locks 1) true in
  let emit op = Vec.push ops op in
  for _ = 1 to cfg.steps do
    let ti = Rng.int rng cfg.threads in
    let t = Tid.of_int ti in
    let st = states.(ti) in
    (* Build the weighted candidate list valid in the current state. *)
    let candidates = ref [] in
    let add w f = if w > 0 then candidates := (w, f) :: !candidates in
    if cfg.vars > 0 then begin
      add cfg.w_read (fun () ->
          emit (Op.Read (t, Var.of_int (Rng.int rng cfg.vars))));
      add cfg.w_write (fun () ->
          emit (Op.Write (t, Var.of_int (Rng.int rng cfg.vars))))
    end;
    if cfg.locks > 0 then begin
      let free =
        List.filter (fun m -> lock_free.(m)) (List.init cfg.locks Fun.id)
      in
      if free <> [] then
        add cfg.w_acquire (fun () ->
            let m = List.nth free (Rng.int rng (List.length free)) in
            lock_free.(m) <- false;
            st.held <- m :: st.held;
            emit (Op.Acquire (t, Lock.of_int m)));
      if st.held <> [] then
        add cfg.w_release (fun () ->
            let m = List.nth st.held (Rng.int rng (List.length st.held)) in
            lock_free.(m) <- true;
            st.held <- List.filter (fun x -> x <> m) st.held;
            emit (Op.Release (t, Lock.of_int m)))
    end;
    if st.depth < cfg.max_depth && cfg.labels > 0 then
      add cfg.w_begin (fun () ->
          st.depth <- st.depth + 1;
          emit (Op.Begin (t, Label.of_int (Rng.int rng cfg.labels))));
    if st.depth > 0 then
      add cfg.w_end (fun () ->
          st.depth <- st.depth - 1;
          emit (Op.End t));
    match !candidates with
    | [] -> ()
    | cands ->
      let total = List.fold_left (fun acc (w, _) -> acc + w) 0 cands in
      let pick = Rng.int rng total in
      let rec go acc = function
        | [] -> assert false
        | (w, f) :: rest -> if pick < acc + w then f () else go (acc + w) rest
      in
      go 0 cands
  done;
  if cfg.close_trailing then
    Array.iteri
      (fun ti st ->
        let t = Tid.of_int ti in
        List.iter
          (fun m ->
            lock_free.(m) <- true;
            emit (Op.Release (t, Lock.of_int m)))
          st.held;
        st.held <- [];
        while st.depth > 0 do
          st.depth <- st.depth - 1;
          emit (Op.End t)
        done)
      states;
  Trace.of_array (Vec.to_array ops)
