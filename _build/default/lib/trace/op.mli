(** Operations — the alphabet of Figure 1.

    [rd(t,x,v)] and [wr(t,x,v)] in the paper carry the value [v] read or
    written; the analyses never inspect it (only the access pattern
    matters for conflict-serializability), so operations here carry only
    the thread, the variable or lock, and for [Begin] the atomic-block
    label. *)

open Ids

type t =
  | Read of Tid.t * Var.t
  | Write of Tid.t * Var.t
  | Acquire of Tid.t * Lock.t
  | Release of Tid.t * Lock.t
  | Begin of Tid.t * Label.t  (** entry into an atomic block labelled [l] *)
  | End of Tid.t  (** exit of the innermost open atomic block *)

val tid : t -> Tid.t
(** The paper's [tid(a)]. *)

val conflicts : t -> t -> bool
(** Two operations conflict (Section 2) iff they access the same variable
    with at least one write, operate on the same lock, or are performed by
    the same thread. Conflicting operations may not be commuted when
    searching for an equivalent serial trace. *)

val is_access : t -> bool
(** True for [Read] and [Write]. *)

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val pp_named : Names.t -> Format.formatter -> t -> unit

val to_string : t -> string
