open Velodrome_util

type t = {
  vars : Symtab.t;
  locks : Symtab.t;
  labels : Symtab.t;
  sites : Symtab.t;
  volatiles : (int, unit) Hashtbl.t;
}

let create () =
  {
    vars = Symtab.create ();
    locks = Symtab.create ();
    labels = Symtab.create ();
    sites = Symtab.create ();
    volatiles = Hashtbl.create 8;
  }

let var t s = Ids.Var.of_int (Symtab.intern t.vars s)
let lock t s = Ids.Lock.of_int (Symtab.intern t.locks s)
let label t s = Ids.Label.of_int (Symtab.intern t.labels s)
let site t s = Symtab.intern t.sites s

let lookup tbl id fallback =
  match id with
  | id when id >= 0 && id < Symtab.size tbl -> Symtab.name tbl id
  | _ -> fallback

let var_name t x =
  lookup t.vars (Ids.Var.to_int x) (Format.asprintf "%a" Ids.Var.pp x)

let lock_name t m =
  lookup t.locks (Ids.Lock.to_int m) (Format.asprintf "%a" Ids.Lock.pp m)

let label_name t l =
  lookup t.labels (Ids.Label.to_int l) (Format.asprintf "%a" Ids.Label.pp l)

let site_name t s = lookup t.sites s "?"
let no_site = -1
let set_volatile t x = Hashtbl.replace t.volatiles (Ids.Var.to_int x) ()
let is_volatile t x = Hashtbl.mem t.volatiles (Ids.Var.to_int x)
