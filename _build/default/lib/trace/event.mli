(** Instrumentation events.

    An event is an operation plus the diagnostic context RoadRunner would
    attach: a source-site id (interned in {!Names.t}) and the global index
    of the event in the observed stream. Analyses consume events; formal
    reasoning (the oracle, the trace generators) works on bare
    operations. *)

type t = {
  op : Op.t;
  site : int;  (** interned source location, or {!Names.no_site} *)
  index : int;  (** position in the observed stream, starting at 0 *)
}

val make : ?site:int -> index:int -> Op.t -> t

val of_ops : Op.t list -> t list
(** Number a bare operation list into an event stream with unknown sites. *)

val pp : Format.formatter -> t -> unit
