(** Random well-formed traces.

    Drives the property-based tests: the soundness/completeness theorem is
    checked by comparing the online engines against the offline oracle on
    traces drawn from this generator. The generator maintains the global
    lock and block state while emitting, so every produced trace satisfies
    {!Trace.check} by construction. Determinism comes from the caller's
    {!Velodrome_util.Rng.t}. *)

type config = {
  threads : int;
  vars : int;
  locks : int;
  labels : int;
  steps : int;  (** number of generation steps (≈ trace length) *)
  w_read : int;
  w_write : int;
  w_acquire : int;
  w_release : int;
  w_begin : int;
  w_end : int;  (** relative weights of each operation kind *)
  max_depth : int;  (** maximum atomic-block nesting *)
  close_trailing : bool;
      (** when true, close all open blocks and release all held locks at
          the end, so the trace has no truncated transactions *)
}

val default : config
(** 3 threads, 4 vars, 2 locks, 40 steps, balanced weights, depth 2,
    trailing closes on. *)

val small : config
(** 2–3 ops per thread; suitable for the exponential brute-force oracle. *)

val run : Velodrome_util.Rng.t -> config -> Trace.t
