(** Transaction segmentation (Section 2).

    A transaction is the sequence of operations executed by a thread from an
    outermost [Begin] up to and including the matching [End] — or up to the
    end of the trace when the block is never closed. Nested [Begin]/[End]
    pairs stay inside the enclosing transaction. An operation outside any
    atomic block forms a unary transaction by itself, so every operation of
    a trace belongs to exactly one transaction and every transaction is
    non-empty. *)

open Ids

type t = {
  id : int;  (** dense index into the segmentation, in order of first op *)
  tid : Tid.t;
  label : Label.t option;  (** [None] for unary transactions *)
  ops : int array;  (** ascending indices into the trace *)
}

type segmentation = {
  txns : t array;
  owner : int array;  (** [owner.(i)] is the transaction id of trace op [i] *)
}

val segment : Trace.t -> segmentation

val is_unary : t -> bool

val serial : Trace.t -> bool
(** True iff every transaction's operations are contiguous in the trace —
    the paper's definition of a serial trace. *)

val pp : Format.formatter -> t -> unit
