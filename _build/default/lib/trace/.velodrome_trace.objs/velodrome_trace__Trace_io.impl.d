lib/trace/trace_io.ml: Buffer Fun Ids List Names Op Printf String Tid Trace
