lib/trace/trace.mli: Format Ids Lock Op Tid
