lib/trace/gen.ml: Array Fun Ids Label List Lock Op Rng Tid Trace Var Vec Velodrome_util
