lib/trace/txn.ml: Array Format Hashtbl Ids Int Label List Op String Tid Trace Vec Velodrome_util
