lib/trace/trace.ml: Array Format Hashtbl Ids Int List Lock Op Option Result Set Tid
