lib/trace/trace_io.mli: Names Trace
