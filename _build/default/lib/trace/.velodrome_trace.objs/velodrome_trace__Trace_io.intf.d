lib/trace/trace_io.mli: Names Op Trace
