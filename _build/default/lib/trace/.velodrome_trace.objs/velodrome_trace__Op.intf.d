lib/trace/op.mli: Format Ids Label Lock Names Tid Var
