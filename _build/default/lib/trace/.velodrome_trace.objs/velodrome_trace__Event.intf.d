lib/trace/event.mli: Format Op
