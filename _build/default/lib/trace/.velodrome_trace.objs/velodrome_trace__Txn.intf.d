lib/trace/txn.mli: Format Ids Label Tid Trace
