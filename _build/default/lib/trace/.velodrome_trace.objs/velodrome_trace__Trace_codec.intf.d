lib/trace/trace_codec.mli: Event Names Trace
