lib/trace/event.ml: Format List Names Op
