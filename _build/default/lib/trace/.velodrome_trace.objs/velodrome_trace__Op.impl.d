lib/trace/op.ml: Format Ids Label Lock Names Stdlib Tid Var
