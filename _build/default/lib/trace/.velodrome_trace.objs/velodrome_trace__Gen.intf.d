lib/trace/gen.mli: Trace Velodrome_util
