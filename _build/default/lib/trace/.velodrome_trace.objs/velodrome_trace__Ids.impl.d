lib/trace/ids.ml: Format Int
