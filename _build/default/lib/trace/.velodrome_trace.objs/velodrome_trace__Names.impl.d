lib/trace/names.ml: Format Hashtbl Ids Symtab Velodrome_util
