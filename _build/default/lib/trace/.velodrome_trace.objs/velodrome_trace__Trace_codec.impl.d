lib/trace/trace_codec.ml: Event Fun Hashtbl Ids Label List Lock Names Op Printf String Symtab Sys Tid Trace Var Velodrome_util
