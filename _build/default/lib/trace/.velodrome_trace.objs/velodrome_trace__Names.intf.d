lib/trace/names.mli: Hashtbl Ids Symtab Velodrome_util
