(** Traces: finite sequences of operations (Section 2).

    A trace records one observed execution of a multithreaded program. The
    checkers in this repository are defined over traces, and their
    correctness statements quantify over {e well-formed} traces — those
    that could actually be produced by the semantics of Figure 1:

    - a lock is acquired only when free and released only by its holder
      (rules [ACT ACQUIRE]/[ACT RELEASE]); re-entrant acquires are assumed
      to have been filtered out, as RoadRunner does for Velodrome;
    - [End t] only closes an atomic block that [t] previously opened;
      blocks may be left open at the end of the trace (truncated
      executions are explicitly allowed by the paper's definition of a
      transaction). *)

open Ids

type t

val of_ops : Op.t list -> t
val of_array : Op.t array -> t
val ops : t -> Op.t array
val to_list : t -> Op.t list
val length : t -> int
val get : t -> int -> Op.t
val append : t -> Op.t -> t
val iteri : (int -> Op.t -> unit) -> t -> unit

val threads : t -> Tid.t list
(** Distinct thread ids, ascending. *)

val pp : Format.formatter -> t -> unit

type violation =
  | Acquire_held of int * Lock.t
      (** [acq] at this index while the lock was held *)
  | Release_unheld of int * Lock.t
      (** [rel] at this index by a thread that does not hold the lock *)
  | End_without_begin of int * Tid.t

val check : t -> (unit, violation) result
(** Well-formedness as described above. *)

val is_well_formed : t -> bool

val pp_violation : Format.formatter -> violation -> unit
