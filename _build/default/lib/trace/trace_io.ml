open Ids

exception Syntax_error of int * string

let op_line names op =
  let tid t = Printf.sprintf "t%d" (Tid.to_int t) in
  match op with
  | Op.Read (t, x) ->
    Printf.sprintf "%s rd %s" (tid t) (Names.var_name names x)
  | Op.Write (t, x) ->
    Printf.sprintf "%s wr %s" (tid t) (Names.var_name names x)
  | Op.Acquire (t, m) ->
    Printf.sprintf "%s acq %s" (tid t) (Names.lock_name names m)
  | Op.Release (t, m) ->
    Printf.sprintf "%s rel %s" (tid t) (Names.lock_name names m)
  | Op.Begin (t, l) ->
    Printf.sprintf "%s begin %s" (tid t) (Names.label_name names l)
  | Op.End t -> Printf.sprintf "%s end" (tid t)

let to_string names trace =
  let buf = Buffer.create 1024 in
  Trace.iteri
    (fun _ op ->
      Buffer.add_string buf (op_line names op);
      Buffer.add_char buf '\n')
    trace;
  Buffer.contents buf

let write names trace oc = output_string oc (to_string names trace)

let parse_tid lineno s =
  if String.length s >= 2 && s.[0] = 't' then
    match int_of_string_opt (String.sub s 1 (String.length s - 1)) with
    | Some n when n >= 0 -> Tid.of_int n
    | _ -> raise (Syntax_error (lineno, "bad thread id " ^ s))
  else raise (Syntax_error (lineno, "expected thread id like t0, got " ^ s))

let split_words s =
  String.split_on_char ' ' s
  |> List.concat_map (String.split_on_char '\t')
  |> List.concat_map (String.split_on_char '\r')
  |> List.filter (fun w -> w <> "")

let parse_line names ~lineno line =
  let line =
    match String.index_opt line '#' with
    | Some k -> String.sub line 0 k
    | None -> line
  in
  match split_words line with
  | [] -> None
  | [ t; "end" ] -> Some (Op.End (parse_tid lineno t))
  | [ t; kind; name ] ->
    let t = parse_tid lineno t in
    let op =
      match kind with
      | "rd" -> Op.Read (t, Names.var names name)
      | "wr" -> Op.Write (t, Names.var names name)
      | "acq" -> Op.Acquire (t, Names.lock names name)
      | "rel" -> Op.Release (t, Names.lock names name)
      | "begin" -> Op.Begin (t, Names.label names name)
      | k -> raise (Syntax_error (lineno, "unknown operation " ^ k))
    in
    Some op
  | _ -> raise (Syntax_error (lineno, "malformed line"))

let of_string src =
  let names = Names.create () in
  let ops = ref [] in
  let lines = String.split_on_char '\n' src in
  List.iteri
    (fun i line ->
      match parse_line names ~lineno:(i + 1) line with
      | None -> ()
      | Some op -> ops := op :: !ops)
    lines;
  (names, Trace.of_ops (List.rev !ops))

let fold_channel names ic ~init ~f =
  let acc = ref init in
  let lineno = ref 0 in
  (try
     while true do
       let line = input_line ic in
       incr lineno;
       match parse_line names ~lineno:!lineno line with
       | None -> ()
       | Some op -> acc := f !acc op
     done
   with End_of_file -> ());
  !acc

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let names = Names.create () in
      let ops_rev =
        fold_channel names ic ~init:[] ~f:(fun acc op -> op :: acc)
      in
      (names, Trace.of_ops (List.rev ops_rev)))

let write_file names trace path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> write names trace oc)
