module type ID = sig
  type t

  val of_int : int -> t
  val to_int : t -> int
  val equal : t -> t -> bool
  val compare : t -> t -> int
  val hash : t -> int
  val pp : Format.formatter -> t -> unit
end

module Make (P : sig
  val prefix : string
end) : ID = struct
  type t = int

  let of_int i =
    if i < 0 then invalid_arg ("Ids: negative " ^ P.prefix ^ " id");
    i

  let to_int i = i
  let equal = Int.equal
  let compare = Int.compare
  let hash i = i
  let pp ppf i = Format.fprintf ppf "%s%d" P.prefix i
end

module Tid = Make (struct let prefix = "t" end)
module Var = Make (struct let prefix = "x" end)
module Lock = Make (struct let prefix = "m" end)
module Label = Make (struct let prefix = "L" end)
