open Ids
open Velodrome_util

type t = {
  id : int;
  tid : Tid.t;
  label : Label.t option;
  ops : int array;
}

type segmentation = { txns : t array; owner : int array }

type open_txn = {
  mutable depth : int;
  txn_id : int;
  txn_label : Label.t;
  indices : int Vec.t;
}

let segment trace =
  let n = Trace.length trace in
  let owner = Array.make n (-1) in
  let txns = Vec.create () in
  let next_id = ref 0 in
  let fresh () =
    let id = !next_id in
    incr next_id;
    id
  in
  (* One open transaction per thread at most; keyed by tid. *)
  let open_by_tid : (int, open_txn) Hashtbl.t = Hashtbl.create 8 in
  let finish (o : open_txn) tid =
    Vec.push txns
      {
        id = o.txn_id;
        tid;
        label = Some o.txn_label;
        ops = Vec.to_array o.indices;
      }
  in
  Trace.iteri
    (fun i op ->
      let tid = Op.tid op in
      let key = Tid.to_int tid in
      match (op, Hashtbl.find_opt open_by_tid key) with
      | Op.Begin (_, l), None ->
        let o =
          { depth = 1; txn_id = fresh (); txn_label = l; indices = Vec.create () }
        in
        Vec.push o.indices i;
        owner.(i) <- o.txn_id;
        Hashtbl.replace open_by_tid key o
      | Op.Begin _, Some o ->
        o.depth <- o.depth + 1;
        Vec.push o.indices i;
        owner.(i) <- o.txn_id
      | Op.End _, Some o ->
        Vec.push o.indices i;
        owner.(i) <- o.txn_id;
        o.depth <- o.depth - 1;
        if o.depth = 0 then begin
          Hashtbl.remove open_by_tid key;
          finish o tid
        end
      | Op.End _, None ->
        (* Ill-formed; treat as a unary transaction so segmentation is
           total. Well-formedness is checked separately by {!Trace.check}. *)
        let id = fresh () in
        owner.(i) <- id;
        Vec.push txns { id; tid; label = None; ops = [| i |] }
      | _, Some o ->
        Vec.push o.indices i;
        owner.(i) <- o.txn_id
      | _, None ->
        let id = fresh () in
        owner.(i) <- id;
        Vec.push txns { id; tid; label = None; ops = [| i |] })
    trace;
  (* Close transactions truncated by the end of the trace. *)
  Hashtbl.iter (fun key o -> finish o (Tid.of_int key)) open_by_tid;
  let arr = Vec.to_array txns in
  Array.sort (fun a b -> Int.compare a.id b.id) arr;
  { txns = arr; owner }

let is_unary t = Array.length t.ops = 1 && t.label = None

let serial trace =
  let { txns; _ } = segment trace in
  Array.for_all
    (fun t ->
      let n = Array.length t.ops in
      n = 0 || t.ops.(n - 1) - t.ops.(0) = n - 1)
    txns

let pp ppf t =
  let label =
    match t.label with
    | None -> "unary"
    | Some l -> Format.asprintf "%a" Label.pp l
  in
  Format.fprintf ppf "txn#%d(%a,%s){%s}" t.id Tid.pp t.tid label
    (String.concat "," (List.map string_of_int (Array.to_list t.ops)))
