open Ids
open Velodrome_util

exception Corrupt of string

let magic = "VELB"
let end_marker = "VEND"
let version = 1

let corrupt_at ic fmt =
  let pos = try pos_in ic with Sys_error _ -> -1 in
  Printf.ksprintf
    (fun msg -> raise (Corrupt (Printf.sprintf "%s (at byte %d)" msg pos)))
    fmt

(* --- primitive encoders ---------------------------------------------------- *)

(* LEB128: seven payload bits per byte, high bit = continuation. *)
let output_varint oc n =
  if n < 0 then invalid_arg "Trace_codec: negative varint";
  let rec go n =
    if n < 0x80 then output_byte oc n
    else begin
      output_byte oc (0x80 lor (n land 0x7f));
      go (n lsr 7)
    end
  in
  go n

(* Zigzag maps small negative deltas to small unsigned codes. *)
let zigzag n = (n lsl 1) lxor (n asr (Sys.int_size - 1))
let unzigzag u = (u lsr 1) lxor (-(u land 1))
let output_zigzag oc n = output_varint oc (zigzag n)

let output_name oc s =
  output_varint oc (String.length s);
  output_string oc s

let output_dict oc tbl =
  output_varint oc (Symtab.size tbl);
  Symtab.iter tbl (fun _ s -> output_name oc s)

let op_code = function
  | Op.Read _ -> 0
  | Op.Write _ -> 1
  | Op.Acquire _ -> 2
  | Op.Release _ -> 3
  | Op.Begin _ -> 4
  | Op.End _ -> 5

(* --- encoding --------------------------------------------------------------- *)

let to_channel (names : Names.t) trace oc =
  output_string oc magic;
  output_varint oc version;
  output_dict oc names.Names.vars;
  output_dict oc names.Names.locks;
  output_dict oc names.Names.labels;
  output_dict oc names.Names.sites;
  let volatiles =
    Hashtbl.fold (fun id () acc -> id :: acc) names.Names.volatiles []
    |> List.sort compare
  in
  output_varint oc (List.length volatiles);
  let prev = ref (-1) in
  List.iter
    (fun id ->
      output_varint oc (id - !prev);
      prev := id)
    volatiles;
  output_varint oc (Trace.length trace);
  let last_tid = ref 0 in
  let last_var = ref 0 in
  let last_lock = ref 0 in
  let last_label = ref 0 in
  let operand oc last id =
    output_zigzag oc (id - !last);
    last := id
  in
  Trace.iteri
    (fun _ op ->
      let tid = Tid.to_int (Op.tid op) in
      let same = tid = !last_tid in
      output_byte oc (op_code op lor if same then 0x08 else 0);
      if not same then begin
        output_zigzag oc (tid - !last_tid);
        last_tid := tid
      end;
      match op with
      | Op.Read (_, x) | Op.Write (_, x) ->
        operand oc last_var (Var.to_int x)
      | Op.Acquire (_, m) | Op.Release (_, m) ->
        operand oc last_lock (Lock.to_int m)
      | Op.Begin (_, l) -> operand oc last_label (Label.to_int l)
      | Op.End _ -> ())
    trace;
  output_string oc end_marker

let write_file names trace path =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> to_channel names trace oc)

(* --- decoding --------------------------------------------------------------- *)

let input_byte' ic =
  match input_byte ic with
  | b -> b
  | exception End_of_file -> corrupt_at ic "truncated input"

let input_varint ic =
  let rec go shift acc =
    if shift > Sys.int_size - 7 then corrupt_at ic "varint too large";
    let b = input_byte' ic in
    let acc = acc lor ((b land 0x7f) lsl shift) in
    if b land 0x80 = 0 then acc else go (shift + 7) acc
  in
  go 0 0

let input_zigzag ic = unzigzag (input_varint ic)

let input_name ic =
  let len = input_varint ic in
  match really_input_string ic len with
  | s -> s
  | exception End_of_file -> corrupt_at ic "truncated name (%d bytes)" len

let input_dict ic tbl =
  let count = input_varint ic in
  for i = 0 to count - 1 do
    let s = input_name ic in
    if Symtab.intern tbl s <> i then
      corrupt_at ic "duplicate dictionary entry %S" s
  done

type reader = {
  ic : in_channel;
  names : Names.t;
  length : int;
  mutable last_tid : int;
  mutable last_var : int;
  mutable last_lock : int;
  mutable last_label : int;
  mutable consumed : bool;
}

let reader_of_channel ic =
  (match really_input_string ic (String.length magic) with
  | m when m = magic -> ()
  | m -> corrupt_at ic "bad magic %S (not a binary trace)" m
  | exception End_of_file -> corrupt_at ic "truncated header");
  let v = input_varint ic in
  if v <> version then
    corrupt_at ic "unsupported format version %d (expected %d)" v version;
  let names = Names.create () in
  input_dict ic names.Names.vars;
  input_dict ic names.Names.locks;
  input_dict ic names.Names.labels;
  input_dict ic names.Names.sites;
  let nvol = input_varint ic in
  let prev = ref (-1) in
  for _ = 1 to nvol do
    let delta = input_varint ic in
    if delta = 0 then corrupt_at ic "duplicate volatile id";
    prev := !prev + delta;
    Hashtbl.replace names.Names.volatiles !prev ()
  done;
  let length = input_varint ic in
  {
    ic;
    names;
    length;
    last_tid = 0;
    last_var = 0;
    last_lock = 0;
    last_label = 0;
    consumed = false;
  }

let reader_names r = r.names
let reader_length r = r.length

let id_of ic name n = if n < 0 then corrupt_at ic "negative %s id" name else n

let input_op r =
  let ic = r.ic in
  let tag = input_byte' ic in
  if tag land 0xf0 <> 0 then corrupt_at ic "bad event tag 0x%02x" tag;
  let tid =
    if tag land 0x08 <> 0 then r.last_tid
    else begin
      let t = r.last_tid + input_zigzag ic in
      r.last_tid <- id_of ic "thread" t;
      t
    end
  in
  let t = Tid.of_int tid in
  let operand name last set =
    let id = id_of ic name (last + input_zigzag ic) in
    set id;
    id
  in
  match tag land 0x07 with
  | 0 ->
    Op.Read (t, Var.of_int (operand "variable" r.last_var (fun v -> r.last_var <- v)))
  | 1 ->
    Op.Write (t, Var.of_int (operand "variable" r.last_var (fun v -> r.last_var <- v)))
  | 2 ->
    Op.Acquire (t, Lock.of_int (operand "lock" r.last_lock (fun v -> r.last_lock <- v)))
  | 3 ->
    Op.Release (t, Lock.of_int (operand "lock" r.last_lock (fun v -> r.last_lock <- v)))
  | 4 ->
    Op.Begin (t, Label.of_int (operand "label" r.last_label (fun v -> r.last_label <- v)))
  | 5 -> Op.End t
  | c -> corrupt_at ic "unknown opcode %d" c

let check_end r =
  let ic = r.ic in
  (match really_input_string ic (String.length end_marker) with
  | m when m = end_marker -> ()
  | m -> corrupt_at ic "bad end marker %S (file damaged?)" m
  | exception End_of_file -> corrupt_at ic "truncated input: missing end marker");
  match input_char ic with
  | _ -> corrupt_at ic "trailing garbage after end marker"
  | exception End_of_file -> ()

let fold_events r ~init ~f =
  if r.consumed then invalid_arg "Trace_codec.fold_events: reader already used";
  r.consumed <- true;
  let acc = ref init in
  for index = 0 to r.length - 1 do
    acc := f !acc (Event.make ~index (input_op r))
  done;
  check_end r;
  !acc

let iter_events r f = fold_events r ~init:() ~f:(fun () e -> f e)

let of_channel ic =
  let r = reader_of_channel ic in
  let ops_rev = fold_events r ~init:[] ~f:(fun acc e -> e.Event.op :: acc) in
  (r.names, Trace.of_ops (List.rev ops_rev))

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> of_channel ic)

let is_binary_file path =
  match open_in_bin path with
  | exception Sys_error _ -> false
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        match really_input_string ic (String.length magic) with
        | m -> m = magic
        | exception End_of_file -> false)
