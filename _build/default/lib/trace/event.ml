type t = { op : Op.t; site : int; index : int }

let make ?(site = Names.no_site) ~index op = { op; site; index }
let of_ops ops = List.mapi (fun index op -> make ~index op) ops
let pp ppf e = Format.fprintf ppf "#%d %a" e.index Op.pp e.op
