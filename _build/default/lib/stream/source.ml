open Velodrome_trace

type t = {
  names : Names.t;
  length : int option;
  iter : (Event.t -> unit) -> unit;
}

let of_trace names trace =
  {
    names;
    length = Some (Trace.length trace);
    iter =
      (fun f -> Trace.iteri (fun index op -> f (Event.make ~index op)) trace);
  }

let with_file path k =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      if Trace_codec.is_binary_file path then begin
        let r = Trace_codec.reader_of_channel ic in
        k
          {
            names = Trace_codec.reader_names r;
            length = Some (Trace_codec.reader_length r);
            iter = (fun f -> Trace_codec.iter_events r f);
          }
      end
      else begin
        let names = Names.create () in
        let iter f =
          let index = ref 0 in
          Trace_io.fold_channel names ic ~init:() ~f:(fun () op ->
              f (Event.make ~index:!index op);
              incr index)
        in
        k { names; length = None; iter }
      end)
