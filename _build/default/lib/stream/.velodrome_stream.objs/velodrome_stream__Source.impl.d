lib/stream/source.ml: Event Fun Names Trace Trace_codec Trace_io Velodrome_trace
