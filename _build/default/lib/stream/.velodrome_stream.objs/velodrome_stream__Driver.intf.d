lib/stream/driver.mli: Backend Source Velodrome_analysis Warning
