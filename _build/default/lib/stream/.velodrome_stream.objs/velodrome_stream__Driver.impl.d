lib/stream/driver.ml: Backend Gc List Option Source Velodrome_analysis
