lib/stream/source.mli: Event Names Trace Velodrome_trace
