(** Event sources for streaming replay.

    A source is a name environment plus a single-shot iterator over
    events. File-backed sources decode lazily — one event is live at a
    time — so a trace larger than RAM replays in bounded memory, which is
    exactly the regime the paper's online analysis is designed for.

    The name environment handed to the callback of {!with_file} is
    {e mutable}: a textual source interns names as lines are parsed, so
    back-ends created from it before iteration see names appear as
    events arrive (all analyses index by dense integer id, so this is
    safe). A binary source's dictionary is decoded up front. *)

open Velodrome_trace

type t = {
  names : Names.t;
  length : int option;
      (** Event count when known up front (binary sources); [None] for
          textual sources, which are discovered line by line. *)
  iter : (Event.t -> unit) -> unit;
      (** Single-shot iteration in trace order; indices count from 0. *)
}

val of_trace : Names.t -> Trace.t -> t
(** An in-memory trace as a source (for differential testing). *)

val with_file : string -> (t -> 'a) -> 'a
(** Opens [path], sniffs the format ({!Trace_codec.is_binary_file}) and
    runs the callback with a source over it; the file is closed when the
    callback returns or raises. Iteration raises
    {!Trace_codec.Corrupt} or {!Trace_io.Syntax_error} on malformed
    input. *)
