lib/core/pool.mli: Op Step Velodrome_trace
