lib/core/step.ml: Format Int
