lib/core/engine.ml: Backend Error_graph Event Format Hashtbl Label List Lock Names Op Option Pool Printf Step String Tid Var Velodrome_analysis Velodrome_trace Warning
