lib/core/error_graph.ml: Dot Format Ids List Names Op Printf Velodrome_trace Velodrome_util
