lib/core/pool.ml: Hashtbl List Op Option Stack Stats Step Vec Velodrome_trace Velodrome_util
