lib/core/error_graph.mli: Format Names Op Velodrome_trace
