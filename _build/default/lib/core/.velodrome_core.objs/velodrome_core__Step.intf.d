lib/core/step.mli: Format
