lib/core/basic.ml: Backend Event Hashtbl Label List Lock Names Op Option Printf Stats Tid Var Velodrome_analysis Velodrome_trace Velodrome_util Warning
