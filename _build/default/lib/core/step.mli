(** Packed steps.

    A step is a pair of a transaction node and a timestamp within that
    node ([Step = Node × Nat], Figure 4). The prototype section of the
    paper describes the representation reproduced here: each step is a
    single machine integer whose top bits identify a node {e slot} and
    whose lower bits are the timestamp. Slots are recycled when nodes are
    garbage collected; timestamps within a slot never restart, so a stale
    step — one minted before its slot was last collected — is recognized by
    comparing its timestamp against the slot's collection watermark (see
    {!Pool.resolve}).

    OCaml ints give us 62 usable bits: 15 for the slot (32768 concurrent
    live nodes, far beyond the "few dozen" the paper observes) and 47 for
    timestamps. [bottom] represents ⊥. *)

type t = private int

val bottom : t
val is_bottom : t -> bool

val make : slot:int -> ts:int -> t
(** Raises [Invalid_argument] when out of range. *)

val slot : t -> int
(** Raises [Invalid_argument] on [bottom]. *)

val ts : t -> int
(** Raises [Invalid_argument] on [bottom]. *)

val max_slots : int
val max_ts : int

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
