open Velodrome_trace
open Velodrome_util

type node = {
  slot : int;
  mutable next_ts : int;
  mutable collected_upto : int;
  mutable live : bool;
  mutable active : bool;
  mutable refcount : int;
  out : (int, edge) Hashtbl.t;  (** dst slot -> edge *)
  ancestors : (int, unit) Hashtbl.t;  (** live slots with a path here *)
  mutable d_tid : int;
  mutable d_label : int;
  mutable d_event : int;
}

and edge = {
  mutable tail_ts : int;
  mutable head_ts : int;
  mutable diag_op : Op.t option;
  mutable diag_index : int;
}

type cycle = {
  path : (node * edge * node) list;
  closing_tail_ts : int;
  closing_head_ts : int;
}

type t = {
  slots : node Vec.t;  (** every slot record ever created; index = slot *)
  free : int Stack.t;
  live_nodes : (int, node) Hashtbl.t;
  counter : Stats.counter;
}

let create () =
  {
    slots = Vec.create ();
    free = Stack.create ();
    live_nodes = Hashtbl.create 64;
    counter = Stats.counter ();
  }

let slot n = n.slot
let is_live n = n.live
let is_active n = n.active
let diag_tid n = n.d_tid
let diag_label n = n.d_label
let diag_event n = n.d_event

let alloc t ~tid ~label ~event =
  let n =
    match Stack.pop_opt t.free with
    | Some s ->
      let n = Vec.get t.slots s in
      n.live <- true;
      n.active <- false;
      n.refcount <- 0;
      Hashtbl.reset n.out;
      Hashtbl.reset n.ancestors;
      n
    | None ->
      let s = Vec.length t.slots in
      if s >= Step.max_slots then
        failwith "Pool.alloc: live node count exceeds slot space";
      let n =
        {
          slot = s;
          next_ts = 1;
          collected_upto = 0;
          live = true;
          active = false;
          refcount = 0;
          out = Hashtbl.create 4;
          ancestors = Hashtbl.create 8;
          d_tid = -1;
          d_label = -1;
          d_event = -1;
        }
      in
      Vec.push t.slots n;
      n
  in
  n.d_tid <- tid;
  n.d_label <- label;
  n.d_event <- event;
  Hashtbl.replace t.live_nodes n.slot n;
  Stats.incr t.counter;
  n

let fresh_ts n =
  let ts = n.next_ts in
  n.next_ts <- ts + 1;
  ts

let step_of n ~ts = Step.make ~slot:n.slot ~ts

let resolve t s =
  if Step.is_bottom s then None
  else begin
    let sl = Step.slot s in
    if sl >= Vec.length t.slots then None
    else begin
      let n = Vec.get t.slots sl in
      if Step.ts s <= n.collected_upto then None
      else if not n.live then None
      else Some n
    end
  end

let rec collect t n =
  n.live <- false;
  n.collected_upto <- n.next_ts - 1;
  Hashtbl.remove t.live_nodes n.slot;
  Stats.decr t.counter;
  (* This node can never again be the target of an edge, so its outgoing
     edges cannot participate in any future cycle; drop them, releasing
     references and possibly cascading. *)
  let targets = Hashtbl.fold (fun dst _ acc -> dst :: acc) n.out [] in
  Hashtbl.reset n.out;
  (* Keep the ancestor-set invariant: sets only mention live nodes. *)
  Hashtbl.iter (fun _ live -> Hashtbl.remove live.ancestors n.slot) t.live_nodes;
  Stack.push n.slot t.free;
  List.iter
    (fun dst_slot ->
      match Hashtbl.find_opt t.live_nodes dst_slot with
      | None -> ()
      | Some dst ->
        dst.refcount <- dst.refcount - 1;
        maybe_collect t dst)
    targets

and maybe_collect t n =
  if n.live && (not n.active) && n.refcount = 0 then collect t n

let set_active t n b =
  n.active <- b;
  if not b then maybe_collect t n

let sweep = maybe_collect

let happens_before_or_eq _t a b =
  a.slot = b.slot || Hashtbl.mem b.ancestors a.slot

let find_path t ~src:from_node ~dst:to_node =
  (* DFS over live out-edges from [from_node] to [to_node]. *)
  let visited = Hashtbl.create 16 in
  let rec go n =
    if Hashtbl.mem visited n.slot then None
    else begin
      Hashtbl.replace visited n.slot ();
      let result = ref None in
      (try
         Hashtbl.iter
           (fun dst_slot e ->
             match Hashtbl.find_opt t.live_nodes dst_slot with
             | None -> ()
             | Some dst ->
               if dst.slot = to_node.slot then begin
                 result := Some [ (n, e, dst) ];
                 raise Exit
               end
               else begin
                 match go dst with
                 | Some rest ->
                   result := Some ((n, e, dst) :: rest);
                   raise Exit
                 | None -> ()
               end)
           n.out
       with Exit -> ());
      !result
    end
  in
  go from_node

let add_edge t ~src ~src_ts ~dst ~dst_ts ?diag () =
  if src.slot = dst.slot then `Self
  else if Hashtbl.mem src.ancestors dst.slot then begin
    (* [dst ⇒* src] already holds; the new edge would close a cycle. *)
    match find_path t ~src:dst ~dst:src with
    | Some path ->
      `Cycle { path; closing_tail_ts = src_ts; closing_head_ts = dst_ts }
    | None ->
      (* The ancestor invariant guarantees a live path exists. *)
      assert false
  end
  else begin
    (match Hashtbl.find_opt src.out dst.slot with
    | Some e ->
      (* ⊕ keeps one edge per node pair: replace the timestamps. *)
      e.tail_ts <- src_ts;
      e.head_ts <- dst_ts;
      (match diag with
      | Some (op, idx) ->
        e.diag_op <- Some op;
        e.diag_index <- idx
      | None -> ());
      ()
    | None ->
      let e =
        {
          tail_ts = src_ts;
          head_ts = dst_ts;
          diag_op = Option.map fst diag;
          diag_index = (match diag with Some (_, i) -> i | None -> -1);
        }
      in
      Hashtbl.replace src.out dst.slot e;
      dst.refcount <- dst.refcount + 1);
    (* Close the ancestor sets under the new edge. *)
    let extra =
      src.slot
      :: Hashtbl.fold (fun s () acc -> s :: acc) src.ancestors []
    in
    let rec push n =
      let changed = ref false in
      List.iter
        (fun s ->
          if s <> n.slot && not (Hashtbl.mem n.ancestors s) then begin
            Hashtbl.replace n.ancestors s ();
            changed := true
          end)
        extra;
      if !changed then
        Hashtbl.iter
          (fun dst_slot _ ->
            match Hashtbl.find_opt t.live_nodes dst_slot with
            | Some m -> push m
            | None -> ())
          n.out
    in
    push dst;
    `Ok
  end

let live_count t = Hashtbl.length t.live_nodes
let allocated t = Stats.total_increments t.counter
let max_alive t = Stats.high_water t.counter

let check_no_live t =
  let k = live_count t in
  if k = 0 then Ok () else Error k
