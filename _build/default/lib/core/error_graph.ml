open Velodrome_trace
open Velodrome_util

type gnode = { id : int; tid : int; label : int; blamed : bool }
type gedge = { src : int; dst : int; op : Op.t option; closing : bool }
type t = { nodes : gnode list; edges : gedge list }

let node_title names n =
  let label =
    if n.label >= 0 then
      Names.label_name names (Ids.Label.of_int n.label)
    else "(unary)"
  in
  Printf.sprintf "Thread %d: %s" n.tid label

let op_label names = function
  | None -> ""
  | Some op -> Format.asprintf "%a" (Op.pp_named names) op

let to_dot names ~name g =
  let nodes =
    List.map
      (fun n ->
        {
          Dot.id = string_of_int n.id;
          label = node_title names n;
          emphasized = n.blamed;
        })
      g.nodes
  in
  let edges =
    List.map
      (fun e ->
        {
          Dot.src = string_of_int e.src;
          dst = string_of_int e.dst;
          edge_label = op_label names e.op;
          dashed = e.closing;
        })
      g.edges
  in
  Dot.render ~name nodes edges

let pp_summary names ppf g =
  let title id =
    match List.find_opt (fun n -> n.id = id) g.nodes with
    | Some n ->
      let l =
        if n.label >= 0 then Names.label_name names (Ids.Label.of_int n.label)
        else "unary"
      in
      Printf.sprintf "%s(t%d)" l n.tid
    | None -> Printf.sprintf "#%d" id
  in
  match g.edges with
  | [] -> Format.fprintf ppf "(empty cycle)"
  | first :: _ ->
    List.iter (fun e -> Format.fprintf ppf "%s -> " (title e.src)) g.edges;
    Format.fprintf ppf "%s" (title first.src)
