(** The initial analysis of Figure 2 — a deliberately independent
    implementation.

    One node is allocated per transaction, including a fresh unary
    transaction for every operation outside an atomic block (the naive
    [INS OUTSIDE] rule). No steps, no timestamps, no merging, no blame;
    cycle detection is a plain DFS reachability query over an explicit
    adjacency structure rather than {!Pool}'s incremental ancestor sets.

    Its role is differential testing: on any trace, {!Basic} and
    {!Engine} must agree both on {e whether} the trace is serializable and
    on the {e index} of the first violating event. Garbage collection
    (Section 4.1, reference counting) can be disabled to measure its
    effect. *)

open Velodrome_trace
open Velodrome_analysis

type config = { gc : bool }

val default_config : config

type t

val create : ?config:config -> Names.t -> t
val on_event : t -> Event.t -> unit
val finish : t -> unit
val warnings : t -> Warning.t list
val has_error : t -> bool
val cycles_found : t -> int
val first_error_index : t -> int option
val nodes_allocated : t -> int
val nodes_max_alive : t -> int
val nodes_live : t -> int

val backend : ?config:config -> unit -> (module Backend.S)
(** Named ["velodrome-basic"]. *)
