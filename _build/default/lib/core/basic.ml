open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis
open Velodrome_util

type config = { gc : bool }

let default_config = { gc = true }

(* Node ids are never reused; collected ids join [dead], and references
   from the weak components (L, U, R, W) are treated as ⊥ on sight. *)
type t = {
  names : Names.t;
  config : config;
  mutable next_node : int;
  succ : (int, (int, unit) Hashtbl.t) Hashtbl.t;  (** live adjacency *)
  indegree : (int, int) Hashtbl.t;
  finished : (int, unit) Hashtbl.t;  (** live but no longer current *)
  labels : (int, int) Hashtbl.t;  (** node -> label id, -1 for unary *)
  c : (int, int) Hashtbl.t;  (** tid -> current node *)
  depth : (int, int) Hashtbl.t;  (** tid -> open block nesting *)
  l : (int, int) Hashtbl.t;  (** tid -> last node *)
  u : (int, int) Hashtbl.t;  (** lock -> last releasing node *)
  r : (int * int, int) Hashtbl.t;  (** (var, tid) -> last reading node *)
  w : (int, int) Hashtbl.t;  (** var -> last writing node *)
  counter : Stats.counter;
  mutable cycles : int;
  mutable first_error : int option;
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;  (** label ids already reported *)
}

let create ?(config = default_config) names =
  {
    names;
    config;
    next_node = 0;
    succ = Hashtbl.create 64;
    indegree = Hashtbl.create 64;
    finished = Hashtbl.create 64;
    labels = Hashtbl.create 64;
    c = Hashtbl.create 8;
    depth = Hashtbl.create 8;
    l = Hashtbl.create 8;
    u = Hashtbl.create 8;
    r = Hashtbl.create 64;
    w = Hashtbl.create 64;
    counter = Stats.counter ();
    cycles = 0;
    first_error = None;
    warnings_rev = [];
    reported = Hashtbl.create 8;
  }

let live t n = Hashtbl.mem t.succ n

let alloc t label =
  let n = t.next_node in
  t.next_node <- n + 1;
  Hashtbl.replace t.succ n (Hashtbl.create 4);
  Hashtbl.replace t.indegree n 0;
  Hashtbl.replace t.labels n label;
  Stats.incr t.counter;
  n

let rec collect t n =
  (match Hashtbl.find_opt t.succ n with
  | None -> ()
  | Some out ->
    Hashtbl.remove t.succ n;
    Hashtbl.remove t.indegree n;
    Hashtbl.remove t.finished n;
    Stats.decr t.counter;
    Hashtbl.iter
      (fun m () ->
        match Hashtbl.find_opt t.indegree m with
        | Some d ->
          Hashtbl.replace t.indegree m (d - 1);
          maybe_collect t m
        | None -> ())
      out)

and maybe_collect t n =
  if
    t.config.gc && live t n
    && Hashtbl.mem t.finished n
    && Hashtbl.find_opt t.indegree n = Some 0
  then collect t n

(* Weak read: a reference to a collected node acts as ⊥. *)
let weak t tbl key =
  match Hashtbl.find_opt tbl key with
  | Some n when live t n -> Some n
  | _ -> None

let reaches t src dst =
  let visited = Hashtbl.create 16 in
  let rec go n =
    n = dst
    || (not (Hashtbl.mem visited n))
       && begin
            Hashtbl.replace visited n ();
            match Hashtbl.find_opt t.succ n with
            | None -> false
            | Some out -> Hashtbl.fold (fun m () acc -> acc || go m) out false
          end
  in
  go src

let report t (e : Event.t) current =
  t.cycles <- t.cycles + 1;
  if t.first_error = None then t.first_error <- Some e.Event.index;
  let label_id =
    Option.value ~default:(-1) (Hashtbl.find_opt t.labels current)
  in
  if not (Hashtbl.mem t.reported label_id) then begin
    Hashtbl.replace t.reported label_id ();
    let label = if label_id >= 0 then Some (Label.of_int label_id) else None in
    let message =
      Printf.sprintf "happens-before cycle involving transaction of %s"
        (match label with
        | Some l -> Names.label_name t.names l
        | None -> "a unary transaction")
    in
    t.warnings_rev <-
      Warning.make ~analysis:"velodrome-basic"
        ~kind:Warning.Atomicity_violation ~tid:(Op.tid e.Event.op) ?label
        ~index:e.Event.index message
      :: t.warnings_rev
  end

(* Add edge [src -> dst] unless it is a self-edge or would close a cycle;
   in the latter case report and drop it, keeping the graph acyclic. *)
let add_edge t (e : Event.t) src dst =
  if src <> dst && live t src && live t dst then begin
    let out = Hashtbl.find t.succ src in
    if not (Hashtbl.mem out dst) then begin
      if reaches t dst src then report t e dst
      else begin
        Hashtbl.replace out dst ();
        Hashtbl.replace t.indegree dst
          (Option.value ~default:0 (Hashtbl.find_opt t.indegree dst) + 1)
      end
    end
  end

let tid_of e = Tid.to_int (Op.tid e.Event.op)

let enter t (e : Event.t) label =
  let ti = tid_of e in
  let n = alloc t label in
  (match weak t t.l ti with
  | Some prev -> add_edge t e prev n
  | None -> ());
  Hashtbl.replace t.c ti n;
  n

let exit t (e : Event.t) =
  let ti = tid_of e in
  match Hashtbl.find_opt t.c ti with
  | Some n ->
    Hashtbl.remove t.c ti;
    Hashtbl.replace t.l ti n;
    Hashtbl.replace t.finished n ();
    maybe_collect t n
  | None -> ()

let do_acquire t (e : Event.t) n m =
  match weak t t.u (Lock.to_int m) with
  | Some last -> add_edge t e last n
  | None -> ()

let do_release t n m = Hashtbl.replace t.u (Lock.to_int m) n

let do_read t (e : Event.t) n x =
  let xi = Var.to_int x in
  (match weak t t.w xi with
  | Some last -> add_edge t e last n
  | None -> ());
  Hashtbl.replace t.r (xi, tid_of e) n

let do_write t (e : Event.t) n x =
  let xi = Var.to_int x in
  Hashtbl.iter
    (fun (x', _) reader -> if x' = xi && live t reader then add_edge t e reader n)
    t.r;
  (match weak t t.w xi with
  | Some last -> add_edge t e last n
  | None -> ());
  Hashtbl.replace t.w xi n

let on_event t (e : Event.t) =
  let ti = tid_of e in
  let dep = Option.value ~default:0 (Hashtbl.find_opt t.depth ti) in
  match e.Event.op with
  | Op.Begin (_, l) ->
    Hashtbl.replace t.depth ti (dep + 1);
    if dep = 0 then ignore (enter t e (Label.to_int l))
  | Op.End _ ->
    if dep > 0 then begin
      Hashtbl.replace t.depth ti (dep - 1);
      if dep = 1 then exit t e
    end
  | Op.Acquire (_, m) -> (
    match Hashtbl.find_opt t.c ti with
    | Some n -> do_acquire t e n m
    | None ->
      (* [INS OUTSIDE]: fresh unary transaction around the operation. *)
      let n = enter t e (-1) in
      do_acquire t e n m;
      exit t e)
  | Op.Release (_, m) -> (
    match Hashtbl.find_opt t.c ti with
    | Some n -> do_release t n m
    | None ->
      let n = enter t e (-1) in
      do_release t n m;
      exit t e)
  | Op.Read (_, x) -> (
    match Hashtbl.find_opt t.c ti with
    | Some n -> do_read t e n x
    | None ->
      let n = enter t e (-1) in
      do_read t e n x;
      exit t e)
  | Op.Write (_, x) -> (
    match Hashtbl.find_opt t.c ti with
    | Some n -> do_write t e n x
    | None ->
      let n = enter t e (-1) in
      do_write t e n x;
      exit t e)

let finish _ = ()
let warnings t = List.rev t.warnings_rev
let has_error t = t.cycles > 0
let cycles_found t = t.cycles
let first_error_index t = t.first_error
let nodes_allocated t = Stats.total_increments t.counter
let nodes_max_alive t = Stats.high_water t.counter
let nodes_live t = Hashtbl.length t.succ

let backend ?(config = default_config) () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = "velodrome-basic"
    let create names = create ~config names
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
