(** Error graphs (Section 5).

    When Velodrome detects a non-serializable trace it renders the cycle of
    transactions as a graph: boxes for transactions, edges labelled with
    the operation that induced them, the cycle-closing edge dashed, and the
    blamed transaction outlined. *)

open Velodrome_trace

type gnode = {
  id : int;  (** node slot, unique within the graph *)
  tid : int;
  label : int;  (** label id, [-1] for unary transactions *)
  blamed : bool;
}

type gedge = {
  src : int;
  dst : int;
  op : Op.t option;  (** operation that induced the edge *)
  closing : bool;
}

type t = { nodes : gnode list; edges : gedge list }

val to_dot : Names.t -> name:string -> t -> string

val pp_summary : Names.t -> Format.formatter -> t -> unit
(** One-line cycle description, e.g. [add(t0) -> unary(t1) -> add(t0)]. *)
