(** The Atomizer — reduction-based dynamic atomicity checking (Flanagan &
    Freund, POPL 2004).

    The baseline Velodrome is compared against throughout the paper.
    Lipton's theory of reduction classifies each operation inside an
    atomic block:

    - lock acquires are {e right-movers};
    - lock releases are {e left-movers};
    - race-free accesses (per an embedded Eraser lockset) are
      {e both-movers};
    - racy accesses — including volatile accesses — are {e non-movers}.

    A block is reducible, hence serializable, when its operations match
    [right-mover* · (non-mover)? · left-mover*]: everything before the
    commit point can be moved right, everything after it left. The checker
    tracks a per-thread phase (pre/post commit); a right-mover or a second
    non-mover after the commit point fails the pattern and produces a
    warning attributed to the outermost open atomic block.

    The Atomizer is {e neither sound nor complete} for the observed trace:
    the lockset abstraction yields false alarms on non-lock
    synchronization (the volatile hand-off of Section 2), while its
    generalization over schedules lets it flag violations that did not
    manifest — which is exactly why the paper runs it both as a
    comparison point (Table 2) and as the heuristic guiding adversarial
    scheduling (Section 5).

    {!pause_hint} answers [true] when the next operation is a racy access
    inside an atomic block — a potential atomicity violation; the
    adversarial scheduler then suspends the thread, giving other threads a
    chance to interpose a conflicting operation that Velodrome can then
    confirm. *)

open Velodrome_trace
open Velodrome_analysis

type t

val create : Names.t -> t
val on_event : t -> Event.t -> unit
val pause_hint : t -> Event.t -> bool
val finish : t -> unit
val warnings : t -> Warning.t list
val name : string
val backend : unit -> (module Backend.S)
