lib/atomizer/atomizer.mli: Backend Event Names Velodrome_analysis Velodrome_trace Warning
