lib/atomizer/atomizer.ml: Backend Event Hashtbl Label List Names Op Printf Tid Velodrome_analysis Velodrome_eraser Velodrome_trace Warning
