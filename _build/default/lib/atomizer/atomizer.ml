open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

type phase = Pre | Post  (** before / after the commit point *)

type thread_state = {
  mutable blocks : int list;  (** labels of open blocks, innermost first *)
  mutable phase : phase;
  mutable violated : bool;  (** already reported for this block instance *)
}

type t = {
  names : Names.t;
  eraser : Velodrome_eraser.Eraser.t;
      (** embedded lockset oracle for mover classification *)
  threads : (int, thread_state) Hashtbl.t;
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;  (** outermost labels already reported *)
}

let name = "atomizer"

let create names =
  {
    names;
    eraser = Velodrome_eraser.Eraser.create names;
    threads = Hashtbl.create 8;
    warnings_rev = [];
    reported = Hashtbl.create 8;
  }

let thread t ti =
  match Hashtbl.find_opt t.threads ti with
  | Some st -> st
  | None ->
    let st = { blocks = []; phase = Pre; violated = false } in
    Hashtbl.replace t.threads ti st;
    st

let in_atomic st = st.blocks <> []

let outermost st =
  match List.rev st.blocks with
  | l :: _ -> Some (Label.of_int l)
  | [] -> None

let report t st (e : Event.t) reason =
  if not st.violated then begin
    st.violated <- true;
    let label = outermost st in
    let key =
      match label with Some l -> Label.to_int l | None -> -1
    in
    if not (Hashtbl.mem t.reported key) then begin
      Hashtbl.replace t.reported key ();
      let message =
        Printf.sprintf "block is not reducible: %s after commit point" reason
      in
      t.warnings_rev <-
        Warning.make ~analysis:name ~kind:Warning.Reduction_failure
          ~tid:(Op.tid e.Event.op) ?label ~index:e.Event.index message
        :: t.warnings_rev
    end
  end

(* An access is a non-mover when the embedded lockset says the variable is
   racy, or when it is volatile (volatile synchronization is intentional
   communication between threads, hence never a both-mover). *)
let is_non_mover t x =
  Names.is_volatile t.names x
  || Velodrome_eraser.Eraser.lockset_is_empty t.eraser x

let classify_access t st (e : Event.t) x =
  if in_atomic st && is_non_mover t x then begin
    match st.phase with
    | Pre -> st.phase <- Post  (* this access is the commit point *)
    | Post -> report t st e "second non-mover access"
  end

let on_event t (e : Event.t) =
  let ti = Tid.to_int (Op.tid e.Event.op) in
  let st = thread t ti in
  (match e.Event.op with
  | Op.Begin (_, l) ->
    if st.blocks = [] then begin
      st.phase <- Pre;
      st.violated <- false
    end;
    st.blocks <- Label.to_int l :: st.blocks
  | Op.End _ -> (
    match st.blocks with
    | _ :: rest ->
      st.blocks <- rest;
      if rest = [] then begin
        st.phase <- Pre;
        st.violated <- false
      end
    | [] -> ())
  | Op.Acquire _ ->
    if in_atomic st && st.phase = Post then
      report t st e "lock acquire (right-mover)"
  | Op.Release _ -> if in_atomic st then st.phase <- Post
  | Op.Read (_, x) | Op.Write (_, x) ->
    (* Classification must use the lockset state *before* this access is
       folded in, matching the Atomizer's instrumentation order. *)
    classify_access t st e x);
  (* Keep the embedded lockset oracle up to date. *)
  Velodrome_eraser.Eraser.on_event t.eraser e

(* Pause when the thread is inside an atomic block, past its commit
   point, and about to perform an operation that would complete the
   non-reducible pattern: the thread is then parked {e inside} the
   violation window, so a conflicting operation from another thread can
   land there and give Velodrome a concrete witness. *)
let pause_hint t (e : Event.t) =
  let st = thread t (Tid.to_int (Op.tid e.Event.op)) in
  in_atomic st && st.phase = Post
  &&
  match e.Event.op with
  | Op.Read (_, x) | Op.Write (_, x) -> is_non_mover t x
  | Op.Acquire _ -> true
  | _ -> false

let finish _ = ()
let warnings t = List.rev t.warnings_rev

let backend () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = name
    let create = create
    let on_event = on_event
    let pause_hint = pause_hint
    let finish = finish
    let warnings = warnings
  end)
