type node = { id : string; label : string; emphasized : bool }
type edge = { src : string; dst : string; edge_label : string; dashed : bool }

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ~name nodes edges =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf (Printf.sprintf "digraph \"%s\" {\n" (escape name));
  Buffer.add_string buf "  node [shape=box, fontname=\"Helvetica\"];\n";
  List.iter
    (fun n ->
      let style = if n.emphasized then ", peripheries=2, style=bold" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" [label=\"%s\"%s];\n" (escape n.id)
           (escape n.label) style))
    nodes;
  List.iter
    (fun e ->
      let style = if e.dashed then ", style=dashed" else "" in
      Buffer.add_string buf
        (Printf.sprintf "  \"%s\" -> \"%s\" [label=\"%s\"%s];\n" (escape e.src)
           (escape e.dst) (escape e.edge_label) style))
    edges;
  Buffer.add_string buf "}\n";
  Buffer.contents buf
