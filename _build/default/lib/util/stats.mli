(** Small statistics helpers for the evaluation harness. *)

val mean : float array -> float
(** Arithmetic mean; 0.0 on an empty array. *)

val stddev : float array -> float
(** Population standard deviation; 0.0 on arrays shorter than 2. *)

val median : float array -> float
(** Median (average of middle two for even lengths); 0.0 on empty. *)

val min_max : float array -> float * float
(** Raises [Invalid_argument] on an empty array. *)

val ratio : float -> float -> float
(** [ratio num den] is [num /. den], or 0.0 when [den] is 0 — slowdown
    tables divide by a base time that can be 0 on trivial configs. *)

type counter
(** A named monotonic counter with a high-water mark, used for the paper's
    "Allocated" / "Max. Alive" node statistics. *)

val counter : unit -> counter
val incr : counter -> unit
val decr : counter -> unit
val value : counter -> int
val total_increments : counter -> int
val high_water : counter -> int
val reset : counter -> unit
