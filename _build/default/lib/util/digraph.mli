(** Directed graphs over dense integer nodes.

    Used by the offline serializability oracle (transactional conflict
    graphs) and by tests that cross-check the online engine's incremental
    cycle detection. Nodes are the integers [0 .. n-1]; parallel edges are
    collapsed. *)

type t

val create : int -> t
(** [create n] is the edgeless graph on nodes [0 .. n-1]. *)

val node_count : t -> int
val edge_count : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g u v] adds [u -> v]. Self-edges and duplicates are kept out,
    mirroring the paper's [⊕] operator which filters self-edges. Raises
    [Invalid_argument] on out-of-range nodes. *)

val mem_edge : t -> int -> int -> bool
val successors : t -> int -> int list
val iter_edges : t -> (int -> int -> unit) -> unit

val has_cycle : t -> bool
(** True iff the graph contains a (non-trivial, since self-edges are
    excluded) directed cycle. *)

val find_cycle : t -> int list option
(** [find_cycle g] returns some cycle as a node list [n0; n1; ...; nk] with
    edges [n0 -> n1 -> ... -> nk -> n0], or [None] if the graph is acyclic. *)

val topological_order : t -> int list option
(** A topological order of all nodes, or [None] if cyclic. *)

val reachable : t -> int -> int -> bool
(** [reachable g u v] is true iff there is a directed path (possibly empty)
    from [u] to [v]. *)
