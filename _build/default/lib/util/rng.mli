(** Deterministic pseudo-random number generation.

    Every source of randomness in this repository (schedulers, workload
    generators, QCheck seeds for reproducibility studies) goes through this
    module so that any run can be replayed exactly from its seed. The
    generator is splitmix64: tiny state, good statistical quality, and
    trivially splittable, which the simulator uses to give each thread an
    independent stream. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator. Equal seeds yield equal
    streams. *)

val copy : t -> t
(** Independent copy with the same current state. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator whose stream is
    statistically independent of [g]'s subsequent output. *)

val int64 : t -> int64
(** Next raw 64-bit output. *)

val bits : t -> int
(** Next non-negative 62-bit integer. *)

val int : t -> int -> int
(** [int g n] is uniform in [\[0, n)]. Raises [Invalid_argument] if
    [n <= 0]. *)

val float : t -> float -> float
(** [float g x] is uniform in [\[0, x)]. *)

val bool : t -> bool

val choose : t -> 'a array -> 'a
(** Uniform choice from a non-empty array. Raises [Invalid_argument] on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher–Yates shuffle. *)
