(** Minimal Graphviz dot emission.

    Velodrome renders each atomicity-violation cycle as a dot graph (the
    paper's error graphs, Section 5). This module only covers the subset
    needed: digraphs with styled boxes and labeled, optionally dashed,
    edges. *)

type node = {
  id : string;  (** dot identifier; escaped on output *)
  label : string;
  emphasized : bool;  (** drawn with a bold outline (the blamed node) *)
}

type edge = {
  src : string;
  dst : string;
  edge_label : string;
  dashed : bool;  (** the cycle-closing edge is rendered dashed *)
}

val render : name:string -> node list -> edge list -> string
(** [render ~name nodes edges] is the textual dot digraph. *)
