type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }
let copy g = { state = g.state }

let next_seed g =
  g.state <- Int64.add g.state golden_gamma;
  g.state

let mix z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let int64 g = mix (next_seed g)

let split g =
  let s = int64 g in
  { state = s }

let bits g = Int64.to_int (Int64.shift_right_logical (int64 g) 2)

let int g n =
  if n <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits g in
    let v = r mod n in
    if r - v > (max_int / 2 * 2) - n + 1 then go () else v
  in
  go ()

let float g x =
  let r = Int64.to_float (Int64.shift_right_logical (int64 g) 11) in
  x *. (r /. 9007199254740992.0)

let bool g = Int64.logand (int64 g) 1L = 1L

let choose g arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int g (Array.length arr))

let shuffle g arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
