lib/util/rng.mli:
