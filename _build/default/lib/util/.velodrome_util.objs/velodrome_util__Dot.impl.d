lib/util/dot.ml: Buffer List Printf String
