lib/util/symtab.mli:
