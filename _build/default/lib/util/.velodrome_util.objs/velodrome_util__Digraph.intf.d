lib/util/digraph.mli:
