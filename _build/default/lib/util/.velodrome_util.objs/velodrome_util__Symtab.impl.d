lib/util/symtab.ml: Array Hashtbl
