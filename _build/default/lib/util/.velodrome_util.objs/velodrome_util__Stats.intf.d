lib/util/stats.mli:
