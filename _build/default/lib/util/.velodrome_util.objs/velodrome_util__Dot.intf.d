lib/util/dot.mli:
