lib/util/vec.mli:
