type t = {
  ids : (string, int) Hashtbl.t;
  mutable names : string array;
  mutable count : int;
}

let create () = { ids = Hashtbl.create 64; names = Array.make 16 ""; count = 0 }

let grow t =
  let cap = Array.length t.names in
  if t.count >= cap then begin
    let names = Array.make (2 * cap) "" in
    Array.blit t.names 0 names 0 cap;
    t.names <- names
  end

let intern t s =
  match Hashtbl.find_opt t.ids s with
  | Some id -> id
  | None ->
    let id = t.count in
    grow t;
    t.names.(id) <- s;
    t.count <- t.count + 1;
    Hashtbl.add t.ids s id;
    id

let find t s = Hashtbl.find_opt t.ids s

let name t id =
  if id < 0 || id >= t.count then invalid_arg "Symtab.name: unknown id";
  t.names.(id)

let size t = t.count

let iter t f =
  for id = 0 to t.count - 1 do
    f id t.names.(id)
  done
