type t = {
  n : int;
  succ : (int, unit) Hashtbl.t array;
  mutable edges : int;
}

let create n =
  if n < 0 then invalid_arg "Digraph.create: negative size";
  { n; succ = Array.init n (fun _ -> Hashtbl.create 4); edges = 0 }

let node_count g = g.n
let edge_count g = g.edges

let check g u =
  if u < 0 || u >= g.n then invalid_arg "Digraph: node out of range"

let mem_edge g u v =
  check g u;
  check g v;
  Hashtbl.mem g.succ.(u) v

let add_edge g u v =
  check g u;
  check g v;
  if u <> v && not (Hashtbl.mem g.succ.(u) v) then begin
    Hashtbl.add g.succ.(u) v ();
    g.edges <- g.edges + 1
  end

let successors g u =
  check g u;
  Hashtbl.fold (fun v () acc -> v :: acc) g.succ.(u) []

let iter_edges g f =
  for u = 0 to g.n - 1 do
    Hashtbl.iter (fun v () -> f u v) g.succ.(u)
  done

(* Iterative three-colour DFS. 0 = white, 1 = grey (on stack), 2 = black.
   When a grey node is re-entered, the grey path from that node to the top
   of the DFS stack is a cycle. *)
let find_cycle g =
  let colour = Array.make g.n 0 in
  let parent = Array.make g.n (-1) in
  let cycle = ref None in
  let rec visit u =
    colour.(u) <- 1;
    let exception Found in
    (try
       Hashtbl.iter
         (fun v () ->
           if !cycle <> None then raise Found
           else if colour.(v) = 0 then begin
             parent.(v) <- u;
             visit v
           end
           else if colour.(v) = 1 then begin
             (* Path v ->* u in the DFS tree plus edge u -> v closes a
                cycle; reconstruct it from parents. *)
             let rec collect w acc =
               if w = v then w :: acc else collect parent.(w) (w :: acc)
             in
             cycle := Some (collect u []);
             raise Found
           end)
         g.succ.(u)
     with Found -> ());
    colour.(u) <- 2
  in
  (try
     for u = 0 to g.n - 1 do
       if colour.(u) = 0 && !cycle = None then visit u
     done
   with Stack_overflow ->
     (* Extremely deep graphs are not expected here; fail loudly. *)
     failwith "Digraph.find_cycle: graph too deep");
  !cycle

let has_cycle g = find_cycle g <> None

let topological_order g =
  if has_cycle g then None
  else begin
    let indeg = Array.make g.n 0 in
    iter_edges g (fun _ v -> indeg.(v) <- indeg.(v) + 1);
    let queue = Queue.create () in
    for u = 0 to g.n - 1 do
      if indeg.(u) = 0 then Queue.add u queue
    done;
    let order = ref [] in
    while not (Queue.is_empty queue) do
      let u = Queue.pop queue in
      order := u :: !order;
      Hashtbl.iter
        (fun v () ->
          indeg.(v) <- indeg.(v) - 1;
          if indeg.(v) = 0 then Queue.add v queue)
        g.succ.(u)
    done;
    Some (List.rev !order)
  end

let reachable g src dst =
  check g src;
  check g dst;
  if src = dst then true
  else begin
    let seen = Array.make g.n false in
    let stack = Stack.create () in
    Stack.push src stack;
    seen.(src) <- true;
    let found = ref false in
    while (not !found) && not (Stack.is_empty stack) do
      let u = Stack.pop stack in
      Hashtbl.iter
        (fun v () ->
          if v = dst then found := true
          else if not seen.(v) then begin
            seen.(v) <- true;
            Stack.push v stack
          end)
        g.succ.(u)
    done;
    !found
  end
