(** String interning.

    Variables, locks and atomic-block labels appear millions of times in an
    event stream; the analyses index per-variable state with arrays and hash
    tables keyed by small dense integers. A symbol table maps each distinct
    name to such an integer once, at program-construction time. *)

type t
(** A mutable intern table. Tables are independent: the same string interned
    in two tables may receive different ids. *)

val create : unit -> t

val intern : t -> string -> int
(** [intern tbl s] returns the id for [s], allocating the next dense id on
    first sight. Ids start at 0. *)

val find : t -> string -> int option
(** Lookup without allocating. *)

val name : t -> int -> string
(** [name tbl id] is the string interned as [id]. Raises [Invalid_argument]
    for ids never returned by [intern]. *)

val size : t -> int
(** Number of distinct symbols interned so far. *)

val iter : t -> (int -> string -> unit) -> unit
(** Iterate over (id, name) pairs in id order. *)
