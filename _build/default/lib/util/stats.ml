let mean a =
  let n = Array.length a in
  if n = 0 then 0.0 else Array.fold_left ( +. ) 0.0 a /. float_of_int n

let stddev a =
  let n = Array.length a in
  if n < 2 then 0.0
  else begin
    let m = mean a in
    let sq = Array.fold_left (fun acc x -> acc +. ((x -. m) ** 2.0)) 0.0 a in
    sqrt (sq /. float_of_int n)
  end

let median a =
  let n = Array.length a in
  if n = 0 then 0.0
  else begin
    let b = Array.copy a in
    Array.sort compare b;
    if n mod 2 = 1 then b.(n / 2) else (b.((n / 2) - 1) +. b.(n / 2)) /. 2.0
  end

let min_max a =
  if Array.length a = 0 then invalid_arg "Stats.min_max: empty array";
  Array.fold_left
    (fun (lo, hi) x -> (min lo x, max hi x))
    (a.(0), a.(0))
    a

let ratio num den = if den = 0.0 then 0.0 else num /. den

type counter = {
  mutable current : int;
  mutable total : int;
  mutable high : int;
}

let counter () = { current = 0; total = 0; high = 0 }

let incr c =
  c.current <- c.current + 1;
  c.total <- c.total + 1;
  if c.current > c.high then c.high <- c.current

let decr c = c.current <- c.current - 1
let value c = c.current
let total_increments c = c.total
let high_water c = c.high

let reset c =
  c.current <- 0;
  c.total <- 0;
  c.high <- 0
