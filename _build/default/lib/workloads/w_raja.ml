(* raja — a small, correctly synchronized ray tracer. Table 2 reports
   zero warnings from either tool: every shared access is consistently
   locked, so the program is the suite's clean control. *)

open Velodrome_sim
open Builder

let name = "raja"
let description = "fully synchronized ray tracer (the clean control)"

let methods =
  [
    ("Raja.shade", true, false);
    ("Raja.intersect", true, false);
    ("Raja.accumulate", true, false);
  ]

let build size =
  let b = create () in
  let renderers = Sizes.scale size (2, 3, 4) in
  let rays = Sizes.scale size (8, 40, 120) in
  let scene_lock = lock b "scene" in
  let acc_lock = lock b "accumulator" in
  let hits = var b "hits" in
  let shades = var b "shades" in
  let image = var b "image" in
  let weights = var b "weights" in
  threads b renderers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i rays)
          [
            work 60;
            Patterns.locked_rmw b ~label:"Raja.intersect" ~lock:scene_lock
              ~var:hits;
            Patterns.locked_rmw b ~label:"Raja.shade" ~lock:scene_lock
              ~var:shades;
            Patterns.locked_pair_update b ~label:"Raja.accumulate"
              ~lock:acc_lock ~a:image ~b:weights;
            local k (r k +: i 1);
          ];
      ]);
  program b
