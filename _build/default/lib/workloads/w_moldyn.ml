(* moldyn — molecular dynamics from the Java Grande suite: barrier-phased
   force computation with global reductions. The reductions that skip the
   reduction lock are the 4 real violations. *)

open Velodrome_sim
open Builder

let name = "moldyn"
let description = "barrier-phased molecular dynamics with global reductions"

let methods =
  [
    ("Moldyn.forceX", false, false);
    ("Moldyn.forceY", false, false);
    ("Moldyn.kineticEnergy", false, false);
    ("Moldyn.virial", false, false);
    ("Moldyn.reduceTemp", true, false);
  ]

let build size =
  let b = create () in
  let parties = Sizes.scale size (2, 3, 4) in
  let steps = Sizes.scale size (4, 14, 36) in
  let red_lock = lock b "reduction" in
  let fx = var b "force.x" in
  let fy = var b "force.y" in
  let ke = var b "kinetic" in
  let virial = var b "virial" in
  let temp = var b "temperature" in
  threads b parties (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i steps)
          ([
             work 150;
             Patterns.racy_rmw b ~label:"Moldyn.forceX" ~var:fx;
             Patterns.racy_rmw b ~label:"Moldyn.forceY" ~var:fy;
           ]
          @ Patterns.barrier b ~prefix:"moldyn.b1" ~parties
          @ [
              Patterns.racy_rmw b ~label:"Moldyn.kineticEnergy" ~var:ke;
              Patterns.double_read b ~label:"Moldyn.virial" ~var:virial;
              Patterns.racy_rmw b ~label:"Moldyn.virial" ~var:virial;
              Patterns.locked_rmw b ~label:"Moldyn.reduceTemp" ~lock:red_lock
                ~var:temp;
            ]
          @ Patterns.barrier b ~prefix:"moldyn.b2" ~parties
          @ [ local k (r k +: i 1) ]);
      ]);
  program b
