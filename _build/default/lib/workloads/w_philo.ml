(* philo — dining philosophers over a single monitor (Elmas et al.'s
   benchmark). Fork ownership is guarded by the table lock; the hungry
   bookkeeping skips it — the 2 real violations. *)

open Velodrome_sim
open Builder

let name = "philo"
let description = "dining philosophers over one table monitor"

let methods =
  [
    ("Philo.hungry", false, false);
    ("Philo.meals", false, false);
    ("Table.pickForks", true, false);
    ("Table.dropForks", true, false);
  ]

let build size =
  let b = create () in
  let philos = Sizes.scale size (2, 4, 5) in
  let rounds = Sizes.scale size (6, 30, 90) in
  let table = lock b "table" in
  let forks = var b "forks" in
  let hungry = var b "hungry" in
  let meals = var b "meals" in
  threads b philos (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i rounds)
          [
            Patterns.racy_rmw b ~label:"Philo.hungry" ~var:hungry;
            Patterns.locked_rmw b ~label:"Table.pickForks" ~lock:table
              ~var:forks;
            work 25;
            Patterns.locked_rmw b ~label:"Table.dropForks" ~lock:table
              ~var:forks;
            Patterns.racy_rmw b ~label:"Philo.meals" ~var:meals;
            local k (r k +: i 1);
          ];
      ]);
  program b
