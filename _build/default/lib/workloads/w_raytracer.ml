(* raytracer — Java Grande ray tracer. Two real violations: a frequently
   contended pixel counter, and the famous checksum defect whose window
   is a single adjacent read/write — Velodrome catches it only when the
   scheduler happens to interpose the conflicting update, which is
   exactly the method the paper's adversarial scheduling recovered. Three
   Atomizer false alarms come from fork-time scene reads and a volatile
   frame flag. *)

open Velodrome_sim
open Builder

let name = "raytracer"
let description = "Java Grande ray tracer with the checksum defect"

let methods =
  [
    ("JGFRay.pixelCounter", false, false);
    ("JGFRay.checksum", false, true);  (* rare: needs a lucky schedule *)
    ("Scene.lights", true, false);
    ("Scene.objects", true, false);
    ("Frame.flags", true, false);
    ("Row.commit", true, false);
  ]

let build size =
  let b = create () in
  let renderers = Sizes.scale size (2, 3, 4) in
  let rows = Sizes.scale size (6, 30, 80) in
  let row_lock = lock b "rows" in
  let row_state = var b "row.state" in
  let pixel_count = var b "pixelCount" in
  let checksum = var b "checksum" in
  let lights_a = var b ~init:3 "lights.a" in
  let lights_b = var b ~init:5 "lights.b" in
  let objs_a = var b ~init:11 "objects.a" in
  let objs_b = var b ~init:13 "objects.b" in
  let frame_flag = volatile b "frame.ready" in
  threads b renderers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i rows)
          [
            work 200;
            Patterns.config_reader b ~label:"Scene.lights" ~a:lights_a
              ~b:lights_b ~sink:None;
            Patterns.config_reader b ~label:"Scene.objects" ~a:objs_a
              ~b:objs_b ~sink:None;
            Patterns.volatile_pair_reader b ~label:"Frame.flags"
              ~flag:frame_flag;
            Patterns.racy_rmw b ~label:"JGFRay.pixelCounter" ~var:pixel_count;
            (* The checksum update: no scheduling point inside the
               window, and threads reach it on different iterations, so
               the violation rarely manifests. *)
            Patterns.staggered ~period:3 ~iter:k
              (Patterns.rare_rmw b ~label:"JGFRay.checksum" ~var:checksum);
            Patterns.locked_rmw b ~label:"Row.commit" ~lock:row_lock
              ~var:row_state;
            local k (r k +: i 1);
          ];
      ]);
  program b
