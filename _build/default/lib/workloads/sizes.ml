(* Shared size-scaling knobs. [scale size (s, m, l)] picks the component
   matching the requested size. *)

type size = Small | Medium | Large

let scale size (s, m, l) =
  match size with Small -> s | Medium -> m | Large -> l
