(** Workload size scaling. *)

type size = Small | Medium | Large

val scale : size -> int * int * int -> int
(** [scale size (small, medium, large)] picks the matching component. *)
