(* colt — the CERN Colt scientific library exercised from several
   threads. The paper reports 27 non-atomic methods (Atomizer) of which
   Velodrome found 20, missing 7 whose violating interleavings are rare;
   plus 2 false alarms. We reproduce that profile with a family of
   lazily-cached matrix operations: most have a wide violation window
   (cache check with a scheduling point), seven have an adjacent
   check/update pair that almost never interleaves. *)

open Velodrome_sim
open Builder

let name = "colt"
let description = "scientific library with lazily cached matrix ops"

let common = 20
let rare = 7

let methods =
  List.init common (fun k ->
      (Printf.sprintf "Matrix.op%02d" k, false, false))
  @ List.init rare (fun k ->
        (Printf.sprintf "Matrix.lazy%02d" k, false, true))
  @ [
      ("Descriptive.config", true, false);
      ("Buffer.limits", true, false);
      ("Matrix.lockedSum", true, false);
      ("Matrix.lockedScale", true, false);
      ("Matrix.lockedNorm", true, false);
    ]

let build size =
  let b = create () in
  let workers = Sizes.scale size (2, 3, 4) in
  let iters = Sizes.scale size (4, 14, 40) in
  let mat_lock = lock b "matrix" in
  let locked_sum = var b "lockedSum" in
  let locked_scale = var b "lockedScale" in
  let locked_norm = var b "lockedNorm" in
  let caches =
    Array.init common (fun k -> var b (Printf.sprintf "cache.%02d" k))
  in
  let lazies =
    Array.init rare (fun k -> var b (Printf.sprintf "lazy.%02d" k))
  in
  let cfg_a = var b ~init:2 "cfg.rows" in
  let cfg_b = var b ~init:9 "cfg.cols" in
  let lim_a = var b ~init:1 "limit.lo" in
  let lim_b = var b ~init:6 "limit.hi" in
  threads b workers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          (List.init common (fun f ->
               Patterns.racy_rmw b
                 ~label:(Printf.sprintf "Matrix.op%02d" f)
                 ~var:caches.(f))
          @ List.init rare (fun f ->
                Patterns.staggered ~period:4 ~iter:k
                  (Patterns.rare_rmw b
                     ~label:(Printf.sprintf "Matrix.lazy%02d" f)
                     ~var:lazies.(f)))
          @ [
              Patterns.config_reader b ~label:"Descriptive.config" ~a:cfg_a
                ~b:cfg_b ~sink:None;
              Patterns.config_reader b ~label:"Buffer.limits" ~a:lim_a
                ~b:lim_b ~sink:None;
              Patterns.staggered ~period:2 ~iter:k
                (Patterns.locked_rmw b ~label:"Matrix.lockedSum"
                   ~lock:mat_lock ~var:locked_sum);
              Patterns.staggered ~period:2 ~iter:k
                (Patterns.locked_rmw b ~label:"Matrix.lockedScale"
                   ~lock:mat_lock ~var:locked_scale);
              Patterns.staggered ~period:2 ~iter:k
                (Patterns.locked_rmw b ~label:"Matrix.lockedNorm"
                   ~lock:mat_lock ~var:locked_norm);
              work 40;
              local k (r k +: i 1);
            ]);
      ]);
  program b
