lib/workloads/w_philo.mli: Sizes Velodrome_sim
