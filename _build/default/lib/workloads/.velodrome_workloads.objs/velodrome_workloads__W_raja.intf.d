lib/workloads/w_raja.mli: Sizes Velodrome_sim
