lib/workloads/w_webl.ml: Array Builder List Patterns Printf Sizes Velodrome_sim
