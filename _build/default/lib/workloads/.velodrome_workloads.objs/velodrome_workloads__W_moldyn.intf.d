lib/workloads/w_moldyn.mli: Sizes Velodrome_sim
