lib/workloads/w_sor.mli: Sizes Velodrome_sim
