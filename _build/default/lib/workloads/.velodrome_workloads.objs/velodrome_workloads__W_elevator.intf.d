lib/workloads/w_elevator.mli: Sizes Velodrome_sim
