lib/workloads/w_raja.ml: Builder Patterns Sizes Velodrome_sim
