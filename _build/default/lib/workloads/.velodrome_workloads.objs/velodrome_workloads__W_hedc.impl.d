lib/workloads/w_hedc.ml: Builder Patterns Sizes Stdlib Velodrome_sim
