lib/workloads/w_montecarlo.ml: Builder Patterns Sizes Velodrome_sim
