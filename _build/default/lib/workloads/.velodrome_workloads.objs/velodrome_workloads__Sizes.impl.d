lib/workloads/sizes.ml:
