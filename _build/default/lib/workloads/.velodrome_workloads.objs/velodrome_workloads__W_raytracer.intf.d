lib/workloads/w_raytracer.mli: Sizes Velodrome_sim
