lib/workloads/w_hedc.mli: Sizes Velodrome_sim
