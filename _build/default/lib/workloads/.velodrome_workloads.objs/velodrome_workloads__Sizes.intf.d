lib/workloads/sizes.mli:
