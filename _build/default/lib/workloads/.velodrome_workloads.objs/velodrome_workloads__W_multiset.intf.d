lib/workloads/w_multiset.mli: Sizes Velodrome_sim
