lib/workloads/w_jigsaw.ml: Array Builder List Patterns Printf Sizes Stdlib Velodrome_sim
