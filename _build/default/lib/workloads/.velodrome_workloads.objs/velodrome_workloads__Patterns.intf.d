lib/workloads/patterns.mli: Ast Builder Lock Var Velodrome_sim Velodrome_trace
