lib/workloads/w_mtrt.ml: Array Builder List Patterns Printf Sizes Velodrome_sim
