lib/workloads/w_jbb.ml: Array Builder List Patterns Printf Sizes Velodrome_sim
