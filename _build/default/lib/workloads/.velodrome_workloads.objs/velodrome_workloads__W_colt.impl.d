lib/workloads/w_colt.ml: Array Builder List Patterns Printf Sizes Velodrome_sim
