lib/workloads/w_tsp.mli: Sizes Velodrome_sim
