lib/workloads/w_elevator.ml: Builder Patterns Sizes Velodrome_sim
