lib/workloads/workload.ml: List Sizes Velodrome_sim W_colt W_elevator W_hedc W_jbb W_jigsaw W_moldyn W_montecarlo W_mtrt W_multiset W_philo W_raja W_raytracer W_sor W_tsp W_webl
