lib/workloads/w_montecarlo.mli: Sizes Velodrome_sim
