lib/workloads/w_jigsaw.mli: Sizes Velodrome_sim
