lib/workloads/w_jbb.mli: Sizes Velodrome_sim
