lib/workloads/w_sor.ml: Builder Patterns Sizes Velodrome_sim
