lib/workloads/w_multiset.ml: Builder Patterns Sizes Velodrome_sim
