lib/workloads/workload.mli: Velodrome_sim
