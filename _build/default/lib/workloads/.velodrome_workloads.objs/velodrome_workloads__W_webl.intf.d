lib/workloads/w_webl.mli: Sizes Velodrome_sim
