lib/workloads/w_raytracer.ml: Builder Patterns Sizes Velodrome_sim
