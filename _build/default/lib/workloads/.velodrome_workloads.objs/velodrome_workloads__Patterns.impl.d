lib/workloads/patterns.ml: Ast Builder Velodrome_sim
