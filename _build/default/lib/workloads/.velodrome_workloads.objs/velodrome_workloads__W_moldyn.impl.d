lib/workloads/w_moldyn.ml: Builder Patterns Sizes Velodrome_sim
