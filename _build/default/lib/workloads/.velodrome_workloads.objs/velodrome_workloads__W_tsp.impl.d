lib/workloads/w_tsp.ml: Builder Patterns Sizes Velodrome_sim
