lib/workloads/w_philo.ml: Builder Patterns Sizes Velodrome_sim
