lib/workloads/w_mtrt.mli: Sizes Velodrome_sim
