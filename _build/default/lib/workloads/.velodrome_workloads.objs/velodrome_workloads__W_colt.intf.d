lib/workloads/w_colt.mli: Sizes Velodrome_sim
