(** Reusable synchronization patterns for workloads.

    Each function returns statements for one {e method} (an atomic block
    with a descriptive label) exercising a known-good or known-bad
    synchronization idiom. Workloads compose these over their own shared
    state so every benchmark keeps its own topology while the idioms stay
    uniform and well-understood:

    - {!locked_rmw}: read-modify-write under a lock — atomic.
    - {!racy_rmw}: unsynchronized read-modify-write — the classic real
      violation both the Atomizer and Velodrome catch.
    - {!check_then_act}: racy test-and-update — real violation.
    - {!config_reader}: reads initialization-time data without locks
      inside an atomic block — serializable (the data is read-only by
      then) but a classic Atomizer {e false alarm}, since the lockset of
      the variable is empty.
    - {!volatile_pair_reader}: two volatile reads in one atomic block —
      serializable when the writer only hands a baton over, but volatile
      accesses are non-movers, so the Atomizer warns — false alarm.
    - {!locked_pair_update}: updates two variables under one lock —
      atomic. *)

open Velodrome_sim
open Velodrome_trace.Ids

val locked_rmw :
  Builder.t -> label:string -> lock:Lock.t -> var:Var.t -> Ast.stmt

val racy_rmw : Builder.t -> label:string -> var:Var.t -> Ast.stmt

val double_read : Builder.t -> label:string -> var:Var.t -> Ast.stmt
(** Reads the variable twice in one atomic block (a non-repeatable read).
    Real violation whenever another thread writes the variable; tends to
    manifest easily because the window spans a scheduling point. *)

val rare_rmw : Builder.t -> label:string -> var:Var.t -> Ast.stmt
(** Like {!racy_rmw} but with an adjacent read/write pair (no scheduling
    point inside the window), so the violation manifests only when the
    scheduler happens to interpose a conflicting write — the kind of
    method Velodrome misses without adversarial scheduling. *)

val staggered : period:int -> iter:Ast.reg -> Ast.stmt -> Ast.stmt
(** Run the statement only on iterations with
    [iter mod period = tid mod period], so different threads reach it at
    different logical times. Wrapping {!rare_rmw} in this makes the
    violating interleaving genuinely rare: conflicting writes exist but
    almost never fall inside another thread's window. *)

val check_then_act :
  Builder.t -> label:string -> lock:Lock.t -> guard:Var.t -> var:Var.t ->
  Ast.stmt
(** Reads [guard] without the lock, then — when the guard was 0 — updates
    [var] under the lock and sets the guard. The window between check and
    act is the violation. *)

val config_reader :
  Builder.t -> label:string -> a:Var.t -> b:Var.t -> sink:Var.t option ->
  Ast.stmt
(** Reads two configuration variables inside an atomic block; optionally
    writes their sum to a thread-private sink variable. *)

val volatile_pair_reader :
  Builder.t -> label:string -> flag:Var.t -> Ast.stmt

val locked_pair_update :
  Builder.t -> label:string -> lock:Lock.t -> a:Var.t -> b:Var.t -> Ast.stmt

val barrier : Builder.t -> prefix:string -> parties:int -> Ast.stmt list
(** A sense-reversing barrier over a lock-protected count and a volatile
    generation flag. Statements are inline (not an atomic method); call
    once per phase per thread. Creates fork-join-style happens-before
    edges that locksets cannot see. *)
