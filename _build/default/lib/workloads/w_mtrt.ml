(* mtrt — the SPEC JVM98 multithreaded ray tracer. Render threads share a
   read-only scene built before they start; the paper attributes mtrt's 27
   Atomizer false alarms to exactly this fork-join idiom (plus
   uninstrumented-library effects), reproduced here as a family of scene
   accessors. The 2 real violations are shared render counters. *)

open Velodrome_sim
open Builder

let name = "mtrt"
let description = "multithreaded ray tracer over a fork-time scene"

let fa_family = 27

let methods =
  List.init fa_family (fun k ->
      (Printf.sprintf "Scene.node%02d" k, true, false))
  @ [
      ("RayTracer.pixelCount", false, false);
      ("RayTracer.checksum", false, false);
      ("Canvas.commitRow", true, false);
    ]

let build size =
  let b = create () in
  let renderers = Sizes.scale size (2, 3, 4) in
  let rows = Sizes.scale size (4, 12, 32) in
  let canvas_lock = lock b "canvas" in
  let canvas = var b "canvas.rows" in
  let pixels = var b "pixels" in
  let checksum = var b "checksum" in
  let scene =
    Array.init (fa_family * 2) (fun k ->
        var b ~init:(k * 7) (Printf.sprintf "scene.%02d" k))
  in
  threads b renderers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i rows)
          ([ work 120 ]
          @ List.init fa_family (fun f ->
                Patterns.config_reader b
                  ~label:(Printf.sprintf "Scene.node%02d" f)
                  ~a:scene.(2 * f)
                  ~b:scene.((2 * f) + 1)
                  ~sink:None)
          @ [
              Patterns.racy_rmw b ~label:"RayTracer.pixelCount" ~var:pixels;
              Patterns.racy_rmw b ~label:"RayTracer.checksum" ~var:checksum;
              Patterns.locked_rmw b ~label:"Canvas.commitRow"
                ~lock:canvas_lock ~var:canvas;
              local k (r k +: i 1);
            ]);
      ]);
  program b
