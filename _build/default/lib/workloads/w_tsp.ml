(* tsp — a branch-and-bound Traveling Salesman solver (von Praun &
   Gross). Workers take subproblems from a locked pool and prune against
   a shared best-tour bound. The classic tsp defects: the bound and the
   statistics are read and updated without consistent locking. tsp is the
   compute-bound outlier of Table 1, hence the heavy [work] blocks. *)

open Velodrome_sim
open Builder

let name = "tsp"
let description = "branch-and-bound TSP solver with a shared tour bound"

let methods =
  [
    ("Tsp.getMinTour", false, false);
    ("Tsp.setMinTour", false, false);
    ("Tsp.prune", false, false);
    ("Tsp.splitJob", false, false);
    ("Tsp.stealJob", false, false);
    ("Stats.nodes", false, false);
    ("Stats.prunes", false, false);
    ("Stats.depth", false, false);
    ("Pool.take", true, false);
    ("Pool.put", true, false);
  ]

let build size =
  let b = create () in
  let workers = Sizes.scale size (2, 4, 6) in
  let iters = Sizes.scale size (6, 30, 80) in
  let pool_lock = lock b "pool" in
  let pool_size = var b "pool.size" in
  let min_tour = var b "minTour" in
  let jobs = var b "jobs" in
  let nodes = var b "nodes" in
  let prunes = var b "prunes" in
  let depth = var b "depth" in
  threads b workers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          [
            Patterns.locked_rmw b ~label:"Pool.take" ~lock:pool_lock
              ~var:pool_size;
            (* The search itself: pure compute. *)
            work 400;
            Patterns.double_read b ~label:"Tsp.getMinTour" ~var:min_tour;
            Patterns.racy_rmw b ~label:"Tsp.prune" ~var:prunes;
            work 200;
            Patterns.racy_rmw b ~label:"Tsp.setMinTour" ~var:min_tour;
            Patterns.racy_rmw b ~label:"Tsp.splitJob" ~var:jobs;
            Patterns.double_read b ~label:"Tsp.stealJob" ~var:jobs;
            Patterns.racy_rmw b ~label:"Stats.nodes" ~var:nodes;
            Patterns.racy_rmw b ~label:"Stats.prunes" ~var:prunes;
            Patterns.racy_rmw b ~label:"Stats.depth" ~var:depth;
            Patterns.locked_rmw b ~label:"Pool.put" ~lock:pool_lock
              ~var:pool_size;
            local k (r k +: i 1);
          ];
      ]);
  program b
