(* jbb — modelled on SPEC JBB2000: warehouse worker threads running
   business transactions against per-warehouse locked state. The paper
   reports 42 Atomizer false alarms on jbb, caused by imprecise race
   reasoning on data initialized before the workers fork; we reproduce
   that with a family of transaction methods that read two fork-time
   configuration fields each inside an atomic block. The 5 real
   violations are under-locked global counters. *)

open Velodrome_sim
open Builder

let name = "jbb"
let description = "business-object transaction simulator (SPEC JBB style)"

let fa_family = 42

let methods =
  List.init fa_family (fun k ->
      (Printf.sprintf "Company.readProps%02d" k, true, false))
  @ [
      ("District.nextOrderId", false, false);
      ("Company.totalOrders", false, false);
      ("Company.totalPayments", false, false);
      ("Warehouse.ytd", false, false);
      ("Stock.level", false, false);
      ("Warehouse.newOrder", true, false);
      ("Warehouse.payment", true, false);
    ]

let build size =
  let b = create () in
  let warehouses = Sizes.scale size (2, 3, 4) in
  let iters = Sizes.scale size (4, 12, 30) in
  let wh_lock = Array.init warehouses (fun k -> lock b (Printf.sprintf "wh%d" k)) in
  let wh_state =
    Array.init warehouses (fun k -> var b (Printf.sprintf "wh%d.state" k))
  in
  let order_id = var b "district.orderId" in
  let total_orders = var b "company.orders" in
  let total_payments = var b "company.payments" in
  let ytd = var b "warehouse.ytd" in
  let stock = var b "stock.level" in
  let props =
    Array.init (fa_family * 2) (fun k ->
        var b ~init:(k + 1) (Printf.sprintf "props.%02d" k))
  in
  threads b warehouses (fun w ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          ([
             Patterns.locked_rmw b ~label:"Warehouse.newOrder"
               ~lock:wh_lock.(w) ~var:wh_state.(w);
             Patterns.racy_rmw b ~label:"District.nextOrderId" ~var:order_id;
             Patterns.racy_rmw b ~label:"Company.totalOrders"
               ~var:total_orders;
             Patterns.racy_rmw b ~label:"Company.totalPayments"
               ~var:total_payments;
             Patterns.racy_rmw b ~label:"Warehouse.ytd" ~var:ytd;
             Patterns.racy_rmw b ~label:"Stock.level" ~var:stock;
             Patterns.locked_rmw b ~label:"Warehouse.payment"
               ~lock:wh_lock.(w) ~var:wh_state.(w);
             work 30;
           ]
          @ List.init fa_family (fun f ->
                Patterns.config_reader b
                  ~label:(Printf.sprintf "Company.readProps%02d" f)
                  ~a:props.(2 * f)
                  ~b:props.((2 * f) + 1)
                  ~sink:None)
          @ [ local k (r k +: i 1) ]);
      ]);
  program b
