(* webl — a scripting-language interpreter running a small web crawler.
   Interpreter service methods share a page cache and interpreter
   globals with little synchronization: the paper counts 24 non-atomic
   methods, of which Velodrome missed 2 (schedule-dependent), plus 2
   Atomizer false alarms on fork-time interpreter configuration. *)

open Velodrome_sim
open Builder

let name = "webl"
let description = "scripting interpreter running a web crawler"

let common = 22
let rare = 2

let methods =
  List.init common (fun k ->
      (Printf.sprintf "Webl.service%02d" k, false, false))
  @ List.init rare (fun k ->
        (Printf.sprintf "Webl.lazyInit%02d" k, false, true))
  @ [
      ("Machine.globals", true, false);
      ("Machine.builtins", true, false);
      ("PageCache.lockedGet", true, false);
    ]

let build size =
  let b = create () in
  let crawlers = Sizes.scale size (2, 3, 4) in
  let iters = Sizes.scale size (4, 14, 40) in
  let cache_lock = lock b "pageCache" in
  let cache = var b "cache.entries" in
  let svc =
    Array.init common (fun k -> var b (Printf.sprintf "svc.%02d" k))
  in
  let lazies =
    Array.init rare (fun k -> var b (Printf.sprintf "weblLazy.%02d" k))
  in
  let g_a = var b ~init:17 "globals.a" in
  let g_b = var b ~init:23 "globals.b" in
  let bi_a = var b ~init:29 "builtins.a" in
  let bi_b = var b ~init:31 "builtins.b" in
  threads b crawlers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          (List.init common (fun f ->
               Patterns.racy_rmw b
                 ~label:(Printf.sprintf "Webl.service%02d" f)
                 ~var:svc.(f))
          @ List.init rare (fun f ->
                Patterns.staggered ~period:4 ~iter:k
                  (Patterns.rare_rmw b
                     ~label:(Printf.sprintf "Webl.lazyInit%02d" f)
                     ~var:lazies.(f)))
          @ [
              Patterns.config_reader b ~label:"Machine.globals" ~a:g_a ~b:g_b
                ~sink:None;
              Patterns.config_reader b ~label:"Machine.builtins" ~a:bi_a
                ~b:bi_b ~sink:None;
              Patterns.locked_rmw b ~label:"PageCache.lockedGet"
                ~lock:cache_lock ~var:cache;
              work 30;
              local k (r k +: i 1);
            ]);
      ]);
  program b
