(* jigsaw — the W3C web server serving a fixed number of pages to a
   crawler. Many request-handler methods touch per-resource counters and
   the resource store without the store's lock: the paper counts 55
   non-atomic methods, 11 of which Velodrome missed in its five runs
   (one mischaracterized method accounts for 6 of them); 5 Atomizer
   false alarms come from server configuration reads. *)

open Velodrome_sim
open Builder

let name = "jigsaw"
let description = "web server: acceptor plus handler worker pool"

let common = 44
let rare = 11
let fa = 5

let methods =
  List.init common (fun k ->
      (Printf.sprintf "Handler.serve%02d" k, false, false))
  @ List.init rare (fun k ->
        (Printf.sprintf "Handler.once%02d" k, false, true))
  @ List.init fa (fun k ->
        (Printf.sprintf "Config.read%d" k, true, false))
  @ [ ("Store.lockedLookup", true, false) ]

let build size =
  let b = create () in
  let handlers = Sizes.scale size (3, 4, 6) in
  let requests = Sizes.scale size (3, 10, 30) in
  let store_lock = lock b "store" in
  let store = var b "store.entries" in
  let counters =
    Array.init common (fun k -> var b (Printf.sprintf "res.%02d" k))
  in
  let onces =
    Array.init rare (fun k -> var b (Printf.sprintf "once.%02d" k))
  in
  let cfg =
    Array.init (fa * 2) (fun k -> var b ~init:(k + 41) (Printf.sprintf "srv.%02d" k))
  in
  (* Acceptor: hands out work by bumping the store under its lock. *)
  thread b
    (let k = fresh_reg b in
     [
       local k (i 0);
       while_ (r k <: i (Stdlib.( * ) requests handlers))
         [
           Patterns.locked_rmw b ~label:"Store.lockedLookup" ~lock:store_lock
             ~var:store;
           work 10;
           local k (r k +: i 1);
         ];
     ]);
  threads b handlers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i requests)
          (List.init common (fun f ->
               Patterns.racy_rmw b
                 ~label:(Printf.sprintf "Handler.serve%02d" f)
                 ~var:counters.(f))
          @ List.init rare (fun f ->
                Patterns.staggered ~period:4 ~iter:k
                  (Patterns.rare_rmw b
                     ~label:(Printf.sprintf "Handler.once%02d" f)
                     ~var:onces.(f)))
          @ List.init fa (fun f ->
                Patterns.config_reader b
                  ~label:(Printf.sprintf "Config.read%d" f)
                  ~a:cfg.(2 * f)
                  ~b:cfg.((2 * f) + 1)
                  ~sink:None)
          @ [ work 20; local k (r k +: i 1) ]);
      ]);
  program b
