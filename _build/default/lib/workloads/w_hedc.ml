(* hedc — a tool that fetches astrophysics data from several web sources
   through a pool of worker tasks (von Praun & Gross). A lock-protected
   task queue feeds the workers; result aggregation is under-synchronized
   (the real violations). The "done" protocol reads two volatile flags in
   one atomic method — an Atomizer false alarm. *)

open Velodrome_sim
open Builder

let name = "hedc"
let description = "web metadata fetcher with a synchronized task queue"

let methods =
  [
    ("Task.completeCount", false, false);
    ("Task.bytesFetched", false, false);
    ("Task.errorCount", false, false);
    ("MetaSearch.mergeResult", false, false);
    ("MetaSearch.dedup", false, false);
    ("Cache.touch", false, false);
    ("Pool.checkDone", true, false);  (* volatile pair: false alarm *)
    ("Pool.readLimits", true, false);  (* config pair: false alarm *)
    ("Queue.take", true, false);
    ("Queue.put", true, false);
  ]

let build size =
  let b = create () in
  let workers = Sizes.scale size (2, 4, 6) in
  let iters = Sizes.scale size (6, 30, 90) in
  let qlock = lock b "queue" in
  let queue_size = var b "queue.size" in
  let completed = var b "completed" in
  let bytes = var b "bytes" in
  let errors = var b "errors" in
  let results = var b "results" in
  let dedup = var b "dedupTable" in
  let cache = var b "cacheClock" in
  let cfg_limit = var b ~init:64 "cfg.limit" in
  let cfg_hosts = var b ~init:4 "cfg.hosts" in
  let done_flag = volatile b "done" in
  (* Never written after initialization: reading it twice in one atomic
     block is serializable in every schedule, yet the Atomizer flags it
     (volatile accesses are non-movers) — a guaranteed false alarm. *)
  let cancelled = volatile b "cancelled" in
  (* Producer: fills the queue, then signals completion. *)
  thread b
    (let k = fresh_reg b in
     [
       local k (i 0);
       while_ (r k <: i (Stdlib.( * ) iters workers))
         [
           Patterns.locked_rmw b ~label:"Queue.put" ~lock:qlock ~var:queue_size;
           work 5;
           local k (r k +: i 1);
         ];
       write done_flag (i 1);
     ]);
  threads b workers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          [
            Patterns.locked_rmw b ~label:"Queue.take" ~lock:qlock
              ~var:queue_size;
            work 15;
            Patterns.racy_rmw b ~label:"Task.completeCount" ~var:completed;
            Patterns.racy_rmw b ~label:"Task.bytesFetched" ~var:bytes;
            Patterns.racy_rmw b ~label:"Task.errorCount" ~var:errors;
            Patterns.double_read b ~label:"MetaSearch.mergeResult" ~var:results;
            Patterns.racy_rmw b ~label:"MetaSearch.dedup" ~var:dedup;
            Patterns.racy_rmw b ~label:"Cache.touch" ~var:cache;
            Patterns.volatile_pair_reader b ~label:"Pool.checkDone"
              ~flag:cancelled;
            Patterns.config_reader b ~label:"Pool.readLimits" ~a:cfg_limit
              ~b:cfg_hosts ~sink:None;
            local k (r k +: i 1);
          ];
      ]);
  (* The merge methods need writers on their variables from a second
     party: workers already contend with each other on all of them. *)
  program b
