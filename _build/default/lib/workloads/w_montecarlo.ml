(* montecarlo — Java Grande Monte Carlo pricing: embarrassingly parallel
   simulations whose results land in a synchronized vector, plus a group
   of global statistics methods that skip the vector's lock — the 6 real
   violations. *)

open Velodrome_sim
open Builder

let name = "montecarlo"
let description = "Monte Carlo simulation with a synchronized results vector"

let methods =
  [
    ("MC.sumPrice", false, false);
    ("MC.sumSquares", false, false);
    ("MC.minPrice", false, false);
    ("MC.maxPrice", false, false);
    ("MC.pathCount", false, false);
    ("MC.seedTick", false, false);
    ("Results.append", true, false);
    ("Results.size", true, false);
  ]

let build size =
  let b = create () in
  let workers = Sizes.scale size (2, 4, 6) in
  let paths = Sizes.scale size (5, 25, 70) in
  let vec_lock = lock b "results" in
  let vec = var b "results.data" in
  let sum = var b "stat.sum" in
  let squares = var b "stat.squares" in
  let minp = var b "stat.min" in
  let maxp = var b "stat.max" in
  let count = var b "stat.count" in
  let seed = var b "stat.seed" in
  threads b workers (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i paths)
          [
            work 100;
            Patterns.locked_rmw b ~label:"Results.append" ~lock:vec_lock
              ~var:vec;
            Patterns.locked_rmw b ~label:"Results.size" ~lock:vec_lock
              ~var:vec;
            Patterns.racy_rmw b ~label:"MC.sumPrice" ~var:sum;
            Patterns.racy_rmw b ~label:"MC.sumSquares" ~var:squares;
            Patterns.double_read b ~label:"MC.minPrice" ~var:minp;
            Patterns.racy_rmw b ~label:"MC.minPrice" ~var:minp;
            Patterns.double_read b ~label:"MC.maxPrice" ~var:maxp;
            Patterns.racy_rmw b ~label:"MC.maxPrice" ~var:maxp;
            Patterns.racy_rmw b ~label:"MC.pathCount" ~var:count;
            Patterns.racy_rmw b ~label:"MC.seedTick" ~var:seed;
            local k (r k +: i 1);
          ];
      ]);
  program b
