open Velodrome_sim
open Builder

let locked_rmw b ~label:l ~lock:m ~var:x =
  let tmp = fresh_reg b in
  atomic (label b l)
    (sync m [ read tmp x; write x (r tmp +: i 1) ])

let racy_rmw b ~label:l ~var:x =
  let tmp = fresh_reg b in
  atomic (label b l) [ read tmp x; yield; write x (r tmp +: i 1) ]

let double_read b ~label:l ~var:x =
  let t1 = fresh_reg b in
  let t2 = fresh_reg b in
  atomic (label b l) [ read t1 x; yield; read t2 x; local t1 (r t1 -: r t2) ]

let rare_rmw b ~label:l ~var:x =
  let tmp = fresh_reg b in
  atomic (label b l) [ read tmp x; write x (r tmp +: i 1) ]

let staggered ~period ~iter stmt =
  if_
    {
      Ast.lhs = Ast.Mod (Ast.Reg iter, Ast.Int period);
      cmp = Ast.Eq;
      rhs = Ast.Mod (Ast.Reg Ast.tid_reg, Ast.Int period);
    }
    [ stmt ] []

let check_then_act b ~label:l ~lock:m ~guard:g ~var:x =
  let tg = fresh_reg b in
  let tx = fresh_reg b in
  atomic (label b l)
    [
      read tg g;
      if_ (r tg ==: i 0)
        (sync m [ read tx x; write x (r tx +: i 1); write g (i 1) ])
        [];
    ]

let config_reader b ~label:l ~a ~b:bv ~sink =
  let ta = fresh_reg b in
  let tb = fresh_reg b in
  let body =
    [ read ta a; read tb bv ]
    @ match sink with
      | Some s -> [ write s (r ta +: r tb) ]
      | None -> []
  in
  atomic (label b l) body

let volatile_pair_reader b ~label:l ~flag =
  let t1 = fresh_reg b in
  let t2 = fresh_reg b in
  atomic (label b l) [ read t1 flag; read t2 flag; local t1 (r t1 +: r t2) ]

let locked_pair_update b ~label:l ~lock:m ~a ~b:bv =
  let ta = fresh_reg b in
  let tb = fresh_reg b in
  atomic (label b l)
    (sync m
       [
         read ta a;
         read tb bv;
         write a (r ta +: i 1);
         write bv (r tb +: i 1);
       ])

let barrier b ~prefix ~parties =
  let count = var b (prefix ^ ".count") in
  let gen = volatile b (prefix ^ ".gen") in
  let bl = lock b (prefix ^ ".lock") in
  let rg = fresh_reg b in
  let rc = fresh_reg b in
  let cur = fresh_reg b in
  [
    read rg gen;
  ]
  @ sync bl [ read rc count; write count (r rc +: i 1) ]
  @ [
      if_
        (r rc +: i 1 ==: i parties)
        (sync bl [ write count (i 0) ] @ [ write gen (r rg +: i 1) ])
        [
          read cur gen;
          while_ (r cur ==: r rg) [ yield; read cur gen ];
        ];
    ]
