(* elevator — a discrete event simulator for elevators (von Praun &
   Gross). Lift threads poll a controller's shared call board. The
   controller's own state is lock-protected, but several methods
   read-modify-write board counters without holding the lock — the real
   violations. One method reads the lift configuration (written during
   setup only) inside an atomic block, which the Atomizer flags
   spuriously. *)

open Velodrome_sim
open Builder

let name = "elevator"
let description = "discrete-event elevator simulator (lift worker pool)"

let methods =
  [
    ("Lift.pickup", false, false);
    ("Lift.dropoff", false, false);
    ("Lift.claimCall", false, false);
    ("Controller.postCall", false, false);
    ("Stats.record", false, false);
    ("Lift.readConfig", true, false);  (* Atomizer false alarm *)
    ("Controller.tick", true, false);
    ("Board.update", true, false);
    ("Board.scan", true, false);
    ("Board.sweep", true, false);
  ]

let build size =
  let b = create () in
  let lifts = Sizes.scale size (2, 3, 4) in
  let iters = Sizes.scale size (8, 40, 120) in
  let board = lock b "board" in
  let calls = var b "calls" in
  let riders = var b "riders" in
  let stats = var b "stats" in
  let cfg_floors = var b ~init:8 "cfg.floors" in
  let cfg_speed = var b ~init:3 "cfg.speed" in
  let ticks = var b "ticks" in
  let board_state = var b "board.state" in
  let board_queue = var b "board.queue" in
  let board_log = var b "board.log" in
  (* Controller thread: posts calls and ticks the lock-protected clock. *)
  thread b
    (let k = fresh_reg b in
     [
       local k (i 0);
       while_ (r k <: i iters)
         [
           Patterns.racy_rmw b ~label:"Controller.postCall" ~var:calls;
           Patterns.locked_rmw b ~label:"Controller.tick" ~lock:board
             ~var:ticks;
           work 20;
           local k (r k +: i 1);
         ];
     ]);
  (* Lift threads: claim calls, move riders, update shared stats. *)
  threads b lifts (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          [
            Patterns.racy_rmw b ~label:"Lift.claimCall" ~var:calls;
            Patterns.double_read b ~label:"Lift.pickup" ~var:riders;
            Patterns.racy_rmw b ~label:"Lift.dropoff" ~var:riders;
            Patterns.config_reader b ~label:"Lift.readConfig" ~a:cfg_floors
              ~b:cfg_speed ~sink:None;
            Patterns.racy_rmw b ~label:"Stats.record" ~var:stats;
            (* Correctly synchronized board operations, contended across
               lifts — the defect-injection study removes these locks.
               Lifts visit the board on alternating iterations, so the
               stripped-lock mutants have windows that only sometimes
               overlap (the paper's ~30 % single-run detection regime). *)
            Patterns.staggered ~period:3 ~iter:k
              (Patterns.locked_rmw b ~label:"Board.update" ~lock:board
                 ~var:board_state);
            Patterns.staggered ~period:3 ~iter:k
              (Patterns.locked_rmw b ~label:"Board.scan" ~lock:board
                 ~var:board_queue);
            Patterns.staggered ~period:3 ~iter:k
              (Patterns.locked_rmw b ~label:"Board.sweep" ~lock:board
                 ~var:board_log);
            work 10;
            local k (r k +: i 1);
          ];
      ]);
  program b
