(* sor — successive over-relaxation (von Praun & Gross): a barrier-phased
   stencil over a shared grid. Each thread owns a band of rows; border
   rows are exchanged between phases. The barriers synchronize correctly
   (and invisibly to locksets, but they sit outside atomic methods so the
   Atomizer stays quiet); the real violations are the border updates that
   skip the row locks. *)

open Velodrome_sim
open Builder

let name = "sor"
let description = "barrier-phased successive over-relaxation stencil"

let methods =
  [
    ("Sor.updateNorth", false, false);
    ("Sor.updateSouth", false, false);
    ("Sor.residual", false, false);
    ("Sor.updateInterior", true, false);
  ]

let build size =
  let b = create () in
  let bands = Sizes.scale size (2, 3, 4) in
  let phases = Sizes.scale size (4, 16, 40) in
  let row_lock = lock b "rows" in
  let north = var b "north" in
  let south = var b "south" in
  let interior = var b "interior" in
  let resid = var b "residual" in
  threads b bands (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i phases)
          ([
             work 80;
             Patterns.racy_rmw b ~label:"Sor.updateNorth" ~var:north;
             Patterns.racy_rmw b ~label:"Sor.updateSouth" ~var:south;
             Patterns.locked_rmw b ~label:"Sor.updateInterior" ~lock:row_lock
               ~var:interior;
             Patterns.double_read b ~label:"Sor.residual" ~var:resid;
             Patterns.racy_rmw b ~label:"Sor.residual" ~var:resid;
           ]
          @ Patterns.barrier b ~prefix:"sor" ~parties:bands
          @ [ local k (r k +: i 1) ]);
      ]);
  program b
