(* multiset — the paper's running example (Section 1): a Set built on a
   synchronized Vector. Each Vector operation takes the vector's monitor,
   but the Set-level methods compose two of them, leaving a window — the
   contains/add pattern of Set.add. All five composite methods are real
   violations; the underlying Vector operations are atomic. *)

open Velodrome_sim
open Builder

let name = "multiset"
let description = "Set over a synchronized Vector (the paper's Section 1 bug)"

let methods =
  [
    ("Set.add", false, false);
    ("Set.remove", false, false);
    ("Set.addAll", false, false);
    ("Set.retain", false, false);
    ("Set.sizeSum", false, false);
    ("Vector.add", true, false);
    ("Vector.contains", true, false);
  ]

(* A composite method: two lock-protected vector operations inside one
   atomic block, with nothing protecting the gap between them. *)
let composite b ~label:l ~lock:m ~var:x =
  let t1 = fresh_reg b in
  let t2 = fresh_reg b in
  atomic (label b l)
    (sync m [ read t1 x ]
    @ [ yield ]
    @ sync m [ read t2 x; write x (r t2 +: i 1) ])

let build size =
  let b = create () in
  let adders = Sizes.scale size (2, 3, 4) in
  let iters = Sizes.scale size (8, 40, 110) in
  let vec = lock b "vector" in
  let elems = var b "elems" in
  let other = var b "elems2" in
  threads b adders (fun _ ->
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          [
            composite b ~label:"Set.add" ~lock:vec ~var:elems;
            composite b ~label:"Set.remove" ~lock:vec ~var:elems;
            composite b ~label:"Set.addAll" ~lock:vec ~var:other;
            composite b ~label:"Set.retain" ~lock:vec ~var:other;
            composite b ~label:"Set.sizeSum" ~lock:vec ~var:elems;
            Patterns.locked_rmw b ~label:"Vector.add" ~lock:vec ~var:elems;
            atomic (label b "Vector.contains")
              (sync vec [ read (fresh_reg b) elems ]);
            local k (r k +: i 1);
          ];
      ]);
  program b
