open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

type read_state =
  | Read_epoch of Epoch.t  (** reads so far are totally ordered *)
  | Read_vc of Vclock.t  (** concurrent reads: inflated *)

type var_state = { mutable w : Epoch.t; mutable r : read_state }

type t = {
  names : Names.t;
  threads : (int, Vclock.t) Hashtbl.t;
  locks : (int, Vclock.t) Hashtbl.t;
  vars : (int, var_state) Hashtbl.t;
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;
}

let name = "fasttrack"

let create names =
  {
    names;
    threads = Hashtbl.create 8;
    locks = Hashtbl.create 16;
    vars = Hashtbl.create 64;
    warnings_rev = [];
    reported = Hashtbl.create 8;
  }

let thread_clock t ti =
  match Hashtbl.find_opt t.threads ti with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    Vclock.set c ti 1;
    Hashtbl.replace t.threads ti c;
    c

let var_state t x =
  match Hashtbl.find_opt t.vars x with
  | Some vs -> vs
  | None ->
    let vs = { w = Epoch.none; r = Read_epoch Epoch.none } in
    Hashtbl.replace t.vars x vs;
    vs

let report t (e : Event.t) x ~kind_str =
  if not (Hashtbl.mem t.reported x) then begin
    Hashtbl.replace t.reported x ();
    let var = Var.of_int x in
    let message =
      Printf.sprintf "%s race on %s (epoch check failed)" kind_str
        (Names.var_name t.names var)
    in
    t.warnings_rev <-
      Warning.make ~analysis:name ~kind:Warning.Race ~tid:(Op.tid e.Event.op)
        ~var ~index:e.Event.index message
      :: t.warnings_rev
  end

let on_event t (e : Event.t) =
  match e.Event.op with
  | Op.Acquire (u, m) ->
    let c = thread_clock t (Tid.to_int u) in
    (match Hashtbl.find_opt t.locks (Lock.to_int m) with
    | Some lm -> Vclock.join c lm
    | None -> ())
  | Op.Release (u, m) ->
    let ti = Tid.to_int u in
    let c = thread_clock t ti in
    Hashtbl.replace t.locks (Lock.to_int m) (Vclock.copy c);
    Vclock.incr c ti
  | Op.Read (u, x) when not (Names.is_volatile t.names x) ->
    let ti = Tid.to_int u in
    let c = thread_clock t ti in
    let vs = var_state t (Var.to_int x) in
    let epoch = Epoch.make ~tid:ti ~clock:(Vclock.get c ti) in
    let same_epoch =
      match vs.r with
      | Read_epoch r -> Epoch.equal r epoch
      | Read_vc _ -> false
    in
    if not same_epoch then begin
      if not (Epoch.leq_vc vs.w c) then
        report t e (Var.to_int x) ~kind_str:"read-write";
      match vs.r with
      | Read_epoch r when Epoch.leq_vc r c ->
        (* Reads remain totally ordered: stay in the fast path. *)
        vs.r <- Read_epoch epoch
      | Read_epoch r ->
        (* Concurrent reads: inflate to a read vector. *)
        let vc = Vclock.create () in
        if not (Epoch.is_none r) then
          Vclock.set vc (Epoch.tid r) (Epoch.clock r);
        Vclock.set vc ti (Vclock.get c ti);
        vs.r <- Read_vc vc
      | Read_vc vc -> Vclock.set vc ti (Vclock.get c ti)
    end
  | Op.Write (u, x) when not (Names.is_volatile t.names x) ->
    let ti = Tid.to_int u in
    let c = thread_clock t ti in
    let vs = var_state t (Var.to_int x) in
    let epoch = Epoch.make ~tid:ti ~clock:(Vclock.get c ti) in
    if not (Epoch.equal vs.w epoch) then begin
      if not (Epoch.leq_vc vs.w c) then
        report t e (Var.to_int x) ~kind_str:"write-write"
      else begin
        match vs.r with
        | Read_epoch r ->
          if not (Epoch.leq_vc r c) then
            report t e (Var.to_int x) ~kind_str:"read-write"
        | Read_vc vc ->
          if not (Vclock.leq vc c) then
            report t e (Var.to_int x) ~kind_str:"read-write"
      end;
      vs.w <- epoch
    end
  | Op.Read _ | Op.Write _ | Op.Begin _ | Op.End _ -> ()

let finish _ = ()
let warnings t = List.rev t.warnings_rev

let backend () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = name
    let create = create
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
