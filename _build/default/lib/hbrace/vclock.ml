type t = { mutable data : int array }

let create () = { data = [||] }

let ensure t n =
  let cap = Array.length t.data in
  if n >= cap then begin
    let ncap = max (n + 1) (max 4 (2 * cap)) in
    let data = Array.make ncap 0 in
    Array.blit t.data 0 data 0 cap;
    t.data <- data
  end

let get t i = if i < Array.length t.data then t.data.(i) else 0

let set t i v =
  ensure t i;
  t.data.(i) <- v

let incr t i = set t i (get t i + 1)

let join dst src =
  Array.iteri
    (fun i v -> if v > get dst i then set dst i v)
    src.data

let copy t = { data = Array.copy t.data }

let width a b = max (Array.length a.data) (Array.length b.data)

let leq a b =
  let rec go i = i < 0 || (get a i <= get b i && go (i - 1)) in
  go (width a b - 1)

let first_exceeding a b =
  let n = width a b in
  let rec go i =
    if i >= n then None else if get a i > get b i then Some i else go (i + 1)
  in
  go 0

let pp ppf t =
  Format.fprintf ppf "[%s]"
    (String.concat ";" (Array.to_list (Array.map string_of_int t.data)))
