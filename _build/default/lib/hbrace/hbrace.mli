(** Complete happens-before race detection (Djit+-style vector clocks).

    RoadRunner ships "a complete happens-before detector" alongside Eraser
    (Section 5); this is that substrate. Happens-before here is the
    {e synchronization} order — program order plus release-to-acquire
    edges on each lock — not Velodrome's conflict-based order. Two
    accesses to the same variable race iff at least one writes and neither
    happens-before the other.

    Per variable the detector keeps the vector clock of all reads and of
    all writes; a race is reported at the first access whose thread clock
    does not dominate the relevant access clock. Unlike Eraser this is
    precise for the observed trace: it reports a race iff the trace
    contains one (for the first race on each variable; subsequent
    accesses to an already-racy variable keep accumulating, as in Djit+).
    Volatile variables are exempt, as their races are intentional. *)

open Velodrome_trace
open Velodrome_analysis

type t

val create : Names.t -> t
val on_event : t -> Event.t -> unit
val finish : t -> unit
val warnings : t -> Warning.t list
val races_found : t -> int
val name : string
val backend : unit -> (module Backend.S)
