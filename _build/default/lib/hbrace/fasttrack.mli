(** FastTrack-style happens-before race detection with adaptive epochs.

    Same precision as {!Hbrace} for the first race on each variable, but
    the common cases — thread-local data, lock-protected data, read-only
    sharing — use a single {!Epoch.t} per variable instead of full
    vector clocks: reads stay an epoch while they are totally ordered and
    inflate to a read vector only on genuinely concurrent reads; writes
    are always an epoch. This is the representation trade-off RoadRunner
    makes in its optimized detector, and the property suite checks it
    against the full-vector {!Hbrace} implementation: the two flag
    exactly the same set of racy variables on every trace. *)

open Velodrome_trace
open Velodrome_analysis

type t

val create : Names.t -> t
val on_event : t -> Event.t -> unit
val finish : t -> unit
val warnings : t -> Warning.t list
val name : string
val backend : unit -> (module Backend.S)
