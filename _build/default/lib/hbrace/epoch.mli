(** Epochs: a clock value paired with the thread that produced it, packed
    into one integer — FastTrack's "c@t" representation. Most variables
    are only ever accessed in a totally ordered way, so a single epoch
    replaces a whole vector clock for them. *)

type t = private int

val none : t
(** The ⊥ epoch: before any access; happens-before everything. *)

val make : tid:int -> clock:int -> t
val tid : t -> int
val clock : t -> int
val is_none : t -> bool

val leq_vc : t -> Vclock.t -> bool
(** [leq_vc e c] iff the epoch's event happens-before (or is) the point
    described by clock [c]: [clock e <= c(tid e)]. [none] ≤ everything. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
