type t = int

let clock_bits = 47
let none = -1
let is_none e = e < 0

let make ~tid ~clock =
  if tid < 0 || clock < 0 || clock >= 1 lsl clock_bits then
    invalid_arg "Epoch.make";
  (tid lsl clock_bits) lor clock

let tid e = e lsr clock_bits
let clock e = e land ((1 lsl clock_bits) - 1)
let leq_vc e c = is_none e || clock e <= Vclock.get c (tid e)
let equal = Int.equal

let pp ppf e =
  if is_none e then Format.fprintf ppf "⊥"
  else Format.fprintf ppf "%d@%d" (clock e) (tid e)
