lib/hbrace/hbrace.mli: Backend Event Names Velodrome_analysis Velodrome_trace Warning
