lib/hbrace/vclock.mli: Format
