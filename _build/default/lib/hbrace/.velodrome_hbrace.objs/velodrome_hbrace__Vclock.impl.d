lib/hbrace/vclock.ml: Array Format String
