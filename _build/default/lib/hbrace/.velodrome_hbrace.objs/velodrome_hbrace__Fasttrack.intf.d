lib/hbrace/fasttrack.mli: Backend Event Names Velodrome_analysis Velodrome_trace Warning
