lib/hbrace/epoch.mli: Format Vclock
