lib/hbrace/epoch.ml: Format Int Vclock
