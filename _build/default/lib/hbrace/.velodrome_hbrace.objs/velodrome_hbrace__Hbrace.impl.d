lib/hbrace/hbrace.ml: Backend Event Hashtbl List Lock Names Op Printf Tid Var Vclock Velodrome_analysis Velodrome_trace Warning
