open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_analysis

type var_clocks = { reads : Vclock.t; writes : Vclock.t }

type t = {
  names : Names.t;
  threads : (int, Vclock.t) Hashtbl.t;
  locks : (int, Vclock.t) Hashtbl.t;
  vars : (int, var_clocks) Hashtbl.t;
  mutable warnings_rev : Warning.t list;
  reported : (int, unit) Hashtbl.t;
  mutable races : int;
}

let name = "hb"

let create names =
  {
    names;
    threads = Hashtbl.create 8;
    locks = Hashtbl.create 16;
    vars = Hashtbl.create 64;
    warnings_rev = [];
    reported = Hashtbl.create 8;
    races = 0;
  }

let thread_clock t ti =
  match Hashtbl.find_opt t.threads ti with
  | Some c -> c
  | None ->
    let c = Vclock.create () in
    (* Each thread starts at epoch 1 of itself so that its own accesses
       are ordered after thread creation. *)
    Vclock.set c ti 1;
    Hashtbl.replace t.threads ti c;
    c

let var_clocks t x =
  match Hashtbl.find_opt t.vars x with
  | Some vc -> vc
  | None ->
    let vc = { reads = Vclock.create (); writes = Vclock.create () } in
    Hashtbl.replace t.vars x vc;
    vc

let report t (e : Event.t) x ~kind_str =
  t.races <- t.races + 1;
  if not (Hashtbl.mem t.reported x) then begin
    Hashtbl.replace t.reported x ();
    let var = Var.of_int x in
    let message =
      Printf.sprintf "%s race on %s: access not ordered by happens-before"
        kind_str
        (Names.var_name t.names var)
    in
    t.warnings_rev <-
      Warning.make ~analysis:name ~kind:Warning.Race ~tid:(Op.tid e.Event.op)
        ~var ~index:e.Event.index message
      :: t.warnings_rev
  end

let on_event t (e : Event.t) =
  match e.Event.op with
  | Op.Acquire (u, m) ->
    let c = thread_clock t (Tid.to_int u) in
    (match Hashtbl.find_opt t.locks (Lock.to_int m) with
    | Some lm -> Vclock.join c lm
    | None -> ())
  | Op.Release (u, m) ->
    let ti = Tid.to_int u in
    let c = thread_clock t ti in
    Hashtbl.replace t.locks (Lock.to_int m) (Vclock.copy c);
    Vclock.incr c ti
  | Op.Read (u, x) ->
    let xv = Var.to_int x in
    if not (Names.is_volatile t.names x) then begin
      let ti = Tid.to_int u in
      let c = thread_clock t ti in
      let vc = var_clocks t xv in
      (* Read races with a write unordered before it. *)
      if not (Vclock.leq vc.writes c) then report t e xv ~kind_str:"read-write";
      Vclock.set vc.reads ti (Vclock.get c ti)
    end
  | Op.Write (u, x) ->
    let xv = Var.to_int x in
    if not (Names.is_volatile t.names x) then begin
      let ti = Tid.to_int u in
      let c = thread_clock t ti in
      let vc = var_clocks t xv in
      if not (Vclock.leq vc.writes c) then report t e xv ~kind_str:"write-write"
      else if not (Vclock.leq vc.reads c) then report t e xv ~kind_str:"read-write";
      Vclock.set vc.writes ti (Vclock.get c ti)
    end
  | Op.Begin _ | Op.End _ -> ()

let finish _ = ()
let warnings t = List.rev t.warnings_rev
let races_found t = t.races

let backend () : (module Backend.S) =
  (module struct
    type nonrec t = t

    let name = name
    let create = create
    let on_event = on_event
    let pause_hint _ _ = false
    let finish = finish
    let warnings = warnings
  end)
