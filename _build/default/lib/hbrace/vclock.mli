(** Vector clocks over dense thread ids.

    The clock of thread [t] counts the synchronization epochs of [t]; a
    clock [c] knows about everything thread [u] did up to epoch [c(u)].
    Clocks grow on demand as new thread ids appear; absent entries read as
    0, matching the ⊥-initialized clocks of the literature. *)

type t

val create : unit -> t
val get : t -> int -> int
val set : t -> int -> int -> unit
val incr : t -> int -> unit

val join : t -> t -> unit
(** [join dst src] updates [dst] to the pointwise maximum. *)

val copy : t -> t

val leq : t -> t -> bool
(** Pointwise ≤ — the happens-before order on clocks. *)

val first_exceeding : t -> t -> int option
(** [first_exceeding a b] is the least thread id where [a] exceeds [b],
    i.e. a witness that [a ⋠ b]; [None] when [a ≤ b]. *)

val pp : Format.formatter -> t -> unit
