(* Tests for the baseline analyses: Eraser, the happens-before detector
   (with its vector clocks), and the Atomizer. *)

open Velodrome_trace
open Velodrome_analysis
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let feed (module B : Backend.S) ?(names = Names.create ()) ops =
  let state = B.create names in
  List.iter (B.on_event state) (Event.of_ops ops);
  B.finish state;
  B.warnings state

(* --- Eraser ----------------------------------------------------------------- *)

let eraser = Velodrome_eraser.Eraser.backend ()

let test_eraser_detects_race () =
  let ws = feed eraser [ wr t0 x; wr t1 x ] in
  check int "one race" 1 (List.length ws);
  match ws with
  | [ w ] ->
    check bool "race kind" true (w.Warning.kind = Warning.Race);
    check bool "names x" true (w.Warning.var = Some x)
  | _ -> assert false

let test_eraser_locked_clean () =
  let ws =
    feed eraser
      [
        acq t0 m; wr t0 x; rel t0 m;
        acq t1 m; rd t1 x; wr t1 x; rel t1 m;
      ]
  in
  check int "no warnings" 0 (List.length ws)

let test_eraser_read_shared_clean () =
  (* Write by one thread then reads everywhere: Shared but never
     Shared-Modified, so no warning. *)
  let ws = feed eraser [ wr t0 x; rd t1 x; rd t2 x; rd t1 x ] in
  check int "read-only sharing ok" 0 (List.length ws)

let test_eraser_exclusive_then_shared_modified () =
  (* The classic initialization pattern Eraser tolerates: one thread
     initializes without locks, then all threads use a lock. *)
  let ws =
    feed eraser
      [ wr t0 x; wr t0 x; acq t1 m; wr t1 x; rel t1 m; acq t0 m; wr t0 x; rel t0 m ]
  in
  check int "lockset survives" 0 (List.length ws)

let test_eraser_lockset_intersection () =
  (* Accesses under different locks: the candidate lockset intersects to
     empty on the third access. *)
  let ws =
    feed eraser
      [
        acq t0 m; wr t0 x; rel t0 m;
        acq t1 n; wr t1 x; rel t1 n;
        acq t0 m; wr t0 x; rel t0 m;
      ]
  in
  check int "different locks race" 1 (List.length ws)

let test_eraser_volatile_exempt () =
  let names = Names.create () in
  let v = Names.var names "flag" in
  Names.set_volatile names v;
  let ws = feed eraser ~names [ Op.Write (t0, v); Op.Write (t1, v) ] in
  check int "volatiles exempt" 0 (List.length ws)

let test_eraser_dedup_per_var () =
  let ws = feed eraser [ wr t0 x; wr t1 x; wr t0 x; wr t1 x ] in
  check int "one warning per variable" 1 (List.length ws)

(* --- Vector clocks ------------------------------------------------------------ *)

let test_vclock_basics () =
  let open Velodrome_hbrace.Vclock in
  let a = create () and b = create () in
  set a 0 3;
  set b 1 2;
  check bool "incomparable" false (leq a b || leq b a);
  join a b;
  check bool "join dominates" true (leq b a);
  check int "kept own" 3 (get a 0);
  check int "absent reads zero" 0 (get a 7);
  incr a 7;
  check int "incr" 1 (get a 7);
  let c = copy a in
  incr a 7;
  check int "copy is independent" 1 (get c 7);
  check (Alcotest.option int) "first_exceeding" (Some 7) (first_exceeding a c);
  check (Alcotest.option int) "none when leq" None (first_exceeding c a)

(* --- Happens-before race detector ----------------------------------------------- *)

let hb = Velodrome_hbrace.Hbrace.backend ()

let test_hb_detects_unordered () =
  let ws = feed hb [ wr t0 x; wr t1 x ] in
  check int "race" 1 (List.length ws)

let test_hb_lock_orders () =
  let ws =
    feed hb
      [ acq t0 m; wr t0 x; rel t0 m; acq t1 m; wr t1 x; rel t1 m ]
  in
  check int "release/acquire edge orders accesses" 0 (List.length ws)

let test_hb_transitive () =
  (* t0 -> t1 through m, t1 -> t2 through n: t2's access is ordered
     after t0's even though they share no lock. *)
  let ws =
    feed hb
      [
        wr t0 x; acq t0 m; rel t0 m;
        acq t1 m; rel t1 m; acq t1 n; rel t1 n;
        acq t2 n; rel t2 n; wr t2 x;
      ]
  in
  check int "transitive ordering" 0 (List.length ws)

let test_hb_read_write_race () =
  let ws = feed hb [ rd t0 x; wr t1 x ] in
  check int "read-write race" 1 (List.length ws)

let test_hb_not_fooled_by_unrelated_lock () =
  let ws =
    feed hb [ acq t0 m; wr t0 x; rel t0 m; acq t1 n; wr t1 x; rel t1 n ]
  in
  check int "different locks do not order" 1 (List.length ws)

let test_hb_program_order_clean () =
  let ws = feed hb [ wr t0 x; rd t0 x; wr t0 x ] in
  check int "single thread clean" 0 (List.length ws)

(* --- Epochs and FastTrack -------------------------------------------------------- *)

let test_epoch_pack () =
  let open Velodrome_hbrace.Epoch in
  let e = make ~tid:5 ~clock:1234 in
  check int "tid" 5 (tid e);
  check int "clock" 1234 (clock e);
  check bool "none is none" true (is_none none);
  check bool "made is not none" false (is_none e);
  let c = Velodrome_hbrace.Vclock.create () in
  check bool "none leq everything" true (leq_vc none c);
  check bool "not leq empty clock" false (leq_vc e c);
  Velodrome_hbrace.Vclock.set c 5 1234;
  check bool "leq at exactly its clock" true (leq_vc e c)

let fasttrack = Velodrome_hbrace.Fasttrack.backend ()

let test_fasttrack_detects_race () =
  let ws = feed fasttrack [ wr t0 x; wr t1 x ] in
  check int "race" 1 (List.length ws)

let test_fasttrack_lock_clean () =
  let ws =
    feed fasttrack
      [ acq t0 m; wr t0 x; rel t0 m; acq t1 m; rd t1 x; wr t1 x; rel t1 m ]
  in
  check int "clean" 0 (List.length ws)

let test_fasttrack_read_share_then_write () =
  (* Concurrent reads force the read-vector inflation; a later write must
     still see both. *)
  let ws =
    feed fasttrack
      [ acq t0 m; wr t0 x; rel t0 m; acq t1 m; rel t1 m;
        rd t0 x; rd t1 x;  (* concurrent reads: inflate *)
        wr t2 x  (* races with both *) ]
  in
  check int "read-write race caught after inflation" 1 (List.length ws)

(* The headline differential property: FastTrack and the full-vector
   detector flag exactly the same set of racy variables on every trace. *)
let racy_vars (module B : Backend.S) tr =
  let state = B.create (Names.create ()) in
  List.iter (B.on_event state)
    (Event.of_ops (Velodrome_trace.Trace.to_list tr));
  B.finish state;
  List.sort_uniq compare
    (List.filter_map
       (fun w -> Option.map Ids.Var.to_int w.Warning.var)
       (B.warnings state))

let prop_fasttrack_equals_full_vc =
  QCheck.Test.make ~count:400
    ~name:"fasttrack = full vector clocks (racy variable sets)"
    (trace_arbitrary
       {
         Velodrome_trace.Gen.default with
         threads = 4;
         vars = 3;
         locks = 2;
         steps = 50;
       })
    (fun tr -> racy_vars hb tr = racy_vars fasttrack tr)

(* --- Atomizer ----------------------------------------------------------------- *)

let atomizer = Velodrome_atomizer.Atomizer.backend ()

let test_atomizer_reducible_clean () =
  (* acquire; accesses; release = right-mover, both-movers, left-mover. *)
  let ws =
    feed atomizer
      [
        bg t0 l0; acq t0 m; rd t0 x; wr t0 x; rel t0 m; en t0;
        bg t1 l0; acq t1 m; rd t1 x; wr t1 x; rel t1 m; en t1;
      ]
  in
  check int "reducible" 0 (List.length ws)

let test_atomizer_two_locks_nested_clean () =
  let ws =
    feed atomizer
      [ bg t0 l0; acq t0 m; acq t0 n; wr t0 x; rel t0 n; rel t0 m; en t0 ]
  in
  check int "nested locks reducible" 0 (List.length ws)

let test_atomizer_acquire_after_release () =
  (* Two back-to-back synchronized blocks in one atomic method: the
     acquire after the first release breaks the pattern. *)
  let ops =
    [
      (* Make x and y shared first so the lockset machinery is active. *)
      acq t1 m; rd t1 x; rd t1 y; rel t1 m;
      bg t0 l0; acq t0 m; rd t0 x; rel t0 m; acq t0 m; wr t0 y; rel t0 m;
      en t0;
    ]
  in
  let ws = feed atomizer ops in
  check int "flagged" 1 (List.length ws)

let test_atomizer_racy_rmw_flagged () =
  let ops =
    [
      wr t1 x;  (* x becomes shared with an empty lockset *)
      rd t0 x;
      bg t0 l0; rd t0 x; wr t0 x; en t0;
    ]
  in
  let ws = feed atomizer ops in
  check int "two non-movers flagged" 1 (List.length ws);
  match ws with
  | [ w ] -> check bool "attributed to block" true (w.Warning.label = Some l0)
  | _ -> assert false

let test_atomizer_single_racy_access_ok () =
  let ops = [ wr t1 x; rd t0 x; bg t0 l0; wr t0 x; en t0 ] in
  let ws = feed atomizer ops in
  check int "one commit point is fine" 0 (List.length ws)

let test_atomizer_volatile_false_alarm () =
  (* The Section 2 pattern: two volatile reads inside an atomic block are
     non-movers even though the trace is serializable. *)
  let names = Names.create () in
  let v = Names.var names "baton" in
  let ops = [ bg t0 l0; Op.Read (t0, v); Op.Read (t0, v); en t0 ] in
  Names.set_volatile names v;
  let ws = feed atomizer ~names ops in
  check int "false alarm produced" 1 (List.length ws)

let test_atomizer_outside_blocks_ignored () =
  let ws = feed atomizer [ wr t0 x; wr t1 x; rd t0 x; wr t0 x ] in
  check int "no atomic block, no warning" 0 (List.length ws)

let test_atomizer_pause_hint () =
  let names = Names.create () in
  let state = Velodrome_atomizer.Atomizer.create names in
  let idx = ref 0 in
  let step op =
    Velodrome_atomizer.Atomizer.on_event state
      (Event.make ~index:!idx op);
    incr idx
  in
  (* Make x racy, then enter a block and commit via a racy read. *)
  List.iter step [ wr t1 x; rd t0 x; bg t0 l0 ];
  let hint op =
    Velodrome_atomizer.Atomizer.pause_hint state (Event.make ~index:!idx op)
  in
  check bool "no hint before commit point" false (hint (wr t0 x));
  step (rd t0 x);
  check bool "hint at second non-mover" true (hint (wr t0 x));
  check bool "no hint for other thread" false (hint (wr t1 x));
  step (en t0);
  check bool "no hint outside block" false (hint (wr t0 x))

(* --- Two-phase locking ----------------------------------------------------------- *)

let twopl = Velodrome_twopl.Twopl.backend ()

let twopl_strict =
  Velodrome_twopl.Twopl.backend
    ~config:{ Velodrome_twopl.Twopl.strict = true } ()

let test_twopl_clean () =
  let ws =
    feed twopl
      [ bg t0 l0; acq t0 m; acq t0 n; rd t0 x; rel t0 n; rel t0 m; en t0 ]
  in
  check int "two-phase pattern ok" 0 (List.length ws)

let test_twopl_violation () =
  let ws =
    feed twopl
      [ bg t0 l0; acq t0 m; rel t0 m; acq t0 n; rel t0 n; en t0 ]
  in
  check int "acquire in shrinking phase" 1 (List.length ws);
  match ws with
  | [ w ] -> check bool "labelled" true (w.Warning.label = Some l0)
  | _ -> assert false

let test_twopl_resets_between_blocks () =
  (* The shrinking phase ends with the block: two separate well-formed
     blocks are each fine. *)
  let ws =
    feed twopl
      [
        bg t0 l0; acq t0 m; rel t0 m; en t0;
        bg t0 l1; acq t0 n; rel t0 n; en t0;
      ]
  in
  check int "per-block phases" 0 (List.length ws)

let test_twopl_outside_blocks_free () =
  let ws = feed twopl [ acq t0 m; rel t0 m; acq t0 n; rel t0 n ] in
  check int "no blocks, no discipline" 0 (List.length ws)

let test_twopl_strict_unprotected_access () =
  let ws = feed twopl_strict [ bg t0 l0; rd t0 x; en t0 ] in
  check int "unprotected access flagged" 1 (List.length ws)

let test_twopl_strict_volatile_exempt () =
  let names = Names.create () in
  let v = Names.var names "flag" in
  Names.set_volatile names v;
  let ws = feed twopl_strict ~names [ bg t0 l0; Op.Read (t0, v); en t0 ] in
  check int "volatile exempt" 0 (List.length ws)

let test_twopl_false_alarm_on_serializable () =
  (* 2PL is sufficient, not necessary: two back-to-back locked reads are
     serializable here (no interleaved writer) yet flagged. *)
  let tr =
    [ bg t0 l0; acq t0 m; rd t0 x; rel t0 m; acq t0 m; rd t0 x; rel t0 m; en t0 ]
  in
  check bool "trace is serializable" true
    (Velodrome_oracle.Oracle.serializable (Velodrome_trace.Trace.of_ops tr));
  let ws = feed twopl tr in
  check int "2pl still warns (false alarm)" 1 (List.length ws)

let suite =
  ( "backends",
    [
      Alcotest.test_case "eraser race" `Quick test_eraser_detects_race;
      Alcotest.test_case "eraser locked" `Quick test_eraser_locked_clean;
      Alcotest.test_case "eraser read-shared" `Quick test_eraser_read_shared_clean;
      Alcotest.test_case "eraser init pattern" `Quick
        test_eraser_exclusive_then_shared_modified;
      Alcotest.test_case "eraser intersection" `Quick
        test_eraser_lockset_intersection;
      Alcotest.test_case "eraser volatile" `Quick test_eraser_volatile_exempt;
      Alcotest.test_case "eraser dedup" `Quick test_eraser_dedup_per_var;
      Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
      Alcotest.test_case "hb unordered" `Quick test_hb_detects_unordered;
      Alcotest.test_case "hb lock orders" `Quick test_hb_lock_orders;
      Alcotest.test_case "hb transitive" `Quick test_hb_transitive;
      Alcotest.test_case "hb read-write" `Quick test_hb_read_write_race;
      Alcotest.test_case "hb unrelated lock" `Quick
        test_hb_not_fooled_by_unrelated_lock;
      Alcotest.test_case "hb program order" `Quick test_hb_program_order_clean;
      Alcotest.test_case "epoch pack" `Quick test_epoch_pack;
      Alcotest.test_case "fasttrack race" `Quick test_fasttrack_detects_race;
      Alcotest.test_case "fasttrack locked" `Quick test_fasttrack_lock_clean;
      Alcotest.test_case "fasttrack inflation" `Quick
        test_fasttrack_read_share_then_write;
      QCheck_alcotest.to_alcotest prop_fasttrack_equals_full_vc;
      Alcotest.test_case "atomizer reducible" `Quick test_atomizer_reducible_clean;
      Alcotest.test_case "atomizer nested locks" `Quick
        test_atomizer_two_locks_nested_clean;
      Alcotest.test_case "atomizer acq after rel" `Quick
        test_atomizer_acquire_after_release;
      Alcotest.test_case "atomizer racy rmw" `Quick test_atomizer_racy_rmw_flagged;
      Alcotest.test_case "atomizer single racy ok" `Quick
        test_atomizer_single_racy_access_ok;
      Alcotest.test_case "atomizer volatile FA" `Quick
        test_atomizer_volatile_false_alarm;
      Alcotest.test_case "atomizer outside" `Quick
        test_atomizer_outside_blocks_ignored;
      Alcotest.test_case "atomizer pause hint" `Quick test_atomizer_pause_hint;
      Alcotest.test_case "2pl clean" `Quick test_twopl_clean;
      Alcotest.test_case "2pl violation" `Quick test_twopl_violation;
      Alcotest.test_case "2pl per-block reset" `Quick
        test_twopl_resets_between_blocks;
      Alcotest.test_case "2pl outside blocks" `Quick
        test_twopl_outside_blocks_free;
      Alcotest.test_case "2pl strict unprotected" `Quick
        test_twopl_strict_unprotected_access;
      Alcotest.test_case "2pl strict volatile" `Quick
        test_twopl_strict_volatile_exempt;
      Alcotest.test_case "2pl false alarm" `Quick
        test_twopl_false_alarm_on_serializable;
    ] )
