open Velodrome_sim
open Velodrome_workloads
open Velodrome_inject

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let count_ops pred (p : Ast.program) =
  let rec go acc = function
    | [] -> acc
    | s :: rest ->
      let acc = if pred s then acc + 1 else acc in
      let acc =
        match s with
        | Ast.Atomic (_, body) -> go acc body
        | Ast.If (_, a, b) -> go (go acc a) b
        | Ast.While (_, body) -> go acc body
        | _ -> acc
      in
      go acc rest
  in
  Array.fold_left (fun acc body -> go acc body) 0 p.Ast.threads

let is_acq = function Ast.Acquire _ -> true | _ -> false
let is_rel = function Ast.Release _ -> true | _ -> false

let test_strip_removes_only_target () =
  let w = Option.get (Workload.find "elevator") in
  let p = w.Workload.build Workload.Small in
  let target =
    Velodrome_trace.Names.label p.Ast.names "Board.update"
  in
  let stripped = Inject.strip_sync_in_label p target in
  let acq_before = count_ops is_acq p in
  let acq_after = count_ops is_acq stripped in
  let rel_before = count_ops is_rel p in
  let rel_after = count_ops is_rel stripped in
  check bool "some acquires removed" true (acq_after < acq_before);
  check int "acquires and releases removed in pairs"
    (acq_before - acq_after) (rel_before - rel_after);
  (* The stripped program is still statically lock-clean: whole pairs were
     removed. *)
  check bool "still lock-clean" true
    (Velodrome_lang.Check.check_program stripped = Ok ())

let test_strip_is_identity_elsewhere () =
  let w = Option.get (Workload.find "colt") in
  let p = w.Workload.build Workload.Small in
  let bogus = Velodrome_trace.Ids.Label.of_int 9999 in
  let stripped = Inject.strip_sync_in_label p bogus in
  check int "no acquires removed" (count_ops is_acq p)
    (count_ops is_acq stripped)

let test_mutants_only_contended_atomic_methods () =
  List.iter
    (fun name ->
      let w = Option.get (Workload.find name) in
      let ms = Inject.mutants w Workload.Small in
      check bool (name ^ " has mutants") true (List.length ms > 0);
      List.iter
        (fun (m : Inject.mutant) ->
          let g =
            List.find
              (fun g -> g.Workload.label = m.Inject.method_label)
              w.Workload.methods
          in
          check bool
            (m.Inject.method_label ^ " was atomic before mutation")
            true g.Workload.atomic)
        ms)
    [ "elevator"; "colt" ]

let test_mutants_expected_for_elevator () =
  let w = Option.get (Workload.find "elevator") in
  let ms = Inject.mutants w Workload.Medium in
  let labels = List.map (fun m -> m.Inject.method_label) ms in
  (* The three Board methods are contended across lifts; Controller.tick
     is single-threaded on its lock... but the board lock is shared with
     the lifts, so it also qualifies as contended. *)
  List.iter
    (fun l ->
      check bool (l ^ " mutated") true (List.mem l labels))
    [ "Board.update"; "Board.scan"; "Board.sweep" ]

let test_mutants_run_and_may_violate () =
  let w = Option.get (Workload.find "elevator") in
  match Inject.mutants w Workload.Small with
  | [] -> Alcotest.fail "expected mutants"
  | m :: _ ->
    let config =
      {
        Run.default_config with
        policy = Run.Random 1;
        record_trace = true;
      }
    in
    let res = Run.run ~config m.Inject.program [] in
    check bool "mutant runs" false res.Run.deadlocked;
    check bool "trace still well-formed" true
      (Velodrome_trace.Trace.is_well_formed (Option.get res.Run.trace))

let test_raja_has_no_mutants_without_contention () =
  (* philo's table lock is contended, so it yields mutants; a workload
     whose locked methods are not declared atomic-true yields none. *)
  let w = Option.get (Workload.find "philo") in
  let ms = Inject.mutants w Workload.Small in
  check bool "philo has contended locked methods" true (List.length ms > 0)

let suite =
  ( "inject",
    [
      Alcotest.test_case "strip removes only target" `Quick
        test_strip_removes_only_target;
      Alcotest.test_case "strip identity elsewhere" `Quick
        test_strip_is_identity_elsewhere;
      Alcotest.test_case "mutants contended+atomic" `Quick
        test_mutants_only_contended_atomic_methods;
      Alcotest.test_case "elevator mutants" `Quick
        test_mutants_expected_for_elevator;
      Alcotest.test_case "mutants run" `Quick test_mutants_run_and_may_violate;
      Alcotest.test_case "philo mutants" `Quick
        test_raja_has_no_mutants_without_contention;
    ] )
