(* Tests for the binary trace codec: exact round-trips (trace and name
   environment), the pinned wire format, and the negative paths — bad
   magic, bad version, truncation, damaged tags, trailing garbage. *)

open Velodrome_trace
open Velodrome_util
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let with_temp_file f =
  let path = Filename.temp_file "velodrome_codec" ".velb" in
  Fun.protect ~finally:(fun () -> Sys.remove path) (fun () -> f path)

let roundtrip names tr =
  with_temp_file (fun path ->
      Trace_codec.write_file names tr path;
      Trace_codec.read_file path)

let encode_bytes names tr =
  with_temp_file (fun path ->
      Trace_codec.write_file names tr path;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () -> really_input_string ic (in_channel_length ic)))

let decode_bytes s =
  with_temp_file (fun path ->
      let oc = open_out_bin path in
      output_string oc s;
      close_out oc;
      Trace_codec.read_file path)

let corrupt_message s =
  match decode_bytes s with
  | exception Trace_codec.Corrupt msg -> Some msg
  | _ -> None

let symtab_dump tbl =
  let out = ref [] in
  Symtab.iter tbl (fun id s -> out := (id, s) :: !out);
  List.rev !out

let volatile_dump (names : Names.t) =
  Hashtbl.fold (fun id () acc -> id :: acc) names.Names.volatiles []
  |> List.sort compare

let names_equal a b =
  symtab_dump a.Names.vars = symtab_dump b.Names.vars
  && symtab_dump a.Names.locks = symtab_dump b.Names.locks
  && symtab_dump a.Names.labels = symtab_dump b.Names.labels
  && symtab_dump a.Names.sites = symtab_dump b.Names.sites
  && volatile_dump a = volatile_dump b

(* --- round-trips ------------------------------------------------------------ *)

let test_empty_trace () =
  let names, tr = roundtrip (Names.create ()) (Trace.of_ops []) in
  check int "no events" 0 (Trace.length tr);
  check bool "empty names" true (names_equal names (Names.create ()))

let test_single_event () =
  let tr = Trace.of_ops [ wr t0 x ] in
  let _, tr' = roundtrip (Names.create ()) tr in
  check bool "one write back" true (Trace.to_list tr' = Trace.to_list tr)

let test_names_preserved_exactly () =
  (* The dictionary must carry every interned name — even ones no event
     mentions — plus the volatile set, so text -> binary -> text is the
     identity. *)
  let names = Names.create () in
  let v1 = Names.var names "balance" in
  let _v2 = Names.var names "unused" in
  let m = Names.lock names "account" in
  let l = Names.label names "Teller.deposit" in
  let _site = Names.site names "Bank.java:42" in
  Names.set_volatile names v1;
  let tr = Trace.of_ops [ Op.Begin (t0, l); Op.Acquire (t0, m); Op.Write (t0, v1); Op.Release (t0, m); Op.End t0 ] in
  let names', tr' = roundtrip names tr in
  check bool "ops equal" true (Trace.to_list tr' = Trace.to_list tr);
  check bool "name environment equal" true (names_equal names names');
  check bool "volatile survives" true (Names.is_volatile names' v1)

let prop_roundtrip_exact =
  QCheck.Test.make ~count:300
    ~name:"binary codec round-trips generated traces and name tables"
    (trace_arbitrary Velodrome_trace.Gen.default)
    (fun tr ->
      (* Render through the text format first so the name environment is
         populated the way real recorded traces are. *)
      let names, tr =
        Trace_io.of_string (Trace_io.to_string (Names.create ()) tr)
      in
      let names', tr' = roundtrip names tr in
      Trace.to_list tr' = Trace.to_list tr && names_equal names names')

let prop_roundtrip_matches_text =
  QCheck.Test.make ~count:100
    ~name:"text -> binary -> text is the identity on canonical traces"
    (trace_arbitrary Velodrome_trace.Gen.default)
    (fun tr ->
      let names, tr =
        Trace_io.of_string (Trace_io.to_string (Names.create ()) tr)
      in
      let names', tr' = roundtrip names tr in
      Trace_io.to_string names' tr' = Trace_io.to_string names tr)

(* --- wire format ------------------------------------------------------------ *)

(* [wr t0 x] with an empty name environment pins the layout:
   magic(4) version(1) dicts(4x1) volatiles(1) count(1) tag(1)
   var-delta(1) end-marker(4) = 17 bytes. *)
let tiny_bytes () = encode_bytes (Names.create ()) (Trace.of_ops [ wr t0 x ])

let test_wire_format () =
  let s = tiny_bytes () in
  check int "17 bytes" 17 (String.length s);
  check Alcotest.string "magic" "VELB" (String.sub s 0 4);
  check int "version" Trace_codec.version (Char.code s.[4]);
  (* tag: opcode 1 (write), bit 3 set (same thread as initial state) *)
  check int "tag byte" 0x09 (Char.code s.[11]);
  check Alcotest.string "end marker" "VEND" (String.sub s 13 4)

let set_byte s i c =
  let b = Bytes.of_string s in
  Bytes.set b i c;
  Bytes.to_string b

(* --- negative paths --------------------------------------------------------- *)

let contains msg needle =
  let n = String.length needle and m = String.length msg in
  let rec go i = i + n <= m && (String.sub msg i n = needle || go (i + 1)) in
  go 0

let test_bad_magic () =
  let s = set_byte (tiny_bytes ()) 0 'X' in
  match corrupt_message s with
  | Some msg -> check bool "mentions magic" true (contains msg "magic")
  | None -> Alcotest.fail "bad magic accepted"

let test_bad_version () =
  let s = set_byte (tiny_bytes ()) 4 '\x2a' in
  match corrupt_message s with
  | Some msg -> check bool "mentions version" true (contains msg "version")
  | None -> Alcotest.fail "bad version accepted"

let test_truncations () =
  (* Every proper prefix must be rejected, whatever byte it stops at. *)
  let s = tiny_bytes () in
  for len = 0 to String.length s - 1 do
    match corrupt_message (String.sub s 0 len) with
    | Some _ -> ()
    | None -> Alcotest.failf "truncation to %d bytes accepted" len
  done

let test_bad_tag () =
  let s = set_byte (tiny_bytes ()) 11 '\xf1' in
  match corrupt_message s with
  | Some msg -> check bool "mentions tag" true (contains msg "tag")
  | None -> Alcotest.fail "reserved tag bits accepted"

let test_bad_end_marker () =
  let s = set_byte (tiny_bytes ()) 13 'X' in
  match corrupt_message s with
  | Some msg -> check bool "mentions marker" true (contains msg "marker")
  | None -> Alcotest.fail "damaged end marker accepted"

let test_trailing_garbage () =
  match corrupt_message (tiny_bytes () ^ "\x00") with
  | Some msg -> check bool "mentions trailing" true (contains msg "trailing")
  | None -> Alcotest.fail "trailing garbage accepted"

let test_duplicate_dictionary () =
  (* Hand-built header whose variable dictionary interns "a" twice. *)
  let s = "VELB\x01\x02\x01a\x01a" in
  match corrupt_message s with
  | Some msg -> check bool "mentions duplicate" true (contains msg "duplicate")
  | None -> Alcotest.fail "duplicate dictionary entry accepted"

let test_truncated_big_trace () =
  (* A realistic generated trace chopped mid-stream. *)
  let tr = Gen.run (Velodrome_util.Rng.create 7) Gen.default in
  let names, tr = Trace_io.of_string (Trace_io.to_string (Names.create ()) tr) in
  let s = encode_bytes names tr in
  let cut = String.length s * 2 / 3 in
  match corrupt_message (String.sub s 0 cut) with
  | Some msg -> check bool "truncated" true (contains msg "truncated")
  | None -> Alcotest.fail "truncated stream accepted"

let suite =
  ( "codec",
    [
      Alcotest.test_case "empty trace" `Quick test_empty_trace;
      Alcotest.test_case "single event" `Quick test_single_event;
      Alcotest.test_case "names preserved" `Quick test_names_preserved_exactly;
      Alcotest.test_case "wire format" `Quick test_wire_format;
      Alcotest.test_case "bad magic" `Quick test_bad_magic;
      Alcotest.test_case "bad version" `Quick test_bad_version;
      Alcotest.test_case "all truncations" `Quick test_truncations;
      Alcotest.test_case "bad tag" `Quick test_bad_tag;
      Alcotest.test_case "bad end marker" `Quick test_bad_end_marker;
      Alcotest.test_case "trailing garbage" `Quick test_trailing_garbage;
      Alcotest.test_case "duplicate dictionary" `Quick
        test_duplicate_dictionary;
      Alcotest.test_case "truncated big trace" `Quick test_truncated_big_trace;
      QCheck_alcotest.to_alcotest prop_roundtrip_exact;
      QCheck_alcotest.to_alcotest prop_roundtrip_matches_text;
    ] )
