open Velodrome_trace
open Velodrome_trace.Ids
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Op ----------------------------------------------------------------- *)

let test_conflicts_same_thread () =
  check bool "same thread ops conflict" true
    (Op.conflicts (rd t0 x) (wr t0 y));
  check bool "begin/end conflict within thread" true
    (Op.conflicts (bg t0 l0) (en t0))

let test_conflicts_variables () =
  check bool "wr/rd same var" true (Op.conflicts (wr t0 x) (rd t1 x));
  check bool "rd/rd same var commute" false (Op.conflicts (rd t0 x) (rd t1 x));
  check bool "wr/wr same var" true (Op.conflicts (wr t0 x) (wr t1 x));
  check bool "different vars commute" false (Op.conflicts (wr t0 x) (wr t1 y))

let test_conflicts_locks () =
  check bool "acq/acq same lock" true (Op.conflicts (acq t0 m) (acq t1 m));
  check bool "acq/rel same lock" true (Op.conflicts (rel t0 m) (acq t1 m));
  check bool "different locks commute" false (Op.conflicts (acq t0 m) (acq t1 n));
  check bool "lock vs var commute" false (Op.conflicts (acq t0 m) (rd t1 x))

let test_conflicts_symmetric () =
  let ops = [ rd t0 x; wr t1 x; acq t0 m; rel t1 m; bg t0 l0; en t1 ] in
  List.iter
    (fun a ->
      List.iter
        (fun b ->
          check bool "symmetric" (Op.conflicts a b) (Op.conflicts b a))
        ops)
    ops

let test_op_tid () =
  check int "tid of read" 0 (Tid.to_int (Op.tid (rd t0 x)));
  check int "tid of end" 1 (Tid.to_int (Op.tid (en t1)))

(* --- Trace well-formedness ----------------------------------------------- *)

let test_wf_good () =
  let tr =
    Trace.of_ops
      [ acq t0 m; bg t0 l0; rd t0 x; wr t0 x; en t0; rel t0 m; acq t1 m; rel t1 m ]
  in
  check bool "well formed" true (Trace.is_well_formed tr)

let test_wf_acquire_held () =
  let tr = Trace.of_ops [ acq t0 m; acq t1 m ] in
  check bool "reacquire rejected" false (Trace.is_well_formed tr);
  match Trace.check tr with
  | Error (Trace.Acquire_held (1, _)) -> ()
  | _ -> Alcotest.fail "expected Acquire_held at index 1"

let test_wf_release_unheld () =
  let tr = Trace.of_ops [ acq t0 m; rel t1 m ] in
  match Trace.check tr with
  | Error (Trace.Release_unheld (1, _)) -> ()
  | _ -> Alcotest.fail "expected Release_unheld at index 1"

let test_wf_end_without_begin () =
  let tr = Trace.of_ops [ en t0 ] in
  match Trace.check tr with
  | Error (Trace.End_without_begin (0, _)) -> ()
  | _ -> Alcotest.fail "expected End_without_begin"

let test_wf_truncated_block_ok () =
  (* Open blocks at the end of the trace are allowed (truncated runs). *)
  let tr = Trace.of_ops [ bg t0 l0; rd t0 x ] in
  check bool "truncated ok" true (Trace.is_well_formed tr)

let test_threads () =
  let tr = Trace.of_ops [ rd t2 x; rd t0 x; rd t2 y ] in
  check (Alcotest.list int) "distinct ascending" [ 0; 2 ]
    (List.map Tid.to_int (Trace.threads tr))

(* --- Transactions --------------------------------------------------------- *)

let test_segment_basic () =
  let tr =
    Trace.of_ops [ bg t0 l0; rd t0 x; en t0; wr t1 x; bg t0 l1; en t0 ]
  in
  let seg = Txn.segment tr in
  check int "three transactions" 3 (Array.length seg.Txn.txns);
  let tx0 = seg.Txn.txns.(0) in
  check bool "labelled" true (tx0.Txn.label = Some l0);
  check (Alcotest.list int) "ops of first" [ 0; 1; 2 ]
    (Array.to_list tx0.Txn.ops);
  let tx1 = seg.Txn.txns.(1) in
  check bool "unary" true (Txn.is_unary tx1);
  check int "owner map" 0 seg.Txn.owner.(1);
  check int "owner map unary" 1 seg.Txn.owner.(3)

let test_segment_nested () =
  let tr =
    Trace.of_ops [ bg t0 l0; bg t0 l1; rd t0 x; en t0; en t0; rd t0 y ]
  in
  let seg = Txn.segment tr in
  check int "nested stays inside + trailing unary" 2
    (Array.length seg.Txn.txns);
  check (Alcotest.list int) "all five ops inside" [ 0; 1; 2; 3; 4 ]
    (Array.to_list seg.Txn.txns.(0).Txn.ops)

let test_segment_truncated () =
  let tr = Trace.of_ops [ bg t0 l0; rd t0 x ] in
  let seg = Txn.segment tr in
  check int "one transaction" 1 (Array.length seg.Txn.txns);
  check (Alcotest.list int) "both ops" [ 0; 1 ]
    (Array.to_list seg.Txn.txns.(0).Txn.ops)

let test_segment_interleaved () =
  let tr = Trace.of_ops [ bg t0 l0; wr t1 x; rd t0 x; en t0 ] in
  let seg = Txn.segment tr in
  check int "two transactions" 2 (Array.length seg.Txn.txns);
  check bool "not serial" false (Txn.serial tr)

let test_serial () =
  let tr = Trace.of_ops [ bg t0 l0; rd t0 x; en t0; wr t1 x ] in
  check bool "serial" true (Txn.serial tr)

let test_every_op_owned () =
  let tr = Gen.run (Velodrome_util.Rng.create 99) Gen.default in
  let seg = Txn.segment tr in
  Array.iteri
    (fun i owner ->
      check bool (Printf.sprintf "op %d owned" i) true
        (owner >= 0 && owner < Array.length seg.Txn.txns))
    seg.Txn.owner

(* --- Trace serialization -------------------------------------------------- *)

let test_io_roundtrip_fixed () =
  let src = "t0 begin Set.add\nt0 rd elems\n# a comment\n\nt1 wr elems\nt0 end\n" in
  let names, tr = Trace_io.of_string src in
  check int "four ops" 4 (Trace.length tr);
  check Alcotest.string "stable reprint" (Trace_io.to_string names tr)
    "t0 begin Set.add\nt0 rd elems\nt1 wr elems\nt0 end\n"

let test_io_syntax_errors () =
  let fails s =
    match Trace_io.of_string s with
    | exception Trace_io.Syntax_error _ -> true
    | _ -> false
  in
  check bool "bad tid" true (fails "x0 rd a\n");
  check bool "unknown op" true (fails "t0 frobnicate a\n");
  check bool "too many fields" true (fails "t0 rd a b\n");
  check bool "inline comment ok" false (fails "t0 rd a # trailing\n")

let test_io_error_line_numbers () =
  (* Malformed input must be blamed on the right 1-based line, counting
     blank and comment lines. *)
  let lineno s =
    match Trace_io.of_string s with
    | exception Trace_io.Syntax_error (n, _) -> n
    | _ -> -1
  in
  check int "error on line 1" 1 (lineno "bogus\n");
  check int "trailing garbage on last line" 3
    (lineno "t0 rd x\nt0 wr x\nt0 rd x extra\n");
  check int "unterminated final line" 3 (lineno "t0 rd x\n\nt0 frob");
  check int "blanks and comments counted" 4 (lineno "\n# c\n\nt0 oops\n")

let test_io_crlf () =
  let _, tr = Trace_io.of_string "t0 rd x\r\nt1 wr x\r\n" in
  check int "CRLF lines parse" 2 (Trace.length tr)

let test_io_unterminated_final_op () =
  (* A final line without a newline still yields its operation. *)
  let _, tr = Trace_io.of_string "t0 rd x\nt1 wr x" in
  check int "both ops" 2 (Trace.length tr)

let test_io_fold_channel_line_numbers () =
  (* The streaming reader reports the same line numbers as of_string. *)
  let path = Filename.temp_file "velodrome" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let oc = open_out_bin path in
      output_string oc "t0 rd x\n# fine\nt0 frobnicate x\n";
      close_out oc;
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          match
            Trace_io.fold_channel (Names.create ()) ic ~init:0
              ~f:(fun acc _ -> acc + 1)
          with
          | exception Trace_io.Syntax_error (3, _) -> ()
          | exception Trace_io.Syntax_error (n, _) ->
            Alcotest.failf "blamed line %d, expected 3" n
          | _ -> Alcotest.fail "malformed line accepted"))

let test_io_file_roundtrip () =
  let tr = Gen.run (Velodrome_util.Rng.create 31) Gen.default in
  let names = Names.create () in
  let path = Filename.temp_file "velodrome" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace_io.write_file names tr path;
      let names2, tr2 = Trace_io.read_file path in
      check Alcotest.string "file round-trip"
        (Trace_io.to_string names tr)
        (Trace_io.to_string names2 tr2))

let prop_io_roundtrip =
  QCheck.Test.make ~count:200 ~name:"trace_io round-trips generated traces"
    (trace_arbitrary Gen.default) (fun tr ->
      let names = Names.create () in
      let s1 = Trace_io.to_string names tr in
      let names2, tr2 = Trace_io.of_string s1 in
      Trace_io.to_string names2 tr2 = s1 && Trace.length tr2 = Trace.length tr)

(* --- Generator properties -------------------------------------------------- *)

let prop_gen_well_formed =
  QCheck.Test.make ~count:200 ~name:"generated traces are well-formed"
    (trace_arbitrary Gen.default) Trace.is_well_formed

let prop_gen_small_well_formed =
  QCheck.Test.make ~count:200 ~name:"small generated traces are well-formed"
    (trace_arbitrary Gen.small) Trace.is_well_formed

let prop_gen_closes_blocks =
  QCheck.Test.make ~count:100 ~name:"close_trailing leaves no open blocks"
    (trace_arbitrary Gen.default) (fun tr ->
      let seg = Txn.segment tr in
      Array.for_all
        (fun tx ->
          match tx.Txn.label with
          | None -> true
          | Some _ ->
            (* Labelled transactions must end with a matching End op. *)
            let last = tx.Txn.ops.(Array.length tx.Txn.ops - 1) in
            (match Trace.get tr last with Op.End _ -> true | _ -> false))
        seg.Txn.txns)

let prop_segmentation_partitions =
  QCheck.Test.make ~count:100 ~name:"segmentation partitions the trace"
    (trace_arbitrary Gen.default) (fun tr ->
      let seg = Txn.segment tr in
      let counted = Array.make (Array.length seg.Txn.txns) 0 in
      Array.iter (fun owner -> counted.(owner) <- counted.(owner) + 1)
        seg.Txn.owner;
      Array.for_all2
        (fun tx c -> Array.length tx.Txn.ops = c)
        seg.Txn.txns counted)

let suite =
  ( "trace",
    [
      Alcotest.test_case "conflicts same thread" `Quick test_conflicts_same_thread;
      Alcotest.test_case "conflicts variables" `Quick test_conflicts_variables;
      Alcotest.test_case "conflicts locks" `Quick test_conflicts_locks;
      Alcotest.test_case "conflicts symmetric" `Quick test_conflicts_symmetric;
      Alcotest.test_case "op tid" `Quick test_op_tid;
      Alcotest.test_case "wf good" `Quick test_wf_good;
      Alcotest.test_case "wf acquire held" `Quick test_wf_acquire_held;
      Alcotest.test_case "wf release unheld" `Quick test_wf_release_unheld;
      Alcotest.test_case "wf end without begin" `Quick test_wf_end_without_begin;
      Alcotest.test_case "wf truncated block" `Quick test_wf_truncated_block_ok;
      Alcotest.test_case "threads" `Quick test_threads;
      Alcotest.test_case "segment basic" `Quick test_segment_basic;
      Alcotest.test_case "segment nested" `Quick test_segment_nested;
      Alcotest.test_case "segment truncated" `Quick test_segment_truncated;
      Alcotest.test_case "segment interleaved" `Quick test_segment_interleaved;
      Alcotest.test_case "serial" `Quick test_serial;
      Alcotest.test_case "every op owned" `Quick test_every_op_owned;
      Alcotest.test_case "trace_io roundtrip" `Quick test_io_roundtrip_fixed;
      Alcotest.test_case "trace_io errors" `Quick test_io_syntax_errors;
      Alcotest.test_case "trace_io error lines" `Quick
        test_io_error_line_numbers;
      Alcotest.test_case "trace_io crlf" `Quick test_io_crlf;
      Alcotest.test_case "trace_io no final newline" `Quick
        test_io_unterminated_final_op;
      Alcotest.test_case "trace_io fold_channel lines" `Quick
        test_io_fold_channel_line_numbers;
      Alcotest.test_case "trace_io file roundtrip" `Quick
        test_io_file_roundtrip;
      QCheck_alcotest.to_alcotest prop_io_roundtrip;
      QCheck_alcotest.to_alcotest prop_gen_well_formed;
      QCheck_alcotest.to_alcotest prop_gen_small_well_formed;
      QCheck_alcotest.to_alcotest prop_gen_closes_blocks;
      QCheck_alcotest.to_alcotest prop_segmentation_partitions;
    ] )
