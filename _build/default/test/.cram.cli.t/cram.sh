  $ velodrome list | head -4
  $ velodrome run multiset --seed 3 2>&1 | head -3
  $ velodrome check ../examples/account.vel --seed 9 2>&1 | tail -3
  $ cat > spec.txt <<'SPEC'
  > atomic *
  > notatomic Teller.deposit
  > SPEC
  $ velodrome check ../examples/account.vel --seed 9 --spec spec.txt 2>&1 | tail -1
  $ velodrome print raja | head -8
  $ velodrome record multiset ms.trace --size small --seed 1
  $ velodrome check-trace ms.trace -a velodrome 2>&1 | head -2
  $ velodrome minimize ms.trace 2>&1 | head -1
  $ velodrome fuzz -n 50 --seed 7
  $ velodrome convert ms.trace ms.velb
  $ velodrome convert ms.velb ms-roundtrip.trace
  $ cmp ms.trace ms-roundtrip.trace
  $ velodrome check-trace ms.velb -a velodrome 2>&1 | head -2
  $ velodrome check-trace ms.velb --stream -a velodrome 2>&1 | head -2
  $ velodrome record ../examples/account.vel acct.trace --seed 9
  $ velodrome convert acct.trace acct.velb
  $ velodrome convert acct.velb acct-roundtrip.trace
  $ cmp acct.trace acct-roundtrip.trace
  $ head -c 40 ms.velb > bad.velb
  $ velodrome check-trace bad.velb
  $ velodrome check-trace bad.velb --stream
  $ velodrome convert bad.velb nope.trace
  $ printf 't0 rd x\nt0 frobnicate x\n' > bad.trace
  $ velodrome check-trace bad.trace
