  $ velodrome list | head -4
  $ velodrome run multiset --seed 3 2>&1 | head -3
  $ velodrome check ../examples/account.vel --seed 9 2>&1 | tail -3
  $ cat > spec.txt <<'SPEC'
  > atomic *
  > notatomic Teller.deposit
  > SPEC
  $ velodrome check ../examples/account.vel --seed 9 --spec spec.txt 2>&1 | tail -1
  $ velodrome print raja | head -8
  $ velodrome record multiset ms.trace --size small --seed 1
  $ velodrome check-trace ms.trace -a velodrome 2>&1 | head -2
  $ velodrome minimize ms.trace 2>&1 | head -1
  $ velodrome fuzz -n 50 --seed 7
