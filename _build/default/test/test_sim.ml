open Velodrome_sim
open Velodrome_trace
open Velodrome_analysis

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let run ?(policy = Run.Round_robin) ?(adversarial = false) ?backends program =
  let config =
    { Run.default_config with policy; adversarial; record_trace = true }
  in
  let backends =
    match backends with
    | Some mk -> mk program.Ast.names
    | None -> []
  in
  Run.run ~config program backends

(* --- expression evaluation ------------------------------------------------ *)

let test_eval () =
  let regs = [| 7; 3 |] in
  check int "add" 10 (Ast.eval regs (Ast.Add (Ast.Reg 0, Ast.Reg 1)));
  check int "sub" 4 (Ast.eval regs (Ast.Sub (Ast.Reg 0, Ast.Reg 1)));
  check int "mul" 21 (Ast.eval regs (Ast.Mul (Ast.Reg 0, Ast.Reg 1)));
  check int "div" 2 (Ast.eval regs (Ast.Div (Ast.Reg 0, Ast.Reg 1)));
  check int "mod" 1 (Ast.eval regs (Ast.Mod (Ast.Reg 0, Ast.Reg 1)));
  check int "div by zero" 0 (Ast.eval regs (Ast.Div (Ast.Reg 0, Ast.Int 0)));
  check int "mod by zero" 0 (Ast.eval regs (Ast.Mod (Ast.Reg 0, Ast.Int 0)));
  check int "out-of-range reg reads 0" 0 (Ast.eval regs (Ast.Reg 99))

let test_eval_cond () =
  let regs = [| 5 |] in
  let c cmp rhs = { Ast.lhs = Ast.Reg 0; cmp; rhs = Ast.Int rhs } in
  check bool "eq" true (Ast.eval_cond regs (c Ast.Eq 5));
  check bool "ne" true (Ast.eval_cond regs (c Ast.Ne 4));
  check bool "lt" false (Ast.eval_cond regs (c Ast.Lt 5));
  check bool "le" true (Ast.eval_cond regs (c Ast.Le 5));
  check bool "gt" true (Ast.eval_cond regs (c Ast.Gt 4));
  check bool "ge" false (Ast.eval_cond regs (c Ast.Ge 6))

(* --- basic execution ------------------------------------------------------- *)

let counter_program n_threads iters =
  let b = Builder.create () in
  let x = Builder.var b "x" in
  let m = Builder.lock b "m" in
  Builder.threads b n_threads (fun _ ->
      let open Builder in
      let tmp = fresh_reg b in
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i iters)
          (sync m [ read tmp x; write x (r tmp +: i 1) ]
          @ [ local k (r k +: i 1) ]);
      ]);
  (Builder.program b, x)

let test_locked_counter_exact () =
  (* Mutual exclusion must make the final count exact under any seed. *)
  List.iter
    (fun seed ->
      let program, x = counter_program 3 10 in
      let res = run ~policy:(Run.Random seed) program in
      check bool "no deadlock" false res.Run.deadlocked;
      check int
        (Printf.sprintf "count (seed %d)" seed)
        30
        (Interp.read_var res.Run.final x))
    [ 1; 2; 3; 4 ]

let test_determinism () =
  let trace_of seed =
    let program, _ = counter_program 3 5 in
    let res = run ~policy:(Run.Random seed) program in
    Trace.to_list (Option.get res.Run.trace)
  in
  check bool "same seed, same trace" true (trace_of 5 = trace_of 5);
  check bool "different seeds differ" true (trace_of 5 <> trace_of 6)

let test_emitted_traces_well_formed () =
  List.iter
    (fun seed ->
      let program, _ = counter_program 4 6 in
      let res = run ~policy:(Run.Random seed) program in
      check bool "well-formed" true
        (Trace.is_well_formed (Option.get res.Run.trace)))
    [ 10; 11; 12 ]

let test_lock_blocking () =
  (* Thread 0 takes m and loops for a while; thread 1 must wait, so its
     acquire event lands after thread 0's release. *)
  let b = Builder.create () in
  let m = Builder.lock b "m" in
  let x = Builder.var b "x" in
  let open Builder in
  thread b ([ acquire m; work 50; write x (i 1) ] @ [ release m ]);
  thread b (sync m [ write x (i 2) ]);
  let program = Builder.program b in
  let res = run program in
  check bool "no deadlock" false res.Run.deadlocked;
  let ops = Trace.to_list (Option.get res.Run.trace) in
  let pos p = Option.get (List.find_index p ops) in
  let rel0 =
    pos (function Op.Release (t, _) -> Ids.Tid.to_int t = 0 | _ -> false)
  in
  let acq1 =
    pos (function Op.Acquire (t, _) -> Ids.Tid.to_int t = 1 | _ -> false)
  in
  check bool "blocked until release" true (rel0 < acq1)

let test_deadlock_detected () =
  let b = Builder.create () in
  let m = Builder.lock b "m" in
  let n = Builder.lock b "n" in
  let open Builder in
  thread b [ acquire m; yield; yield; acquire n; release n; release m ];
  thread b [ acquire n; yield; yield; acquire m; release m; release n ];
  let program = Builder.program b in
  (* Round-robin interleaves the two acquires: deadlock. *)
  let res = run program in
  check bool "deadlock" true res.Run.deadlocked;
  check bool "deadlock warning emitted" true
    (List.exists
       (fun w -> w.Warning.kind = Warning.Deadlock)
       res.Run.warnings)

let test_reentrant_silent () =
  let b = Builder.create () in
  let m = Builder.lock b "m" in
  let x = Builder.var b "x" in
  let open Builder in
  thread b
    [ acquire m; acquire m; write x (i 1); release m; release m ];
  let program = Builder.program b in
  let res = run program in
  let ops = Trace.to_list (Option.get res.Run.trace) in
  let count p = List.length (List.filter p ops) in
  check int "one acquire" 1
    (count (function Op.Acquire _ -> true | _ -> false));
  check int "one release" 1
    (count (function Op.Release _ -> true | _ -> false))

let test_release_unheld_raises () =
  let b = Builder.create () in
  let m = Builder.lock b "m" in
  Builder.thread b [ Builder.release m ];
  let program = Builder.program b in
  Alcotest.check_raises "runtime error"
    (Interp.Runtime_error "thread 0 releases unheld lock 0") (fun () ->
      ignore (run program))

let test_atomic_events () =
  let b = Builder.create () in
  let x = Builder.var b "x" in
  let l = Builder.label b "m1" in
  let open Builder in
  thread b [ atomic l [ write x (i 1); atomic l [ write x (i 2) ] ] ];
  let program = Builder.program b in
  let res = run program in
  let ops = Trace.to_list (Option.get res.Run.trace) in
  check
    (Alcotest.list Alcotest.string)
    "begin/end structure"
    [ "t0:begin(L0)"; "t0:wr(x0)"; "t0:begin(L0)"; "t0:wr(x0)"; "t0:end";
      "t0:end" ]
    (List.map Op.to_string ops)

let test_spin_handoff () =
  (* The Section 2 baton program terminates and alternates correctly. *)
  let b = Builder.create () in
  let baton = Builder.volatile b ~init:0 "b" in
  let x = Builder.var b "x" in
  let open Builder in
  threads b 2 (fun idx ->
      let tmp = fresh_reg b in
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i 5)
          (Builder.spin_until b baton (i idx)
          @ [
              read tmp x;
              write x (r tmp +: i 1);
              write baton (i (1 - idx));
              local k (r k +: i 1);
            ]);
      ]);
  let program = Builder.program b in
  let res = run ~policy:(Run.Random 42) program in
  check bool "terminates" false res.Run.deadlocked;
  check int "all increments happened" 10 (Interp.read_var res.Run.final x)

let test_adversarial_pauses () =
  (* A racy rmw program under adversarial scheduling must record pauses
     and manufacture the violation deterministically. *)
  let b = Builder.create () in
  let x = Builder.var b "x" in
  let l = Builder.label b "inc" in
  let open Builder in
  threads b 2 (fun _ ->
      let tmp = fresh_reg b in
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i 10)
          [
            atomic l [ read tmp x; write x (r tmp +: i 1) ];
            local k (r k +: i 1);
          ];
      ]);
  let program = Builder.program b in
  let res =
    run ~policy:(Run.Random 1) ~adversarial:true
      ~backends:(fun n ->
        [
          Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
          Backend.make (Velodrome_core.Engine.backend ()) n;
        ])
      program
  in
  check bool "paused at least once" true (res.Run.pauses > 0);
  check bool "velodrome confirmed the violation" true
    (List.exists
       (fun w ->
         w.Warning.analysis = "velodrome" && w.Warning.blamed)
       res.Run.warnings)

let adversarial_result ~pause_on ~never_pause seed =
  let b = Builder.create () in
  let x = Builder.var b "x" in
  let l = Builder.label b "inc" in
  let open Builder in
  threads b 2 (fun _ ->
      let tmp = fresh_reg b in
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i 10)
          [
            atomic l [ read tmp x; write x (r tmp +: i 1) ];
            local k (r k +: i 1);
          ];
      ]);
  let program = Builder.program b in
  let config =
    {
      Run.default_config with
      policy = Run.Random seed;
      adversarial = true;
      pause_slots = 500;
      pause_on;
      never_pause;
    }
  in
  Run.run ~config program
    [
      Backend.make (Velodrome_atomizer.Atomizer.backend ()) program.Ast.names;
    ]

let test_pause_policy_writes_only () =
  (* With hints firing only at the write (this program's only post-commit
     op is the write anyway), the writes-only policy still pauses; a
     never-pause list covering every thread disables pausing entirely. *)
  let r1 = adversarial_result ~pause_on:Run.Pause_writes_only ~never_pause:[] 1 in
  check bool "writes-only policy pauses" true (r1.Run.pauses > 0);
  let r2 =
    adversarial_result ~pause_on:Run.Pause_all ~never_pause:[ 0; 1 ] 1
  in
  check int "never_pause disables pausing" 0 r2.Run.pauses

let test_never_pause_partial () =
  let r = adversarial_result ~pause_on:Run.Pause_all ~never_pause:[ 0 ] 2 in
  (* Thread 1 can still pause. *)
  check bool "other threads still pause" true (r.Run.pauses > 0)

let test_emit_reentrant_with_filter () =
  (* With [emit_reentrant] the simulator emits raw nested acquires; the
     re-entrant filter must reduce the stream a back-end sees to exactly
     what the default (self-filtering) simulator produces. *)
  let build () =
    let b = Builder.create () in
    let m = Builder.lock b "m" in
    let x = Builder.var b "x" in
    let open Builder in
    threads b 2 (fun _ ->
        [
          acquire m; acquire m; write x (i 1); release m;
          read 1 x; release m;
        ]);
    Builder.program b
  in
  let seen_through emit_reentrant wrap =
    let program = build () in
    let log = ref [] in
    let module Probe = struct
      type t = unit

      let name = "probe"
      let create _ = ()
      let on_event () e = log := e.Event.op :: !log
      let pause_hint _ _ = false
      let finish _ = ()
      let warnings _ = []
    end in
    let backend = wrap (Backend.make (module Probe) program.Ast.names) in
    let config =
      { Run.default_config with policy = Run.Random 8; emit_reentrant }
    in
    ignore (Run.run ~config program [ backend ]);
    List.rev_map Op.to_string !log
  in
  let default_stream = seen_through false Fun.id in
  let raw_filtered =
    seen_through true Velodrome_analysis.Filters.reentrant_locks
  in
  check (Alcotest.list Alcotest.string) "filter recovers the default stream"
    default_stream raw_filtered;
  (* And the raw stream really does contain the extra events. *)
  let raw = seen_through true Fun.id in
  check bool "raw stream is longer" true
    (List.length raw > List.length default_stream)

let test_peek_idempotent () =
  (* Once peek reports an operation, peeking again must report the same
     operation without advancing anything — the contract the adversarial
     scheduler relies on when it pauses a thread mid-decision. *)
  let b = Builder.create () in
  let x = Builder.var b "x" in
  Builder.thread b
    [ Builder.local 1 (Builder.i 7); Builder.write x (Builder.r 1) ];
  let interp = Interp.create (Builder.program b) in
  let p1 = Interp.peek interp 0 in
  let p2 = Interp.peek interp 0 in
  check bool "same pending op" true (p1 = p2);
  (match p1 with
  | `Op (Op.Write _) -> ()
  | _ -> Alcotest.fail "expected pending write");
  (match Interp.commit interp 0 with
  | `Emitted (Op.Write _) -> ()
  | _ -> Alcotest.fail "expected committed write");
  check int "write landed" 7 (Interp.read_var interp x)

let test_quantum_keeps_thread () =
  (* With a large quantum, a thread's consecutive events stay clustered. *)
  let program, _ = counter_program 3 6 in
  let config =
    {
      Run.default_config with
      policy = Run.Random 4;
      quantum = 100;
      record_trace = true;
    }
  in
  let res = Run.run ~config program [] in
  let ops = Trace.to_list (Option.get res.Run.trace) in
  let switches =
    fst
      (List.fold_left
         (fun (acc, prev) op ->
           let t = Ids.Tid.to_int (Op.tid op) in
           ((if prev >= 0 && prev <> t then acc + 1 else acc), t))
         (0, -1) ops)
  in
  (* 3 threads × 6 locked iterations each; with free interleaving there
     would be hundreds of switches. Lock hand-offs force some. *)
  check bool
    (Printf.sprintf "few context switches (%d)" switches)
    true (switches < 60)

let test_work_counts_no_events () =
  let b = Builder.create () in
  let x = Builder.var b "x" in
  Builder.thread b [ Builder.work 5000; Builder.write x (Builder.i 1) ];
  let program = Builder.program b in
  let res = run program in
  check int "only the write is observable" 1 res.Run.events

let suite =
  ( "sim",
    [
      Alcotest.test_case "eval" `Quick test_eval;
      Alcotest.test_case "eval cond" `Quick test_eval_cond;
      Alcotest.test_case "locked counter exact" `Quick test_locked_counter_exact;
      Alcotest.test_case "determinism" `Quick test_determinism;
      Alcotest.test_case "traces well-formed" `Quick
        test_emitted_traces_well_formed;
      Alcotest.test_case "lock blocking" `Quick test_lock_blocking;
      Alcotest.test_case "deadlock detected" `Quick test_deadlock_detected;
      Alcotest.test_case "reentrant silent" `Quick test_reentrant_silent;
      Alcotest.test_case "release unheld raises" `Quick
        test_release_unheld_raises;
      Alcotest.test_case "atomic events" `Quick test_atomic_events;
      Alcotest.test_case "spin handoff" `Quick test_spin_handoff;
      Alcotest.test_case "adversarial pauses" `Quick test_adversarial_pauses;
      Alcotest.test_case "pause policy writes-only" `Quick
        test_pause_policy_writes_only;
      Alcotest.test_case "never-pause partial" `Quick test_never_pause_partial;
      Alcotest.test_case "emit_reentrant + filter" `Quick
        test_emit_reentrant_with_filter;
      Alcotest.test_case "peek idempotent" `Quick test_peek_idempotent;
      Alcotest.test_case "quantum clustering" `Quick test_quantum_keeps_thread;
      Alcotest.test_case "work is silent" `Quick test_work_counts_no_events;
    ] )
