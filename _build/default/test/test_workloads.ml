(* Workload integration tests: every benchmark must build, run to
   completion under several schedules without deadlock or runtime error,
   emit well-formed traces, declare accurate ground truth, and — the
   repository-level completeness invariant — never draw a blamed
   Velodrome warning on a method whose ground truth says atomic. *)

open Velodrome_trace
open Velodrome_analysis
open Velodrome_workloads

let check = Alcotest.check
let bool = Alcotest.bool

let run_workload ?(seed = 1) ?(record = false) (w : Workload.t) size backends =
  let program = w.Workload.build size in
  let names = program.Velodrome_sim.Ast.names in
  let config =
    {
      Velodrome_sim.Run.default_config with
      policy = Velodrome_sim.Run.Random seed;
      record_trace = record;
    }
  in
  (names, Velodrome_sim.Run.run ~config program (backends names))

let test_all_build_all_sizes () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun size ->
          let p = w.Workload.build size in
          check bool
            (w.Workload.name ^ " has threads")
            true
            (Array.length p.Velodrome_sim.Ast.threads > 0))
        [ Workload.Small; Workload.Medium; Workload.Large ])
    Workload.all

let test_all_run_clean () =
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun seed ->
          let _, res = run_workload ~seed w Workload.Small (fun _ -> []) in
          check bool
            (Printf.sprintf "%s seed %d finishes" w.Workload.name seed)
            false res.Velodrome_sim.Run.deadlocked)
        [ 1; 2 ])
    Workload.all

let test_traces_well_formed () =
  List.iter
    (fun (w : Workload.t) ->
      let _, res =
        run_workload ~record:true w Workload.Small (fun _ -> [])
      in
      check bool
        (w.Workload.name ^ " trace well-formed")
        true
        (Trace.is_well_formed (Option.get res.Velodrome_sim.Run.trace)))
    Workload.all

let test_ground_truth_labels_exist () =
  (* Every declared method label must actually occur in the program. *)
  List.iter
    (fun (w : Workload.t) ->
      let p = w.Workload.build Workload.Small in
      let names = p.Velodrome_sim.Ast.names in
      List.iter
        (fun g ->
          check bool
            (Printf.sprintf "%s: %s declared" w.Workload.name g.Workload.label)
            true
            (Velodrome_util.Symtab.find names.Names.labels g.Workload.label
            <> None))
        w.Workload.methods)
    Workload.all

let test_program_labels_covered () =
  (* Conversely, every atomic label in the program must have ground
     truth, or Table 2 classification would silently miscount. *)
  List.iter
    (fun (w : Workload.t) ->
      let p = w.Workload.build Workload.Small in
      let names = p.Velodrome_sim.Ast.names in
      let declared =
        List.map (fun g -> g.Workload.label) w.Workload.methods
      in
      Velodrome_util.Symtab.iter names.Names.labels (fun _ label ->
          check bool
            (Printf.sprintf "%s: %s has ground truth" w.Workload.name label)
            true (List.mem label declared)))
    Workload.all

(* The repository-wide zero-false-alarm invariant: across seeds, a blamed
   Velodrome warning never lands on a method with atomic ground truth. *)
let test_velodrome_never_blames_atomic_methods () =
  List.iter
    (fun (w : Workload.t) ->
      let truth = Hashtbl.create 16 in
      List.iter
        (fun g -> Hashtbl.replace truth g.Workload.label g.Workload.atomic)
        w.Workload.methods;
      List.iter
        (fun seed ->
          let names, res =
            run_workload ~seed w Workload.Small (fun n ->
                [ Backend.make (Velodrome_core.Engine.backend ()) n ])
          in
          List.iter
            (fun (warning : Warning.t) ->
              if warning.Warning.blamed then
                match warning.Warning.label with
                | Some l ->
                  let name = Names.label_name names l in
                  check bool
                    (Printf.sprintf "%s: blamed %s is non-atomic"
                       w.Workload.name name)
                    false
                    (Option.value ~default:false (Hashtbl.find_opt truth name))
                | None -> ())
            res.Velodrome_sim.Run.warnings)
        [ 1; 2; 3 ])
    Workload.all

let test_raja_fully_clean () =
  let w = Option.get (Workload.find "raja") in
  List.iter
    (fun seed ->
      let _, res =
        run_workload ~seed w Workload.Medium (fun n ->
            [
              Backend.make (Velodrome_core.Engine.backend ()) n;
              Backend.make (Velodrome_atomizer.Atomizer.backend ()) n;
              Backend.make (Velodrome_eraser.Eraser.backend ()) n;
            ])
      in
      check bool
        (Printf.sprintf "raja clean (seed %d)" seed)
        true
        (res.Velodrome_sim.Run.warnings = []))
    [ 1; 2; 3 ]

let test_multiset_detects_set_add () =
  let w = Option.get (Workload.find "multiset") in
  let names, res =
    run_workload ~seed:3 w Workload.Medium (fun n ->
        [ Backend.make (Velodrome_core.Engine.backend ()) n ])
  in
  let found =
    List.filter_map
      (fun (warning : Warning.t) ->
        if warning.Warning.blamed then
          Option.map (Names.label_name names) warning.Warning.label
        else None)
      res.Velodrome_sim.Run.warnings
  in
  check bool "Set.add caught" true (List.mem "Set.add" found)

let test_velodrome_agrees_with_oracle_on_workload_traces () =
  (* End-to-end soundness/completeness on real workload traces (small, so
     the quadratic oracle stays fast). *)
  List.iter
    (fun name ->
      let w = Option.get (Workload.find name) in
      let names, res =
        run_workload ~seed:2 ~record:true w Workload.Small (fun _ -> [])
      in
      let trace = Option.get res.Velodrome_sim.Run.trace in
      let eng = Velodrome_core.Engine.create names in
      List.iteri
        (fun index op ->
          Velodrome_core.Engine.on_event eng (Event.make ~index op))
        (Trace.to_list trace);
      check bool
        (name ^ ": engine verdict = oracle verdict")
        (not (Velodrome_oracle.Oracle.serializable trace))
        (Velodrome_core.Engine.has_error eng))
    [ "multiset"; "philo"; "raja"; "sor"; "elevator" ]

let suite =
  ( "workloads",
    [
      Alcotest.test_case "all build" `Quick test_all_build_all_sizes;
      Alcotest.test_case "all run clean" `Quick test_all_run_clean;
      Alcotest.test_case "traces well-formed" `Quick test_traces_well_formed;
      Alcotest.test_case "ground truth labels exist" `Quick
        test_ground_truth_labels_exist;
      Alcotest.test_case "program labels covered" `Quick
        test_program_labels_covered;
      Alcotest.test_case "no blame on atomic methods" `Slow
        test_velodrome_never_blames_atomic_methods;
      Alcotest.test_case "raja clean" `Quick test_raja_fully_clean;
      Alcotest.test_case "multiset Set.add" `Quick test_multiset_detects_set_add;
      Alcotest.test_case "engine = oracle on workload traces" `Slow
        test_velodrome_agrees_with_oracle_on_workload_traces;
    ] )
