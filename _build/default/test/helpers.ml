(* Shared helpers for the test suites: compact trace construction and
   QCheck arbitraries over well-formed traces. *)

open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_util

let t0 = Tid.of_int 0
let t1 = Tid.of_int 1
let t2 = Tid.of_int 2
let x = Var.of_int 0
let y = Var.of_int 1
let z = Var.of_int 2
let m = Lock.of_int 0
let n = Lock.of_int 1
let l0 = Label.of_int 0
let l1 = Label.of_int 1
let l2 = Label.of_int 2

let rd t v = Op.Read (t, v)
let wr t v = Op.Write (t, v)
let acq t l = Op.Acquire (t, l)
let rel t l = Op.Release (t, l)
let bg t l = Op.Begin (t, l)
let en t = Op.End t

(* QCheck generator of well-formed traces driven by Gen.run; the QCheck
   shrinker is not useful on whole traces, so we rely on small sizes. *)
let trace_arbitrary cfg =
  QCheck.make
    ~print:(fun tr -> Format.asprintf "%a" Trace.pp tr)
    (QCheck.Gen.map
       (fun seed -> Gen.run (Rng.create seed) cfg)
       (QCheck.Gen.int_bound 1_000_000))

let qsuite name cells =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) cells)

(* Run a trace through the optimized engine and return it. *)
let run_engine ?config trace =
  let names = Names.create () in
  let eng = Velodrome_core.Engine.create ?config names in
  List.iter (Velodrome_core.Engine.on_event eng)
    (Event.of_ops (Trace.to_list trace));
  Velodrome_core.Engine.finish eng;
  eng

let run_basic ?config trace =
  let names = Names.create () in
  let eng = Velodrome_core.Basic.create ?config names in
  List.iter (Velodrome_core.Basic.on_event eng)
    (Event.of_ops (Trace.to_list trace));
  Velodrome_core.Basic.finish eng;
  eng
