open Velodrome_trace
open Velodrome_oracle.Oracle
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool

(* The unsynchronized read-modify-write from Section 2: not serializable. *)
let rmw_violation =
  Trace.of_ops [ bg t0 l0; rd t0 x; wr t1 x; wr t0 x; en t0 ]

(* The same interleaving where the interposed write touches another
   variable: serializable. *)
let rmw_benign = Trace.of_ops [ bg t0 l0; rd t0 x; wr t1 y; wr t0 x; en t0 ]

(* The introduction's three-thread cycle A => B' => C' => A, rendered as
   operations. Thread 1 runs A (rel m then reads x and z); thread 2 runs B
   then B' (acquire m, write y); thread 3 runs C then C' (write x after
   reading y). *)
let intro_cycle =
  Trace.of_ops
    [
      bg t2 l2;
      (* C: z = x *)
      rd t2 x;
      wr t2 z;
      bg t0 l0;
      (* A begins *)
      rel t0 m;
      (* A: rel(m), lock acquired before trace start is modelled by
         acquiring it first *)
      wr t0 z;
      en t2;
      bg t1 l1;
      acq t1 m;
      (* B': acq(m) after A's release: A => B' *)
      wr t1 y;
      en t1;
      bg t2 l2;
      rd t2 y;
      (* C': reads B's y: B' => C' *)
      wr t2 x;
      en t2;
      rd t0 x;
      (* A reads C''s x: C' => A, closing the cycle *)
      en t0;
    ]

let fix_intro =
  (* The lock m must be held by t0 before it can release it; prepend. *)
  Trace.of_ops (acq t0 m :: Trace.to_list intro_cycle)

let test_rmw_not_serializable () =
  check bool "rmw violation" false (serializable rmw_violation);
  match witness_cycle rmw_violation with
  | Some cyc -> check bool "cycle length >= 2" true (List.length cyc >= 2)
  | None -> Alcotest.fail "expected witness cycle"

let test_rmw_benign_serializable () =
  check bool "benign rmw" true (serializable rmw_benign)

let test_intro_cycle () =
  check bool "well formed" true (Trace.is_well_formed fix_intro);
  check bool "intro example not serializable" false (serializable fix_intro)

let test_serial_is_serializable () =
  let tr = Trace.of_ops [ bg t0 l0; rd t0 x; wr t0 x; en t0; wr t1 x ] in
  check bool "serial trace" true (serializable tr)

let test_empty_trace () =
  check bool "empty trace serializable" true (serializable (Trace.of_ops []))

let test_lock_protected_serializable () =
  (* Two threads doing locked read-modify-writes interleaved at the
     transaction level only. *)
  let tr =
    Trace.of_ops
      [
        bg t0 l0; acq t0 m; rd t0 x; wr t0 x; rel t0 m; en t0;
        bg t1 l0; acq t1 m; rd t1 x; wr t1 x; rel t1 m; en t1;
      ]
  in
  check bool "locked rmw serializable" true (serializable tr)

let test_swaps_agrees_on_examples () =
  check (Alcotest.option bool) "rmw violation by swaps" (Some false)
    (serializable_by_swaps rmw_violation);
  check (Alcotest.option bool) "benign by swaps" (Some true)
    (serializable_by_swaps rmw_benign)

let test_swaps_refuses_large () =
  let tr = Gen.run (Velodrome_util.Rng.create 5) Gen.default in
  check (Alcotest.option bool) "too large" None
    (serializable_by_swaps ~max_ops:5 tr)

let test_self_serializable () =
  (* In the rmw violation, t0's transaction is not self-serializable but
     t1's unary write trivially is. *)
  let seg = Txn.segment rmw_violation in
  let t0_txn =
    (Array.to_list seg.Txn.txns
    |> List.find (fun tx -> tx.Txn.label <> None))
      .Txn.id
  in
  let t1_txn =
    (Array.to_list seg.Txn.txns |> List.find (fun tx -> tx.Txn.label = None))
      .Txn.id
  in
  check (Alcotest.option bool) "atomic block blamed" (Some false)
    (self_serializable_by_swaps rmw_violation ~txn:t0_txn);
  check (Alcotest.option bool) "unary always self-serializable" (Some true)
    (self_serializable_by_swaps rmw_violation ~txn:t1_txn)

(* The paper's Section 4.3 example: a non-serializable trace in which every
   transaction is nonetheless self-serializable, so no single transaction
   can be blamed. D' = begin; x=0; u=y; end on thread 1, E' = begin; y=0;
   v=x; end on thread 2, fully interleaved. *)
let test_all_self_serializable_but_cycle () =
  let v = z in
  let tr =
    Trace.of_ops
      [
        bg t0 l0; (* D' *)
        bg t1 l1; (* E' *)
        wr t0 x;
        wr t1 y;
        rd t0 y;  (* D' reads y after E' wrote it: E' => D' *)
        rd t1 x;  (* E' reads x after D' wrote it: D' => E' *)
        wr t0 v;
        en t0;
        en t1;
      ]
  in
  check bool "not serializable" false (serializable tr);
  let seg = Txn.segment tr in
  Array.iter
    (fun tx ->
      check (Alcotest.option bool)
        (Printf.sprintf "txn %d self-serializable" tx.Txn.id) (Some true)
        (self_serializable_by_swaps tr ~txn:tx.Txn.id))
    seg.Txn.txns

(* --- minimization ----------------------------------------------------------- *)

module Minimize = Velodrome_oracle.Minimize

let test_minimize_rmw () =
  let small = Minimize.ddmin rmw_violation in
  check bool "still non-serializable" false (serializable small);
  check bool "minimal" true (Minimize.is_minimal small);
  check bool "not longer than input" true
    (Trace.length small <= Trace.length rmw_violation)

let test_minimize_rejects_serializable () =
  Alcotest.check_raises "refuses serializable input"
    (Invalid_argument "Minimize.ddmin: trace is serializable") (fun () ->
      ignore (Minimize.ddmin rmw_benign))

let test_minimize_big_trace () =
  (* A violating core surrounded by noise shrinks substantially. *)
  let noise t k =
    List.concat_map
      (fun i -> [ wr t (Ids.Var.of_int (3 + (i mod 4))) ])
      (List.init k Fun.id)
  in
  let ops =
    noise t2 20
    @ [ bg t0 l0; rd t0 x ]
    @ noise t2 10
    @ [ wr t1 x; wr t0 x; en t0 ]
    @ noise t1 20
  in
  let tr = Trace.of_ops ops in
  check bool "input non-serializable" false (serializable tr);
  let small = Minimize.ddmin tr in
  check bool "shrunk well below input" true (Trace.length small <= 8);
  check bool "minimal" true (Minimize.is_minimal small)

let prop_minimize_sound =
  QCheck.Test.make ~count:100
    ~name:"ddmin output is a minimal non-serializable well-formed trace"
    (trace_arbitrary { Gen.default with threads = 3; vars = 2; steps = 25 })
    (fun tr ->
      QCheck.assume (not (serializable tr));
      let small = Minimize.ddmin tr in
      Trace.is_well_formed small
      && (not (serializable small))
      && Minimize.is_minimal small)

(* --- view-serializability ----------------------------------------------------- *)

module View = Velodrome_oracle.View

let test_view_conflict_serializable_trace () =
  check (Alcotest.option bool) "benign is view-serializable" (Some true)
    (View.view_serializable rmw_benign)

let test_view_rmw_violation () =
  (* The rmw violation changes the reads-from relation under every serial
     order, so it is not even view-serializable. *)
  check (Alcotest.option bool) "rmw not view-serializable" (Some false)
    (View.view_serializable rmw_violation)

let test_view_but_not_conflict () =
  (* The classical blind-write example: T1 and T2 interleave writes to x
     and y (conflict cycle), but T3's final writes to both make every
     serial order view-equivalent. *)
  let tr =
    Trace.of_ops
      [
        bg t0 l0; wr t0 x;
        bg t1 l1; wr t1 x; wr t1 y;
        wr t0 y; en t0; en t1;
        bg t2 l2; wr t2 x; wr t2 y; en t2;
      ]
  in
  check bool "not conflict-serializable" false (serializable tr);
  check (Alcotest.option bool) "but view-serializable" (Some true)
    (View.view_serializable tr)

let test_view_refuses_large () =
  let tr = Gen.run (Velodrome_util.Rng.create 5) Gen.default in
  check (Alcotest.option bool) "too many transactions" None
    (View.view_serializable ~max_txns:2 tr)

let test_view_equivalent_reflexive () =
  check bool "trace view-equivalent to itself" true
    (View.view_equivalent rmw_violation rmw_violation)

let prop_conflict_implies_view =
  QCheck.Test.make ~count:200
    ~name:"conflict-serializable ⇒ view-serializable (small traces)"
    (trace_arbitrary { Gen.small with steps = 10 })
    (fun tr ->
      match View.view_serializable ~max_txns:6 tr with
      | None -> QCheck.assume_fail ()
      | Some view -> (not (serializable tr)) || view)

(* The headline differential property: the polynomial conflict-graph oracle
   agrees with literal swap-based exploration on small traces. *)
let prop_conflict_graph_matches_swaps =
  QCheck.Test.make ~count:300
    ~name:"conflict-graph oracle = swap exploration (small traces)"
    (trace_arbitrary Gen.small) (fun tr ->
      match serializable_by_swaps ~max_ops:9 tr with
      | None -> QCheck.assume_fail ()
      | Some by_swaps -> serializable tr = by_swaps)

let prop_serial_traces_serializable =
  QCheck.Test.make ~count:200 ~name:"serial traces are serializable"
    (trace_arbitrary { Gen.default with threads = 1 }) (fun tr ->
      (* Single-threaded traces are trivially serial. *)
      Txn.serial tr && serializable tr)

let suite =
  ( "oracle",
    [
      Alcotest.test_case "rmw not serializable" `Quick test_rmw_not_serializable;
      Alcotest.test_case "rmw benign" `Quick test_rmw_benign_serializable;
      Alcotest.test_case "intro cycle" `Quick test_intro_cycle;
      Alcotest.test_case "serial serializable" `Quick test_serial_is_serializable;
      Alcotest.test_case "empty trace" `Quick test_empty_trace;
      Alcotest.test_case "locked rmw" `Quick test_lock_protected_serializable;
      Alcotest.test_case "swaps on examples" `Quick test_swaps_agrees_on_examples;
      Alcotest.test_case "swaps refuses large" `Quick test_swaps_refuses_large;
      Alcotest.test_case "self-serializable" `Quick test_self_serializable;
      Alcotest.test_case "all self-serializable cycle" `Quick
        test_all_self_serializable_but_cycle;
      Alcotest.test_case "view conflict-serializable" `Quick
        test_view_conflict_serializable_trace;
      Alcotest.test_case "view rmw violation" `Quick test_view_rmw_violation;
      Alcotest.test_case "view but not conflict" `Quick
        test_view_but_not_conflict;
      Alcotest.test_case "view refuses large" `Quick test_view_refuses_large;
      Alcotest.test_case "view equivalent reflexive" `Quick
        test_view_equivalent_reflexive;
      QCheck_alcotest.to_alcotest prop_conflict_implies_view;
      Alcotest.test_case "minimize rmw" `Quick test_minimize_rmw;
      Alcotest.test_case "minimize rejects serializable" `Quick
        test_minimize_rejects_serializable;
      Alcotest.test_case "minimize big trace" `Quick test_minimize_big_trace;
      QCheck_alcotest.to_alcotest prop_minimize_sound;
      QCheck_alcotest.to_alcotest prop_conflict_graph_matches_swaps;
      QCheck_alcotest.to_alcotest prop_serial_traces_serializable;
    ] )
