open Velodrome_trace
open Velodrome_analysis
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

module Common = Velodrome_harness.Common

(* --- method exclusion -------------------------------------------------------- *)

let excluded_l0 l = Ids.Label.equal l l0

let test_filter_ops_drops_begin_end () =
  let ops = [ bg t0 l0; rd t0 x; en t0; bg t0 l1; rd t0 y; en t0 ] in
  let kept = Velodrome_harness.Exclude.filter_ops ~excluded:excluded_l0 ops in
  check int "dropped one begin/end pair" 4 (List.length kept);
  check bool "l1 block survives" true
    (List.exists (function Op.Begin (_, l) -> l = l1 | _ -> false) kept);
  check bool "l0 begin gone" false
    (List.exists (function Op.Begin (_, l) -> l = l0 | _ -> false) kept)

let test_filter_ops_nested () =
  (* Excluding the outer block keeps the inner one. *)
  let ops = [ bg t0 l0; bg t0 l1; rd t0 x; en t0; en t0 ] in
  let kept = Velodrome_harness.Exclude.filter_ops ~excluded:excluded_l0 ops in
  check int "outer pair dropped" 3 (List.length kept);
  match kept with
  | [ Op.Begin (_, l); Op.Read _; Op.End _ ] ->
    check bool "inner label" true (l = l1)
  | _ -> Alcotest.fail "unexpected structure"

let test_filter_ops_keeps_result_well_formed () =
  let tr = Gen.run (Velodrome_util.Rng.create 77) Gen.default in
  let kept =
    Velodrome_harness.Exclude.filter_ops ~excluded:excluded_l0
      (Trace.to_list tr)
  in
  check bool "filtered trace well-formed" true
    (Trace.is_well_formed (Trace.of_ops kept))

let test_exclude_backend_matches_filter_ops () =
  (* The online filter and the offline pure function agree. *)
  let tr = Gen.run (Velodrome_util.Rng.create 123) Gen.default in
  let ops = Trace.to_list tr in
  let seen = ref [] in
  let module Probe = struct
    type t = unit

    let name = "probe"
    let create _ = ()
    let on_event () e = seen := e.Event.op :: !seen
    let pause_hint _ _ = false
    let finish _ = ()
    let warnings _ = []
  end in
  let packed =
    Velodrome_harness.Exclude.methods ~excluded:excluded_l0
      (Backend.make (module Probe) (Names.create ()))
  in
  List.iter (Backend.on_event packed) (Event.of_ops ops);
  let online = List.rev !seen in
  let offline = Velodrome_harness.Exclude.filter_ops ~excluded:excluded_l0 ops in
  check bool "same stream" true (online = offline)

(* --- specs ------------------------------------------------------------------- *)

let test_spec_default_checks_all () =
  check bool "default" true
    (Velodrome_harness.Spec.is_checked Velodrome_harness.Spec.default "Set.add")

let test_spec_rules () =
  let spec =
    Result.get_ok
      (Velodrome_harness.Spec.parse
         "# comment\natomic *\nnotatomic Thread.run*\nnotatomic Set.add\natomic Set.addAll\n")
  in
  let checked = Velodrome_harness.Spec.is_checked spec in
  check bool "wildcard keeps" true (checked "Vector.contains");
  check bool "glob excludes" false (checked "Thread.run17");
  check bool "exact excludes" false (checked "Set.add");
  check bool "later rule wins" true (checked "Set.addAll")

let test_spec_parse_error () =
  check bool "malformed rejected" true
    (Result.is_error (Velodrome_harness.Spec.parse "frobnicate Set.add\n"))

let test_spec_excluded_predicate () =
  let spec =
    Result.get_ok (Velodrome_harness.Spec.parse "notatomic M1\n")
  in
  let names = Names.create () in
  let m1 = Names.label names "M1" in
  let m2 = Names.label names "M2" in
  let ex = Velodrome_harness.Spec.excluded spec names in
  check bool "M1 excluded" true (ex m1);
  check bool "M2 checked" false (ex m2)

let test_spec_silences_velodrome () =
  (* Excluding Set.add turns its body into unary transactions: the
     composite violation disappears from the reports. *)
  let w = Option.get (Velodrome_workloads.Workload.find "multiset") in
  let program = w.Velodrome_workloads.Workload.build Velodrome_workloads.Workload.Small in
  let names = program.Velodrome_sim.Ast.names in
  let spec = Result.get_ok (Velodrome_harness.Spec.parse "notatomic Set.*\n") in
  let backend =
    Velodrome_harness.Exclude.methods
      ~excluded:(Velodrome_harness.Spec.excluded spec names)
      (Backend.make (Velodrome_core.Engine.backend ()) names)
  in
  let config =
    {
      Velodrome_sim.Run.default_config with
      policy = Velodrome_sim.Run.Random 3;
    }
  in
  let res = Velodrome_sim.Run.run ~config program [ backend ] in
  check int "no Set.* warnings" 0
    (List.length
       (List.filter
          (fun (w : Warning.t) ->
            match Common.label_of_warning names w with
            | Some l -> String.length l >= 4 && String.sub l 0 4 = "Set."
            | None -> false)
          res.Velodrome_sim.Run.warnings))

(* --- table plumbing ------------------------------------------------------------ *)

let test_table2_totals () =
  let mk workload atomizer_real atomizer_fa velodrome_real velodrome_fa
      missed =
    {
      Velodrome_harness.Table2.workload;
      atomizer_real;
      atomizer_fa;
      velodrome_real;
      velodrome_fa;
      missed;
      velodrome_warnings = 10;
      velodrome_blamed = 9;
    }
  in
  let rows = [ mk "a" 3 1 2 0 1; mk "b" 4 0 4 0 0 ] in
  let t = Velodrome_harness.Table2.totals rows in
  check int "real" 7 t.Velodrome_harness.Table2.atomizer_real;
  check int "fa" 1 t.Velodrome_harness.Table2.atomizer_fa;
  check int "vel real" 6 t.Velodrome_harness.Table2.velodrome_real;
  check int "missed" 1 t.Velodrome_harness.Table2.missed

let test_time_stable_positive () =
  let t =
    Velodrome_harness.Common.time_stable ~min_total:0.01 3 (fun () ->
        ignore (Array.init 1000 Fun.id))
  in
  check bool "positive" true (t > 0.0)

(* A cut-down Table 2 on one workload: the totals must match what Table 2
   claims for it (multiset: 5 real, 0 FA for both tools). *)
let test_table2_multiset_row () =
  let w = Option.get (Velodrome_workloads.Workload.find "multiset") in
  let r =
    Velodrome_harness.Table2.row_for ~size:Velodrome_workloads.Workload.Small
      ~seeds:[ 1; 2; 3 ] w
  in
  check int "atomizer real" 5 r.Velodrome_harness.Table2.atomizer_real;
  check int "atomizer fa" 0 r.Velodrome_harness.Table2.atomizer_fa;
  check int "velodrome fa" 0 r.Velodrome_harness.Table2.velodrome_fa;
  check bool "velodrome finds most" true
    (r.Velodrome_harness.Table2.velodrome_real >= 4)

let suite =
  ( "harness",
    [
      Alcotest.test_case "filter_ops drops" `Quick test_filter_ops_drops_begin_end;
      Alcotest.test_case "filter_ops nested" `Quick test_filter_ops_nested;
      Alcotest.test_case "filter_ops well-formed" `Quick
        test_filter_ops_keeps_result_well_formed;
      Alcotest.test_case "online = offline filter" `Quick
        test_exclude_backend_matches_filter_ops;
      Alcotest.test_case "spec default" `Quick test_spec_default_checks_all;
      Alcotest.test_case "spec rules" `Quick test_spec_rules;
      Alcotest.test_case "spec parse error" `Quick test_spec_parse_error;
      Alcotest.test_case "spec excluded predicate" `Quick
        test_spec_excluded_predicate;
      Alcotest.test_case "spec silences velodrome" `Quick
        test_spec_silences_velodrome;
      Alcotest.test_case "table2 totals" `Quick test_table2_totals;
      Alcotest.test_case "time_stable" `Quick test_time_stable_positive;
      Alcotest.test_case "table2 multiset row" `Slow test_table2_multiset_row;
    ] )
