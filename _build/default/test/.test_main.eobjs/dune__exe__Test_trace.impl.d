test/test_trace.ml: Alcotest Array Filename Fun Gen Helpers List Names Op Printf QCheck QCheck_alcotest Sys Tid Trace Trace_io Txn Velodrome_trace Velodrome_util
