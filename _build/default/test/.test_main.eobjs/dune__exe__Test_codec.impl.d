test/test_codec.ml: Alcotest Bytes Char Filename Fun Gen Hashtbl Helpers List Names Op QCheck QCheck_alcotest String Symtab Sys Trace Trace_codec Trace_io Velodrome_trace Velodrome_util
