test/test_main.ml: Alcotest Test_analysis Test_backends Test_core Test_harness Test_inject Test_lang Test_oracle Test_sim Test_trace Test_util Test_workloads
