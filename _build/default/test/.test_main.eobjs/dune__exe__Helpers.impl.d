test/helpers.ml: Event Format Gen Label List Lock Names Op QCheck QCheck_alcotest Rng Tid Trace Var Velodrome_core Velodrome_trace Velodrome_util
