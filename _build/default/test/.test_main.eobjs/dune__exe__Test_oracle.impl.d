test/test_oracle.ml: Alcotest Array Fun Gen Helpers Ids List Printf QCheck QCheck_alcotest Trace Txn Velodrome_oracle Velodrome_trace Velodrome_util
