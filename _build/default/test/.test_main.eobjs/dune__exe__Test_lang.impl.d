test/test_lang.ml: Alcotest Array Ast Check Interp Lexer List Names Option Parser Printer Result Run Velodrome_lang Velodrome_sim Velodrome_trace Velodrome_workloads
