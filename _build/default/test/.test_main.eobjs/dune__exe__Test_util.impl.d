test/test_util.ml: Alcotest Array Digraph Dot Fun List Rng Stats String Symtab Vec Velodrome_util
