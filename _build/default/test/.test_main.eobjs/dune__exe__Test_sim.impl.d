test/test_sim.ml: Alcotest Ast Backend Builder Event Fun Ids Interp List Op Option Printf Run Trace Velodrome_analysis Velodrome_atomizer Velodrome_core Velodrome_sim Velodrome_trace Warning
