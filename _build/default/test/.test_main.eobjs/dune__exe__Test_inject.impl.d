test/test_inject.ml: Alcotest Array Ast Inject List Option Run Velodrome_inject Velodrome_lang Velodrome_sim Velodrome_trace Velodrome_workloads Workload
