test/test_analysis.ml: Alcotest Backend Empty Event Filters Format Helpers List Names String Trace Velodrome_analysis Velodrome_trace Warning
