(* Quickstart: the paper's Section 1 example.

   Set.add is built from two individually synchronized Vector operations
   (contains, then add). Each Vector call takes the vector's monitor, so
   Eraser sees no data race — yet Set.add is not atomic: another thread
   can change the vector between the two calls.

   This example builds that program in the embedded DSL, runs it under
   the deterministic simulator with Velodrome attached, and prints the
   warning together with its dot error graph — the exact artefact the
   paper's Section 5 shows.

   Run with: dune exec examples/quickstart.exe *)

open Velodrome_sim
open Velodrome_analysis
open Builder

let () =
  let b = create () in
  let vector = lock b "Vector.monitor" in
  let elems = var b "elems" in
  (* Two threads concurrently add elements to the same Set. *)
  threads b 2 (fun _ ->
      let seen = fresh_reg b in
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i 20)
          [
            atomic (label b "Set.add")
              (* if (!elems.contains(x)) elems.add(x) *)
              (sync vector [ read seen elems ]
              @ [ yield ]
              @ sync vector [ read seen elems; write elems (r seen +: i 1) ]);
            local k (r k +: i 1);
          ];
      ]);
  let program = program b in
  let names = program.Ast.names in

  let velodrome = Backend.make (Velodrome_core.Engine.backend ()) names in
  let config =
    { Run.default_config with policy = Run.Random 7; record_trace = true }
  in
  let result = Run.run ~config program [ velodrome ] in

  Printf.printf "Executed %d operations.\n\n" result.Run.events;
  match Warning.dedup_by_label result.Run.warnings with
  | [] -> print_endline "No atomicity violations observed (try another seed)."
  | warnings ->
    List.iter
      (fun w ->
        Format.printf "Warning: %a@.@." (Warning.pp names) w;
        match w.Warning.dot with
        | Some dot ->
          print_endline "Error graph (render with `dot -Tpdf`):";
          print_endline dot
        | None -> ())
      warnings;
    (* The offline oracle agrees that the observed trace really is
       non-serializable — Velodrome warnings are never false alarms. *)
    let trace = Option.get result.Run.trace in
    Printf.printf "Oracle confirms the trace is non-serializable: %b\n"
      (not (Velodrome_oracle.Oracle.serializable trace))
