(* Adversarial scheduling in action (Section 5).

   The colt workload contains seven lazily-cached matrix operations whose
   unsynchronized check/update windows are two adjacent operations that
   different threads reach at different times — across ordinary runs they
   almost never produce a non-serializable trace, so Velodrome (which
   never generalizes beyond the observed trace) almost never sees them.

   Running the Atomizer alongside and letting it pause threads that are
   about to complete a suspicious pattern parks the offender inside its
   own window until a conflicting write arrives; Velodrome then witnesses
   a real cycle. This example hunts the lazy-cache bugs both ways.

   Run with: dune exec examples/bug_hunt.exe *)

open Velodrome_analysis
open Velodrome_workloads

let hunt ~adversarial ~seeds =
  let w = Option.get (Workload.find "colt") in
  let found = ref [] in
  List.iter
    (fun seed ->
      let program = w.Workload.build Workload.Medium in
      let names = program.Velodrome_sim.Ast.names in
      let config =
        {
          Velodrome_sim.Run.default_config with
          policy = Velodrome_sim.Run.Random seed;
          adversarial;
          pause_slots = 2000;
        }
      in
      let result =
        Velodrome_sim.Run.run ~config program
          [
            Backend.make (Velodrome_atomizer.Atomizer.backend ()) names;
            Backend.make (Velodrome_core.Engine.backend ()) names;
          ]
      in
      List.iter
        (fun warning ->
          if
            warning.Warning.analysis = "velodrome"
            && warning.Warning.blamed
          then
            match warning.Warning.label with
            | Some l ->
              let name = Velodrome_trace.Names.label_name names l in
              if not (List.mem name !found) then found := name :: !found
            | None -> ())
        result.Velodrome_sim.Run.warnings)
    seeds;
  List.sort compare !found

let () =
  let seeds = [ 1; 2; 3; 4; 5 ] in
  let plain = hunt ~adversarial:false ~seeds in
  let adv = hunt ~adversarial:true ~seeds in
  Printf.printf "Methods Velodrome confirmed over %d plain runs:\n"
    (List.length seeds);
  List.iter (Printf.printf "  %s\n") plain;
  Printf.printf "\nWith Atomizer-guided adversarial scheduling:\n";
  List.iter (Printf.printf "  %s\n") adv;
  let gained = List.filter (fun m -> not (List.mem m plain)) adv in
  Printf.printf "\nBugs only the adversarial scheduler exposed: %s\n"
    (if gained = [] then "(none this time — try more seeds)"
     else String.concat ", " gained)
