(* A classic atomicity defect and its fix.

   `transfer` moves money between two accounts. The buggy version locks
   each account access separately — every individual read and write is
   race-free, but the transfer as a whole can interleave with another
   transfer and lose money. The fixed version holds both locks across the
   whole method. Velodrome flags the first and is silent on the second;
   the example also shows the final balances so you can see the lost
   update with your own eyes.

   Run with: dune exec examples/bank_transfer.exe *)

open Velodrome_sim
open Velodrome_analysis
open Builder

let build ~buggy =
  let b = create () in
  let m_a = lock b "account.a" in
  let m_b = lock b "account.b" in
  let balance_a = var b ~init:1000 "balance.a" in
  let balance_b = var b ~init:1000 "balance.b" in
  threads b 2 (fun _ ->
      let amount = fresh_reg b in
      let va = fresh_reg b in
      let vb = fresh_reg b in
      let k = fresh_reg b in
      let body =
        if buggy then
          (* Each access individually locked; the method is not atomic. *)
          sync m_a [ read va balance_a ]
          @ [ yield ]
          @ sync m_a [ write balance_a (r va -: r amount) ]
          @ sync m_b [ read vb balance_b ]
          @ sync m_b [ write balance_b (r vb +: r amount) ]
        else
          (* Both locks held for the whole transfer: atomic. *)
          sync m_a
            (sync m_b
               [
                 read va balance_a;
                 write balance_a (r va -: r amount);
                 read vb balance_b;
                 write balance_b (r vb +: r amount);
               ])
      in
      [
        local k (i 0);
        local amount (i 10);
        while_ (r k <: i 25)
          [ atomic (label b "Bank.transfer") body; local k (r k +: i 1) ];
      ]);
  program b

let run_version ~buggy =
  let program = build ~buggy in
  let names = program.Ast.names in
  let velodrome = Backend.make (Velodrome_core.Engine.backend ()) names in
  let config = { Run.default_config with policy = Run.Random 11 } in
  let result = Run.run ~config program [ velodrome ] in
  let warnings = Warning.dedup_by_label result.Run.warnings in
  Printf.printf "%s version: %d warnings\n"
    (if buggy then "Buggy" else "Fixed")
    (List.length warnings);
  List.iter (fun w -> Format.printf "  %a@." (Warning.pp names) w) warnings;
  let total =
    Interp.read_var result.Run.final
      (Velodrome_trace.Names.var names "balance.a")
    + Interp.read_var result.Run.final
        (Velodrome_trace.Names.var names "balance.b")
  in
  Printf.printf "  total money at end: %d (started with 2000)\n\n" total

let () =
  run_version ~buggy:true;
  run_version ~buggy:false
