examples/quickstart.ml: Ast Backend Builder Format List Option Printf Run Velodrome_analysis Velodrome_core Velodrome_oracle Velodrome_sim Warning
