examples/quickstart.mli:
