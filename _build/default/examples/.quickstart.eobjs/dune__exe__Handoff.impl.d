examples/handoff.ml: Ast Backend Builder Format Interp List Option Printf Run Velodrome_analysis Velodrome_atomizer Velodrome_core Velodrome_oracle Velodrome_sim Warning
