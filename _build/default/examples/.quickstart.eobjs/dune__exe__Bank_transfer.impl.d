examples/bank_transfer.ml: Ast Backend Builder Format Interp List Printf Run Velodrome_analysis Velodrome_core Velodrome_sim Velodrome_trace Warning
