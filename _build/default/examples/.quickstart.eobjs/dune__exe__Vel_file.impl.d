examples/vel_file.ml: Array Backend Filename Format List Printf Sys Velodrome_analysis Velodrome_atomizer Velodrome_core Velodrome_lang Velodrome_sim Warning
