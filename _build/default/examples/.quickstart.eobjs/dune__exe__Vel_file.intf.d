examples/vel_file.mli:
