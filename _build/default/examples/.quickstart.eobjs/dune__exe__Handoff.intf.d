examples/handoff.mli:
