(* Section 2's precision example: the volatile baton.

   Two threads take turns incrementing x, handing exclusive access back
   and forth through a volatile variable b. Every trace of this program
   is serializable — but the Atomizer's lockset abstraction cannot see
   the hand-off protocol and reports a (false) warning, while Velodrome,
   reasoning about the exact happens-before order, stays silent. This is
   the paper's motivating case for sound *and complete* checking.

   Run with: dune exec examples/handoff.exe *)

open Velodrome_sim
open Velodrome_analysis
open Builder

let () =
  let b = create () in
  let baton = volatile b ~init:1 "b" in
  let x = var b "x" in
  let rounds = 12 in
  threads b 2 (fun idx ->
      let me = idx + 1 in
      let other = if me = 1 then 2 else 1 in
      let tmp = fresh_reg b in
      let k = fresh_reg b in
      [
        local k (i 0);
        while_ (r k <: i rounds)
          (Builder.spin_until b baton (i me)
          @ [
              atomic (label b (Printf.sprintf "Worker%d.increment" me))
                [ read tmp x; write x (r tmp +: i 1); write baton (i other) ];
              local k (r k +: i 1);
            ]);
      ]);
  let program = program b in
  let names = program.Ast.names in
  let velodrome = Backend.make (Velodrome_core.Engine.backend ()) names in
  let atomizer =
    Backend.make (Velodrome_atomizer.Atomizer.backend ()) names
  in
  let config =
    { Run.default_config with policy = Run.Random 3; record_trace = true }
  in
  let result = Run.run ~config program [ velodrome; atomizer ] in
  Printf.printf "Executed %d operations; final x = %d (expected %d)\n\n"
    result.Run.events
    (Interp.read_var result.Run.final x)
    (2 * rounds);
  let by name =
    List.filter
      (fun w -> w.Warning.analysis = name)
      (Warning.dedup_by_label result.Run.warnings)
  in
  Printf.printf "Velodrome warnings: %d (complete: no false alarms)\n"
    (List.length (by "velodrome"));
  let atomizer_warnings = by "atomizer" in
  Printf.printf "Atomizer warnings:  %d (false alarms from the baton)\n"
    (List.length atomizer_warnings);
  List.iter
    (fun w -> Format.printf "  %a@." (Warning.pp names) w)
    atomizer_warnings;
  let trace = Option.get result.Run.trace in
  Printf.printf "\nOracle: the observed trace is serializable: %b\n"
    (Velodrome_oracle.Oracle.serializable trace)
