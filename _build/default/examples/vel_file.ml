(* Checking a textual .vel program.

   Parses examples/account.vel, runs the static lock-discipline check,
   pretty-prints the desugared core form, and checks the program with
   Velodrome and the Atomizer. Teller.deposit is flagged by both;
   Teller.audit by neither.

   Run with: dune exec examples/vel_file.exe *)

open Velodrome_analysis

let source_path =
  (* Works both from the repo root and from _build. *)
  let candidates =
    [ "examples/account.vel"; Filename.concat (Filename.dirname Sys.argv.(0)) "account.vel" ]
  in
  match List.find_opt Sys.file_exists candidates with
  | Some p -> p
  | None -> "examples/account.vel"

let () =
  let program = Velodrome_lang.Parser.parse_file source_path in
  (match Velodrome_lang.Check.check_program program with
  | Ok () -> print_endline "Static lock-discipline check: OK"
  | Error errs ->
    List.iter
      (fun e -> Format.printf "lock check: %a@." Velodrome_lang.Check.pp_error e)
      errs);
  print_endline "\nDesugared core form:";
  print_endline (Velodrome_lang.Printer.to_string program);
  let names = program.Velodrome_sim.Ast.names in
  let config =
    {
      Velodrome_sim.Run.default_config with
      policy = Velodrome_sim.Run.Random 9;
    }
  in
  let result =
    Velodrome_sim.Run.run ~config program
      [
        Backend.make (Velodrome_core.Engine.backend ()) names;
        Backend.make (Velodrome_atomizer.Atomizer.backend ()) names;
      ]
  in
  Printf.printf "\nRan %d operations.\n" result.Velodrome_sim.Run.events;
  List.iter
    (fun w -> Format.printf "  %a@." (Warning.pp names) w)
    (Warning.dedup_by_label result.Velodrome_sim.Run.warnings)
