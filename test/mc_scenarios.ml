(* The model-checked squeue scenario library.

   [Squeue.Make] is instantiated with the traced shim from
   lib/modelcheck, so every atomic access, slot access, mutex/condition
   operation and spin of the *production* queue source becomes a
   scheduling point of the DPOR explorer. Five scenarios cover the
   guarantees the serve pool leans on, at the small bounds DESIGN
   "Model-checked concurrency" documents; the [Overwrite]/[Lost_wakeup]
   instantiations re-introduce the two seeded bugs behind
   [Squeue.Make_mutant] for the mutation gate — the test that proves the
   explorer actually finds concurrency bugs in this code shape.

   Shared by the alcotest suite (test_modelcheck.ml) and the CI runner
   (mc_run.ml). *)

module Explore = Velodrome_modelcheck.Explore
module Shim = Velodrome_modelcheck.Shim
module Squeue = Velodrome_util.Squeue

(* The traced instantiation of the queue's PRIMS: structurally the same
   API as Stdlib_prims, every operation an explorer scheduling point,
   spin budget 1 so the spin-then-park paths stay at explorable depth. *)
module Model_prims = struct
  module Atomic = Shim.Atomic
  module Plain = Shim.Plain
  module Mutex = Shim.Mutex
  module Condition = Shim.Condition

  let cpu_relax = Shim.cpu_relax
  let spin_budget = Shim.spin_budget
end

let require = Explore.require
let ints xs = String.concat ";" (List.map string_of_int xs)

(* The scenarios, generic in the queue implementation so the same five
   run against the healthy queue and against each seeded mutant. *)
module Scenarios (Q : Squeue.S) = struct
  (* Two producers, one consumer, capacity 1 (rounded to the 2-slot
     minimum): conservation (no element lost or duplicated) and
     per-producer FIFO — P0's 1 must be consumed before P0's 2. *)
  let mpsc_conservation =
    {
      Explore.name = "squeue-2p1c-conservation";
      init =
        (fun () ->
          let q : int Q.t = Q.create ~capacity:1 in
          let popped = ref [] in
          let producer xs () = List.iter (fun x -> Q.push q x) xs in
          let consumer n () =
            for _ = 1 to n do
              match Q.pop q with
              | Some x -> popped := x :: !popped
              | None -> require false "pop returned None on an open queue"
            done
          in
          let check () =
            let got = List.rev !popped in
            require
              (List.sort compare got = [ 1; 2; 101 ])
              (Printf.sprintf "conservation broken: consumed [%s]" (ints got));
            let pos x =
              let rec go i = function
                | [] -> max_int
                | y :: _ when y = x -> i
                | _ :: tl -> go (i + 1) tl
              in
              go 0 got
            in
            require (pos 1 < pos 2)
              (Printf.sprintf "per-producer FIFO broken: consumed [%s]"
                 (ints got))
          in
          ([ producer [ 1; 2 ]; producer [ 101 ]; consumer 3 ], check));
    }

  (* One producer, two consumers, capacity 1: conservation, and within
     each consumer the producer's elements arrive in push order. *)
  let spmc_fifo =
    {
      Explore.name = "squeue-1p2c-fifo";
      init =
        (fun () ->
          let q : int Q.t = Q.create ~capacity:1 in
          let taken = [| []; [] |] in
          let producer () = List.iter (fun x -> Q.push q x) [ 1; 2; 3 ] in
          let consumer slot n () =
            for _ = 1 to n do
              match Q.pop q with
              | Some x -> taken.(slot) <- x :: taken.(slot)
              | None -> require false "pop returned None on an open queue"
            done
          in
          let check () =
            let c0 = List.rev taken.(0) and c1 = List.rev taken.(1) in
            require
              (List.sort compare (c0 @ c1) = [ 1; 2; 3 ])
              (Printf.sprintf "conservation broken: [%s] and [%s]" (ints c0)
                 (ints c1));
            let increasing l =
              let rec go = function
                | a :: (b :: _ as tl) -> a < b && go tl
                | _ -> true
              in
              go l
            in
            require
              (increasing c0 && increasing c1)
              (Printf.sprintf "FIFO broken within a consumer: [%s] / [%s]"
                 (ints c0) (ints c1))
          in
          ([ producer; consumer 0 2; consumer 1 1 ], check));
    }

  (* Close-and-drain: the producer closes after its push; both consumers
     loop until [None] and must between them drain the element exactly
     once — and must terminate (a consumer parked on the empty queue has
     to be woken by close). One element keeps two draining consumers at
     an exhaustively explorable bound; the two-element drain is covered
     (at one consumer) by the stress tests in test_squeue.ml. *)
  let close_drain =
    {
      Explore.name = "squeue-close-drain";
      init =
        (fun () ->
          let q : int Q.t = Q.create ~capacity:2 in
          let taken = [| []; [] |] in
          let producer () =
            Q.push q 1;
            Q.close q
          in
          let consumer slot () =
            let rec loop () =
              match Q.pop q with
              | Some x ->
                taken.(slot) <- x :: taken.(slot);
                loop ()
              | None -> ()
            in
            loop ()
          in
          let check () =
            let all = List.sort compare (taken.(0) @ taken.(1)) in
            require
              (all = [ 1 ])
              (Printf.sprintf "close-and-drain lost or duplicated: [%s]"
                 (ints all))
          in
          ([ producer; consumer 0; consumer 1 ], check));
    }

  (* The spin-then-park protocol, both sides: capacity 1 (2 slots) and
     three pushes force the producer through full-queue parking in some
     schedules; the consumer parks on empty in others. No lost wakeup
     may deadlock either side, and SPSC order must be exact. *)
  let park_wakeup =
    {
      Explore.name = "squeue-park-wakeup";
      init =
        (fun () ->
          let q : int Q.t = Q.create ~capacity:1 in
          let popped = ref [] in
          let producer () = List.iter (fun x -> Q.push q x) [ 1; 2; 3 ] in
          let consumer () =
            for _ = 1 to 3 do
              match Q.pop q with
              | Some x -> popped := x :: !popped
              | None -> require false "pop returned None on an open queue"
            done
          in
          let check () =
            require
              (List.rev !popped = [ 1; 2; 3 ])
              (Printf.sprintf "SPSC order broken: [%s]" (ints (List.rev !popped)))
          in
          ([ producer; consumer ], check));
    }

  (* The non-blocking fast paths racing each other: try_push into a
     full ring and try_pop from an empty one must fail cleanly, and
     whatever was accepted must come out exactly once, in order. *)
  let try_races =
    {
      Explore.name = "squeue-try-races";
      init =
        (fun () ->
          let q : int Q.t = Q.create ~capacity:1 in
          let accepted = ref [] in
          let popped = ref [] in
          let producer () =
            List.iter
              (fun x -> if Q.try_push q x then accepted := x :: !accepted)
              [ 1; 2; 3 ]
          in
          let consumer () =
            for _ = 1 to 3 do
              match Q.try_pop q with
              | Some x -> popped := x :: !popped
              | None -> ()
            done
          in
          let check () =
            let rec drain acc =
              match Q.try_pop q with
              | Some x -> drain (x :: acc)
              | None -> List.rev acc
            in
            let rest = drain [] in
            let acc = List.rev !accepted and out = List.rev !popped in
            require
              (List.sort compare acc = List.sort compare (out @ rest))
              (Printf.sprintf
                 "try conservation broken: accepted [%s], popped [%s], left \
                  [%s]"
                 (ints acc) (ints out) (ints rest));
            let rec increasing = function
              | a :: (b :: _ as tl) -> a < b && increasing tl
              | _ -> true
            in
            require
              (increasing (out @ rest))
              (Printf.sprintf "try FIFO broken: popped [%s], left [%s]"
                 (ints out) (ints rest))
          in
          ([ producer; consumer ], check));
    }

  let all =
    [ mpsc_conservation; spmc_fifo; close_drain; park_wakeup; try_races ]
end

module Healthy_queue = Squeue.Make (Model_prims)
module Healthy = Scenarios (Healthy_queue)

(* Seeded bug 1: payload published before the ticket CAS establishes
   slot ownership — racing producers overwrite each other. The 2p1c
   conservation scenario must flag it. *)
module Overwrite_queue =
  Squeue.Make_mutant
    (struct
      let publish_before_ticket_cas = true
      let skip_park_recheck = false
    end)
    (Model_prims)

module Overwrite = Scenarios (Overwrite_queue)

(* Seeded bug 2: the waiter-count recheck between registering and
   sleeping is skipped — the classic lost wakeup. The park scenario must
   deadlock under some schedule. *)
module Lost_wakeup_queue =
  Squeue.Make_mutant
    (struct
      let publish_before_ticket_cas = false
      let skip_park_recheck = true
    end)
    (Model_prims)

module Lost_wakeup = Scenarios (Lost_wakeup_queue)

let healthy = List.map (fun s -> s.Explore.name, s) Healthy.all

let mutants =
  [
    ("mutant-publish-before-ticket-cas", Overwrite.mpsc_conservation);
    ("mutant-skip-park-recheck", Lost_wakeup.park_wakeup);
  ]
