(* The model checker checking itself — and the queue.

   Fast subset of the model-checking gate, suitable for every `dune
   runtest`: explorer sanity on micro-scenarios (a seeded data race must
   be flagged, its fixed variants verified, DPOR must agree with the
   unreduced full search), the cheaper squeue scenarios pinned to their
   exact deterministic interleaving counts, and the two seeded queue
   mutants each producing a replayable counterexample. The two larger
   scenarios (2p1c, 1p2c: ~90k/135k interleavings) run in CI via
   test/mc_run.exe rather than here. *)

module Explore = Velodrome_modelcheck.Explore
module Shim = Velodrome_modelcheck.Shim

(* --- micro-scenarios: the explorer itself ------------------------------- *)

(* Two unsynchronized read-modify-write increments: the lost update must
   be found. *)
let racy_counter =
  {
    Explore.name = "racy-counter";
    init =
      (fun () ->
        let c = Shim.Atomic.make 0 in
        let bump () = Shim.Atomic.set c (Shim.Atomic.get c + 1) in
        let check () =
          Explore.require (Shim.Atomic.get c = 2) "lost update"
        in
        ([ bump; bump ], check));
    }

(* The same counter protected by a mutex: every interleaving passes. *)
let mutex_counter =
  {
    Explore.name = "mutex-counter";
    init =
      (fun () ->
        let c = Shim.Atomic.make 0 in
        let m = Shim.Mutex.create () in
        let bump () =
          Shim.Mutex.lock m;
          Shim.Atomic.set c (Shim.Atomic.get c + 1);
          Shim.Mutex.unlock m
        in
        let check () =
          Explore.require (Shim.Atomic.get c = 2) "lost update"
        in
        ([ bump; bump ], check));
  }

let schedules = function
  | Explore.Verified { schedules; _ } -> schedules
  | _ -> -1

let check_verified name outcome =
  match outcome with
  | Explore.Verified _ -> ()
  | o ->
    Alcotest.failf "%s: expected Verified, got %a" name Explore.pp_outcome o

let test_racy_counter_flagged () =
  match Explore.explore_minimized racy_counter with
  | Explore.Violation { kind = Explore.Check_failed _; trace; _ } ->
    (* The minimized counterexample is one preemption: P1's write lands
       between P0's read and write (or symmetrically). *)
    let plan = List.map (fun (s : Explore.step) -> s.pid) trace in
    Alcotest.(check bool)
      "minimized to a single preemption" true
      (Explore.switches plan <= 2);
    (* The printed schedule is a proof: it must replay to the same
       violation. *)
    (match Explore.replay racy_counter plan with
    | Explore.Violation { kind = Explore.Check_failed _; _ } -> ()
    | o ->
      Alcotest.failf "counterexample did not replay: %a" Explore.pp_outcome o)
  | o -> Alcotest.failf "race not flagged: %a" Explore.pp_outcome o

let test_mutex_counter_verified () =
  check_verified "mutex-counter" (Explore.explore mutex_counter)

let test_deadlock_found () =
  (* Classic lock-order inversion: P0 takes a then b, P1 takes b then
     a. *)
  let scenario =
    {
      Explore.name = "lock-order-inversion";
      init =
        (fun () ->
          let a = Shim.Mutex.create () and b = Shim.Mutex.create () in
          let locker x y () =
            Shim.Mutex.lock x;
            Shim.Mutex.lock y;
            Shim.Mutex.unlock y;
            Shim.Mutex.unlock x
          in
          ([ locker a b; locker b a ], fun () -> ()));
    }
  in
  match Explore.explore_minimized scenario with
  | Explore.Violation { kind = Explore.Deadlock _; _ } -> ()
  | o -> Alcotest.failf "deadlock not found: %a" Explore.pp_outcome o

let test_dpor_agrees_with_full () =
  (* The reduction must not change the verdict, only the work: compare
     against the unreduced search on scenarios small enough to afford
     it. *)
  List.iter
    (fun (name, sc) ->
      let dpor = Explore.explore ~mode:`Dpor sc in
      let full = Explore.explore ~mode:`Full sc in
      check_verified (name ^ " (dpor)") dpor;
      check_verified (name ^ " (full)") full;
      Alcotest.(check bool)
        (name ^ ": dpor explores no more than full")
        true
        (schedules dpor <= schedules full))
    [
      ("mutex-counter", mutex_counter);
      ("squeue-try-races", Mc_scenarios.Healthy.try_races);
    ]

(* --- the queue scenarios ------------------------------------------------ *)

(* Interleaving counts are fully deterministic (ids, search order and
   reduction are all replayable), so pin them: an unexplained change
   means the explored space changed. *)
let test_squeue_scenarios_verified () =
  List.iter
    (fun (name, sc, expect) ->
      match Explore.explore sc with
      | Explore.Verified { schedules; _ } ->
        Alcotest.(check int) (name ^ " interleavings") expect schedules
      | o -> Alcotest.failf "%s: %a" name Explore.pp_outcome o)
    [
      ("squeue-close-drain", Mc_scenarios.Healthy.close_drain, 50_552);
      ("squeue-park-wakeup", Mc_scenarios.Healthy.park_wakeup, 1_500);
      ("squeue-try-races", Mc_scenarios.Healthy.try_races, 17);
    ]

(* --- the mutation gate -------------------------------------------------- *)

let test_mutant_flagged (sc : Explore.scenario) expect_kind () =
  match Explore.explore_minimized ~max_steps:500 sc with
  | Explore.Violation { kind; trace; _ } ->
    Alcotest.(check bool)
      (sc.Explore.name ^ ": violation kind")
      true (expect_kind kind);
    let plan = List.map (fun (s : Explore.step) -> s.pid) trace in
    (match Explore.replay ~max_steps:500 sc plan with
    | Explore.Violation { kind = kind'; _ } ->
      Alcotest.(check bool) "replay reproduces the same kind" true
        (match (kind, kind') with
        | Explore.Deadlock _, Explore.Deadlock _
        | Explore.Check_failed _, Explore.Check_failed _
        | Explore.Uncaught _, Explore.Uncaught _
        | Explore.Livelock _, Explore.Livelock _ ->
          true
        | _ -> false)
    | o ->
      Alcotest.failf "counterexample did not replay: %a" Explore.pp_outcome o)
  | o -> Alcotest.failf "seeded bug not flagged: %a" Explore.pp_outcome o

let test_overwrite_mutant =
  (* Publishing the payload before the ticket CAS turns the bounded
     retry into an unbounded spin under contention; the depth budget
     flags it. *)
  test_mutant_flagged Mc_scenarios.Overwrite.mpsc_conservation (function
    | Explore.Livelock _ | Explore.Check_failed _ -> true
    | _ -> false)

let test_lost_wakeup_mutant =
  (* Skipping the recheck between registering as a waiter and parking
     loses the wakeup: both sides end up parked — found as a deadlock. *)
  test_mutant_flagged Mc_scenarios.Lost_wakeup.park_wakeup (function
    | Explore.Deadlock _ -> true
    | _ -> false)

let suite =
  ( "modelcheck",
    [
      Alcotest.test_case "racy counter flagged, minimized, replays" `Quick
        test_racy_counter_flagged;
      Alcotest.test_case "mutex counter verified" `Quick
        test_mutex_counter_verified;
      Alcotest.test_case "lock-order inversion deadlocks" `Quick
        test_deadlock_found;
      Alcotest.test_case "dpor agrees with full search" `Quick
        test_dpor_agrees_with_full;
      Alcotest.test_case "squeue scenarios verified (pinned counts)" `Quick
        test_squeue_scenarios_verified;
      Alcotest.test_case "mutant: publish before ticket cas" `Quick
        test_overwrite_mutant;
      Alcotest.test_case "mutant: skip park recheck" `Quick
        test_lost_wakeup_mutant;
    ] )
