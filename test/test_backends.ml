(* Tests for the baseline analyses: Eraser, the happens-before detector
   (with its vector clocks), the Atomizer and the two-phase-locking
   checker — plus the AeroDrome vector-clock engine and the three-way
   differential harness holding it to Engine and Basic on every
   workload and on generated programs under every schedule family. *)

open Velodrome_trace
open Velodrome_analysis
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Eraser ----------------------------------------------------------------- *)

let eraser = Velodrome_eraser.Eraser.backend ()

let test_eraser_detects_race () =
  let ws = feed eraser [ wr t0 x; wr t1 x ] in
  check int "one race" 1 (List.length ws);
  match ws with
  | [ w ] ->
    check bool "race kind" true (w.Warning.kind = Warning.Race);
    check bool "names x" true (w.Warning.var = Some x)
  | _ -> assert false

let test_eraser_locked_clean () =
  let ws =
    feed eraser
      [
        acq t0 m; wr t0 x; rel t0 m;
        acq t1 m; rd t1 x; wr t1 x; rel t1 m;
      ]
  in
  check int "no warnings" 0 (List.length ws)

let test_eraser_read_shared_clean () =
  (* Write by one thread then reads everywhere: Shared but never
     Shared-Modified, so no warning. *)
  let ws = feed eraser [ wr t0 x; rd t1 x; rd t2 x; rd t1 x ] in
  check int "read-only sharing ok" 0 (List.length ws)

let test_eraser_exclusive_then_shared_modified () =
  (* The classic initialization pattern Eraser tolerates: one thread
     initializes without locks, then all threads use a lock. *)
  let ws =
    feed eraser
      [ wr t0 x; wr t0 x; acq t1 m; wr t1 x; rel t1 m; acq t0 m; wr t0 x; rel t0 m ]
  in
  check int "lockset survives" 0 (List.length ws)

let test_eraser_lockset_intersection () =
  (* Accesses under different locks: the candidate lockset intersects to
     empty on the third access. *)
  let ws =
    feed eraser
      [
        acq t0 m; wr t0 x; rel t0 m;
        acq t1 n; wr t1 x; rel t1 n;
        acq t0 m; wr t0 x; rel t0 m;
      ]
  in
  check int "different locks race" 1 (List.length ws)

let test_eraser_volatile_exempt () =
  let names = Names.create () in
  let v = Names.var names "flag" in
  Names.set_volatile names v;
  let ws = feed eraser ~names [ Op.Write (t0, v); Op.Write (t1, v) ] in
  check int "volatiles exempt" 0 (List.length ws)

let test_eraser_dedup_per_var () =
  let ws = feed eraser [ wr t0 x; wr t1 x; wr t0 x; wr t1 x ] in
  check int "one warning per variable" 1 (List.length ws)

(* --- Vector clocks ------------------------------------------------------------ *)

let test_vclock_basics () =
  let open Velodrome_hbrace.Vclock in
  let a = create () and b = create () in
  set a 0 3;
  set b 1 2;
  check bool "incomparable" false (leq a b || leq b a);
  join a b;
  check bool "join dominates" true (leq b a);
  check int "kept own" 3 (get a 0);
  check int "absent reads zero" 0 (get a 7);
  incr a 7;
  check int "incr" 1 (get a 7);
  let c = copy a in
  incr a 7;
  check int "copy is independent" 1 (get c 7);
  check (Alcotest.option int) "first_exceeding" (Some 7) (first_exceeding a c);
  check (Alcotest.option int) "none when leq" None (first_exceeding c a)

(* --- Happens-before race detector ----------------------------------------------- *)

let hb = Velodrome_hbrace.Hbrace.backend ()

let test_hb_detects_unordered () =
  let ws = feed hb [ wr t0 x; wr t1 x ] in
  check int "race" 1 (List.length ws)

let test_hb_lock_orders () =
  let ws =
    feed hb
      [ acq t0 m; wr t0 x; rel t0 m; acq t1 m; wr t1 x; rel t1 m ]
  in
  check int "release/acquire edge orders accesses" 0 (List.length ws)

let test_hb_transitive () =
  (* t0 -> t1 through m, t1 -> t2 through n: t2's access is ordered
     after t0's even though they share no lock. *)
  let ws =
    feed hb
      [
        wr t0 x; acq t0 m; rel t0 m;
        acq t1 m; rel t1 m; acq t1 n; rel t1 n;
        acq t2 n; rel t2 n; wr t2 x;
      ]
  in
  check int "transitive ordering" 0 (List.length ws)

let test_hb_read_write_race () =
  let ws = feed hb [ rd t0 x; wr t1 x ] in
  check int "read-write race" 1 (List.length ws)

let test_hb_not_fooled_by_unrelated_lock () =
  let ws =
    feed hb [ acq t0 m; wr t0 x; rel t0 m; acq t1 n; wr t1 x; rel t1 n ]
  in
  check int "different locks do not order" 1 (List.length ws)

let test_hb_program_order_clean () =
  let ws = feed hb [ wr t0 x; rd t0 x; wr t0 x ] in
  check int "single thread clean" 0 (List.length ws)

(* --- Epochs and FastTrack -------------------------------------------------------- *)

let test_epoch_pack () =
  let open Velodrome_hbrace.Epoch in
  let e = make ~tid:5 ~clock:1234 in
  check int "tid" 5 (tid e);
  check int "clock" 1234 (clock e);
  check bool "none is none" true (is_none none);
  check bool "made is not none" false (is_none e);
  let c = Velodrome_hbrace.Vclock.create () in
  check bool "none leq everything" true (leq_vc none c);
  check bool "not leq empty clock" false (leq_vc e c);
  Velodrome_hbrace.Vclock.set c 5 1234;
  check bool "leq at exactly its clock" true (leq_vc e c)

let fasttrack = Velodrome_hbrace.Fasttrack.backend ()

let test_fasttrack_detects_race () =
  let ws = feed fasttrack [ wr t0 x; wr t1 x ] in
  check int "race" 1 (List.length ws)

let test_fasttrack_lock_clean () =
  let ws =
    feed fasttrack
      [ acq t0 m; wr t0 x; rel t0 m; acq t1 m; rd t1 x; wr t1 x; rel t1 m ]
  in
  check int "clean" 0 (List.length ws)

let test_fasttrack_read_share_then_write () =
  (* Concurrent reads force the read-vector inflation; a later write must
     still see both. *)
  let ws =
    feed fasttrack
      [ acq t0 m; wr t0 x; rel t0 m; acq t1 m; rel t1 m;
        rd t0 x; rd t1 x;  (* concurrent reads: inflate *)
        wr t2 x  (* races with both *) ]
  in
  check int "read-write race caught after inflation" 1 (List.length ws)

(* The headline differential property: FastTrack and the full-vector
   detector flag exactly the same set of racy variables on every trace. *)
let racy_vars b tr =
  List.sort_uniq compare
    (List.filter_map
       (fun w -> Option.map Ids.Var.to_int w.Warning.var)
       (feed b (Velodrome_trace.Trace.to_list tr)))

let prop_fasttrack_equals_full_vc =
  QCheck.Test.make ~count:400
    ~name:"fasttrack = full vector clocks (racy variable sets)"
    (trace_arbitrary
       {
         Velodrome_trace.Gen.default with
         threads = 4;
         vars = 3;
         locks = 2;
         steps = 50;
       })
    (fun tr -> racy_vars hb tr = racy_vars fasttrack tr)

(* --- Atomizer ----------------------------------------------------------------- *)

let atomizer = Velodrome_atomizer.Atomizer.backend ()

let test_atomizer_reducible_clean () =
  (* acquire; accesses; release = right-mover, both-movers, left-mover. *)
  let ws =
    feed atomizer
      [
        bg t0 l0; acq t0 m; rd t0 x; wr t0 x; rel t0 m; en t0;
        bg t1 l0; acq t1 m; rd t1 x; wr t1 x; rel t1 m; en t1;
      ]
  in
  check int "reducible" 0 (List.length ws)

let test_atomizer_two_locks_nested_clean () =
  let ws =
    feed atomizer
      [ bg t0 l0; acq t0 m; acq t0 n; wr t0 x; rel t0 n; rel t0 m; en t0 ]
  in
  check int "nested locks reducible" 0 (List.length ws)

let test_atomizer_acquire_after_release () =
  (* Two back-to-back synchronized blocks in one atomic method: the
     acquire after the first release breaks the pattern. *)
  let ops =
    [
      (* Make x and y shared first so the lockset machinery is active. *)
      acq t1 m; rd t1 x; rd t1 y; rel t1 m;
      bg t0 l0; acq t0 m; rd t0 x; rel t0 m; acq t0 m; wr t0 y; rel t0 m;
      en t0;
    ]
  in
  let ws = feed atomizer ops in
  check int "flagged" 1 (List.length ws)

let test_atomizer_racy_rmw_flagged () =
  let ops =
    [
      wr t1 x;  (* x becomes shared with an empty lockset *)
      rd t0 x;
      bg t0 l0; rd t0 x; wr t0 x; en t0;
    ]
  in
  let ws = feed atomizer ops in
  check int "two non-movers flagged" 1 (List.length ws);
  match ws with
  | [ w ] -> check bool "attributed to block" true (w.Warning.label = Some l0)
  | _ -> assert false

let test_atomizer_single_racy_access_ok () =
  let ops = [ wr t1 x; rd t0 x; bg t0 l0; wr t0 x; en t0 ] in
  let ws = feed atomizer ops in
  check int "one commit point is fine" 0 (List.length ws)

let test_atomizer_volatile_false_alarm () =
  (* The Section 2 pattern: two volatile reads inside an atomic block are
     non-movers even though the trace is serializable. *)
  let names = Names.create () in
  let v = Names.var names "baton" in
  let ops = [ bg t0 l0; Op.Read (t0, v); Op.Read (t0, v); en t0 ] in
  Names.set_volatile names v;
  let ws = feed atomizer ~names ops in
  check int "false alarm produced" 1 (List.length ws)

let test_atomizer_outside_blocks_ignored () =
  let ws = feed atomizer [ wr t0 x; wr t1 x; rd t0 x; wr t0 x ] in
  check int "no atomic block, no warning" 0 (List.length ws)

let test_atomizer_pause_hint () =
  let names = Names.create () in
  let state = Velodrome_atomizer.Atomizer.create names in
  let idx = ref 0 in
  let step op =
    Velodrome_atomizer.Atomizer.on_event state
      (Event.make ~index:!idx op);
    incr idx
  in
  (* Make x racy, then enter a block and commit via a racy read. *)
  List.iter step [ wr t1 x; rd t0 x; bg t0 l0 ];
  let hint op =
    Velodrome_atomizer.Atomizer.pause_hint state (Event.make ~index:!idx op)
  in
  check bool "no hint before commit point" false (hint (wr t0 x));
  step (rd t0 x);
  check bool "hint at second non-mover" true (hint (wr t0 x));
  check bool "no hint for other thread" false (hint (wr t1 x));
  step (en t0);
  check bool "no hint outside block" false (hint (wr t0 x))

(* --- Two-phase locking ----------------------------------------------------------- *)

let twopl = Velodrome_twopl.Twopl.backend ()

let twopl_strict =
  Velodrome_twopl.Twopl.backend
    ~config:{ Velodrome_twopl.Twopl.strict = true } ()

let test_twopl_clean () =
  let ws =
    feed twopl
      [ bg t0 l0; acq t0 m; acq t0 n; rd t0 x; rel t0 n; rel t0 m; en t0 ]
  in
  check int "two-phase pattern ok" 0 (List.length ws)

let test_twopl_violation () =
  let ws =
    feed twopl
      [ bg t0 l0; acq t0 m; rel t0 m; acq t0 n; rel t0 n; en t0 ]
  in
  check int "acquire in shrinking phase" 1 (List.length ws);
  match ws with
  | [ w ] -> check bool "labelled" true (w.Warning.label = Some l0)
  | _ -> assert false

let test_twopl_resets_between_blocks () =
  (* The shrinking phase ends with the block: two separate well-formed
     blocks are each fine. *)
  let ws =
    feed twopl
      [
        bg t0 l0; acq t0 m; rel t0 m; en t0;
        bg t0 l1; acq t0 n; rel t0 n; en t0;
      ]
  in
  check int "per-block phases" 0 (List.length ws)

let test_twopl_outside_blocks_free () =
  let ws = feed twopl [ acq t0 m; rel t0 m; acq t0 n; rel t0 n ] in
  check int "no blocks, no discipline" 0 (List.length ws)

let test_twopl_strict_unprotected_access () =
  let ws = feed twopl_strict [ bg t0 l0; rd t0 x; en t0 ] in
  check int "unprotected access flagged" 1 (List.length ws)

let test_twopl_strict_volatile_exempt () =
  let names = Names.create () in
  let v = Names.var names "flag" in
  Names.set_volatile names v;
  let ws = feed twopl_strict ~names [ bg t0 l0; Op.Read (t0, v); en t0 ] in
  check int "volatile exempt" 0 (List.length ws)

let test_twopl_false_alarm_on_serializable () =
  (* 2PL is sufficient, not necessary: two back-to-back locked reads are
     serializable here (no interleaved writer) yet flagged. *)
  let tr =
    [ bg t0 l0; acq t0 m; rd t0 x; rel t0 m; acq t0 m; rd t0 x; rel t0 m; en t0 ]
  in
  check bool "trace is serializable" true
    (Velodrome_oracle.Oracle.serializable (Velodrome_trace.Trace.of_ops tr));
  let ws = feed twopl tr in
  check int "2pl still warns (false alarm)" 1 (List.length ws)

(* --- AeroDrome vector clocks ------------------------------------------------- *)

module Vc = Velodrome_core.Vclock

(* Random clocks with entries well past the default capacity, so growth
   is exercised by every law. *)
let vclock_arbitrary =
  let build entries =
    let c = Vc.create () in
    List.iter (fun (i, v) -> Vc.set c i v) entries;
    c
  in
  QCheck.make
    ~print:(fun c -> Format.asprintf "%a" Vc.pp c)
    QCheck.Gen.(
      map build (small_list (pair (int_bound 40) (int_bound 8))))

let joined a b =
  let c = Vc.copy a in
  Vc.join c b;
  c

let prop_vclock_join_commutes =
  QCheck.Test.make ~count:500 ~name:"vclock: join commutes"
    QCheck.(pair vclock_arbitrary vclock_arbitrary)
    (fun (a, b) -> Vc.equal (joined a b) (joined b a))

let prop_vclock_join_assoc =
  QCheck.Test.make ~count:500 ~name:"vclock: join associates"
    QCheck.(triple vclock_arbitrary vclock_arbitrary vclock_arbitrary)
    (fun (a, b, c) ->
      Vc.equal (joined (joined a b) c) (joined a (joined b c)))

let prop_vclock_join_idempotent =
  QCheck.Test.make ~count:500 ~name:"vclock: join idempotent, upper bound"
    QCheck.(pair vclock_arbitrary vclock_arbitrary)
    (fun (a, b) ->
      let j = joined a b in
      Vc.equal j (joined j a) && Vc.leq a j && Vc.leq b j)

let prop_vclock_incr_monotone =
  QCheck.Test.make ~count:500 ~name:"vclock: incr strictly monotone"
    QCheck.(pair vclock_arbitrary (int_bound 50))
    (fun (a, i) ->
      let b = Vc.copy a in
      Vc.incr b i;
      Vc.leq a b && (not (Vc.leq b a)) && Vc.get b i = Vc.get a i + 1)

let prop_vclock_compare_agrees_with_order =
  QCheck.Test.make ~count:500 ~name:"vclock: compare = pointwise order"
    QCheck.(pair vclock_arbitrary vclock_arbitrary)
    (fun (a, b) ->
      let expected =
        match (Vc.leq a b, Vc.leq b a) with
        | true, true -> Vc.Equal
        | true, false -> Vc.Less
        | false, true -> Vc.Greater
        | false, false -> Vc.Incomparable
      in
      Vc.compare a b = expected && Vc.equal a b = (expected = Vc.Equal))

(* --- AeroDrome engine ---------------------------------------------------------- *)

module Aero = Velodrome_core.Aero

let aero = Aero.backend ()

let test_aero_detects_cycle () =
  (* The canonical violation: t1's write interposes between t0's write
     and read of x inside one atomic block — edges t0 -> t1 -> t0. *)
  let ws = feed aero [ bg t0 l0; wr t0 x; wr t1 x; rd t0 x; en t0 ] in
  check int "one violation" 1 (List.length ws);
  match ws with
  | [ w ] ->
    check bool "atomicity kind" true (w.Warning.kind = Warning.Atomicity_violation);
    check bool "blames the block" true (w.Warning.label = Some l0);
    check int "at the closing read" 3 w.Warning.index
  | _ -> assert false

let test_aero_serializable_clean () =
  let ws =
    feed aero
      [
        bg t0 l0; acq t0 m; wr t0 x; rd t0 x; rel t0 m; en t0;
        bg t1 l1; acq t1 m; wr t1 x; rd t1 x; rel t1 m; en t1;
      ]
  in
  check int "serializable" 0 (List.length ws)

let test_aero_lock_cycle () =
  (* Lock release/acquire edges alone can close the cycle. *)
  let ws =
    feed aero
      [
        bg t0 l0; acq t0 m; rel t0 m;
        acq t1 m; wr t1 x; rel t1 m;
        rd t0 x; en t0;
      ]
  in
  check int "lock edge cycle" 1 (List.length ws)

let test_aero_late_predecessor () =
  (* The subtlety the forward-propagation exists for: u's transaction
     gains a predecessor (w) *after* t has already joined u's clock, and
     the cycle then closes at w. Snapshot clocks would miss it. *)
  (* t1 reads x from t0's open txn; t0's txn then reads y written by t2;
     finally t2 reads z written by t1: cycle t0 -> t1 -> t2 -> t0 must
     surface at the last read. *)
  let ws =
    feed aero
      [
        bg t0 l0; bg t1 l1; bg t2 l2;
        wr t0 x; rd t1 x;  (* t0 -> t1 *)
        wr t2 y;  (* then t0 gains predecessor t2 *)
        wr t1 z;
        rd t0 y;  (* t2 -> t0 *)
        rd t2 z;  (* t1 -> t2 closes the cycle here *)
        en t0; en t1; en t2;
      ]
  in
  check int "transitive cycle found" 1 (List.length ws);
  match ws with
  | [ w ] -> check int "at the closing read" 8 w.Warning.index
  | _ -> assert false

let test_aero_unary_transactions () =
  (* Operations outside atomic blocks are unary transactions: they feed
     the happens-before state but never blame a label. *)
  let ws = feed aero [ wr t0 x; wr t1 x; rd t0 x; wr t1 x ] in
  List.iter
    (fun (w : Warning.t) -> check bool "no label" true (w.Warning.label = None))
    ws

let test_aero_matches_basic_counts () =
  let tr =
    Trace.of_ops
      [ bg t0 l0; wr t0 x; wr t1 x; rd t0 x; wr t1 x; rd t0 x; en t0 ]
  in
  let a = run_aero tr and b = run_basic tr in
  check int "cycles agree" (Velodrome_core.Basic.cycles_found b)
    (Aero.cycles_found a);
  check (Alcotest.option int) "first index agrees"
    (Velodrome_core.Basic.first_error_index b)
    (Aero.first_error_index a)

(* --- the three-way differential harness ---------------------------------------

   Two independent sound-and-complete algorithms (vector clocks vs an
   explicit happens-before graph) must agree on every trace: same
   verdict, same first violating event, and warning-for-warning
   agreement between Aero and Basic. Replayed over every workload and
   over generated programs under the three schedule families of the PR 5
   gate, with a one-command replay printed on mismatch. *)

open Velodrome_sim

let gate_seed = 7

let gate_configs seed =
  [
    ("round-robin", { Run.default_config with policy = Run.Round_robin });
    ( Printf.sprintf "random(seed %d)" seed,
      { Run.default_config with policy = Run.Random seed } );
    ( Printf.sprintf "adversarial(seed %d)" seed,
      { Run.default_config with policy = Run.Random seed; adversarial = true }
    );
  ]

let recorded_trace ~config program =
  let config = { config with Run.record_trace = true } in
  let res = Run.run ~config program [] in
  Option.get res.Run.trace

let assert_trio what program =
  List.iter
    (fun (sched, config) ->
      let tr = recorded_trace ~config program in
      match engine_trio tr with
      | Ok _ -> ()
      | Error msg -> Alcotest.failf "%s (schedule %s): %s" what sched msg)
    (gate_configs gate_seed)

let test_trio_workloads () =
  List.iter
    (fun w ->
      assert_trio
        (Printf.sprintf "three-way: workload %s" w.Velodrome_workloads.Workload.name)
        (w.Velodrome_workloads.Workload.build Velodrome_workloads.Workload.Small))
    Velodrome_workloads.Workload.all

(* On a generated-program mismatch, identify the program exactly and
   print the single command that replays it — the PR 5 gate idiom
   (`analyze --gate` runs this same trio on its recorded traces). *)
let prop_trio_generated =
  QCheck.Test.make ~count:300
    ~name:"three-way: aero = engine = basic on generated programs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let program, info =
        Progen.generate_info (Velodrome_util.Rng.create seed)
      in
      List.iter
        (fun (sched, config) ->
          let tr = recorded_trace ~config program in
          match engine_trio tr with
          | Ok _ -> ()
          | Error msg ->
            Alcotest.failf
              "three-way: generated program FAILED: progen seed %d, family \
               %s, schedule %s: %s@.replay: velodrome analyze --generated 1 \
               --gen-seed %d --seeds %d --gate"
              seed
              (String.concat "+" info.Progen.families)
              sched msg seed gate_seed)
        (gate_configs gate_seed);
      true)

let suite =
  ( "backends",
    [
      Alcotest.test_case "eraser race" `Quick test_eraser_detects_race;
      Alcotest.test_case "eraser locked" `Quick test_eraser_locked_clean;
      Alcotest.test_case "eraser read-shared" `Quick test_eraser_read_shared_clean;
      Alcotest.test_case "eraser init pattern" `Quick
        test_eraser_exclusive_then_shared_modified;
      Alcotest.test_case "eraser intersection" `Quick
        test_eraser_lockset_intersection;
      Alcotest.test_case "eraser volatile" `Quick test_eraser_volatile_exempt;
      Alcotest.test_case "eraser dedup" `Quick test_eraser_dedup_per_var;
      Alcotest.test_case "vclock basics" `Quick test_vclock_basics;
      Alcotest.test_case "hb unordered" `Quick test_hb_detects_unordered;
      Alcotest.test_case "hb lock orders" `Quick test_hb_lock_orders;
      Alcotest.test_case "hb transitive" `Quick test_hb_transitive;
      Alcotest.test_case "hb read-write" `Quick test_hb_read_write_race;
      Alcotest.test_case "hb unrelated lock" `Quick
        test_hb_not_fooled_by_unrelated_lock;
      Alcotest.test_case "hb program order" `Quick test_hb_program_order_clean;
      Alcotest.test_case "epoch pack" `Quick test_epoch_pack;
      Alcotest.test_case "fasttrack race" `Quick test_fasttrack_detects_race;
      Alcotest.test_case "fasttrack locked" `Quick test_fasttrack_lock_clean;
      Alcotest.test_case "fasttrack inflation" `Quick
        test_fasttrack_read_share_then_write;
      QCheck_alcotest.to_alcotest prop_fasttrack_equals_full_vc;
      Alcotest.test_case "atomizer reducible" `Quick test_atomizer_reducible_clean;
      Alcotest.test_case "atomizer nested locks" `Quick
        test_atomizer_two_locks_nested_clean;
      Alcotest.test_case "atomizer acq after rel" `Quick
        test_atomizer_acquire_after_release;
      Alcotest.test_case "atomizer racy rmw" `Quick test_atomizer_racy_rmw_flagged;
      Alcotest.test_case "atomizer single racy ok" `Quick
        test_atomizer_single_racy_access_ok;
      Alcotest.test_case "atomizer volatile FA" `Quick
        test_atomizer_volatile_false_alarm;
      Alcotest.test_case "atomizer outside" `Quick
        test_atomizer_outside_blocks_ignored;
      Alcotest.test_case "atomizer pause hint" `Quick test_atomizer_pause_hint;
      Alcotest.test_case "2pl clean" `Quick test_twopl_clean;
      Alcotest.test_case "2pl violation" `Quick test_twopl_violation;
      Alcotest.test_case "2pl per-block reset" `Quick
        test_twopl_resets_between_blocks;
      Alcotest.test_case "2pl outside blocks" `Quick
        test_twopl_outside_blocks_free;
      Alcotest.test_case "2pl strict unprotected" `Quick
        test_twopl_strict_unprotected_access;
      Alcotest.test_case "2pl strict volatile" `Quick
        test_twopl_strict_volatile_exempt;
      Alcotest.test_case "2pl false alarm" `Quick
        test_twopl_false_alarm_on_serializable;
      QCheck_alcotest.to_alcotest prop_vclock_join_commutes;
      QCheck_alcotest.to_alcotest prop_vclock_join_assoc;
      QCheck_alcotest.to_alcotest prop_vclock_join_idempotent;
      QCheck_alcotest.to_alcotest prop_vclock_incr_monotone;
      QCheck_alcotest.to_alcotest prop_vclock_compare_agrees_with_order;
      Alcotest.test_case "aero cycle" `Quick test_aero_detects_cycle;
      Alcotest.test_case "aero serializable" `Quick test_aero_serializable_clean;
      Alcotest.test_case "aero lock cycle" `Quick test_aero_lock_cycle;
      Alcotest.test_case "aero late predecessor" `Quick
        test_aero_late_predecessor;
      Alcotest.test_case "aero unary" `Quick test_aero_unary_transactions;
      Alcotest.test_case "aero = basic counts" `Quick
        test_aero_matches_basic_counts;
      Alcotest.test_case "three-way workloads" `Quick test_trio_workloads;
      QCheck_alcotest.to_alcotest ~long:false prop_trio_generated;
    ] )
