The workload registry:

  $ velodrome list | head -4
  elevator    discrete-event elevator simulator (lift worker pool)
              methods: 10 (5 with real violations)
  hedc        web metadata fetcher with a synchronized task queue
              methods: 10 (6 with real violations)

A deterministic workload run (seeded random scheduler):

  $ velodrome run multiset --seed 3 2>&1 | head -3
  multiset: 6720 events, 0 pauses
  10 warning(s):
    velodrome: atomicity-violation [Set.add] at #13: not self-serializable (refuted blocks: Set.add); cycle: Set.add(t2) -> Set.add(t1) -> Set.add(t2)

Checking a textual program:

  $ velodrome check ../examples/account.vel --seed 9 2>&1 | tail -3
  2 warning(s):
    velodrome: atomicity-violation [Teller.deposit] at #6: not self-serializable (refuted blocks: Teller.deposit); cycle: Teller.deposit(t0) -> Teller.deposit(t1) -> Teller.deposit(t0)
    atomizer: reduction-failure [Teller.deposit] at #24: block is not reducible: second non-mover access after commit point

The static pre-pass: mover classification and Lipton reduction, with the
dynamic soundness gate. A fully guarded program proves every block (exit
0); account.vel leaves the racy deposit unproved, so analyze exits 1:

  $ velodrome analyze ../examples/guarded.vel --gate
  Counter.incr             (13:12) proved atomic by lipton (2 occurrences)
  Counter.flush            (21:10) proved atomic by lipton (2 occurrences)
  2/2 blocks proved atomic (2 lipton, 0 cycle-free), 0 may-violate
  soundness gate: OK (7 schedules, 0 dynamic warnings, no proved block blamed, every blamed block may-violate, every dynamic race statically covered, aero = velodrome = basic on every recorded trace, no dead site executed, every observed value in its static interval)

The static transactional conflict graph behind the cycle-free verdicts:
--graph reports its size and one witness cycle per may-violate block,
--dot-dir exports the graph and cycles as dot files, and the snapshot
workload shows cycle-freedom proving blocks Lipton cannot:

  $ velodrome analyze ../examples/account.vel --graph 2>&1 | tail -2
  conflict graph: 12 ops in 4 regions; 6 conflict, 2 lock, 32 program-order, 28 cross-instance edges; 28 passage (14 slack, 2 accepted)
  Teller.deposit           cycle re-enters Teller.deposit at t0:w(balance)@1.0.3 after its out-edge at t0:r(balance)@1.0.0: t0:r(balance)@1.0.0 -[conflict balance]-> t1:w(balance)@1.0.3 -[conflict balance]-> t0:w(balance)@1.0.3

  $ velodrome analyze snapshot --dot-dir dots
  Snapshot.collect         proved atomic by cycle-free (1 occurrence)
  Snapshot.spot            proved atomic by lipton (4 occurrences)
  Snapshot.checkReady      proved atomic by cycle-free (1 occurrence)
  3/3 blocks proved atomic (1 lipton, 2 cycle-free), 0 may-violate
  static graph written to dots/snapshot.txgraph.dot
  static graph written to dots/snapshot.cfg_values.dot

The tid-specialized value analysis: every thread of the dispatch
workload runs the same body, switching writer/reader roles on the
thread-id register, so without value facts each replica statically
carries every role. The analysis pins r0 per thread, kills the foreign
arms (the DEAD BRANCH lint), and flips both blocks from may-violate to
proved; --values lists the interval facts and dead arms:

  $ velodrome analyze dispatch --size small
  Dispatch.update          proved atomic by lipton (1 occurrence)
  Dispatch.scan            proved atomic by cycle-free (2 occurrences)
  DEAD BRANCH t0:0.else: thread 0 never takes this arm
  DEAD BRANCH t1:0.then: thread 1 never takes this arm
  DEAD BRANCH t1:0.1.0.else: thread 1 never takes this arm
  DEAD BRANCH t2:0.then: thread 2 never takes this arm
  DEAD BRANCH t2:0.1.0.then: thread 2 never takes this arm
  DEAD BRANCH t2:0.1.0.1.0.else: thread 2 never takes this arm
  2/2 blocks proved atomic (1 lipton, 1 cycle-free), 0 may-violate

  $ velodrome analyze dispatch --size small --values | tail -3
    dead then arm of t2:0.1.0
    dead else arm of t2:0.1.0.1.0
  value analysis: 12 facts, 35 dead sites, 6 dead branches

--no-values is the escape hatch: the syntactic story returns, both
blocks regress to may-violate, and the unproved-block exit semantics
are unchanged:

  $ velodrome analyze dispatch --size small --no-values | tail -1
  0/2 blocks proved atomic (0 lipton, 0 cycle-free), 2 may-violate
  $ velodrome analyze dispatch --size small --no-values > /dev/null
  [1]

The witness cycle dot names the source site on every edge; scan.vel is
a latent snapshot bug that no plain schedule exhibits:

  $ velodrome analyze ../examples/scan.vel --dot-dir cycles >/dev/null
  [1]
  $ cat cycles/___examples_scan_vel.cycle_Report_snapshot.dot
  digraph "static_cycle" {
    node [shape=box, fontname="Helvetica"];
    "r0" [label="Report.snapshot t1:0", peripheries=2, style=bold];
    "r1" [label="unary t0:w(b)@0"];
    "r2" [label="unary t0:w(a)@2"];
    "r0" -> "r1" [label="conflict b at t0:0"];
    "r1" -> "r2" [label="program-order at t0:2"];
    "r2" -> "r0" [label="conflict a at t1:0.2", style=dashed];
  }

Witness-guided prediction: the dynamic checker misses the latent bug on
the observed schedule, while predict lowers the static cycle to a forced
schedule, replays it, certifies the forced trace with the engine trio,
and prints a one-command replay line. The schedule replays standalone;
a fully guarded program predicts nothing and exits 0:

  $ velodrome check ../examples/scan.vel --seed 9 2>&1 | tail -1
  No warnings.
  $ velodrome predict ../examples/scan.vel
  prediction: 1 certified prediction, 0 may-violate blocks unpredicted (observation: 6 events, 0 blocks blamed)
    Report.snapshot: predicted violation (full plan, certified at event 4)
      schedule: t1@0.0 -> t0@0 -> t0@2 -> t1@0.2
      replay: velodrome predict ../examples/scan.vel --block Report.snapshot --schedule "t1@0.0 -> t0@0 -> t0@2 -> t1@0.2"
      cycle: cycle re-enters Report.snapshot at t1:r(a)@0.2 after its out-edge at t1:r(b)@0.0: t1:r(b)@0.0 -[conflict b]-> t0:w(b)@0 -[program-order]-> t0:w(a)@2 -[conflict a]-> t1:r(a)@0.2
  [1]
  $ velodrome predict ../examples/scan.vel --block Report.snapshot --schedule "t1@0.0 -> t0@0 -> t0@2 -> t1@0.2"
  Report.snapshot: certified violation at event 4 under the forced schedule
  [1]
  $ velodrome predict ../examples/guarded.vel
  prediction: 0 certified predictions, 0 may-violate blocks unpredicted (observation: 134 events, 0 blocks blamed)

analyze --predict upgrades the static verdict and, with --gate, re-replays
every emitted prediction from its schedule line:

  $ velodrome analyze ../examples/scan.vel --predict --gate 2>&1 | tail -2
  prediction gate: OK (1 prediction re-certified by replay)
  soundness gate: OK (7 schedules, 21 dynamic warnings, no proved block blamed, every blamed block may-violate, every dynamic race statically covered, aero = velodrome = basic on every recorded trace, no dead site executed, every observed value in its static interval)

A failing gate over a generated program prints a replayable report on
stderr; --replay-demo pins its shape:

  $ velodrome analyze --replay-demo 2>&1
  gate: generated program FAILED: progen seed 7, family publication+snapshot, schedule adversarial(seed 2)
  gate: replay: velodrome analyze --generated 1 --gen-seed 7 --seeds 1,2,3 --gate

  $ velodrome analyze ../examples/account.vel --format json
  {
    "file": "../examples/account.vel",
    "blocks": [
                {
                  "label": "Teller.deposit",
                  "verdict": "may-violate",
                  "proof": null,
                  "position": {
                                "line": 14,
                                "col": 12
                  },
                  "occurrences": [
                                   "t0:1.0",
                                   "t1:1.0"
                  ],
                  "reasons": [
                               {
                                 "site": "t0:1.0.3",
                                 "detail": "write of balance is a second non-mover (races with t1:1.0.3) after the commit point"
                               },
                               {
                                 "site": "t1:1.0.3",
                                 "detail": "write of balance is a second non-mover (races with t0:1.0.3) after the commit point"
                               }
                  ],
                  "witness": {
                               "label": "Teller.deposit",
                               "occurrence": "t0:1.0",
                               "arrival": {
                                            "site": "t0:1.0.3",
                                            "op": "t0:w(balance)"
                               },
                               "departure": {
                                              "site": "t0:1.0.0",
                                              "op": "t0:r(balance)"
                               },
                               "pivot": {
                                          "site": "t1:1.0.3",
                                          "op": "t1:w(balance)"
                               },
                               "path": [
                                         {
                                           "via": "conflict balance",
                                           "node": {
                                                     "site": "t1:1.0.3",
                                                     "op": "t1:w(balance)"
                                           }
                                         },
                                         {
                                           "via": "conflict balance",
                                           "node": {
                                                     "site": "t0:1.0.3",
                                                     "op": "t0:w(balance)"
                                           }
                                         }
                               ]
                  }
                },
                {
                  "label": "Teller.audit",
                  "verdict": "proved-atomic",
                  "proof": "lipton",
                  "position": {
                                "line": 19,
                                "col": 12
                  },
                  "occurrences": [
                                   "t0:1.1",
                                   "t1:1.1"
                  ],
                  "reasons": [],
                  "witness": null
                }
    ],
    "summary": {
                 "blocks": 2,
                 "proved": 1,
                 "proved_lipton": 1,
                 "proved_cycle_free": 0,
                 "may_violate": 1,
                 "unknown": 0,
                 "race_pairs": 3,
                 "racy_vars": 1,
                 "dead_sites": 0,
                 "dead_branches": 0
    }
  }
  [1]

The pairwise static race detector: account.vel's unguarded balance gives
race pairs (exit 1), fully guarded programs report none (exit 0), and the
JSON document passes the schema validator:

  $ velodrome races ../examples/account.vel
  race #1 on balance: read at t0:1.0.0 holding no locks and write at t1:1.0.3 holding no locks share no lock (endangers Teller.deposit)
      read at t0:1.0.0 (14:12)
      write at t1:1.0.3 (14:12)
  race #2 on balance: write at t0:1.0.3 holding no locks and read at t1:1.0.0 holding no locks share no lock (endangers Teller.deposit)
      write at t0:1.0.3 (14:12)
      read at t1:1.0.0 (14:12)
  race #3 on balance: write at t0:1.0.3 holding no locks and write at t1:1.0.3 holding no locks share no lock (endangers Teller.deposit)
      write at t0:1.0.3 (14:12)
      write at t1:1.0.3 (14:12)
  3 race pairs on 1 variable (8 access sites)
  [1]

  $ velodrome races ../examples/guarded.vel
  0 race pairs on 0 variables (10 access sites)

  $ velodrome races ../examples/account.vel --format json
  {
    "file": "../examples/account.vel",
    "pairs": [
               {
                 "var": "balance",
                 "a": {
                        "site": "t0:1.0.0",
                        "access": "read",
                        "locks": [],
                        "atomic": "Teller.deposit",
                        "position": {
                                      "line": 14,
                                      "col": 12
                        }
                 },
                 "b": {
                        "site": "t1:1.0.3",
                        "access": "write",
                        "locks": [],
                        "atomic": "Teller.deposit",
                        "position": {
                                      "line": 14,
                                      "col": 12
                        }
                 },
                 "explanation": "read at t0:1.0.0 holding no locks and write at t1:1.0.3 holding no locks share no lock (endangers Teller.deposit)"
               },
               {
                 "var": "balance",
                 "a": {
                        "site": "t0:1.0.3",
                        "access": "write",
                        "locks": [],
                        "atomic": "Teller.deposit",
                        "position": {
                                      "line": 14,
                                      "col": 12
                        }
                 },
                 "b": {
                        "site": "t1:1.0.0",
                        "access": "read",
                        "locks": [],
                        "atomic": "Teller.deposit",
                        "position": {
                                      "line": 14,
                                      "col": 12
                        }
                 },
                 "explanation": "write at t0:1.0.3 holding no locks and read at t1:1.0.0 holding no locks share no lock (endangers Teller.deposit)"
               },
               {
                 "var": "balance",
                 "a": {
                        "site": "t0:1.0.3",
                        "access": "write",
                        "locks": [],
                        "atomic": "Teller.deposit",
                        "position": {
                                      "line": 14,
                                      "col": 12
                        }
                 },
                 "b": {
                        "site": "t1:1.0.3",
                        "access": "write",
                        "locks": [],
                        "atomic": "Teller.deposit",
                        "position": {
                                      "line": 14,
                                      "col": 12
                        }
                 },
                 "explanation": "write at t0:1.0.3 holding no locks and write at t1:1.0.3 holding no locks share no lock (endangers Teller.deposit)"
               }
    ],
    "summary": {
                 "pairs": 3,
                 "racy_vars": 1,
                 "access_sites": 8,
                 "blocks": 2,
                 "proved": 1
    }
  }
  [1]

  $ velodrome races ../examples/account.vel --format json > races.json
  [1]
  $ ../bench/validate_bench.exe races.json races
  races.json: 1 races document ok

An atomicity spec can silence methods:

  $ cat > spec.txt <<'SPEC'
  > atomic *
  > notatomic Teller.deposit
  > SPEC
  $ velodrome check ../examples/account.vel --seed 9 --spec spec.txt 2>&1 | tail -1
  No warnings.

Printing a workload as .vel source:

  $ velodrome print raja | head -8
  var hits;
  var shades;
  var image;
  var weights;
  lock scene;
  lock accumulator;
  
  thread {

Record, replay and minimize a trace:

  $ velodrome record multiset ms.trace --size small --seed 1
  recorded 896 operations to ms.trace
  $ velodrome check-trace ms.trace -a velodrome 2>&1 | head -2
  ms.trace: 896 operations
  5 warning(s):
  $ velodrome minimize ms.trace 2>&1 | head -1
  minimized 896 operations to 6:

Differential fuzzing of the engines against the oracle:

  $ velodrome fuzz -n 50 --seed 7
  fuzz: 50 random traces, engine = basic = oracle on all of them

Binary traces: convert both ways, byte-identical round-trip, streaming replay:

  $ velodrome convert ms.trace ms.velb
  converted ms.trace (896 events) to ms.velb (binary)
  $ velodrome convert ms.velb ms-roundtrip.trace
  converted ms.velb (896 events) to ms-roundtrip.trace (text)
  $ cmp ms.trace ms-roundtrip.trace
  $ velodrome check-trace ms.velb -a velodrome 2>&1 | head -2
  ms.velb: 896 operations
  5 warning(s):
  $ velodrome check-trace ms.velb --stream -a velodrome 2>&1 | head -2
  ms.velb: 896 operations
  5 warning(s):

The account example round-trips byte-identically (text -> binary -> text):

  $ velodrome record ../examples/account.vel acct.trace --seed 9
  recorded 300 operations to acct.trace
  $ velodrome convert acct.trace acct.velb
  converted acct.trace (300 events) to acct.velb (binary)
  $ velodrome convert acct.velb acct-roundtrip.trace
  converted acct.velb (300 events) to acct-roundtrip.trace (text)
  $ cmp acct.trace acct-roundtrip.trace

Corrupt input exits 2 (violations exit 1; see the EXIT STATUS section of
--help), in both replay modes:

  $ head -c 40 ms.velb > bad.velb
  $ velodrome check-trace bad.velb
  bad.velb: corrupt binary trace: truncated name (10 bytes) (at byte 40)
  [2]
  $ velodrome check-trace bad.velb --stream
  bad.velb: corrupt binary trace: truncated name (10 bytes) (at byte 40)
  [2]
  $ velodrome convert bad.velb nope.trace
  bad.velb: corrupt binary trace: truncated name (10 bytes) (at byte 40)
  [2]

A mid-stream truncation is different from a corrupt header: the events
before the damage form a real trace prefix, so --stream reports the
partial result — count and warnings — before exiting 2 with the
diagnostic:

  $ head -c 1200 ms.velb > partial.velb
  $ velodrome check-trace partial.velb --stream -a velodrome
  partial.velb: 490 operations (partial: stream truncated)
  5 warning(s):
    velodrome: atomicity-violation [Set.retain] at #58: not self-serializable (refuted blocks: Set.retain); cycle: Set.retain(t1) -> Set.addAll(t0) -> Set.retain(t1)
    velodrome: atomicity-violation [Set.sizeSum] at #84: not self-serializable (refuted blocks: Set.sizeSum); cycle: Set.sizeSum(t1) -> Set.sizeSum(t0) -> Set.sizeSum(t1)
    velodrome: atomicity-violation [Set.remove] at #129: not self-serializable (refuted blocks: Set.remove); cycle: Set.remove(t1) -> Set.add(t0) -> Set.remove(t1)
    velodrome: atomicity-violation [Set.addAll] at #147: not self-serializable (refuted blocks: Set.addAll); cycle: Set.addAll(t1) -> Set.remove(t0) -> Set.addAll(t1)
    velodrome: atomicity-violation [Set.add] at #324: not self-serializable (refuted blocks: Set.add); cycle: Set.add(t1) -> Set.sizeSum(t0) -> Set.add(t1)
  partial.velb: corrupt binary trace: truncated input (at byte 1200)
  [2]

The AeroDrome vector-clock backend replays the same traces through
--backend, in both replay modes, with the same exit conventions as the
graph engines (1 on violations, 0 when clean, 2 on corrupt input):

  $ velodrome check-trace ms.trace --backend aero
  ms.trace: 896 operations
  5 warning(s):
    aero: atomicity-violation [Set.retain] at #58: happens-before cycle involving transaction of Set.retain
    aero: atomicity-violation [Set.sizeSum] at #84: happens-before cycle involving transaction of Set.sizeSum
    aero: atomicity-violation [Set.remove] at #129: happens-before cycle involving transaction of Set.remove
    aero: atomicity-violation [Set.addAll] at #147: happens-before cycle involving transaction of Set.addAll
    aero: atomicity-violation [Set.add] at #324: happens-before cycle involving transaction of Set.add
  [1]
  $ velodrome check-trace ms.velb --stream --backend aero 2>&1 | head -2
  ms.velb: 896 operations
  5 warning(s):
  $ velodrome check-trace ms.trace --backend aero --format json | head -12
  {
    "file": "ms.trace",
    "events": 896,
    "warnings": [
                  {
                    "analysis": "aero",
                    "kind": "atomicity-violation",
                    "label": "Set.retain",
                    "index": 58,
                    "blamed": false,
                    "message": "happens-before cycle involving transaction of Set.retain"
                  },
  $ velodrome record ../examples/guarded.vel ok.trace --seed 3
  recorded 134 operations to ok.trace
  $ velodrome check-trace ok.trace --backend aero
  ok.trace: 134 operations
  No warnings.
  $ velodrome check-trace bad.velb --backend aero
  bad.velb: corrupt binary trace: truncated name (10 bytes) (at byte 40)
  [2]

The tracked engine benchmark artifact is a three-way comparison — aero
against the optimized and basic graph engines — and validates against
the extended schema:

  $ ../bench/validate_bench.exe ../BENCH_engine.json engine
  ../BENCH_engine.json: 19 engine rows ok

The tracked prediction study artifact — witness-guided prediction from a
single observation against the adversarial-scheduler baseline — must
show zero uncertified predictions and strict dominance, both enforced by
the validator:

  $ ../bench/validate_bench.exe ../BENCH_predict.json predict
  ../BENCH_predict.json: 1 predict document ok

The tracked static-pruning artifact carries the value-analysis columns
(dead sites, race-pair and proved-block deltas, values timing), and
--baseline diffs a fresh copy against a committed one, failing on a
>15% analysis-time or throughput regression — a file is never slower
than itself, so the self-diff is the deterministic pin:

  $ ../bench/validate_bench.exe ../BENCH_statics.json statics
  ../BENCH_statics.json: 7 statics rows ok
  $ ../bench/validate_bench.exe --baseline ../BENCH_statics.json ../BENCH_statics.json
  ../BENCH_statics.json: no >15% regression vs ../BENCH_statics.json (7 rows compared)

Multicore serving: a domain pool checks many complete streams
concurrently, and the ordered merge makes the output submission-ordered
and byte-identical to a sequential check-trace sweep, whatever --jobs
is:

  $ mkdir streams
  $ velodrome record multiset streams/a.velb --size small --seed 1 > /dev/null
  $ velodrome record tsp streams/b.velb --size small --seed 2 > /dev/null
  $ velodrome record sor streams/c.velb --size small --seed 3 > /dev/null
  $ velodrome serve --jobs 4 -a velodrome streams > par.out 2> par.err
  [1]
  $ for f in streams/a.velb streams/b.velb streams/c.velb; do velodrome check-trace $f --stream -a velodrome; done > seq.out
  [1]
  $ cmp par.out seq.out
  $ cat par.err
  $ velodrome serve --jobs 1 -a velodrome streams | cmp par.out -

A truncated stream keeps its partial result, does not disturb the
streams around it, and turns the run's exit into 2:

  $ velodrome serve -a velodrome partial.velb streams/b.velb > sp.out 2> sp.err
  [2]
  $ grep -c 'operations' sp.out
  2
  $ head -1 sp.out
  partial.velb: 490 operations (partial: stream truncated)
  $ cat sp.err
  partial.velb: corrupt binary trace: truncated input (at byte 1200)

Bad serve invocations exit 2 before any domain is spawned:

  $ velodrome serve -a bogus streams
  unknown analysis "bogus"
  [2]
  $ mkdir empty-dir
  $ velodrome serve empty-dir
  empty-dir: no .velb or .trace files in directory
  [2]

The tracked serve artifact sweeps 1 to 8 domains over 200 generated
streams; the validator enforces byte-for-byte determinism across domain
counts, the backpressure bound on resident streams, and a cores-aware
scaling gate (the scaling report line is a measurement, so only the
stable line is pinned here):

  $ ../bench/validate_bench.exe ../BENCH_serve.json serve | tail -1
  ../BENCH_serve.json: 4 serve rows ok

Malformed text traces are blamed on the offending line:

  $ printf 't0 rd x\nt0 frobnicate x\n' > bad.trace
  $ velodrome check-trace bad.trace
  bad.trace:2: unknown operation frobnicate
  [2]

An ill-formed program reports every static error, with statement paths:

  $ cat > broken.vel <<'VEL'
  > lock m;
  > thread { release m; if (1 == 1) { acquire m; } }
  > VEL
  $ velodrome check broken.vel
  broken.vel: thread 0, stmt 0: release of lock 0 without matching acquire
  broken.vel: thread 0, stmt 1: if branches have different lock effects
  broken.vel: thread 0, end of thread: thread finishes while holding locks
  [2]
