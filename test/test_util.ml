open Velodrome_util

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Rng ----------------------------------------------------------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    check int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let test_rng_bounds () =
  let g = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int g 13 in
    check bool "in range" true (v >= 0 && v < 13)
  done

let test_rng_split_independent () =
  let g = Rng.create 1 in
  let h = Rng.split g in
  let xs = List.init 20 (fun _ -> Rng.int g 1000) in
  let ys = List.init 20 (fun _ -> Rng.int h 1000) in
  check bool "streams differ" true (xs <> ys)

let test_rng_shuffle_permutes () =
  let g = Rng.create 3 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle g a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check bool "is a permutation" true (sorted = Array.init 50 Fun.id);
  check bool "actually moved something" true (a <> Array.init 50 Fun.id)

let test_rng_float_range () =
  let g = Rng.create 11 in
  for _ = 1 to 1000 do
    let f = Rng.float g 2.5 in
    check bool "float in range" true (f >= 0.0 && f < 2.5)
  done

(* --- Symtab --------------------------------------------------------------- *)

let test_symtab_roundtrip () =
  let t = Symtab.create () in
  let a = Symtab.intern t "alpha" in
  let b = Symtab.intern t "beta" in
  check int "dense ids" 0 a;
  check int "dense ids" 1 b;
  check int "stable" a (Symtab.intern t "alpha");
  check Alcotest.string "name back" "beta" (Symtab.name t b);
  check int "size" 2 (Symtab.size t)

let test_symtab_find () =
  let t = Symtab.create () in
  ignore (Symtab.intern t "x");
  check (Alcotest.option int) "present" (Some 0) (Symtab.find t "x");
  check (Alcotest.option int) "absent" None (Symtab.find t "y")

let test_symtab_many () =
  let t = Symtab.create () in
  for i = 0 to 999 do
    ignore (Symtab.intern t (string_of_int i))
  done;
  check int "all distinct" 1000 (Symtab.size t);
  check Alcotest.string "spot check" "517" (Symtab.name t 517)

(* --- Vec ----------------------------------------------------------------- *)

let test_vec_push_get () =
  let v = Vec.create () in
  for i = 0 to 99 do
    Vec.push v (i * i)
  done;
  check int "length" 100 (Vec.length v);
  check int "get" 49 (Vec.get v 7);
  Vec.set v 7 (-1);
  check int "set" (-1) (Vec.get v 7)

let test_vec_pop_last () =
  let v = Vec.of_list [ 1; 2; 3 ] in
  check (Alcotest.option int) "last" (Some 3) (Vec.last v);
  check (Alcotest.option int) "pop" (Some 3) (Vec.pop v);
  check int "shrunk" 2 (Vec.length v);
  Vec.clear v;
  check (Alcotest.option int) "empty pop" None (Vec.pop v)

let test_vec_bounds () =
  let v = Vec.of_list [ 0 ] in
  Alcotest.check_raises "get oob" (Invalid_argument "Vec.get: index out of bounds")
    (fun () -> ignore (Vec.get v 1))

let test_vec_iter_fold () =
  let v = Vec.of_list [ 1; 2; 3; 4 ] in
  check int "fold sum" 10 (Vec.fold_left ( + ) 0 v);
  let acc = ref [] in
  Vec.iteri (fun i x -> acc := (i, x) :: !acc) v;
  check int "iteri count" 4 (List.length !acc);
  check bool "exists" true (Vec.exists (fun x -> x = 3) v);
  check bool "not exists" false (Vec.exists (fun x -> x = 9) v)

(* --- Digraph --------------------------------------------------------------- *)

let test_digraph_acyclic () =
  let g = Digraph.create 4 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 0 2;
  Digraph.add_edge g 2 3;
  check bool "no cycle" false (Digraph.has_cycle g);
  check bool "reachable" true (Digraph.reachable g 0 3);
  check bool "not reachable" false (Digraph.reachable g 3 0);
  match Digraph.topological_order g with
  | None -> Alcotest.fail "expected topological order"
  | Some order ->
    check int "all nodes" 4 (List.length order);
    let pos = Array.make 4 0 in
    List.iteri (fun i n -> pos.(n) <- i) order;
    Digraph.iter_edges g (fun u v ->
        check bool "topo respects edges" true (pos.(u) < pos.(v)))

let test_digraph_cycle_found () =
  let g = Digraph.create 3 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 1 2;
  Digraph.add_edge g 2 0;
  check bool "cycle" true (Digraph.has_cycle g);
  (match Digraph.find_cycle g with
  | None -> Alcotest.fail "expected a cycle"
  | Some cyc ->
    check bool "nontrivial" true (List.length cyc >= 2);
    (* Consecutive cycle nodes must be joined by edges, wrapping around. *)
    let arr = Array.of_list cyc in
    let k = Array.length arr in
    for i = 0 to k - 1 do
      check bool "cycle edge exists" true
        (Digraph.mem_edge g arr.(i) arr.((i + 1) mod k))
    done);
  check (Alcotest.option (Alcotest.list int)) "no topo order" None
    (Digraph.topological_order g)

let test_digraph_self_edge_ignored () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 0;
  check int "self edge filtered" 0 (Digraph.edge_count g);
  check bool "still acyclic" false (Digraph.has_cycle g)

let test_digraph_duplicate_edges () =
  let g = Digraph.create 2 in
  Digraph.add_edge g 0 1;
  Digraph.add_edge g 0 1;
  check int "deduplicated" 1 (Digraph.edge_count g)

(* --- Stats ----------------------------------------------------------------- *)

let test_stats_basics () =
  let a = [| 1.0; 2.0; 3.0; 4.0 |] in
  check (Alcotest.float 1e-9) "mean" 2.5 (Stats.mean a);
  check (Alcotest.float 1e-9) "median" 2.5 (Stats.median a);
  let lo, hi = Stats.min_max a in
  check (Alcotest.float 1e-9) "min" 1.0 lo;
  check (Alcotest.float 1e-9) "max" 4.0 hi;
  check (Alcotest.float 1e-9) "ratio zero den" 0.0 (Stats.ratio 1.0 0.0)

let test_stats_counter () =
  let c = Stats.counter () in
  Stats.incr c;
  Stats.incr c;
  Stats.decr c;
  Stats.incr c;
  check int "current" 2 (Stats.value c);
  check int "total" 3 (Stats.total_increments c);
  check int "high water" 2 (Stats.high_water c);
  Stats.reset c;
  check int "reset" 0 (Stats.total_increments c)

(* --- Dot ----------------------------------------------------------------- *)

let test_dot_render () =
  let nodes =
    [
      { Dot.id = "a"; label = "Thread 1: add"; emphasized = true };
      { Dot.id = "b"; label = "say \"hi\""; emphasized = false };
    ]
  in
  let edges =
    [ { Dot.src = "a"; dst = "b"; edge_label = "wr(x)"; dashed = true } ]
  in
  let s = Dot.render ~name:"g" nodes edges in
  check bool "digraph header" true
    (String.length s > 0 && String.sub s 0 7 = "digraph");
  let contains hay needle =
    let nl = String.length needle and hl = String.length hay in
    let rec go i = i + nl <= hl && (String.sub hay i nl = needle || go (i + 1)) in
    go 0
  in
  check bool "escapes quotes" true (contains s "say \\\"hi\\\"");
  check bool "dashed edge" true (contains s "style=dashed");
  check bool "emphasized node" true (contains s "peripheries=2")

(* --- Bitset ---------------------------------------------------------------- *)

module ISet = Set.Make (Int)

let test_bitset_basics () =
  let b = Bitset.create () in
  check bool "fresh set empty" true (Bitset.is_empty b);
  check int "empty top_word" (-1) (Bitset.top_word b);
  Bitset.set b 3;
  Bitset.set b 200;
  check bool "mem 3" true (Bitset.mem b 3);
  check bool "mem 200" true (Bitset.mem b 200);
  check bool "not mem 4" false (Bitset.mem b 4);
  check bool "mem past capacity is false" false (Bitset.mem b 100_000);
  check int "cardinal" 2 (Bitset.cardinal b);
  check bool "add existing" false (Bitset.add b 3);
  check bool "add fresh" true (Bitset.add b 4);
  check (Alcotest.list int) "to_list ascending" [ 3; 4; 200 ] (Bitset.to_list b);
  let seen = ref [] in
  Bitset.iter (fun i -> seen := i :: !seen) b;
  check (Alcotest.list int) "iter ascending" [ 3; 4; 200 ] (List.rev !seen);
  Bitset.clear_bit b 4;
  check bool "cleared" false (Bitset.mem b 4);
  Bitset.clear_bit b 100_000;
  (* out of range: no-op *)
  check int "top_word tracks highest bit" (200 / Bitset.bits_per_word)
    (Bitset.top_word b);
  Bitset.reset b;
  check bool "reset empty" true (Bitset.is_empty b);
  check int "reset cardinal" 0 (Bitset.cardinal b)

let test_bitset_union_into () =
  let a = Bitset.create () and b = Bitset.create () in
  List.iter (Bitset.set a) [ 1; 64; 130 ];
  List.iter (Bitset.set b) [ 2; 64 ];
  check bool "union changes dst" true (Bitset.union_into ~src:a ~dst:b);
  check (Alcotest.list int) "union" [ 1; 2; 64; 130 ] (Bitset.to_list b);
  check bool "union idempotent" false (Bitset.union_into ~src:a ~dst:b);
  check (Alcotest.list int) "src untouched" [ 1; 64; 130 ] (Bitset.to_list a)

let test_bitset_union_on_new () =
  let a = Bitset.create () and b = Bitset.create () in
  List.iter (Bitset.set a) [ 0; 63; 64; 200 ];
  Bitset.set b 63;
  let fresh = ref [] in
  let changed =
    Bitset.union_into_on_new ~src:a ~dst:b (fun i -> fresh := i :: !fresh)
  in
  check bool "changed" true changed;
  check (Alcotest.list int) "callback sees only new bits" [ 0; 64; 200 ]
    (List.sort compare !fresh)

(* Repeated unions in both directions must not grow the backing arrays
   past the highest set bit: sizing a union destination from the source's
   raw capacity lets capacities ratchet exponentially (the bug top_word
   exists to prevent). *)
let test_bitset_union_no_capacity_ratchet () =
  let a = Bitset.create () and b = Bitset.create () in
  Bitset.set a 700;
  Bitset.set b 900;
  for _ = 1 to 50 do
    ignore (Bitset.union_into ~src:a ~dst:b);
    ignore (Bitset.union_into ~src:b ~dst:a)
  done;
  let cap t = Array.length (Bitset.words t) * Bitset.bits_per_word in
  check bool "capacity bounded by highest bit" true
    (cap a < 8 * 1024 && cap b < 8 * 1024)

let prop_bitset_matches_set_model =
  let open QCheck in
  let op_gen =
    Gen.(
      frequency
        [
          (6, map (fun i -> `Set (0, i)) (int_bound 320));
          (6, map (fun i -> `Set (1, i)) (int_bound 320));
          (3, map (fun i -> `Clear (0, i)) (int_bound 320));
          (3, map (fun i -> `Clear (1, i)) (int_bound 320));
          (2, return `Union01);
          (2, return `Union10);
          (1, return `Reset0);
        ])
  in
  Test.make ~count:400 ~name:"bitset = int-set model"
    (make Gen.(list_size (int_bound 120) op_gen))
    (fun ops ->
      let b = [| Bitset.create (); Bitset.create () |] in
      let m = [| ISet.empty; ISet.empty |] in
      let ok = ref true in
      let expect c = if not c then ok := false in
      List.iter
        (function
          | `Set (k, i) ->
            expect (Bitset.add b.(k) i = not (ISet.mem i m.(k)));
            m.(k) <- ISet.add i m.(k)
          | `Clear (k, i) ->
            Bitset.clear_bit b.(k) i;
            m.(k) <- ISet.remove i m.(k)
          | `Union01 ->
            expect
              (Bitset.union_into ~src:b.(0) ~dst:b.(1)
              = not (ISet.subset m.(0) m.(1)));
            m.(1) <- ISet.union m.(0) m.(1)
          | `Union10 ->
            expect
              (Bitset.union_into ~src:b.(1) ~dst:b.(0)
              = not (ISet.subset m.(1) m.(0)));
            m.(0) <- ISet.union m.(1) m.(0)
          | `Reset0 ->
            Bitset.reset b.(0);
            m.(0) <- ISet.empty)
        ops;
      let agrees k =
        Bitset.to_list b.(k) = ISet.elements m.(k)
        && Bitset.cardinal b.(k) = ISet.cardinal m.(k)
        && Bitset.top_word b.(k)
           = (match ISet.max_elt_opt m.(k) with
             | None -> -1
             | Some mx -> mx / Bitset.bits_per_word)
        && ISet.for_all (Bitset.mem b.(k)) m.(k)
      in
      !ok && agrees 0 && agrees 1)

(* --- Json parsing ---------------------------------------------------------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("fixture", Json.String "raja");
        ("rate", Json.Float 1.5);
        ("events", Json.Int 123456);
        ("neg", Json.Int (-7));
        ("ok", Json.Bool true);
        ("missing", Json.Null);
        ("tags", Json.List [ Json.String "a\"b\\c\nd"; Json.Bool false ]);
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  match Json.of_string (Json.to_string doc) with
  | Ok doc' -> check bool "round trip" true (doc = doc')
  | Error msg -> Alcotest.fail msg

let test_json_numbers () =
  let p = Json.of_string in
  check bool "int" true (p "42" = Ok (Json.Int 42));
  check bool "negative" true (p "-3" = Ok (Json.Int (-3)));
  check bool "float" true (p "2.5" = Ok (Json.Float 2.5));
  check bool "exponent" true (p "1e3" = Ok (Json.Float 1000.));
  check bool "neg exponent" true (p "25e-1" = Ok (Json.Float 2.5));
  (* The printer renders integral floats as JSON integers, so they come
     back as Int — which is why the bench validator accepts Int|Float for
     numeric fields. *)
  check bool "integral float reparses as int" true
    (p (Json.to_string (Json.Float 3.0)) = Ok (Json.Int 3))

let test_json_escapes () =
  check bool "standard + \\u escapes" true
    (Json.of_string {|"a\"b\\c\nd\te\u0041"|}
    = Ok (Json.String "a\"b\\c\nd\teA"))

let test_json_errors () =
  let bad s = match Json.of_string s with Ok _ -> false | Error _ -> true in
  check bool "empty input" true (bad "");
  check bool "unclosed object" true (bad "{\"a\": 1");
  check bool "unclosed array" true (bad "[1, 2");
  check bool "bare word" true (bad "tru");
  check bool "unterminated string" true (bad "\"abc");
  check bool "trailing garbage" true (bad "1 x");
  check bool "bad escape" true (bad "\"\\q\"");
  check bool "lone minus" true (bad "-")

let suite =
  ( "util",
    [
      Alcotest.test_case "rng deterministic" `Quick test_rng_deterministic;
      Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
      Alcotest.test_case "rng split" `Quick test_rng_split_independent;
      Alcotest.test_case "rng shuffle" `Quick test_rng_shuffle_permutes;
      Alcotest.test_case "rng float" `Quick test_rng_float_range;
      Alcotest.test_case "symtab roundtrip" `Quick test_symtab_roundtrip;
      Alcotest.test_case "symtab find" `Quick test_symtab_find;
      Alcotest.test_case "symtab many" `Quick test_symtab_many;
      Alcotest.test_case "vec push/get" `Quick test_vec_push_get;
      Alcotest.test_case "vec pop/last" `Quick test_vec_pop_last;
      Alcotest.test_case "vec bounds" `Quick test_vec_bounds;
      Alcotest.test_case "vec iter/fold" `Quick test_vec_iter_fold;
      Alcotest.test_case "digraph acyclic" `Quick test_digraph_acyclic;
      Alcotest.test_case "digraph cycle" `Quick test_digraph_cycle_found;
      Alcotest.test_case "digraph self edge" `Quick test_digraph_self_edge_ignored;
      Alcotest.test_case "digraph duplicates" `Quick test_digraph_duplicate_edges;
      Alcotest.test_case "stats basics" `Quick test_stats_basics;
      Alcotest.test_case "stats counter" `Quick test_stats_counter;
      Alcotest.test_case "dot render" `Quick test_dot_render;
      Alcotest.test_case "bitset basics" `Quick test_bitset_basics;
      Alcotest.test_case "bitset union" `Quick test_bitset_union_into;
      Alcotest.test_case "bitset union on new" `Quick test_bitset_union_on_new;
      Alcotest.test_case "bitset no capacity ratchet" `Quick
        test_bitset_union_no_capacity_ratchet;
      QCheck_alcotest.to_alcotest prop_bitset_matches_set_model;
      Alcotest.test_case "json roundtrip" `Quick test_json_roundtrip;
      Alcotest.test_case "json numbers" `Quick test_json_numbers;
      Alcotest.test_case "json escapes" `Quick test_json_escapes;
      Alcotest.test_case "json errors" `Quick test_json_errors;
    ] )
