(* The static pre-pass: unit tests for each pipeline stage, then the
   differential soundness artifacts — the blame gate (no statically
   proved block is ever refuted by dynamic Velodrome, under round-robin,
   random and adversarial schedules) and the filter differential (the
   static_atomic event filter changes no back-end's warnings outside
   proved blocks, for all six back-ends). *)

open Velodrome_sim
open Velodrome_analysis
module Cfg = Velodrome_statics.Cfg
module Lockset = Velodrome_statics.Lockset
module Mhp = Velodrome_statics.Mhp
module Races = Velodrome_statics.Races
module Movers = Velodrome_statics.Movers
module Reduce = Velodrome_statics.Reduce
module Values = Velodrome_statics.Values
module Statics = Velodrome_statics.Statics
module Workload = Velodrome_workloads.Workload

let check = Alcotest.check
let parse = Velodrome_lang.Parser.parse

(* --- cfg ------------------------------------------------------------------- *)

let effs_of cfg =
  let out = ref [] in
  Cfg.iter_nodes (fun n -> out := n.Cfg.eff :: !out) cfg;
  List.rev !out

let test_cfg_shapes () =
  let p =
    parse
      "var x; lock m; thread { acquire m; x = 1; release m; } thread { x = \
       2; }"
  in
  let cfg = Cfg.of_program p in
  check Alcotest.int "entries" 2 (Array.length (Cfg.entries cfg));
  let effs = effs_of cfg in
  let count f = List.length (List.filter f effs) in
  check Alcotest.int "acquires" 1
    (count (function Cfg.Acquire _ -> true | _ -> false));
  check Alcotest.int "releases" 1
    (count (function Cfg.Release _ -> true | _ -> false));
  check Alcotest.int "writes" 2
    (count (function Cfg.Write _ -> true | _ -> false))

let test_cfg_loop_backedge () =
  let p = parse "var x; thread { k = 0; while (k < 3) { x = 1; } }" in
  let cfg = Cfg.of_program p in
  (* The loop head must be reachable from the body end: some node has a
     successor with a smaller id. *)
  let back = ref false in
  Cfg.iter_nodes
    (fun n ->
      List.iter
        (fun s -> if s <= n.Cfg.id then back := true)
        (Cfg.succs cfg n.Cfg.id))
    cfg;
  check Alcotest.bool "has back edge" true !back

(* --- lockset ---------------------------------------------------------------- *)

let find_node cfg pred =
  let hit = ref None in
  Cfg.iter_nodes
    (fun n -> if !hit = None && pred n then hit := Some n)
    cfg;
  match !hit with Some n -> n | None -> Alcotest.fail "node not found"

let write_of cfg names name =
  find_node cfg (fun n ->
      match n.Cfg.eff with
      | Cfg.Write v -> Velodrome_trace.Names.var_name names v = name
      | _ -> false)

let test_lockset_must () =
  let p =
    parse
      "var a; var b; lock m; thread { sync m { a = 1; } if (1 == 1) { \
       acquire m; b = 1; release m; } else { b = 2; } }"
  in
  let cfg = Cfg.of_program p in
  let ls = Lockset.analyze cfg in
  let names = p.Ast.names in
  let n_a = write_of cfg names "a" in
  check
    Alcotest.(list int)
    "m held at guarded write" [ 0 ]
    (Lockset.locks_held ls n_a.Cfg.id);
  (* The else-branch write holds nothing. *)
  let n_b2 =
    find_node cfg (fun n ->
        match n.Cfg.eff with
        | Cfg.Write v ->
          Velodrome_trace.Names.var_name names v = "b"
          && n.Cfg.site.Cfg.path <> (write_of cfg names "b").Cfg.site.Cfg.path
        | _ -> false)
  in
  check
    Alcotest.(list int)
    "nothing held in else branch" []
    (Lockset.locks_held ls n_b2.Cfg.id)

let test_lockset_join_drops () =
  (* m is held only on one path into the final write, so must-analysis
     may not claim it. *)
  let p =
    parse
      "var x; lock m; thread { if (1 == 1) { acquire m; } k = 0; x = 1; if \
       (1 == 1) { release m; } }"
  in
  let cfg = Cfg.of_program p in
  let ls = Lockset.analyze cfg in
  let n = write_of cfg p.Ast.names "x" in
  check Alcotest.(list int) "join drops m" [] (Lockset.locks_held ls n.Cfg.id)

(* --- mhp -------------------------------------------------------------------- *)

let test_mhp () =
  let b = Builder.create () in
  let x = Builder.var b "x" in
  let outer = Builder.label b "outer" in
  let inner = Builder.label b "inner" in
  Builder.thread b
    [
      Builder.atomic outer
        [ Builder.atomic inner [ Builder.write x (Builder.i 1) ] ];
    ];
  Builder.thread b [ Builder.work 2; Builder.yield ];
  Builder.thread b [ Builder.read (Builder.fresh_reg b) x ];
  let p = Builder.program b in
  let names = p.Ast.names in
  let cfg = Cfg.of_program p in
  let mhp = Mhp.analyze cfg in
  check Alcotest.int "three threads" 3 (Mhp.thread_count mhp);
  check Alcotest.bool "writer thread effectful" true (Mhp.effectful mhp 0);
  check Alcotest.bool "silent thread not effectful" false
    (Mhp.effectful mhp 1);
  check Alcotest.bool "writer MHP reader" true (Mhp.threads mhp 0 2);
  check Alcotest.bool "no MHP with a silent thread" false
    (Mhp.threads mhp 0 1);
  check Alcotest.bool "no MHP with itself" false (Mhp.threads mhp 0 0);
  let w = write_of cfg names "x" in
  check
    Alcotest.(list string)
    "enclosing atomics innermost first" [ "inner"; "outer" ]
    (List.map
       (Velodrome_trace.Names.label_name names)
       (Mhp.enclosing_atomics mhp w.Cfg.id));
  check Alcotest.bool "reachable write" true (Mhp.reachable mhp w.Cfg.id)

(* --- races ------------------------------------------------------------------- *)

let races_of p =
  let cfg = Cfg.of_program p in
  let ls = Lockset.analyze cfg in
  (cfg, Races.analyze p.Ast.names cfg ls (Mhp.analyze cfg))

(* The single-writer/many-reader shape: the writer holds both pair locks,
   each reader holds its own. Every conflicting pair shares a lock — no
   race pair — yet no single lock guards all sites. *)
let pairwise_free_src =
  "var x; lock a; lock b; thread { sync a { sync b { x = 1; } } } thread { \
   sync a { q <- x; } } thread { sync b { q <- x; } }"

let test_races_pairwise_free () =
  let p = parse pairwise_free_src in
  let _, races = races_of p in
  check Alcotest.int "no race pairs" 0 (Races.pair_count races);
  check Alcotest.int "no racy vars" 0 (Races.racy_var_count races);
  check Alcotest.int "three access sites" 3 (Races.access_sites races)

let test_races_pairs () =
  (* Same shape plus an unlocked reader: only the pairs against the
     writer's write appear (read/read does not conflict), and only the
     sites actually in a pair are racy. *)
  let p =
    parse
      "var x; lock a; lock b; thread { sync a { sync b { x = 1; } } } \
       thread { sync a { q <- x; } } thread { q <- x; }"
  in
  let cfg, races = races_of p in
  check Alcotest.int "one race pair" 1 (Races.pair_count races);
  let write_node = write_of cfg p.Ast.names "x" in
  let x =
    match write_node.Cfg.eff with Cfg.Write v -> v | _ -> assert false
  in
  check Alcotest.bool "x is racy" true (Races.racy_var races x);
  let write_site = write_node.Cfg.site in
  check Alcotest.bool "write site is racy" true
    (Races.racy_site races write_site);
  let bare_read =
    find_node cfg (fun n ->
        match n.Cfg.eff with
        | Cfg.Read _ -> n.Cfg.site.Cfg.thread = 2
        | _ -> false)
  in
  let locked_read =
    find_node cfg (fun n ->
        match n.Cfg.eff with
        | Cfg.Read _ -> n.Cfg.site.Cfg.thread = 1
        | _ -> false)
  in
  check Alcotest.bool "bare read is racy" true
    (Races.racy_site races bare_read.Cfg.site);
  check Alcotest.bool "locked read is pair-free" false
    (Races.racy_site races locked_read.Cfg.site);
  let pair = Option.get (Races.witness races write_site) in
  check Alcotest.bool "witness joins write and bare read" true
    (Cfg.site_compare (Races.other_end pair write_site).Races.site
       bare_read.Cfg.site
    = 0)

let test_races_ignore_volatile () =
  let p = parse "volatile v; thread 2 { v = 1; q <- v; }" in
  let _, races = races_of p in
  check Alcotest.int "volatiles never race statically" 0
    (Races.pair_count races)

(* --- movers ----------------------------------------------------------------- *)

let movers_of ?rule p =
  let cfg = Cfg.of_program p in
  let ls = Lockset.analyze cfg in
  let mhp = Mhp.analyze cfg in
  Movers.analyze ?rule p.Ast.names cfg ls (Races.analyze p.Ast.names cfg ls mhp)

let klass_at p mv cfg name kind =
  let n =
    find_node cfg (fun n ->
        match (n.Cfg.eff, kind) with
        | Cfg.Read v, `R | Cfg.Write v, `W ->
          Velodrome_trace.Names.var_name p.Ast.names v = name
        | _ -> false)
  in
  Option.get (Movers.at_site mv n.Cfg.site)

let test_mover_classes () =
  let p =
    parse
      "var g; var ro = 5; var u; var p; volatile w; lock m; thread 2 { sync \
       m { g = 1; } a = ro; u = 1; w = 1; } thread { p = 1; q <- p; }"
  in
  (* Declare p shared but touched by one thread only. *)
  let cfg = Cfg.of_program p in
  let mv = movers_of p in
  (match klass_at p mv cfg "g" `W with
  | Movers.Both (Movers.Guarded _) -> ()
  | k ->
    Alcotest.failf "g: %a"
      (fun ppf -> Movers.pp_klass p.Ast.names ppf)
      k);
  check Alcotest.bool "ro is read-only both-mover" true
    (klass_at p mv cfg "ro" `R = Movers.Both Movers.Read_only);
  check Alcotest.bool "u is racy non-mover" true
    (match klass_at p mv cfg "u" `W with
    | Movers.Non (Movers.Racy _) -> true
    | _ -> false);
  check Alcotest.bool "volatile is non-mover" true
    (klass_at p mv cfg "w" `W = Movers.Non Movers.Volatile_access);
  (* The legacy rule still reports the coarse witness. *)
  let mv_g = movers_of ~rule:Movers.Global_guard p in
  check Alcotest.bool "u is unguarded under the global rule" true
    (klass_at p mv_g cfg "u" `W = Movers.Non Movers.Unguarded)

let test_mover_thread_local () =
  let p = parse "var p; var u; thread { p = 1; } thread { u = 1; }" in
  let cfg = Cfg.of_program p in
  let mv = movers_of p in
  check Alcotest.bool "single-thread var is both-mover" true
    (klass_at p mv cfg "p" `W = Movers.Both Movers.Thread_local)

let test_mover_race_free () =
  (* The pairwise rule proves the single-writer/many-reader shape that
     has no global guard; the legacy rule cannot. *)
  let p = parse pairwise_free_src in
  let cfg = Cfg.of_program p in
  let mv = movers_of p in
  let write_node = write_of cfg p.Ast.names "x" in
  let x =
    match write_node.Cfg.eff with Cfg.Write v -> v | _ -> assert false
  in
  check Alcotest.bool "write is race-free both-mover" true
    (Movers.at_site mv write_node.Cfg.site
    = Some (Movers.Both Movers.Race_free));
  check Alcotest.bool "race-free written var is suppressible" true
    (Movers.suppressible mv x);
  let mv_g = movers_of ~rule:Movers.Global_guard p in
  check Alcotest.bool "global rule keeps it a non-mover" true
    (Movers.at_site mv_g write_node.Cfg.site
    = Some (Movers.Non Movers.Unguarded));
  check Alcotest.bool "not suppressible under the global rule" false
    (Movers.suppressible mv_g x)

let test_mover_per_site () =
  (* Per-site precision: one variable, a guarded reader and a bare
     reader. Only the pair (write, bare read) races, so the guarded read
     keeps its both-mover class while the bare read turns non-mover with
     the write as witness. *)
  let p =
    parse
      "var x; lock a; thread { sync a { x = 1; } } thread { sync a { q <- \
       x; } } thread { q <- x; }"
  in
  let cfg = Cfg.of_program p in
  let mv = movers_of p in
  let locked_read =
    find_node cfg (fun n ->
        match n.Cfg.eff with
        | Cfg.Read _ -> n.Cfg.site.Cfg.thread = 1
        | _ -> false)
  in
  let bare_read =
    find_node cfg (fun n ->
        match n.Cfg.eff with
        | Cfg.Read _ -> n.Cfg.site.Cfg.thread = 2
        | _ -> false)
  in
  let write_node = write_of cfg p.Ast.names "x" in
  check Alcotest.bool "guarded read stays a both-mover" true
    (match Movers.at_site mv locked_read.Cfg.site with
    | Some (Movers.Both _) -> true
    | _ -> false);
  check Alcotest.bool "bare read races with the write" true
    (Movers.at_site mv bare_read.Cfg.site
    = Some (Movers.Non (Movers.Racy write_node.Cfg.site)));
  check Alcotest.bool "write races too" true
    (match Movers.at_site mv write_node.Cfg.site with
    | Some (Movers.Non (Movers.Racy _)) -> true
    | _ -> false)

let test_mover_lock_ops () =
  let p = parse "var g; lock m; thread 2 { sync m { sync m { g = 1; } } }" in
  let cfg = Cfg.of_program p in
  let mv = movers_of p in
  (* sync splices inline, so the two acquires are siblings; thread 0's
     come first in site order. *)
  let acqs = ref [] in
  Cfg.iter_nodes
    (fun n ->
      match n.Cfg.eff with
      | Cfg.Acquire _ when n.Cfg.site.Cfg.thread = 0 ->
        acqs := n.Cfg.site :: !acqs
      | _ -> ())
    cfg;
  match List.sort Cfg.site_compare !acqs with
  | [ outer; inner ] ->
    check Alcotest.bool "outer acquire is right-mover" true
      (Movers.at_site mv outer = Some Movers.Right);
    check Alcotest.bool "re-entrant acquire is both-mover" true
      (Movers.at_site mv inner = Some (Movers.Both Movers.Reentrant))
  | l -> Alcotest.failf "expected 2 acquires in thread 0, got %d" (List.length l)

(* --- reduce ----------------------------------------------------------------- *)

let block_of src label =
  let p = parse src in
  let st = Statics.analyze p in
  List.find (fun b -> b.Statics.name = label) (Statics.blocks st)

let verdict_of src label = (block_of src label).Statics.verdict

let proved v =
  match v with Statics.Proved_atomic _ -> true | _ -> false

(* The Lipton-only view of a verdict, for the reduction-specific tests:
   proved by Lipton, or the reduction-failure reasons. *)
let lipton_proved v =
  match v with Statics.Proved_atomic Statics.Lipton -> true | _ -> false

let test_reduce_proved () =
  check Alcotest.bool "single sync proved" true
    (lipton_proved
       (verdict_of
          "var g; lock m; thread 2 { atomic \"a\" { sync m { g = g + 1; } } }"
          "a"));
  check Alcotest.bool "loop inside sync proved" true
    (lipton_proved
       (verdict_of
          "var g; lock m; thread 2 { atomic \"a\" { sync m { k = 0; while \
           (k < 3) { g = g + 1; k = k + 1; } } } }"
          "a"))

let test_reduce_unknown () =
  check Alcotest.bool "two racy non-movers" false
    (proved
       (verdict_of "var x; var y; thread 2 { atomic \"a\" { x = 1; y = 1; } }"
          "a"));
  (* Two critical sections of the same lock: a right-mover after a
     left-mover, and indeed not atomic (check-then-act window). *)
  check Alcotest.bool "sync; sync is unknown" false
    (proved
       (verdict_of
          "var g; lock m; thread 2 { atomic \"a\" { sync m { g = 1; } sync \
           m { g = 2; } } }"
          "a"));
  (* A loop whose body opens and closes the lock re-enters the automaton
     in the post phase on the second iteration. *)
  check Alcotest.bool "loop of syncs is unknown" false
    (proved
       (verdict_of
          "var g; lock m; thread 2 { atomic \"a\" { k = 0; while (k < 3) { \
           sync m { g = 1; } k = k + 1; } } }"
          "a"))

let test_reduce_single_non_mover () =
  check Alcotest.bool "one non-mover commit point proved" true
    (lipton_proved
       (verdict_of "var x; thread 2 { atomic \"a\" { x = 1; } }" "a"))

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let test_reduce_while_acquire_release () =
  (* Regression for the While fixpoint: a body that acquires AND releases
     the lock re-enters the loop head in the post phase, so the join at
     the head must converge (not oscillate) and flag the second
     iteration's acquire as a right-mover past the commit point. *)
  let b =
    block_of
      "var g; lock m; thread 2 { atomic \"a\" { k = 0; while (k < 2) { \
       acquire m; g = g + 1; release m; k = k + 1; } } }"
      "a"
  in
  check Alcotest.bool "acquire/release loop body is unknown" false
    (lipton_proved b.Statics.verdict);
  check Alcotest.bool "the looping acquire is the reason" true
    (List.exists
       (fun (r : Reduce.reason) ->
         contains r.Reduce.detail "right-mover after the commit point")
       b.Statics.lipton_reasons);
  (* The fixpoint must not poison the sound variant: hoisting the
     acquire/release around the loop keeps the block proved. *)
  check Alcotest.bool "hoisted acquire/release still proved" true
    (lipton_proved
       (verdict_of
          "var g; lock m; thread 2 { atomic \"a\" { acquire m; k = 0; \
           while (k < 2) { g = g + 1; k = k + 1; } release m; } }"
          "a"))

let test_reduce_edge_cases () =
  (* Phase-set edge cases of the reduction automaton. A block with only
     silent statements never leaves the pre phase. *)
  check Alcotest.bool "work/yield-only block proved" true
    (lipton_proved
       (verdict_of "thread { atomic \"a\" { work 2; yield; } }" "a"));
  check Alcotest.bool "empty block proved" true
    (lipton_proved (verdict_of "thread { atomic \"a\" { skip; } }" "a"));
  (* If nested in While with the critical section on one branch only:
     the join at the loop head mixes an iteration that crossed the
     commit point with one that did not, and must still converge and
     flag the next iteration's acquire. *)
  let b =
    block_of
      "var g; lock m; thread 2 { atomic \"a\" { k = 0; while (k < 2) { if \
       (k < 1) { acquire m; g = g + 1; release m; } else { skip; } k = k + \
       1; } } }"
      "a"
  in
  check Alcotest.bool "one-branch acquire in loop is not lipton-proved"
    false
    (lipton_proved b.Statics.verdict);
  check Alcotest.bool "reasons name the looping acquire" true
    (List.exists
       (fun (r : Reduce.reason) ->
         contains r.Reduce.detail "right-mover after the commit point")
       b.Statics.lipton_reasons)

(* --- the transactional conflict graph --------------------------------------- *)

module Txgraph = Velodrome_statics.Txgraph

let test_txgraph_verdicts () =
  (* A consistently guarded single-sync block: its only cross-thread
     edges are the lock-order edges, and a cycle arriving at the acquire
     has no earlier op to have departed from. *)
  (match
     verdict_of
       "var g; lock m; thread 2 { atomic \"a\" { sync m { g = g + 1; } } }"
       "a"
   with
  | Statics.Proved_atomic _ -> ()
  | _ -> Alcotest.fail "guarded single sync not proved");
  (* sync;sync: the classic check-then-act window. The graph must find
     the cycle out through the first release, around the other thread's
     critical section, and back into the second acquire. *)
  (match
     verdict_of
       "var g; lock m; thread 2 { atomic \"a\" { sync m { g = 1; } sync m \
        { g = 2; } } }"
       "a"
   with
  | Statics.May_violate w ->
    check Alcotest.bool "witness path is non-empty" true
      (w.Txgraph.path <> [])
  | _ -> Alcotest.fail "sync;sync not may-violate");
  (* A loop of syncs releases the lock mid-block on every iteration —
     the multiset shape — and must also be flagged. *)
  match
    verdict_of
      "var g; lock m; thread 2 { atomic \"a\" { k = 0; while (k < 3) { \
       sync m { g = 1; } k = k + 1; } } }"
      "a"
  with
  | Statics.May_violate _ -> ()
  | _ -> Alcotest.fail "loop of syncs not may-violate"

let test_txgraph_snapshot_patterns () =
  (* The cycle-freedom showcase: racy multi-read blocks Lipton rejects
     but no dynamic cycle can enter. One dedicated single-write writer
     per cell and a single reader block over those cells. *)
  (match
     verdict_of
       "var a; var b; thread { a = 1; } thread { b = 1; } thread { atomic \
        \"snap\" { ra <- a; rb <- b; } }"
       "snap"
   with
  | Statics.Proved_atomic Statics.Cycle_free -> ()
  | Statics.Proved_atomic Statics.Lipton ->
    Alcotest.fail "snapshot should not be lipton-provable"
  | _ -> Alcotest.fail "snapshot reader not proved cycle-free");
  (* One-way publish: data then flag from one writer thread, checked
     flag-then-data by a single gate reader. *)
  (match
     verdict_of
       "var d; var f; thread { d = 1; f = 1; } thread { atomic \"gate\" { \
        rf <- f; rd <- d; } }"
       "gate"
   with
  | Statics.Proved_atomic Statics.Cycle_free -> ()
  | _ -> Alcotest.fail "publish gate reader not proved cycle-free");
  (* Both perturbations that make the pattern genuinely violable must
     stay may-violate: one writer covering two cells (its program order
     gives the torn snapshot)... *)
  (match
     verdict_of
       "var a; var b; thread { a = 1; b = 1; } thread { atomic \"snap\" { \
        ra <- a; rb <- b; } }"
       "snap"
   with
  | Statics.May_violate _ -> ()
  | _ -> Alcotest.fail "single-writer torn snapshot not may-violate");
  (* ...and a second reader block over the same cells (old/new vs
     new/old is unserializable). *)
  match
    verdict_of
      "var a; var b; thread { a = 1; } thread { b = 1; } thread 2 { atomic \
       \"snap\" { ra <- a; rb <- b; } }"
      "snap"
  with
  | Statics.May_violate _ -> ()
  | _ -> Alcotest.fail "two-reader snapshot not may-violate"

let test_progen_snapshot_family () =
  (* The generated snapshot family must appear with useful frequency and
     every instance must be proved by cycle-freedom (never by Lipton —
     its reads are racy by construction). *)
  let found = ref 0 in
  for seed = 1 to 30 do
    let p, info =
      Progen.generate_info (Velodrome_util.Rng.create seed)
    in
    if List.mem "snapshot" info.Progen.families then begin
      incr found;
      let st = Statics.analyze p in
      List.iter
        (fun (b : Statics.block) ->
          if
            b.Statics.name = "gen.snap.collect"
            || b.Statics.name = "gen.snap.check"
          then
            match b.Statics.verdict with
            | Statics.Proved_atomic Statics.Cycle_free -> ()
            | _ ->
              Alcotest.failf "seed %d: %s not proved cycle-free" seed
                b.Statics.name)
        (Statics.blocks st)
    end
  done;
  check Alcotest.bool "snapshot family occurs" true (!found >= 10)

(* --- value analysis ---------------------------------------------------------- *)

let itv = Alcotest.testable (Fmt.of_to_string Values.itv_to_string) ( = )

let test_values_arith () =
  let c = Values.const in
  (* Division and modulo by a zero singleton evaluate to 0, exactly as
     Ast.eval does. *)
  check Alcotest.int "eval div by zero" 0
    (Ast.eval (Array.make 4 0) (Ast.Div (Ast.Int 6, Ast.Int 0)));
  check Alcotest.int "eval mod by zero" 0
    (Ast.eval (Array.make 4 0) (Ast.Mod (Ast.Int 6, Ast.Int 0)));
  check itv "div by zero" (c 0) (Values.div (c 6) (c 0));
  check itv "mod by zero" (c 0) (Values.mod_ (c 6) (c 0));
  check itv "exact div" (c (-3)) (Values.div (c 7) (c (-2)));
  check itv "add" (Values.interval 3 7)
    (Values.add (Values.interval 1 4) (Values.interval 2 3));
  check itv "mul signs" (Values.interval (-8) 8)
    (Values.mul (Values.interval (-2) 2) (Values.interval (-4) 4));
  (* Interval division covering divisor 0 stays sound: result magnitude
     bounded by the dividend's. *)
  let d = Values.div (Values.interval 0 10) (Values.interval (-1) 1) in
  check Alcotest.bool "wide div covers quotients" true
    (List.for_all (fun q -> Values.mem q d) [ -10; -5; 0; 5; 10 ]);
  (* Near the magnitude limit arithmetic stays sound: the product of two
     in-range operands cannot wrap, and its huge result is either kept
     exactly or washed to infinity — never mis-claimed. Out-of-range
     inputs give up entirely. *)
  let huge = Values.mul (c (Values.limit - 1)) (c (Values.limit - 1)) in
  check Alcotest.bool "huge product contained" true
    (Values.mem ((Values.limit - 1) * (Values.limit - 1)) huge);
  check itv "out-of-range input gives top" Values.top
    (Values.add huge (c 1));
  check Alcotest.bool "mod sign follows dividend" true
    (Values.leq
       (Values.mod_ (Values.interval 0 100) (c 7))
       (Values.interval 0 6))

let test_values_widening_terminates () =
  (* A self-incrementing loop that never exits: the head fixpoint must
     widen to termination, and the exit arm is provably dead. *)
  let p = parse "var x; thread { k = 0; while (k >= 0) { k = k + 1; } x = 1; }" in
  let v = Values.analyze p in
  check Alcotest.bool "loop-exit arm dead" true
    (List.exists
       (fun (d : Values.dead_branch) -> d.Values.d_arm = Values.Loop_exit)
       (Values.dead_branches v));
  (* The write after the loop is unreachable. *)
  check Alcotest.bool "code after infinite loop dead" true
    (Values.dead_site v { Cfg.thread = 0; path = [ 2 ] });
  (* A bounded counted loop stays exact: after [while (k < 3) k++] the
     counter is exactly 3 (no premature widening). *)
  let p2 = parse "var x; thread { k = 0; while (k < 3) { k = k + 1; } x = k; }" in
  let v2 = Values.analyze p2 in
  (match Values.fact_at v2 { Cfg.thread = 0; path = [ 2 ] } with
  | Some f -> check itv "bounded loop exact" (Values.const 3) f.Values.itv
  | None -> Alcotest.fail "no fact at post-loop write");
  check Alcotest.int "bounded loop: nothing dead" 0 (Values.dead_site_count v2)

let test_values_tid_dispatch () =
  (* Two threads share one body dispatching on the tid register: each
     replica keeps exactly one arm. *)
  let p =
    parse
      "var a; var b; thread { if (tid == 0) { a = 1; } else { b = 2; } } \
       thread { if (tid == 0) { a = 1; } else { b = 2; } }"
  in
  let v = Values.analyze p in
  check Alcotest.bool "thread 0 else-arm dead" true
    (Values.dead_site v { Cfg.thread = 0; path = [ 0; 1; 0 ] });
  check Alcotest.bool "thread 1 then-arm dead" true
    (Values.dead_site v { Cfg.thread = 1; path = [ 0; 0; 0 ] });
  check Alcotest.bool "thread 0 then-arm live" false
    (Values.dead_site v { Cfg.thread = 0; path = [ 0; 0; 0 ] });
  check Alcotest.int "two dead branches" 2 (Values.dead_branch_count v);
  (* Variable invariants only join live writes plus the initial value. *)
  check Alcotest.bool "a invariant covers 0 and 1" true
    (Values.mem 0 (Values.var_interval v (Velodrome_trace.Ids.Var.of_int 0)));
  (* Branch refinement: reading a variable then branching on it refines
     the register in each arm (x's invariant is [1..7], so the then-arm
     pins k to [1..2]). *)
  let p2 =
    parse
      "var x = 1; var y; thread { k = x; if (k < 3) { y = k; } else { y = 7; \
       } } thread { x = 7; }"
  in
  let v2 = Values.analyze p2 in
  (* [k = x] parses as a prelude read plus a register copy, so the [if]
     sits at top-level index 2. *)
  (match Values.fact_at v2 { Cfg.thread = 0; path = [ 2; 0; 0 ] } with
  | Some f ->
    check itv "then-arm write refined" (Values.interval 1 2) f.Values.itv
  | None -> Alcotest.fail "no fact at refined write")

let test_dispatch_flip () =
  (* The acceptance example for the whole pass: the dispatch workload is
     May_violate on both blocks without value analysis and fully proved
     with it, with strictly fewer static race pairs. *)
  let program =
    (Option.get (Workload.find "dispatch")).Workload.build Workload.Small
  in
  let off = Statics.analyze ~values:false program in
  let on_ = Statics.analyze program in
  check Alcotest.int "values-off: both blocks may-violate" 2
    (Statics.may_violate_count off);
  check Alcotest.int "values-off: nothing proved" 0 (Statics.proved_count off);
  check Alcotest.int "values-on: both blocks proved" 2
    (Statics.proved_count on_);
  check Alcotest.int "values-on: update proved by lipton" 1
    (Statics.proved_lipton_count on_);
  check Alcotest.int "values-on: scan proved by cycle-freedom" 1
    (Statics.proved_cycle_free_count on_);
  check Alcotest.bool "race pairs strictly reduced" true
    (Statics.race_pair_count on_ < Statics.race_pair_count off);
  check Alcotest.bool "dead sites found" true (Statics.dead_site_count on_ > 0)

let test_progen_dispatch_family () =
  (* The generated tid-dispatch family must occur and flip the same way
     the workload does. *)
  let found = ref 0 in
  for seed = 1 to 30 do
    let p, info = Progen.generate_info (Velodrome_util.Rng.create seed) in
    if List.mem "dispatch" info.Progen.families then begin
      incr found;
      let on_ = Statics.analyze p in
      let off = Statics.analyze ~values:false p in
      List.iter
        (fun (b : Statics.block) ->
          if
            b.Statics.name = "gen.disp.update"
            || b.Statics.name = "gen.disp.scan"
          then begin
            (match b.Statics.verdict with
            | Statics.Proved_atomic _ -> ()
            | _ ->
              Alcotest.failf "seed %d: %s not proved with values on" seed
                b.Statics.name);
            if Statics.proved off b.Statics.label then
              Alcotest.failf "seed %d: %s proved even without values" seed
                b.Statics.name
          end)
        (Statics.blocks on_)
    end
  done;
  check Alcotest.bool "dispatch family occurs" true (!found >= 10)

(* --- whole-pipeline sanity over the workload suite -------------------------- *)

let test_workloads_analyze () =
  List.iter
    (fun w ->
      let st = Statics.analyze (w.Workload.build Workload.Small) in
      check Alcotest.bool
        (w.Workload.name ^ " has blocks")
        true
        (Statics.block_count st > 0))
    Workload.all;
  (* The raja workload is fully guarded; the multiset workload is the
     paper's canonical violation, so it must keep unproved blocks. *)
  let raja =
    Statics.analyze
      ((List.find (fun w -> w.Workload.name = "raja") Workload.all)
         .Workload.build Workload.Small)
  in
  check Alcotest.int "raja fully proved" (Statics.block_count raja)
    (Statics.proved_count raja);
  let multiset =
    Statics.analyze
      ((List.find (fun w -> w.Workload.name = "multiset") Workload.all)
         .Workload.build Workload.Small)
  in
  check Alcotest.bool "multiset keeps unproved blocks" true
    (Statics.proved_count multiset < Statics.block_count multiset)

let test_handoff_precision () =
  (* The acceptance example for the pairwise rule: the handoff workload
     is fully proved pairwise yet completely unprovable under the legacy
     global-guard rule, because the payload has per-reader pair locks and
     no common guard. *)
  let program =
    (Option.get (Workload.find "handoff")).Workload.build Workload.Small
  in
  let st = Statics.analyze program in
  let st_global = Statics.analyze ~rule:Movers.Global_guard program in
  check Alcotest.int "handoff has no race pairs" 0
    (Statics.race_pair_count st);
  check Alcotest.int "pairwise proves both methods"
    (Statics.block_count st) (Statics.proved_count st);
  (* The mover-rule delta is about Lipton precision only: cycle-freedom
     is rule-independent and may well prove what Global_guard cannot. *)
  check Alcotest.int "global rule lipton-proves neither" 0
    (Statics.proved_lipton_count st_global)

(* --- generated programs ------------------------------------------------------ *)

let generate seed =
  Progen.generate (Velodrome_util.Rng.create seed)

let prop_generated_wellformed =
  QCheck.Test.make ~count:300 ~name:"progen: well-formed programs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = generate seed in
      Velodrome_lang.Check.check_program p = Ok ()
      &&
      (* and they terminate without deadlock under round-robin *)
      let res =
        Run.run
          ~config:{ Run.default_config with policy = Run.Round_robin }
          p []
      in
      not res.Run.deadlocked)

(* The three schedule families of the soundness gate. *)
let gate_configs seed =
  [
    { Run.default_config with policy = Run.Round_robin };
    { Run.default_config with policy = Run.Random seed };
    { Run.default_config with policy = Run.Random seed; adversarial = true };
  ]

(* Run dynamic Velodrome plus the two race detectors; return every label
   the blame analysis refuted and every variable Eraser or the
   happens-before detector warned about. *)
let dynamic_results program config =
  let names = program.Ast.names in
  let backends =
    [
      Backend.make (Velodrome_core.Engine.backend ()) names;
      Backend.make (Velodrome_eraser.Eraser.backend ()) names;
      Backend.make (Velodrome_hbrace.Hbrace.backend ()) names;
    ]
  in
  let res = Run.run ~config program backends in
  let refuted =
    List.concat_map (fun (w : Warning.t) -> w.Warning.refuted) res.Run.warnings
  in
  let race_vars =
    List.filter_map
      (fun (w : Warning.t) ->
        match (w.Warning.kind, w.Warning.var) with
        | Warning.Race, Some x -> Some x
        | _ -> None)
      res.Run.warnings
  in
  (refuted, race_vars)

let statically_may_violate st l =
  List.exists
    (fun b ->
      Velodrome_trace.Ids.Label.equal b.Statics.label l
      &&
      match b.Statics.verdict with
      | Statics.May_violate _ -> true
      | _ -> false)
    (Statics.blocks st)

(* Both directions of the soundness gate: no proved block is ever refuted
   by dynamic Velodrome and every refuted block is statically may-violate
   (dynamic blame is a real non-serializable cycle, and the static graph
   over-approximates every dynamic edge, so a blamed block that is
   cycle-free — or even budget-exhausted, at these program sizes — is a
   statics bug); and every dynamic race warning is covered by a static
   race pair on the same variable (a pair-free variable is race-free on
   every execution).

   The value-analysis obligations ride along on an execution hook: no
   instruction may ever run at a statically-dead site, and every value a
   [Local]/[Read]/[Write] produces must lie within the site's static
   interval fact. *)
let value_observer vals violation =
  Option.map
    (fun v (o : Interp.obs) ->
      if !violation = None then begin
        let site = { Cfg.thread = o.Interp.o_thread; path = o.Interp.o_path } in
        if Values.dead_site v site then
          violation :=
            Some
              (Printf.sprintf "instruction executed at dead site %s"
                 (Cfg.site_to_string site))
        else
          match (o.Interp.o_value, Values.fact_at v site) with
          | Some x, Some f when not (Values.mem x f.Values.itv) ->
            violation :=
              Some
                (Printf.sprintf "value %d at %s outside static interval %s" x
                   (Cfg.site_to_string site)
                   (Values.itv_to_string f.Values.itv))
          | _ -> ()
      end)
    vals

let assert_gate what program st =
  let races = Statics.races st in
  let vals = Statics.values st in
  List.iteri
    (fun k config ->
      let violation = ref None in
      let config =
        { config with Run.observe = value_observer vals violation }
      in
      let refuted, race_vars = dynamic_results program config in
      (match !violation with
      | Some msg -> Alcotest.failf "%s: %s (schedule %d)" what msg k
      | None -> ());
      List.iter
        (fun l ->
          if Statics.proved st l then
            Alcotest.failf
              "%s: statically-proved block %s refuted dynamically (schedule \
               %d)"
              what
              (Velodrome_trace.Names.label_name program.Ast.names l)
              k
          else if not (statically_may_violate st l) then
            Alcotest.failf
              "%s: dynamically blamed block %s is not statically \
               may-violate (schedule %d)"
              what
              (Velodrome_trace.Names.label_name program.Ast.names l)
              k)
        refuted;
      List.iter
        (fun x ->
          if not (Velodrome_statics.Races.racy_var races x) then
            Alcotest.failf
              "%s: dynamic race on %s covered by no static race pair \
               (schedule %d)"
              what
              (Velodrome_trace.Names.var_name program.Ast.names x)
              k)
        race_vars)
    (gate_configs 7)

let prop_gate_generated =
  QCheck.Test.make ~count:300
    ~name:"gate: dynamic blame matches static verdicts"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = generate seed in
      let st = Statics.analyze p in
      assert_gate (Printf.sprintf "seed %d" seed) p st;
      true)

let test_gate_workloads () =
  List.iter
    (fun w ->
      let program = w.Workload.build Workload.Small in
      let st = Statics.analyze program in
      assert_gate w.Workload.name program st)
    Workload.all

(* --- the filter differential ------------------------------------------------- *)

let six_backends names =
  [
    ("velodrome", fun () -> Backend.make (Velodrome_core.Engine.backend ()) names);
    ( "velodrome-basic",
      fun () -> Backend.make (Velodrome_core.Basic.backend ()) names );
    ( "atomizer",
      fun () -> Backend.make (Velodrome_atomizer.Atomizer.backend ()) names );
    ("eraser", fun () -> Backend.make (Velodrome_eraser.Eraser.backend ()) names);
    ("hb", fun () -> Backend.make (Velodrome_hbrace.Hbrace.backend ()) names);
    ( "fasttrack",
      fun () -> Backend.make (Velodrome_hbrace.Fasttrack.backend ()) names );
  ]

(* Warnings projected to comparable keys, excluding those attributed to
   statically-proved blocks (the filter is allowed — expected — to
   silence those). The analysis name is dropped: the filtered run's
   backend carries a "+static" suffix. *)
let projected st names warnings =
  Warning.dedup_by_label warnings
  |> List.filter_map (fun (w : Warning.t) ->
         match w.Warning.label with
         | Some l when Statics.proved st l -> None
         | label ->
           Some
             (Printf.sprintf "%s label=%s var=%s blamed=%b"
                (Warning.kind_to_string w.Warning.kind)
                (match label with
                | Some l -> Velodrome_trace.Names.label_name names l
                | None -> "-")
                (match w.Warning.var with
                | Some v -> Velodrome_trace.Names.var_name names v
                | None -> "-")
                w.Warning.blamed))
  |> List.sort compare

let assert_filter_differential what program st =
  let names = program.Ast.names in
  let proved, suppress_var = Statics.filter_predicates st in
  let config = { Run.default_config with policy = Run.Random 11 } in
  List.iter
    (fun (bname, mk) ->
      let plain =
        (Run.run ~config program [ mk () ]).Run.warnings
      in
      let filtered =
        (Run.run ~config program
           [ Filters.static_atomic ~proved ~suppress_var (mk ()) ])
          .Run.warnings
      in
      check
        Alcotest.(list string)
        (Printf.sprintf "%s/%s warnings unchanged outside proved blocks" what
           bname)
        (projected st names plain)
        (projected st names filtered))
    (six_backends names)

let test_filter_differential_workloads () =
  List.iter
    (fun w ->
      let program = w.Workload.build Workload.Small in
      assert_filter_differential w.Workload.name program
        (Statics.analyze program))
    Workload.all

let prop_filter_differential_generated =
  QCheck.Test.make ~count:60
    ~name:"filter differential: six back-ends on generated programs"
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let p = generate seed in
      assert_filter_differential
        (Printf.sprintf "seed %d" seed)
        p (Statics.analyze p);
      true)

let suite =
  ( "statics",
    [
      Alcotest.test_case "cfg shapes" `Quick test_cfg_shapes;
      Alcotest.test_case "cfg loop back edge" `Quick test_cfg_loop_backedge;
      Alcotest.test_case "lockset must" `Quick test_lockset_must;
      Alcotest.test_case "lockset join drops" `Quick test_lockset_join_drops;
      Alcotest.test_case "mhp" `Quick test_mhp;
      Alcotest.test_case "races pairwise-free" `Quick
        test_races_pairwise_free;
      Alcotest.test_case "races pairs" `Quick test_races_pairs;
      Alcotest.test_case "races ignore volatile" `Quick
        test_races_ignore_volatile;
      Alcotest.test_case "mover classes" `Quick test_mover_classes;
      Alcotest.test_case "mover thread-local" `Quick test_mover_thread_local;
      Alcotest.test_case "mover race-free" `Quick test_mover_race_free;
      Alcotest.test_case "mover per-site" `Quick test_mover_per_site;
      Alcotest.test_case "mover lock ops" `Quick test_mover_lock_ops;
      Alcotest.test_case "reduce proved" `Quick test_reduce_proved;
      Alcotest.test_case "reduce unknown" `Quick test_reduce_unknown;
      Alcotest.test_case "reduce commit point" `Quick
        test_reduce_single_non_mover;
      Alcotest.test_case "reduce edge cases" `Quick test_reduce_edge_cases;
      Alcotest.test_case "txgraph verdicts" `Quick test_txgraph_verdicts;
      Alcotest.test_case "txgraph snapshot patterns" `Quick
        test_txgraph_snapshot_patterns;
      Alcotest.test_case "progen snapshot family" `Quick
        test_progen_snapshot_family;
      Alcotest.test_case "values arithmetic" `Quick test_values_arith;
      Alcotest.test_case "values widening terminates" `Quick
        test_values_widening_terminates;
      Alcotest.test_case "values tid dispatch" `Quick test_values_tid_dispatch;
      Alcotest.test_case "dispatch verdict flip" `Quick test_dispatch_flip;
      Alcotest.test_case "progen dispatch family" `Quick
        test_progen_dispatch_family;
      Alcotest.test_case "reduce while acquire/release" `Quick
        test_reduce_while_acquire_release;
      Alcotest.test_case "workloads analyze" `Quick test_workloads_analyze;
      Alcotest.test_case "handoff precision" `Quick test_handoff_precision;
      QCheck_alcotest.to_alcotest prop_generated_wellformed;
      QCheck_alcotest.to_alcotest prop_gate_generated;
      Alcotest.test_case "gate: workloads" `Quick test_gate_workloads;
      Alcotest.test_case "filter differential: workloads" `Quick
        test_filter_differential_workloads;
      QCheck_alcotest.to_alcotest prop_filter_differential_generated;
    ] )
