(* Shared helpers for the test suites: compact trace construction and
   QCheck arbitraries over well-formed traces. *)

open Velodrome_trace
open Velodrome_trace.Ids
open Velodrome_util

let t0 = Tid.of_int 0
let t1 = Tid.of_int 1
let t2 = Tid.of_int 2
let x = Var.of_int 0
let y = Var.of_int 1
let z = Var.of_int 2
let m = Lock.of_int 0
let n = Lock.of_int 1
let l0 = Label.of_int 0
let l1 = Label.of_int 1
let l2 = Label.of_int 2

let rd t v = Op.Read (t, v)
let wr t v = Op.Write (t, v)
let acq t l = Op.Acquire (t, l)
let rel t l = Op.Release (t, l)
let bg t l = Op.Begin (t, l)
let en t = Op.End t

(* QCheck generator of well-formed traces driven by Gen.run; the QCheck
   shrinker is not useful on whole traces, so we rely on small sizes. *)
let trace_arbitrary cfg =
  QCheck.make
    ~print:(fun tr -> Format.asprintf "%a" Trace.pp tr)
    (QCheck.Gen.map
       (fun seed -> Gen.run (Rng.create seed) cfg)
       (QCheck.Gen.int_bound 1_000_000))

let qsuite name cells =
  (name, List.map (QCheck_alcotest.to_alcotest ~long:false) cells)

(* Run a trace through the optimized engine and return it. *)
let run_engine ?config trace =
  let names = Names.create () in
  let eng = Velodrome_core.Engine.create ?config names in
  List.iter (Velodrome_core.Engine.on_event eng)
    (Event.of_ops (Trace.to_list trace));
  Velodrome_core.Engine.finish eng;
  eng

let run_basic ?config trace =
  let names = Names.create () in
  let eng = Velodrome_core.Basic.create ?config names in
  List.iter (Velodrome_core.Basic.on_event eng)
    (Event.of_ops (Trace.to_list trace));
  Velodrome_core.Basic.finish eng;
  eng

let run_aero trace =
  let names = Names.create () in
  let eng = Velodrome_core.Aero.create names in
  List.iter (Velodrome_core.Aero.on_event eng)
    (Event.of_ops (Trace.to_list trace));
  Velodrome_core.Aero.finish eng;
  eng

(* --- cross-back-end differential plumbing ----------------------------------

   One projection and one runner shared by every suite that replays the
   same events through several back-ends and diffs the warnings
   (test_backends, test_stream, regressions). *)

open Velodrome_analysis

(* Everything that identifies a warning except the rendered dot graph. *)
let project_warning (w : Warning.t) =
  ( w.Warning.analysis,
    w.Warning.kind,
    Option.map Tid.to_int w.Warning.tid,
    Option.map Label.to_int w.Warning.label,
    Option.map Var.to_int w.Warning.var,
    w.Warning.message,
    w.Warning.index,
    w.Warning.blamed )

(* Feed a list of ops through one packaged back-end. *)
let feed (module B : Backend.S) ?(names = Names.create ()) ops =
  let state = B.create names in
  List.iter (B.on_event state) (Event.of_ops ops);
  B.finish state;
  B.warnings state

(* Replay a whole trace through one packaged back-end; projected
   warnings in report order. *)
let trace_warnings mk tr =
  let names = Names.create () in
  List.map project_warning (Backend.run_trace [ Backend.make (mk ()) names ] tr)

(* Run one trace across N packaged back-ends independently and pair each
   registry name with its projected warnings — the combinator behind
   every "diff the back-ends" test. *)
let diff_backends backends tr =
  List.map (fun (name, mk) -> (name, trace_warnings mk tr)) backends

(* --- the sound-and-complete engine trio -------------------------------------

   Aero and Basic must agree warning-for-warning (same label, thread,
   index and message; only the analysis name differs); the optimized
   engine's blame pass attributes labels differently by design, so it
   participates through the shared verdict and first-violation index. *)

let strip_analysis (_, kind, tid, label, var, message, index, blamed) =
  (kind, tid, label, var, message, index, blamed)

type trio = {
  verdict : bool;
  first_index : int option;
  aero_warnings : (Warning.kind * int option * int option * int option * string * int * bool) list;
  basic_warnings : (Warning.kind * int option * int option * int option * string * int * bool) list;
}

(* Replay one trace through Aero, Engine and Basic; [Some] is full
   agreement, [Error] a human-readable disagreement. *)
let engine_trio trace =
  let a = run_aero trace
  and e = run_engine trace
  and b = run_basic trace in
  let va = Velodrome_core.Aero.has_error a
  and ve = Velodrome_core.Engine.has_error e
  and vb = Velodrome_core.Basic.has_error b in
  let fa = Velodrome_core.Aero.first_error_index a
  and fe = Velodrome_core.Engine.first_error_index e
  and fb = Velodrome_core.Basic.first_error_index b in
  let ws eng warnings =
    List.sort compare
      (List.map (fun w -> strip_analysis (project_warning w)) (warnings eng))
  in
  let wa = ws a Velodrome_core.Aero.warnings
  and wb = ws b Velodrome_core.Basic.warnings in
  let pp_idx = function None -> "-" | Some i -> string_of_int i in
  if va <> ve || va <> vb then
    Error
      (Printf.sprintf "verdicts disagree: aero=%b engine=%b basic=%b" va ve vb)
  else if fa <> fe || fa <> fb then
    Error
      (Printf.sprintf
         "first violation index disagrees: aero=%s engine=%s basic=%s"
         (pp_idx fa) (pp_idx fe) (pp_idx fb))
  else if wa <> wb then
    Error
      (Printf.sprintf "aero/basic warning sets differ (%d vs %d warnings)"
         (List.length wa) (List.length wb))
  else
    Ok { verdict = va; first_index = fa; aero_warnings = wa; basic_warnings = wb }
