(* The streaming driver and its headline guarantee: replaying a trace
   from a file in bounded memory produces exactly the warnings the
   in-memory replay produces, on every back-end. *)

open Velodrome_trace
open Velodrome_analysis
open Velodrome_stream
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* Every packaged back-end, by registry name. *)
let all_backends : (string * (unit -> (module Backend.S))) list =
  [
    ("velodrome", fun () -> Velodrome_core.Engine.backend ());
    ("velodrome-basic", fun () -> Velodrome_core.Basic.backend ());
    ("aero", fun () -> Velodrome_core.Aero.backend ());
    ("eraser", fun () -> Velodrome_eraser.Eraser.backend ());
    ("atomizer", fun () -> Velodrome_atomizer.Atomizer.backend ());
    ("hb", fun () -> Velodrome_hbrace.Hbrace.backend ());
    ("empty", fun () -> (module Empty : Backend.S));
  ]

(* The projection and in-memory runner are shared with the other
   differential suites (Helpers.project_warning / trace_warnings). *)
let project = project_warning
let inmem_warnings mk tr = trace_warnings mk tr

let with_encoded suffix write tr f =
  let path = Filename.temp_file "velodrome_stream" suffix in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      write (Names.create ()) tr path;
      f path)

let stream_warnings path mk =
  Source.with_file path (fun src ->
      let b = Backend.make (mk ()) src.Source.names in
      let _, ws = Driver.run [ b ] src in
      List.map project ws)

(* --- the differential properties ------------------------------------------- *)

let diff_cfg =
  {
    Velodrome_trace.Gen.default with
    threads = 4;
    vars = 3;
    locks = 2;
    steps = 50;
  }

let diff_prop (name, mk) =
  QCheck.Test.make ~count:300
    ~name:
      (Printf.sprintf
         "streaming binary replay = in-memory replay (%s warnings)" name)
    (trace_arbitrary diff_cfg)
    (fun tr ->
      with_encoded ".velb" Trace_codec.write_file tr (fun path ->
          stream_warnings path mk = inmem_warnings mk tr))

let diff_props = List.map diff_prop all_backends

(* The same property over the textual streaming path (one back-end is
   enough: the driver and source are shared; the parsers differ). The
   trace is canonicalized through the text format first — parsing
   renumbers ids in first-use order, so both sides must start from the
   same numbering. *)
let prop_text_stream =
  QCheck.Test.make ~count:100
    ~name:"streaming text replay = in-memory replay (velodrome warnings)"
    (trace_arbitrary diff_cfg)
    (fun tr ->
      let mk () = Velodrome_core.Engine.backend () in
      let names, tr =
        Trace_io.of_string (Trace_io.to_string (Names.create ()) tr)
      in
      let inmem =
        List.map project (Backend.run_trace [ Backend.make (mk ()) names ] tr)
      in
      let path = Filename.temp_file "velodrome_stream" ".trace" in
      Fun.protect
        ~finally:(fun () -> Sys.remove path)
        (fun () ->
          Trace_io.write_file names tr path;
          stream_warnings path mk = inmem))

(* --- driver mechanics ------------------------------------------------------- *)

let test_driver_counts_events () =
  let tr = Gen.run (Velodrome_util.Rng.create 11) Gen.default in
  let names = Names.create () in
  let b = Backend.make (Velodrome_core.Engine.backend ()) names in
  let events, _ = Driver.run [ b ] (Source.of_trace names tr) in
  check int "event count" (Trace.length tr) events

let test_driver_progress_ticks () =
  let tr = Gen.run (Velodrome_util.Rng.create 5) Gen.default in
  let names = Names.create () in
  let b = Backend.make (Velodrome_core.Engine.backend ()) names in
  let ticks = ref [] in
  let live = ref 0 in
  let events, _ =
    Driver.run
      ~progress:(fun s ->
        ticks := s.Driver.events :: !ticks;
        match s.Driver.live_nodes with
        | Some n -> live := n
        | None -> Alcotest.fail "probe not consulted")
      ~every:10
      ~live_nodes:(fun () -> 42)
      [ b ]
      (Source.of_trace names tr)
  in
  let ticks = List.rev !ticks in
  check int "final tick reports the total" events (List.nth ticks (List.length ticks - 1));
  check bool "ticks strictly increase" true
    (List.sort_uniq compare ticks = ticks);
  check bool "interval respected" true
    (List.for_all (fun t -> t mod 10 = 0 || t = events) ticks);
  check int "probe value surfaced" 42 !live

let test_source_lengths () =
  let tr = Trace.of_ops [ wr t0 x; rd t1 x ] in
  with_encoded ".velb" Trace_codec.write_file tr (fun path ->
      Source.with_file path (fun src ->
          check (Alcotest.option int) "binary length known" (Some 2)
            src.Source.length));
  with_encoded ".trace" Trace_io.write_file tr (fun path ->
      Source.with_file path (fun src ->
          check (Alcotest.option int) "text length unknown" None
            src.Source.length;
          let seen = ref 0 in
          src.Source.iter (fun _ -> incr seen);
          check int "text events streamed" 2 !seen))

let test_multi_backend_order () =
  (* Warnings concatenate in back-end order, matching Backend.run_events. *)
  let tr = Trace.of_ops [ wr t0 x; wr t1 x ] in
  let mk names =
    [
      Backend.make (Velodrome_eraser.Eraser.backend ()) names;
      Backend.make (Velodrome_hbrace.Hbrace.backend ()) names;
    ]
  in
  let names = Names.create () in
  let inmem = List.map project (Backend.run_trace (mk names) tr) in
  let streamed =
    with_encoded ".velb" Trace_codec.write_file tr (fun path ->
        Source.with_file path (fun src ->
            let _, ws = Driver.run (mk src.Source.names) src in
            List.map project ws))
  in
  check bool "same concatenation" true (streamed = inmem);
  check int "two analyses reported" 2 (List.length streamed)

let suite =
  ( "stream",
    Alcotest.test_case "driver counts events" `Quick test_driver_counts_events
    :: Alcotest.test_case "driver progress ticks" `Quick
         test_driver_progress_ticks
    :: Alcotest.test_case "source lengths" `Quick test_source_lengths
    :: Alcotest.test_case "multi-backend order" `Quick test_multi_backend_order
    :: List.map (QCheck_alcotest.to_alcotest ~long:false)
         (diff_props @ [ prop_text_stream ]) )
