let () =
  Alcotest.run "velodrome"
    [
      Test_util.suite;
      Test_trace.suite;
      Test_codec.suite;
      Test_stream.suite;
      Test_oracle.suite;
      Test_analysis.suite;
      Test_core.suite;
      Test_sim.suite;
      Test_lang.suite;
      Test_statics.suite;
      Test_predict.suite;
      Test_backends.suite;
      Test_squeue.suite;
      Test_serve.suite;
      Test_modelcheck.suite;
      Regressions.suite;
      Test_workloads.suite;
      Test_inject.suite;
      Test_harness.suite;
    ]
