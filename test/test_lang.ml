open Velodrome_lang
open Velodrome_sim
open Velodrome_trace

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- lexer ----------------------------------------------------------------- *)

let toks src = List.map (fun s -> s.Lexer.tok) (Lexer.tokenize src)

let test_lex_basic () =
  check int "token count" 9 (List.length (toks "var x = 42 ; { } <-"));
  match toks "x <= 3 != y == tid" with
  | [ IDENT "x"; LE; INT 3; NEQ; IDENT "y"; EQEQ; KW "tid"; EOF ] -> ()
  | _ -> Alcotest.fail "unexpected token stream"

let test_lex_comments () =
  match toks "x // line comment\n /* block /* nested */ still */ y" with
  | [ IDENT "x"; IDENT "y"; EOF ] -> ()
  | _ -> Alcotest.fail "comments not skipped"

let test_lex_string () =
  match toks {|atomic "Set.add"|} with
  | [ KW "atomic"; STRING "Set.add"; EOF ] -> ()
  | _ -> Alcotest.fail "string literal"

let test_lex_positions () =
  let spanned = Lexer.tokenize "x\n  y" in
  let y = List.nth spanned 1 in
  check int "line" 2 y.Lexer.line;
  check int "col" 3 y.Lexer.col

let test_lex_errors () =
  let fails s =
    match Lexer.tokenize s with
    | exception Lexer.Lex_error _ -> true
    | _ -> false
  in
  check bool "bad char" true (fails "x # y");
  check bool "unterminated string" true (fails "\"abc");
  check bool "unterminated comment" true (fails "/* abc");
  check bool "lone bang" true (fails "x ! y")

(* --- parser ----------------------------------------------------------------- *)

let test_parse_minimal () =
  let p = Parser.parse "var x; thread { x = 1; }" in
  check int "one thread" 1 (Array.length p.Ast.threads);
  match p.Ast.threads.(0) with
  | [ Ast.Write (_, Ast.Int 1) ] -> ()
  | _ -> Alcotest.fail "expected a single write"

let test_parse_replication () =
  let p = Parser.parse "var x; thread 3 { x = tid; }" in
  check int "three threads" 3 (Array.length p.Ast.threads)

let test_parse_desugar_read () =
  (* x in an expression becomes an explicit Read before the statement. *)
  let p = Parser.parse "var x; var y; thread { y = x + 1; }" in
  match p.Ast.threads.(0) with
  | [ Ast.Read (r, _); Ast.Write (_, Ast.Add (Ast.Reg r', Ast.Int 1)) ] ->
    check int "same temp" r r'
  | _ -> Alcotest.fail "expected read-then-write desugaring"

let test_parse_while_rereads () =
  (* Loop conditions over shared variables re-read on every iteration. *)
  let p = Parser.parse "volatile b; thread { while (b != 1) { yield; } }" in
  match p.Ast.threads.(0) with
  | [ Ast.Read _; Ast.While (_, body) ] ->
    check bool "body re-reads the variable" true
      (List.exists (function Ast.Read _ -> true | _ -> false) body)
  | _ -> Alcotest.fail "expected prelude read and re-reading loop"

let test_parse_sync_sugar () =
  let p = Parser.parse "var x; lock m; thread { sync m { x = 1; } }" in
  match p.Ast.threads.(0) with
  | [ Ast.Acquire _; Ast.Write _; Ast.Release _ ] -> ()
  | _ -> Alcotest.fail "sync sugar"

let test_parse_initial_values () =
  let p = Parser.parse "var x = 5; var y = -3; thread { x = y; }" in
  let init_of name =
    let x = Names.var p.Ast.names name in
    Option.value ~default:0 (List.assoc_opt x p.Ast.init)
  in
  check int "x init" 5 (init_of "x");
  check int "y init" (-3) (init_of "y")

let test_parse_volatile_flag () =
  let p = Parser.parse "volatile b; var x; thread { x = b; }" in
  check bool "b volatile" true
    (Names.is_volatile p.Ast.names (Names.var p.Ast.names "b"));
  check bool "x not volatile" false
    (Names.is_volatile p.Ast.names (Names.var p.Ast.names "x"))

let test_parse_explicit_reg () =
  let p = Parser.parse "var x; thread { _r7 <- x; _r8 = _r7 + 1; }" in
  match p.Ast.threads.(0) with
  | [ Ast.Read (7, _); Ast.Local (8, _) ] -> ()
  | _ -> Alcotest.fail "_rK registers must map to index K"

let test_parse_errors () =
  let fails s =
    match Parser.parse s with
    | exception Parser.Parse_error _ -> true
    | _ -> false
  in
  check bool "no threads" true (fails "var x;");
  check bool "missing semi" true (fails "var x thread { }");
  check bool "read from register" true (fails "var x; thread { a <- b; }");
  check bool "arrow into shared variable" true
    (fails "var x; var y; thread { x <- y; }");
  check bool "trailing garbage" true (fails "var x; thread { } zzz")

let test_parse_error_position () =
  match Parser.parse "var x;\nthread {\n  x = ;\n}" with
  | exception Parser.Parse_error (_, line, _) -> check int "error line" 3 line
  | _ -> Alcotest.fail "expected parse error"

(* --- printer round-trip ------------------------------------------------------ *)

let reprint p = Printer.to_string p

let test_roundtrip_fixed () =
  let src =
    "var x = 2;\nvolatile b;\nlock m;\nthread 2 { atomic \"M.inc\" { sync m \
     { x = x + tid; } } while (b != 1) { yield; } work 3; }"
  in
  let p1 = Parser.parse src in
  let s1 = reprint p1 in
  let p2 = Parser.parse s1 in
  let s2 = reprint p2 in
  check Alcotest.string "print . parse . print = print" s1 s2

let test_roundtrip_workloads () =
  (* Every workload program must survive the print/parse cycle. *)
  List.iter
    (fun w ->
      let p = w.Velodrome_workloads.Workload.build Velodrome_workloads.Workload.Small in
      let s1 = reprint p in
      match Parser.parse s1 with
      | p2 ->
        check Alcotest.string
          (w.Velodrome_workloads.Workload.name ^ " round-trips")
          s1 (reprint p2)
      | exception Parser.Parse_error (m, l, c) ->
        Alcotest.failf "%s: parse error %s at %d:%d"
          w.Velodrome_workloads.Workload.name m l c)
    Velodrome_workloads.Workload.all

let test_parsed_program_runs () =
  let p =
    Parser.parse
      "var x; lock m; thread 2 { k = 0; while (k < 5) { sync m { x = x + 1; \
       } k = k + 1; } }"
  in
  let res =
    Run.run
      ~config:{ Run.default_config with policy = Run.Random 1 }
      p []
  in
  check bool "finishes" false res.Run.deadlocked;
  check int "counter" 10 (Interp.read_var res.Run.final (Names.var p.Ast.names "x"))

(* --- static checker ------------------------------------------------------------ *)

let test_check_ok () =
  let p =
    Parser.parse
      "var x; lock m; thread { sync m { x = 1; } if (1 == 1) { sync m { x = \
       2; } } }"
  in
  check bool "clean" true (Check.check_program p = Ok ())

let test_check_release_without_acquire () =
  let p = Parser.parse "lock m; thread { release m; }" in
  match Check.check_program p with
  | Error [ e ] -> check int "thread 0" 0 e.Check.thread
  | _ -> Alcotest.fail "expected one error"

let test_check_unbalanced_if () =
  let p =
    Parser.parse
      "lock m; thread { if (1 == 1) { acquire m; } else { } release m; }"
  in
  check bool "flagged" true (Result.is_error (Check.check_program p))

let test_check_loop_not_neutral () =
  let p = Parser.parse "lock m; thread { while (1 == 1) { acquire m; } }" in
  check bool "flagged" true (Result.is_error (Check.check_program p))

let test_check_holds_at_exit () =
  let p = Parser.parse "lock m; thread { acquire m; }" in
  check bool "flagged" true (Result.is_error (Check.check_program p))

let test_parse_label_positions () =
  let src =
    "var x;\n\
     thread {\n\
    \  atomic \"a\" { x = 1; }\n\
    \  atomic \"b\" { atomic \"a\" { x = 2; } }\n\
     }"
  in
  let p, positions = Parser.parse_info src in
  check int "labels declared" 2
    (Velodrome_util.Symtab.size p.Ast.names.Names.labels);
  (* First occurrence wins for a repeated label; entries in source order. *)
  match positions with
  | [ (la, (3, _)); (lb, (4, _)) ] ->
    check Alcotest.string "a first" "a" (Names.label_name p.Ast.names la);
    check Alcotest.string "b second" "b" (Names.label_name p.Ast.names lb)
  | _ -> Alcotest.fail "unexpected label position list"

let test_check_reports_all_errors () =
  let p =
    Parser.parse
      "lock m; lock n; thread { release m; if (1 == 1) { acquire n; } else { \
       } } thread { acquire m; while (1 == 1) { acquire n; } }"
  in
  match Check.check_program p with
  | Ok () -> Alcotest.fail "expected errors"
  | Error es ->
    let render e = Format.asprintf "%a" Check.pp_error e in
    check
      Alcotest.(list string)
      "all errors, in order"
      [
        "thread 0, stmt 0: release of lock 0 without matching acquire";
        "thread 0, stmt 1: if branches have different lock effects";
        "thread 0, end of thread: thread finishes while holding locks";
        "thread 1, stmt 1: loop body is not lock-neutral";
        "thread 1, end of thread: thread finishes while holding locks";
      ]
      (List.map render es)

let test_check_nested_path () =
  let p =
    Parser.parse
      "lock m; thread { atomic \"a\" { if (1 == 1) { release m; } } }"
  in
  match Check.check_program p with
  | Error [ e ] -> check Alcotest.(list int) "path" [ 0; 0; 0; 0 ] e.Check.path
  | _ -> Alcotest.fail "expected exactly one error"

let test_check_workloads_clean () =
  List.iter
    (fun w ->
      let p = w.Velodrome_workloads.Workload.build Velodrome_workloads.Workload.Small in
      check bool (w.Velodrome_workloads.Workload.name ^ " lock-clean") true
        (Check.check_program p = Ok ()))
    Velodrome_workloads.Workload.all

let suite =
  ( "lang",
    [
      Alcotest.test_case "lex basic" `Quick test_lex_basic;
      Alcotest.test_case "lex comments" `Quick test_lex_comments;
      Alcotest.test_case "lex string" `Quick test_lex_string;
      Alcotest.test_case "lex positions" `Quick test_lex_positions;
      Alcotest.test_case "lex errors" `Quick test_lex_errors;
      Alcotest.test_case "parse minimal" `Quick test_parse_minimal;
      Alcotest.test_case "parse replication" `Quick test_parse_replication;
      Alcotest.test_case "parse desugar read" `Quick test_parse_desugar_read;
      Alcotest.test_case "parse while rereads" `Quick test_parse_while_rereads;
      Alcotest.test_case "parse sync sugar" `Quick test_parse_sync_sugar;
      Alcotest.test_case "parse initial values" `Quick test_parse_initial_values;
      Alcotest.test_case "parse volatile" `Quick test_parse_volatile_flag;
      Alcotest.test_case "parse explicit regs" `Quick test_parse_explicit_reg;
      Alcotest.test_case "parse errors" `Quick test_parse_errors;
      Alcotest.test_case "parse error position" `Quick test_parse_error_position;
      Alcotest.test_case "roundtrip fixed" `Quick test_roundtrip_fixed;
      Alcotest.test_case "roundtrip workloads" `Quick test_roundtrip_workloads;
      Alcotest.test_case "parsed program runs" `Quick test_parsed_program_runs;
      Alcotest.test_case "check ok" `Quick test_check_ok;
      Alcotest.test_case "check release w/o acquire" `Quick
        test_check_release_without_acquire;
      Alcotest.test_case "check unbalanced if" `Quick test_check_unbalanced_if;
      Alcotest.test_case "check loop" `Quick test_check_loop_not_neutral;
      Alcotest.test_case "check exit" `Quick test_check_holds_at_exit;
      Alcotest.test_case "parse label positions" `Quick
        test_parse_label_positions;
      Alcotest.test_case "check multi-error" `Quick test_check_reports_all_errors;
      Alcotest.test_case "check nested path" `Quick test_check_nested_path;
      Alcotest.test_case "check workloads" `Quick test_check_workloads_clean;
    ] )
