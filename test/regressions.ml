(* Pinned regression corpus: generated programs and schedules that once
   exposed (or nearly exposed) back-end disagreements, replayed
   deterministically on every `dune runtest` so fuzz finds never regress
   silently.

   Each row is a (progen seed, family, schedule) triple. The family is
   recorded and asserted so a change to the generator that silently
   repurposes a pinned seed is caught rather than quietly testing a
   different program. Every packaged back-end is attached to the run
   (catching crashes and warning-shape regressions), and the recorded
   trace is held to the three-way engine agreement. *)

open Velodrome_analysis
open Velodrome_sim
open Helpers

type schedule = RR | Rand of int | Adv of int

let pp_schedule = function
  | RR -> "round-robin"
  | Rand s -> Printf.sprintf "random(seed %d)" s
  | Adv s -> Printf.sprintf "adversarial(seed %d)" s

let config_of = function
  | RR -> { Run.default_config with policy = Run.Round_robin }
  | Rand s -> { Run.default_config with policy = Run.Random s }
  | Adv s ->
    { Run.default_config with policy = Run.Random s; adversarial = true }

(* The corpus. Seeds picked to cover every progen family under every
   schedule family; extend with the seed, family and schedule from any
   future fuzz failure's replay line. *)
let corpus : (int * string * schedule) list =
  [
    (1, "publication+snapshot", RR);
    (2, "latent+dispatch", Rand 7);
    (3, "publication+snapshot+latent", Adv 7);
    (7, "snapshot+latent+dispatch", Adv 2);
    (11, "publication+snapshot+latent", RR);
    (13, "dispatch", Rand 3);
    (42, "snapshot+latent+dispatch", Adv 5);
    (101, "snapshot+latent+dispatch", RR);
    (257, "latent", Rand 11);
    (1009, "publication+snapshot+dispatch", Adv 11);
  ]

let all_packaged names =
  [
    Backend.make (Velodrome_core.Engine.backend ()) names;
    Backend.make (Velodrome_core.Basic.backend ()) names;
    Backend.make (Velodrome_core.Aero.backend ()) names;
    Backend.make (Velodrome_eraser.Eraser.backend ()) names;
    Backend.make (Velodrome_atomizer.Atomizer.backend ()) names;
    Backend.make (Velodrome_hbrace.Hbrace.backend ()) names;
    Backend.make (Velodrome_hbrace.Fasttrack.backend ()) names;
    Backend.make (Velodrome_twopl.Twopl.backend ()) names;
  ]

let replay (seed, family, schedule) =
  let program, info =
    Progen.generate_info (Velodrome_util.Rng.create seed)
  in
  let actual = String.concat "+" info.Progen.families in
  if actual <> family then
    Alcotest.failf
      "regression corpus drift: progen seed %d now generates family %s \
       (pinned as %s)"
      seed actual family;
  let config =
    { (config_of schedule) with Run.record_trace = true }
  in
  let res =
    Run.run ~config program
      (all_packaged program.Ast.names)
  in
  match engine_trio (Option.get res.Run.trace) with
  | Ok _ -> ()
  | Error msg ->
    Alcotest.failf
      "regression: progen seed %d, family %s, schedule %s: %s@.replay: \
       velodrome analyze --generated 1 --gen-seed %d --seeds 7 --gate"
      seed family (pp_schedule schedule) msg seed

let test_corpus () = List.iter replay corpus

(* Latent-family pins: seeds whose generated program carries the
   `latent` family (inconsistent-snapshot scan + write-skew pair).
   These blocks are round-robin-clean by construction — the plain
   observation run must NOT blame them — yet the witness-guided
   predictor must find and certify the scan block on every seed. A
   generator change that makes the latent blocks trivially visible (or
   invisible to prediction) trips this before it skews the study. *)
let latent_seeds = [ 2; 3; 4; 5; 7; 12; 14; 16; 34; 44 ]

let has_family info f = List.mem f info.Progen.families

let replay_latent seed =
  let program, info =
    Progen.generate_info (Velodrome_util.Rng.create seed)
  in
  if not (has_family info "latent") then
    Alcotest.failf
      "latent pin drift: progen seed %d no longer generates the latent \
       family (now %s)"
      seed
      (String.concat "+" info.Progen.families);
  let st = Velodrome_statics.Statics.analyze program in
  let p = Velodrome_predict.Predict.run program st in
  let names = Velodrome_statics.Statics.names st in
  let is_latent l =
    let n = Velodrome_trace.Names.label_name names l in
    String.length n >= 8 && String.sub n 0 8 = "gen.lat."
  in
  (match
     List.filter is_latent (Velodrome_predict.Predict.observed_blamed p)
   with
  | [] -> ()
  | l :: _ ->
    Alcotest.failf
      "latent pin: progen seed %d: round-robin observation already blames \
       %s — the latent family is no longer latent"
      seed
      (Velodrome_trace.Names.label_name names l));
  let predicted_scan =
    List.exists
      (fun (pr : Velodrome_predict.Predict.prediction) ->
        pr.Velodrome_predict.Predict.name = "gen.lat.scan")
      (Velodrome_predict.Predict.predictions p)
  in
  if not predicted_scan then
    Alcotest.failf
      "latent pin: progen seed %d: prediction failed to certify \
       gen.lat.scan@.replay: velodrome predict --generated --gen-seed %d"
      seed seed

let test_latent () = List.iter replay_latent latent_seeds

(* Dispatch-workload pin: the acceptance example for the value analysis.
   Both blocks of the tid-dispatch workload must stay May_violate with
   the analysis off and Proved_atomic with it on — one per proof rule. A
   statics change that erodes either side (the analysis stops sharpening,
   or the workload becomes provable without it) trips this pin. *)
let test_dispatch_delta () =
  let module Statics = Velodrome_statics.Statics in
  let module Workload = Velodrome_workloads.Workload in
  let program =
    (Option.get (Workload.find "dispatch")).Workload.build Workload.Small
  in
  let off = Statics.analyze ~values:false program in
  let on_ = Statics.analyze program in
  List.iter
    (fun (b : Statics.block) ->
      match b.Statics.verdict with
      | Statics.May_violate _ -> ()
      | _ ->
        Alcotest.failf "dispatch pin: %s no longer May_violate without values"
          b.Statics.name)
    (Statics.blocks off);
  if Statics.proved_lipton_count on_ <> 1 then
    Alcotest.fail "dispatch pin: expected exactly one Lipton-proved block";
  if Statics.proved_cycle_free_count on_ <> 1 then
    Alcotest.fail "dispatch pin: expected exactly one cycle-free-proved block"

let suite =
  ( "regressions",
    [
      Alcotest.test_case "pinned generated corpus" `Quick test_corpus;
      Alcotest.test_case "pinned latent-family seeds" `Quick test_latent;
      Alcotest.test_case "pinned dispatch verdict delta" `Quick
        test_dispatch_delta;
    ] )
