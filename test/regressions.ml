(* Pinned regression corpus: generated programs and schedules that once
   exposed (or nearly exposed) back-end disagreements, replayed
   deterministically on every `dune runtest` so fuzz finds never regress
   silently.

   Each row is a (progen seed, family, schedule) triple. The family is
   recorded and asserted so a change to the generator that silently
   repurposes a pinned seed is caught rather than quietly testing a
   different program. Every packaged back-end is attached to the run
   (catching crashes and warning-shape regressions), and the recorded
   trace is held to the three-way engine agreement. *)

open Velodrome_analysis
open Velodrome_sim
open Helpers

type schedule = RR | Rand of int | Adv of int

let pp_schedule = function
  | RR -> "round-robin"
  | Rand s -> Printf.sprintf "random(seed %d)" s
  | Adv s -> Printf.sprintf "adversarial(seed %d)" s

let config_of = function
  | RR -> { Run.default_config with policy = Run.Round_robin }
  | Rand s -> { Run.default_config with policy = Run.Random s }
  | Adv s ->
    { Run.default_config with policy = Run.Random s; adversarial = true }

(* The corpus. Seeds picked to cover every progen family under every
   schedule family; extend with the seed, family and schedule from any
   future fuzz failure's replay line. *)
let corpus : (int * string * schedule) list =
  [
    (1, "publication+snapshot", RR);
    (2, "core", Rand 7);
    (3, "publication+snapshot", Adv 7);
    (7, "snapshot", Adv 2);
    (11, "publication+snapshot", RR);
    (13, "core", Rand 3);
    (42, "snapshot", Adv 5);
    (101, "snapshot", RR);
    (257, "core", Rand 11);
    (1009, "publication+snapshot", Adv 11);
  ]

let all_packaged names =
  [
    Backend.make (Velodrome_core.Engine.backend ()) names;
    Backend.make (Velodrome_core.Basic.backend ()) names;
    Backend.make (Velodrome_core.Aero.backend ()) names;
    Backend.make (Velodrome_eraser.Eraser.backend ()) names;
    Backend.make (Velodrome_atomizer.Atomizer.backend ()) names;
    Backend.make (Velodrome_hbrace.Hbrace.backend ()) names;
    Backend.make (Velodrome_hbrace.Fasttrack.backend ()) names;
    Backend.make (Velodrome_twopl.Twopl.backend ()) names;
  ]

let replay (seed, family, schedule) =
  let program, info =
    Progen.generate_info (Velodrome_util.Rng.create seed)
  in
  let actual = String.concat "+" info.Progen.families in
  if actual <> family then
    Alcotest.failf
      "regression corpus drift: progen seed %d now generates family %s \
       (pinned as %s)"
      seed actual family;
  let config =
    { (config_of schedule) with Run.record_trace = true }
  in
  let res =
    Run.run ~config program
      (all_packaged program.Ast.names)
  in
  match engine_trio (Option.get res.Run.trace) with
  | Ok _ -> ()
  | Error msg ->
    Alcotest.failf
      "regression: progen seed %d, family %s, schedule %s: %s@.replay: \
       velodrome analyze --generated 1 --gen-seed %d --seeds 7 --gate"
      seed family (pp_schedule schedule) msg seed

let test_corpus () = List.iter replay corpus

let suite =
  ( "regressions",
    [ Alcotest.test_case "pinned generated corpus" `Quick test_corpus ] )
