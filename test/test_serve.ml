(* The serve domain pool and its headline guarantee: checking N streams
   on 8 domains produces exactly the results of checking them one by
   one, in the same order — over the full workload suite and a few
   hundred generated traces — plus the operational properties: failed
   streams keep their partial result, resident streams respect the
   backpressure bound, and no file descriptors leak. *)

open Velodrome_trace
open Velodrome_analysis
module Serve = Velodrome_serve.Serve
module Workload = Velodrome_workloads.Workload

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

let backends names =
  [ Backend.make (Velodrome_core.Engine.backend ()) names ]

(* --- corpus construction ---------------------------------------------------- *)

let with_dir name f =
  let dir =
    Filename.concat (Filename.get_temp_dir_name ())
      (Printf.sprintf "velodrome-test-%s-%d" name (Unix.getpid ()))
  in
  (try Sys.mkdir dir 0o755 with Sys_error _ -> ());
  Fun.protect
    ~finally:(fun () ->
      Array.iter
        (fun e -> try Sys.remove (Filename.concat dir e) with Sys_error _ -> ())
        (Sys.readdir dir);
      try Sys.rmdir dir with Sys_error _ -> ())
    (fun () -> f dir)

let record_workload dir (w : Workload.t) =
  let program = w.Workload.build Workload.Small in
  let res =
    Velodrome_harness.Common.run_once ~seed:7 ~record_trace:true program
      (fun _ -> [])
  in
  let path = Filename.concat dir (w.Workload.name ^ ".velb") in
  Trace_codec.write_file program.Velodrome_sim.Ast.names
    (Option.get res.Velodrome_sim.Run.trace)
    path;
  path

let gen_stream dir k =
  let cfg =
    {
      Gen.default with
      threads = 2 + (k mod 5);
      vars = 3 + (k mod 13);
      locks = 1 + (k mod 3);
      labels = 6;
      steps = 300;
      max_depth = 3;
    }
  in
  let tr = Gen.run (Velodrome_util.Rng.create (500 + k)) cfg in
  let path = Filename.concat dir (Printf.sprintf "gen-%03d.velb" k) in
  Trace_codec.write_file (Names.create ()) tr path;
  path

(* --- reference: one stream at a time through the plain driver --------------- *)

let reference path =
  Velodrome_stream.Source.with_file path (fun src ->
      let names = src.Velodrome_stream.Source.names in
      let events, warnings =
        Velodrome_stream.Driver.run (backends names) src
      in
      ( events,
        List.map
          (fun w -> Format.asprintf "%a" (Warning.pp names) w)
          (Warning.dedup_by_label warnings) ))

let project (r : Serve.result) =
  match r.Serve.outcome with
  | Serve.Checked { events; warnings } ->
    ( r.Serve.path,
      events,
      List.map (fun (w : Serve.warning_view) -> w.Serve.human) warnings )
  | Serve.Failed { events; _ } ->
    Alcotest.failf "%s: unexpected Failed after %d events" r.Serve.path events

let serve_projected ~jobs ?queue_capacity paths =
  let acc = ref [] in
  let stats =
    Serve.run ~jobs ?queue_capacity ~backends
      ~on_result:(fun r -> acc := project r :: !acc)
      paths
  in
  (stats, List.rev !acc)

let check_differential ~jobs paths =
  let expected = List.map (fun p -> (p, reference p)) paths in
  let stats, got = serve_projected ~jobs paths in
  check int "one result per stream" (List.length paths) (List.length got);
  List.iter2
    (fun (path, (events, warnings)) (gpath, gevents, gwarnings) ->
      check Alcotest.string "submission order preserved" path gpath;
      check int (path ^ " events") events gevents;
      check Alcotest.(list string) (path ^ " warnings") warnings gwarnings)
    expected got;
  check int "no failures" 0 stats.Serve.failed;
  check bool "resident bound respected" true
    (stats.Serve.max_resident
    <= stats.Serve.queue_capacity + stats.Serve.jobs);
  stats

(* --- tests ------------------------------------------------------------------ *)

(* All recorded workload traces, 8 domains vs the sequential driver. *)
let test_workloads_differential () =
  with_dir "serve-wl" (fun dir ->
      let paths = List.map (record_workload dir) Workload.all in
      check int "all workloads recorded"
        (List.length Workload.all)
        (List.length paths);
      ignore (check_differential ~jobs:8 paths))

(* 200 generated streams; 1, 3 and 8 domains must agree with the
   sequential driver and with each other, byte for byte. *)
let test_generated_differential () =
  with_dir "serve-gen" (fun dir ->
      let paths = List.init 200 (gen_stream dir) in
      ignore (check_differential ~jobs:8 paths);
      let _, one = serve_projected ~jobs:1 paths in
      let _, three = serve_projected ~jobs:3 ~queue_capacity:2 paths in
      let _, eight = serve_projected ~jobs:8 paths in
      check bool "jobs=1 = jobs=8" true (one = eight);
      check bool "jobs=3 (tiny queue) = jobs=8" true (three = eight))

(* A truncated stream fails with its partial prefix intact while the
   healthy streams around it are unaffected. *)
let test_partial_failure () =
  with_dir "serve-trunc" (fun dir ->
      let good = gen_stream dir 0 in
      let full_events, _ = reference good in
      let bad = Filename.concat dir "bad.velb" in
      let contents = In_channel.with_open_bin good In_channel.input_all in
      Out_channel.with_open_bin bad (fun oc ->
          Out_channel.output_string oc
            (String.sub contents 0 (String.length contents * 3 / 4)));
      let acc = ref [] in
      let stats =
        Serve.run ~jobs:4 ~backends
          ~on_result:(fun r -> acc := r :: !acc)
          [ good; bad; good ]
      in
      check int "one failure" 1 stats.Serve.failed;
      match List.rev !acc with
      | [ g1; b; g2 ] ->
        (match (g1.Serve.outcome, g2.Serve.outcome) with
        | Serve.Checked { events = e1; _ }, Serve.Checked { events = e2; _ } ->
          check int "good streams unaffected" full_events e1;
          check int "good streams unaffected (after)" full_events e2
        | _ -> Alcotest.fail "good streams must check");
        (match b.Serve.outcome with
        | Serve.Failed { events; message; _ } ->
          check bool "partial prefix replayed" true
            (events > 0 && events < full_events);
          check bool "corrupt diagnostic" true
            (String.length message > 0)
        | Serve.Checked _ -> Alcotest.fail "truncated stream must fail")
      | rs -> Alcotest.failf "expected 3 results, got %d" (List.length rs))

let test_expand_targets () =
  with_dir "serve-expand" (fun dir ->
      let p2 = gen_stream dir 2 in
      let p1 = gen_stream dir 1 in
      (match Serve.expand_targets [ dir ] with
      | Ok paths ->
        check Alcotest.(list string) "sorted directory scan" [ p1; p2 ] paths
      | Error e -> Alcotest.fail e);
      (match Serve.expand_targets [ p1; dir ] with
      | Ok paths ->
        check Alcotest.(list string) "files kept verbatim" [ p1; p1; p2 ] paths
      | Error e -> Alcotest.fail e);
      check bool "missing target is an error" true
        (Result.is_error (Serve.expand_targets [ dir ^ "/nope" ])))

(* Serving 200 streams must return the process to its fd baseline:
   every Source.with_file in every worker domain closes its channel,
   even on the failure paths. *)
let count_fds () =
  match Sys.readdir "/proc/self/fd" with
  | entries -> Some (Array.length entries)
  | exception Sys_error _ -> None

let test_fd_leak () =
  with_dir "serve-fds" (fun dir ->
      let paths = List.init 200 (gen_stream dir) in
      (* Include a truncated stream so the error path is covered too. *)
      let bad = Filename.concat dir "bad.velb" in
      let contents =
        In_channel.with_open_bin (List.hd paths) In_channel.input_all
      in
      Out_channel.with_open_bin bad (fun oc ->
          Out_channel.output_string oc
            (String.sub contents 0 (String.length contents / 2)));
      match count_fds () with
      | None -> () (* no /proc: nothing to measure on this platform *)
      | Some before ->
        let stats =
          Serve.run ~jobs:8 ~backends ~on_result:ignore (paths @ [ bad ])
        in
        check int "one failure" 1 stats.Serve.failed;
        let after = Option.get (count_fds ()) in
        check int "fds back to baseline" before after)

let suite =
  ( "serve",
    [
      Alcotest.test_case "workload differential (8 domains)" `Quick
        test_workloads_differential;
      Alcotest.test_case "generated differential (1/3/8 domains)" `Quick
        test_generated_differential;
      Alcotest.test_case "partial failure isolation" `Quick
        test_partial_failure;
      Alcotest.test_case "expand targets" `Quick test_expand_targets;
      Alcotest.test_case "fd baseline after 200 streams" `Quick test_fd_leak;
    ] )
