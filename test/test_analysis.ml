open Velodrome_trace
open Velodrome_analysis
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* A counting back-end used to observe what filters let through. *)
module Probe = struct
  type t = { mutable seen : Event.t list }

  let name = "probe"
  let create (_ : Names.t) = { seen = [] }
  let on_event t e = t.seen <- e :: t.seen
  let pause_hint _ _ = false
  let finish _ = ()
  let warnings _ = []
end

let probe_through wrap ops =
  let names = Names.create () in
  let state = Probe.create names in
  let packed =
    wrap
      (Backend.make
         (module struct
           include Probe

           let create _ = state
         end)
         names)
  in
  List.iter (Backend.on_event packed) (Event.of_ops ops);
  Backend.finish packed;
  List.rev_map (fun e -> e.Event.op) state.Probe.seen

let test_empty_backend () =
  let names = Names.create () in
  let b = Backend.make (module Empty) names in
  let ws = Backend.run_events [ b ] (Event.of_ops [ rd t0 x; wr t1 y ]) in
  check int "no warnings" 0 (List.length ws)

let test_dispatch_order () =
  let names = Names.create () in
  let b1 = Backend.make (module Empty) names in
  let b2 = Backend.make (module Empty) names in
  check Alcotest.string "names" "empty" (Backend.name b1);
  let ws =
    Backend.run_trace [ b1; b2 ] (Trace.of_ops [ rd t0 x; rd t1 x ])
  in
  check int "still no warnings" 0 (List.length ws)

let test_reentrant_filter () =
  let ops =
    [ acq t0 m; acq t0 m; rd t0 x; rel t0 m; rel t0 m; acq t1 m; rel t1 m ]
  in
  let seen = probe_through Filters.reentrant_locks ops in
  check int "nested pair dropped" 5 (List.length seen);
  check bool "outermost acquire kept" true (List.mem (acq t0 m) seen);
  check bool "other thread unaffected" true (List.mem (acq t1 m) seen)

let test_reentrant_filter_depth3 () =
  let ops = [ acq t0 m; acq t0 m; acq t0 m; rel t0 m; rel t0 m; rel t0 m ] in
  let seen = probe_through Filters.reentrant_locks ops in
  check int "only outermost pair" 2 (List.length seen)

let test_thread_local_filter () =
  let ops = [ wr t0 x; rd t0 x; rd t1 x; wr t0 x; wr t0 y ] in
  let seen = probe_through Filters.thread_local ops in
  (* First two accesses are owner-only and dropped; t1's read shares x and
     is forwarded, as is everything on x afterwards; y stays local. *)
  check int "forwarded" 2 (List.length seen);
  check bool "sharing access first" true (List.hd seen = rd t1 x)

let test_thread_local_nonaccess_passthrough () =
  let ops = [ acq t0 m; wr t0 x; rel t0 m ] in
  let seen = probe_through Filters.thread_local ops in
  check int "locks pass through" 2 (List.length seen)

(* --- the static_atomic filter ------------------------------------------------ *)

(* l0 is statically proved, x is the only suppressible variable. *)
let static_wrap b =
  Filters.static_atomic
    ~proved:(fun l -> l = Ids.Label.to_int l0)
    ~suppress_var:(fun v -> v = Ids.Var.to_int x)
    b

let test_static_filter_basic () =
  let ops =
    [ bg t0 l0; rd t0 x; wr t0 y; acq t0 m; rel t0 m; en t0; rd t0 x ]
  in
  let seen = probe_through static_wrap ops in
  (* Only the suppressible access inside the proved block is dropped:
     lock operations and transaction markers always pass, the
     non-suppressible y write passes, and x outside the block passes. *)
  check bool "suppression window" true
    (seen = [ bg t0 l0; wr t0 y; acq t0 m; rel t0 m; en t0; rd t0 x ])

let test_static_filter_unproved_outer () =
  (* l1 is not proved; a proved block nested inside it must NOT start
     suppression — warnings there are attributed to the outermost label. *)
  let ops = [ bg t0 l1; bg t0 l0; rd t0 x; en t0; en t0 ] in
  let seen = probe_through static_wrap ops in
  check int "nothing dropped under unproved outer" 5 (List.length seen)

let test_static_filter_nested_inner () =
  (* Proved outer: suppression spans the whole outer region, including a
     nested (unproved) block, and stops at the outer end. *)
  let ops =
    [ bg t0 l0; bg t0 l1; rd t0 x; en t0; rd t0 x; en t0; rd t0 x ]
  in
  let seen = probe_through static_wrap ops in
  check bool "suppression covers nested region" true
    (seen = [ bg t0 l0; bg t0 l1; en t0; en t0; rd t0 x ])

let test_static_filter_per_thread () =
  let ops = [ bg t0 l0; rd t1 x; rd t0 x; en t0 ] in
  let seen = probe_through static_wrap ops in
  check bool "other thread's accesses unaffected" true
    (seen = [ bg t0 l0; rd t1 x; en t0 ])

let test_static_reentrant_composition () =
  (* The two filters commute on streams: a re-entrant acquire inside a
     proved block is dropped by reentrant_locks, a suppressible access by
     static_atomic, whichever is applied first. *)
  let ops =
    [
      bg t0 l0; acq t0 m; acq t0 m; rd t0 x; rel t0 m; rel t0 m; en t0;
      acq t0 m; rel t0 m;
    ]
  in
  let both1 b = Filters.reentrant_locks (static_wrap b) in
  let both2 b = static_wrap (Filters.reentrant_locks b) in
  let seen1 = probe_through both1 ops in
  check bool "composed stream" true
    (seen1 = [ bg t0 l0; acq t0 m; rel t0 m; en t0; acq t0 m; rel t0 m ]);
  check bool "composition commutes" true (seen1 = probe_through both2 ops)

(* A back-end that emits one warning per transaction end, so filter
   composition can be checked to preserve warning order and content. *)
module Warner = struct
  type t = { mutable ws : Warning.t list }

  let name = "warner"
  let create (_ : Names.t) = { ws = [] }

  let on_event t e =
    match e.Event.op with
    | Op.End tid ->
      t.ws <-
        Warning.make ~analysis:"warner" ~kind:Warning.Race ~tid
          ~index:e.Event.index "end"
        :: t.ws
    | _ -> ()

  let pause_hint _ _ = false
  let finish _ = ()
  let warnings t = List.rev t.ws
end

let warnings_through wrap ops =
  let names = Names.create () in
  let packed = wrap (Backend.make (module Warner) names) in
  List.map
    (fun (w : Warning.t) -> (w.Warning.index, w.Warning.tid))
    (Backend.run_events [ packed ] (Event.of_ops ops))

let test_static_filter_warning_order () =
  let ops =
    [ bg t0 l0; rd t0 x; en t0; bg t1 l1; wr t1 x; en t1; bg t0 l0; en t0 ]
  in
  let plain = warnings_through Fun.id ops in
  check int "three warnings" 3 (List.length plain);
  (* Filters must neither reorder nor re-index the warnings the inner
     back-end produces, in either composition order. *)
  check bool "static preserves order" true
    (plain = warnings_through static_wrap ops);
  check bool "static+reentrant preserves order" true
    (plain
    = warnings_through (fun b -> Filters.reentrant_locks (static_wrap b)) ops);
  check bool "reentrant+static preserves order" true
    (plain
    = warnings_through (fun b -> static_wrap (Filters.reentrant_locks b)) ops)

let test_warning_dedup () =
  let mk label index =
    Warning.make ~analysis:"a" ~kind:Warning.Atomicity_violation
      ?label ~index "msg"
  in
  let ws =
    [ mk (Some l0) 1; mk (Some l0) 2; mk (Some l1) 3; mk None 4; mk None 5 ]
  in
  let d = Warning.dedup_by_label ws in
  (* Two labelled survivors plus one anonymous (same var/tid key). *)
  check int "deduplicated" 3 (List.length d)

let test_warning_pp () =
  let names = Names.create () in
  let l = Names.label names "Set.add" in
  let w =
    Warning.make ~analysis:"velodrome" ~kind:Warning.Atomicity_violation
      ~label:l ~index:7 "cycle"
  in
  let s = Format.asprintf "%a" (Warning.pp names) w in
  check bool "mentions method" true
    (let needle = "Set.add" in
     let nl = String.length needle and hl = String.length s in
     let rec go i = i + nl <= hl && (String.sub s i nl = needle || go (i + 1)) in
     go 0)

let suite =
  ( "analysis",
    [
      Alcotest.test_case "empty backend" `Quick test_empty_backend;
      Alcotest.test_case "dispatch" `Quick test_dispatch_order;
      Alcotest.test_case "reentrant filter" `Quick test_reentrant_filter;
      Alcotest.test_case "reentrant depth 3" `Quick test_reentrant_filter_depth3;
      Alcotest.test_case "thread-local filter" `Quick test_thread_local_filter;
      Alcotest.test_case "thread-local passthrough" `Quick
        test_thread_local_nonaccess_passthrough;
      Alcotest.test_case "static filter basic" `Quick test_static_filter_basic;
      Alcotest.test_case "static filter unproved outer" `Quick
        test_static_filter_unproved_outer;
      Alcotest.test_case "static filter nested inner" `Quick
        test_static_filter_nested_inner;
      Alcotest.test_case "static filter per thread" `Quick
        test_static_filter_per_thread;
      Alcotest.test_case "static+reentrant composition" `Quick
        test_static_reentrant_composition;
      Alcotest.test_case "filter warning order" `Quick
        test_static_filter_warning_order;
      Alcotest.test_case "warning dedup" `Quick test_warning_dedup;
      Alcotest.test_case "warning pp" `Quick test_warning_pp;
    ] )
