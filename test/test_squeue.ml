(* The bounded MPMC queue under the serve domain pool.

   Two layers, matching the two layers of the implementation: a
   deterministic single-domain model test that replays a scripted and a
   seeded-random operation sequence against a reference FIFO (with one
   domain, try_push/try_pop are ordinary functions), and a multi-domain
   stress test checking the concurrent guarantees — no element lost, no
   element duplicated, FIFO order per producer — over thousands of
   blocking operations. The stress seed is printed and can be replayed
   with SQUEUE_SEED=n. *)

module Squeue = Velodrome_util.Squeue

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- deterministic single-domain tests ------------------------------------ *)

let test_capacity_rounding () =
  check int "5 rounds to 8" 8 (Squeue.capacity (Squeue.create ~capacity:5));
  check int "8 stays 8" 8 (Squeue.capacity (Squeue.create ~capacity:8));
  check int "1 rounds to 2" 2 (Squeue.capacity (Squeue.create ~capacity:1));
  Alcotest.check_raises "capacity 0 rejected"
    (Invalid_argument "Squeue.create: capacity < 1") (fun () ->
      ignore (Squeue.create ~capacity:0))

let test_fifo_basics () =
  let q = Squeue.create ~capacity:4 in
  check int "empty" 0 (Squeue.length q);
  check bool "pop empty" true (Squeue.try_pop q = None);
  List.iter (fun x -> check bool "push" true (Squeue.try_push q x)) [ 1; 2; 3; 4 ];
  check bool "full" false (Squeue.try_push q 5);
  check int "len 4" 4 (Squeue.length q);
  List.iter
    (fun x -> check bool "fifo" true (Squeue.try_pop q = Some x))
    [ 1; 2; 3 ];
  (* Wrap around the ring: slots are reused once consumed. *)
  List.iter (fun x -> check bool "repush" true (Squeue.try_push q x)) [ 5; 6; 7 ];
  List.iter
    (fun x -> check bool "fifo2" true (Squeue.try_pop q = Some x))
    [ 4; 5; 6; 7 ];
  check bool "drained" true (Squeue.try_pop q = None)

let test_close () =
  let q = Squeue.create ~capacity:4 in
  assert (Squeue.try_push q 1);
  assert (Squeue.try_push q 2);
  check bool "open" false (Squeue.is_closed q);
  Squeue.close q;
  Squeue.close q;
  (* idempotent *)
  check bool "closed" true (Squeue.is_closed q);
  Alcotest.check_raises "push after close" Squeue.Closed (fun () ->
      ignore (Squeue.try_push q 3));
  Alcotest.check_raises "blocking push after close" Squeue.Closed (fun () ->
      Squeue.push q 3);
  (* Queued elements remain poppable, then None. *)
  check bool "drain 1" true (Squeue.pop q = Some 1);
  check bool "drain 2" true (Squeue.try_pop q = Some 2);
  check bool "closed+empty" true (Squeue.pop q = None);
  check bool "stays None" true (Squeue.try_pop q = None)

(* The capacity-1 queue (rounded to the 2-slot ring minimum): every
   pair of pushes hits the full boundary, every pair of pops the empty
   one, and the ring wraps on every second element — the tightest
   exercise of the slot sequence-number life cycle. *)
let test_capacity_one () =
  let q = Squeue.create ~capacity:1 in
  check int "rounds to the 2-slot minimum" 2 (Squeue.capacity q);
  for round = 0 to 9 do
    let a = 2 * round and b = (2 * round) + 1 in
    check bool "push into empty" true (Squeue.try_push q a);
    check bool "push into last slot" true (Squeue.try_push q b);
    check bool "push into full" false (Squeue.try_push q 999);
    check int "full length" 2 (Squeue.length q);
    check bool "pop first" true (Squeue.try_pop q = Some a);
    check bool "push while half-full" true (Squeue.try_push q (1000 + round));
    check bool "pop second" true (Squeue.try_pop q = Some b);
    check bool "pop third" true (Squeue.try_pop q = Some (1000 + round));
    check bool "pop from empty" true (Squeue.try_pop q = None)
  done;
  (* The same boundaries after close: drain, then None forever. *)
  assert (Squeue.try_push q (-1));
  Squeue.close q;
  Alcotest.check_raises "push after close" Squeue.Closed (fun () ->
      ignore (Squeue.try_push q (-2)));
  check bool "drains the last element" true (Squeue.pop q = Some (-1));
  check bool "pop on closed empty" true (Squeue.pop q = None);
  check bool "try_pop on closed empty" true (Squeue.try_pop q = None)

(* Seeded random sequences of try_push/try_pop/length against a
   reference FIFO. Single-domain, so the queue must agree exactly. *)
let test_model () =
  let rng = Velodrome_util.Rng.create 2026 in
  for _round = 1 to 50 do
    let cap = 1 + Velodrome_util.Rng.int rng 16 in
    let q = Squeue.create ~capacity:cap in
    let cap = Squeue.capacity q in
    let model = Queue.create () in
    let next = ref 0 in
    for _op = 1 to 400 do
      match Velodrome_util.Rng.int rng 3 with
      | 0 ->
        let x = !next in
        incr next;
        let accepted = Squeue.try_push q x in
        check bool "push accepted iff not full"
          (Queue.length model < cap)
          accepted;
        if accepted then Queue.add x model
      | 1 ->
        let got = Squeue.try_pop q in
        let expect =
          if Queue.is_empty model then None else Some (Queue.take model)
        in
        check bool "pop agrees" true (got = expect)
      | _ -> check int "length agrees" (Queue.length model) (Squeue.length q)
    done;
    (* Drain and compare the tails. *)
    Squeue.close q;
    Queue.iter
      (fun x -> check bool "tail agrees" true (Squeue.pop q = Some x))
      model;
    check bool "both empty" true (Squeue.pop q = None)
  done

(* --- multi-domain stress --------------------------------------------------- *)

(* [producers] * [consumers] + the coordinator: at least 5 domains, all
   blocking operations, tiny capacity so both backpressure parking and
   empty-queue parking are exercised constantly. Each element is
   (producer, seq); each consumer records what it took. Checks:
   - conservation: the multiset of consumed elements = produced ones
     (no loss, no duplication);
   - per-producer FIFO: within one consumer, the seqs of any single
     producer arrive strictly increasing (the MPMC guarantee: there is
     no global order, but each producer's elements are taken in push
     order, and a single consumer observes that order). *)
let stress ~seed ~producers ~consumers ~per_producer ~capacity () =
  Printf.printf "squeue stress: seed %d (replay with SQUEUE_SEED=%d)\n%!" seed
    seed;
  let q = Squeue.create ~capacity in
  let producer p () =
    let rng = Velodrome_util.Rng.create (seed + (1000 * p)) in
    for s = 0 to per_producer - 1 do
      Squeue.push q (p, s);
      (* Vary the interleaving: occasionally yield the core. *)
      if Velodrome_util.Rng.int rng 8 = 0 then Domain.cpu_relax ()
    done
  in
  let consumer () =
    let taken = ref [] in
    let rec loop () =
      match Squeue.pop q with
      | Some x ->
        taken := x :: !taken;
        loop ()
      | None -> List.rev !taken
    in
    loop ()
  in
  let cds = Array.init consumers (fun _ -> Domain.spawn consumer) in
  let pds = Array.init producers (fun p -> Domain.spawn (producer p)) in
  Array.iter Domain.join pds;
  Squeue.close q;
  let consumed = Array.map Domain.join cds in
  let total = Array.fold_left (fun n l -> n + List.length l) 0 consumed in
  check int "no loss, no duplication (count)" (producers * per_producer) total;
  let seen = Hashtbl.create (producers * per_producer) in
  Array.iter
    (fun l ->
      List.iter
        (fun (p, s) ->
          if Hashtbl.mem seen (p, s) then
            Alcotest.failf "element (%d,%d) consumed twice" p s;
          Hashtbl.add seen (p, s) ())
        l)
    consumed;
  for p = 0 to producers - 1 do
    for s = 0 to per_producer - 1 do
      if not (Hashtbl.mem seen (p, s)) then
        Alcotest.failf "element (%d,%d) lost" p s
    done
  done;
  Array.iteri
    (fun c l ->
      let last = Array.make producers (-1) in
      List.iter
        (fun (p, s) ->
          if s <= last.(p) then
            Alcotest.failf
              "consumer %d saw producer %d out of order (%d after %d)" c p s
              last.(p);
          last.(p) <- s)
        l)
    consumed

let test_stress () =
  let seed =
    match Sys.getenv_opt "SQUEUE_SEED" with
    | Some s -> int_of_string s
    | None -> 42
  in
  (* 2x2 + coordinator = 5 domains, 4000 pushes through 8 slots. *)
  stress ~seed ~producers:2 ~consumers:2 ~per_producer:2000 ~capacity:8 ();
  (* Skewed shapes: many producers into one consumer and vice versa. *)
  stress ~seed:(seed + 1) ~producers:4 ~consumers:1 ~per_producer:500
    ~capacity:2 ();
  stress ~seed:(seed + 2) ~producers:1 ~consumers:4 ~per_producer:2000
    ~capacity:4 ()

(* Close-and-drain under multi-domain contention: the coordinator joins
   the producers and closes while the consumers are still draining a
   tiny ring (and parking whenever it momentarily empties). Every
   produced element must still be delivered exactly once, every consumer
   must terminate with [None], and a producer arriving after the close
   must be refused immediately. Replay with SQUEUE_SEED=n. *)
let test_close_drain_contention () =
  let seed =
    match Sys.getenv_opt "SQUEUE_SEED" with
    | Some s -> int_of_string s
    | None -> 42
  in
  Printf.printf "squeue close-drain: seed %d (replay with SQUEUE_SEED=%d)\n%!"
    seed seed;
  for round = 0 to 4 do
    let producers = 2 and consumers = 3 and per_producer = 200 in
    let q = Squeue.create ~capacity:1 in
    let producer p () =
      let rng = Velodrome_util.Rng.create (seed + (31 * round) + (7 * p)) in
      for s = 0 to per_producer - 1 do
        Squeue.push q (p, s);
        if Velodrome_util.Rng.int rng 4 = 0 then Domain.cpu_relax ()
      done
    in
    let consumer () =
      let rec loop acc =
        match Squeue.pop q with Some x -> loop (x :: acc) | None -> acc
      in
      loop []
    in
    let cds = Array.init consumers (fun _ -> Domain.spawn consumer) in
    let pds = Array.init producers (fun p -> Domain.spawn (producer p)) in
    Array.iter Domain.join pds;
    Squeue.close q;
    Alcotest.check_raises "push after close refused" Squeue.Closed (fun () ->
        Squeue.push q (99, 99));
    let consumed = Array.to_list cds |> List.concat_map Domain.join in
    check int "close-and-drain conservation (count)"
      (producers * per_producer)
      (List.length consumed);
    let seen = Hashtbl.create 64 in
    List.iter
      (fun (p, s) ->
        if Hashtbl.mem seen (p, s) then
          Alcotest.failf "element (%d,%d) delivered twice" p s;
        Hashtbl.add seen (p, s) ())
      consumed
  done

(* Consumers parked on an empty queue must wake on close. *)
let test_close_wakes_consumers () =
  let q : int Squeue.t = Squeue.create ~capacity:2 in
  let cds = Array.init 3 (fun _ -> Domain.spawn (fun () -> Squeue.pop q)) in
  (* Give them time to park, then close. *)
  for _ = 1 to 1000 do
    Domain.cpu_relax ()
  done;
  Squeue.close q;
  Array.iter
    (fun d -> check bool "woken with None" true (Domain.join d = None))
    cds

let suite =
  ( "squeue",
    [
      Alcotest.test_case "capacity rounding" `Quick test_capacity_rounding;
      Alcotest.test_case "fifo basics + ring wrap" `Quick test_fifo_basics;
      Alcotest.test_case "close semantics" `Quick test_close;
      Alcotest.test_case "capacity-1 boundaries" `Quick test_capacity_one;
      Alcotest.test_case "single-domain model" `Quick test_model;
      Alcotest.test_case "multi-domain stress" `Quick test_stress;
      Alcotest.test_case "close-and-drain under contention" `Quick
        test_close_drain_contention;
      Alcotest.test_case "close wakes parked consumers" `Quick
        test_close_wakes_consumers;
    ] )
