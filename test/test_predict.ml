(* The prediction subsystem: the constraint scheduler's feasible and
   infeasible paths (lock window, program-order contradiction, unreached
   waypoints, step budget — never a livelock), the witness planner's
   schedule round-trip, and end-to-end certification on latent shapes
   that plain round-robin provably never flames. *)

open Velodrome_sim
module Statics = Velodrome_statics.Statics
module Plan = Velodrome_predict.Plan
module Predict = Velodrome_predict.Predict
module Rng = Velodrome_util.Rng
module Trace = Velodrome_trace.Trace
module Names = Velodrome_trace.Names

let check = Alcotest.check

let wp t p = { Constrain.wthread = t; wpath = p }

(* Deferred publish: writer updates b then a; reader snapshots both in
   one atomic. Round-robin runs the writer (thread 0) first each round,
   so the reader's first read always lands after the first write — clean
   — yet forcing read b ≺ write b ≺ write a ≺ read a violates. *)
let scan_program () =
  let b = Builder.create () in
  let va = Builder.var b "a" in
  let vb = Builder.var b "b" in
  Builder.thread b
    [ Builder.write vb (Builder.i 1); Builder.write va (Builder.i 1) ];
  Builder.thread b
    (let r1 = Builder.fresh_reg b in
     let r2 = Builder.fresh_reg b in
     [
       Builder.atomic (Builder.label b "scan")
         [ Builder.read r1 vb; Builder.read r2 va ];
     ]);
  Builder.program b

let find_block st name =
  match
    List.find_opt (fun b -> b.Statics.name = name) (Statics.blocks st)
  with
  | Some b -> b
  | None -> Alcotest.failf "block %s not analyzed" name

(* --- constraint scheduler ------------------------------------------------- *)

let test_replay_empty_plan () =
  let p = scan_program () in
  match Constrain.replay p [] with
  | Constrain.Scheduled { trace; forced } ->
    check Alcotest.int "no forced events" 0 forced;
    check Alcotest.bool "well-formed" true (Trace.is_well_formed trace);
    (* 2 writes + Begin/2 reads/End *)
    check Alcotest.int "events" 6 (Trace.length trace)
  | Constrain.Infeasible _ -> Alcotest.fail "empty plan must schedule"

let test_replay_forces_scan () =
  let p = scan_program () in
  (* read b (t1, inside atomic at [0], body stmt 0 -> [0;0]), then both
     writes of t0, then read a. *)
  let plan = [ wp 1 [ 0; 0 ]; wp 0 [ 0 ]; wp 0 [ 1 ]; wp 1 [ 0; 1 ] ] in
  match Constrain.replay p plan with
  | Constrain.Scheduled { trace; forced } ->
    check Alcotest.bool "well-formed" true (Trace.is_well_formed trace);
    check Alcotest.bool "forced all waypoints" true (forced >= 4);
    let label =
      match
        List.find_opt (fun b -> b.Statics.name = "scan")
          (Statics.blocks (Statics.analyze p))
      with
      | Some b -> b.Statics.label
      | None -> Alcotest.fail "scan block missing"
    in
    (match Predict.certify p.Ast.names label trace with
    | Some _ -> ()
    | None -> Alcotest.fail "forced scan trace must certify")
  | Constrain.Infeasible { at; reason } ->
    Alcotest.failf "infeasible at %d: %s" at
      (Constrain.reason_to_string reason)

let test_infeasible_lock_window () =
  let b = Builder.create () in
  let va = Builder.var b "a" in
  let vb = Builder.var b "b" in
  let m = Builder.lock b "m" in
  Builder.thread b
    (let r1 = Builder.fresh_reg b in
     let r2 = Builder.fresh_reg b in
     Builder.sync m [ Builder.read r1 vb; Builder.read r2 va ]);
  Builder.thread b
    (Builder.sync m
       [ Builder.write vb (Builder.i 1); Builder.write va (Builder.i 1) ]);
  let p = Builder.program b in
  (* Interleave t1's write between t0's two reads — but t0 holds m across
     the window, so t1 blocks on a lock owned by a frozen thread. *)
  let plan = [ wp 0 [ 1 ]; wp 1 [ 1 ]; wp 0 [ 2 ] ] in
  match Constrain.replay p plan with
  | Constrain.Infeasible { at; reason = Constrain.Lock_window _ } ->
    check Alcotest.int "fails at the cross-thread waypoint" 1 at
  | Constrain.Infeasible { reason; _ } ->
    Alcotest.failf "wrong reason: %s" (Constrain.reason_to_string reason)
  | Constrain.Scheduled _ -> Alcotest.fail "lock window must be infeasible"

let test_infeasible_order_contradiction () =
  let b = Builder.create () in
  let vx = Builder.var b "x" in
  let vy = Builder.var b "y" in
  Builder.thread b
    [ Builder.write vx (Builder.i 1); Builder.write vy (Builder.i 1) ];
  let p = Builder.program b in
  match Constrain.replay p [ wp 0 [ 1 ]; wp 0 [ 0 ] ] with
  | Constrain.Infeasible { at = 0; reason = Constrain.Order_contradiction w }
    ->
    check Alcotest.(list int) "contradicting waypoint" [ 0 ] w.Constrain.wpath
  | Constrain.Infeasible { at; reason } ->
    Alcotest.failf "wrong failure %d: %s" at
      (Constrain.reason_to_string reason)
  | Constrain.Scheduled _ ->
    Alcotest.fail "program-order contradiction must be infeasible"

let test_infeasible_unreached () =
  let b = Builder.create () in
  let vx = Builder.var b "x" in
  Builder.thread b [ Builder.write vx (Builder.i 1) ];
  let p = Builder.program b in
  match Constrain.replay p [ wp 0 [ 7 ] ] with
  | Constrain.Infeasible { at = 0; reason = Constrain.Unreached _ } -> ()
  | _ -> Alcotest.fail "nonexistent waypoint must be Unreached"

let test_infeasible_step_budget () =
  let b = Builder.create () in
  let flag = Builder.var b "flag" in
  let vx = Builder.var b "x" in
  Builder.thread b
    (let rg = Builder.fresh_reg b in
     [
       Builder.local rg (Builder.i 0);
       Builder.while_ Builder.(r rg ==: i 0) [ Builder.read rg flag ];
       Builder.write vx (Builder.i 1);
     ]);
  Builder.thread b [ Builder.write flag (Builder.i 1) ];
  let p = Builder.program b in
  (* t1 (the flag publisher) owes a later waypoint, so it freezes while
     t0 spins toward an unreachable waypoint: the budget must fire. *)
  match Constrain.replay ~max_steps:2_000 p [ wp 0 [ 2 ]; wp 1 [ 0 ] ] with
  | Constrain.Infeasible { at = 0; reason = Constrain.Step_budget } -> ()
  | Constrain.Infeasible { at; reason } ->
    Alcotest.failf "wrong failure %d: %s" at
      (Constrain.reason_to_string reason)
  | Constrain.Scheduled _ -> Alcotest.fail "spin must exhaust the budget"

(* Bounded-step property: any plan over any generated program terminates
   in Scheduled-with-well-formed-trace or Infeasible — never a livelock
   (the replay loop is step-bounded by construction, so this completing
   at all is the property). *)
let test_replay_total =
  QCheck.Test.make ~count:220 ~name:"constrained replay is total"
    QCheck.(pair small_nat (int_bound 6))
    (fun (seed, plan_len) ->
      let rng = Rng.create (seed + 1) in
      let program =
        Progen.generate
          ~config:
            { Progen.default with max_threads = 3; vars = 4; top_items = 2 }
          rng
      in
      let observed = Constrain.observe program in
      let n = Array.length observed in
      let plan =
        List.init plan_len (fun _ ->
            if n > 0 && Rng.int rng 4 > 0 then begin
              let op, path = observed.(Rng.int rng n) in
              {
                Constrain.wthread =
                  Velodrome_trace.Ids.Tid.to_int (Velodrome_trace.Op.tid op);
                wpath = path;
              }
            end
            else
              wp (Rng.int rng 4)
                (List.init (1 + Rng.int rng 2) (fun _ -> Rng.int rng 5)))
      in
      match Constrain.replay ~max_steps:20_000 program plan with
      | Constrain.Scheduled { trace; _ } -> Trace.is_well_formed trace
      | Constrain.Infeasible _ -> true)

(* --- planner -------------------------------------------------------------- *)

let test_schedule_round_trip () =
  let plan =
    {
      Plan.kind = Plan.Full;
      waypoints = [ wp 0 [ 1; 0 ]; wp 2 []; wp 1 [ 3 ] ];
    }
  in
  let s = Plan.to_string plan in
  check Alcotest.string "rendering" "t0@1.0 -> t2@ -> t1@3" s;
  match Plan.parse_schedule s with
  | Ok ws ->
    check Alcotest.bool "round trip" true (ws = plan.Plan.waypoints)
  | Error e -> Alcotest.failf "parse failed: %s" e

let test_parse_schedule_rejects_garbage () =
  (match Plan.parse_schedule "nonsense" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject a waypoint without @");
  match Plan.parse_schedule "" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "must reject an empty schedule"

(* --- end-to-end prediction ------------------------------------------------ *)

let test_predict_scan_end_to_end () =
  let p = scan_program () in
  let st = Statics.analyze p in
  let block = find_block st "scan" in
  (match block.Statics.verdict with
  | Statics.May_violate _ -> ()
  | _ -> Alcotest.fail "scan must be statically may-violate");
  let t = Predict.run p st in
  check Alcotest.int "round-robin observation is clean" 0
    (List.length (Predict.observed_blamed t));
  match Predict.predictions t with
  | [ pred ] ->
    check Alcotest.string "predicted block" "scan" pred.Predict.name;
    check Alcotest.bool "sites resolved against the observation" true
      pred.Predict.resolved;
    (* The emitted schedule replays to the same certification. *)
    (match
       Predict.replay_and_certify p pred.Predict.label
         pred.Predict.plan.Plan.waypoints
     with
    | Ok _ -> ()
    | Error e -> Alcotest.failf "replay line does not certify: %s" e);
    (* The upgraded lattice reports it. *)
    let verdicts = Predict.verdicts t in
    let v = List.assoc block verdicts in
    check Alcotest.string "upgraded verdict" "predicted-violation"
      (Predict.verdict_string v)
  | preds ->
    Alcotest.failf "expected exactly one prediction, got %d"
      (List.length preds)

let test_predict_write_skew () =
  (* Both skew blocks are latent under round-robin (the yield stagger
     serializes them) and both must be predicted: skew1 needs the
     minimal-plan fallback because its witness path runs against t2's
     program order. *)
  let b = Builder.create () in
  let u = Builder.var b "u" in
  let v = Builder.var b "v" in
  Builder.thread b
    (let r1 = Builder.fresh_reg b in
     let r2 = Builder.fresh_reg b in
     [
       Builder.atomic (Builder.label b "skew1")
         [
           Builder.read r1 u;
           Builder.read r2 v;
           Builder.write u Builder.(r r2 +: i 1);
         ];
     ]);
  Builder.thread b
    (let r1 = Builder.fresh_reg b in
     let r2 = Builder.fresh_reg b in
     List.init 5 (fun _ -> Builder.yield)
     @ [
         Builder.atomic (Builder.label b "skew2")
           [
             Builder.read r1 u;
             Builder.read r2 v;
             Builder.write v Builder.(r r1 +: i 1);
           ];
       ]);
  let p = Builder.program b in
  let st = Statics.analyze p in
  let t = Predict.run p st in
  check Alcotest.int "round-robin observation is clean" 0
    (List.length (Predict.observed_blamed t));
  let names = List.sort compare
      (List.map (fun pr -> pr.Predict.name) (Predict.predictions t))
  in
  check Alcotest.(list string) "both skew blocks predicted"
    [ "skew1"; "skew2" ] names

let test_predict_latent_progen () =
  (* A generated program carrying the latent family: prediction must
     certify the scan block even though round-robin never flames it. *)
  let rec find_latent seed =
    if seed > 64 then Alcotest.fail "no latent program in 64 seeds"
    else
      let program, info = Progen.generate_info (Rng.create seed) in
      if List.mem "latent" info.Progen.families then (seed, program)
      else find_latent (seed + 1)
  in
  let _seed, program = find_latent 1 in
  let st = Statics.analyze program in
  let t = Predict.run program st in
  let predicted = List.map (fun p -> p.Predict.name) (Predict.predictions t) in
  check Alcotest.bool "gen.lat.scan predicted" true
    (List.mem "gen.lat.scan" predicted);
  let blamed_names =
    List.map
      (Names.label_name (Statics.names st))
      (Predict.observed_blamed t)
  in
  check Alcotest.bool "scan not blamed by the observation" false
    (List.mem "gen.lat.scan" blamed_names)

let suite =
  ( "predict",
    [
      Alcotest.test_case "replay: empty plan" `Quick test_replay_empty_plan;
      Alcotest.test_case "replay: forces the scan interleaving" `Quick
        test_replay_forces_scan;
      Alcotest.test_case "replay: lock window is infeasible" `Quick
        test_infeasible_lock_window;
      Alcotest.test_case "replay: order contradiction is infeasible" `Quick
        test_infeasible_order_contradiction;
      Alcotest.test_case "replay: unreached waypoint" `Quick
        test_infeasible_unreached;
      Alcotest.test_case "replay: spin exhausts the step budget" `Quick
        test_infeasible_step_budget;
      QCheck_alcotest.to_alcotest ~long:false test_replay_total;
      Alcotest.test_case "plan: schedule round trip" `Quick
        test_schedule_round_trip;
      Alcotest.test_case "plan: parse rejects garbage" `Quick
        test_parse_schedule_rejects_garbage;
      Alcotest.test_case "predict: scan end to end" `Quick
        test_predict_scan_end_to_end;
      Alcotest.test_case "predict: write skew needs minimal fallback" `Quick
        test_predict_write_skew;
      Alcotest.test_case "predict: latent progen family" `Quick
        test_predict_latent_progen;
    ] )
