open Velodrome_trace
open Velodrome_core
open Helpers

let check = Alcotest.check
let bool = Alcotest.bool
let int = Alcotest.int

(* --- Step ----------------------------------------------------------------- *)

let test_step_pack_roundtrip () =
  let s = Step.make ~slot:123 ~ts:456789 in
  check int "slot" 123 (Step.slot s);
  check int "ts" 456789 (Step.ts s);
  check bool "not bottom" false (Step.is_bottom s);
  check bool "bottom" true (Step.is_bottom Step.bottom)

let test_step_bounds () =
  Alcotest.check_raises "slot too big"
    (Invalid_argument "Step.make: slot range") (fun () ->
      ignore (Step.make ~slot:Step.max_slots ~ts:0));
  Alcotest.check_raises "negative ts" (Invalid_argument "Step.make: ts range")
    (fun () -> ignore (Step.make ~slot:0 ~ts:(-1)))

let test_step_extremes () =
  let s = Step.make ~slot:(Step.max_slots - 1) ~ts:(Step.max_ts - 1) in
  check int "max slot" (Step.max_slots - 1) (Step.slot s);
  check int "max ts" (Step.max_ts - 1) (Step.ts s)

(* --- Pool ----------------------------------------------------------------- *)

let test_pool_stale_step_detection () =
  let p = Pool.create () in
  let n = Pool.alloc p ~tid:0 ~label:0 ~event:0 in
  Pool.set_active p n true;
  let ts = Pool.fresh_ts n in
  let s = Pool.step_of n ~ts in
  check bool "resolves while live" true (Pool.resolve p s <> None);
  Pool.set_active p n false;
  (* No incoming edges: collected immediately. *)
  check bool "collected" false (Pool.is_live n);
  check bool "stale step is bottom" true (Pool.resolve p s = None);
  (* Recycle the slot; the old step must remain stale. *)
  let n2 = Pool.alloc p ~tid:1 ~label:1 ~event:1 in
  check int "slot recycled" (Pool.slot n) (Pool.slot n2);
  check bool "old step still stale" true (Pool.resolve p s = None);
  let s2 = Pool.step_of n2 ~ts:(Pool.fresh_ts n2) in
  check bool "new step resolves" true (Pool.resolve p s2 <> None)

let test_pool_refcount_keeps_alive () =
  let p = Pool.create () in
  let a = Pool.alloc p ~tid:0 ~label:0 ~event:0 in
  let b = Pool.alloc p ~tid:1 ~label:1 ~event:1 in
  Pool.set_active p a true;
  Pool.set_active p b true;
  let tsa = Pool.fresh_ts a in
  let tsb = Pool.fresh_ts b in
  (match Pool.add_edge p ~src:a ~src_ts:tsa ~dst:b ~dst_ts:tsb () with
  | `Ok -> ()
  | _ -> Alcotest.fail "edge expected to succeed");
  (* b has an incoming edge; finishing b keeps it alive until a dies. *)
  Pool.set_active p b false;
  check bool "b kept by refcount" true (Pool.is_live b);
  Pool.set_active p a false;
  check bool "a collected" false (Pool.is_live a);
  check bool "cascade collected b" false (Pool.is_live b);
  check int "nothing live" 0 (Pool.live_count p)

let test_pool_cycle_detected_and_rejected () =
  let p = Pool.create () in
  let a = Pool.alloc p ~tid:0 ~label:0 ~event:0 in
  let b = Pool.alloc p ~tid:1 ~label:1 ~event:1 in
  Pool.set_active p a true;
  Pool.set_active p b true;
  let e1 = Pool.add_edge p ~src:a ~src_ts:1 ~dst:b ~dst_ts:2 () in
  check bool "first edge ok" true (e1 = `Ok);
  (match Pool.add_edge p ~src:b ~src_ts:3 ~dst:a ~dst_ts:4 () with
  | `Cycle c ->
    check int "path is the single edge" 1 (List.length c.Pool.path);
    check int "closing tail" 3 c.Pool.closing_tail_ts;
    check int "closing head" 4 c.Pool.closing_head_ts
  | _ -> Alcotest.fail "expected cycle");
  (* The cycle edge must not have been added: adding a -> b again is fine
     and the graph stays acyclic. *)
  check bool "still acyclic" true
    (Pool.add_edge p ~src:a ~src_ts:5 ~dst:b ~dst_ts:6 () = `Ok)

let test_pool_transitive_cycle () =
  let p = Pool.create () in
  let a = Pool.alloc p ~tid:0 ~label:0 ~event:0 in
  let b = Pool.alloc p ~tid:1 ~label:1 ~event:1 in
  let c = Pool.alloc p ~tid:2 ~label:2 ~event:2 in
  List.iter (fun n -> Pool.set_active p n true) [ a; b; c ];
  ignore (Pool.add_edge p ~src:a ~src_ts:1 ~dst:b ~dst_ts:1 ());
  ignore (Pool.add_edge p ~src:b ~src_ts:2 ~dst:c ~dst_ts:1 ());
  match Pool.add_edge p ~src:c ~src_ts:2 ~dst:a ~dst_ts:2 () with
  | `Cycle cyc -> check int "two-edge path" 2 (List.length cyc.Pool.path)
  | _ -> Alcotest.fail "expected transitive cycle"

let test_pool_self_edge_filtered () =
  let p = Pool.create () in
  let a = Pool.alloc p ~tid:0 ~label:0 ~event:0 in
  Pool.set_active p a true;
  check bool "self edge" true
    (Pool.add_edge p ~src:a ~src_ts:1 ~dst:a ~dst_ts:2 () = `Self)

(* --- Engine on concrete traces ------------------------------------------- *)

let rmw_violation =
  Trace.of_ops [ bg t0 l0; rd t0 x; wr t1 x; wr t0 x; en t0 ]

let rmw_benign = Trace.of_ops [ bg t0 l0; rd t0 x; wr t1 y; wr t0 x; en t0 ]

let test_engine_detects_rmw () =
  let eng = run_engine rmw_violation in
  check bool "error" true (Engine.has_error eng);
  check int "first error at the closing write" 3
    (Option.get (Engine.first_error_index eng));
  match Engine.warnings eng with
  | [ w ] ->
    check bool "blamed" true w.Velodrome_analysis.Warning.blamed;
    check bool "label is l0" true
      (w.Velodrome_analysis.Warning.label = Some l0)
  | ws -> Alcotest.failf "expected exactly one warning, got %d" (List.length ws)

let test_engine_benign () =
  let eng = run_engine rmw_benign in
  check bool "no error" false (Engine.has_error eng);
  check int "no warnings" 0 (List.length (Engine.warnings eng))

let test_engine_locked_rmw_clean () =
  let tr =
    Trace.of_ops
      [
        bg t0 l0; acq t0 m; rd t0 x; wr t0 x; rel t0 m; en t0;
        bg t1 l0; acq t1 m; rd t1 x; wr t1 x; rel t1 m; en t1;
      ]
  in
  check bool "no error" false (Engine.has_error (run_engine tr))

(* The volatile hand-off pattern from Section 2 that defeats the Atomizer:
   serializable, and Velodrome must stay silent. Thread 0 increments x
   inside an atomic block, then passes the baton via b; thread 1 spins on
   b (reading it repeatedly), then increments x in its own atomic block. *)
let test_engine_baton_pass_clean () =
  let b = z in
  let tr =
    Trace.of_ops
      [
        rd t1 b; (* spin: not yet our turn *)
        bg t0 l0; rd t0 x; wr t0 x; wr t0 b; en t0;
        rd t1 b; (* spin observes the baton *)
        bg t1 l1; rd t1 x; wr t1 x; wr t1 b; en t1;
        rd t0 b;
      ]
  in
  check bool "well-formed" true (Trace.is_well_formed tr);
  check bool "oracle agrees serializable" true
    (Velodrome_oracle.Oracle.serializable tr);
  check bool "velodrome stays silent" false (Engine.has_error (run_engine tr))

let test_engine_nested_blocks () =
  (* Nested atomic blocks: the cycle refutes outer blocks p, q but not the
     innermost serial block r (the paper's nesting example). *)
  let p = l0 and q = l1 and r = l2 in
  let tr =
    Trace.of_ops
      [
        bg t0 p;
        bg t0 q;
        rd t0 x;  (* root operation *)
        wr t1 x;  (* interposed conflicting write *)
        bg t0 r;
        wr t0 x;  (* target operation: closes the cycle inside r *)
        en t0;
        en t0;
        en t0;
      ]
  in
  let eng = run_engine tr in
  check bool "error" true (Engine.has_error eng);
  match Engine.warnings eng with
  | [ w ] ->
    check bool "blamed" true w.Velodrome_analysis.Warning.blamed;
    check bool "outermost refuted label is p" true
      (w.Velodrome_analysis.Warning.label = Some p);
    let msg = w.Velodrome_analysis.Warning.message in
    let contains needle =
      let nl = String.length needle and hl = String.length msg in
      let rec go i =
        i + nl <= hl && (String.sub msg i nl = needle || go (i + 1))
      in
      go 0
    in
    check bool "q also refuted" true (contains "L1");
    check bool "r not refuted" false (contains "L2")
  | ws -> Alcotest.failf "expected one warning, got %d" (List.length ws)

let test_engine_gc_empties () =
  let tr = Gen.run (Velodrome_util.Rng.create 17) Gen.default in
  let eng = run_engine tr in
  (* All transactions closed (close_trailing) and the graph acyclic, so
     reference counting must have collected everything. *)
  check int "no live nodes at end" 0 (Engine.nodes_live eng)

let test_engine_merge_reduces_allocation () =
  (* A long run of unmergeable unary operations: without merge each one
     allocates; with merge only program-order chains remain. *)
  let ops =
    List.concat_map (fun _ -> [ wr t0 x; rd t1 x ]) (List.init 200 Fun.id)
  in
  let tr = Trace.of_ops ops in
  let with_merge = run_engine tr in
  let without =
    run_engine ~config:{ Engine.merge = false; record_graphs = false } tr
  in
  check bool "merge allocates fewer nodes" true
    (Engine.nodes_allocated with_merge < Engine.nodes_allocated without);
  check bool "verdicts agree" (Engine.has_error without)
    (Engine.has_error with_merge)

let test_intro_cycle_blames_A () =
  (* The introduction's A => B' => C' => A cycle; blame must land on A
     (label l0), the only non-self-serializable transaction. *)
  let tr =
    Trace.of_ops
      [
        acq t0 m;
        bg t2 l2; rd t2 x; wr t2 z; en t2;
        bg t0 l0; rel t0 m; wr t0 z;
        bg t1 l1; acq t1 m; wr t1 y; en t1;
        bg t2 l2; rd t2 y; wr t2 x; en t2;
        rd t0 x;
        en t0;
      ]
  in
  let eng = run_engine tr in
  check bool "error" true (Engine.has_error eng);
  match Engine.warnings eng with
  | w :: _ ->
    check bool "blamed" true w.Velodrome_analysis.Warning.blamed;
    check bool "label A (l0)" true (w.Velodrome_analysis.Warning.label = Some l0)
  | [] -> Alcotest.fail "expected warning"

(* --- Merge semantics (Figure 4), observed through allocation counts ------- *)

let test_merge_bottom_allocates_nothing () =
  (* All predecessors ⊥: no node is ever created for unary operations. *)
  let tr = Trace.of_ops [ rd t0 x; rd t1 x; rd t0 y ] in
  let eng = run_engine tr in
  check int "no nodes" 0 (Engine.nodes_allocated eng)

let test_merge_collected_predecessor_is_bottom () =
  (* W(x) points at a transaction that the reference-counting GC already
     collected (it finished with no incoming edges), so its step reads as
     ⊥ and the unary read allocates nothing. *)
  let tr = Trace.of_ops [ bg t0 l0; wr t0 x; en t0; rd t1 x ] in
  let eng = run_engine tr in
  check int "only the transaction's node" 1 (Engine.nodes_allocated eng);
  check int "and it was collected" 0 (Engine.nodes_live eng)

(* A finished transaction pinned alive by an in-edge from a still-running
   one: the shape needed to watch merge's representative case. Builds two
   unrelated pinned transactions A (wrote x) and B (wrote w) on separate
   threads, kept alive by the open transactions C1 and C2. *)
let t3 = Ids.Tid.of_int 3
let w = Ids.Var.of_int 9

let pinned_scenario () =
  [
    bg t0 l0; wr t0 y;                 (* C1 open, writes y *)
    bg t1 l1; wr t1 z;                 (* C2 open, writes z *)
    bg t2 l2; rd t2 y; wr t2 x; en t2; (* A: C1 ⇒ A, writes x; alive *)
    bg t3 l2; rd t3 z; Op.Write (t3, w); en t3; (* B: C2 ⇒ B; alive *)
  ]

let test_merge_reuses_live_representative () =
  (* The unary read of x merges into the finished-but-alive A instead of
     allocating a node (the paper's C'-merge). A fresh thread does the
     read, so its L is ⊥. *)
  let tr =
    Trace.of_ops (pinned_scenario () @ [ Op.Read (Ids.Tid.of_int 4, x) ])
  in
  let eng = run_engine tr in
  check int "no node for the merged read" 4 (Engine.nodes_allocated eng)

let test_merge_incomparable_allocates_fresh () =
  (* L(t4) ends up at A; the read of w has W(w) = B; A and B are
     unrelated, both finished and alive: a fresh node must join them. *)
  let t4 = Ids.Tid.of_int 4 in
  let tr =
    Trace.of_ops
      (pinned_scenario () @ [ Op.Read (t4, x); Op.Read (t4, w) ])
  in
  let eng = run_engine tr in
  check int "fresh merge node allocated" 5 (Engine.nodes_allocated eng)

let test_merge_never_absorbs_into_active () =
  (* The refinement DESIGN.md documents: R(x,t0) belongs to a running
     transaction, so the unary write must NOT be merged into it — and the
     violation must be caught when t0 writes. *)
  let tr = Trace.of_ops [ bg t0 l0; rd t0 x; wr t1 x; wr t0 x; en t0 ] in
  let eng = run_engine tr in
  check bool "violation caught" true (Engine.has_error eng);
  check bool "unary write got its own node" true
    (Engine.nodes_allocated eng >= 2)

(* The paper's Section 4.3 impossibility example: a non-serializable trace
   in which every transaction is self-serializable, so no single
   transaction can be blamed — the warning must be unblamed. *)
let test_unblameable_cycle_reported_unblamed () =
  let tr =
    Trace.of_ops
      [
        bg t0 l0; bg t1 l1; wr t0 x; wr t1 y; rd t0 y; rd t1 x; wr t0 z;
        en t0; en t1;
      ]
  in
  let eng = run_engine tr in
  check bool "cycle found" true (Engine.has_error eng);
  match Engine.warnings eng with
  | w :: _ ->
    check bool "reported without blame" false
      w.Velodrome_analysis.Warning.blamed
  | [] -> Alcotest.fail "expected a warning"

(* --- Differential properties ---------------------------------------------- *)

let verdict_engine tr = Engine.has_error (run_engine tr)

let verdict_engine_nomerge tr =
  Engine.has_error
    (run_engine ~config:{ Engine.merge = false; record_graphs = false } tr)

let verdict_basic tr = Basic.has_error (run_basic tr)

let verdict_basic_nogc tr =
  Basic.has_error (run_basic ~config:{ Basic.gc = false } tr)

let prop_engine_matches_oracle =
  QCheck.Test.make ~count:500 ~name:"engine = conflict-graph oracle"
    (trace_arbitrary Gen.default) (fun tr ->
      verdict_engine tr = not (Velodrome_oracle.Oracle.serializable tr))

let prop_engine_matches_oracle_dense =
  QCheck.Test.make ~count:300
    ~name:"engine = oracle (dense contention)"
    (trace_arbitrary
       {
         Gen.default with
         threads = 4;
         vars = 2;
         locks = 1;
         steps = 60;
         max_depth = 3;
       })
    (fun tr ->
      verdict_engine tr = not (Velodrome_oracle.Oracle.serializable tr))

let prop_engine_matches_basic =
  QCheck.Test.make ~count:400 ~name:"optimized engine = basic engine"
    (trace_arbitrary Gen.default) (fun tr ->
      verdict_engine tr = verdict_basic tr)

let prop_first_error_index_agrees =
  QCheck.Test.make ~count:400
    ~name:"first violation index agrees across engines"
    (trace_arbitrary Gen.default) (fun tr ->
      let e = run_engine tr and b = run_basic tr in
      Engine.first_error_index e = Basic.first_error_index b)

let prop_merge_ablation_equivalent =
  QCheck.Test.make ~count:300 ~name:"merge on/off verdicts agree"
    (trace_arbitrary Gen.default) (fun tr ->
      verdict_engine tr = verdict_engine_nomerge tr)

let prop_gc_ablation_equivalent =
  QCheck.Test.make ~count:300 ~name:"basic gc on/off verdicts agree"
    (trace_arbitrary Gen.default) (fun tr ->
      verdict_basic tr = verdict_basic_nogc tr)

let prop_engine_matches_swaps_small =
  QCheck.Test.make ~count:300
    ~name:"engine = literal swap exploration (small traces)"
    (trace_arbitrary Gen.small) (fun tr ->
      match Velodrome_oracle.Oracle.serializable_by_swaps ~max_ops:9 tr with
      | None -> QCheck.assume_fail ()
      | Some s -> verdict_engine tr = not s)

let prop_gc_collects_everything =
  QCheck.Test.make ~count:300 ~name:"gc leaves no live node at end of trace"
    (trace_arbitrary Gen.default) (fun tr ->
      Engine.nodes_live (run_engine tr) = 0)

(* The online engine must fire at exactly the first event whose prefix is
   non-serializable — detection is neither early (soundness) nor late
   (completeness at event granularity). *)
let prop_first_error_is_minimal_violating_prefix =
  QCheck.Test.make ~count:200
    ~name:"first error index = length of minimal non-serializable prefix"
    (trace_arbitrary { Gen.default with steps = 25 })
    (fun tr ->
      let eng = run_engine tr in
      let ops = Trace.ops tr in
      let prefix_serializable k =
        Velodrome_oracle.Oracle.serializable
          (Trace.of_array (Array.sub ops 0 k))
      in
      match Engine.first_error_index eng with
      | None -> prefix_serializable (Array.length ops)
      | Some i ->
        (not (prefix_serializable (i + 1))) && prefix_serializable i)

let prop_blamed_not_self_serializable =
  QCheck.Test.make ~count:500
    ~name:"blamed transactions are never self-serializable (small traces)"
    (trace_arbitrary { Gen.small with steps = 9 })
    (fun tr ->
      let eng = run_engine tr in
      let blamed_warnings =
        List.filter
          (fun w -> w.Velodrome_analysis.Warning.blamed)
          (Engine.warnings eng)
      in
      (* For each blamed warning, find a transaction with that label in the
         segmentation and check non-self-serializability of at least one
         instance (several transactions may share the label; blame applies
         to the one executing at the violation, so we accept if any
         instance is non-self-serializable). *)
      List.for_all
        (fun w ->
          match w.Velodrome_analysis.Warning.label with
          | None -> true
          | Some l ->
            let seg = Txn.segment tr in
            let instances =
              Array.to_list seg.Txn.txns
              |> List.filter (fun tx -> tx.Txn.label = Some l)
            in
            List.exists
              (fun tx ->
                match
                  Velodrome_oracle.Oracle.self_serializable_by_swaps tr
                    ~txn:tx.Txn.id
                with
                | Some false -> true
                | Some true -> false
                | None -> true)
              instances)
        blamed_warnings)

(* Subsequence projection (the paper's §6 argument for uninstrumented
   libraries): dropping events can only lose violations, never invent
   them. The thread-local filter is exactly such a projection. *)
let prop_filtered_stream_never_adds_errors =
  QCheck.Test.make ~count:300
    ~name:"thread-local filtering never invents violations"
    (trace_arbitrary Gen.default) (fun tr ->
      let names = Names.create () in
      let full = Velodrome_core.Engine.create names in
      let filtered_probe = Velodrome_core.Engine.create names in
      let module Probe = struct
        type t = unit

        let name = "probe"
        let create _ = ()
        let on_event () e = Velodrome_core.Engine.on_event filtered_probe e
        let pause_hint _ _ = false
        let finish _ = ()
        let warnings _ = []
      end in
      let filtered =
        Velodrome_analysis.Filters.thread_local
          (Velodrome_analysis.Backend.make (module Probe) names)
      in
      List.iteri
        (fun index op ->
          let ev = Event.make ~index op in
          Velodrome_core.Engine.on_event full ev;
          Velodrome_analysis.Backend.on_event filtered ev)
        (Trace.to_list tr);
      (* filtered error ⇒ full error (the converse can fail: that is the
         documented slight unsoundness). *)
      (not (Velodrome_core.Engine.has_error filtered_probe))
      || Velodrome_core.Engine.has_error full)

(* A large synthetic run: the engine must stay linear-ish and the GC must
   keep the live set tiny even across hundreds of thousands of events. *)
let test_engine_stress () =
  let cfg =
    {
      Gen.default with
      threads = 6;
      vars = 12;
      locks = 4;
      labels = 8;
      steps = 200_000;
    }
  in
  let tr = Gen.run (Velodrome_util.Rng.create 2024) cfg in
  let t0 = Sys.time () in
  let eng = run_engine ~config:{ Engine.merge = true; record_graphs = false } tr in
  let elapsed = Sys.time () -. t0 in
  check bool "bounded live nodes" true (Engine.nodes_max_alive eng <= 128);
  check bool "all collected at end" true (Engine.nodes_live eng = 0);
  check bool
    (Printf.sprintf "throughput sane (%.2fs for %d events)" elapsed
       (Trace.length tr))
    true (elapsed < 30.0)

(* --- Pool free cost (bitset column clear) ---------------------------------- *)

(* Freeing a node must visit exactly its descendants — clearing its slot's
   bit-column — never the whole live set. Measured via the pool's
   clear_work counter with k unrelated live nodes in the background. *)
let clear_work_of_free k =
  let p = Pool.create () in
  for i = 0 to k - 1 do
    let n = Pool.alloc p ~tid:0 ~label:i ~event:i in
    Pool.set_active p n true
  done;
  let a = Pool.alloc p ~tid:1 ~label:(-1) ~event:k in
  let b = Pool.alloc p ~tid:1 ~label:(-1) ~event:(k + 1) in
  Pool.set_active p a true;
  Pool.set_active p b true;
  (match Pool.add_edge p ~src:a ~src_ts:1 ~dst:b ~dst_ts:1 () with
  | `Ok -> ()
  | _ -> Alcotest.fail "edge rejected");
  let w0 = Pool.clear_work p in
  (* a has no incoming edges, so deactivating collects it immediately *)
  Pool.set_active p a false;
  check bool "a collected" true (not (Pool.is_live a));
  Pool.clear_work p - w0

let test_pool_free_cost_flat () =
  let c100 = clear_work_of_free 100 in
  let c2000 = clear_work_of_free 2000 in
  check int "free cost = number of descendants" 1 c100;
  check int "free cost independent of live-node count" c100 c2000

(* --- Bitset ancestors = reference reachability ----------------------------- *)

(* Forward BFS over the pool's explicit edge lists: the reference
   implementation the bitset ancestor/descendant sets must agree with. *)
let bfs_reachable adj s =
  let visited = Hashtbl.create 16 in
  let q = Queue.create () in
  Queue.push s q;
  while not (Queue.is_empty q) do
    let u = Queue.pop q in
    List.iter
      (fun v ->
        if not (Hashtbl.mem visited v) then begin
          Hashtbl.replace visited v ();
          Queue.push v q
        end)
      (try List.assoc u adj with Not_found -> [])
  done;
  visited

let pool_matches_reference pool =
  let slots = Pool.live_slots pool in
  let node s =
    match Pool.node_of_slot pool s with
    | Some n -> n
    | None -> Alcotest.fail "live slot without node"
  in
  let adj = List.map (fun s -> (s, Pool.out_slots (node s))) slots in
  List.for_all
    (fun s ->
      let reach = bfs_reachable adj s in
      (* no stale bits for collected slots may survive *)
      List.for_all (fun d -> List.mem d slots)
        (Pool.descendant_slots (node s))
      && List.for_all (fun a -> List.mem a slots)
           (Pool.ancestor_slots (node s))
      && List.for_all
           (fun t ->
             let in_anc = List.mem s (Pool.ancestor_slots (node t)) in
             let in_desc = List.mem t (Pool.descendant_slots (node s)) in
             let reachable = t <> s && Hashtbl.mem reach t in
             in_anc = reachable && in_desc = reachable)
           slots)
    slots

let trace_matches_reference tr =
  let names = Names.create () in
  let eng =
    Engine.create ~config:{ Engine.merge = true; record_graphs = false } names
  in
  let pool = Engine.debug_pool eng in
  List.for_all
    (fun e ->
      Engine.on_event eng e;
      pool_matches_reference pool)
    (Event.of_ops (Trace.to_list tr))

let prop_bitset_ancestors_match_reachability =
  QCheck.Test.make ~count:300
    ~name:"bitset ancestors = BFS reachability after every event"
    (trace_arbitrary Gen.default) trace_matches_reference

(* Fewer vars and more threads force contention, merges and collection, so
   slots are recycled mid-trace and the check covers reused bit columns. *)
let prop_bitset_ancestors_match_reachability_dense =
  QCheck.Test.make ~count:100
    ~name:"bitset ancestors = BFS reachability (dense, recycled slots)"
    (trace_arbitrary
       { Gen.default with threads = 4; vars = 2; locks = 1; steps = 120 })
    trace_matches_reference

(* --- Allocation-flat no-warning path --------------------------------------- *)

let bytes_for_replay events =
  let names = Names.create () in
  let eng =
    Engine.create ~config:{ Engine.merge = true; record_graphs = false } names
  in
  let b0 = Gc.allocated_bytes () in
  Array.iter (Engine.on_event eng) events;
  let b1 = Gc.allocated_bytes () in
  check int "benign trace" 0 (List.length (Engine.warnings eng));
  b1 -. b0

(* The no-warning path must not build closures, lists or report keys: the
   marginal allocation of the second half of a double-length benign trace
   stays within a small constant per event (recycled nodes still allocate
   fresh edge records and an option per transaction). *)
let test_engine_allocation_flat () =
  let iter_ops _ =
    [
      bg t0 l0; acq t0 m; wr t0 x; rd t0 y; rel t0 m; en t0;
      bg t1 l1; acq t1 m; rd t1 x; wr t1 z; rel t1 m; en t1;
    ]
  in
  let events n =
    Array.of_list (Event.of_ops (List.concat_map iter_ops (List.init n Fun.id)))
  in
  let e1 = events 2_000 and e2 = events 4_000 in
  let b1 = bytes_for_replay e1 in
  let b2 = bytes_for_replay e2 in
  let marginal =
    (b2 -. b1) /. float_of_int (Array.length e2 - Array.length e1)
  in
  check bool
    (Printf.sprintf "marginal bytes/event stays constant (%.1f)" marginal)
    true
    (marginal < 64.0)

let suite =
  ( "core",
    [
      Alcotest.test_case "step pack roundtrip" `Quick test_step_pack_roundtrip;
      Alcotest.test_case "step bounds" `Quick test_step_bounds;
      Alcotest.test_case "step extremes" `Quick test_step_extremes;
      Alcotest.test_case "pool stale steps" `Quick test_pool_stale_step_detection;
      Alcotest.test_case "pool refcount" `Quick test_pool_refcount_keeps_alive;
      Alcotest.test_case "pool cycle rejected" `Quick
        test_pool_cycle_detected_and_rejected;
      Alcotest.test_case "pool transitive cycle" `Quick test_pool_transitive_cycle;
      Alcotest.test_case "pool self edge" `Quick test_pool_self_edge_filtered;
      Alcotest.test_case "engine detects rmw" `Quick test_engine_detects_rmw;
      Alcotest.test_case "engine benign" `Quick test_engine_benign;
      Alcotest.test_case "engine locked rmw" `Quick test_engine_locked_rmw_clean;
      Alcotest.test_case "engine baton pass" `Quick test_engine_baton_pass_clean;
      Alcotest.test_case "engine nested blocks" `Quick test_engine_nested_blocks;
      Alcotest.test_case "engine gc empties" `Quick test_engine_gc_empties;
      Alcotest.test_case "engine merge allocation" `Quick
        test_engine_merge_reduces_allocation;
      Alcotest.test_case "intro cycle blames A" `Quick test_intro_cycle_blames_A;
      Alcotest.test_case "merge: bottom" `Quick test_merge_bottom_allocates_nothing;
      Alcotest.test_case "merge: collected is bottom" `Quick
        test_merge_collected_predecessor_is_bottom;
      Alcotest.test_case "merge: live representative" `Quick
        test_merge_reuses_live_representative;
      Alcotest.test_case "merge: incomparable" `Quick
        test_merge_incomparable_allocates_fresh;
      Alcotest.test_case "merge: active excluded" `Quick
        test_merge_never_absorbs_into_active;
      Alcotest.test_case "unblameable cycle" `Quick
        test_unblameable_cycle_reported_unblamed;
      QCheck_alcotest.to_alcotest prop_engine_matches_oracle;
      QCheck_alcotest.to_alcotest prop_engine_matches_oracle_dense;
      QCheck_alcotest.to_alcotest prop_engine_matches_basic;
      QCheck_alcotest.to_alcotest prop_first_error_index_agrees;
      QCheck_alcotest.to_alcotest prop_merge_ablation_equivalent;
      QCheck_alcotest.to_alcotest prop_gc_ablation_equivalent;
      QCheck_alcotest.to_alcotest prop_engine_matches_swaps_small;
      QCheck_alcotest.to_alcotest prop_gc_collects_everything;
      QCheck_alcotest.to_alcotest prop_first_error_is_minimal_violating_prefix;
      QCheck_alcotest.to_alcotest prop_blamed_not_self_serializable;
      QCheck_alcotest.to_alcotest prop_filtered_stream_never_adds_errors;
      Alcotest.test_case "pool free cost flat" `Quick test_pool_free_cost_flat;
      QCheck_alcotest.to_alcotest prop_bitset_ancestors_match_reachability;
      QCheck_alcotest.to_alcotest prop_bitset_ancestors_match_reachability_dense;
      Alcotest.test_case "engine allocation flat" `Quick
        test_engine_allocation_flat;
      Alcotest.test_case "engine stress" `Slow test_engine_stress;
    ] )
