(* The model-checking CI gate (also handy interactively).

   Runs every healthy squeue scenario under the DPOR explorer with an
   explicit schedule budget — each must come back [Verified] — then the
   two seeded mutants, each of which must produce a counterexample
   (printed as its minimized, numbered schedule and re-validated by a
   deterministic replay). Any other outcome — a violation in a healthy
   scenario, a mutant the explorer misses, a budget overrun — writes the
   offending interleaving trace to [--trace-out] (uploaded as a CI
   artifact) and exits 1.

     dune exec test/mc_run.exe -- [--budget N] [--steps N] [--mode dpor|full]
                                  [--trace-out FILE]

   The per-scenario interleaving counts printed here are the numbers
   quoted in README "Model-checked internals". *)

module Explore = Velodrome_modelcheck.Explore

let budget = ref 750_000
let steps = ref 500
let mode = ref `Dpor
let trace_out = ref "mc-counterexample.txt"
let failures = ref 0

let usage () =
  prerr_endline
    "usage: mc_run [--budget N] [--steps N] [--mode dpor|full] [--trace-out \
     FILE]";
  exit 2

let rec parse = function
  | [] -> ()
  | "--budget" :: n :: rest ->
    budget := int_of_string n;
    parse rest
  | "--steps" :: n :: rest ->
    steps := int_of_string n;
    parse rest
  | "--mode" :: "dpor" :: rest ->
    mode := `Dpor;
    parse rest
  | "--mode" :: "full" :: rest ->
    mode := `Full;
    parse rest
  | "--trace-out" :: f :: rest ->
    trace_out := f;
    parse rest
  | _ -> usage ()

let record_failure name outcome =
  incr failures;
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 !trace_out in
  let ppf = Format.formatter_of_out_channel oc in
  Format.fprintf ppf "== %s ==@.%a@." name Explore.pp_outcome outcome;
  close_out oc

let run_expected_verified (name, scenario) =
  let t0 = Velodrome_util.Mclock.now_ns () in
  let outcome =
    Explore.explore ~mode:!mode ~max_steps:!steps ~max_schedules:!budget
      scenario
  in
  let dt = Velodrome_util.Mclock.span_s t0 (Velodrome_util.Mclock.now_ns ()) in
  match outcome with
  | Explore.Verified _ ->
    Format.printf "ok   %-28s %a  (%.2fs)@." name Explore.pp_outcome outcome dt
  | _ ->
    Format.printf "FAIL %-28s %a@." name Explore.pp_outcome outcome;
    record_failure name outcome

let run_expected_counterexample (name, scenario) =
  let outcome =
    Explore.explore_minimized ~mode:!mode ~max_steps:!steps
      ~max_schedules:!budget scenario
  in
  match outcome with
  | Explore.Violation { trace; _ } -> (
    (* The printed schedule must replay deterministically to the same
       violation — the counterexample is a proof, not a report. *)
    let plan = List.map (fun (s : Explore.step) -> s.pid) trace in
    match Explore.replay ~max_steps:!steps scenario plan with
    | Explore.Violation _ ->
      Format.printf "ok   %-28s seeded bug flagged, replay confirms@.%a@." name
        Explore.pp_outcome outcome
    | other ->
      Format.printf "FAIL %-28s counterexample did not replay@." name;
      record_failure name other)
  | _ ->
    Format.printf "FAIL %-28s seeded bug NOT found: %a@." name
      Explore.pp_outcome outcome;
    record_failure name outcome

let () =
  parse (List.tl (Array.to_list Sys.argv));
  (if Sys.file_exists !trace_out then Sys.remove !trace_out);
  Format.printf "model-checking squeue scenarios (mode %s, budget %d \
                 schedules, %d steps/run)@."
    (match !mode with `Dpor -> "dpor" | `Full -> "full")
    !budget !steps;
  List.iter run_expected_verified Mc_scenarios.healthy;
  Format.printf "mutation gate: the checker must flag both seeded bugs@.";
  List.iter run_expected_counterexample Mc_scenarios.mutants;
  if !failures > 0 then begin
    Format.printf "@.%d scenario(s) failed; traces in %s@." !failures
      !trace_out;
    exit 1
  end
